package memfwd

import (
	"math/rand"
	"testing"
)

// shadowObject mirrors one guest object: its current values and every
// address that has ever referred to it (the original allocation plus
// each relocation target). Any alias must read and write the live data.
type shadowObject struct {
	words   []uint64
	aliases []Addr
	relocs  int
}

// TestRelocationStorm drives a random interleaving of allocations,
// relocations (through random stale aliases), reads, writes, pointer
// comparisons, and frees, checking every observable value against a
// host-side shadow model. This is the end-to-end safety property the
// paper's mechanism exists to guarantee: no matter how data moves, no
// reference ever observes a wrong value.
func TestRelocationStorm(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		seed := seed
		t.Run("", func(t *testing.T) {
			relocationStorm(t, seed, 4000)
		})
	}
}

func relocationStorm(t *testing.T, seed int64, steps int) {
	rng := rand.New(rand.NewSource(seed))
	m := NewMachine(MachineConfig{LineSize: 64})
	pool := NewPool(m, 1<<16)

	var objs []*shadowObject
	alive := func() *shadowObject {
		if len(objs) == 0 {
			return nil
		}
		return objs[rng.Intn(len(objs))]
	}
	alias := func(o *shadowObject) Addr {
		return o.aliases[rng.Intn(len(o.aliases))]
	}

	for step := 0; step < steps; step++ {
		switch op := rng.Intn(100); {
		case op < 15 || len(objs) == 0: // allocate
			n := 1 + rng.Intn(6)
			a := m.Malloc(uint64(n * 8))
			o := &shadowObject{words: make([]uint64, n), aliases: []Addr{a}}
			for i := range o.words {
				v := rng.Uint64()
				o.words[i] = v
				m.StoreWord(a+Addr(i*8), v)
			}
			objs = append(objs, o)

		case op < 25: // relocate via a random alias
			o := alive()
			if o.relocs >= 10 {
				break
			}
			src := alias(o)
			tgt := pool.Alloc(uint64(len(o.words) * 8))
			Relocate(m, src, tgt, len(o.words))
			o.aliases = append(o.aliases, tgt)
			o.relocs++

		case op < 55: // read via a random alias, random width
			o := alive()
			i := rng.Intn(len(o.words))
			a := alias(o) + Addr(i*8)
			switch rng.Intn(3) {
			case 0:
				if got := m.LoadWord(a); got != o.words[i] {
					t.Fatalf("step %d: word read %#x != shadow %#x", step, got, o.words[i])
				}
			case 1:
				off := Addr(rng.Intn(2) * 4)
				want := uint32(o.words[i] >> (8 * off))
				if got := m.Load32(a + off); got != want {
					t.Fatalf("step %d: u32 read %#x != shadow %#x", step, got, want)
				}
			default:
				off := Addr(rng.Intn(8))
				want := uint8(o.words[i] >> (8 * off))
				if got := m.Load8(a + off); got != want {
					t.Fatalf("step %d: byte read %#x != shadow %#x", step, got, want)
				}
			}

		case op < 80: // write via a random alias
			o := alive()
			i := rng.Intn(len(o.words))
			a := alias(o) + Addr(i*8)
			if rng.Intn(2) == 0 {
				v := rng.Uint64()
				m.StoreWord(a, v)
				o.words[i] = v
			} else {
				off := Addr(rng.Intn(2) * 4)
				v := rng.Uint32()
				m.Store32(a+off, v)
				mask := uint64(0xFFFFFFFF) << (8 * off)
				o.words[i] = (o.words[i] &^ mask) | uint64(v)<<(8*off)
			}

		case op < 90: // pointer comparisons across aliases
			o := alive()
			a1, a2 := alias(o), alias(o)
			if !m.PtrEqual(a1, a2) {
				t.Fatalf("step %d: aliases %#x and %#x of one object compare unequal", step, a1, a2)
			}
			if len(objs) > 1 {
				o2 := objs[rng.Intn(len(objs))]
				if o2 != o {
					i := rng.Intn(minInt(len(o.words), len(o2.words)))
					if m.PtrEqual(alias(o)+Addr(i*8), alias(o2)+Addr(i*8)) {
						t.Fatalf("step %d: distinct objects compare equal", step)
					}
				}
			}

		default: // free via a random alias
			if len(objs) < 4 {
				break
			}
			i := rng.Intn(len(objs))
			m.Free(objs[i].aliases[rng.Intn(len(objs[i].aliases))])
			objs = append(objs[:i], objs[i+1:]...)
		}
	}

	// Full sweep: every alias of every live object reads correctly.
	for _, o := range objs {
		for _, a := range o.aliases {
			for i, want := range o.words {
				if got := m.LoadWord(a + Addr(i*8)); got != want {
					t.Fatalf("final sweep: alias %#x word %d = %#x, want %#x", a, i, got, want)
				}
			}
		}
	}
	st := m.Finalize()
	if st.CyclesDetected != 0 {
		t.Fatalf("storm created a forwarding cycle")
	}
	if st.LoadsForwarded() == 0 {
		t.Fatal("storm never exercised forwarding")
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
