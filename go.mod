module memfwd

go 1.22
