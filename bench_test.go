package memfwd

// The benchmark harness regenerates every table and figure of the
// paper's evaluation section (run `go test -bench=. -benchmem`), plus
// microbenchmarks and ablations for the design choices DESIGN.md calls
// out. Key series values are attached with b.ReportMetric so the shape
// of each result is visible straight from the bench output; the
// rendered tables come from `go run ./cmd/figures`.

import (
	"fmt"
	"runtime"
	"testing"
)

func benchOptions() Options { return Options{Seed: 9} }

// BenchmarkTable1 regenerates Table 1 (applications, optimizations,
// space overhead).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, _ := RunTable1(benchOptions())
		if len(tab.Rows) != 8 {
			b.Fatal("table 1 incomplete")
		}
	}
}

// BenchmarkFigure5 regenerates the execution-time sweep (7 apps × 3
// line sizes × {N,L}) and reports the headline speedups.
func BenchmarkFigure5(b *testing.B) {
	var lr *LocalityRuns
	for i := 0; i < b.N; i++ {
		lr = RunLocality(benchOptions())
	}
	for _, name := range []string{"health", "vis", "mst"} {
		n, _ := lr.Get(name, 128, VariantN)
		l, _ := lr.Get(name, 128, VariantL)
		b.ReportMetric(l.Speedup(n), "speedup128B:"+name)
	}
}

// BenchmarkFigure6a regenerates the load D-cache miss series and
// reports the miss reduction for health at 128B lines.
func BenchmarkFigure6a(b *testing.B) {
	var lr *LocalityRuns
	for i := 0; i < b.N; i++ {
		lr = RunLocality(benchOptions())
	}
	n, _ := lr.Get("health", 128, VariantN)
	l, _ := lr.Get("health", 128, VariantL)
	b.ReportMetric(float64(l.Stats.L1.Misses(0))/float64(n.Stats.L1.Misses(0)), "missRatio128B:health")
	if len(lr.Figure6aTable().Rows) == 0 {
		b.Fatal("empty table")
	}
}

// BenchmarkFigure6b regenerates the bandwidth series and reports the
// total-bandwidth ratio for health at 128B lines.
func BenchmarkFigure6b(b *testing.B) {
	var lr *LocalityRuns
	for i := 0; i < b.N; i++ {
		lr = RunLocality(benchOptions())
	}
	n, _ := lr.Get("health", 128, VariantN)
	l, _ := lr.Get("health", 128, VariantL)
	b.ReportMetric(
		float64(l.Stats.BytesL1L2+l.Stats.BytesL2Mem)/float64(n.Stats.BytesL1L2+n.Stats.BytesL2Mem),
		"bwRatio128B:health")
	if len(lr.Figure6bTable().Rows) == 0 {
		b.Fatal("empty table")
	}
}

// BenchmarkFigure7 regenerates the prefetch-interaction experiment
// (N/NP/L/LP at 32B lines with the block-size sweep) and reports
// health's LP speedup.
func BenchmarkFigure7(b *testing.B) {
	var pr *PrefetchRuns
	for i := 0; i < b.N; i++ {
		pr = RunPrefetch(benchOptions())
	}
	rs := pr.Runs["health"]
	b.ReportMetric(rs[VariantLP].Speedup(rs[VariantN]), "speedupLP:health")
	b.ReportMetric(rs[VariantNP].Speedup(rs[VariantN]), "speedupNP:health")
}

// BenchmarkFigure8 regenerates the eqntott layout demonstration.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(Figure8Layout().Rows) != 4 {
			b.Fatal("layout incomplete")
		}
	}
}

// BenchmarkFigure9 regenerates the subtree-clustering layout
// demonstration.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(Figure9Layout(128).Rows) != 7 {
			b.Fatal("layout incomplete")
		}
	}
}

// BenchmarkFigure10 regenerates the SMV forwarding-overhead study and
// reports the forwarded-load fraction and the N/L/Perf cycle ratios.
func BenchmarkFigure10(b *testing.B) {
	var sr *SMVRuns
	for i := 0; i < b.N; i++ {
		sr = RunSMV(benchOptions())
	}
	b.ReportMetric(float64(sr.L.Stats.LoadsFwdByHops[1])/float64(sr.L.Stats.Loads), "fwdLoadFrac:L")
	b.ReportMetric(float64(sr.L.Stats.Cycles)/float64(sr.N.Stats.Cycles), "timeRatio:L/N")
	b.ReportMetric(float64(sr.Perf.Stats.Cycles)/float64(sr.N.Stats.Cycles), "timeRatio:Perf/N")
}

// BenchmarkFigure5Jobs measures the experiment engine's wall-clock
// scaling on the Figure 5 matrix: the same 42 cells at one worker and
// at GOMAXPROCS workers. Results are byte-identical either way (see
// TestParallelDeterminism); only the wall time differs. On a
// single-core host the two legs coincide, which bounds the engine's
// own overhead.
func BenchmarkFigure5Jobs(b *testing.B) {
	for _, jobs := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOptions()
				o.Jobs = jobs
				if len(RunLocality(o).Runs) != 42 {
					b.Fatal("matrix incomplete")
				}
			}
		})
	}
}

// --- microbenchmarks and ablations ----------------------------------

// benchChase measures the per-reference cost of forwarding chains of
// increasing length — the raw price of the safety net.
func benchChase(b *testing.B, hops int) {
	m := NewMachine(MachineConfig{})
	// Build a chain of the requested length.
	addrs := make([]Addr, hops+1)
	for i := range addrs {
		addrs[i] = m.Malloc(8)
	}
	m.StoreWord(addrs[hops], 42)
	for i := 0; i < hops; i++ {
		Relocate(m, addrs[i], addrs[i+1], 1)
	}
	// Relocate chains each hop onto the previous chain end, so the walk
	// from addrs[0] is exactly `hops` long.
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		sum += m.LoadWord(addrs[0])
	}
	b.StopTimer()
	if hops > 0 && m.Finalize().LoadsForwarded() == 0 {
		b.Fatal("chain not exercised")
	}
	_ = sum
}

func BenchmarkChase0(b *testing.B) { benchChase(b, 0) }
func BenchmarkChase1(b *testing.B) { benchChase(b, 1) }
func BenchmarkChase2(b *testing.B) { benchChase(b, 2) }
func BenchmarkChase4(b *testing.B) { benchChase(b, 4) }

// BenchmarkRelocate measures the relocation primitive itself (a fresh
// 8-word object per iteration, so chains stay one hop).
func BenchmarkRelocate(b *testing.B) {
	m := NewMachine(MachineConfig{HeapLimit: 1 << 34})
	pool := NewPool(m, 1<<24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := m.Alloc.Alloc(64)
		tgt := pool.Alloc(64)
		Relocate(m, src, tgt, 8)
	}
}

// BenchmarkListLinearize measures linearizing a 256-node list.
func BenchmarkListLinearize(b *testing.B) {
	m := NewMachine(MachineConfig{})
	pool := NewPool(m, 1<<24)
	head := m.Malloc(8)
	prev := head
	for i := 0; i < 256; i++ {
		n := m.Malloc(16)
		m.StoreWord(n, uint64(i))
		m.StorePtr(prev, n)
		prev = n + 8
	}
	d := ListDesc{NodeBytes: 16, NextOff: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ListLinearize(m, pool, head, d) != 256 {
			b.Fatal("lost nodes")
		}
	}
}

// BenchmarkFinalAddr measures the compiler-inserted pointer-comparison
// support (final-address lookup).
func BenchmarkFinalAddr(b *testing.B) {
	m := NewMachine(MachineConfig{})
	a := m.Malloc(8)
	t := m.Malloc(8)
	Relocate(m, a, t, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.FinalAddr(a) != t {
			b.Fatal("wrong final address")
		}
	}
}

// BenchmarkAblationHopCost sweeps the per-hop exception cost on SMV —
// the design choice between a hardware chase (cheap) and a trap-based
// implementation (expensive).
func BenchmarkAblationHopCost(b *testing.B) {
	for _, cost := range []int64{1, 4, 16, 64} {
		b.Run(benchName("hopCost", int(cost)), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				m := NewMachine(MachineConfig{PerHopCost: cost})
				MustApp("smv").Run(m, AppConfig{Seed: 9, Opt: true})
				cycles = m.Finalize().Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationMSHRs sweeps the miss-level parallelism available to
// the unoptimized health run.
func BenchmarkAblationMSHRs(b *testing.B) {
	for _, n := range []int{1, 2, 8} {
		b.Run(benchName("mshrs", n), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				m := NewMachine(MachineConfig{L1MSHRs: n})
				MustApp("health").Run(m, AppConfig{Seed: 9})
				cycles = m.Finalize().Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationBHCluster sweeps BH's cluster size at a 256-byte
// line, probing the paper's claim that 88-byte cells need long lines.
func BenchmarkAblationBHCluster(b *testing.B) {
	for _, line := range []int{64, 128, 256} {
		b.Run(benchName("line", line), func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				n := RunOne(MustApp("bh"), line, VariantN, 0, benchOptions())
				l := RunOne(MustApp("bh"), line, VariantL, 0, benchOptions())
				sp = l.Speedup(n)
			}
			b.ReportMetric(sp, "speedup")
		})
	}
}

func benchName(k string, v int) string {
	return fmt.Sprintf("%s=%d", k, v)
}

// BenchmarkLoadObsDisabled measures the per-load cost of the
// observability layer when nothing is attached — the nil-tracer /
// nil-sampler fast path. It must report 0 allocs/op; compare ns/op
// against BenchmarkLoadObsTracing for the enabled-path cost.
func BenchmarkLoadObsDisabled(b *testing.B) {
	m := NewMachine(MachineConfig{})
	a := m.Malloc(8)
	m.StoreWord(a, 42)
	b.ReportAllocs()
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		sum += m.LoadWord(a)
	}
	_ = sum
}

// BenchmarkLoadObsTracing is the same load loop with a ring tracer and
// sampler attached — the price of turning observability on.
func BenchmarkLoadObsTracing(b *testing.B) {
	m := NewMachine(MachineConfig{})
	m.SetTracer(NewRingTracer(4096))
	m.SetSampleEvery(100000, &SampleSeries{})
	a := m.Malloc(8)
	m.StoreWord(a, 42)
	b.ReportAllocs()
	b.ResetTimer()
	var sum uint64
	for i := 0; i < b.N; i++ {
		sum += m.LoadWord(a)
	}
	_ = sum
}

// BenchmarkExtensionFalseSharing regenerates the multiprocessor
// false-sharing demonstration (Section 2.2's application).
func BenchmarkExtensionFalseSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, _ := RunFalseSharing(benchOptions())
		if len(tab.Rows) != 2 {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkAblationStaticPlacement contrasts Section 1's two layout
// strategies on eqntott. Static placement packs chunks but can only use
// allocation order; relocation runs after the build and packs in the
// order the hot loop traverses. Expected ordering: N slowest, Static in
// between, L (relocation) fastest — the adaptivity argument for
// relocation.
func BenchmarkAblationStaticPlacement(b *testing.B) {
	a := MustApp("eqntott")
	for _, mode := range []string{"N", "L", "Static"} {
		b.Run(mode, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				m := NewMachine(MachineConfig{LineSize: 128})
				cfg := AppConfig{Seed: 9}
				switch mode {
				case "L":
					cfg.Opt = true
				case "Static":
					cfg.Static = true
				}
				a.Run(m, cfg)
				cycles = m.Finalize().Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}
