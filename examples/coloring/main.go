// Coloring: the cache-conflict application of Section 2.2 — data
// coloring. Three hot blocks that map to the same sets of a 2-way
// cache thrash it; relocating them into distinct cache regions
// (colors) removes the conflicts, and forwarding keeps every old
// pointer valid.
//
// Run with: go run ./examples/coloring
package main

import (
	"fmt"

	"memfwd"
)

const (
	l1Size  = 8192
	assoc   = 2
	waySize = l1Size / assoc
	blockB  = 256
	rounds  = 800
)

func sweep(m *memfwd.Machine, blocks []memfwd.Addr) uint64 {
	var sum uint64
	for _, b := range blocks {
		for off := memfwd.Addr(0); off < blockB; off += 64 {
			sum += m.LoadWord(b + off)
			m.Inst(2)
		}
	}
	return sum
}

func run(recolor bool) (uint64, int64, uint64) {
	m := memfwd.NewMachine(memfwd.MachineConfig{LineSize: 64, L1Size: l1Size, L1Assoc: assoc})
	// Three blocks at the same offset of consecutive way-sized frames:
	// identical cache-set mapping, guaranteed conflicts.
	var blocks []memfwd.Addr
	for len(blocks) < 3 {
		b := m.Malloc(waySize)
		if uint64(b)%uint64(waySize) == 0 {
			blocks = append(blocks, b)
		}
	}
	for i, b := range blocks {
		for off := memfwd.Addr(0); off < blockB; off += 8 {
			m.StoreWord(b+off, uint64(i)*1000+uint64(off))
		}
	}
	if recolor {
		p := memfwd.NewColorPool(m, waySize, 4)
		for i := range blocks {
			blocks[i] = memfwd.ColorRelocate(m, p, blocks[i], blockB, i+1)
		}
	}
	var sum uint64
	for r := 0; r < rounds; r++ {
		sum += sweep(m, blocks)
	}
	st := m.Finalize()
	return st.L1.Misses(0), st.Cycles, sum
}

func main() {
	missBad, cycBad, sumBad := run(false)
	missGood, cycGood, sumGood := run(true)
	if sumBad != sumGood {
		panic("coloring changed results")
	}
	fmt.Printf("%-22s %12s %12s\n", "", "L1 misses", "cycles")
	fmt.Printf("%-22s %12d %12d\n", "conflicting layout", missBad, cycBad)
	fmt.Printf("%-22s %12d %12d\n", "colored layout", missGood, cycGood)
	fmt.Printf("\nspeedup from coloring: %.2fx\n", float64(cycBad)/float64(cycGood))
}
