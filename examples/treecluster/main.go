// Treecluster: the paper's Figure 9 scenario — subtree clustering.
//
// A binary tree is built in pre-order into a fragmented heap, then
// relocated so each cache-line-sized cluster holds a subtree in the
// most balanced form. The example traverses the tree with random
// root-to-leaf descents before and after clustering and reports the
// cache behaviour at a long line size, where clustering pays off.
//
// Run with: go run ./examples/treecluster
package main

import (
	"fmt"
	"math/rand"

	"memfwd"
)

const (
	nodeBytes = 24 // value, left, right
	leftOff   = 8
	rightOff  = 16
	depth     = 14
	nDescents = 30000
)

func build(m *memfwd.Machine, rng *rand.Rand, handle memfwd.Addr, d int, next *uint64) {
	if d == 0 {
		return
	}
	m.Malloc(uint64(16 + rng.Intn(5)*8)) // scatter
	n := m.Malloc(nodeBytes)
	*next++
	m.StoreWord(n, *next)
	m.StorePtr(handle, n)
	build(m, rng, n+leftOff, d-1, next)
	build(m, rng, n+rightOff, d-1, next)
}

// descend walks one random root-to-leaf path.
func descend(m *memfwd.Machine, rootHandle memfwd.Addr, bits uint64) uint64 {
	var sum uint64
	p := m.LoadPtr(rootHandle)
	for p != 0 {
		m.Inst(3)
		sum += m.LoadWord(p)
		if bits&1 == 1 {
			p = m.LoadPtr(p + rightOff)
		} else {
			p = m.LoadPtr(p + leftOff)
		}
		bits >>= 1
	}
	return sum
}

func main() {
	const lineSize = 256
	m := memfwd.NewMachine(memfwd.MachineConfig{LineSize: lineSize})
	rng := rand.New(rand.NewSource(7))

	rootHandle := m.Malloc(8)
	var id uint64
	build(m, rng, rootHandle, depth, &id)
	fmt.Printf("built tree with %d nodes\n", id)

	phase := func() (uint64, int64) {
		s := *m.Snapshot()
		return s.L1.Misses(0), s.Cycles
	}

	m0, c0 := phase()
	var before uint64
	for i := 0; i < nDescents; i++ {
		before += descend(m, rootHandle, rng.Uint64())
	}
	m1, c1 := phase()

	pool := memfwd.NewPool(m, 1<<20)
	n := memfwd.SubtreeCluster(m, pool, rootHandle,
		memfwd.TreeDesc{NodeBytes: nodeBytes, ChildOffs: []uint64{leftOff, rightOff}}, lineSize)
	m2, c2 := phase()

	rng2 := rand.New(rand.NewSource(7)) // same descent pattern
	_ = rng2
	var after uint64
	rngB := rand.New(rand.NewSource(99))
	for i := 0; i < nDescents; i++ {
		after += descend(m, rootHandle, rngB.Uint64())
	}
	m3, c3 := phase()

	fmt.Printf("clustered %d nodes (%d-byte clusters)\n\n", n, lineSize)
	fmt.Printf("%-24s %12s %12s\n", "", "load misses", "cycles")
	fmt.Printf("%-24s %12d %12d\n", "scattered descents", m1-m0, c1-c0)
	fmt.Printf("%-24s %12d %12d\n", "clustering (one-time)", m2-m1, c2-c1)
	fmt.Printf("%-24s %12d %12d\n", "clustered descents", m3-m2, c3-c2)
	fmt.Printf("\ndescent speedup: %.2fx\n", float64(c1-c0)/float64(c3-c2))
	_ = before
	_ = after
}
