// Quickstart: the memory-forwarding mechanism in five minutes.
//
// This example reproduces the paper's Figure 1 walk-through on the
// simulated machine: it relocates a small object, shows that stale
// pointers still read the right data through the forwarding chain, and
// installs a user-level trap that observes the forwarded access.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"memfwd"
)

func main() {
	m := memfwd.NewMachine(memfwd.MachineConfig{LineSize: 64})

	// Allocate an "object" of four 64-bit words and fill it.
	obj := m.Malloc(32)
	for i := 0; i < 4; i++ {
		m.StoreWord(obj+memfwd.Addr(i*8), uint64(100+i))
	}
	fmt.Printf("object at   %#x\n", obj)

	// A second reference to the object that we will *not* update — the
	// stray pointer that makes relocation unsafe without forwarding.
	stray := obj + 16 // points into the middle of the object

	// Relocate the object to fresh, contiguous storage.
	pool := memfwd.NewPool(m, 1<<12)
	tgt := pool.Alloc(32)
	memfwd.Relocate(m, obj, tgt, 4)
	fmt.Printf("relocated to %#x\n", tgt)

	// A user-level trap observes every reference that needed the
	// forwarding safety net (Section 3.2 of the paper).
	m.SetTrap(func(ev memfwd.TrapEvent) {
		fmt.Printf("trap: %v of %#x forwarded to %#x (%d hop)\n",
			ev.Kind, ev.Initial, ev.Final, ev.Hops)
	})

	// The stray pointer still works: the hardware forwards it.
	v := m.LoadWord(stray)
	fmt.Printf("read through stale pointer: %d (want 102)\n", v)

	// Direct access to the new location needs no forwarding.
	v2 := m.LoadWord(tgt + 16)
	fmt.Printf("read at new location:       %d\n", v2)

	// Pointer comparisons remain correct when taken on final addresses.
	fmt.Printf("same object? %v\n", m.PtrEqual(stray, tgt+16))

	st := m.Finalize()
	fmt.Printf("\nstats: %d loads, %d forwarded, %d cycles\n",
		st.Loads, st.LoadsForwarded(), st.Cycles)
}
