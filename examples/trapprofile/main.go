// Trapprofile: the user-level trap tooling of Section 3.2.
//
// The paper proposes two uses for traps taken on forwarded references:
// a profiling tool that records which static references experience
// forwarding, and an on-the-fly repair tool that rewrites stray
// pointers to their final addresses so the forwarding cost is paid at
// most once per pointer.
//
// This example builds both. A table of "client" pointers into a linked
// structure is taken before the structure is linearized; afterwards
// every dereference through the table forwards. The profiler tallies
// forwarding per site; the repair handler then fixes each stray pointer
// the first time it traps, and the example shows forwarding dying out.
//
// Run with: go run ./examples/trapprofile
package main

import (
	"fmt"
	"math/rand"

	"memfwd"
)

const (
	nodeBytes = 16
	nextOff   = 8
	nNodes    = 400
	nClients  = 64
	rounds    = 5
)

func main() {
	m := memfwd.NewMachine(memfwd.MachineConfig{})
	rng := rand.New(rand.NewSource(3))

	// Build a list and let clients stash pointers to random elements.
	head := m.Malloc(8)
	prev := head
	var nodes []memfwd.Addr
	for i := 0; i < nNodes; i++ {
		m.Malloc(uint64(8 + rng.Intn(4)*8))
		n := m.Malloc(nodeBytes)
		m.StoreWord(n, uint64(i+1))
		m.StorePtr(prev, n)
		prev = n + nextOff
		nodes = append(nodes, n)
	}
	clients := m.Malloc(nClients * 8) // guest array of stray pointers
	for i := 0; i < nClients; i++ {
		m.StorePtr(clients+memfwd.Addr(i*8), nodes[rng.Intn(len(nodes))])
	}

	// Linearize without telling the clients.
	pool := memfwd.NewPool(m, 1<<16)
	memfwd.ListLinearize(m, pool, head, memfwd.ListDesc{NodeBytes: nodeBytes, NextOff: nextOff})

	// Phase 1: profiling. Count forwarding per static site.
	profile := map[string]int{}
	m.SetTrap(func(ev memfwd.TrapEvent) {
		profile[m.SiteName(ev.Site)]++
	})
	site := m.Site("client.deref")
	m.SetSite(site)
	sumClients := func() uint64 {
		var s uint64
		for i := 0; i < nClients; i++ {
			p := m.LoadPtr(clients + memfwd.Addr(i*8))
			s += m.LoadWord(p)
		}
		return s
	}
	want := sumClients()
	fmt.Println("profiling round:")
	for k, v := range profile {
		fmt.Printf("  site %-14s forwarded %d references\n", k, v)
	}

	// Phase 2: on-the-fly repair. The handler rewrites the offending
	// client slot to the final address (application-specific knowledge:
	// each trap during this phase comes from the slot being read).
	var slot memfwd.Addr
	repaired := 0
	m.SetTrap(func(ev memfwd.TrapEvent) {
		m.StorePtr(slot, ev.Final)
		repaired++
	})
	fmt.Println("\nrepair rounds (forwarded references per round):")
	for r := 0; r < rounds; r++ {
		before := m.Snapshot().LoadsForwarded()
		var s uint64
		for i := 0; i < nClients; i++ {
			slot = clients + memfwd.Addr(i*8)
			p := m.LoadPtr(slot)
			s += m.LoadWord(p)
		}
		if s != want {
			panic("repair changed program results")
		}
		after := m.Snapshot().LoadsForwarded()
		fmt.Printf("  round %d: %d forwarded\n", r+1, after-before)
	}
	fmt.Printf("\nrepaired %d stray pointers; program results unchanged\n", repaired)
}
