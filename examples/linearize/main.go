// Linearize: the paper's Figure 2 scenario measured end to end.
//
// A linked list is built into a deliberately fragmented heap and
// traversed repeatedly; then the list is linearized (relocated into
// contiguous storage) and traversed again. The example prints the
// cache-miss and cycle counts for both phases, showing the spatial
// locality the optimization manufactures — and verifies that a stray
// pointer taken before linearization still reads correct data.
//
// Run with: go run ./examples/linearize
package main

import (
	"fmt"
	"math/rand"

	"memfwd"
)

const (
	nodeBytes = 24 // value, payload, next
	nextOff   = 16
	nNodes    = 4096
	nPasses   = 24
)

func buildFragmentedList(m *memfwd.Machine, rng *rand.Rand) memfwd.Addr {
	// Age the heap: allocate and free a shuffled population so the
	// list's nodes land at effectively random addresses.
	junk := make([]memfwd.Addr, 3*nNodes)
	for i := range junk {
		junk[i] = m.Malloc(nodeBytes)
	}
	rng.Shuffle(len(junk), func(i, j int) { junk[i], junk[j] = junk[j], junk[i] })
	for _, a := range junk[:len(junk)*4/5] {
		m.Free(a)
	}

	head := m.Malloc(8)
	prev := head
	for i := 0; i < nNodes; i++ {
		n := m.Malloc(nodeBytes)
		m.StoreWord(n, uint64(i))
		m.StoreWord(n+8, uint64(i)*3)
		m.StorePtr(prev, n)
		prev = n + nextOff
	}
	return head
}

func traverse(m *memfwd.Machine, head memfwd.Addr) uint64 {
	var sum uint64
	p := m.LoadPtr(head)
	for p != 0 {
		m.Inst(3)
		sum += m.LoadWord(p) + m.LoadWord(p+8)
		p = m.LoadPtr(p + nextOff)
	}
	return sum
}

func main() {
	m := memfwd.NewMachine(memfwd.MachineConfig{LineSize: 128})
	rng := rand.New(rand.NewSource(42))

	head := buildFragmentedList(m, rng)
	stray := m.LoadPtr(head) // a pointer we will "forget" to update

	before := *m.Snapshot()
	for i := 0; i < nPasses; i++ {
		traverse(m, head)
	}
	mid := *m.Snapshot()

	pool := memfwd.NewPool(m, 1<<20)
	n := memfwd.ListLinearize(m, pool, head, memfwd.ListDesc{NodeBytes: nodeBytes, NextOff: nextOff})
	afterReloc := *m.Snapshot()

	var want uint64
	for i := 0; i < nPasses; i++ {
		want = traverse(m, head)
	}
	after := *m.Snapshot()

	fragMiss := mid.L1.Misses(0) - before.L1.Misses(0)
	fragCyc := mid.Cycles - before.Cycles
	relocCyc := afterReloc.Cycles - mid.Cycles
	denseMiss := after.L1.Misses(0) - afterReloc.L1.Misses(0)
	denseCyc := after.Cycles - afterReloc.Cycles

	fmt.Printf("linearized %d nodes into %d bytes of pool\n\n", n, pool.BytesUsed)
	fmt.Printf("%-28s %12s %12s\n", "", "load misses", "cycles")
	fmt.Printf("%-28s %12d %12d\n", "fragmented traversals", fragMiss, fragCyc)
	fmt.Printf("%-28s %12s %12d\n", "relocation (one-time)", "-", relocCyc)
	fmt.Printf("%-28s %12d %12d\n", "linearized traversals", denseMiss, denseCyc)
	fmt.Printf("\ntraversal speedup: %.2fx   miss reduction: %.1f%%\n",
		float64(fragCyc)/float64(denseCyc),
		100*(1-float64(denseMiss)/float64(fragMiss)))

	// The stray pointer from before linearization still works.
	if v := m.LoadWord(stray); v != 0 {
		panic("stray pointer read wrong value")
	}
	fmt.Printf("stray pointer still reads node 0 correctly via forwarding\n")
	_ = want
}
