// Outofcore: the paper's closing Section 2.2 observation — relocation
// improves spatial locality "within pages (and hence on disk) for
// out-of-core applications", and forwarding keeps it safe.
//
// A linked structure is scattered across ~300 virtual pages while only
// 16 pages fit in memory; traversals thrash. Linearizing the list packs
// it into a handful of pages. A pointer taken before the move still
// works afterwards — it just faults its old page back in.
//
// Run with: go run ./examples/outofcore
package main

import (
	"fmt"
	"math/rand"

	"memfwd"
)

const (
	nodeBytes = 32
	nextOff   = 8
	nNodes    = 300
)

func traverse(s *memfwd.PagedStore, head memfwd.Addr) uint64 {
	var sum uint64
	p := memfwd.Addr(s.LoadWord(head))
	for p != 0 {
		sum += s.LoadWord(p)
		p = memfwd.Addr(s.LoadWord(p + nextOff))
	}
	return sum
}

func main() {
	s := memfwd.NewPagedStore(memfwd.PagedConfig{ResidentPages: 16})
	rng := rand.New(rand.NewSource(1))

	head := s.Heap.Alloc(8)
	prev := head
	for i := 0; i < nNodes; i++ {
		s.Heap.Alloc(uint64(3000 + rng.Intn(3000))) // scatter widely
		n := s.Heap.Alloc(nodeBytes)
		s.StoreWord(n, uint64(i))
		s.StoreWord(prev, uint64(n))
		prev = n + nextOff
	}
	stale := memfwd.Addr(s.LoadWord(head)) // keep a pre-move pointer

	want := traverse(s, head)
	pre := s.Stats
	traverse(s, head)
	fragFaults, fragTime := s.Stats.Faults-pre.Faults, s.Stats.Time-pre.Time

	s.LinearizeList(head, nodeBytes, nextOff)

	if traverse(s, head) != want {
		panic("linearization changed results")
	}
	pre = s.Stats
	traverse(s, head)
	denseFaults, denseTime := s.Stats.Faults-pre.Faults, s.Stats.Time-pre.Time

	fmt.Printf("%-24s %10s %14s\n", "", "faults", "modeled time")
	fmt.Printf("%-24s %10d %14d\n", "scattered traversal", fragFaults, fragTime)
	fmt.Printf("%-24s %10d %14d\n", "linearized traversal", denseFaults, denseTime)
	if denseFaults == 0 {
		fmt.Printf("\nlinearized list now fits the resident set: zero steady-state faults\n")
	} else {
		fmt.Printf("\nspeedup: %.1fx fewer faults\n", float64(fragFaults)/float64(denseFaults))
	}

	if v := s.LoadWord(stale); v != 0 {
		panic("stale pointer broke")
	}
	fmt.Println("pre-move pointer still reads node 0 (one extra fault, no wrong answer)")
}
