// Falseshare: the multiprocessor application of memory forwarding from
// Section 2.2 of the paper — curing false sharing by relocation.
//
// Four processors each increment their own counter; all four counters
// were allocated into one cache line, so every store invalidates the
// other processors' copies even though no data is actually shared.
// Relocating each counter to its own line fixes the ping-pong — and
// memory forwarding makes the relocation safe even though the worker
// threads keep using their original pointers.
//
// Run with: go run ./examples/falseshare
package main

import (
	"fmt"

	"memfwd"
)

const rounds = 1000

func run(relocate bool) (inv, falseInv uint64, cycles int64) {
	s := memfwd.NewSystem(memfwd.SystemConfig{Processors: 4, LineSize: 64})

	base := s.Heap.Alloc(4 * 8)
	counters := make([]memfwd.Addr, 4)
	for i := range counters {
		counters[i] = base + memfwd.Addr(i*8)
	}

	if relocate {
		// The cure: one line per counter, forwarding left behind.
		s.RelocatePadded(counters)
	}

	// Lock-step worker rounds: each processor bumps its own counter
	// through its ORIGINAL pointer.
	for r := 0; r < rounds; r++ {
		for i, c := range s.CPUs {
			v := c.LoadWord(counters[i])
			c.StoreWord(counters[i], v+1)
			c.Inst(6)
		}
	}
	for i, c := range s.CPUs {
		if v := c.LoadWord(counters[i]); v != rounds {
			panic(fmt.Sprintf("cpu %d counter = %d", i, v))
		}
	}
	return s.Stats.Invalidations, s.Stats.FalseInvalidations, s.Cycles()
}

func main() {
	inv0, f0, c0 := run(false)
	inv1, f1, c1 := run(true)

	fmt.Printf("%-26s %14s %14s %12s\n", "", "invalidations", "false-sharing", "cycles")
	fmt.Printf("%-26s %14d %14d %12d\n", "packed counters", inv0, f0, c0)
	fmt.Printf("%-26s %14d %14d %12d\n", "relocated (padded)", inv1, f1, c1)
	fmt.Printf("\nspeedup from curing false sharing: %.2fx\n", float64(c0)/float64(c1))
	fmt.Println("worker pointers were never updated; forwarding kept every count exact")
}
