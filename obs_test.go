package memfwd

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// assertMonotone walks two Stats snapshots with reflection and fails if
// any integer counter decreased between them. Every numeric field of
// Stats (including the nested cache stats and histogram arrays) is a
// cumulative counter, so consecutive snapshots must be ordered.
func assertMonotone(t *testing.T, prev, cur *Stats) {
	t.Helper()
	var walk func(path string, p, c reflect.Value)
	walk = func(path string, p, c reflect.Value) {
		switch p.Kind() {
		case reflect.Struct:
			for i := 0; i < p.NumField(); i++ {
				walk(path+"."+p.Type().Field(i).Name, p.Field(i), c.Field(i))
			}
		case reflect.Array, reflect.Slice:
			for i := 0; i < p.Len(); i++ {
				walk(path, p.Index(i), c.Index(i))
			}
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			if p.Uint() > c.Uint() {
				t.Fatalf("%s decreased: %d -> %d", path, p.Uint(), c.Uint())
			}
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			if p.Int() > c.Int() {
				t.Fatalf("%s decreased: %d -> %d", path, p.Int(), c.Int())
			}
		}
	}
	walk("Stats", reflect.ValueOf(*prev), reflect.ValueOf(*cur))
}

// TestSnapshotMonotoneAndConsistentWithFinalize is the sampler's safety
// property: Machine.Snapshot is non-destructive, consecutive snapshots
// are monotone in every counter, and after Finalize a further Snapshot
// agrees with Finalize exactly.
func TestSnapshotMonotoneAndConsistentWithFinalize(t *testing.T) {
	m := NewMachine(MachineConfig{})
	prev := *m.Snapshot()
	check := func() {
		cur := *m.Snapshot()
		assertMonotone(t, &prev, &cur)
		prev = cur
	}

	// A workload that exercises every counter family: allocation,
	// stores, pointer-chasing loads, relocation (forwarding traffic),
	// traps via the profiler, and frees.
	p := NewPool(m, 4096)
	_ = p
	nodes := make([]Addr, 128)
	for i := range nodes {
		nodes[i] = m.Malloc(32)
		m.StoreWord(nodes[i], uint64(i))
		if i%16 == 15 {
			check()
		}
	}
	for i, a := range nodes {
		if i%2 == 0 {
			tgt := m.Malloc(32)
			Relocate(m, a, tgt, 4)
		}
	}
	check()
	for r := 0; r < 8; r++ {
		for _, a := range nodes {
			m.LoadWord(a) // half of these chase a forwarding hop
		}
		m.Inst(100)
		check()
	}
	for _, a := range nodes {
		m.Free(a)
	}
	check()

	fin := m.Finalize()
	assertMonotone(t, &prev, fin)
	again := m.Snapshot()
	if !reflect.DeepEqual(*fin, *again) {
		t.Fatalf("post-Finalize Snapshot disagrees with Finalize:\n%+v\nvs\n%+v", *fin, *again)
	}
}

// TestRunOneSampling checks the experiment-harness plumbing: a run with
// SampleEvery set returns a non-empty time-series carrying the app's
// phase labels, and a run without it encodes to JSON with no Samples
// key (so existing encodings are byte-identical).
func TestRunOneSampling(t *testing.T) {
	a := MustApp("health")
	r := RunOne(a, 32, VariantL, 0, Options{SampleEvery: 5000})
	if len(r.Samples) == 0 {
		t.Fatal("SampleEvery run returned no samples")
	}
	labels := map[string]bool{}
	var prevInstr uint64
	for i, s := range r.Samples {
		labels[s.Phase] = true
		if s.Instructions <= prevInstr {
			t.Fatalf("sample %d not monotone in instructions", i)
		}
		prevInstr = s.Instructions
	}
	if !labels["sim"] {
		t.Fatalf("expected the health app's sim phase in sample labels, got %v", labels)
	}
	if last := r.Samples[len(r.Samples)-1]; last.Instructions != r.Stats.Instructions {
		t.Fatalf("last sample at %d instructions, run ended at %d",
			last.Instructions, r.Stats.Instructions)
	}

	var with, without bytes.Buffer
	if err := WriteJSON(&with, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(with.String(), `"Samples"`) {
		t.Fatal("sampled run JSON lacks Samples")
	}
	plain := RunOne(a, 32, VariantL, 0, Options{})
	if err := WriteJSON(&without, plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(without.String(), `"Samples"`) {
		t.Fatal("unsampled run JSON must omit Samples")
	}
}

// TestEndToEndTraceSinks runs a real application with both file formats
// attached through one tracer and validates each output whole.
func TestEndToEndTraceSinks(t *testing.T) {
	var nd, pf bytes.Buffer
	tr := NewTracer(MultiSink(NewNDJSONSink(&nd), NewPerfettoSink(&pf)), 256)
	// Cache misses dominate the event stream (and are covered by the
	// internal/sim tests); filtering them keeps this test fast.
	tr.EnableOnly(TraceAlloc, TraceFree, TraceRelocate, TraceForwardHop,
		TraceTrap, TracePhaseBegin, TracePhaseEnd)
	m := NewMachine(MachineConfig{})
	m.SetTracer(tr)
	// SMV is the app whose references actually ride the forwarding
	// mechanism (Figure 10); the others update their pointers.
	MustApp("smv").Run(m, AppConfig{Opt: true})
	m.Finalize()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Emitted() == 0 {
		t.Fatal("app run emitted no trace events")
	}

	lines := strings.Split(strings.TrimSpace(nd.String()), "\n")
	if uint64(len(lines)) != tr.Emitted() {
		t.Fatalf("NDJSON has %d lines, tracer emitted %d", len(lines), tr.Emitted())
	}
	kindSeen := map[string]bool{}
	for i, ln := range lines {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("NDJSON line %d invalid: %v", i, err)
		}
		kindSeen[ev.Kind] = true
	}
	for _, want := range []string{"alloc", "relocate", "forwardHop"} {
		if !kindSeen[want] {
			t.Fatalf("NDJSON missing %q events; saw %v", want, kindSeen)
		}
	}

	var evs []map[string]any
	if err := json.Unmarshal(pf.Bytes(), &evs); err != nil {
		t.Fatalf("Perfetto output is not a JSON array: %v", err)
	}
	if uint64(len(evs)) != tr.Emitted() {
		t.Fatalf("Perfetto has %d events, tracer emitted %d", len(evs), tr.Emitted())
	}
}
