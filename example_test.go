package memfwd_test

import (
	"fmt"

	"memfwd"
)

// The basic mechanism: relocate an object and read it through a stale
// pointer — forwarding guarantees the right answer.
func Example() {
	m := memfwd.NewMachine(memfwd.MachineConfig{})
	obj := m.Malloc(16)
	m.StoreWord(obj, 42)

	pool := memfwd.NewPool(m, 4096)
	tgt := pool.Alloc(16)
	memfwd.Relocate(m, obj, tgt, 2)

	fmt.Println(m.LoadWord(obj))      // stale pointer, forwarded
	fmt.Println(m.LoadWord(tgt))      // new location, direct
	fmt.Println(m.PtrEqual(obj, tgt)) // same object by final address
	// Output:
	// 42
	// 42
	// true
}

// User-level traps observe every forwarded reference (Section 3.2).
func ExampleMachine_SetTrap() {
	m := memfwd.NewMachine(memfwd.MachineConfig{})
	src := m.Malloc(8)
	tgt := m.Malloc(8)
	m.StoreWord(src, 7)
	memfwd.Relocate(m, src, tgt, 1)

	m.SetTrap(func(ev memfwd.TrapEvent) {
		fmt.Printf("%v forwarded after %d hop\n", ev.Kind, ev.Hops)
	})
	_ = m.LoadWord(src)
	// Output:
	// load forwarded after 1 hop
}

// List linearization (Figure 4b): pack a scattered list into
// consecutive addresses; the head and every internal link are updated,
// and any pointer that was not updated keeps working via forwarding.
func ExampleListLinearize() {
	m := memfwd.NewMachine(memfwd.MachineConfig{})
	head := m.Malloc(8)
	prev := head
	for i := 1; i <= 3; i++ {
		m.Malloc(40) // fragmentation between nodes
		n := m.Malloc(16)
		m.StoreWord(n, uint64(i*10))
		m.StorePtr(prev, n)
		prev = n + 8
	}
	stale := m.LoadPtr(head)

	pool := memfwd.NewPool(m, 4096)
	moved := memfwd.ListLinearize(m, pool, head, memfwd.ListDesc{NodeBytes: 16, NextOff: 8})
	fmt.Println("moved", moved, "nodes")

	p := m.LoadPtr(head)
	next := m.LoadPtr(p + 8)
	fmt.Println("contiguous:", next == p+16)
	fmt.Println("stale pointer reads:", m.LoadWord(stale))
	// Output:
	// moved 3 nodes
	// contiguous: true
	// stale pointer reads: 10
}

// Running a paper benchmark and reading the statistics the figures are
// built from.
func ExampleApp() {
	m := memfwd.NewMachine(memfwd.MachineConfig{LineSize: 64})
	app := memfwd.MustApp("mst")
	res := app.Run(m, memfwd.AppConfig{Seed: 5, Opt: true})
	st := m.Finalize()
	fmt.Println("checksum nonzero:", res.Checksum != 0)
	fmt.Println("relocated something:", res.Relocated > 0)
	fmt.Println("measured cycles:", st.Cycles > 0)
	// Output:
	// checksum nonzero: true
	// relocated something: true
	// measured cycles: true
}
