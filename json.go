package memfwd

import (
	"encoding/json"
	"io"
)

// WriteJSON is the one JSON encoder every harness output goes through:
// two-space-indented encoding of runs, stats, and series, shared by
// cmd/figures -json and cmd/memfwd-sim -json so their encodings can
// never drift apart.
func WriteJSON(w io.Writer, v interface{}) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
