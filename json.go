package memfwd

import (
	"io"

	"memfwd/internal/report"
)

// WriteJSON is the one JSON encoder every harness output goes through:
// two-space-indented encoding of runs, stats, and series, shared by
// cmd/figures -json and cmd/memfwd-sim -json so their encodings can
// never drift apart. It delegates to report.WriteJSON, which internal
// packages (the HTTP telemetry plane) use directly.
func WriteJSON(w io.Writer, v interface{}) error {
	return report.WriteJSON(w, v)
}
