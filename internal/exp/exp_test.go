package exp

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"memfwd/internal/obs"
)

func specN(n int) []Spec {
	specs := make([]Spec, n)
	for i := range specs {
		specs[i] = Spec{App: fmt.Sprintf("app%d", i%5), Line: 32 << (i % 3), Variant: "N"}
	}
	return specs
}

func TestResultsInSpecOrder(t *testing.T) {
	specs := specN(100)
	got := Run(Config{Jobs: 8}, specs, func(i int, s Spec) int {
		return i * 7
	})
	if len(got) != len(specs) {
		t.Fatalf("len = %d, want %d", len(got), len(specs))
	}
	for i, v := range got {
		if v != i*7 {
			t.Fatalf("results[%d] = %d, want %d (out of spec order)", i, v, i*7)
		}
	}
}

func TestDeterministicAcrossJobCounts(t *testing.T) {
	specs := specN(60)
	f := func(i int, s Spec) string { return fmt.Sprintf("%d:%s", i, s) }
	serial := Run(Config{Jobs: 1}, specs, f)
	for _, jobs := range []int{2, 7, 64} {
		got := Run(Config{Jobs: jobs}, specs, f)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("jobs=%d: results[%d] = %q, want %q", jobs, i, got[i], serial[i])
			}
		}
	}
}

func TestEmptyAndDefaults(t *testing.T) {
	if got := Run(Config{}, nil, func(i int, s Spec) int { return 1 }); len(got) != 0 {
		t.Fatalf("empty specs produced %d results", len(got))
	}
	// Jobs <= 0 defaults, jobs > len clamps: both must still run all.
	for _, jobs := range []int{0, -3, 99} {
		got := Run(Config{Jobs: jobs}, specN(3), func(i int, s Spec) int { return i })
		if len(got) != 3 || got[2] != 2 {
			t.Fatalf("jobs=%d: got %v", jobs, got)
		}
	}
}

// TestJobsRunConcurrently proves the pool really overlaps jobs: four
// jobs each block until all four are in flight, which can only resolve
// with >= 4 workers running at once.
func TestJobsRunConcurrently(t *testing.T) {
	const n = 4
	var barrier sync.WaitGroup
	barrier.Add(n)
	done := make(chan struct{})
	go func() {
		Run(Config{Jobs: n}, specN(n), func(i int, s Spec) int {
			barrier.Done()
			barrier.Wait() // blocks unless all n jobs are in flight
			return i
		})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("pool did not run jobs concurrently")
	}
}

func TestProgressCounts(t *testing.T) {
	p := &Progress{}
	specs := specN(12)
	Run(Config{Jobs: 3, Progress: p}, specs, func(i int, s Spec) int {
		time.Sleep(time.Millisecond)
		return i
	})
	if p.Done() != len(specs) || p.Queued() != 0 || p.Running() != 0 {
		t.Fatalf("done=%d queued=%d running=%d after completion", p.Done(), p.Queued(), p.Running())
	}
	if p.CellWallSum() <= 0 || p.CellWallMax() <= 0 || p.CellWallLast() <= 0 {
		t.Fatalf("wall aggregates not recorded: sum=%v max=%v last=%v",
			p.CellWallSum(), p.CellWallMax(), p.CellWallLast())
	}
	if p.CellWallMax() > p.CellWallSum() {
		t.Fatalf("max %v exceeds sum %v", p.CellWallMax(), p.CellWallSum())
	}
	// A second Run on the same Progress accumulates.
	Run(Config{Jobs: 2, Progress: p}, specN(5), func(i int, s Spec) int { return i })
	if p.Done() != len(specs)+5 {
		t.Fatalf("done = %d after second run, want %d", p.Done(), len(specs)+5)
	}
}

func TestNilProgressAndTracerSafe(t *testing.T) {
	var p *Progress
	if p.Done() != 0 || p.Queued() != 0 || p.Running() != 0 || p.CellWallSum() != 0 ||
		p.CellWallMax() != 0 || p.CellWallLast() != 0 {
		t.Fatal("nil Progress accessors not zero")
	}
	got := Run(Config{Jobs: 4}, specN(8), func(i int, s Spec) int { return i })
	if len(got) != 8 {
		t.Fatalf("run without observers returned %d results", len(got))
	}
}

func TestRegisterMetrics(t *testing.T) {
	p := &Progress{}
	r := obs.NewRegistry()
	p.RegisterMetrics(r)
	Run(Config{Jobs: 2, Progress: p}, specN(6), func(i int, s Spec) int {
		time.Sleep(time.Millisecond)
		return i
	})
	want := map[string]float64{
		"exp.jobs.queued":  0,
		"exp.jobs.running": 0,
		"exp.jobs.done":    6,
	}
	got := map[string]float64{}
	for _, m := range r.Snapshot() {
		got[m.Name] = m.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
	if got["exp.cell.wall_seconds.sum"] <= 0 {
		t.Errorf("exp.cell.wall_seconds.sum = %v, want > 0", got["exp.cell.wall_seconds.sum"])
	}
}

// TestTracerEventPairs checks the phaseBegin/phaseEnd emission: one
// pair per job, labels matching the spec, begin before end per job, and
// non-decreasing wall-clock stamps within each pair.
func TestTracerEventPairs(t *testing.T) {
	sink := &obs.MemorySink{}
	tr := obs.NewTracer(sink, 0)
	specs := specN(10)
	Run(Config{Jobs: 4, Tracer: tr}, specs, func(i int, s Spec) int { return i })
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	type pair struct {
		begin, end int
		beginAt    int64
	}
	pairs := make(map[uint64]*pair)
	for _, ev := range sink.Events {
		p := pairs[ev.N]
		if p == nil {
			p = &pair{}
			pairs[ev.N] = p
		}
		if ev.Label != specs[ev.N].String() {
			t.Fatalf("job %d labeled %q, want %q", ev.N, ev.Label, specs[ev.N].String())
		}
		switch ev.Kind {
		case obs.KPhaseBegin:
			p.begin++
			p.beginAt = ev.Cycle
		case obs.KPhaseEnd:
			p.end++
			if p.begin != 1 {
				t.Fatalf("job %d ended without beginning", ev.N)
			}
			if ev.Cycle < p.beginAt {
				t.Fatalf("job %d: end stamp %d before begin stamp %d", ev.N, ev.Cycle, p.beginAt)
			}
		default:
			t.Fatalf("unexpected event kind %v", ev.Kind)
		}
	}
	if len(pairs) != len(specs) {
		t.Fatalf("%d traced jobs, want %d", len(pairs), len(specs))
	}
	for n, p := range pairs {
		if p.begin != 1 || p.end != 1 {
			t.Fatalf("job %d: %d begins, %d ends", n, p.begin, p.end)
		}
	}
}

func TestSpecString(t *testing.T) {
	cases := []struct {
		s    Spec
		want string
	}{
		{Spec{App: "health", Line: 32, Variant: "NP", Block: 4}, "health/line32/NP/blk4"},
		{Spec{App: "smv", Line: 32, Variant: "Perf"}, "smv/line32/Perf"},
		{Spec{App: "false-sharing", Variant: "packed"}, "false-sharing/packed"},
		{Spec{}, ""},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.s, got, c.want)
		}
	}
}
