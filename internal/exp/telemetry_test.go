package exp

import (
	"sync/atomic"
	"testing"
	"time"

	"memfwd/internal/obs"
)

// TestProgressRetriedCount: every transient re-run advances the retry
// counter; hard failures and successes do not.
func TestProgressRetriedCount(t *testing.T) {
	p := &Progress{}
	attempts := make([]int32, 6)
	results, errs := RunChecked(Config{Jobs: 2, Retries: 2, Progress: p}, specN(6),
		func(i int, s Spec) (int, error) {
			n := atomic.AddInt32(&attempts[i], 1)
			// Even cells fail transiently twice, then succeed.
			if i%2 == 0 && n <= 2 {
				return 0, Transient(errTransientTest)
			}
			return i, nil
		})
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	for i, r := range results {
		if r != i {
			t.Fatalf("result %d = %d", i, r)
		}
	}
	// Three even cells × two transient re-runs each.
	if got := p.Retried(); got != 6 {
		t.Fatalf("Retried = %d, want 6", got)
	}
	if p.Failed() != 0 {
		t.Fatalf("Failed = %d, want 0", p.Failed())
	}
}

var errTransientTest = timeoutish("flaky")

type timeoutish string

func (e timeoutish) Error() string { return string(e) }

func TestProgressWorkersAndUtilization(t *testing.T) {
	var nilP *Progress
	if nilP.Retried() != 0 || nilP.Workers() != 0 || nilP.Utilization() != 0 {
		t.Fatal("nil Progress telemetry accessors not zero")
	}
	p := &Progress{}
	if p.Utilization() != 0 {
		t.Fatal("Utilization before any run should be 0")
	}
	_, errs := RunChecked(Config{Jobs: 3, Progress: p}, specN(9),
		func(i int, s Spec) (int, error) {
			time.Sleep(5 * time.Millisecond)
			return i, nil
		})
	if len(errs) != 0 {
		t.Fatalf("unexpected errors: %v", errs)
	}
	if p.Workers() != 3 {
		t.Fatalf("Workers = %d, want 3", p.Workers())
	}
	u := p.Utilization()
	if u <= 0 {
		t.Fatalf("Utilization = %v, want > 0 after busy cells", u)
	}
	// Conservation: the pool cannot be more than fully busy (small
	// scheduling slack tolerated).
	if u > 1.05 {
		t.Fatalf("Utilization = %v, want <= 1", u)
	}
	// A wider second run raises the high-water worker count.
	RunChecked(Config{Jobs: 5, Progress: p}, specN(5), func(i int, s Spec) (int, error) { return i, nil })
	if p.Workers() != 5 {
		t.Fatalf("Workers after wider run = %d, want 5", p.Workers())
	}
}

func TestProgressTelemetryMetrics(t *testing.T) {
	p := &Progress{}
	r := obs.NewRegistry()
	p.RegisterMetrics(r)
	attempts := make([]int32, 4)
	RunChecked(Config{Jobs: 2, Retries: 1, Progress: p}, specN(4),
		func(i int, s Spec) (int, error) {
			if atomic.AddInt32(&attempts[i], 1) == 1 && i == 0 {
				return 0, Transient(errTransientTest)
			}
			time.Sleep(time.Millisecond)
			return i, nil
		})
	vals := map[string]float64{}
	for _, mv := range r.Snapshot() {
		vals[mv.Name] = mv.Value
	}
	if vals["exp.jobs.retried"] != 1 {
		t.Fatalf("exp.jobs.retried = %v, want 1", vals["exp.jobs.retried"])
	}
	if vals["exp.workers"] != 2 {
		t.Fatalf("exp.workers = %v, want 2", vals["exp.workers"])
	}
	if u, ok := vals["exp.pool.utilization"]; !ok || u < 0 {
		t.Fatalf("exp.pool.utilization = %v (present=%v)", u, ok)
	}
}
