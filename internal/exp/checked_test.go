package exp

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestPanicDoesNotWedgePool is the regression test for the submission
// deadlock: with the old channel-fed pool, a worker that died without
// draining the index channel left the submitting goroutine blocked
// forever. Now a panicking job becomes a JobError and every other cell
// still completes.
func TestPanicDoesNotWedgePool(t *testing.T) {
	specs := specN(40)
	done := make(chan struct{})
	var results []int
	var errs []*JobError
	go func() {
		defer close(done)
		results, errs = RunChecked(Config{Jobs: 2}, specs, func(i int, s Spec) (int, error) {
			if i == 3 || i == 17 {
				panic(fmt.Sprintf("boom %d", i))
			}
			return i * 7, nil
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunChecked wedged after a job panic")
	}
	if len(errs) != 2 {
		t.Fatalf("got %d errors, want 2: %v", len(errs), errs)
	}
	if errs[0].Index != 3 || errs[1].Index != 17 {
		t.Fatalf("error indices %d,%d want 3,17", errs[0].Index, errs[1].Index)
	}
	for _, e := range errs {
		if e.Panic == nil || len(e.Stack) == 0 {
			t.Fatalf("job %d: panic/stack not captured: %+v", e.Index, e)
		}
		if want := fmt.Sprintf("panic: boom %d", e.Index); e.Reason() != want {
			t.Fatalf("Reason() = %q, want %q", e.Reason(), want)
		}
	}
	for i, v := range results {
		if i == 3 || i == 17 {
			if v != 0 {
				t.Fatalf("failed cell %d has nonzero result %d", i, v)
			}
			continue
		}
		if v != i*7 {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*7)
		}
	}
}

// TestLegacyRunRepanics pins the compatibility contract: Run (no error
// containment) still crashes the process on a job panic, exactly as
// the serial loops did.
func TestLegacyRunRepanics(t *testing.T) {
	defer func() {
		if p := recover(); p != "boom" {
			t.Fatalf("recovered %v, want the job's own panic value", p)
		}
	}()
	Run(Config{Jobs: 1}, specN(4), func(i int, s Spec) int {
		if i == 2 {
			panic("boom")
		}
		return 0
	})
	t.Fatal("Run returned after a job panic")
}

func TestCancellationMidSuite(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	specs := specN(50)
	var started sync.Map
	p := &Progress{}
	results, errs := RunChecked(Config{Jobs: 2, Ctx: ctx, Progress: p}, specs, func(i int, s Spec) (int, error) {
		started.Store(i, true)
		if i == 5 {
			cancel()
		}
		return i + 1, nil
	})
	if len(errs) == 0 {
		t.Fatal("no jobs were canceled")
	}
	for _, e := range errs {
		if !e.Canceled {
			t.Fatalf("job %d failed for a non-cancellation reason: %v", e.Index, e)
		}
		if e.Reason() != "canceled" {
			t.Fatalf("Reason() = %q", e.Reason())
		}
		if results[e.Index] != 0 {
			t.Fatalf("canceled job %d has a result", e.Index)
		}
	}
	// Jobs in flight when cancel fires may race their own completion
	// against ctx.Done, but the tail of the suite must be canceled
	// without ever running.
	neverRan := 0
	for _, e := range errs {
		if _, ran := started.Load(e.Index); !ran {
			neverRan++
		}
	}
	if neverRan == 0 {
		t.Fatal("every canceled job had already started; cancellation did not stop the queue")
	}
	// Every spec is accounted for exactly once: completed or canceled.
	snap := p.Snapshot()
	if snap.Enqueued != len(specs) || snap.Queued != 0 || snap.Running != 0 {
		t.Fatalf("snapshot after return: %+v", snap)
	}
	if snap.Done+snap.Failed != len(specs) || snap.Failed != len(errs) {
		t.Fatalf("done %d + failed %d != %d (errs %d)", snap.Done, snap.Failed, len(specs), len(errs))
	}
	for i, v := range results {
		if v != 0 && v != i+1 {
			t.Fatalf("results[%d] = %d", i, v)
		}
	}
}

// TestProgressConservation drives one shared Progress from several
// overlapping RunChecked invocations and asserts, on every concurrent
// snapshot, that no counter is negative and the conservation law
// Enqueued == Queued + Running + Done + Failed holds.
func TestProgressConservation(t *testing.T) {
	p := &Progress{}
	stop := make(chan struct{})
	var bad sync.Map
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := p.Snapshot()
			if s.Queued < 0 || s.Running < 0 || s.Done < 0 || s.Failed < 0 {
				bad.Store(fmt.Sprintf("negative counter: %+v", s), true)
			}
			if s.Enqueued != s.Queued+s.Running+s.Done+s.Failed {
				bad.Store(fmt.Sprintf("conservation violated: %+v", s), true)
			}
		}
	}()

	var suites sync.WaitGroup
	for suite := 0; suite < 4; suite++ {
		suites.Add(1)
		go func(suite int) {
			defer suites.Done()
			_, _ = RunChecked(Config{Jobs: 3, Progress: p}, specN(60), func(i int, s Spec) (int, error) {
				if (i+suite)%7 == 0 {
					return 0, errors.New("planned failure")
				}
				return i, nil
			})
		}(suite)
	}
	suites.Wait()
	close(stop)
	watcher.Wait()

	bad.Range(func(k, _ any) bool {
		t.Error(k)
		return true
	})
	snap := p.Snapshot()
	if snap.Enqueued != 4*60 || snap.Queued != 0 || snap.Running != 0 {
		t.Fatalf("final snapshot %+v", snap)
	}
	if snap.Done+snap.Failed != 4*60 {
		t.Fatalf("final snapshot loses jobs: %+v", snap)
	}
}

func TestJobTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	specs := specN(3)
	results, errs := RunChecked(Config{Jobs: 3, JobTimeout: 20 * time.Millisecond}, specs, func(i int, s Spec) (int, error) {
		if i == 1 {
			<-block // exceeds the deadline
		}
		return i + 100, nil
	})
	if len(errs) != 1 || errs[0].Index != 1 || !errs[0].Timeout {
		t.Fatalf("errs = %v", errs)
	}
	if errs[0].Reason() != "timeout" {
		t.Fatalf("Reason() = %q", errs[0].Reason())
	}
	if results[0] != 100 || results[2] != 102 {
		t.Fatalf("surviving cells lost: %v", results)
	}
}

// TestTransientRetry checks the retry loop: transient errors are
// retried with deterministic seeded backoff through the Sleep seam;
// plain errors are not retried.
func TestTransientRetry(t *testing.T) {
	var mu sync.Mutex
	var slept []time.Duration
	attempts := map[int]int{}
	cfg := Config{
		Jobs:      1,
		Retries:   3,
		Backoff:   time.Millisecond,
		RetrySeed: 42,
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	}
	run := func(i int, s Spec) (int, error) {
		mu.Lock()
		attempts[i]++
		n := attempts[i]
		mu.Unlock()
		switch i {
		case 0: // succeeds on the third attempt
			if n < 3 {
				return 0, Transient(errors.New("soft fault"))
			}
			return 7, nil
		case 1: // transient forever: exhausts retries
			return 0, Transient(errors.New("always"))
		default: // plain error: never retried
			return 0, errors.New("hard")
		}
	}
	results, errs := RunChecked(cfg, specN(3), run)
	if results[0] != 7 || attempts[0] != 3 {
		t.Fatalf("job 0: result %d after %d attempts", results[0], attempts[0])
	}
	if attempts[1] != cfg.Retries+1 {
		t.Fatalf("job 1 ran %d times, want %d", attempts[1], cfg.Retries+1)
	}
	if attempts[2] != 1 {
		t.Fatalf("plain error retried: %d attempts", attempts[2])
	}
	if len(errs) != 2 || errs[0].Index != 1 || errs[1].Index != 2 {
		t.Fatalf("errs = %v", errs)
	}
	if errs[0].Attempts != cfg.Retries+1 || errs[1].Attempts != 1 {
		t.Fatalf("attempt counts: %d, %d", errs[0].Attempts, errs[1].Attempts)
	}
	if !IsTransient(errs[0].Err) || IsTransient(errs[1].Err) {
		t.Fatal("transient marking lost")
	}
	// Backoff doubles per attempt (plus jitter bounded by the base).
	if len(slept) != 2+cfg.Retries {
		t.Fatalf("slept %d times: %v", len(slept), slept)
	}
	for k, d := range slept {
		if d < time.Millisecond {
			t.Fatalf("sleep %d = %v below base", k, d)
		}
	}

	// Same config, same seed: identical jitter sequence.
	var slept2 []time.Duration
	cfg.Sleep = func(d time.Duration) { slept2 = append(slept2, d) }
	attempts = map[int]int{}
	_, _ = RunChecked(cfg, specN(3), run)
	if len(slept2) != len(slept) {
		t.Fatalf("second run slept %d times, want %d", len(slept2), len(slept))
	}
	for k := range slept {
		if slept[k] != slept2[k] {
			t.Fatalf("jitter not deterministic: %v vs %v", slept, slept2)
		}
	}
}

func TestSuiteDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	block := make(chan struct{})
	defer close(block)
	_, errs := RunChecked(Config{Jobs: 1, Ctx: ctx}, specN(2), func(i int, s Spec) (int, error) {
		<-block
		return 0, nil
	})
	if len(errs) != 2 {
		t.Fatalf("errs = %v", errs)
	}
	// Job 0 was abandoned at the deadline; job 1 never started.
	for _, e := range errs {
		if !e.Canceled {
			t.Fatalf("job %d: %v", e.Index, e)
		}
	}
	if !errors.Is(errs[0], context.DeadlineExceeded) {
		t.Fatalf("deadline not propagated: %v", errs[0].Err)
	}
}
