// Package exp is the parallel experiment engine behind the figure
// runners. The paper's evaluation is a large matrix of independent
// simulations — app × line size × variant × prefetch block — and every
// cell constructs its own Machine, so the matrix is embarrassingly
// parallel. The engine turns a runner's nested loops into a slice of
// job Specs, executes them across a worker pool, and returns results
// indexed exactly as the specs were given: callers observe the same
// deterministic order as the old serial loops, byte for byte, at any
// worker count.
//
// Progress is observable through the existing observability layer
// (internal/obs): an optional Progress publishes jobs queued / running
// / done and per-cell wall time as metrics-registry views, and an
// optional Tracer receives one phaseBegin/phaseEnd event pair per cell
// (timestamped in wall-clock microseconds since the engine started, so
// a Perfetto sink renders the pool as a span timeline).
package exp

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"memfwd/internal/obs"
)

// Spec identifies one cell of an experiment matrix. Zero fields are
// simply absent (the false-sharing experiment has no line size or
// prefetch block, for example); App and Variant carry the identity.
type Spec struct {
	App     string
	Line    int // cache line size in bytes, 0 if not swept
	Variant string
	Block   int // prefetch block size in lines, 0 if none
}

// String renders the cell compactly ("health/line32/NP/blk4") for
// trace labels and progress output.
func (s Spec) String() string {
	parts := make([]string, 0, 4)
	if s.App != "" {
		parts = append(parts, s.App)
	}
	if s.Line > 0 {
		parts = append(parts, fmt.Sprintf("line%d", s.Line))
	}
	if s.Variant != "" {
		parts = append(parts, s.Variant)
	}
	if s.Block > 0 {
		parts = append(parts, fmt.Sprintf("blk%d", s.Block))
	}
	return strings.Join(parts, "/")
}

// Config parameterizes one engine invocation.
type Config struct {
	// Jobs is the worker-pool size; <= 0 takes GOMAXPROCS. Results are
	// identical at every value — only wall time changes.
	Jobs int

	// Tracer, when non-nil, receives a phaseBegin/phaseEnd event pair
	// per job (Label = Spec.String(), N = job index, Cycle = wall-clock
	// microseconds since Run started). The engine serializes its own
	// emissions; the tracer must not be fed concurrently by others
	// while Run executes.
	Tracer *obs.Tracer

	// Progress, when non-nil, is updated live as jobs move through the
	// pool; register it on a metrics registry to watch long suites.
	Progress *Progress
}

// Run executes run(i, specs[i]) for every spec across a worker pool and
// returns the results in spec order. The result slice layout is
// independent of worker count and completion order, which is what keeps
// tables, golden files, and -json output byte-identical between
// -jobs=1 and -jobs=N. A panic in run propagates and crashes the
// process, exactly as it would have in the serial loops.
func Run[R any](cfg Config, specs []Spec, run func(i int, s Spec) R) []R {
	results := make([]R, len(specs))
	if len(specs) == 0 {
		return results
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(specs) {
		jobs = len(specs)
	}

	cfg.Progress.enqueue(len(specs))
	start := time.Now()
	var traceMu sync.Mutex
	emit := func(kind obs.Kind, i int) {
		if cfg.Tracer == nil {
			return
		}
		traceMu.Lock()
		cfg.Tracer.Emit(obs.Event{
			Cycle: time.Since(start).Microseconds(),
			Kind:  kind,
			N:     uint64(i),
			Label: specs[i].String(),
		})
		traceMu.Unlock()
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				cfg.Progress.begin()
				emit(obs.KPhaseBegin, i)
				t0 := time.Now()
				results[i] = run(i, specs[i])
				d := time.Since(t0)
				emit(obs.KPhaseEnd, i)
				cfg.Progress.finish(d)
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// Progress is the engine's observable state: jobs queued, running, and
// done, plus per-cell wall-time aggregates. One Progress may be shared
// across several Run invocations (a whole figure suite); counts
// accumulate. All methods are safe for concurrent use and are no-ops
// on a nil receiver, mirroring the obs.Tracer idiom.
type Progress struct {
	mu       sync.Mutex
	queued   int
	running  int
	done     int
	wallSum  time.Duration
	wallMax  time.Duration
	lastSpan time.Duration
}

func (p *Progress) enqueue(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.queued += n
	p.mu.Unlock()
}

func (p *Progress) begin() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.queued--
	p.running++
	p.mu.Unlock()
}

func (p *Progress) finish(d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.running--
	p.done++
	p.wallSum += d
	p.lastSpan = d
	if d > p.wallMax {
		p.wallMax = d
	}
	p.mu.Unlock()
}

// Queued returns the number of jobs submitted but not yet started.
func (p *Progress) Queued() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}

// Running returns the number of jobs currently executing.
func (p *Progress) Running() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running
}

// Done returns the number of completed jobs.
func (p *Progress) Done() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}

// CellWallSum returns the summed wall time of all completed cells (the
// serial-equivalent cost of the work done so far).
func (p *Progress) CellWallSum() time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wallSum
}

// CellWallMax returns the wall time of the slowest completed cell.
func (p *Progress) CellWallMax() time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wallMax
}

// CellWallLast returns the wall time of the most recently completed
// cell.
func (p *Progress) CellWallLast() time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastSpan
}

// RegisterMetrics exposes the progress counters on a metrics registry
// as live views: exp.jobs.queued / running / done and
// exp.cell.wall_seconds.{sum,max,last}. Register once per registry.
func (p *Progress) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("exp.jobs.queued", func() float64 { return float64(p.Queued()) })
	r.GaugeFunc("exp.jobs.running", func() float64 { return float64(p.Running()) })
	r.GaugeFunc("exp.jobs.done", func() float64 { return float64(p.Done()) })
	r.GaugeFunc("exp.cell.wall_seconds.sum", func() float64 { return p.CellWallSum().Seconds() })
	r.GaugeFunc("exp.cell.wall_seconds.max", func() float64 { return p.CellWallMax().Seconds() })
	r.GaugeFunc("exp.cell.wall_seconds.last", func() float64 { return p.CellWallLast().Seconds() })
}
