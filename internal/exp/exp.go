// Package exp is the parallel experiment engine behind the figure
// runners. The paper's evaluation is a large matrix of independent
// simulations — app × line size × variant × prefetch block — and every
// cell constructs its own Machine, so the matrix is embarrassingly
// parallel. The engine turns a runner's nested loops into a slice of
// job Specs, executes them across a worker pool, and returns results
// indexed exactly as the specs were given: callers observe the same
// deterministic order as the old serial loops, byte for byte, at any
// worker count.
//
// Progress is observable through the existing observability layer
// (internal/obs): an optional Progress publishes jobs queued / running
// / done and per-cell wall time as metrics-registry views, and an
// optional Tracer receives one phaseBegin/phaseEnd event pair per cell
// (timestamped in wall-clock microseconds since the engine started, so
// a Perfetto sink renders the pool as a span timeline).
package exp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memfwd/internal/obs"
)

// Spec identifies one cell of an experiment matrix. Zero fields are
// simply absent (the false-sharing experiment has no line size or
// prefetch block, for example); App and Variant carry the identity.
type Spec struct {
	App     string
	Line    int // cache line size in bytes, 0 if not swept
	Variant string
	Block   int // prefetch block size in lines, 0 if none
}

// String renders the cell compactly ("health/line32/NP/blk4") for
// trace labels and progress output.
func (s Spec) String() string {
	parts := make([]string, 0, 4)
	if s.App != "" {
		parts = append(parts, s.App)
	}
	if s.Line > 0 {
		parts = append(parts, fmt.Sprintf("line%d", s.Line))
	}
	if s.Variant != "" {
		parts = append(parts, s.Variant)
	}
	if s.Block > 0 {
		parts = append(parts, fmt.Sprintf("blk%d", s.Block))
	}
	return strings.Join(parts, "/")
}

// Config parameterizes one engine invocation.
type Config struct {
	// Jobs is the worker-pool size; <= 0 takes GOMAXPROCS. Results are
	// identical at every value — only wall time changes.
	Jobs int

	// Tracer, when non-nil, receives a phaseBegin/phaseEnd event pair
	// per job (Label = Spec.String(), N = job index, Cycle = wall-clock
	// microseconds since Run started). The engine serializes its own
	// emissions; the tracer must not be fed concurrently by others
	// while Run executes.
	Tracer *obs.Tracer

	// Progress, when non-nil, is updated live as jobs move through the
	// pool; register it on a metrics registry to watch long suites.
	Progress *Progress

	// Ctx, when non-nil, cancels the suite: jobs not yet started when
	// it is done are recorded as canceled without running, and running
	// jobs are abandoned at the next cancellation check. A
	// context.WithDeadline here is the per-suite deadline. Nil means
	// context.Background().
	Ctx context.Context

	// JobTimeout, when > 0, is the per-job deadline. A cell that
	// exceeds it is recorded as a timeout JobError and its goroutine is
	// abandoned (simulation cells are CPU-bound and cannot be
	// preempted; the abandoned goroutine finishes on its own machine
	// and its result is discarded).
	JobTimeout time.Duration

	// Retries is how many times a job whose error is marked Transient
	// is re-run (seeded exponential backoff between attempts) before
	// its error is recorded. Panics, timeouts, and plain errors are
	// never retried — only errors wrapped by Transient.
	Retries int

	// Backoff is the base backoff before the first retry, doubling per
	// attempt with seeded jitter; <= 0 takes 10ms.
	Backoff time.Duration

	// RetrySeed seeds the per-job jitter stream (plus the job index, so
	// jitter is deterministic per cell at any worker count).
	RetrySeed int64

	// Sleep replaces time.Sleep between retries (test seam); nil takes
	// time.Sleep.
	Sleep func(time.Duration)
}

// JobError describes one job the engine could not complete. Exactly
// one of the cause fields is meaningful: Panic (with Stack) for a
// recovered panic, Timeout for a per-job deadline, Canceled for suite
// cancellation, else Err.
type JobError struct {
	Index int
	Spec  Spec

	Err      error
	Panic    any
	Stack    []byte
	Timeout  bool
	Canceled bool

	// Attempts is how many times the job ran (> 1 only after retries).
	Attempts int
}

// Error renders the full diagnostic (may include attempt counts; use
// Reason for deterministic output).
func (e *JobError) Error() string {
	return fmt.Sprintf("exp: job %d (%s) failed: %s (attempt %d)", e.Index, e.Spec, e.Reason(), e.Attempts)
}

// Unwrap exposes Err to errors.Is/As chains.
func (e *JobError) Unwrap() error { return e.Err }

// Reason is a deterministic one-line cause — stable across worker
// counts and runs, so "incomplete" markers in figure output stay
// byte-identical between -jobs=1 and -jobs=N.
func (e *JobError) Reason() string {
	switch {
	case e == nil:
		return ""
	case e.Timeout:
		return "timeout"
	case e.Canceled:
		return "canceled"
	case e.Panic != nil:
		return fmt.Sprintf("panic: %v", e.Panic)
	case e.Err != nil:
		return "error: " + e.Err.Error()
	}
	return "failed"
}

// transientErr marks an error as retryable.
type transientErr struct{ err error }

func (t transientErr) Error() string { return "transient: " + t.err.Error() }
func (t transientErr) Unwrap() error { return t.err }

// Transient wraps err so RunChecked retries the job (up to
// Config.Retries attempts with seeded backoff). Jobs report transient
// faults — a resource briefly unavailable, an injected soft fault —
// by returning Transient(err).
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return transientErr{err: err}
}

// IsTransient reports whether err is marked Transient.
func IsTransient(err error) bool {
	var t transientErr
	return errors.As(err, &t)
}

// Run executes run(i, specs[i]) for every spec across a worker pool and
// returns the results in spec order. The result slice layout is
// independent of worker count and completion order, which is what keeps
// tables, golden files, and -json output byte-identical between
// -jobs=1 and -jobs=N. A panic in run propagates and crashes the
// process, exactly as it would have in the serial loops; callers that
// need recovery, timeouts, or cancellation use RunChecked.
func Run[R any](cfg Config, specs []Spec, run func(i int, s Spec) R) []R {
	results, errs := RunChecked(cfg, specs, func(i int, s Spec) (R, error) {
		return run(i, s), nil
	})
	for _, e := range errs {
		if e.Panic != nil {
			panic(e.Panic)
		}
	}
	if len(errs) > 0 {
		// Only reachable when cfg carries a context or timeout, which
		// legacy callers do not set.
		panic(errs[0])
	}
	return results
}

// RunChecked is Run with per-job failure containment: a job that
// panics, errors, times out (Config.JobTimeout), or is cancelled
// (Config.Ctx) becomes a JobError instead of crashing the suite, and
// every other cell still completes and lands at its spec index. The
// returned errors are in index order; results at failed indices are
// the zero R. Jobs whose errors are marked Transient are retried with
// seeded backoff (Config.Retries).
//
// Workers claim job indices from a shared atomic counter, so a worker
// that dies or is abandoned can never wedge submission — the old
// channel-fed pool deadlocked the submitting goroutine if a worker
// exited without draining it.
func RunChecked[R any](cfg Config, specs []Spec, run func(i int, s Spec) (R, error)) ([]R, []*JobError) {
	results := make([]R, len(specs))
	if len(specs) == 0 {
		return results, nil
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(specs) {
		jobs = len(specs)
	}

	cfg.Progress.enqueue(len(specs))
	cfg.Progress.start(jobs)
	start := time.Now()
	var traceMu sync.Mutex
	emit := func(kind obs.Kind, i int) {
		if cfg.Tracer == nil {
			return
		}
		traceMu.Lock()
		cfg.Tracer.Emit(obs.Event{
			Cycle: time.Since(start).Microseconds(),
			Kind:  kind,
			N:     uint64(i),
			Label: specs[i].String(),
		})
		traceMu.Unlock()
	}

	errs := make([]*JobError, len(specs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(specs) {
					return
				}
				cfg.Progress.begin()
				if err := ctx.Err(); err != nil {
					errs[i] = &JobError{Index: i, Spec: specs[i], Canceled: true, Err: err}
					cfg.Progress.fail(0)
					continue
				}
				emit(obs.KPhaseBegin, i)
				t0 := time.Now()
				r, jerr := runJob(ctx, cfg, i, specs[i], run)
				d := time.Since(t0)
				emit(obs.KPhaseEnd, i)
				if jerr != nil {
					errs[i] = jerr
					cfg.Progress.fail(d)
				} else {
					results[i] = r
					cfg.Progress.finish(d)
				}
			}
		}()
	}
	wg.Wait()

	var out []*JobError
	for _, e := range errs {
		if e != nil {
			out = append(out, e)
		}
	}
	return results, out
}

// jobOutcome is what one attempt of one job produced.
type jobOutcome[R any] struct {
	r     R
	err   error
	pan   any
	stack []byte
}

// runJob executes one job with panic recovery, the per-job deadline,
// and the transient-retry loop.
func runJob[R any](ctx context.Context, cfg Config, i int, s Spec, run func(int, Spec) (R, error)) (R, *JobError) {
	var zero R
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var rng *rand.Rand
	for attempt := 1; ; attempt++ {
		out, timedOut, canceled := invoke(ctx, cfg.JobTimeout, i, s, run)
		switch {
		case timedOut:
			return zero, &JobError{Index: i, Spec: s, Timeout: true, Attempts: attempt}
		case canceled:
			return zero, &JobError{Index: i, Spec: s, Canceled: true, Err: ctx.Err(), Attempts: attempt}
		case out.pan != nil:
			return zero, &JobError{Index: i, Spec: s, Panic: out.pan, Stack: out.stack, Attempts: attempt}
		case out.err == nil:
			return out.r, nil
		case IsTransient(out.err) && attempt <= cfg.Retries:
			cfg.Progress.retry()
			if rng == nil {
				rng = rand.New(rand.NewSource(cfg.RetrySeed*1_000_003 + int64(i)))
			}
			base := cfg.Backoff
			if base <= 0 {
				base = 10 * time.Millisecond
			}
			d := base << uint(attempt-1)
			sleep(d + time.Duration(rng.Int63n(int64(base))))
		default:
			return zero, &JobError{Index: i, Spec: s, Err: out.err, Attempts: attempt}
		}
	}
}

// invoke runs one attempt. With no deadline and no cancellable
// context, it calls run directly on the worker goroutine; otherwise it
// runs the attempt on its own goroutine and selects against the
// deadline and the context, abandoning the attempt on expiry (the
// buffered channel lets the abandoned goroutine finish and be
// collected; only invoke's caller touches shared state).
func invoke[R any](ctx context.Context, timeout time.Duration, i int, s Spec, run func(int, Spec) (R, error)) (out jobOutcome[R], timedOut, canceled bool) {
	attempt := func() (o jobOutcome[R]) {
		defer func() {
			if p := recover(); p != nil {
				o.pan = p
				o.stack = debug.Stack()
			}
		}()
		o.r, o.err = run(i, s)
		return o
	}
	if timeout <= 0 && ctx.Done() == nil {
		return attempt(), false, false
	}
	ch := make(chan jobOutcome[R], 1)
	go func() { ch <- attempt() }()
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case out = <-ch:
		return out, false, false
	case <-timer:
		return out, true, false
	case <-ctx.Done():
		return out, false, true
	}
}

// Progress is the engine's observable state: jobs queued, running, and
// done, plus per-cell wall-time aggregates. One Progress may be shared
// across several Run invocations (a whole figure suite); counts
// accumulate. All methods are safe for concurrent use and are no-ops
// on a nil receiver, mirroring the obs.Tracer idiom.
type Progress struct {
	mu        sync.Mutex
	enqueued  int
	queued    int
	running   int
	done      int
	failed    int
	retried   int
	workers   int
	startedAt time.Time
	wallSum   time.Duration
	wallMax   time.Duration
	lastSpan  time.Duration
}

// ProgressSnapshot is one atomic reading of all Progress counters,
// taken under a single lock acquisition so the conservation invariant
// Enqueued == Queued + Running + Done + Failed holds in every
// snapshot, even while jobs are in flight.
type ProgressSnapshot struct {
	Enqueued int
	Queued   int
	Running  int
	Done     int
	Failed   int
}

func (p *Progress) enqueue(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.enqueued += n
	p.queued += n
	p.mu.Unlock()
}

// start records the worker-pool width for utilization accounting. The
// pool clock starts at the first Run sharing this Progress; a later Run
// with a wider pool widens the recorded width (utilization stays
// conservative).
func (p *Progress) start(workers int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.startedAt.IsZero() {
		p.startedAt = time.Now()
	}
	if workers > p.workers {
		p.workers = workers
	}
	p.mu.Unlock()
}

// retry counts one transient-failure retry.
func (p *Progress) retry() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.retried++
	p.mu.Unlock()
}

func (p *Progress) begin() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.queued--
	p.running++
	p.mu.Unlock()
}

func (p *Progress) finish(d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.running--
	p.done++
	p.wallSum += d
	p.lastSpan = d
	if d > p.wallMax {
		p.wallMax = d
	}
	p.mu.Unlock()
}

func (p *Progress) fail(d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.running--
	p.failed++
	p.wallSum += d
	p.lastSpan = d
	if d > p.wallMax {
		p.wallMax = d
	}
	p.mu.Unlock()
}

// Enqueued returns the total number of jobs ever submitted.
func (p *Progress) Enqueued() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.enqueued
}

// Failed returns the number of jobs that ended in a JobError.
func (p *Progress) Failed() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failed
}

// Snapshot returns all counters under one lock acquisition; see
// ProgressSnapshot for the invariant it preserves.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return ProgressSnapshot{
		Enqueued: p.enqueued,
		Queued:   p.queued,
		Running:  p.running,
		Done:     p.done,
		Failed:   p.failed,
	}
}

// Queued returns the number of jobs submitted but not yet started.
func (p *Progress) Queued() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.queued
}

// Running returns the number of jobs currently executing.
func (p *Progress) Running() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running
}

// Done returns the number of completed jobs.
func (p *Progress) Done() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done
}

// CellWallSum returns the summed wall time of all completed cells (the
// serial-equivalent cost of the work done so far).
func (p *Progress) CellWallSum() time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wallSum
}

// CellWallMax returns the wall time of the slowest completed cell.
func (p *Progress) CellWallMax() time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wallMax
}

// CellWallLast returns the wall time of the most recently completed
// cell.
func (p *Progress) CellWallLast() time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastSpan
}

// Retried returns the number of transient-failure retries performed.
func (p *Progress) Retried() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.retried
}

// Workers returns the widest worker pool seen so far.
func (p *Progress) Workers() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.workers
}

// Utilization returns summed cell wall time over (elapsed × workers) —
// the fraction of pool capacity spent inside cells, in [0,1] under
// normal accounting, 0 before any Run starts.
func (p *Progress) Utilization() float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.workers == 0 || p.startedAt.IsZero() {
		return 0
	}
	elapsed := time.Since(p.startedAt)
	if elapsed <= 0 {
		return 0
	}
	return p.wallSum.Seconds() / (elapsed.Seconds() * float64(p.workers))
}

// RegisterMetrics exposes the progress counters on a metrics registry
// as live views: exp.jobs.queued / running / done / failed and
// exp.cell.wall_seconds.{sum,max,last}. Register once per registry.
func (p *Progress) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("exp.jobs.queued", func() float64 { return float64(p.Queued()) })
	r.GaugeFunc("exp.jobs.running", func() float64 { return float64(p.Running()) })
	r.GaugeFunc("exp.jobs.done", func() float64 { return float64(p.Done()) })
	r.GaugeFunc("exp.jobs.failed", func() float64 { return float64(p.Failed()) })
	r.GaugeFunc("exp.cell.wall_seconds.sum", func() float64 { return p.CellWallSum().Seconds() })
	r.GaugeFunc("exp.cell.wall_seconds.max", func() float64 { return p.CellWallMax().Seconds() })
	r.GaugeFunc("exp.cell.wall_seconds.last", func() float64 { return p.CellWallLast().Seconds() })
	r.GaugeFunc("exp.jobs.retried", func() float64 { return float64(p.Retried()) })
	r.GaugeFunc("exp.workers", func() float64 { return float64(p.Workers()) })
	r.GaugeFunc("exp.pool.utilization", func() float64 { return p.Utilization() })
}
