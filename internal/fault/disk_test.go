package fault

import (
	"bytes"
	"errors"
	"testing"
)

func TestDiskInjectorNilIsInert(t *testing.T) {
	var in *DiskInjector
	if err := in.Point(DiskSnapSync); err != nil {
		t.Fatal(err)
	}
	b := []byte{1, 2, 3}
	out, err := in.FilterData(DiskSnapWrite, b)
	if err != nil || !bytes.Equal(out, b) {
		t.Fatalf("nil FilterData = (%v, %v)", out, err)
	}
	if in.Visits(DiskSnapWrite) != 0 || in.Fired() {
		t.Fatal("nil injector kept state")
	}
}

func TestDiskCrashAtControlPoint(t *testing.T) {
	in := NewDisk(1).Arm(DiskCrash, DiskSnapRename, 2)
	if err := in.Point(DiskSnapRename); err != nil {
		t.Fatalf("visit 1 fired: %v", err)
	}
	err := in.Point(DiskSnapRename)
	var df *DiskFault
	if !errors.As(err, &df) || df.Point != DiskSnapRename || df.Visit != 2 {
		t.Fatalf("visit 2: %v", err)
	}
	if !df.Fatal() {
		t.Fatal("crash fault not fatal")
	}
	if err := in.Point(DiskSnapRename); err != nil {
		t.Fatalf("plan fired twice: %v", err)
	}
	if len(in.Shots) != 1 {
		t.Fatalf("shots = %v", in.Shots)
	}
}

func TestDiskTornAndShortCutStrictPrefix(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 100)
	for _, kind := range []DiskKind{DiskTorn, DiskShort} {
		in := NewDisk(7).Arm(kind, DiskWALAppend, 1)
		out, err := in.FilterData(DiskWALAppend, data)
		var df *DiskFault
		if !errors.As(err, &df) || df.Kind != kind {
			t.Fatalf("%v: err = %v", kind, err)
		}
		if len(out) >= len(data) {
			t.Fatalf("%v: cut %d not a strict prefix of %d", kind, len(out), len(data))
		}
		if !bytes.Equal(out, data[:len(out)]) {
			t.Fatalf("%v: output is not a prefix", kind)
		}
		if df.Fatal() != (kind == DiskTorn) {
			t.Fatalf("%v: Fatal() = %v", kind, df.Fatal())
		}
	}
}

func TestDiskFlipCorruptsSilently(t *testing.T) {
	data := bytes.Repeat([]byte{0x55}, 64)
	in := NewDisk(3).Arm(DiskFlip, DiskSnapWrite, 1)
	out, err := in.FilterData(DiskSnapWrite, data)
	if err != nil {
		t.Fatalf("flip returned error: %v", err)
	}
	if bytes.Equal(out, data) {
		t.Fatal("flip changed nothing")
	}
	diff := 0
	for i := range out {
		diff += bitsSet(out[i] ^ data[i])
	}
	if diff != 1 {
		t.Fatalf("flip changed %d bits, want 1", diff)
	}
	if !bytes.Equal(data, bytes.Repeat([]byte{0x55}, 64)) {
		t.Fatal("flip mutated the caller's buffer")
	}
}

func TestDiskInjectorDeterministic(t *testing.T) {
	cut := func(seed int64) int {
		in := NewDisk(seed).Arm(DiskTorn, DiskWALAppend, 1)
		out, _ := in.FilterData(DiskWALAppend, make([]byte, 1000))
		return len(out)
	}
	if cut(42) != cut(42) {
		t.Fatal("same seed, different cut")
	}
}

func TestDiskArmRejectsDataFaultAtControlPoint(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Arm(torn, control point) did not panic")
		}
	}()
	NewDisk(1).Arm(DiskTorn, DiskWALSync, 1)
}

func bitsSet(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}
