package fault

// Disk-fault injection: the persistence-layer sibling of the in-memory
// Injector. Where the Injector tears relocations at instruction
// boundaries, the DiskInjector tears the durable store's writes — a
// torn append, a short write, a crash between write and rename, a bit
// flipped on the way to the platter — at deterministic, visit-counted
// points, so the serve plane's restart-recovery tests can kill the
// store at every point of its protocol and prove the recovered session
// lands on a digest the uncrashed control also reaches.
//
// Unlike the instruction-level injector, disk faults are delivered as
// errors (or silently corrupted data for DiskFlip), not panics: the
// store sits in an HTTP request path and must degrade, not unwind. A
// fault with Fatal()==true models the process dying mid-write — the
// store latches dead and every subsequent operation fails, exactly
// what a kill -9 leaves behind.

import (
	"fmt"
	"math/rand"
)

// DiskKind classifies an injected disk fault.
type DiskKind uint8

const (
	// DiskNone is the zero DiskKind; an injector with no plans is inert.
	DiskNone DiskKind = iota

	// DiskCrash stops the process at the point: the write (if any) never
	// happens, and nothing after the point executes. Fatal.
	DiskCrash

	// DiskTorn cuts a write at a seeded prefix length and then stops the
	// process — the classic torn write of a crash mid-append. Fatal.
	DiskTorn

	// DiskShort cuts a write at a seeded prefix length but the process
	// survives: a transient short write the caller may retry.
	DiskShort

	// DiskFlip flips one seeded bit of the data written. The write
	// "succeeds"; only read-back verification or a checksum catches it.
	DiskFlip
)

func (k DiskKind) String() string {
	switch k {
	case DiskNone:
		return "none"
	case DiskCrash:
		return "crash"
	case DiskTorn:
		return "torn"
	case DiskShort:
		return "short"
	case DiskFlip:
		return "flip"
	}
	return fmt.Sprintf("DiskKind(%d)", uint8(k))
}

// Fatal reports whether the fault models process death: after it
// fires, the store is dead and no later operation may run.
func (k DiskKind) Fatal() bool { return k == DiskCrash || k == DiskTorn }

// DiskPoint names a persistence point in the store's write protocols.
type DiskPoint string

const (
	// Atomic snapshot-file protocol, in order: write the tmp file, fsync
	// it, rename over the live file, fsync the directory.
	DiskSnapWrite   DiskPoint = "store.snap.write"
	DiskSnapSync    DiskPoint = "store.snap.sync"
	DiskSnapRename  DiskPoint = "store.snap.rename"
	DiskSnapRenamed DiskPoint = "store.snap.renamed"

	// WAL protocol: append a record, fsync the log, reset (truncate)
	// after a checkpoint.
	DiskWALAppend DiskPoint = "store.wal.append"
	DiskWALSync   DiskPoint = "store.wal.sync"
	DiskWALReset  DiskPoint = "store.wal.reset"
)

// DiskPoints lists every disk fault point (test enumeration and flag
// validation).
func DiskPoints() []DiskPoint {
	return []DiskPoint{
		DiskSnapWrite, DiskSnapSync, DiskSnapRename, DiskSnapRenamed,
		DiskWALAppend, DiskWALSync, DiskWALReset,
	}
}

// DataPoint reports whether p carries data through the injector
// (FilterData) — only there can torn/short/flip faults be realized.
// The remaining points are pure control points where only DiskCrash is
// meaningful.
func (p DiskPoint) DataPoint() bool {
	return p == DiskSnapWrite || p == DiskWALAppend
}

func validDiskPoint(p DiskPoint) bool {
	for _, q := range DiskPoints() {
		if p == q {
			return true
		}
	}
	return false
}

// DiskFault is the error delivered when a plan fires at a point.
type DiskFault struct {
	Kind  DiskKind
	Point DiskPoint
	Visit int
}

func (e *DiskFault) Error() string {
	return fmt.Sprintf("fault: injected disk %s at %s (visit %d)", e.Kind, e.Point, e.Visit)
}

// Fatal reports whether this fault models process death.
func (e *DiskFault) Fatal() bool { return e.Kind.Fatal() }

// DiskShot records one fired disk fault.
type DiskShot struct {
	Kind  DiskKind
	Point DiskPoint
	Visit int
	// Cut is the prefix length a torn/short write was cut to, and Bit
	// the index a flip targeted; -1 when not applicable.
	Cut int
	Bit int
}

func (s DiskShot) String() string {
	return fmt.Sprintf("%s@%s:%d", s.Kind, s.Point, s.Visit)
}

type diskPlan struct {
	kind  DiskKind
	point DiskPoint
	visit int
	fired bool
}

// DiskInjector is a deterministic, seeded disk-fault source. Nil is
// inert — every method no-ops on a nil receiver — so the store threads
// an optional injector with no branching. Like the instruction
// injector it is visit-counted: the i-th arrival at a point fires the
// armed plan, independent of timing.
//
// Not safe for concurrent use with itself; the store serializes its
// persistence operations per session, and tests arm one injector per
// scenario.
type DiskInjector struct {
	rng    *rand.Rand
	plans  []diskPlan
	visits map[DiskPoint]int

	// Shots logs every fault fired, in firing order.
	Shots []DiskShot
}

// NewDisk returns a disk injector whose random choices (cut lengths,
// bit indices) derive from seed.
func NewDisk(seed int64) *DiskInjector {
	return &DiskInjector{rng: rand.New(rand.NewSource(seed))}
}

// Arm schedules kind to fire on the visit-th arrival (1-based) at
// point. Torn/short/flip plans require a data point. Returns the
// injector for chaining.
func (in *DiskInjector) Arm(kind DiskKind, point DiskPoint, visit int) *DiskInjector {
	if !validDiskPoint(point) {
		panic(fmt.Sprintf("fault: Arm at unknown disk point %q", point))
	}
	if kind != DiskCrash && !point.DataPoint() {
		panic(fmt.Sprintf("fault: %s fault needs a data point, %q is control-only", kind, point))
	}
	if visit < 1 {
		visit = 1
	}
	in.plans = append(in.plans, diskPlan{kind: kind, point: point, visit: visit})
	return in
}

func (in *DiskInjector) bump(p DiskPoint) int {
	if in.visits == nil {
		in.visits = make(map[DiskPoint]int)
	}
	in.visits[p]++
	return in.visits[p]
}

// Visits returns how many times point has been reached so far.
func (in *DiskInjector) Visits(p DiskPoint) int {
	if in == nil {
		return 0
	}
	return in.visits[p]
}

// Fired reports whether any plan has fired.
func (in *DiskInjector) Fired() bool { return in != nil && len(in.Shots) > 0 }

// Point visits a control point. A DiskCrash plan armed for this
// (point, visit) fires by returning its *DiskFault; the caller must
// not perform the guarded operation and must latch the store dead.
func (in *DiskInjector) Point(p DiskPoint) error {
	if in == nil {
		return nil
	}
	n := in.bump(p)
	for i := range in.plans {
		pl := &in.plans[i]
		if pl.fired || pl.kind != DiskCrash || pl.point != p || pl.visit != n {
			continue
		}
		pl.fired = true
		in.Shots = append(in.Shots, DiskShot{Kind: DiskCrash, Point: p, Visit: n, Cut: -1, Bit: -1})
		return &DiskFault{Kind: DiskCrash, Point: p, Visit: n}
	}
	return nil
}

// FilterData visits a data point with the bytes about to be written
// and returns what actually reaches the file plus the fault, if one
// fired:
//
//   - DiskCrash: (nil, fault) — nothing was written.
//   - DiskTorn / DiskShort: a strict prefix of b (seeded cut) and the
//     fault; the caller writes the prefix, then treats the fault as
//     fatal (torn) or transient (short).
//   - DiskFlip: a copy of b with one seeded bit flipped, and NO error —
//     the write path cannot see the corruption; only verification can.
//
// With no matching plan, returns (b, nil) unchanged.
func (in *DiskInjector) FilterData(p DiskPoint, b []byte) ([]byte, error) {
	if in == nil {
		return b, nil
	}
	n := in.bump(p)
	for i := range in.plans {
		pl := &in.plans[i]
		if pl.fired || pl.point != p || pl.visit != n {
			continue
		}
		pl.fired = true
		shot := DiskShot{Kind: pl.kind, Point: p, Visit: n, Cut: -1, Bit: -1}
		switch pl.kind {
		case DiskCrash:
			in.Shots = append(in.Shots, shot)
			return nil, &DiskFault{Kind: DiskCrash, Point: p, Visit: n}
		case DiskTorn, DiskShort:
			shot.Cut = 0
			if len(b) > 0 {
				shot.Cut = in.rng.Intn(len(b)) // strict prefix: 0..len-1
			}
			in.Shots = append(in.Shots, shot)
			return b[:shot.Cut], &DiskFault{Kind: pl.kind, Point: p, Visit: n}
		case DiskFlip:
			cp := append([]byte(nil), b...)
			if len(cp) > 0 {
				bit := in.rng.Intn(8 * len(cp))
				shot.Bit = bit
				cp[bit/8] ^= 1 << uint(bit%8)
			}
			in.Shots = append(in.Shots, shot)
			return cp, nil
		}
	}
	return b, nil
}
