// Relocation journal and scavenger: the survival half of the fault
// layer. opt.TryRelocate records its intent (source, target, and the
// chain end of every word it has copied) before mutating anything the
// heap can see; Scavenge replays that intent after a torn relocation —
// a redo (roll-forward) recovery, sound because phase 1 writes only
// unreachable target memory and phase 2's plants are individually
// atomic, so the journal plus the current memory state always
// determine how to finish the move.
package fault

import (
	"fmt"

	"memfwd/internal/core"
	"memfwd/internal/mem"
)

// Journal records one in-flight relocation. It lives host-side (it is
// bookkeeping of the relocation machinery, not guest state): a crash
// inside relocation abandons the guest mid-operation, and the
// scavenger — like a recovery handler reading a persistent intent log
// — completes the move from it.
type Journal struct {
	// Active is set by Begin and cleared by Commit; a torn relocation
	// leaves it set, which is what tells Scavenge there is work.
	Active bool

	Src, Tgt mem.Addr
	NWords   int

	// Ends[i] is the chain-end word of source word i — where the
	// forwarding word for word i is planted. Recorded as each word is
	// copied, so len(Ends) is the copy-phase progress at abort time.
	Ends []mem.Addr
}

// Begin opens the journal for a relocation of nWords words. Nil-safe
// so relocation code can journal unconditionally.
func (j *Journal) Begin(src, tgt mem.Addr, nWords int) {
	if j == nil {
		return
	}
	j.Active = true
	j.Src, j.Tgt, j.NWords = src, tgt, nWords
	j.Ends = j.Ends[:0]
}

// RecordCopy logs that the next word's value now sits in the target
// and its forwarding word will be planted at end.
func (j *Journal) RecordCopy(end mem.Addr) {
	if j == nil {
		return
	}
	j.Ends = append(j.Ends, end)
}

// Commit marks the relocation complete.
func (j *Journal) Commit() {
	if j == nil {
		return
	}
	j.Active = false
}

// Report summarizes what a Scavenge pass found and repaired.
type Report struct {
	// RolledForward is set when an active journal was replayed to
	// completion.
	RolledForward bool

	// Recopied counts target words rewritten because the copy was
	// missing or corrupted; Replanted counts forwarding words planted
	// or re-planted; ClearedFBits counts orphan forwarding bits
	// cleared by the journal-free sweep.
	Recopied, Replanted, ClearedFBits int
}

func (r Report) String() string {
	return fmt.Sprintf("fault: scavenge: rolled_forward=%v recopied=%d replanted=%d cleared_fbits=%d",
		r.RolledForward, r.Recopied, r.Replanted, r.ClearedFBits)
}

// Scavenge detects and repairs a torn relocation, in two passes.
//
// Pass 1 — journal roll-forward. If j records an active relocation, it
// is replayed to completion: for every word, the chain end is taken
// from the journal (or resolved now, for words the copy phase never
// reached — their chains are still intact), the target copy is
// verified against the chain end's still-authoritative value and
// rewritten if missing or corrupted, and the forwarding word is
// planted. Replay is idempotent: words whose copy and plant both
// landed are untouched. The single-fault model makes the case analysis
// sound: at most one word deviates from the protocol state, and the
// journal distinguishes "not yet planted" from "plant corrupted" by
// comparing the chain end's value with the recorded target (a raw data
// word cannot equal the address of a target the guest has never seen).
//
// Pass 2 — orphan sweep. Every forwarding word in materialized memory
// whose target is nil or points into never-touched memory is demoted
// back to a data word (the inversion of a spurious FBitSet: the word's
// value is the original data, untouched by the fault). A spurious fbit
// whose data value happens to alias touched memory is indistinguishable
// from a legitimate forwarding word without a journal entry and is
// deliberately left alone; the structural checkers cannot flag it
// either, which is why corruption inside relocation is instead caught
// eagerly by TryRelocate's verify phases.
//
// inj, when non-nil, is suspended for the duration so repair writes
// pass through the installed write-fault hook unmodified.
func Scavenge(mm *mem.Memory, fwd *core.Forwarder, j *Journal, inj *Injector) (Report, error) {
	inj.Suspend()
	defer inj.Resume()

	var rep Report
	if j != nil && j.Active {
		for i := 0; i < j.NWords; i++ {
			d := j.Tgt + mem.Addr(i*mem.WordSize)
			var e mem.Addr
			if i < len(j.Ends) {
				e = j.Ends[i]
			} else {
				// The copy phase never reached this word: its chain is
				// untouched, so the end can be resolved afresh.
				final, _, err := fwd.Resolve(j.Src+mem.Addr(i*mem.WordSize), nil)
				if err != nil {
					return rep, fmt.Errorf("fault: scavenge of %#x->%#x word %d: %w", j.Src, j.Tgt, i, err)
				}
				e = mem.WordAlign(final)
			}
			ev, efb := mm.ReadWordFBit(e)
			switch {
			case efb && mem.Addr(ev) == d:
				// Copied and planted; nothing to do.
			case efb:
				// Planted, but the forwarding address is corrupted. The
				// copy at d is authoritative (it was verified before any
				// plant); re-point the chain end at it.
				mm.WriteWordFBit(e, uint64(d), true)
				rep.Replanted++
			case mem.Addr(ev) == d:
				// The plant wrote the target address but the fault
				// dropped the forwarding bit; restore it.
				mm.WriteWordFBit(e, uint64(d), true)
				rep.Replanted++
			default:
				// Not yet planted: e still holds the authoritative
				// value. Verify (and if needed redo) the copy, then
				// plant. The copy must land even when the untouched
				// target already reads as the right (zero) value —
				// planting a forwarding word into unmaterialized memory
				// would be demoted by the orphan sweep below.
				dv, dfb := mm.ReadWordFBit(d)
				if dfb || dv != ev || !mm.Touched(d) {
					mm.WriteWordFBit(d, ev, false)
					rep.Recopied++
				}
				mm.WriteWordFBit(e, uint64(d), true)
				rep.Replanted++
			}
		}
		j.Commit()
		rep.RolledForward = true
	}

	for _, pb := range mm.TouchedPages() {
		for w := 0; w < mem.PageWords; w++ {
			wa := pb + mem.Addr(w*mem.WordSize)
			if !mm.FBit(wa) {
				continue
			}
			tgt := mem.Addr(mm.ReadWord(wa))
			if tgt == 0 || !mm.Touched(mem.WordAlign(tgt)) {
				mm.WriteWordFBit(wa, uint64(tgt), false)
				rep.ClearedFBits++
			}
		}
	}
	return rep, nil
}

// Repair is Scavenge against the injector's own journal — the usual
// call after RecoverCrash or a torn-relocation error.
func (in *Injector) Repair(mm *mem.Memory, fwd *core.Forwarder) (Report, error) {
	var j *Journal
	if in != nil {
		j = &in.Journal
	}
	return Scavenge(mm, fwd, j, in)
}
