// Package fault is the deterministic fault-injection layer behind the
// robustness story: the paper's claim is that relocation is *always*
// safe, so the machinery that performs it must stay architecturally
// consistent even when a relocation is torn mid-flight — by a crash at
// an arbitrary instruction boundary, or by a corrupted
// Unforwarded_Write (a flipped bit in a forwarding address, a spurious
// forwarding-bit set or clear).
//
// An Injector is seeded and fires from a visit-counted plan, so a
// failing run replays exactly from its seed: the i-th arrival at a
// named fault Point triggers the armed fault, independent of wall
// time, worker count, or host scheduling. Crashes are realized as a
// panic carrying *CrashError, recovered at the relocation boundary by
// RecoverCrash; corruptions are applied in-line to the write they
// target via the tagged memory's write-fault hook
// (mem.Memory.SetWriteFault).
//
// The companion half of the layer lives in journal.go: every two-phase
// relocation (opt.TryRelocate) records its intent in the Injector's
// Journal, and Scavenge rolls a torn relocation forward to completion
// — the survival machinery that the crash-consistency tests prove
// leaves no third state.
package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"memfwd/internal/mem"
)

// Kind classifies an injected fault.
type Kind uint8

const (
	// None is the zero Kind; an injector with no armed plans is inert.
	None Kind = iota

	// Crash aborts execution at the fault point: the injector panics
	// with *CrashError, modelling a stop at an arbitrary instruction
	// boundary inside the relocation sequence.
	Crash

	// FlipBit flips one bit of the value being written (the bit index
	// is drawn from the injector's seeded stream), modelling a
	// corrupted forwarding address or data word.
	FlipBit

	// FBitSet forces the forwarding bit of the write to 1 — a spurious
	// forwarding tag on a data word.
	FBitSet

	// FBitClear forces the forwarding bit of the write to 0 — a
	// forwarding plant demoted to a raw data write.
	FBitClear
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Crash:
		return "crash"
	case FlipBit:
		return "flip"
	case FBitSet:
		return "fbit-set"
	case FBitClear:
		return "fbit-clear"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind is the inverse of Kind.String for the -fault flag grammar.
func ParseKind(s string) (Kind, error) {
	for _, k := range []Kind{Crash, FlipBit, FBitSet, FBitClear} {
		if s == k.String() {
			return k, nil
		}
	}
	return None, fmt.Errorf("fault: unknown kind %q (valid: crash, flip, fbit-set, fbit-clear)", s)
}

// Point names a fault site. Crash plans fire at boundary points
// (Injector.Step); corruption plans fire at write points
// (Injector.FilterWrite), which are region names established by the
// code performing the writes plus the wildcard MemWrite.
type Point string

const (
	// Boundary points inside opt.TryRelocate, in execution order.
	RelocateBegin  Point = "relocate.begin"  // before any work
	RelocateCopied Point = "relocate.copy"   // after each word copied (visit = word ordinal)
	RelocateVerify Point = "relocate.verify" // after copy verification, before any plant
	RelocatePlant  Point = "relocate.plant"  // after each forwarding word planted
	RelocateEnd    Point = "relocate.end"    // after all plants, before commit

	// Write regions inside opt.TryRelocate: the copy writes of phase 1
	// and the forwarding-word plants of phase 2.
	CopyWrite  Point = "relocate.copy-write"
	PlantWrite Point = "relocate.plant-write"

	// MemWrite matches every write reaching the tagged memory's
	// Unforwarded_Write path while the injector is installed,
	// regardless of region.
	MemWrite Point = "mem.write"

	// ResolveHop is visited on every hop the hardware dereferencing
	// mechanism takes (core.Forwarder.FaultHook) — a crash armed here
	// aborts mid-chain-walk.
	ResolveHop Point = "core.resolve.hop"
)

// Points lists every named fault point (flag validation and the
// crash-consistency enumeration).
func Points() []Point {
	return []Point{
		RelocateBegin, RelocateCopied, RelocateVerify, RelocatePlant, RelocateEnd,
		CopyWrite, PlantWrite, MemWrite, ResolveHop,
	}
}

func validPoint(p Point) bool {
	for _, q := range Points() {
		if p == q {
			return true
		}
	}
	return false
}

// CrashError is the panic value of an injected crash. Code that runs
// relocations under fault injection recovers it with RecoverCrash and
// treats the relocation as torn (then repairs via Scavenge).
type CrashError struct {
	Point Point
	Visit int
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("fault: injected crash at %s (visit %d)", e.Point, e.Visit)
}

// AsCrash reports whether a recovered panic value is an injected crash.
func AsCrash(v any) (*CrashError, bool) {
	c, ok := v.(*CrashError)
	return c, ok
}

// RecoverCrash converts an in-flight injected crash into an error:
//
//	err := func() (err error) {
//		defer fault.RecoverCrash(&err)
//		return opt.TryRelocate(m, src, tgt, n)
//	}()
//
// Panics that are not injected crashes propagate unchanged.
func RecoverCrash(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	if c, ok := AsCrash(r); ok {
		*errp = c
		return
	}
	panic(r)
}

// Shot records one fired fault, for assertions and episode reports.
type Shot struct {
	Kind  Kind
	Point Point
	Visit int
	Addr  mem.Addr // write faults: the word targeted
	Bit   int      // FlipBit: the bit flipped
}

func (s Shot) String() string {
	return fmt.Sprintf("%s@%s:%d", s.Kind, s.Point, s.Visit)
}

// plan is one armed fault: fire kind on the visit-th arrival at point.
type plan struct {
	kind  Kind
	point Point
	visit int
	fired bool
}

// Injector is a deterministic, seeded fault source. The zero of
// *Injector (nil) is inert: every method is a no-op on a nil receiver,
// so machine code threads an optional injector with no branching at
// call sites. An Injector also carries the relocation Journal that
// Scavenge repairs from, so arming faults and repairing their damage
// share one handle.
//
// Injector is not safe for concurrent use; like the Machine it is
// installed on, it belongs to exactly one experiment cell.
type Injector struct {
	rng       *rand.Rand
	plans     []plan
	visits    map[Point]int
	region    Point
	suspended int

	// Shots logs every fault fired, in firing order.
	Shots []Shot

	// Journal records the in-flight relocation (see journal.go).
	Journal Journal
}

// New returns an injector whose random choices (e.g. FlipBit's bit
// index) derive from seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Arm schedules kind to fire on the visit-th arrival (1-based) at
// point. Multiple plans may be armed; each fires at most once. Returns
// the injector for chaining.
func (in *Injector) Arm(kind Kind, point Point, visit int) *Injector {
	if !validPoint(point) {
		panic(fmt.Sprintf("fault: Arm at unknown point %q", point))
	}
	if visit < 1 {
		visit = 1
	}
	in.plans = append(in.plans, plan{kind: kind, point: point, visit: visit})
	return in
}

// Suspend disables the injector (counting and firing) until the
// matching Resume; suspensions nest. The scavenger runs suspended so
// its repair writes are not themselves corrupted.
func (in *Injector) Suspend() {
	if in != nil {
		in.suspended++
	}
}

// Resume re-enables a suspended injector.
func (in *Injector) Resume() {
	if in != nil && in.suspended > 0 {
		in.suspended--
	}
}

var noRestore = func() {}

// Region names the write region the caller is about to enter (e.g.
// CopyWrite during relocation phase 1) and returns a closure restoring
// the previous region. Write faults armed at a region point fire only
// on writes performed inside it.
func (in *Injector) Region(p Point) (restore func()) {
	if in == nil {
		return noRestore
	}
	prev := in.region
	in.region = p
	return func() { in.region = prev }
}

func (in *Injector) bump(p Point) int {
	if in.visits == nil {
		in.visits = make(map[Point]int)
	}
	in.visits[p]++
	return in.visits[p]
}

// Visits returns how many times point has been reached so far.
func (in *Injector) Visits(p Point) int {
	if in == nil {
		return 0
	}
	return in.visits[p]
}

// Fired reports whether any armed plan has fired.
func (in *Injector) Fired() bool { return in != nil && len(in.Shots) > 0 }

// Step visits a boundary point: the visit counter advances and any
// crash plan armed for this (point, visit) fires by panicking with
// *CrashError. Nil-safe and inert while suspended.
func (in *Injector) Step(p Point) {
	if in == nil || in.suspended > 0 {
		return
	}
	n := in.bump(p)
	for i := range in.plans {
		pl := &in.plans[i]
		if pl.fired || pl.kind != Crash || pl.point != p || pl.visit != n {
			continue
		}
		pl.fired = true
		in.Shots = append(in.Shots, Shot{Kind: Crash, Point: p, Visit: n})
		panic(&CrashError{Point: p, Visit: n})
	}
}

// FilterWrite is the tagged memory's write-fault hook
// (mem.Memory.SetWriteFault): it sees every Unforwarded_Write-path
// store of (value, fbit) to word a, counts the MemWrite point and the
// current region point, and applies any armed plan that matches. A
// matching Crash plan panics before the write lands — the write never
// happens, exactly a stop at the preceding instruction boundary.
func (in *Injector) FilterWrite(a mem.Addr, v uint64, fbit bool) (uint64, bool) {
	if in == nil || in.suspended > 0 {
		return v, fbit
	}
	nm := in.bump(MemWrite)
	nr := 0
	if in.region != "" {
		nr = in.bump(in.region)
	}
	for i := range in.plans {
		pl := &in.plans[i]
		if pl.fired {
			continue
		}
		var n int
		switch {
		case pl.point == MemWrite:
			n = nm
		case in.region != "" && pl.point == in.region:
			n = nr
		default:
			continue
		}
		if pl.visit != n {
			continue
		}
		pl.fired = true
		shot := Shot{Kind: pl.kind, Point: pl.point, Visit: n, Addr: a, Bit: -1}
		switch pl.kind {
		case Crash:
			in.Shots = append(in.Shots, shot)
			panic(&CrashError{Point: pl.point, Visit: n})
		case FlipBit:
			shot.Bit = in.rng.Intn(64)
			v ^= 1 << uint(shot.Bit)
		case FBitSet:
			fbit = true
		case FBitClear:
			fbit = false
		}
		in.Shots = append(in.Shots, shot)
	}
	return v, fbit
}

// ParseSpec parses the -fault flag grammar "kind@point[:visit]", e.g.
// "crash@relocate.plant:2" or "flip@relocate.copy-write".
func ParseSpec(spec string) (Kind, Point, int, error) {
	kindStr, rest, ok := strings.Cut(spec, "@")
	if !ok {
		return None, "", 0, fmt.Errorf("fault: spec %q is not kind@point[:visit]", spec)
	}
	kind, err := ParseKind(kindStr)
	if err != nil {
		return None, "", 0, err
	}
	pointStr, visitStr, hasVisit := strings.Cut(rest, ":")
	visit := 1
	if hasVisit {
		visit, err = strconv.Atoi(visitStr)
		if err != nil || visit < 1 {
			return None, "", 0, fmt.Errorf("fault: spec %q has bad visit %q", spec, visitStr)
		}
	}
	p := Point(pointStr)
	if !validPoint(p) {
		valid := make([]string, 0, len(Points()))
		for _, q := range Points() {
			valid = append(valid, string(q))
		}
		return None, "", 0, fmt.Errorf("fault: unknown point %q (valid: %s)", pointStr, strings.Join(valid, ", "))
	}
	return kind, p, visit, nil
}

// NewFromSpec builds a seeded injector with one plan armed from the
// flag grammar accepted by ParseSpec.
func NewFromSpec(seed int64, spec string) (*Injector, error) {
	kind, point, visit, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return New(seed).Arm(kind, point, visit), nil
}
