package fault

import (
	"errors"
	"testing"

	"memfwd/internal/core"
	"memfwd/internal/mem"
	"memfwd/internal/quickseed"
)

func TestParseSpec(t *testing.T) {
	k, p, v, err := ParseSpec("crash@relocate.plant:2")
	if err != nil || k != Crash || p != RelocatePlant || v != 2 {
		t.Fatalf("got %v %v %v %v", k, p, v, err)
	}
	k, p, v, err = ParseSpec("flip@relocate.copy-write")
	if err != nil || k != FlipBit || p != CopyWrite || v != 1 {
		t.Fatalf("got %v %v %v %v", k, p, v, err)
	}
	for _, bad := range []string{"", "crash", "crash@nowhere", "zap@mem.write", "crash@mem.write:0", "crash@mem.write:x"} {
		if _, _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	for _, p := range Points() {
		if _, _, _, err := ParseSpec("crash@" + string(p)); err != nil {
			t.Errorf("point %q rejected: %v", p, err)
		}
	}
}

func TestStepCrashFiresOnExactVisit(t *testing.T) {
	in := New(quickseed.Seed(t)).Arm(Crash, RelocateCopied, 3)
	in.Step(RelocateCopied)
	in.Step(RelocateCopied)
	func() {
		defer func() {
			c, ok := AsCrash(recover())
			if !ok {
				t.Fatal("no crash on third visit")
			}
			if c.Point != RelocateCopied || c.Visit != 3 {
				t.Fatalf("crash at %s:%d, want %s:3", c.Point, c.Visit, RelocateCopied)
			}
		}()
		in.Step(RelocateCopied)
	}()
	if !in.Fired() || len(in.Shots) != 1 {
		t.Fatalf("shots = %v", in.Shots)
	}
	// The plan is one-shot: later visits pass.
	in.Step(RelocateCopied)
}

func TestFilterWriteCorruptions(t *testing.T) {
	seed := quickseed.Seed(t)

	in := New(seed).Arm(FlipBit, MemWrite, 2)
	v, fb := in.FilterWrite(0x100, 7, false)
	if v != 7 || fb {
		t.Fatalf("first write altered: %#x %v", v, fb)
	}
	v, _ = in.FilterWrite(0x108, 7, false)
	if v == 7 {
		t.Fatal("second write not flipped")
	}
	if len(in.Shots) != 1 || in.Shots[0].Bit < 0 || in.Shots[0].Addr != 0x108 {
		t.Fatalf("shot log %v", in.Shots)
	}
	// Deterministic: same seed, same flipped bit.
	in2 := New(seed).Arm(FlipBit, MemWrite, 2)
	in2.FilterWrite(0x100, 7, false)
	v2, _ := in2.FilterWrite(0x108, 7, false)
	if v2 != v {
		t.Fatalf("same seed flipped different bits: %#x vs %#x", v, v2)
	}

	in = New(seed).Arm(FBitSet, MemWrite, 1)
	if _, fb := in.FilterWrite(0x100, 1, false); !fb {
		t.Fatal("FBitSet did not set")
	}
	in = New(seed).Arm(FBitClear, MemWrite, 1)
	if _, fb := in.FilterWrite(0x100, 1, true); fb {
		t.Fatal("FBitClear did not clear")
	}
}

func TestFilterWriteRegions(t *testing.T) {
	in := New(quickseed.Seed(t)).Arm(FBitSet, CopyWrite, 1)
	// Outside the region, the plan does not match.
	if _, fb := in.FilterWrite(0x100, 1, false); fb {
		t.Fatal("region plan fired outside region")
	}
	restore := in.Region(CopyWrite)
	if _, fb := in.FilterWrite(0x108, 1, false); !fb {
		t.Fatal("region plan did not fire inside region")
	}
	restore()
	if in.region != "" {
		t.Fatalf("region not restored: %q", in.region)
	}
}

func TestSuspendResume(t *testing.T) {
	in := New(quickseed.Seed(t)).Arm(Crash, MemWrite, 1)
	in.Suspend()
	in.Suspend()
	if _, _ = in.FilterWrite(0x100, 1, false); in.Fired() {
		t.Fatal("fired while suspended")
	}
	in.Resume()
	if _, _ = in.FilterWrite(0x100, 1, false); in.Fired() {
		t.Fatal("fired while still suspended once")
	}
	in.Resume()
	defer func() {
		if _, ok := AsCrash(recover()); !ok {
			t.Fatal("no crash after full resume")
		}
	}()
	in.FilterWrite(0x100, 1, false)
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	in.Step(RelocateBegin)
	if v, fb := in.FilterWrite(0x100, 9, true); v != 9 || !fb {
		t.Fatal("nil injector altered a write")
	}
	in.Region(CopyWrite)()
	in.Suspend()
	in.Resume()
	if in.Fired() || in.Visits(MemWrite) != 0 {
		t.Fatal("nil injector has state")
	}
	var j *Journal
	j.Begin(0x100, 0x200, 4)
	j.RecordCopy(0x100)
	j.Commit()
}

func TestRecoverCrashPassthrough(t *testing.T) {
	err := func() (err error) {
		defer RecoverCrash(&err)
		panic(&CrashError{Point: RelocateEnd, Visit: 1})
	}()
	var c *CrashError
	if !errors.As(err, &c) || c.Point != RelocateEnd {
		t.Fatalf("err = %v", err)
	}
	defer func() {
		if r := recover(); r != "unrelated" {
			t.Fatalf("foreign panic not propagated: %v", r)
		}
	}()
	func() {
		var err error
		defer RecoverCrash(&err)
		panic("unrelated")
	}()
}

func TestScavengeOrphanSweep(t *testing.T) {
	mm := mem.New()
	fwd := core.NewForwarder(mm)
	// A data word whose forwarding bit was spuriously set: its value
	// points nowhere materialized, so the sweep demotes it.
	mm.WriteWordFBit(0x1000, 0xdead_beef_0000, true)
	// A legitimate forwarding word: target materialized; must survive.
	mm.WriteWordFBit(0x2000, 42, false)
	mm.WriteWordFBit(0x1008, 0x2000, true)

	rep, err := Scavenge(mm, fwd, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ClearedFBits != 1 || rep.RolledForward {
		t.Fatalf("report %v", rep)
	}
	if v, fb := mm.ReadWordFBit(0x1000); fb || v != 0xdead_beef_0000 {
		t.Fatalf("orphan not demoted: %#x %v", v, fb)
	}
	if _, fb := mm.ReadWordFBit(0x1008); !fb {
		t.Fatal("legitimate forwarding word demoted")
	}
}

func TestScavengeRollForward(t *testing.T) {
	mm := mem.New()
	fwd := core.NewForwarder(mm)
	src, tgt := mem.Addr(0x1000), mem.Addr(0x9000)
	vals := []uint64{11, 22, 33}
	for i, v := range vals {
		mm.WriteWordFBit(src+mem.Addr(i*mem.WordSize), v, false)
	}
	// Simulate a crash after copying (and planting) word 0, copying
	// word 1 without planting, and never reaching word 2.
	j := &Journal{}
	j.Begin(src, tgt, 3)
	mm.WriteWordFBit(tgt, vals[0], false)
	j.RecordCopy(src)
	mm.WriteWordFBit(src, uint64(tgt), true)
	mm.WriteWordFBit(tgt+8, vals[1], false)
	j.RecordCopy(src + 8)

	rep, err := Scavenge(mm, fwd, j, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RolledForward || rep.Replanted != 2 || rep.Recopied != 1 {
		t.Fatalf("report %v", rep)
	}
	if j.Active {
		t.Fatal("journal still active")
	}
	for i, want := range vals {
		final, _, err := fwd.Resolve(src+mem.Addr(i*mem.WordSize), nil)
		if err != nil {
			t.Fatal(err)
		}
		if final != tgt+mem.Addr(i*mem.WordSize) {
			t.Fatalf("word %d resolves to %#x, want %#x", i, final, tgt+mem.Addr(i*mem.WordSize))
		}
		if got := mm.ReadWord(final); got != want {
			t.Fatalf("word %d reads %d, want %d", i, got, want)
		}
	}
	// Idempotent: a second pass finds nothing.
	rep2, err := Scavenge(mm, fwd, j, nil)
	if err != nil || rep2.RolledForward || rep2.Recopied+rep2.Replanted+rep2.ClearedFBits != 0 {
		t.Fatalf("second pass not a no-op: %v %v", rep2, err)
	}
}
