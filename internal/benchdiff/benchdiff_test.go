package benchdiff

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: memfwd
cpu: AMD EPYC 7B13
BenchmarkFigure5-8             	       2	 512345678 ns/op	 1234 B/op	      56 allocs/op
BenchmarkLoadHit-8             	100000000	        11.50 ns/op	       0 B/op	       0 allocs/op
BenchmarkChase2-8              	 5000000	       240.0 ns/op
PASS
ok  	memfwd	3.210s
`

func TestParse(t *testing.T) {
	res, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(res), res)
	}
	f5 := res[0]
	if f5.Name != "BenchmarkFigure5" {
		t.Fatalf("GOMAXPROCS suffix not stripped: %q", f5.Name)
	}
	if f5.Iterations != 2 || f5.NsPerOp != 512345678 || f5.BytesPerOp != 1234 || f5.AllocsPerOp != 56 || !f5.HasAllocs {
		t.Fatalf("Figure5 row wrong: %+v", f5)
	}
	hit := res[1]
	if hit.NsPerOp != 11.5 || hit.AllocsPerOp != 0 || !hit.HasAllocs {
		t.Fatalf("LoadHit row wrong: %+v", hit)
	}
	// A -benchtime run without -benchmem has no alloc columns.
	if res[2].HasAllocs {
		t.Fatalf("Chase2 should have no alloc data: %+v", res[2])
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	res, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBaseline(res)
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(b) {
		t.Fatalf("round trip lost entries: %d != %d", len(got), len(b))
	}
	for name, want := range b {
		if got[name] != want {
			t.Fatalf("%s: %+v != %+v", name, got[name], want)
		}
	}
	// Stable key order: two serialisations are byte-identical.
	var buf2 bytes.Buffer
	if err := got.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("baseline serialisation not deterministic")
	}
}

func TestBaselineKeepsBestOfRepeats(t *testing.T) {
	b := NewBaseline([]Result{
		{Name: "BenchmarkX", NsPerOp: 200},
		{Name: "BenchmarkX", NsPerOp: 150},
		{Name: "BenchmarkX", NsPerOp: 180},
	})
	if b["BenchmarkX"].NsPerOp != 150 {
		t.Fatalf("best-of-repeats not kept: %+v", b["BenchmarkX"])
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := NewBaseline([]Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 10, HasAllocs: true},
		{Name: "BenchmarkZeroAlloc", NsPerOp: 12, AllocsPerOp: 0, HasAllocs: true},
	})
	fresh := []Result{
		{Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 11, HasAllocs: true},       // +10%: within 1.25
		{Name: "BenchmarkZeroAlloc", NsPerOp: 12, AllocsPerOp: 1, HasAllocs: true}, // any alloc: fail
	}
	deltas, missing, err := Compare(base, fresh, Config{Threshold: 1.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 0 {
		t.Fatalf("missing = %v", missing)
	}
	byName := map[string]Delta{}
	for _, d := range deltas {
		byName[d.Name] = d
	}
	if byName["BenchmarkA"].Regression {
		t.Fatalf("10%% alloc growth under 1.25 threshold flagged: %+v", byName["BenchmarkA"])
	}
	if !byName["BenchmarkZeroAlloc"].Regression {
		t.Fatal("alloc on zero-alloc baseline not flagged")
	}
	var buf bytes.Buffer
	if n := Report(&buf, deltas, missing); n != 1 {
		t.Fatalf("Report counted %d regressions, want 1:\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL") || !strings.Contains(buf.String(), "BenchmarkZeroAlloc") {
		t.Fatalf("report does not name the failure:\n%s", buf.String())
	}
}

func TestCompareTimeOptIn(t *testing.T) {
	base := NewBaseline([]Result{{Name: "BenchmarkB", NsPerOp: 100, HasAllocs: false}})
	fresh := []Result{{Name: "BenchmarkB", NsPerOp: 300, HasAllocs: false}}

	// Default: time is not compared, a 3x slowdown produces no deltas.
	deltas, _, err := Compare(base, fresh, Config{Threshold: 1.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 0 {
		t.Fatalf("time compared without CheckTime: %+v", deltas)
	}

	deltas, _, err = Compare(base, fresh, Config{Threshold: 1.25, CheckTime: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || !deltas[0].Regression || deltas[0].Metric != "ns/op" {
		t.Fatalf("3x ns/op not flagged: %+v", deltas)
	}

	// Absolute slack suppresses sub-floor jitter even past the ratio.
	deltas, _, err = Compare(base, fresh, Config{Threshold: 1.25, CheckTime: true, AbsSlackNs: 500})
	if err != nil {
		t.Fatal(err)
	}
	if deltas[0].Regression {
		t.Fatalf("delta below AbsSlackNs flagged: %+v", deltas[0])
	}
}

func TestCompareMissingAndNew(t *testing.T) {
	base := NewBaseline([]Result{
		{Name: "BenchmarkGone", NsPerOp: 5, AllocsPerOp: 1, HasAllocs: true},
		{Name: "BenchmarkKept", NsPerOp: 5, AllocsPerOp: 1, HasAllocs: true},
	})
	fresh := []Result{
		{Name: "BenchmarkKept", NsPerOp: 5, AllocsPerOp: 1, HasAllocs: true},
		{Name: "BenchmarkNew", NsPerOp: 5, AllocsPerOp: 99, HasAllocs: true}, // not in baseline: skipped
	}
	deltas, missing, err := Compare(base, fresh, Config{Threshold: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].Name != "BenchmarkKept" {
		t.Fatalf("deltas = %+v, want BenchmarkKept only", deltas)
	}
	if len(missing) != 1 || missing[0] != "BenchmarkGone" {
		t.Fatalf("missing = %v, want [BenchmarkGone]", missing)
	}
}

func TestCompareRejectsBadThreshold(t *testing.T) {
	if _, _, err := Compare(Baseline{}, nil, Config{Threshold: 0.5}); err == nil {
		t.Fatal("threshold < 1 accepted")
	}
}
