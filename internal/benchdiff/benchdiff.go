// Package benchdiff parses `go test -bench` output and compares a fresh
// run against a checked-in baseline, flagging regressions past a
// configurable threshold.
//
// The baseline is a JSON map of benchmark name to measured cost. Names
// are normalised by stripping the trailing -GOMAXPROCS suffix so a
// baseline recorded on an 8-core box compares cleanly on a 4-core CI
// runner. Wall-clock ns/op is noisy across machines, so the default
// comparison is allocs/op (deterministic for a deterministic simulator);
// ns/op checking is opt-in for same-machine trend tracking.
package benchdiff

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	HasAllocs   bool    `json:"has_allocs"`
}

// benchLine matches e.g.
//
//	BenchmarkFigure5-8   	       2	 512345678 ns/op	 1234 B/op	  56 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)

// Normalize strips the -N GOMAXPROCS suffix from a benchmark name.
func Normalize(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// Parse reads `go test -bench` text output and returns the measurements
// in input order. Non-benchmark lines (PASS, ok, goos, ...) are skipped.
func Parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad iteration count in %q: %v", sc.Text(), err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %v", sc.Text(), err)
		}
		res := Result{Name: Normalize(m[1]), Iterations: iters, NsPerOp: ns}
		rest := strings.Fields(m[4])
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad metric in %q: %v", sc.Text(), err)
			}
			switch rest[i+1] {
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
				res.HasAllocs = true
			}
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Baseline is the checked-in reference, keyed by normalised name.
type Baseline map[string]Result

// NewBaseline indexes a parsed run. Later duplicates (e.g. -count=2)
// keep the lower ns/op, treating the best run as the machine's capability.
func NewBaseline(results []Result) Baseline {
	b := make(Baseline, len(results))
	for _, r := range results {
		if prev, ok := b[r.Name]; ok && prev.NsPerOp <= r.NsPerOp {
			continue
		}
		b[r.Name] = r
	}
	return b
}

// WriteJSON serialises the baseline with stable key order.
func (b Baseline) WriteJSON(w io.Writer) error {
	names := make([]string, 0, len(b))
	for n := range b {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make([]Result, 0, len(names))
	for _, n := range names {
		ordered = append(ordered, b[n])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ordered)
}

// ReadBaseline loads a baseline previously written by WriteJSON.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var results []Result
	if err := json.NewDecoder(r).Decode(&results); err != nil {
		return nil, fmt.Errorf("benchdiff: baseline: %v", err)
	}
	return NewBaseline(results), nil
}

// Config controls what Compare treats as a regression.
type Config struct {
	// Threshold is the allowed multiplicative growth: 1.25 tolerates a
	// 25% increase over baseline before flagging. Must be >= 1.
	Threshold float64
	// CheckTime also compares ns/op (off by default: wall-clock is not
	// portable across machines; allocs/op is).
	CheckTime bool
	// AbsSlackNs ignores ns/op deltas below this floor even past the
	// threshold, so nanosecond-scale benchmarks don't flap on timer
	// granularity. Only used with CheckTime.
	AbsSlackNs float64
}

// Delta is one comparison row.
type Delta struct {
	Name       string
	Metric     string // "allocs/op" or "ns/op"
	Base, Cur  float64
	Ratio      float64
	Regression bool
}

// Compare evaluates fresh results against the baseline. Benchmarks
// missing from the baseline are skipped (new benchmarks are not
// regressions); baseline entries missing from the run are reported via
// the missing list so a silently-deleted benchmark is visible.
func Compare(base Baseline, fresh []Result, cfg Config) (deltas []Delta, missing []string, err error) {
	if cfg.Threshold < 1 {
		return nil, nil, fmt.Errorf("benchdiff: threshold %v < 1", cfg.Threshold)
	}
	seen := make(map[string]bool, len(fresh))
	for _, r := range fresh {
		seen[r.Name] = true
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		if b.HasAllocs && r.HasAllocs {
			d := Delta{Name: r.Name, Metric: "allocs/op", Base: b.AllocsPerOp, Cur: r.AllocsPerOp}
			d.Ratio = ratio(d.Cur, d.Base)
			// Zero-alloc guarantees are exact: any alloc on a
			// previously allocation-free path is a regression
			// regardless of threshold.
			if b.AllocsPerOp == 0 {
				d.Regression = r.AllocsPerOp > 0
			} else {
				d.Regression = d.Ratio > cfg.Threshold
			}
			deltas = append(deltas, d)
		}
		if cfg.CheckTime {
			d := Delta{Name: r.Name, Metric: "ns/op", Base: b.NsPerOp, Cur: r.NsPerOp}
			d.Ratio = ratio(d.Cur, d.Base)
			d.Regression = d.Ratio > cfg.Threshold && d.Cur-d.Base > cfg.AbsSlackNs
			deltas = append(deltas, d)
		}
	}
	for name := range base {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	return deltas, missing, nil
}

func ratio(cur, base float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 1
		}
		return cur // vs zero: report the absolute value as the ratio
	}
	return cur / base
}

// Report renders the comparison. Returns the number of regressions.
func Report(w io.Writer, deltas []Delta, missing []string) int {
	regressions := 0
	for _, d := range deltas {
		mark := "ok  "
		if d.Regression {
			mark = "FAIL"
			regressions++
		}
		fmt.Fprintf(w, "%s  %-40s %12s  base=%-12g cur=%-12g (%.2fx)\n",
			mark, d.Name, d.Metric, d.Base, d.Cur, d.Ratio)
	}
	for _, name := range missing {
		fmt.Fprintf(w, "MISS  %-40s absent from this run (present in baseline)\n", name)
	}
	return regressions
}
