package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"memfwd/internal/obs"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, s *Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestIndexListsEndpoints(t *testing.T) {
	s := startServer(t)
	resp, body := get(t, s, "/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var m map[string]string
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("index not JSON: %v\n%s", err, body)
	}
	for _, k := range []string{"metrics", "samples", "heatmap", "spans", "events"} {
		if m[k] == "" {
			t.Fatalf("index missing %q: %v", k, m)
		}
	}
	if resp, _ := get(t, s, "/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", resp.StatusCode)
	}
}

func TestMetricsServesPublishedSnapshotPlusHubCounters(t *testing.T) {
	s := startServer(t)
	s.PublishMetrics([]obs.MetricValue{{Name: "cpu.cycles", Value: 42}})
	_, body := get(t, s, "/metrics")
	var doc struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if doc.Metrics["cpu.cycles"] != 42 {
		t.Fatalf("published metric lost: %v", doc.Metrics)
	}
	for _, k := range []string{"telemetry.events", "telemetry.events.dropped", "telemetry.subscribers"} {
		if _, ok := doc.Metrics[k]; !ok {
			t.Fatalf("hub counter %q missing: %v", k, doc.Metrics)
		}
	}
}

// TestMetricsCleansNonFinite: a gauge that divides by zero upstream must
// arrive as 0, not break the JSON encoder.
func TestMetricsCleansNonFinite(t *testing.T) {
	s := startServer(t)
	nan := 0.0
	s.PublishMetrics([]obs.MetricValue{
		{Name: "bad.nan", Value: nan / nan},
		{Name: "bad.inf", Value: 1 / nan},
	})
	resp, body := get(t, s, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("non-finite values broke /metrics: %v\n%s", err, body)
	}
	if doc.Metrics["bad.nan"] != 0 || doc.Metrics["bad.inf"] != 0 {
		t.Fatalf("non-finite not cleaned: %v", doc.Metrics)
	}
}

func TestSamplesRoundTrip(t *testing.T) {
	s := startServer(t)
	s.PublishSamples(1000, []obs.Sample{
		{Phase: "build", Instructions: 1000, Cycles: 1500, DInstructions: 1000, DCycles: 1500},
		{Phase: "sim", Instructions: 2000, Cycles: 3200, DInstructions: 1000, DCycles: 1700},
	})
	_, body := get(t, s, "/samples")
	var doc struct {
		Every   uint64       `json:"every"`
		Samples []obs.Sample `json:"samples"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/samples not JSON: %v\n%s", err, body)
	}
	if doc.Every != 1000 || len(doc.Samples) != 2 || doc.Samples[1].Phase != "sim" {
		t.Fatalf("samples wrong: %+v", doc)
	}
}

func TestHeatmapTopParam(t *testing.T) {
	s := startServer(t)
	h := obs.NewHeatMap(16, 0)
	for i := uint64(0); i < 5; i++ {
		base := 0x100 + i*0x100
		h.OnAlloc(base, 8)
		for j := uint64(0); j <= i; j++ {
			h.RecordAccess(base, base, false, 0)
		}
	}
	s.PublishHeat(h.Snapshot(5))

	_, body := get(t, s, "/heatmap?top=2")
	var snap obs.HeatSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/heatmap not JSON: %v\n%s", err, body)
	}
	if len(snap.Hottest) != 2 {
		t.Fatalf("top=2 returned %d objects", len(snap.Hottest))
	}
	if snap.Hottest[0].Base != 0x500 {
		t.Fatalf("hottest = %#x, want 0x500", snap.Hottest[0].Base)
	}
	if snap.Objects != 5 {
		t.Fatalf("Objects = %d, want 5 (totals not truncated)", snap.Objects)
	}
	if resp, _ := get(t, s, "/heatmap?top=zero"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad top status %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, s, "/heatmap?top=-1"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative top status %d, want 400", resp.StatusCode)
	}
}

func TestSpansEndpoint(t *testing.T) {
	s := startServer(t)
	st := obs.NewSpanTable(8)
	st.Record(obs.RelocationSpan{Src: 0x10, Tgt: 0x20, Words: 4,
		CopyCycles: 10, VerifyCycles: 2, PlantCycles: 4, TotalCycles: 16,
		Outcome: obs.RelocCommitted})
	s.PublishSpans(st.Snapshot(8))
	_, body := get(t, s, "/spans")
	var snap obs.SpanSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/spans not JSON: %v\n%s", err, body)
	}
	if snap.Total != 1 || snap.Committed != 1 || len(snap.Recent) != 1 {
		t.Fatalf("span snapshot wrong: %+v", snap)
	}
	if len(snap.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(snap.Phases))
	}
}

// TestEventsStreamNDJSON subscribes to /events while a producer-side
// tracer emits, and checks each received line is one valid JSON event.
func TestEventsStreamNDJSON(t *testing.T) {
	s := startServer(t)
	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}

	// Wait until the subscriber is attached before emitting, or the
	// batch is dropped on the floor (no subscribers yet).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, subs := s.Hub().Stats(); subs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never attached")
		}
		time.Sleep(time.Millisecond)
	}

	tr := obs.NewTracer(obs.NoClose(s.Hub()), 4)
	for i := 0; i < 8; i++ {
		tr.Emit(obs.Event{Cycle: int64(i), Kind: obs.KTrap, Addr: 0x40})
	}
	tr.Flush()

	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 8; i++ {
		if !sc.Scan() {
			t.Fatalf("stream ended after %d lines: %v", i, sc.Err())
		}
		var ev struct {
			Cycle int64  `json:"cycle"`
			Kind  string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, sc.Text())
		}
		if ev.Cycle != int64(i) || ev.Kind != "trap" {
			t.Fatalf("line %d = %+v", i, ev)
		}
	}
}

// TestEventsStreamEndsOnClose: closing the server must terminate open
// /events streams instead of leaving clients hanging.
func TestEventsStreamEndsOnClose(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(resp.Body)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	s.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("/events did not end on server Close")
	}
}

// TestConcurrentPublishAndServe is the -race regression net for the
// publish/serve boundary: one goroutine publishes at sampler cadence
// while several clients hammer every endpoint and an /events consumer
// streams.
func TestConcurrentPublishAndServe(t *testing.T) {
	s := startServer(t)
	h := obs.NewHeatMap(64, 0)
	st := obs.NewSpanTable(64)
	tr := obs.NewTracer(obs.NoClose(s.Hub()), 8)

	var readers sync.WaitGroup
	stop := make(chan struct{})
	producerDone := make(chan struct{})

	// Producer: owns the obs structures, publishes snapshots.
	go func() {
		defer close(producerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				tr.Flush()
				return
			default:
			}
			base := uint64(0x100 + (i%32)*0x40)
			h.OnAlloc(base, 16)
			h.RecordAccess(base, base, i%2 == 0, i%3)
			st.Record(obs.RelocationSpan{Src: base, Tgt: base + 0x1000, Words: 2,
				CopyCycles: int64(i % 50), VerifyCycles: 0, PlantCycles: 1,
				TotalCycles: int64(i%50) + 1, Outcome: obs.RelocCommitted})
			tr.Emit(obs.Event{Cycle: int64(i), Kind: obs.KRelocate, Addr: base})
			s.PublishHeat(h.Snapshot(10))
			s.PublishSpans(st.Snapshot(10))
			s.PublishMetrics([]obs.MetricValue{{Name: "i", Value: float64(i)}})
			s.PublishSamples(100, []obs.Sample{{Instructions: uint64(i)}})
		}
	}()

	// A streaming /events consumer that reads a bounded amount.
	readers.Add(1)
	go func() {
		defer readers.Done()
		resp, err := http.Get("http://" + s.Addr() + "/events")
		if err != nil {
			t.Errorf("/events: %v", err)
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		for i := 0; i < 50 && sc.Scan(); i++ {
			if !json.Valid(sc.Bytes()) {
				t.Errorf("invalid event line: %s", sc.Text())
				return
			}
		}
	}()

	// Snapshot readers.
	for c := 0; c < 3; c++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			paths := []string{"/metrics", "/samples", "/heatmap?top=10", "/spans"}
			for i := 0; i < 30; i++ {
				path := paths[i%len(paths)]
				resp, err := http.Get("http://" + s.Addr() + path)
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
				if !json.Valid(body) {
					t.Errorf("%s: invalid JSON under concurrency", path)
					return
				}
			}
		}()
	}

	// Let the readers finish, then stop the producer.
	done := make(chan struct{})
	go func() { readers.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent publish/serve deadlocked")
	}
	close(stop)
	select {
	case <-producerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("producer did not stop")
	}
}

// TestSlowEventsClientNeverStallsProducer floods the hub with a stuck
// subscriber attached; the producer must complete immediately and the
// drops must be visible in /metrics.
func TestSlowEventsClientNeverStallsProducer(t *testing.T) {
	s := startServer(t)
	// A raw hub subscriber that never reads models the wedged client.
	stuck := s.Hub().Subscribe(1)
	defer stuck.Unsubscribe()

	start := time.Now()
	for i := 0; i < 1000; i++ {
		if err := s.Hub().WriteEvents([]obs.Event{{Cycle: int64(i), Kind: obs.KTrap}}); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("producer stalled behind stuck subscriber: %v", elapsed)
	}
	if d := stuck.Dropped(); d != 999 {
		t.Fatalf("Dropped = %d, want 999 (queue of 1)", d)
	}
	_, body := get(t, s, "/metrics")
	if !strings.Contains(string(body), "telemetry.events.dropped") {
		t.Fatalf("drop counter missing from /metrics:\n%s", body)
	}
	var doc struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Metrics["telemetry.events.dropped"] != 999 {
		t.Fatalf("dropped = %v, want 999", doc.Metrics["telemetry.events.dropped"])
	}
}

// TestPublishSamplesIsolation: the published slice is what is served —
// callers pass copies, and the serving side must not leak the internal
// series to mutation. This pins the contract documented on
// PublishSamples.
func TestPublishSamplesIsolation(t *testing.T) {
	s := startServer(t)
	samples := []obs.Sample{{Instructions: 1}}
	s.PublishSamples(10, samples)
	_, body1 := get(t, s, "/samples")
	s.PublishSamples(10, []obs.Sample{{Instructions: 2}})
	_, body2 := get(t, s, "/samples")
	if string(body1) == string(body2) {
		t.Fatal("republish did not replace the served snapshot")
	}
	var doc struct {
		Samples []obs.Sample `json:"samples"`
	}
	if err := json.Unmarshal(body2, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Samples[0].Instructions != 2 {
		t.Fatalf("served stale snapshot: %+v", doc.Samples)
	}
}
