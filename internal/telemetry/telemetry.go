// Package telemetry is the live HTTP plane over the obs layer — the
// first brick of memfwd-serve. A Server exposes read-only JSON views of
// published snapshots plus an NDJSON live event stream:
//
//	/metrics        registry snapshot (plus the hub's own counters)
//	/samples        sampler time series
//	/heatmap?top=K  per-object heat map rankings
//	/spans          relocation-span digest
//	/events         live trace events, one JSON object per line
//
// Non-interference is structural. The simulation goroutine owns every
// mutable obs structure; the server never reaches into them. Instead
// the simulation *publishes* immutable snapshots (cheap copies taken at
// sampler cadence) which handlers read under an RWMutex, and live
// events arrive through an obs.Broadcaster whose bounded non-blocking
// subscriber queues drop batches for slow clients rather than ever
// stalling the producer. A wedged curl therefore costs the run one
// failed channel send per trace flush, nothing more.
package telemetry

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"memfwd/internal/obs"
	"memfwd/internal/report"
)

// Server is one telemetry endpoint set bound to a listener.
type Server struct {
	hub *obs.Broadcaster
	srv *http.Server
	ln  net.Listener

	mu      sync.RWMutex
	metrics []obs.MetricValue
	samples obs.Series
	heat    obs.HeatSnapshot
	spans   obs.SpanSnapshot
}

// Start listens on addr (host:port; ":0" picks a free port) and serves
// until Close. The returned server's Hub is ready for subscribers and
// for wiring as a tracer sink.
func Start(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{hub: obs.NewBroadcaster()}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/samples", s.handleSamples)
	mux.HandleFunc("/heatmap", s.handleHeatmap)
	mux.HandleFunc("/spans", s.handleSpans)
	mux.HandleFunc("/events", s.handleEvents)
	s.ln = ln
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// Addr returns the bound listen address (resolved port for ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Hub returns the live-event broadcaster. Wire it into a tracer with
// obs.NewTracer(obs.NoClose(s.Hub()), ...) — NoClose keeps a per-cell
// tracer's Close from tearing the shared hub down.
func (s *Server) Hub() *obs.Broadcaster { return s.hub }

// closeTimeout bounds the graceful drain in Close. Short on purpose:
// a cooperative /events client exits within one batch delivery once the
// hub closes, so the deadline only matters for wedged connections.
const closeTimeout = 2 * time.Second

// Close tears the plane down gracefully: it closes the hub first —
// every /events subscriber drains its queued batches and gets a final
// flush before its handler returns (the Broadcaster's close-with-
// buffered-batches drain guarantee) — then lets http.Server.Shutdown
// wait, briefly, for in-flight handlers to finish. Only connections
// still open after the deadline (a client that stopped reading
// mid-stream) are cut hard via http.Server.Close.
//
// This replaces the abrupt hub.Close + srv.Close teardown that could
// cut a mid-stream client before its final batch was written.
func (s *Server) Close() error {
	s.hub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), closeTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// PublishMetrics replaces the served registry snapshot. Call it from
// the goroutine that owns the registry; the slice must not be mutated
// afterwards (Registry.Snapshot allocates fresh, so passing its result
// directly is safe).
func (s *Server) PublishMetrics(snap []obs.MetricValue) {
	s.mu.Lock()
	s.metrics = snap
	s.mu.Unlock()
}

// PublishSamples replaces the served time series. samples must not be
// mutated afterwards; pass a copy when the live series keeps growing.
func (s *Server) PublishSamples(every uint64, samples []obs.Sample) {
	s.mu.Lock()
	s.samples = obs.Series{Every: every, Samples: samples}
	s.mu.Unlock()
}

// PublishHeat replaces the served heat-map snapshot.
func (s *Server) PublishHeat(h obs.HeatSnapshot) {
	s.mu.Lock()
	s.heat = h
	s.mu.Unlock()
}

// PublishSpans replaces the served relocation-span snapshot.
func (s *Server) PublishSpans(sp obs.SpanSnapshot) {
	s.mu.Lock()
	s.spans = sp
	s.mu.Unlock()
}

// writeJSON sends v through the shared envelope encoder.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := report.WriteJSON(w, v); err != nil {
		// Headers are gone; nothing useful left to do but drop the conn.
		return
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, map[string]string{
		"metrics": "/metrics",
		"samples": "/samples",
		"heatmap": "/heatmap?top=K",
		"spans":   "/spans",
		"events":  "/events (NDJSON stream)",
	})
}

// clean maps NaN/Inf to 0, matching the obs table/JSON formatting
// policy (encoding/json rejects non-finite values outright).
func clean(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	snap := s.metrics
	s.mu.RUnlock()
	vals := make(map[string]float64, len(snap)+3)
	for _, mv := range snap {
		vals[mv.Name] = clean(mv.Value)
	}
	// The hub's own health counters are always live, even between
	// publishes.
	events, dropped, subs := s.hub.Stats()
	vals["telemetry.events"] = float64(events)
	vals["telemetry.events.dropped"] = float64(dropped)
	vals["telemetry.subscribers"] = float64(subs)
	writeJSON(w, map[string]any{"metrics": vals})
}

func (s *Server) handleSamples(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	series := s.samples
	s.mu.RUnlock()
	writeJSON(w, map[string]any{
		"every":   series.Every,
		"samples": series.Samples,
	})
}

func (s *Server) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	top := 10
	if q := r.URL.Query().Get("top"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			http.Error(w, "top must be a positive integer", http.StatusBadRequest)
			return
		}
		top = n
	}
	s.mu.RLock()
	h := s.heat
	s.mu.RUnlock()
	if len(h.Hottest) > top {
		h.Hottest = h.Hottest[:top]
	}
	if len(h.Chains) > top {
		h.Chains = h.Chains[:top]
	}
	writeJSON(w, h)
}

func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	sp := s.spans
	s.mu.RUnlock()
	writeJSON(w, sp)
}

// handleEvents streams live trace events as NDJSON until the client
// disconnects or the server closes. The subscriber queue is bounded;
// batches that would block are dropped (and counted) rather than ever
// back-pressuring the simulation.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sub := s.hub.Subscribe(64)
	defer sub.Unsubscribe()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	sink := obs.NewNDJSONSink(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case batch, ok := <-sub.C:
			if !ok {
				return
			}
			if sink.WriteEvents(batch) != nil || sink.Close() != nil {
				return // client went away; Close here only flushes
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
