package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memfwd/internal/obs"
)

// TestCloseDrainsOpenEventsStream pins the ISSUE 7 satellite-1 fix:
// a client holding /events open across Server.Close must receive every
// batch that was queued on its subscription before the close, then a
// clean end-of-stream — not an abrupt connection reset. The old
// hub.Close-then-srv.Close teardown could cut the connection while the
// handler still had queued batches to flush.
func TestCloseDrainsOpenEventsStream(t *testing.T) {
	s, err := Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, subs := s.Hub().Stats(); subs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("subscriber never attached")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue batches on the subscription without reading the stream, so
	// Close finds them undelivered and must drain them.
	const batches = 32
	for i := 0; i < batches; i++ {
		if err := s.Hub().WriteEvents([]obs.Event{{Cycle: int64(i), Kind: obs.KTrap}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Everything queued must now be readable, ending in a clean EOF.
	sc := bufio.NewScanner(resp.Body)
	got := 0
	for sc.Scan() {
		var ev struct {
			Cycle int64  `json:"cycle"`
			Kind  string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", got, err, sc.Text())
		}
		if ev.Cycle != int64(got) || ev.Kind != "trap" {
			t.Fatalf("line %d = %+v", got, ev)
		}
		got++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream did not end cleanly: %v", err)
	}
	if got != batches {
		t.Fatalf("drained %d events across Close, want %d", got, batches)
	}
}

// TestPlaneShutdownLingersOnce pins the satellite-3 fix: however many
// times (and from however many goroutines) Shutdown runs, the linger
// happens exactly once and the server closes exactly once.
func TestPlaneShutdownLingersOnce(t *testing.T) {
	var mu sync.Mutex
	var logs []string
	p, err := Boot("127.0.0.1:0", 50*time.Millisecond, func(format string, args ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(format, args...))
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := p.Addr()
	if resp, err := http.Get("http://" + addr + "/metrics"); err != nil {
		t.Fatalf("plane not serving: %v", err)
	} else {
		resp.Body.Close()
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Shutdown(); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
		}()
	}
	wg.Wait()
	start := time.Now()
	if err := p.Shutdown(); err != nil { // post-hoc deferred call
		t.Fatalf("repeat Shutdown: %v", err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("repeat Shutdown lingered again (%v)", d)
	}

	mu.Lock()
	lingers := 0
	for _, l := range logs {
		if strings.Contains(l, "lingering") {
			lingers++
		}
	}
	mu.Unlock()
	if lingers != 1 {
		t.Fatalf("lingered %d times, want exactly 1\nlogs: %q", lingers, logs)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
}

// TestBootFailureLeavesNothingBehind: a failed Boot returns an error
// and no Plane, so no linger or close can ever be owed for it.
func TestBootFailureLeavesNothingBehind(t *testing.T) {
	p, err := Boot("definitely-not-a-listen-address", time.Hour, nil)
	if err == nil {
		t.Fatal("Boot on a bad address succeeded")
	}
	if p != nil {
		t.Fatal("failed Boot returned a Plane")
	}
}

// TestPlanePublisherStopsAtShutdown: the periodic publisher runs at
// least once immediately, gets a final run during Shutdown, and never
// runs again after Shutdown returns.
func TestPlanePublisherStopsAtShutdown(t *testing.T) {
	p, err := Boot("127.0.0.1:0", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	p.StartPublisher(time.Hour, func() { n.Add(1) })
	if err := p.Shutdown(); err != nil {
		t.Fatal(err)
	}
	after := n.Load()
	if after < 2 { // immediate run + final run
		t.Fatalf("publisher ran %d times, want >= 2", after)
	}
	time.Sleep(20 * time.Millisecond)
	if n.Load() != after {
		t.Fatal("publisher still running after Shutdown")
	}
}
