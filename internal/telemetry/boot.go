package telemetry

import (
	"sync"
	"time"
)

// Plane couples a telemetry Server with the boot/linger/close lifecycle
// that used to be duplicated (with slightly different defer orderings)
// across cmd/memfwd-sim's two run paths and internal/figures, and that
// cmd/memfwd-serve now shares. The contract the callers rely on:
//
//   - Boot either returns a running Plane or an error — a failed server
//     start can never leave a linger behind, because the linger lives
//     inside Shutdown and there is no Plane to shut down.
//   - Shutdown is idempotent: the linger happens at most once and the
//     server closes at most once, no matter how many times Shutdown
//     runs (e.g. a deferred call after an explicit one). This is the
//     fix for the double-`defer linger(...)` registration hazard in
//     cmd/memfwd-sim (ISSUE 7 satellite 3).
//   - Any publisher goroutine started with StartPublisher is stopped —
//     after one final publish, so the lingering server serves end
//     state — before the linger begins.
type Plane struct {
	srv    *Server
	linger time.Duration
	logf   func(format string, args ...any)

	stopPub chan struct{}
	pubWG   sync.WaitGroup

	shutdown sync.Once
	err      error
}

// Boot starts a telemetry server on addr and reports the bound address
// through logf (nil discards logging). linger is how long Shutdown
// keeps the server reachable after the work completes — 0 for
// always-on servers and test planes.
func Boot(addr string, linger time.Duration, logf func(string, ...any)) (*Plane, error) {
	srv, err := Start(addr)
	if err != nil {
		return nil, err
	}
	p := &Plane{srv: srv, linger: linger, logf: logf, stopPub: make(chan struct{})}
	p.logDo("telemetry plane on http://%s", srv.Addr())
	return p, nil
}

func (p *Plane) logDo(format string, args ...any) {
	if p.logf != nil {
		p.logf(format, args...)
	}
}

// Server returns the underlying telemetry server (for Publish* calls).
func (p *Plane) Server() *Server { return p.srv }

// Addr returns the bound listen address.
func (p *Plane) Addr() string { return p.srv.Addr() }

// StartPublisher runs publish immediately and then every interval on a
// dedicated goroutine until Shutdown, which stops the ticker and runs
// one final publish so the served snapshots reflect end state.
// Everything publish touches must be safe for use off the simulation
// goroutine (figures publishes a registry of thread-safe JobProgress
// views; machines publishing their own non-thread-safe registries
// should publish inline at sampler cadence instead).
func (p *Plane) StartPublisher(interval time.Duration, publish func()) {
	p.pubWG.Add(1)
	go func() {
		defer p.pubWG.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			publish()
			select {
			case <-p.stopPub:
				publish()
				return
			case <-tick.C:
			}
		}
	}()
}

// Shutdown stops publishers, lingers once if configured, and closes
// the server gracefully. Safe to call any number of times from any
// goroutine; every call returns the first call's result.
func (p *Plane) Shutdown() error {
	p.shutdown.Do(func() {
		close(p.stopPub)
		p.pubWG.Wait()
		if p.linger > 0 {
			p.logDo("telemetry lingering %s on http://%s", p.linger, p.Addr())
			time.Sleep(p.linger)
		}
		p.err = p.srv.Close()
	})
	return p.err
}
