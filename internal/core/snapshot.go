package core

// ForwarderSnapshot captures a Forwarder's configuration and counter
// state for session suspend/migrate (DESIGN.md §10). The forwarding
// graph itself lives in mem.Memory (words + fbits) and travels with
// the MemorySnapshot; what the Forwarder owns is the chain-walk policy
// (HopLimit/ChainCap) and the cycle/chain statistics, which must
// survive migration so per-session metrics stay monotone.
type ForwarderSnapshot struct {
	HopLimit         int
	ChainCap         int
	CycleFalseAlarms uint64
	CyclesDetected   uint64
	MaxChain         int
}

// Snapshot captures the forwarder's policy and counters.
func (f *Forwarder) Snapshot() ForwarderSnapshot {
	return ForwarderSnapshot{
		HopLimit:         f.HopLimit,
		ChainCap:         f.ChainCap,
		CycleFalseAlarms: f.CycleFalseAlarms,
		CyclesDetected:   f.CyclesDetected,
		MaxChain:         f.MaxChain,
	}
}

// Restore installs a snapshot's policy and counters. The Mem binding
// and the FaultHook are wiring of the target machine and are preserved
// (sim.Machine.LoadState re-installs fault injection explicitly).
func (f *Forwarder) Restore(s ForwarderSnapshot) {
	f.HopLimit = s.HopLimit
	f.ChainCap = s.ChainCap
	f.CycleFalseAlarms = s.CycleFalseAlarms
	f.CyclesDetected = s.CyclesDetected
	f.MaxChain = s.MaxChain
}
