package core

import (
	"errors"
	"testing"
	"testing/quick"

	"memfwd/internal/quickseed"

	"memfwd/internal/mem"
)

func newF() *Forwarder { return NewForwarder(mem.New()) }

// buildChain lays out a forwarding chain of n hops ending at final,
// returning the chain's head address. Each link is one word.
func buildChain(f *Forwarder, head, final mem.Addr, hops int) {
	cur := head
	for i := 0; i < hops; i++ {
		next := final
		if i < hops-1 {
			next = head + mem.Addr((i+1)*0x100)
		}
		f.UnforwardedWrite(cur, uint64(next), true)
		cur = next
	}
}

func TestResolveNoForwarding(t *testing.T) {
	f := newF()
	f.Mem.WriteWord(0x800, 42)
	final, hops, err := f.Resolve(0x804, nil)
	if err != nil || hops != 0 || final != 0x804 {
		t.Fatalf("got (%#x,%d,%v)", final, hops, err)
	}
}

// TestFigure1 reproduces the paper's Figure 1 walkthrough: five 32-bit
// elements at decimal addresses 800..816 relocated to 5800..5816; a
// 32-bit load of address 804 must be forwarded to 5804 and return 47.
func TestFigure1(t *testing.T) {
	f := newF()
	m := f.Mem
	// Before relocation: the five elements, plus the neighbouring
	// subword (value 5) that shares the last word and must be carried
	// along with it.
	vals := []uint64{13, 47, 0, 19, 77, 5}
	for i, v := range vals {
		if err := m.WriteData(mem.Addr(800+4*i), v, 4); err != nil {
			t.Fatal(err)
		}
	}
	// Relocate words 800, 808, 816 (the 816 word carries both the 19
	// at 816 and the 5 at 820, per the paper's note).
	for i := 0; i < 3; i++ {
		src := mem.Addr(800 + 8*i)
		tgt := mem.Addr(5800 + 8*i)
		v, _ := m.ReadWordFBit(src)
		m.WriteWord(tgt, v)
		f.UnforwardedWrite(src, uint64(tgt), true)
	}
	final, hops, err := f.Resolve(804, nil)
	if err != nil || hops != 1 {
		t.Fatalf("resolve: (%#x,%d,%v)", final, hops, err)
	}
	if final != 5804 {
		t.Fatalf("final = %d, want 5804", final)
	}
	if got, _ := m.ReadData(final, 4); got != 47 {
		t.Fatalf("forwarded value = %d, want 47", got)
	}
	// The subword at 820 moved along with its word.
	final820, _, _ := f.Resolve(820, nil)
	if got, _ := m.ReadData(final820, 4); got != 5 {
		t.Fatalf("value at forwarded 820 = %d, want 5", got)
	}
	// An Unforwarded_Read of word 808 sees the forwarding address
	// itself, not the data (Section 3.1's example).
	raw, fbit := f.UnforwardedRead(808)
	if raw != 5808 || !fbit {
		t.Fatalf("UnforwardedRead(808) = (%d,%v), want (5808,true)", raw, fbit)
	}
}

func TestResolveChainLengths(t *testing.T) {
	f := newF()
	for _, hops := range []int{1, 2, 3, DefaultHopLimit} {
		head := mem.Addr(0x10000 * (hops + 1))
		final := head + 0x9000
		buildChain(f, head, final, hops)
		got, n, err := f.Resolve(head, nil)
		if err != nil {
			t.Fatalf("hops=%d: %v", hops, err)
		}
		if n != hops || got != final {
			t.Fatalf("hops=%d: got (%#x,%d), want (%#x,%d)", hops, got, n, final, hops)
		}
	}
}

func TestResolvePreservesOffsetAcrossHops(t *testing.T) {
	f := newF()
	buildChain(f, 0x8000, 0x20000, 3)
	for _, off := range []mem.Addr{0, 1, 2, 4, 7} {
		final, _, err := f.Resolve(0x8000+off, nil)
		if err != nil {
			t.Fatal(err)
		}
		if final != 0x20000+off {
			t.Fatalf("off %d: final %#x, want %#x", off, final, 0x20000+off)
		}
	}
}

func TestHopCallbackSeesEveryHop(t *testing.T) {
	f := newF()
	buildChain(f, 0x8000, 0x20000, 3)
	var walked []mem.Addr
	_, _, err := f.Resolve(0x8000, func(wa mem.Addr, hop int) {
		if hop != len(walked)+1 {
			t.Fatalf("hop numbering: got %d at index %d", hop, len(walked))
		}
		walked = append(walked, wa)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []mem.Addr{0x8000, 0x8100, 0x8200}
	if len(walked) != len(want) {
		t.Fatalf("walked %v, want %v", walked, want)
	}
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("walked %v, want %v", walked, want)
		}
	}
}

func TestLongAcyclicChainIsFalseAlarm(t *testing.T) {
	f := newF()
	hops := DefaultHopLimit + 5
	buildChain(f, 0x8000, 0x90000, hops)
	final, n, err := f.Resolve(0x8000, nil)
	if err != nil {
		t.Fatalf("long acyclic chain aborted: %v", err)
	}
	if final != 0x90000 || n != hops {
		t.Fatalf("got (%#x,%d)", final, n)
	}
	if f.CycleFalseAlarms != 1 || f.CyclesDetected != 0 {
		t.Fatalf("false alarms %d, detected %d", f.CycleFalseAlarms, f.CyclesDetected)
	}
}

func TestCycleDetected(t *testing.T) {
	f := newF()
	// Two-word cycle: A -> B -> A.
	f.UnforwardedWrite(0x8000, 0x8100, true)
	f.UnforwardedWrite(0x8100, 0x8000, true)
	_, _, err := f.Resolve(0x8000, nil)
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	if f.CyclesDetected != 1 {
		t.Fatalf("CyclesDetected = %d", f.CyclesDetected)
	}
}

func TestSelfCycleDetected(t *testing.T) {
	f := newF()
	f.UnforwardedWrite(0x8000, 0x8000, true)
	_, _, err := f.Resolve(0x8004, nil)
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestFinalAddrIdempotent(t *testing.T) {
	f := newF()
	buildChain(f, 0x8000, 0x40000, 2)
	fa, err := f.FinalAddr(0x8004)
	if err != nil {
		t.Fatal(err)
	}
	fa2, err := f.FinalAddr(fa)
	if err != nil {
		t.Fatal(err)
	}
	if fa2 != fa {
		t.Fatalf("FinalAddr not idempotent: %#x then %#x", fa, fa2)
	}
}

func TestUnforwardedWriteDoesNotChase(t *testing.T) {
	f := newF()
	buildChain(f, 0x8000, 0x40000, 1)
	f.UnforwardedWrite(0x8000, 123, false)
	v, fb := f.UnforwardedRead(0x8000)
	if v != 123 || fb {
		t.Fatalf("got (%d,%v)", v, fb)
	}
	// Chain severed: resolve now stays at the initial address.
	final, hops, _ := f.Resolve(0x8000, nil)
	if final != 0x8000 || hops != 0 {
		t.Fatalf("after severing: (%#x,%d)", final, hops)
	}
}

func TestReadFBit(t *testing.T) {
	f := newF()
	if f.ReadFBit(0x8000) {
		t.Fatal("fresh word has fbit set")
	}
	f.UnforwardedWrite(0x8000, 0x9000, true)
	if !f.ReadFBit(0x8000) || !f.ReadFBit(0x8007) {
		t.Fatal("fbit should read set for any byte of the word")
	}
	if f.ReadFBit(0x8008) {
		t.Fatal("fbit leaked to next word")
	}
}

func TestChainWords(t *testing.T) {
	f := newF()
	buildChain(f, 0x8000, 0x40000, 3)
	got := f.ChainWords(0x8003)
	want := []mem.Addr{0x8000, 0x8100, 0x8200}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// On a cycle, ChainWords terminates and returns each word once.
	f2 := newF()
	f2.UnforwardedWrite(0x100, 0x200, true)
	f2.UnforwardedWrite(0x200, 0x100, true)
	if got := f2.ChainWords(0x100); len(got) != 2 {
		t.Fatalf("cycle chain: %v", got)
	}
}

// Property: for random chain length (0..12) and random in-word offset,
// Resolve lands on finalBase+offset with exactly that many hops, and
// data written at the final location is read back through the chain.
func TestResolveProperty(t *testing.T) {
	prop := func(hopSel uint8, offSel uint8, val uint64) bool {
		hops := int(hopSel % 13)
		off := mem.Addr(offSel % 8)
		f := newF()
		head := mem.Addr(0x8000)
		final := mem.Addr(0x100000)
		buildChain(f, head, final, hops)
		f.Mem.WriteWord(final, val)
		got, n, err := f.Resolve(head+off, nil)
		if err != nil || n != hops {
			return false
		}
		wantAddr := head + off
		if hops > 0 {
			wantAddr = final + off
		}
		if got != wantAddr {
			return false
		}
		v := f.Mem.ReadWord(mem.WordAlign(got))
		if hops > 0 {
			return v == val
		}
		return true
	}
	if err := quick.Check(prop, quickseed.Config(t, 500)); err != nil {
		t.Fatal(err)
	}
}

func TestChainCapOnPathologicalChain(t *testing.T) {
	f := newF()
	f.ChainCap = 32
	// A 64-hop acyclic chain exceeds the cap: accurate check treats
	// absurd chains as cycles and aborts deterministically.
	cur := mem.Addr(0x10000)
	for i := 0; i < 64; i++ {
		next := cur + 0x100
		f.UnforwardedWrite(cur, uint64(next), true)
		cur = next
	}
	_, _, err := f.Resolve(0x10000, nil)
	if err == nil {
		t.Fatal("expected an abort on a chain beyond ChainCap")
	}
}

func TestChainWordsBoundedOnLongChain(t *testing.T) {
	f := newF()
	f.ChainCap = 8
	cur := mem.Addr(0x10000)
	for i := 0; i < 64; i++ {
		next := cur + 0x100
		f.UnforwardedWrite(cur, uint64(next), true)
		cur = next
	}
	words := f.ChainWords(0x10000)
	if len(words) > f.ChainCap+2 {
		t.Fatalf("ChainWords returned %d entries despite cap %d", len(words), f.ChainCap)
	}
}

// Regression: cycleCheck must walk the same offset-preserving chain as
// Resolve. The forwarding words below hold misaligned addresses, so the
// chain is cyclic only when the reference's byte offset (+4) is carried
// through each hop: WordAlign(0x8FFC+4) = 0x9000 but WordAlign(0x8FFC) =
// 0x8FF8, whose fbit is clear. An offset-dropping checker follows the
// second path, sees no cycle, and lets resolveUnbounded spin to ChainCap
// instead of reporting ErrCycle.
func TestCycleCheckPreservesOffset(t *testing.T) {
	f := newF()
	f.UnforwardedWrite(0x8000, 0x8FFC, true)
	f.UnforwardedWrite(0x9000, 0x7FFC, true)
	_, _, err := f.Resolve(0x8004, nil)
	if !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
	if f.CyclesDetected != 1 || f.CycleFalseAlarms != 0 {
		t.Fatalf("detected %d, false alarms %d; want 1, 0",
			f.CyclesDetected, f.CycleFalseAlarms)
	}
}

// Regression: ChainWords must enumerate the same words Resolve visits
// when the forwarding words hold misaligned addresses. Dropping the
// byte offset would leave 0x8FF8 (fbit clear) as the second step and
// truncate the chain after one entry.
func TestChainWordsPreservesOffset(t *testing.T) {
	f := newF()
	f.UnforwardedWrite(0x8000, 0x8FFC, true)  // +4 -> word 0x9000
	f.UnforwardedWrite(0x9000, 0x1FFFC, true) // +4 -> word 0x20000, unforwarded
	var hops []mem.Addr
	final, _, err := f.Resolve(0x8004, func(wa mem.Addr, hop int) {
		hops = append(hops, wa)
	})
	if err != nil {
		t.Fatal(err)
	}
	if final != 0x20004 {
		t.Fatalf("final = %#x, want 0x20004", final)
	}
	words := f.ChainWords(0x8004)
	if len(words) != len(hops) {
		t.Fatalf("ChainWords %v, Resolve hops %v", words, hops)
	}
	for i := range hops {
		if words[i] != hops[i] {
			t.Fatalf("ChainWords %v diverges from Resolve hops %v", words, hops)
		}
	}
}

// AppendChainWords reuses the caller's buffer: no allocation once the
// buffer has grown to the chain length.
func TestAppendChainWordsReusesBuffer(t *testing.T) {
	f := newF()
	buildChain(f, 0x8000, 0x40000, 3)
	buf := make([]mem.Addr, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		buf = f.AppendChainWords(buf[:0], 0x8000)
	})
	if allocs != 0 {
		t.Fatalf("AppendChainWords allocated %.1f times per run", allocs)
	}
	if len(buf) != 3 || buf[0] != 0x8000 {
		t.Fatalf("chain %v", buf)
	}
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Fatal("Kind strings")
	}
}
