// Package core implements the memory-forwarding mechanism itself — the
// paper's primary contribution (Luk & Mowry, ISCA 1999, Sections 2 and 3).
//
// It provides:
//
//   - the hardware dereferencing mechanism that follows forwarding
//     chains of arbitrary length, preserving the byte offset within a
//     word at each hop (Section 2.1, Figure 1);
//   - the three ISA extensions Read_FBit, Unforwarded_Read, and
//     Unforwarded_Write (Section 3.1, Figure 3);
//   - forwarding-cycle handling: a cheap hop-count limit backed by an
//     accurate software cycle check on overflow (Section 3.2);
//   - user-level traps upon forwarding (Section 3.2), which profiling
//     tools and on-the-fly pointer-repair handlers hook into.
//
// Timing is deliberately absent: the machine model (internal/sim) drives
// Resolve with a per-hop callback and charges each hop as a dependent
// cache access, exactly as the hardware would re-launch the reference.
package core

import (
	"errors"
	"fmt"

	"memfwd/internal/mem"
	"memfwd/internal/obs"
)

// Kind classifies a data reference for trap events and statistics.
type Kind uint8

const (
	Load Kind = iota
	Store
)

func (k Kind) String() string {
	if k == Load {
		return "load"
	}
	return "store"
}

// Event describes one forwarded reference, delivered to a user-level
// trap handler (Section 3.2, "Providing User-Level Traps Upon
// Forwarding"). Site identifies the static reference point (the paper's
// analogue is the PC of the offending instruction).
type Event struct {
	Kind    Kind
	Site    int
	Initial mem.Addr // address the program issued
	Final   mem.Addr // address the access resolved to
	Hops    int      // chain length traversed
}

// TrapHandler is invoked after a reference dereferences one or more
// forwarding addresses. Handlers run at user level and may repair stray
// pointers so the forwarding cost is not paid again.
type TrapHandler func(Event)

// ErrCycle is returned when the accurate cycle check confirms that a
// forwarding chain loops back on itself. The paper aborts execution in
// this case; guest programs treat it as fatal.
var ErrCycle = errors.New("core: forwarding cycle detected")

// Defaults for cycle handling. HopLimit is the cheap counter threshold
// that triggers the accurate check; ChainCap bounds the accurate
// re-walk so a pathological acyclic chain still terminates the
// simulation deterministically.
const (
	DefaultHopLimit = 8
	DefaultChainCap = 1 << 16
)

// Forwarder is the hardware dereferencing mechanism attached to one
// tagged memory.
type Forwarder struct {
	Mem *mem.Memory

	// HopLimit is the fast, possibly-inaccurate cycle screen: when a
	// single reference exceeds this many hops, the accurate check runs.
	HopLimit int

	// ChainCap bounds accurate-check chain walks.
	ChainCap int

	// Stats updated by Resolve.
	CycleFalseAlarms uint64 // hop-limit exceeded, but no cycle found
	CyclesDetected   uint64
	MaxChain         int

	// FaultHook, when non-nil, observes every hop Resolve takes, before
	// the hop's timing callback. The fault-injection layer installs it
	// to count chain-walk boundaries and optionally crash mid-walk
	// (internal/fault, point "core.resolve.hop"); it must not mutate
	// memory.
	FaultHook func(wordAddr mem.Addr, hop int)
}

// NewForwarder returns a forwarder with the default cycle-handling
// parameters.
func NewForwarder(m *mem.Memory) *Forwarder {
	return &Forwarder{Mem: m, HopLimit: DefaultHopLimit, ChainCap: DefaultChainCap}
}

// RegisterMetrics exposes the forwarder's cycle-handling statistics as
// registry views under the given prefix (e.g. "fwd").
func (f *Forwarder) RegisterMetrics(r *obs.Registry, prefix string) {
	r.GaugeFunc(prefix+".cycle.false_alarms", func() float64 { return float64(f.CycleFalseAlarms) })
	r.GaugeFunc(prefix+".cycle.detected", func() float64 { return float64(f.CyclesDetected) })
	r.GaugeFunc(prefix+".chain.max", func() float64 { return float64(f.MaxChain) })
}

// HopFunc observes each hop of a chain walk: wordAddr is the word whose
// forwarding bit was found set, hop is its 1-based position in the
// chain. The machine model uses this to charge a dependent cache access
// per hop.
type HopFunc func(wordAddr mem.Addr, hop int)

// Resolve follows the forwarding chain starting at address a and returns
// the final address of the reference plus the number of hops taken.
// The byte offset of a within its word is preserved at every hop
// (Section 2.1: the final address is the forwarding address plus the
// byte offset within the word).
//
// If the chain exceeds f.HopLimit, the accurate software cycle check
// runs (counted in CycleFalseAlarms / CyclesDetected); a confirmed cycle
// returns ErrCycle.
func (f *Forwarder) Resolve(a mem.Addr, onHop HopFunc) (final mem.Addr, hops int, err error) {
	off := mem.Addr(mem.WordOffset(a))
	wa := mem.WordAlign(a)
	for f.Mem.FBit(wa) {
		hops++
		if f.FaultHook != nil {
			f.FaultHook(wa, hops)
		}
		if onHop != nil {
			onHop(wa, hops)
		}
		if hops > f.HopLimit {
			// Exception: run the accurate check once, from the start.
			if f.cycleCheck(mem.WordAlign(a), off) {
				f.CyclesDetected++
				return 0, hops, ErrCycle
			}
			f.CycleFalseAlarms++
			// False alarm: reset the counter (effectively, keep going
			// with the hard cap as the new bound).
			return f.resolveUnbounded(a, wa, off, hops, onHop)
		}
		wa = f.step(wa, off)
	}
	if hops > f.MaxChain {
		f.MaxChain = hops
	}
	return wa + off, hops, nil
}

// step performs one offset-preserving chain hop: it dereferences the
// forwarding address stored at wa and rounds the result (plus the byte
// offset the original reference carried) back to a word boundary. Every
// chain walker — Resolve, resolveUnbounded, cycleCheck, chain
// enumeration — goes through this one function so they all traverse the
// identical sequence of words (Section 2.1: the final address is the
// forwarding address plus the byte offset within the word).
func (f *Forwarder) step(wa, off mem.Addr) mem.Addr {
	return mem.WordAlign(mem.Addr(f.Mem.ReadWord(wa)) + off)
}

// resolveUnbounded continues a chain walk after a false-alarm cycle
// check, bounded only by ChainCap.
func (f *Forwarder) resolveUnbounded(orig, wa, off mem.Addr, hops int, onHop HopFunc) (mem.Addr, int, error) {
	wa = f.step(wa, off)
	for f.Mem.FBit(wa) {
		hops++
		if f.FaultHook != nil {
			f.FaultHook(wa, hops)
		}
		if onHop != nil {
			onHop(wa, hops)
		}
		if hops > f.ChainCap {
			return 0, hops, fmt.Errorf("core: forwarding chain from %#x exceeds cap %d", orig, f.ChainCap)
		}
		wa = f.step(wa, off)
	}
	if hops > f.MaxChain {
		f.MaxChain = hops
	}
	return wa + off, hops, nil
}

// cycleCheck is the accurate (slow) cycle detector — the software
// exception handler of Section 3.2. It walks the same
// offset-preserving chain the fast path walks (an earlier version
// dropped the byte offset here, so on a misaligned forwarding address
// it checked a different chain than Resolve was following) using
// Floyd's tortoise-and-hare, which needs no visited set and therefore
// no allocation. The step bound is a belt-and-suspenders guard: Floyd
// terminates on any functional graph, but an absurdly long walk is
// treated as a cycle so the simulation aborts deterministically.
func (f *Forwarder) cycleCheck(wa, off mem.Addr) bool {
	slow, fast := wa, wa
	for steps := 0; ; steps++ {
		if !f.Mem.FBit(fast) {
			return false
		}
		fast = f.step(fast, off)
		if !f.Mem.FBit(fast) {
			return false
		}
		fast = f.step(fast, off)
		slow = f.step(slow, off)
		if slow == fast {
			return true
		}
		if steps > f.ChainCap {
			return true
		}
	}
}

// FinalAddr resolves a without hop observation; it is the functional
// core of the compiler-inserted final-address lookup used to preserve
// pointer-comparison semantics (Section 2.1). Timing for the lookup is
// charged by the machine layer.
func (f *Forwarder) FinalAddr(a mem.Addr) (mem.Addr, error) {
	final, _, err := f.Resolve(a, nil)
	return final, err
}

// --- ISA extensions (Figure 3) -------------------------------------

// ReadFBit returns the forwarding bit of the word containing a
// (Read_FBit fbit, addr).
func (f *Forwarder) ReadFBit(a mem.Addr) bool { return f.Mem.FBit(a) }

// UnforwardedRead reads the raw word and forwarding bit with the
// forwarding mechanism disabled (Unforwarded_Read value, fbit, addr).
func (f *Forwarder) UnforwardedRead(a mem.Addr) (uint64, bool) {
	return f.Mem.ReadWordFBit(mem.WordAlign(a))
}

// UnforwardedWrite writes the raw word and forwarding bit atomically
// with the forwarding mechanism disabled (Unforwarded_Write value,
// fbit, addr).
func (f *Forwarder) UnforwardedWrite(a mem.Addr, v uint64, fbit bool) {
	f.Mem.WriteWordFBit(mem.WordAlign(a), v, fbit)
}

// AppendChainWords appends every word address on the forwarding chain
// rooted at the word containing a — excluding the final (unforwarded)
// word — to dst and returns the extended slice. Deallocation wrappers
// use this to free all memory reachable through a relocated object's
// chain (Section 3.3, "Deallocating Forwarded Data"); passing a reused
// scratch buffer keeps that path allocation-free. The walk preserves
// a's byte offset (the same chain Resolve follows), is bounded by
// ChainCap, and tolerates cycles by stopping at the first revisited
// word.
func (f *Forwarder) AppendChainWords(dst []mem.Addr, a mem.Addr) []mem.Addr {
	off := mem.Addr(mem.WordOffset(a))
	wa := mem.WordAlign(a)
	start := len(dst)
	for f.Mem.FBit(wa) {
		if len(dst)-start > f.ChainCap || addrSeen(dst[start:], wa) {
			break
		}
		dst = append(dst, wa)
		wa = f.step(wa, off)
	}
	return dst
}

// addrSeen reports whether wa already appears in walked. Chains are
// short in practice (a handful of hops), so a linear scan beats a map
// and allocates nothing; the scan is quadratic only on pathological
// walks that ChainCap bounds anyway.
func addrSeen(walked []mem.Addr, wa mem.Addr) bool {
	for _, w := range walked {
		if w == wa {
			return true
		}
	}
	return false
}

// ChainWords is AppendChainWords into a fresh slice.
func (f *Forwarder) ChainWords(a mem.Addr) []mem.Addr {
	return f.AppendChainWords(nil, a)
}
