package core

import (
	"testing"

	"memfwd/internal/mem"
)

var benchAddr mem.Addr

func BenchmarkResolveUnforwarded(b *testing.B) {
	f := newF()
	f.Mem.WriteWord(0x8000, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, _, _ := f.Resolve(0x8004, nil)
		benchAddr += a
	}
}

func BenchmarkResolveChain4(b *testing.B) {
	f := newF()
	buildChain(f, 0x8000, 0x40000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, _, _ := f.Resolve(0x8004, nil)
		benchAddr += a
	}
}

func BenchmarkResolveChain4WithHopFunc(b *testing.B) {
	f := newF()
	buildChain(f, 0x8000, 0x40000, 4)
	var hops []mem.Addr
	hopFn := func(wa mem.Addr, hop int) { hops = append(hops, wa) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hops = hops[:0]
		a, _, _ := f.Resolve(0x8004, hopFn)
		benchAddr += a
	}
}

func BenchmarkAppendChainWords4(b *testing.B) {
	f := newF()
	buildChain(f, 0x8000, 0x40000, 4)
	buf := make([]mem.Addr, 0, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = f.AppendChainWords(buf[:0], 0x8000)
	}
	benchAddr += buf[0]
}

// Resolving a chain below the hop limit — the universal per-access
// operation — must not allocate, with or without a pre-bound hop
// callback.
func TestResolveZeroAlloc(t *testing.T) {
	f := newF()
	buildChain(f, 0x8000, 0x40000, 4)
	var hops []mem.Addr
	hopFn := func(wa mem.Addr, hop int) { hops = append(hops, wa) }
	// Warm the hop slice so append growth is amortized out.
	for i := 0; i < 4; i++ {
		hops = hops[:0]
		f.Resolve(0x8004, hopFn)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		hops = hops[:0]
		a, _, _ := f.Resolve(0x8004, hopFn)
		benchAddr += a
	})
	if allocs != 0 {
		t.Fatalf("Resolve allocated %.1f times per run, want 0", allocs)
	}
}
