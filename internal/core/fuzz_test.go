package core

import (
	"errors"
	"testing"

	"memfwd/internal/mem"
)

// FuzzResolve feeds arbitrary forwarding-bit graphs to the dereference
// mechanism: Resolve must always terminate, returning either a clean
// final address (whose word has a clear fbit) or ErrCycle — never hang,
// never panic — and must carry the start's byte offset through every
// hop unchanged (the Figure 3 offset-preservation rule; an earlier
// cycle-detection bug dropped the offset and is pinned by the
// misaligned seeds below). startSel's low 5 bits select the start
// word, its high 3 bits a byte offset into it; `go test
// -fuzz=FuzzResolve` explores further from testdata/fuzz.
func FuzzResolve(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, uint8(0)) // chain 0->1->2->3
	f.Add([]byte{0, 0}, uint8(0))       // self loop
	f.Add([]byte{1, 0}, uint8(1))       // two-cycle
	f.Add([]byte{3, 3, 3, 3}, uint8(2)) // convergent
	f.Add([]byte{}, uint8(0))           // no forwarding at all
	f.Add([]byte{5, 9, 1, 1, 9}, uint8(3))
	// Misaligned-offset chains: same graphs, entered mid-word.
	f.Add([]byte{0, 1, 2, 3}, uint8(3<<5|0)) // chain walked at offset 3
	f.Add([]byte{0, 0}, uint8(7<<5|0))       // self loop probed at offset 7
	f.Add([]byte{1, 0}, uint8(5<<5|1))       // two-cycle entered at offset 5
	f.Add([]byte{5, 9, 1, 1, 9}, uint8(1<<5|3))

	f.Fuzz(func(t *testing.T, links []byte, startSel uint8) {
		if len(links) > 64 {
			links = links[:64]
		}
		fw := NewForwarder(mem.New())
		const base = mem.Addr(0x1000)
		// Word i forwards to word links[i] (mod len) when links[i] != i.
		n := len(links)
		for i, l := range links {
			j := int(l) % max(n, 1)
			if j == i {
				continue
			}
			fw.UnforwardedWrite(base+mem.Addr(i*8), uint64(base+mem.Addr(j*8)), true)
		}
		if n == 0 {
			n = 1
		}
		off := mem.Addr(startSel >> 5)
		start := base + mem.Addr(int(startSel&0x1F)%n*8) + off
		final, hops, err := fw.Resolve(start, nil)
		if err != nil {
			if !errors.Is(err, ErrCycle) {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
		if fw.Mem.FBit(final) {
			t.Fatalf("final address %#x still has its forwarding bit set", final)
		}
		// Offset preservation: every stored forwarding value here is
		// word-aligned, so the start's offset must survive the walk.
		if final-mem.WordAlign(final) != off {
			t.Fatalf("resolve(%#x) = %#x: byte offset %d not preserved", start, final, off)
		}
		if hops > n {
			t.Fatalf("%d hops through %d words without a cycle error", hops, n)
		}
	})
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
