// Trap attribution: the site-level forwarding profile of fprof.go
// refined to guest PC (site) × object, answering "which code sites pay
// forwarding overhead on which objects". When the machine carries an
// obs.HeatMap the object key is the allocation block base (identity
// survives interior pointers); otherwise it falls back to the trapped
// word address.
package fprof

import (
	"fmt"
	"io"
	"sort"

	"memfwd/internal/core"
	"memfwd/internal/mem"
	"memfwd/internal/report"
)

// AttrKey identifies one (site, object) attribution cell.
type AttrKey struct {
	Site int
	Base uint64
}

// AttrProfile accumulates forwarding behaviour for one site × object
// pair.
type AttrProfile struct {
	Site     int    `json:"-"`
	SiteName string `json:"site"`
	Base     uint64 `json:"base"`
	Loads    uint64 `json:"loads"`
	Stores   uint64 `json:"stores"`
	Hops     uint64 `json:"hops"`
	MaxHops  int    `json:"maxHops"`
}

// DefaultMaxAttrs bounds the attribution table.
const DefaultMaxAttrs = 4096

// EnableAttribution turns on site × object accounting (off by default:
// the table costs a map insert per trap). Bounded to MaxAttrs cells
// (0 = DefaultMaxAttrs); traps past the bound that would open a new
// cell are counted in AttrOverflow instead.
func (p *Profiler) EnableAttribution() {
	if p.attr == nil {
		p.attr = make(map[AttrKey]*AttrProfile)
	}
}

// AttributionEnabled reports whether site × object accounting is on.
func (p *Profiler) AttributionEnabled() bool { return p.attr != nil }

func (p *Profiler) recordAttr(ev core.Event) {
	base := uint64(mem.WordAlign(ev.Initial))
	if b, ok := p.m.HeatMap().Resolve(uint64(ev.Initial)); ok {
		base = b
	}
	k := AttrKey{Site: ev.Site, Base: base}
	ap := p.attr[k]
	if ap == nil {
		limit := p.MaxAttrs
		if limit == 0 {
			limit = DefaultMaxAttrs
		}
		if len(p.attr) >= limit {
			p.AttrOverflow++
			return
		}
		ap = &AttrProfile{Site: ev.Site, Base: base}
		p.attr[k] = ap
	}
	if ev.Kind == core.Load {
		ap.Loads++
	} else {
		ap.Stores++
	}
	ap.Hops += uint64(ev.Hops)
	if ev.Hops > ap.MaxHops {
		ap.MaxHops = ev.Hops
	}
}

// Attribution returns the site × object profiles, hottest first (ties
// broken by site then base for deterministic output), with SiteName
// filled in.
func (p *Profiler) Attribution() []*AttrProfile {
	out := make([]*AttrProfile, 0, len(p.attr))
	for _, ap := range p.attr {
		ap.SiteName = p.m.SiteName(ap.Site)
		out = append(out, ap)
	}
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].Loads+out[i].Stores, out[j].Loads+out[j].Stores
		if ri != rj {
			return ri > rj
		}
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Base < out[j].Base
	})
	return out
}

// AttributionTable renders the attribution as a table.
func (p *Profiler) AttributionTable() *report.Table {
	t := report.New("Trap attribution (site × object)",
		"site", "object", "loads", "stores", "avg hops", "max hops")
	for _, ap := range p.Attribution() {
		refs := ap.Loads + ap.Stores
		avg := 0.0
		if refs > 0 {
			avg = float64(ap.Hops) / float64(refs)
		}
		t.Add(ap.SiteName, fmt.Sprintf("0x%x", ap.Base),
			fmt.Sprint(ap.Loads), fmt.Sprint(ap.Stores),
			fmt.Sprintf("%.2f", avg), fmt.Sprint(ap.MaxHops))
	}
	return t
}

// WriteAttributionCSV emits the attribution as CSV — the
// figures-consumable dump.
func (p *Profiler) WriteAttributionCSV(w io.Writer) error {
	return p.AttributionTable().WriteCSV(w)
}

// WriteAttributionJSON emits the attribution as a JSON array in the
// shared envelope style.
func (p *Profiler) WriteAttributionJSON(w io.Writer) error {
	rows := p.Attribution()
	vals := make([]AttrProfile, len(rows))
	for i, ap := range rows {
		vals[i] = *ap
	}
	return report.WriteJSON(w, vals)
}
