// Package fprof is the forwarding profiler the paper sketches in
// Section 3.2: a tool built on user-level forwarding traps that records
// which static references experience forwarding "for the sake of
// eliminating that forwarding in future runs of the program".
//
// Attach a Profiler to a machine before the run; afterwards Report
// renders the per-site forwarding profile (counts, hop distribution,
// distinct stray addresses), which is exactly what a programmer needs
// to find the pointer-update sites they missed.
package fprof

import (
	"fmt"
	"sort"

	"memfwd/internal/core"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
	"memfwd/internal/report"
	"memfwd/internal/sim"
)

// SiteProfile accumulates forwarding behaviour for one static site.
type SiteProfile struct {
	Site    int
	Loads   uint64
	Stores  uint64
	Hops    uint64 // total hops across all trapped references
	MaxHops int
	// Initials tracks distinct stale addresses seen (bounded).
	Initials map[mem.Addr]uint64
}

// Profiler collects a forwarding profile through the machine's
// user-level trap.
type Profiler struct {
	m     *sim.Machine
	sites map[int]*SiteProfile
	attr  map[AttrKey]*AttrProfile // nil until EnableAttribution

	// MaxInitials bounds per-site address tracking (0 = 256).
	MaxInitials int
	// MaxAttrs bounds the site × object table (0 = DefaultMaxAttrs).
	MaxAttrs int
	// AttrOverflow counts traps dropped from attribution at the bound.
	AttrOverflow uint64
}

// Attach installs the profiler on m (replacing any trap handler).
func Attach(m *sim.Machine) *Profiler {
	p := &Profiler{m: m, sites: make(map[int]*SiteProfile), MaxInitials: 256}
	m.SetTrap(func(ev core.Event) {
		p.record(ev)
	})
	return p
}

func (p *Profiler) record(ev core.Event) {
	sp := p.sites[ev.Site]
	if sp == nil {
		sp = &SiteProfile{Site: ev.Site, Initials: make(map[mem.Addr]uint64)}
		p.sites[ev.Site] = sp
	}
	if ev.Kind == core.Load {
		sp.Loads++
	} else {
		sp.Stores++
	}
	sp.Hops += uint64(ev.Hops)
	if ev.Hops > sp.MaxHops {
		sp.MaxHops = ev.Hops
	}
	limit := p.MaxInitials
	if limit == 0 {
		limit = 256
	}
	if len(sp.Initials) < limit || sp.Initials[ev.Initial] > 0 {
		sp.Initials[ev.Initial]++
	}
	if p.attr != nil {
		p.recordAttr(ev)
	}
}

// Sites returns the collected profiles, hottest first.
func (p *Profiler) Sites() []*SiteProfile {
	out := make([]*SiteProfile, 0, len(p.sites))
	for _, sp := range p.sites {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Loads+out[i].Stores > out[j].Loads+out[j].Stores
	})
	return out
}

// RegisterMetrics exposes the profile totals as registry views.
func (p *Profiler) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("fprof.traps", func() float64 { return float64(p.Total()) })
	r.GaugeFunc("fprof.sites", func() float64 { return float64(len(p.sites)) })
	r.GaugeFunc("fprof.hops.max", func() float64 {
		max := 0
		for _, sp := range p.sites {
			if sp.MaxHops > max {
				max = sp.MaxHops
			}
		}
		return float64(max)
	})
	r.GaugeFunc("fprof.attr.cells", func() float64 { return float64(len(p.attr)) })
	r.GaugeFunc("fprof.attr.overflow", func() float64 { return float64(p.AttrOverflow) })
}

// Total returns the total number of trapped references.
func (p *Profiler) Total() uint64 {
	var n uint64
	for _, sp := range p.sites {
		n += sp.Loads + sp.Stores
	}
	return n
}

// Report renders the profile as a table.
func (p *Profiler) Report() *report.Table {
	t := report.New("Forwarding profile (Section 3.2 profiling tool)",
		"site", "loads", "stores", "avg hops", "max hops", "stray ptrs")
	for _, sp := range p.Sites() {
		refs := sp.Loads + sp.Stores
		avg := 0.0
		if refs > 0 {
			avg = float64(sp.Hops) / float64(refs)
		}
		t.Add(p.m.SiteName(sp.Site),
			fmt.Sprint(sp.Loads), fmt.Sprint(sp.Stores),
			fmt.Sprintf("%.2f", avg), fmt.Sprint(sp.MaxHops),
			fmt.Sprint(len(sp.Initials)))
	}
	return t
}
