package fprof

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"memfwd/internal/obs"
	"memfwd/internal/opt"
	"memfwd/internal/sim"
)

func TestAttributionOffByDefault(t *testing.T) {
	m, src, _ := setup(t)
	p := Attach(m)
	m.LoadWord(src)
	if p.AttributionEnabled() {
		t.Fatal("attribution on without EnableAttribution")
	}
	if rows := p.Attribution(); len(rows) != 0 {
		t.Fatalf("disabled attribution has rows: %+v", rows)
	}
	// Site-level profiling is unaffected either way.
	if p.Total() != 1 {
		t.Fatalf("total = %d", p.Total())
	}
}

func TestAttributionBySiteAndObject(t *testing.T) {
	m, src, _ := setup(t)
	p := Attach(m)
	p.EnableAttribution()

	hot := m.Site("hot.loop")
	cold := m.Site("cold.path")
	m.SetSite(hot)
	for i := 0; i < 5; i++ {
		m.LoadWord(src)
	}
	m.SetSite(cold)
	m.StoreWord(src+8, 9) // same block, different site

	rows := p.Attribution()
	if len(rows) != 2 {
		t.Fatalf("cells = %d, want 2 (two sites, one object)", len(rows))
	}
	// Hottest first; both keyed by the trapped word (no heat map, so
	// the fallback key is the word-aligned initial address).
	if rows[0].SiteName != "hot.loop" || rows[0].Loads != 5 || rows[0].Base != uint64(src) {
		t.Fatalf("hot cell wrong: %+v", rows[0])
	}
	if rows[1].SiteName != "cold.path" || rows[1].Stores != 1 || rows[1].Base != uint64(src+8) {
		t.Fatalf("cold cell wrong: %+v", rows[1])
	}
	if rows[0].MaxHops < 1 || rows[0].Hops < 5 {
		t.Fatalf("hop accounting wrong: %+v", rows[0])
	}
}

// TestAttributionUsesHeatMapIdentity: with a heat map attached, interior
// pointers of the same allocation collapse onto the block base — object
// identity, not word identity.
func TestAttributionUsesHeatMapIdentity(t *testing.T) {
	m := sim.New(sim.Config{})
	h := obs.NewHeatMap(64, 0)
	m.SetHeatMap(h)
	src := m.Malloc(16)
	tgt := m.Malloc(16)
	m.StoreWord(src, 5)
	opt.Relocate(m, src, tgt, 2)
	p := Attach(m)
	p.EnableAttribution()

	m.LoadWord(src)
	m.StoreWord(src+8, 7) // interior word, same block

	rows := p.Attribution()
	if len(rows) != 1 {
		t.Fatalf("cells = %d, want 1 (one site, one block)", len(rows))
	}
	if rows[0].Base != uint64(src) || rows[0].Loads != 1 || rows[0].Stores != 1 {
		t.Fatalf("block identity not used: %+v", rows[0])
	}
}

func TestAttributionBounded(t *testing.T) {
	m, src, _ := setup(t)
	p := Attach(m)
	p.EnableAttribution()
	p.MaxAttrs = 2
	// Three distinct sites on the same word: the third cell overflows.
	for _, name := range []string{"s1", "s2", "s3"} {
		m.SetSite(m.Site(name))
		m.LoadWord(src)
	}
	if len(p.Attribution()) != 2 {
		t.Fatalf("cells = %d, want 2 (bounded)", len(p.Attribution()))
	}
	if p.AttrOverflow != 1 {
		t.Fatalf("AttrOverflow = %d, want 1", p.AttrOverflow)
	}
	// Existing cells keep counting past the bound.
	m.SetSite(m.Site("s1"))
	m.LoadWord(src)
	rows := p.Attribution()
	if rows[0].Loads != 2 {
		t.Fatalf("existing cell stopped counting: %+v", rows[0])
	}
}

func TestAttributionDumps(t *testing.T) {
	m, src, _ := setup(t)
	p := Attach(m)
	p.EnableAttribution()
	m.SetSite(m.Site("walker"))
	m.LoadWord(src)

	tab := p.AttributionTable().String()
	for _, want := range []string{"walker", "0x", "site", "object"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}

	var cbuf bytes.Buffer
	if err := p.WriteAttributionCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&cbuf).ReadAll()
	if err != nil {
		t.Fatalf("attribution CSV does not parse: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("CSV records = %d, want header + 1 row", len(recs))
	}

	var jbuf bytes.Buffer
	if err := p.WriteAttributionJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var rows []struct {
		Site  string `json:"site"`
		Base  uint64 `json:"base"`
		Loads uint64 `json:"loads"`
	}
	if err := json.Unmarshal(jbuf.Bytes(), &rows); err != nil {
		t.Fatalf("attribution JSON invalid: %v\n%s", err, jbuf.String())
	}
	if len(rows) != 1 || rows[0].Site != "walker" || rows[0].Base != uint64(src) || rows[0].Loads != 1 {
		t.Fatalf("JSON rows wrong: %+v", rows)
	}
}

func TestAttributionMetrics(t *testing.T) {
	m, src, _ := setup(t)
	p := Attach(m)
	p.EnableAttribution()
	m.LoadWord(src)
	r := obs.NewRegistry()
	p.RegisterMetrics(r)
	vals := map[string]float64{}
	for _, mv := range r.Snapshot() {
		vals[mv.Name] = mv.Value
	}
	if vals["fprof.attr.cells"] != 1 || vals["fprof.attr.overflow"] != 0 {
		t.Fatalf("attr metrics wrong: %v", vals)
	}
}
