package fprof

import (
	"strings"
	"testing"

	"memfwd/internal/mem"
	"memfwd/internal/opt"
	"memfwd/internal/sim"
)

func setup(t *testing.T) (*sim.Machine, mem.Addr, mem.Addr) {
	t.Helper()
	m := sim.New(sim.Config{})
	src := m.Malloc(16)
	tgt := m.Malloc(16)
	m.StoreWord(src, 5)
	opt.Relocate(m, src, tgt, 2)
	return m, src, tgt
}

func TestProfilerCountsPerSite(t *testing.T) {
	m, src, _ := setup(t)
	p := Attach(m)

	a := m.Site("hot.loop")
	b := m.Site("cold.path")
	m.SetSite(a)
	for i := 0; i < 10; i++ {
		m.LoadWord(src)
	}
	m.SetSite(b)
	m.StoreWord(src+8, 9)

	sites := p.Sites()
	if len(sites) != 2 {
		t.Fatalf("sites = %d", len(sites))
	}
	if m.SiteName(sites[0].Site) != "hot.loop" || sites[0].Loads != 10 {
		t.Fatalf("hottest site wrong: %+v", sites[0])
	}
	if sites[1].Stores != 1 {
		t.Fatalf("store not recorded: %+v", sites[1])
	}
	if p.Total() != 11 {
		t.Fatalf("total = %d", p.Total())
	}
}

func TestProfilerHopTracking(t *testing.T) {
	m := sim.New(sim.Config{})
	a := m.Malloc(8)
	b := m.Malloc(8)
	c := m.Malloc(8)
	m.StoreWord(a, 1)
	opt.Relocate(m, a, b, 1)
	opt.Relocate(m, a, c, 1) // chain a->b->c
	p := Attach(m)
	m.LoadWord(a)
	sp := p.Sites()[0]
	if sp.MaxHops != 2 || sp.Hops != 2 {
		t.Fatalf("hops: %+v", sp)
	}
}

func TestProfilerDistinctInitials(t *testing.T) {
	m := sim.New(sim.Config{})
	pool := opt.NewPool(m, 1<<12)
	head := m.Malloc(8)
	prev := head
	var olds []mem.Addr
	for i := 0; i < 6; i++ {
		n := m.Malloc(16)
		m.StoreWord(n, uint64(i))
		m.StorePtr(prev, n)
		prev = n + 8
		olds = append(olds, n)
	}
	opt.ListLinearize(m, pool, head, opt.ListDesc{NodeBytes: 16, NextOff: 8})
	p := Attach(m)
	for _, o := range olds {
		m.LoadWord(o)
		m.LoadWord(o) // repeat: still one distinct initial
	}
	sp := p.Sites()[0]
	if len(sp.Initials) != 6 {
		t.Fatalf("distinct initials = %d, want 6", len(sp.Initials))
	}
	if sp.Loads != 12 {
		t.Fatalf("loads = %d", sp.Loads)
	}
}

func TestReportRenders(t *testing.T) {
	m, src, _ := setup(t)
	p := Attach(m)
	m.SetSite(m.Site("the.site"))
	m.LoadWord(src)
	out := p.Report().String()
	if !strings.Contains(out, "the.site") {
		t.Fatalf("report missing site:\n%s", out)
	}
}

func TestNoTrapsNoSites(t *testing.T) {
	m := sim.New(sim.Config{})
	p := Attach(m)
	a := m.Malloc(8)
	m.StoreWord(a, 1)
	m.LoadWord(a)
	if p.Total() != 0 || len(p.Sites()) != 0 {
		t.Fatal("profiler recorded non-forwarded references")
	}
}
