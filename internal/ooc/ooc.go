// Package ooc models the paper's closing observation in Section 2.2:
// relocation-based layout optimizations "are applicable not only to
// caches but also to the other levels of the memory hierarchy. For
// example, we can apply data relocation to improve the spatial locality
// within pages (and hence on disk) for out-of-core applications."
//
// Store is a page-grained view of the tagged memory: a bounded resident
// set of pages backed by "disk". Every word access — including each
// forwarding hop — touches the page containing it; a non-resident page
// costs a fault. Linearizing a pointer structure shrinks the number of
// pages it spans, which is exactly what cuts faults for an out-of-core
// traversal; forwarding keeps stale pointers safe, at the price of
// faulting their old pages back in.
package ooc

import (
	"fmt"

	"memfwd/internal/core"
	"memfwd/internal/mem"
)

// Config sizes the paging model.
type Config struct {
	PageBytes     uint64 // power of two
	ResidentPages int    // memory budget, in pages
	FaultCost     uint64 // modeled time units per fault (disk read)
	HeapBase      mem.Addr
	HeapLimit     uint64
}

// DefaultConfig returns a small out-of-core regime: 4KB pages, a
// 32-page resident set, and a 20000-unit fault cost.
func DefaultConfig() Config {
	return Config{
		PageBytes:     4096,
		ResidentPages: 32,
		FaultCost:     20000,
		HeapBase:      0x4000_0000,
		HeapLimit:     1 << 28,
	}
}

// Stats of one run.
type Stats struct {
	Accesses uint64
	Faults   uint64
	Evicted  uint64
	// Time is the modeled cost: one unit per access plus FaultCost per
	// fault.
	Time uint64
}

// Store is an out-of-core tagged memory with forwarding.
type Store struct {
	cfg  Config
	Mem  *mem.Memory
	Fwd  *core.Forwarder
	Heap *mem.Allocator

	resident map[uint64]int // page number -> LRU tick
	tick     int

	Stats Stats
}

// New builds a store (zero fields defaulted).
func New(cfg Config) *Store {
	d := DefaultConfig()
	if cfg.PageBytes == 0 {
		cfg.PageBytes = d.PageBytes
	}
	if cfg.PageBytes&(cfg.PageBytes-1) != 0 {
		panic("ooc: page size must be a power of two")
	}
	if cfg.ResidentPages == 0 {
		cfg.ResidentPages = d.ResidentPages
	}
	if cfg.FaultCost == 0 {
		cfg.FaultCost = d.FaultCost
	}
	if cfg.HeapBase == 0 {
		cfg.HeapBase = d.HeapBase
	}
	if cfg.HeapLimit == 0 {
		cfg.HeapLimit = d.HeapLimit
	}
	m := mem.New()
	return &Store{
		cfg:      cfg,
		Mem:      m,
		Fwd:      core.NewForwarder(m),
		Heap:     mem.NewAllocator(m, cfg.HeapBase, cfg.HeapLimit),
		resident: make(map[uint64]int),
	}
}

// touch brings the page containing a into the resident set.
func (s *Store) touch(a mem.Addr) {
	s.Stats.Accesses++
	s.Stats.Time++
	s.tick++
	pn := uint64(a) / s.cfg.PageBytes
	if _, ok := s.resident[pn]; ok {
		s.resident[pn] = s.tick
		return
	}
	s.Stats.Faults++
	s.Stats.Time += s.cfg.FaultCost
	if len(s.resident) >= s.cfg.ResidentPages {
		// Evict the LRU page.
		var victim uint64
		oldest := int(^uint(0) >> 1)
		for p, t := range s.resident {
			if t < oldest {
				victim, oldest = p, t
			}
		}
		delete(s.resident, victim)
		s.Stats.Evicted++
	}
	s.resident[pn] = s.tick
}

// resolve follows the forwarding chain, touching every hop's page —
// stale pointers drag their old pages back from disk, the paper's
// safety-net cost at this level of the hierarchy.
func (s *Store) resolve(a mem.Addr) mem.Addr {
	final, _, err := s.Fwd.Resolve(a, func(wa mem.Addr, hop int) {
		s.touch(wa)
	})
	if err != nil {
		panic(fmt.Sprintf("ooc: %v", err))
	}
	return final
}

// LoadWord reads the 64-bit word at a through paging and forwarding.
func (s *Store) LoadWord(a mem.Addr) uint64 {
	final := s.resolve(a)
	s.touch(final)
	return s.Mem.ReadWord(mem.WordAlign(final))
}

// StoreWord writes the 64-bit word at a through paging and forwarding.
func (s *Store) StoreWord(a mem.Addr, v uint64) {
	final := s.resolve(a)
	s.touch(final)
	s.Mem.WriteWord(mem.WordAlign(final), v)
}

// Relocate moves nWords from src (following chains per word) to tgt,
// leaving forwarding addresses — Figure 4(a) at page granularity.
func (s *Store) Relocate(src, tgt mem.Addr, nWords int) {
	for i := 0; i < nWords; i++ {
		sw := src + mem.Addr(i*8)
		d := tgt + mem.Addr(i*8)
		v, fbit := s.Fwd.UnforwardedRead(sw)
		s.touch(sw)
		for fbit {
			sw = mem.WordAlign(mem.Addr(v))
			v, fbit = s.Fwd.UnforwardedRead(sw)
			s.touch(sw)
		}
		s.Fwd.UnforwardedWrite(d, v, false)
		s.touch(d)
		s.Fwd.UnforwardedWrite(sw, uint64(d), true)
		s.touch(sw)
	}
}

// LinearizeList packs the list whose head pointer is at headHandle into
// consecutive fresh pages, updating head and next links (Figure 4b for
// an out-of-core structure). Returns nodes moved and the new extent.
func (s *Store) LinearizeList(headHandle mem.Addr, nodeBytes, nextOff uint64) (int, mem.Addr) {
	// One contiguous target region.
	save := s.Heap.HeaderBytes
	s.Heap.HeaderBytes = 0
	n := 0
	handle := headHandle
	node := mem.Addr(s.LoadWord(handle))
	var first mem.Addr
	for node != 0 {
		tgt := s.Heap.Alloc(nodeBytes)
		if first == 0 {
			first = tgt
		}
		s.Relocate(node, tgt, int(nodeBytes/8))
		s.StoreWord(handle, uint64(tgt))
		handle = tgt + mem.Addr(nextOff)
		node = mem.Addr(s.LoadWord(handle))
		n++
	}
	s.Heap.HeaderBytes = save
	return n, first
}

// ResidentPages returns the current resident-set size (test support).
func (s *Store) ResidentPages() int { return len(s.resident) }
