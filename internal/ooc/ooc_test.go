package ooc

import (
	"math/rand"
	"testing"

	"memfwd/internal/mem"
)

const (
	nodeBytes = 32
	nextOff   = 8
)

// buildScatteredList spreads nNodes across a wide address range so
// every node sits on its own page — the out-of-core worst case.
func buildScatteredList(s *Store, rng *rand.Rand, nNodes int) mem.Addr {
	head := s.Heap.Alloc(8)
	// Scatter: allocate big strides between nodes.
	prev := head
	for i := 0; i < nNodes; i++ {
		s.Heap.Alloc(uint64(3000 + rng.Intn(3000)))
		n := s.Heap.Alloc(nodeBytes)
		s.StoreWord(n, uint64(i))
		s.StoreWord(prev, uint64(n))
		prev = n + nextOff
	}
	return head
}

func traverse(s *Store, head mem.Addr) uint64 {
	var sum uint64
	p := mem.Addr(s.LoadWord(head))
	for p != 0 {
		sum += s.LoadWord(p)
		p = mem.Addr(s.LoadWord(p + nextOff))
	}
	return sum
}

func TestScatteredTraversalThrashes(t *testing.T) {
	s := New(Config{ResidentPages: 16})
	rng := rand.New(rand.NewSource(1))
	head := buildScatteredList(s, rng, 300)
	pre := s.Stats.Faults
	traverse(s, head)
	faults := s.Stats.Faults - pre
	if faults < 250 {
		t.Fatalf("scattered traversal faulted only %d times for 300 nodes", faults)
	}
}

func TestLinearizationCutsFaults(t *testing.T) {
	s := New(Config{ResidentPages: 16})
	rng := rand.New(rand.NewSource(2))
	const nNodes = 300
	head := buildScatteredList(s, rng, nNodes)

	want := traverse(s, head)
	pre := s.Stats
	traverse(s, head)
	fragFaults := s.Stats.Faults - pre.Faults
	fragTime := s.Stats.Time - pre.Time

	n, _ := s.LinearizeList(head, nodeBytes, nextOff)
	if n != nNodes {
		t.Fatalf("linearized %d nodes", n)
	}

	if got := traverse(s, head); got != want {
		t.Fatalf("functional divergence: %d vs %d", got, want)
	}
	pre = s.Stats
	traverse(s, head)
	denseFaults := s.Stats.Faults - pre.Faults
	denseTime := s.Stats.Time - pre.Time

	// 300 nodes * 32B = 9.6KB = 3 pages (plus boundary) vs ~300 pages.
	if denseFaults*20 > fragFaults {
		t.Fatalf("faults %d -> %d: linearization ineffective", fragFaults, denseFaults)
	}
	if denseTime >= fragTime {
		t.Fatalf("time %d -> %d", fragTime, denseTime)
	}
}

func TestStalePointerFaultsButStaysCorrect(t *testing.T) {
	s := New(Config{ResidentPages: 8})
	rng := rand.New(rand.NewSource(3))
	head := buildScatteredList(s, rng, 100)
	// Grab a stale pointer to node 40.
	p := mem.Addr(s.LoadWord(head))
	for i := 0; i < 40; i++ {
		p = mem.Addr(s.LoadWord(p + nextOff))
	}
	s.LinearizeList(head, nodeBytes, nextOff)
	// Traverse a lot so the stale page is long evicted.
	for i := 0; i < 5; i++ {
		traverse(s, head)
	}
	pre := s.Stats.Faults
	if v := s.LoadWord(p); v != 40 {
		t.Fatalf("stale read = %d, want 40", v)
	}
	if s.Stats.Faults == pre {
		t.Fatal("stale access should have faulted its old page back in")
	}
}

func TestResidentSetBounded(t *testing.T) {
	s := New(Config{ResidentPages: 8})
	for i := 0; i < 100; i++ {
		s.LoadWord(mem.Addr(0x4000_0000 + i*5000))
	}
	if s.ResidentPages() > 8 {
		t.Fatalf("resident set %d exceeds budget 8", s.ResidentPages())
	}
	if s.Stats.Evicted == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestLRUKeepsHotPage(t *testing.T) {
	s := New(Config{ResidentPages: 4})
	hot := mem.Addr(0x4000_0000)
	s.LoadWord(hot)
	base := s.Stats.Faults
	for i := 1; i <= 30; i++ {
		s.LoadWord(hot) // keep hot page fresh
		s.LoadWord(hot + mem.Addr(i*8192))
	}
	// The hot page must never have been evicted: exactly the 30 cold
	// faults beyond the baseline.
	if got := s.Stats.Faults - base; got != 30 {
		t.Fatalf("faults = %d, want 30 (hot page must stay resident)", got)
	}
}

func TestBadPageSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{PageBytes: 3000})
}
