package figures

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"memfwd"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the committed golden digests under testdata/")

func TestKnownNames(t *testing.T) {
	for _, n := range Names {
		if !Known(n) {
			t.Errorf("%q not recognized", n)
		}
	}
	for _, n := range []string{"fig11", "FIG5", "table", ""} {
		if Known(n) {
			t.Errorf("%q wrongly recognized", n)
		}
	}
}

// TestUnknownOnlyFails is the silent-no-op fix: an unknown -only value
// used to run nothing and exit 0; it must now be an error that names
// the valid selectors and produces no output.
func TestUnknownOnlyFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := Run(Config{Only: "fig99", Seed: 9, Scale: 1}, &stdout, &stderr)
	if err == nil {
		t.Fatal("unknown -only accepted")
	}
	if !strings.Contains(err.Error(), "fig99") || !strings.Contains(err.Error(), "table1") {
		t.Fatalf("error %q should name the bad value and the valid set", err)
	}
	if stdout.Len() != 0 {
		t.Fatalf("unknown -only still produced output: %q", stdout.String())
	}
}

// TestEnvelopeShape checks the aggregated -json document: one
// top-level object keyed by figure name, keys in a fixed order.
func TestEnvelopeShape(t *testing.T) {
	env := Envelope{
		Fig5:  []memfwd.Run{{App: "health", Line: 32, Variant: memfwd.VariantN}},
		Fig7:  []memfwd.Run{{App: "health", Line: 32, Variant: memfwd.VariantNP, Block: 4}},
		Fig10: []memfwd.Run{{App: "smv", Line: 32, Variant: memfwd.VariantPerf}},
		Tier:  []memfwd.Run{{App: "health", Variant: memfwd.VariantAdaptive}},
	}
	var buf bytes.Buffer
	if err := memfwd.WriteJSON(&buf, env); err != nil {
		t.Fatal(err)
	}
	var m map[string][]memfwd.Run
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("envelope is not one JSON object: %v", err)
	}
	for _, key := range []string{"fig5", "fig7", "fig10", "tier"} {
		if _, ok := m[key]; !ok {
			t.Errorf("envelope missing key %q", key)
		}
	}
	if len(m) != 4 {
		t.Errorf("envelope has %d keys, want 4", len(m))
	}
	i5 := bytes.Index(buf.Bytes(), []byte(`"fig5"`))
	i7 := bytes.Index(buf.Bytes(), []byte(`"fig7"`))
	i10 := bytes.Index(buf.Bytes(), []byte(`"fig10"`))
	it := bytes.Index(buf.Bytes(), []byte(`"tier"`))
	if !(i5 < i7 && i7 < i10 && i10 < it) {
		t.Errorf("key order not fixed: fig5@%d fig7@%d fig10@%d tier@%d", i5, i7, i10, it)
	}
}

// TestJSONDeterministicAcrossJobs runs the cheapest run-series figure
// end to end and requires byte-identical stdout at different worker
// counts — the pipeline-level determinism guarantee — and then checks
// the output against the golden digest committed under testdata/, so
// the whole simulator stack (allocator layout, relocation order, cycle
// accounting, JSON encoding) is pinned across commits, not just across
// worker counts. Regenerate deliberately with -update-golden after a
// change that is supposed to move the numbers.
func TestJSONDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs six SMV simulations")
	}
	out := func(jobs int) []byte {
		var stdout, stderr bytes.Buffer
		if err := Run(Config{Only: "fig10", JSON: true, Seed: 9, Scale: 1, Jobs: jobs}, &stdout, &stderr); err != nil {
			t.Fatal(err)
		}
		return stdout.Bytes()
	}
	a, b := out(1), out(8)
	if len(a) == 0 {
		t.Fatal("no JSON output")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("fig10 JSON differs between jobs=1 and jobs=8")
	}

	got := fmt.Sprintf("sha256:%x bytes:%d\n", sha256.Sum256(a), len(a))
	golden := filepath.Join("testdata", "fig10-json.digest")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden digest (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("fig10 JSON drifted from the committed golden:\n got %s want %s"+
			"(run with -update-golden if the change is intentional)", got, want)
	}
}

// TestTierFigureGoldenAndAdaptiveWins pins the tiering experiment the
// same way: byte-identical JSON at different worker counts, a digest
// committed under testdata/, and the experiment's headline claims —
// the online adaptive migrator must beat the one-shot static pass on
// at least one phase-changing application, and neither tiered arm may
// change any application's checksum (residency is re-decided through
// forwarding-safe relocation; results are untouchable).
func TestTierFigureGoldenAndAdaptiveWins(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 24 application simulations")
	}
	out := func(jobs int) []byte {
		var stdout, stderr bytes.Buffer
		if err := Run(Config{Only: "tier", JSON: true, Seed: 9, Scale: 1, Jobs: jobs}, &stdout, &stderr); err != nil {
			t.Fatal(err)
		}
		return stdout.Bytes()
	}
	a, b := out(1), out(8)
	if len(a) == 0 {
		t.Fatal("no JSON output")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("tier JSON differs between jobs=1 and jobs=8")
	}

	var runs []memfwd.Run
	if err := json.Unmarshal(a, &runs); err != nil {
		t.Fatalf("tier JSON does not decode: %v", err)
	}
	get := func(app string, v memfwd.Variant) memfwd.Run {
		for _, r := range runs {
			if r.App == app && r.Variant == v {
				return r
			}
		}
		t.Fatalf("run %s/%s missing", app, v)
		return memfwd.Run{}
	}
	wins := 0
	for _, app := range []string{"health", "radiosity", "smv", "vis"} {
		st, ad := get(app, memfwd.VariantStatic), get(app, memfwd.VariantAdaptive)
		if st.Stats == nil || ad.Stats == nil {
			t.Fatalf("%s: incomplete tier cells", app)
		}
		if ad.Stats.Cycles < st.Stats.Cycles {
			wins++
		}
	}
	if wins == 0 {
		t.Error("online adaptive tiering beat one-shot static on no phase-changing app")
	}
	for _, appName := range []string{"compress", "eqntott", "bh", "health", "mst", "radiosity", "smv", "vis"} {
		flat := get(appName, memfwd.VariantFlat)
		for _, v := range []memfwd.Variant{memfwd.VariantStatic, memfwd.VariantAdaptive} {
			if r := get(appName, v); r.Result.Checksum != flat.Result.Checksum {
				t.Errorf("%s/%s checksum %#x != flat %#x: tiering changed program results",
					appName, v, r.Result.Checksum, flat.Result.Checksum)
			}
		}
	}

	got := fmt.Sprintf("sha256:%x bytes:%d\n", sha256.Sum256(a), len(a))
	golden := filepath.Join("testdata", "tier-json.digest")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden digest (regenerate with -update-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("tier JSON drifted from the committed golden:\n got %s want %s"+
			"(run with -update-golden if the change is intentional)", got, want)
	}
}
