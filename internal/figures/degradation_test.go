package figures

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"memfwd"
)

// TestGracefulDegradation is the acceptance proof for the hardened
// pipeline: a suite with one cell forced to crash (a deterministic
// injected fault) still completes every other cell, emits the full
// document with the failed cell explicitly marked "incomplete", returns
// ErrIncomplete for the nonzero exit — and the completed cells are
// byte-identical between -jobs=1 and -jobs=8.
func TestGracefulDegradation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the fig5 locality matrix twice")
	}
	run := func(jobs int) (string, error) {
		var out, diag bytes.Buffer
		err := Run(Config{
			Only:      "fig5",
			JSON:      true,
			Seed:      9,
			Jobs:      jobs,
			Fault:     "crash@relocate.begin",
			FaultCell: "health/line32/L",
		}, &out, &diag)
		return out.String(), err
	}
	out1, err1 := run(1)
	out8, err8 := run(8)
	if !errors.Is(err1, ErrIncomplete) || !errors.Is(err8, ErrIncomplete) {
		t.Fatalf("errors: jobs=1 %v, jobs=8 %v (want ErrIncomplete)", err1, err8)
	}
	if out1 != out8 {
		t.Fatal("degraded output differs between jobs=1 and jobs=8")
	}

	var runs []memfwd.Run
	if err := json.Unmarshal([]byte(out1), &runs); err != nil {
		t.Fatalf("degraded output is not valid JSON: %v", err)
	}
	var failed, completed int
	for _, r := range runs {
		if r.Incomplete != "" {
			failed++
			if r.App != "health" || r.Line != 32 || r.Variant != memfwd.VariantL {
				t.Fatalf("wrong cell failed: %+v", r)
			}
			if !strings.HasPrefix(r.Incomplete, "panic: ") {
				t.Fatalf("Incomplete = %q, want an injected-crash panic reason", r.Incomplete)
			}
			if r.Stats != nil {
				t.Fatal("failed cell still carries stats")
			}
			continue
		}
		completed++
		if r.Stats == nil || r.Stats.Cycles == 0 {
			t.Fatalf("completed cell %s/%d/%s has no stats", r.App, r.Line, r.Variant)
		}
	}
	if failed != 1 {
		t.Fatalf("failed cells = %d, want exactly 1", failed)
	}
	if completed != len(runs)-1 || completed == 0 {
		t.Fatalf("completed cells = %d of %d", completed, len(runs))
	}
}

// TestSuiteTimeoutDegrades checks the per-suite deadline: an already
// expired suite still returns a well-formed document with every cell
// marked canceled, and ErrIncomplete.
func TestSuiteTimeoutDegrades(t *testing.T) {
	var out, diag bytes.Buffer
	err := Run(Config{
		Only:         "fig10",
		JSON:         true,
		Seed:         9,
		SuiteTimeout: time.Nanosecond,
	}, &out, &diag)
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
	var runs []memfwd.Run
	if err := json.Unmarshal(out.Bytes(), &runs); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, r := range runs {
		if r.Incomplete != "canceled" {
			t.Fatalf("cell %s not canceled: %q", r.Variant, r.Incomplete)
		}
	}
}

// TestEnvelopeIncompleteKey checks the aggregate document: the
// incomplete key appears only when cells failed, listing them in
// deterministic "label: reason" form.
func TestEnvelopeIncompleteKey(t *testing.T) {
	if testing.Short() {
		t.Skip("runs fig5+fig7+fig10 matrices")
	}
	var out, diag bytes.Buffer
	err := Run(Config{
		JSON:      true,
		Seed:      9,
		Jobs:      4,
		Fault:     "crash@relocate.begin",
		FaultCell: "smv/line32/L",
	}, &out, &diag)
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v, want ErrIncomplete", err)
	}
	var env struct {
		Incomplete []string `json:"incomplete"`
	}
	if err := json.Unmarshal(out.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Incomplete) != 1 || !strings.HasPrefix(env.Incomplete[0], "smv/line32/L: panic: ") {
		t.Fatalf("incomplete = %q", env.Incomplete)
	}
}
