package figures

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// addrWatcher is a stderr tee that extracts the telemetry-plane address
// from the "[figures] telemetry plane on http://..." progress line.
type addrWatcher struct {
	mu   sync.Mutex
	buf  bytes.Buffer
	addr chan string
	sent bool
}

func (w *addrWatcher) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		if i := strings.Index(w.buf.String(), "telemetry plane on http://"); i >= 0 {
			rest := w.buf.String()[i+len("telemetry plane on http://"):]
			if j := strings.IndexByte(rest, '\n'); j >= 0 {
				w.addr <- strings.TrimSpace(rest[:j])
				w.sent = true
			}
		}
	}
	return len(p), nil
}

// TestHTTPPlaneDuringFig5 is the acceptance check for the live plane:
// while a fig5 run is in flight, a concurrent /events NDJSON consumer
// and /heatmap?top=10 + /metrics pollers must all receive well-formed
// data — and the stdout JSON must be byte-identical to a run without
// the HTTP plane.
func TestHTTPPlaneDuringFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full fig5 matrix twice")
	}
	base := Config{Only: "fig5", JSON: true, Seed: 9, Scale: 1}

	// Reference run, no telemetry.
	var refOut, refErr bytes.Buffer
	if err := Run(base, &refOut, &refErr); err != nil {
		t.Fatal(err)
	}

	// Telemetry run with concurrent consumers.
	w := &addrWatcher{addr: make(chan string, 1)}
	cfg := base
	cfg.HTTPAddr = "127.0.0.1:0"
	var liveOut bytes.Buffer
	runDone := make(chan error, 1)
	go func() { runDone <- Run(cfg, &liveOut, w) }()

	var addr string
	select {
	case addr = <-w.addr:
	case err := <-runDone:
		t.Fatalf("run finished before announcing the telemetry plane (err=%v)", err)
	case <-time.After(30 * time.Second):
		t.Fatal("telemetry plane address never announced")
	}

	// /events consumer: bounded read of live NDJSON while cells run.
	eventsDone := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/events")
		if err != nil {
			t.Errorf("/events: %v", err)
			eventsDone <- 0
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		lines := 0
		for lines < 100 && sc.Scan() {
			if !json.Valid(sc.Bytes()) {
				t.Errorf("/events line not JSON: %s", sc.Text())
				break
			}
			lines++
		}
		eventsDone <- lines
	}()

	// Snapshot pollers while the suite runs.
	heatOK, metricsOK := 0, 0
	poll := func() {
		for _, p := range []struct {
			path string
			ok   *int
		}{{"/heatmap?top=10", &heatOK}, {"/metrics", &metricsOK}} {
			resp, err := http.Get("http://" + addr + p.path)
			if err != nil {
				continue // transient connection issues are not failures
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && json.Valid(body) {
				*p.ok++
			} else {
				t.Errorf("%s: status %d / invalid JSON", p.path, resp.StatusCode)
			}
		}
	}
	for {
		poll()
		select {
		case err := <-runDone:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(50 * time.Millisecond):
			continue
		}
		break
	}

	if heatOK == 0 || metricsOK == 0 {
		t.Fatalf("no successful polls (heat=%d metrics=%d)", heatOK, metricsOK)
	}
	select {
	case lines := <-eventsDone:
		if lines == 0 {
			t.Error("/events consumer read no events during the run")
		}
	case <-time.After(10 * time.Second):
		t.Error("/events consumer never finished")
	}

	if !bytes.Equal(refOut.Bytes(), liveOut.Bytes()) {
		t.Error("stdout JSON differs with -http enabled; the plane must be purely additive")
	}
}
