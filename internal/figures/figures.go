// Package figures drives the figure/table pipeline behind cmd/figures:
// it validates the experiment selection, runs the selected experiments
// through the parallel engine, and writes tables or machine-readable
// JSON to the given writers. Keeping the logic here (instead of in the
// command's main) makes the selection rules and the JSON shapes
// testable.
package figures

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"memfwd"
)

// Names lists the known experiment selectors in output order.
var Names = []string{"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "tier", "ext"}

// ErrIncomplete is wrapped by Run when one or more cells could not be
// completed (panic, timeout, cancellation). All completed output has
// already been written when it is returned — the suite degrades
// gracefully rather than dying — but callers must exit nonzero:
// cmd/figures distinguishes it from hard errors by errors.Is.
var ErrIncomplete = errors.New("figures: incomplete cells")

// Known reports whether name is a valid experiment selector.
func Known(name string) bool {
	for _, n := range Names {
		if n == name {
			return true
		}
	}
	return false
}

// Config selects what the pipeline runs and how.
type Config struct {
	Only   string // one experiment name, or "" for all
	JSON   bool   // emit raw runs as JSON instead of tables
	Seed   int64
	Scale  int
	Sample uint64 // sampler period in instructions (0 = off)
	Jobs   int    // experiment-engine workers (<= 0 = GOMAXPROCS)

	// JobTimeout bounds each cell's wall time (0 = unbounded); an
	// exceeding cell is reported incomplete and the rest still run.
	JobTimeout time.Duration

	// SuiteTimeout bounds the whole pipeline's wall time (0 =
	// unbounded); on expiry remaining cells are reported incomplete.
	SuiteTimeout time.Duration

	// Retries re-runs cells that report transient faults.
	Retries int

	// Fault arms a deterministic fault injector on matching cells
	// ("kind@point[:visit]", see internal/fault); FaultCell restricts it
	// to cells whose label contains the substring, FaultSeed seeds the
	// corruption stream (0 takes Seed).
	Fault     string
	FaultCell string
	FaultSeed int64

	// Harts runs every cell's guest with that many harts under the
	// deterministic relocator-hart scheduler (internal/sched); SchedSeed
	// seeds the interleaving (0 takes Seed). Harts <= 1 leaves the
	// pipeline byte-identical to the single-hart runner.
	Harts     int
	SchedSeed int64

	// HTTPAddr, when non-empty, serves the live telemetry plane while
	// the suite runs: engine progress on /metrics, per-cell heat maps,
	// relocation spans, and the /events stream. Purely additive — all
	// stdout output (tables and JSON) is byte-identical with it on.
	HTTPAddr string
}

// Envelope is the aggregated JSON document emitted when Config.JSON is
// set and no single experiment is selected: one top-level object keyed
// by figure name, instead of the concatenated per-figure documents the
// pipeline used to produce (which no JSON parser would accept as one
// input). fig5 carries the locality matrix that also backs fig6; the
// experiments with no run series (table1, fig8, fig9, ext) have no key.
// Struct field order fixes the key order, so the document is
// byte-stable. Incomplete appears only when cells failed, listing each
// as "label: reason" in deterministic order.
type Envelope struct {
	Fig5       []memfwd.Run `json:"fig5"`
	Fig7       []memfwd.Run `json:"fig7"`
	Fig10      []memfwd.Run `json:"fig10"`
	Tier       []memfwd.Run `json:"tier"`
	Incomplete []string     `json:"incomplete,omitempty"`
}

// Run executes the selected experiments, writing tables or JSON to
// stdout and progress to stderr. An unknown Config.Only is an error and
// runs nothing. With JSON set, stdout receives exactly one JSON
// document: the legacy bare run array when one experiment is selected,
// the Envelope when all run. When cells fail, all completed output is
// still written (failed cells carry explicit "incomplete" markers) and
// the return wraps ErrIncomplete.
func Run(cfg Config, stdout, stderr io.Writer) error {
	if cfg.Only != "" && !Known(cfg.Only) {
		return fmt.Errorf("unknown experiment %q (valid: %s)", cfg.Only, strings.Join(Names, ", "))
	}
	o := memfwd.Options{
		Seed:        cfg.Seed,
		Scale:       cfg.Scale,
		SampleEvery: cfg.Sample,
		Jobs:        cfg.Jobs,
		JobTimeout:  cfg.JobTimeout,
		Retries:     cfg.Retries,
		Fault:       cfg.Fault,
		FaultCell:   cfg.FaultCell,
		FaultSeed:   cfg.FaultSeed,
		Harts:       cfg.Harts,
		SchedSeed:   cfg.SchedSeed,
	}
	if cfg.SuiteTimeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), cfg.SuiteTimeout)
		defer cancel()
		o.Ctx = ctx
	}
	if cfg.HTTPAddr != "" {
		plane, err := memfwd.BootTelemetry(cfg.HTTPAddr, 0, func(format string, args ...any) {
			fmt.Fprintf(stderr, "[figures] "+format+"\n", args...)
		})
		if err != nil {
			return err
		}
		defer plane.Shutdown()
		srv := plane.Server()
		o.Telemetry = srv
		o.Progress = &memfwd.JobProgress{}
		// The registry holds only JobProgress views, which are
		// thread-safe, so snapshotting it from the plane's publisher
		// goroutine is sound (registration happens before it starts).
		reg := memfwd.NewMetricsRegistry()
		o.Progress.RegisterMetrics(reg)
		plane.StartPublisher(250*time.Millisecond, func() {
			srv.PublishMetrics(reg.Snapshot())
		})
	}
	want := func(name string) bool { return cfg.Only == "" || cfg.Only == name }
	section := func(name string) { fmt.Fprintf(stderr, "[figures] running %s...\n", name) }
	emit := func(v any) error { return memfwd.WriteJSON(stdout, v) }
	aggregate := cfg.JSON && cfg.Only == ""
	var env Envelope

	// incomplete accumulates "label: reason" lines across the whole
	// pipeline. Engine errors arrive in spec-index order and the
	// sections run in a fixed sequence, so the list is deterministic at
	// any worker count.
	var incomplete []string
	collect := func(errs []*memfwd.JobError) {
		for _, e := range errs {
			incomplete = append(incomplete, e.Spec.String()+": "+e.Reason())
		}
	}

	start := time.Now()
	if aggregate {
		fmt.Fprintln(stderr, "[figures] -json: table-only experiments (table1, fig8, fig9, ext) are omitted from the JSON document")
	}

	if want("table1") && !aggregate {
		section("table1")
		tab, errs := memfwd.RunTable1(o)
		collect(errs)
		fmt.Fprintln(stdout, tab)
	}

	if want("fig5") || want("fig6") {
		section("fig5/fig6")
		lr := memfwd.RunLocality(o)
		collect(lr.Errs)
		switch {
		case aggregate:
			env.Fig5 = lr.Runs
		case cfg.JSON:
			if err := emit(lr.Runs); err != nil {
				return err
			}
		default:
			if want("fig5") {
				fmt.Fprintln(stdout, lr.Figure5Table())
			}
			if want("fig6") {
				fmt.Fprintln(stdout, lr.Figure6aTable())
				fmt.Fprintln(stdout, lr.Figure6bTable())
			}
		}
	}

	if want("fig7") {
		section("fig7")
		pr := memfwd.RunPrefetch(o)
		collect(pr.Errs)
		switch {
		case aggregate:
			env.Fig7 = prefetchRuns(pr)
		case cfg.JSON:
			if err := emit(prefetchRuns(pr)); err != nil {
				return err
			}
		default:
			fmt.Fprintln(stdout, pr.Table())
		}
	}

	if want("fig8") && !aggregate {
		section("fig8")
		fmt.Fprintln(stdout, memfwd.Figure8Layout())
	}

	if want("fig9") && !aggregate {
		section("fig9")
		fmt.Fprintln(stdout, memfwd.Figure9Layout(128))
	}

	if want("fig10") {
		section("fig10")
		sr := memfwd.RunSMV(o)
		collect(sr.Errs)
		runs := []memfwd.Run{sr.N, sr.L, sr.Perf}
		switch {
		case aggregate:
			env.Fig10 = runs
		case cfg.JSON:
			if err := emit(runs); err != nil {
				return err
			}
		default:
			for _, t := range sr.Tables() {
				fmt.Fprintln(stdout, t)
			}
		}
	}

	if want("tier") {
		section("tier")
		tr := memfwd.RunTiering(o)
		collect(tr.Errs)
		switch {
		case aggregate:
			env.Tier = tr.Runs
		case cfg.JSON:
			if err := emit(tr.Runs); err != nil {
				return err
			}
		default:
			fmt.Fprintln(stdout, tr.Table())
		}
	}

	if want("ext") && !aggregate {
		section("ext (false sharing)")
		tab, errs := memfwd.RunFalseSharing(o)
		collect(errs)
		fmt.Fprintln(stdout, tab)
	}

	if aggregate {
		env.Incomplete = incomplete
		if err := emit(env); err != nil {
			return err
		}
	}

	fmt.Fprintf(stderr, "[figures] done in %s\n", time.Since(start).Round(time.Millisecond))
	if len(incomplete) > 0 {
		for _, l := range incomplete {
			fmt.Fprintf(stderr, "[figures] incomplete: %s\n", l)
		}
		return fmt.Errorf("%w: %d cell(s)", ErrIncomplete, len(incomplete))
	}
	return nil
}

// prefetchRuns flattens the Figure 7 matrix deterministically (Table 1
// app order, then N/NP/L/LP), replacing the old map-iteration emission
// whose order varied from run to run.
func prefetchRuns(pr *memfwd.PrefetchRuns) []memfwd.Run {
	var out []memfwd.Run
	for _, a := range memfwd.Apps() {
		rs, ok := pr.Runs[a.Name]
		if !ok {
			continue
		}
		for _, v := range []memfwd.Variant{memfwd.VariantN, memfwd.VariantNP, memfwd.VariantL, memfwd.VariantLP} {
			out = append(out, rs[v])
		}
	}
	return out
}
