package serve

import (
	"memfwd/internal/apps/app"
	"memfwd/internal/core"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/sim"
)

// proxy is the rebindable machine an app session's runner executes
// against. It delegates every app.Machine operation to the current
// *sim.Machine and charges the four guest-visible heap operations
// (loads, stores, mallocs, frees) against the session's gate — the
// same operations the chaos Relocator advances its clock on, so one
// /step unit means one guest operation in both accountings.
//
// swap rebinds the proxy to a different machine. It may only be called
// while the runner is parked (gate.pause): the write happens under the
// gate mutex, and the parked runner's next read of p.m follows its
// re-acquisition of that mutex inside tick, which establishes the
// happens-before edge. Operations that do not tick (the relocation
// primitives TryRelocate is built from — UnforwardedRead/Write, Inst,
// Forwarder) run only between ticks on the runner goroutine, so they
// are ordered the same way; a relocation is therefore atomic with
// respect to migration.
type proxy struct {
	g *gate
	m *sim.Machine
}

var _ app.Machine = (*proxy)(nil)

func newProxy(g *gate, m *sim.Machine) *proxy { return &proxy{g: g, m: m} }

// swap rebinds the proxy; the runner must be parked (see type doc).
func (p *proxy) swap(m *sim.Machine) {
	p.g.mu.Lock()
	p.m = m
	p.g.mu.Unlock()
}

// machine returns the current machine for control-plane reads; the
// runner must be parked or finished.
func (p *proxy) machine() *sim.Machine {
	p.g.mu.Lock()
	defer p.g.mu.Unlock()
	return p.m
}

// Inst delegates; timing only, not a counted guest operation.
func (p *proxy) Inst(n int) { p.m.Inst(n) }

// Load is a counted guest operation.
func (p *proxy) Load(a mem.Addr, size uint) uint64 {
	p.g.tick()
	return p.m.Load(a, size)
}

// Store is a counted guest operation.
func (p *proxy) Store(a mem.Addr, v uint64, size uint) {
	p.g.tick()
	p.m.Store(a, v, size)
}

// LoadWord routes through Load.
func (p *proxy) LoadWord(a mem.Addr) uint64 { return p.Load(a, 8) }

// StoreWord routes through Store.
func (p *proxy) StoreWord(a mem.Addr, v uint64) { p.Store(a, v, 8) }

// LoadPtr routes through Load.
func (p *proxy) LoadPtr(a mem.Addr) mem.Addr { return mem.Addr(p.Load(a, 8)) }

// StorePtr routes through Store.
func (p *proxy) StorePtr(a, q mem.Addr) { p.Store(a, uint64(q), 8) }

// Load32 routes through Load.
func (p *proxy) Load32(a mem.Addr) uint32 { return uint32(p.Load(a, 4)) }

// Store32 routes through Store.
func (p *proxy) Store32(a mem.Addr, v uint32) { p.Store(a, uint64(v), 4) }

// Load16 routes through Load.
func (p *proxy) Load16(a mem.Addr) uint16 { return uint16(p.Load(a, 2)) }

// Store16 routes through Store.
func (p *proxy) Store16(a mem.Addr, v uint16) { p.Store(a, uint64(v), 2) }

// Load8 routes through Load.
func (p *proxy) Load8(a mem.Addr) uint8 { return uint8(p.Load(a, 1)) }

// Store8 routes through Store.
func (p *proxy) Store8(a mem.Addr, v uint8) { p.Store(a, uint64(v), 1) }

// Prefetch delegates (timing only).
func (p *proxy) Prefetch(a mem.Addr, lines int) { p.m.Prefetch(a, lines) }

// ReadFBit delegates (relocation primitive; not counted).
func (p *proxy) ReadFBit(a mem.Addr) bool { return p.m.ReadFBit(a) }

// UnforwardedRead delegates (relocation primitive; not counted).
func (p *proxy) UnforwardedRead(a mem.Addr) (uint64, bool) { return p.m.UnforwardedRead(a) }

// UnforwardedWrite delegates (relocation primitive; not counted).
func (p *proxy) UnforwardedWrite(a mem.Addr, v uint64, fbit bool) {
	p.m.UnforwardedWrite(a, v, fbit)
}

// FinalAddr delegates.
func (p *proxy) FinalAddr(a mem.Addr) mem.Addr { return p.m.FinalAddr(a) }

// PtrEqual delegates.
func (p *proxy) PtrEqual(a, b mem.Addr) bool { return p.m.PtrEqual(a, b) }

// SetTrap delegates; the handler is machine state and travels with
// snapshots (sim.SaveState carries it verbatim).
func (p *proxy) SetTrap(h core.TrapHandler) { p.m.SetTrap(h) }

// Malloc is a counted guest operation.
func (p *proxy) Malloc(n uint64) mem.Addr {
	p.g.tick()
	return p.m.Malloc(n)
}

// Free is a counted guest operation.
func (p *proxy) Free(a mem.Addr) {
	p.g.tick()
	p.m.Free(a)
}

// Allocator delegates.
func (p *proxy) Allocator() *mem.Allocator { return p.m.Allocator() }

// Memory delegates.
func (p *proxy) Memory() *mem.Memory { return p.m.Memory() }

// Forwarder delegates.
func (p *proxy) Forwarder() *core.Forwarder { return p.m.Forwarder() }

// LineSize delegates.
func (p *proxy) LineSize() int { return p.m.LineSize() }

// FaultInjector delegates.
func (p *proxy) FaultInjector() *fault.Injector { return p.m.FaultInjector() }

// SetFaultInjector delegates; an installed injector travels with
// snapshots (sim.LoadState re-installs it on the restored machine).
func (p *proxy) SetFaultInjector(in *fault.Injector) { p.m.SetFaultInjector(in) }

// Site delegates.
func (p *proxy) Site(name string) int { return p.m.Site(name) }

// SetSite delegates.
func (p *proxy) SetSite(id int) { p.m.SetSite(id) }

// PhaseBegin delegates.
func (p *proxy) PhaseBegin(name string) { p.m.PhaseBegin(name) }

// PhaseEnd delegates.
func (p *proxy) PhaseEnd(name string) { p.m.PhaseEnd(name) }

// TraceRelocate delegates.
func (p *proxy) TraceRelocate(src, tgt mem.Addr, nWords int) { p.m.TraceRelocate(src, tgt, nWords) }

// SetHart forwards to the current machine, so a scheduling group built
// over the proxy keeps bracketing relocator-hart steps correctly after
// a live migration swaps the machine underneath it.
func (p *proxy) SetHart(i int) { p.m.SetHart(i) }

// HartCount forwards to the current machine.
func (p *proxy) HartCount() int { return p.m.HartCount() }
