package serve

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"memfwd/internal/fault"
)

// TestTransientExhaustionDropsDurability: a disk that stays transiently
// broken past the retry budget must not wedge the session — it drops to
// memory-only, its stale artifacts are removed (a later recovery must
// not resurrect a state that silently lost acked operations), and the
// shard takes enough strikes to be quarantined out of new placements.
func TestTransientExhaustionDropsDurability(t *testing.T) {
	st := openTestStore(t, StoreConfig{Retries: 1})
	st.SetDiskInjector(fault.NewDisk(3).
		Arm(fault.DiskShort, fault.DiskWALAppend, 1).
		Arm(fault.DiskShort, fault.DiskWALAppend, 2))
	sv := New(Config{Shards: 2, Store: st, QuarantineAfter: 1})
	shard0 := 0
	s, err := sv.createSession(createRequest{Mode: "raw", Shard: &shard0})
	if err != nil {
		t.Fatal(err)
	}

	s.mu.Lock()
	results, err := sv.execOps(s, []opRequest{{Op: "malloc", Size: 64}})
	logDropped := s.log == nil
	s.mu.Unlock()
	if err != nil {
		t.Fatalf("op should survive losing durability: %v", err)
	}
	if len(results) != 1 || results[0].Addr == 0 {
		t.Fatalf("malloc result %+v", results)
	}
	if !logDropped {
		t.Fatal("session kept its WAL after retry exhaustion")
	}
	if got := sv.durabilityLost.Load(); got != 1 {
		t.Fatalf("durabilityLost %d, want 1", got)
	}
	if st.Dead() {
		t.Fatal("transient exhaustion latched the store dead")
	}
	if _, serr := os.Stat(st.sessionDir(s.ID)); !os.IsNotExist(serr) {
		t.Fatalf("stale session dir still on disk (stat err %v)", serr)
	}
	if !sv.shards[0].quarantined.Load() {
		t.Fatal("shard not quarantined after the strike")
	}

	// Placement: pinning to the quarantined shard is refused, while
	// round-robin routes around it.
	if _, err := sv.createSession(createRequest{Mode: "raw", Shard: &shard0}); err == nil {
		t.Fatal("create pinned to a quarantined shard succeeded")
	}
	for i := 0; i < 3; i++ {
		s2, err := sv.createSession(createRequest{Mode: "raw"})
		if err != nil {
			t.Fatalf("round-robin create %d: %v", i, err)
		}
		if got := int(s2.shard.Load()); got != 1 {
			t.Fatalf("round-robin landed on quarantined shard %d", got)
		}
	}

	// The degraded session keeps serving memory-only.
	s.mu.Lock()
	_, err = sv.execOps(s, []opRequest{{Op: "malloc", Size: 32}})
	s.mu.Unlock()
	if err != nil {
		t.Fatalf("memory-only session refused work: %v", err)
	}

	m := sv.MetricsSnapshot()
	if m["serve.durability_lost"] != 1 || m["serve.shards.quarantined"] != 1 {
		t.Fatalf("metrics: durability_lost=%v quarantined=%v",
			m["serve.durability_lost"], m["serve.shards.quarantined"])
	}
}

// TestLoadSheddingSheds429: per-shard admission control rejects excess
// inflight requests with 429 + Retry-After instead of queueing without
// bound, and recovers as soon as slots free up.
func TestLoadSheddingSheds429(t *testing.T) {
	sv := New(Config{Shards: 1, MaxInflight: 1})
	s, err := sv.createSession(createRequest{Mode: "raw"})
	if err != nil {
		t.Fatal(err)
	}

	release, ok := sv.admit(httptest.NewRecorder(), s)
	if !ok {
		t.Fatal("first request shed at inflight=0")
	}
	rec := httptest.NewRecorder()
	if _, ok := sv.admit(rec, s); ok {
		t.Fatal("second request admitted past MaxInflight=1")
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("shed status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", got)
	}
	if sv.shedCount.Load() != 1 || sv.shards[0].shed.Load() != 1 {
		t.Fatalf("shed counters: server %d, shard %d", sv.shedCount.Load(), sv.shards[0].shed.Load())
	}

	release()
	release2, ok := sv.admit(httptest.NewRecorder(), s)
	if !ok {
		t.Fatal("request shed after the slot was released")
	}
	release2()

	if m := sv.MetricsSnapshot(); m["serve.shed"] != 1 {
		t.Fatalf("serve.shed metric %v, want 1", m["serve.shed"])
	}
}

// TestOversizeBodyRejected: a request body past the 1 MiB cap comes
// back as a clean 413, not a hung read or a 500.
func TestOversizeBodyRejected(t *testing.T) {
	sv := startServer(t, Config{Shards: 1})
	body := `{"mode":"` + strings.Repeat("a", (1<<20)+512) + `"}`
	resp, err := http.Post("http://"+sv.Addr()+"/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}
