package serve

import (
	"errors"
	"fmt"
	"testing"

	"memfwd"
	"memfwd/internal/apps/app"
	"memfwd/internal/fault"
	"memfwd/internal/oracle"
	"memfwd/internal/sim"
)

// The restart-recovery proof: a deterministic raw-session script is run
// against a durable server with a disk fault armed at every kind ×
// persistence point × visit, the "process" dies (the store latches
// dead), and a fresh server recovers the directory. The recovered
// session must land on the digest of the uncrashed control either
// before or after the last unacknowledged operation — no third state —
// with machine invariants intact.

// scriptStep is one deterministic raw operation; addr-taking steps name
// the source malloc by index so the script replays against whatever
// addresses the allocator hands out.
type scriptStep struct {
	op    string
	size  uint64 // malloc bytes
	block int    // index of the malloc that produced the base address
	off   uint64
	value uint64
}

// restartScript mixes every journaled op kind, including two
// relocations (intent/commit protocol) and frees, so the fault matrix
// sweeps the WAL grammar end to end. Relocated blocks are never freed:
// the allocator tracks them at their original address and the script
// stays valid either way, but keeping the cases disjoint makes each
// cell's failure mode readable.
var restartScript = []scriptStep{
	{op: "malloc", size: 128},                      // b0
	{op: "store", block: 0, off: 0, value: 0x1111}, // seq
	{op: "malloc", size: 256},                      // b1
	{op: "store", block: 1, off: 8, value: 0x2222},
	{op: "store", block: 0, off: 16, value: 0x3333},
	{op: "load", block: 0},
	{op: "malloc", size: 64}, // b2
	{op: "store", block: 2, off: 0, value: 0x4444},
	{op: "relocate", block: 0},
	{op: "fbit", block: 0},
	{op: "load", block: 0, off: 16},
	{op: "free", block: 2},
	{op: "malloc", size: 512}, // b3
	{op: "store", block: 3, off: 24, value: 0x5555},
	{op: "relocate", block: 1},
	{op: "final", block: 1},
	{op: "store", block: 1, off: 8, value: 0x6666},
	{op: "load", block: 3, off: 24},
	{op: "free", block: 3},
	{op: "malloc", size: 96}, // b4
	{op: "store", block: 4, off: 8, value: 0x7777},
	{op: "load", block: 4, off: 8},
}

// scriptDriver resolves script steps into concrete op requests.
type scriptDriver struct {
	addrs []uint64
}

func (d *scriptDriver) request(st scriptStep) opRequest {
	req := opRequest{Op: st.op}
	switch st.op {
	case "malloc":
		req.Size = st.size
	default:
		req.Addr = d.addrs[st.block] + st.off
	}
	return req
}

func (d *scriptDriver) observe(st scriptStep, res opResult) {
	if st.op == "malloc" {
		d.addrs = append(d.addrs, res.Addr)
	}
}

// restartStoreConfig keeps checkpoints frequent so the matrix exercises
// the meta-rewrite and WAL-reset seams many times per run.
func restartStoreConfig(dir string) StoreConfig {
	return StoreConfig{Dir: dir, CheckpointEvery: 3, Sleep: noSleep}
}

// restartControlDigests runs the script on a memory-only server and
// returns digests[k] = heap digest after k acknowledged batches
// (digests[0] is the fresh session).
func restartControlDigests(t *testing.T) []uint64 {
	t.Helper()
	sv := New(Config{Shards: 2})
	shard0 := 0
	s, err := sv.createSession(createRequest{Mode: "raw", Shard: &shard0})
	if err != nil {
		t.Fatal(err)
	}
	digests := make([]uint64, 0, len(restartScript)+1)
	snap := func() {
		s.mu.Lock()
		d, derr := s.digest()
		s.mu.Unlock()
		if derr != nil {
			t.Fatalf("control digest: %v", derr)
		}
		digests = append(digests, d)
	}
	snap()
	var drv scriptDriver
	for i, step := range restartScript {
		s.mu.Lock()
		results, err := sv.execOps(s, []opRequest{drv.request(step)})
		s.mu.Unlock()
		if err != nil {
			t.Fatalf("control step %d (%s): %v", i, step.op, err)
		}
		drv.observe(step, results[0])
		snap()
	}
	return digests
}

// restartRun is one scripted run against a faulty store.
type restartRun struct {
	st      *Store
	acked   int // batches acknowledged; -1 = session creation itself failed
	created bool
	failed  bool // a batch (or the creation) died on a storage error
}

// runRestartScript drives the script one op per batch against a durable
// server over dir, stopping at the first storage failure (guest errors
// fail the test: the script is valid by construction).
func runRestartScript(t *testing.T, dir string, in *fault.DiskInjector) restartRun {
	t.Helper()
	st, err := OpenStore(restartStoreConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	st.SetDiskInjector(in)
	sv := New(Config{Shards: 2, Store: st})
	shard0 := 0
	s, err := sv.createSession(createRequest{Mode: "raw", Shard: &shard0})
	if err != nil {
		return restartRun{st: st, acked: -1, failed: true}
	}
	run := restartRun{st: st, created: true}
	var drv scriptDriver
	for i, step := range restartScript {
		s.mu.Lock()
		results, err := sv.execOps(s, []opRequest{drv.request(step)})
		s.mu.Unlock()
		if err != nil {
			var ge *guestOpError
			if errors.As(err, &ge) {
				t.Fatalf("guest error at step %d (%s): %v", i, step.op, err)
			}
			run.failed = true
			return run
		}
		drv.observe(step, results[0])
		run.acked++
	}
	return run
}

// recoverDir restarts over dir: fresh store, fresh server, Recover.
func recoverDir(t *testing.T, dir string) (*Server, RecoverReport) {
	t.Helper()
	st, err := OpenStore(restartStoreConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	sv := New(Config{Shards: 2, Store: st})
	rep, err := sv.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return sv, rep
}

func sessionDigest(t *testing.T, s *Session) uint64 {
	t.Helper()
	s.mu.Lock()
	d, err := s.digest()
	s.mu.Unlock()
	if err != nil {
		t.Fatalf("digest: %v", err)
	}
	return d
}

// TestRestartRecoveryEveryPoint is the tentpole proof. For every fault
// kind at every persistence point at every visit the clean run makes:
//
//   - fatal kinds (crash, torn) kill the run; recovery must land the
//     session on digests[acked] or digests[acked+1] (the batch in
//     flight was never acknowledged) with clean machine invariants,
//     and keep serving.
//   - transient kinds (short, flip) must be absorbed by retry /
//     read-back: the run completes every batch and recovery of the
//     final directory reproduces the final control digest exactly.
func TestRestartRecoveryEveryPoint(t *testing.T) {
	digests := restartControlDigests(t)

	// Discovery: count how often a clean durable run visits each point.
	visits := make(map[fault.DiskPoint]int)
	{
		in := fault.NewDisk(1)
		run := runRestartScript(t, t.TempDir(), in)
		if run.failed || run.acked != len(restartScript) {
			t.Fatalf("clean durable run failed: %+v", run)
		}
		for _, p := range fault.DiskPoints() {
			visits[p] = in.Visits(p)
			if visits[p] == 0 {
				t.Fatalf("persistence point %s never visited; the matrix would skip it", p)
			}
		}
	}

	var cells, scavenges, rollbacks int
	runCell := func(kind fault.DiskKind, point fault.DiskPoint, visit int) {
		t.Run(fmt.Sprintf("%v@%s/visit=%d", kind, point, visit), func(t *testing.T) {
			dir := t.TempDir()
			in := fault.NewDisk(int64(cells)*7919+13).Arm(kind, point, visit)
			run := runRestartScript(t, dir, in)
			if !in.Fired() {
				t.Fatalf("armed fault never fired (clean run visits %s %d times)", point, visits[point])
			}
			transient := kind == fault.DiskShort || kind == fault.DiskFlip
			if transient {
				if run.failed || run.acked != len(restartScript) {
					t.Fatalf("transient %v not absorbed: %+v", kind, run)
				}
				if run.st.retries.Load() == 0 {
					t.Fatal("transient fault absorbed without a recorded retry")
				}
				if run.st.Dead() {
					t.Fatal("transient fault latched the store dead")
				}
			} else if !run.st.Dead() {
				t.Fatalf("fatal %v did not latch the store dead: %+v", kind, run)
			}

			sv2, rep := recoverDir(t, dir)
			defer sv2.Close()
			if rep.Damaged != 0 {
				t.Fatalf("recovery reported damage: %+v", rep)
			}
			scavenges += rep.Scavenges
			rollbacks += rep.TailRollbacks

			if run.acked < 0 {
				// The creation itself died: it was never acknowledged, so
				// both zero sessions and one fresh session are legal.
				if rep.Sessions > 1 {
					t.Fatalf("recovered %d sessions from a dead creation", rep.Sessions)
				}
				if rep.Sessions == 1 {
					s2, ok := sv2.session("s-1")
					if !ok {
						t.Fatal("reported session not registered")
					}
					if d := sessionDigest(t, s2); d != digests[0] {
						t.Fatalf("recovered fresh session digest %#x, want %#x", d, digests[0])
					}
				}
				return
			}

			if rep.Sessions != 1 {
				t.Fatalf("recovered %d sessions, want 1", rep.Sessions)
			}
			s2, ok := sv2.session("s-1")
			if !ok {
				t.Fatal("recovered session not registered")
			}
			got := sessionDigest(t, s2)
			allowed := []uint64{digests[run.acked]}
			if run.acked+1 < len(digests) {
				allowed = append(allowed, digests[run.acked+1])
			}
			legal := false
			for _, d := range allowed {
				legal = legal || got == d
			}
			if !legal {
				t.Fatalf("recovered digest %#x after %d acked batches; allowed %#x", got, run.acked, allowed)
			}
			if err := oracle.CheckMachine(s2.m); err != nil {
				t.Fatalf("recovered machine invariants: %v", err)
			}
			// The recovered session keeps serving durably.
			s2.mu.Lock()
			_, err := sv2.execOps(s2, []opRequest{{Op: "malloc", Size: 48}})
			s2.mu.Unlock()
			if err != nil {
				t.Fatalf("recovered session refused new work: %v", err)
			}
		})
		cells++
	}

	for _, p := range fault.DiskPoints() {
		for v := 1; v <= visits[p]; v++ {
			runCell(fault.DiskCrash, p, v)
		}
	}
	for _, kind := range []fault.DiskKind{fault.DiskTorn, fault.DiskShort, fault.DiskFlip} {
		for _, p := range []fault.DiskPoint{fault.DiskSnapWrite, fault.DiskWALAppend} {
			for v := 1; v <= visits[p]; v++ {
				runCell(kind, p, v)
			}
		}
	}

	// The matrix must have exercised the interesting repairs somewhere:
	// dangling relocation intents scavenged forward, torn tails rolled
	// back. If neither ever happened the sweep is vacuous.
	if scavenges == 0 {
		t.Error("no cell scavenged a dangling relocation intent")
	}
	if rollbacks == 0 {
		t.Error("no cell rolled back a damaged WAL tail")
	}
	t.Logf("matrix: %d cells, %d scavenges, %d tail rollbacks", cells, scavenges, rollbacks)
}

// TestDurableChaosSessionRecovery is the app-mode acceptance case: a
// harts=4 chaos session persisted mid-episode recovers — by
// deterministic re-execution of its journaled grants — to the same
// digests, final checksum, and adversary action counts as an identical
// uncrashed twin following the in-memory snapshot/restore path.
func TestDurableChaosSessionRecovery(t *testing.T) {
	req := createRequest{
		Mode: "health", Opt: true, Seed: 7,
		Chaos: true, ChaosSeed: 99, ChaosInterval: 512,
		Harts: 4, SchedSeed: 5, SchedInterval: 8,
	}

	// Plain single-hart control: the strongest reference for the final
	// checksum and heap digest.
	a, ok := memfwd.AppByName(req.Mode)
	if !ok {
		t.Fatalf("unknown app %q", req.Mode)
	}
	ctrl := sim.New(sim.Config{})
	wantRes := a.Run(ctrl, app.Config{Opt: req.Opt, Seed: req.Seed})
	ctrl.Finalize()
	wantDig, err := oracle.DigestModuloForwarding(ctrl.Mem, ctrl.Fwd, ctrl.Alloc)
	if err != nil {
		t.Fatalf("control digest: %v", err)
	}

	// Twin: the identical session on a memory-only server, driven with
	// the same grants — the uncrashed in-memory path the recovered run
	// must be indistinguishable from.
	sv0 := New(Config{Shards: 2})
	t.Cleanup(func() { sv0.Close() })
	twin, err := sv0.createSession(req)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st := openTestStore(t, StoreConfig{Dir: dir})
	sv1 := New(Config{Shards: 2, Store: st})
	t.Cleanup(func() { sv1.Close() })
	live, err := sv1.createSession(req)
	if err != nil {
		t.Fatal(err)
	}

	for _, n := range []int64{4096, 4096} {
		u0, d0, err := sv0.stepSession(twin, n)
		if err != nil {
			t.Fatal(err)
		}
		u1, d1, err := sv1.stepSession(live, n)
		if err != nil {
			t.Fatal(err)
		}
		if u0 != u1 || d0 != d1 {
			t.Fatalf("twin diverged mid-run: used %d/%d done %v/%v", u0, u1, d0, d1)
		}
		if d1 {
			t.Fatal("app finished before the mid-episode crash point; grants too large")
		}
	}
	midOps := live.ops()

	liveDig := sessionDigest(t, live)
	if twinDig := sessionDigest(t, twin); twinDig != liveDig {
		t.Fatalf("twin digest %#x != live digest %#x before the crash", twinDig, liveDig)
	}

	// Persist a mid-episode snapshot and restore it in-memory: the
	// recovered world must reproduce both.
	snapID, snap := sv1.snapshotSession(live)
	if err := st.writeSnapshot(snapID, snap); err != nil {
		t.Fatalf("persist snapshot: %v", err)
	}
	rs, err := sv1.restoreSnapshot(snapID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := sessionDigest(t, rs); d != liveDig {
		t.Fatalf("in-memory restore digest %#x != live digest %#x", d, liveDig)
	}

	// Crash: abandon sv1 without shutdown and recover the directory
	// with a fresh store and server.
	st2, err := OpenStore(StoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sv2 := New(Config{Shards: 2, Store: st2})
	t.Cleanup(func() { sv2.Close() })
	rep, err := sv2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged != 0 || rep.Sessions != 2 || rep.Snapshots != 1 {
		t.Fatalf("recover report %+v, want 2 sessions, 1 snapshot, 0 damaged", rep)
	}
	if rep.ReplayedGrants < 2 {
		t.Fatalf("replayed %d grants, want >= 2", rep.ReplayedGrants)
	}

	rec, ok := sv2.session(live.ID)
	if !ok {
		t.Fatalf("chaos session %s not recovered", live.ID)
	}
	if rec.Harts != req.Harts || !rec.Chaos || rec.g == nil {
		t.Fatalf("recovered session lost its shape: harts=%d chaos=%v app=%v", rec.Harts, rec.Chaos, rec.g != nil)
	}
	if got := rec.ops(); got != midOps {
		t.Fatalf("recovered session at %d ops, crashed server had acked %d", got, midOps)
	}
	if d := sessionDigest(t, rec); d != liveDig {
		t.Fatalf("recovered session digest %#x != pre-crash digest %#x", d, liveDig)
	}
	if rrs, ok := sv2.session(rs.ID); !ok {
		t.Fatalf("restored session %s not recovered", rs.ID)
	} else if d := sessionDigest(t, rrs); d != liveDig {
		t.Fatalf("recovered restored-session digest %#x != pre-crash digest %#x", d, liveDig)
	}
	rs2, err := sv2.restoreSnapshot(snapID, nil)
	if err != nil {
		t.Fatalf("restore from recovered snapshot: %v", err)
	}
	if d := sessionDigest(t, rs2); d != liveDig {
		t.Fatalf("recovered snapshot restores to %#x, want %#x", d, liveDig)
	}

	// Drive twin and recovered session to completion in lockstep.
	for done := false; !done; {
		_, d0, err := sv0.stepSession(twin, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		_, d1, err := sv2.stepSession(rec, 1<<16)
		if err != nil {
			t.Fatal(err)
		}
		if d0 != d1 {
			t.Fatalf("twin and recovered session finished out of step: %v vs %v", d0, d1)
		}
		done = d1
	}
	twinRes, terr := twin.result()
	recRes, rerr := rec.result()
	if terr != nil || rerr != nil {
		t.Fatalf("run errors: twin %v, recovered %v", terr, rerr)
	}
	if recRes.Checksum != wantRes.Checksum || twinRes.Checksum != wantRes.Checksum {
		t.Fatalf("checksums: recovered %#x, twin %#x, control %#x",
			recRes.Checksum, twinRes.Checksum, wantRes.Checksum)
	}
	if recRes.Relocated != twinRes.Relocated {
		t.Fatalf("relocated count: recovered %d, twin %d", recRes.Relocated, twinRes.Relocated)
	}

	fm := rec.px.machine()
	gotDig, err := oracle.DigestModuloForwarding(fm.Mem, fm.Fwd, fm.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if gotDig != wantDig {
		t.Fatalf("final digest: recovered %#x, control %#x", gotDig, wantDig)
	}
	if err := oracle.CheckMachine(fm); err != nil {
		t.Fatalf("recovered machine invariants: %v", err)
	}

	// Adversary action counts must match the uncrashed twin exactly —
	// and be non-zero, or the chaos claim is vacuous.
	if rec.rel.Relocations != twin.rel.Relocations || rec.rel.Relocations == 0 {
		t.Fatalf("adversary relocations: recovered %d, twin %d", rec.rel.Relocations, twin.rel.Relocations)
	}
	recGrp, twinGrp := rec.grp.Stats(), twin.grp.Stats()
	if recGrp.Relocations != twinGrp.Relocations || recGrp.Relocations == 0 {
		t.Fatalf("scheduler relocations: recovered %+v, twin %+v", recGrp, twinGrp)
	}
}
