package serve

// The server side of durability: journaling raw guest operations and
// app step grants through each session's WAL (store.go), folding the
// log back into the snapshot file at checkpoints, and degrading
// gracefully — strike-counted shard quarantine, per-session durability
// drop — when the disk misbehaves short of killing the process.
//
// The write-ahead discipline, which recovery.go replays:
//
//   - Plain ops (malloc/free/load/store/fbit/final) execute first and
//     are journaled after. A crash between the two loses an op the
//     client was never acked — recovery lands on the pre-op state,
//     which the crash contract allows. digest is a pure untimed read
//     and is not journaled.
//   - relocate journals an intent record BEFORE touching anything, and
//     a commit record after TryRelocate resolves. A crash between the
//     two leaves a dangling intent at the WAL tail; recovery scavenges
//     it forward with the fault package's journal machinery.
//   - A batch is acknowledged only after sync(): every record above is
//     durable. Grants journal after the step completes, same contract.

import (
	"fmt"
	"net/http"

	"memfwd/internal/mem"
	"memfwd/internal/sim"
)

// guestOpError marks a client-caused failure within a batch (HTTP 422),
// as opposed to a storage failure (503).
type guestOpError struct {
	index int
	err   error
}

func (e *guestOpError) Error() string { return fmt.Sprintf("op %d: %v", e.index, e.err) }
func (e *guestOpError) Unwrap() error { return e.err }

// strike records a storage failure against a shard; enough strikes
// quarantine it out of new-session placement (existing sessions keep
// serving — degradation, not eviction).
func (sv *Server) strike(shardID int) {
	sh := sv.shards[shardID]
	if sh.strikes.Add(1) >= int64(sv.cfg.QuarantineAfter) {
		sh.quarantined.Store(true)
	}
}

// admit applies per-shard load shedding. On refusal it has already
// written the 429; on success the returned release must run when the
// request finishes.
func (sv *Server) admit(w http.ResponseWriter, s *Session) (release func(), ok bool) {
	sh := sv.shards[int(s.shard.Load())]
	if sh.inflight.Add(1) > int64(sv.cfg.MaxInflight) {
		sh.inflight.Add(-1)
		sh.shed.Add(1)
		sv.shedCount.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "shard %d overloaded; retry later", sh.id)
		return nil, false
	}
	return func() { sh.inflight.Add(-1) }, true
}

// persistNewSession writes a fresh session's durable artifacts: the
// meta/snapshot file and an empty WAL. No-op without a store. Raw
// sessions persist their machine state; app sessions persist the
// create request and re-execute deterministically on recovery.
func (sv *Server) persistNewSession(s *Session) error {
	st := sv.cfg.Store
	if st == nil {
		return nil
	}
	meta, err := sv.sessionMetaFor(s, 1)
	if err != nil {
		return err
	}
	if err := st.writeSessionMeta(meta); err != nil {
		return err
	}
	l, err := st.openSessionLog(s.ID, 0, 1, 0)
	if err != nil {
		return err
	}
	s.log = l
	return nil
}

// sessionMetaFor captures the session's current durable meta with the
// given walSeq. Callers hold s.mu (or own the session exclusively).
func (sv *Server) sessionMetaFor(s *Session, walSeq uint64) (*sessionMeta, error) {
	meta := &sessionMeta{
		id:       s.ID,
		mode:     s.Mode,
		shard:    int(s.shard.Load()),
		req:      s.reqJSON,
		rawOps:   s.rawOps,
		arenaOff: s.arenaOff,
		walSeq:   walSeq,
	}
	if s.g == nil {
		data, err := sim.EncodeState(s.save())
		if err != nil {
			return nil, err
		}
		meta.state = data
	}
	return meta, nil
}

// persistCheckpoint folds the session's WAL into its snapshot file.
// For raw sessions the meta carries fresh machine state and the WAL
// resets; app sessions cannot fold grants into state (recovery
// re-executes from the recipe), so their meta rewrite keeps walSeq=1
// and the WAL intact. Callers hold s.mu.
func (sv *Server) persistCheckpoint(s *Session) error {
	st := sv.cfg.Store
	if st == nil || s.log == nil {
		return nil
	}
	walSeq := uint64(1)
	if s.g == nil {
		walSeq = s.log.seq
	}
	meta, err := sv.sessionMetaFor(s, walSeq)
	if err != nil {
		return err
	}
	if err := st.writeSessionMeta(meta); err != nil {
		return err
	}
	if s.g == nil {
		if err := s.log.reset(); err != nil {
			return err
		}
	}
	st.checkpoints.Add(1)
	return nil
}

// maybeCheckpoint runs a checkpoint when the WAL has grown past the
// configured cadence. Errors are swallowed: the batch that triggered
// us is already durable under the old meta + WAL, and a dead store
// surfaces on the next append. Callers hold s.mu.
func (sv *Server) maybeCheckpoint(s *Session) {
	if s.log == nil || s.g != nil || s.log.recs < sv.cfg.Store.cfg.CheckpointEvery {
		return
	}
	if err := sv.persistCheckpoint(s); err != nil && !sv.cfg.Store.Dead() {
		sv.strike(int(s.shard.Load()))
	}
}

// dropDurability downgrades a session to memory-only after the store
// exhausted its retries: the on-disk artifacts are removed (a stale
// snapshot must not resurrect at recovery and silently lose acked
// operations), the shard takes a strike, and the session keeps
// serving. Callers hold s.mu.
func (sv *Server) dropDurability(s *Session, cause error) {
	s.log.close() //nolint:errcheck // the fd is being abandoned
	s.log = nil
	if st := sv.cfg.Store; st != nil {
		st.removeSession(s.ID) //nolint:errcheck // best-effort
	}
	sv.durabilityLost.Add(1)
	sv.strike(int(s.shard.Load()))
}

// logAppend journals one record for s, classifying failures:
// nil session log (memory-only) is a no-op; a fatal fault (the store
// is dead — the simulated process died mid-write) propagates so the
// batch goes unacked; a transiently failing disk that exhausted its
// retries drops the session to memory-only and the operation proceeds
// unjournaled. Callers hold s.mu.
func (sv *Server) logAppend(s *Session, rec *walRecord) error {
	if s.log == nil {
		return nil
	}
	err := s.log.append(rec)
	if err == nil {
		return nil
	}
	if sv.cfg.Store.Dead() {
		return err
	}
	sv.dropDurability(s, err)
	return nil
}

// stepSession grants ops to an app session and journals the cumulative
// total consumed, syncing before the grant is acknowledged. Takes s.mu
// only around the journaling — stepping itself blocks until the runner
// consumes the grant, and control-plane calls must stay able to pause
// the runner mid-grant.
func (sv *Server) stepSession(s *Session, ops int64) (used int64, done bool, err error) {
	used, done = s.g.step(ops)
	// The grant is journaled after the fact — replay re-grants the
	// cumulative total, and deterministic re-execution reproduces the
	// machine. A crash between step and sync loses at most the unacked
	// tail of this grant.
	s.mu.Lock()
	err = sv.logAppend(s, &walRecord{kind: recGrant, used: used})
	if err == nil && s.log != nil {
		err = s.log.sync()
	}
	s.mu.Unlock()
	return used, done, err
}

// execOps runs a raw batch under the write-ahead discipline (see the
// file comment) and syncs before returning success — the caller acks
// the client only on nil error. Guest mistakes come back wrapped in
// *guestOpError; anything else is a storage failure. Callers hold
// s.mu.
func (sv *Server) execOps(s *Session, batch []opRequest) ([]opResult, error) {
	results := make([]opResult, 0, len(batch))
	for i, op := range batch {
		res, gerr, serr := sv.execDurableOp(s, op)
		if gerr != nil {
			return results, &guestOpError{index: i, err: gerr}
		}
		if serr != nil {
			return results, serr
		}
		results = append(results, res)
	}
	if s.log != nil {
		if err := s.log.sync(); err != nil {
			return results, err
		}
		sv.maybeCheckpoint(s)
	}
	return results, nil
}

// execDurableOp runs one op, journaling it when the session is
// durable. Returns (result, guest error, storage error).
func (sv *Server) execDurableOp(s *Session, op opRequest) (opResult, error, error) {
	if op.Op == "relocate" && s.log != nil {
		return sv.execDurableRelocate(s, op)
	}
	res, err := s.execOp(op)
	if err != nil {
		return res, err, nil
	}
	if code := opCodeFor(op.Op); code != 0 {
		rec := &walRecord{kind: recOp, opCode: code, addr: op.Addr, size: op.Size, value: op.Value}
		if serr := sv.logAppend(s, rec); serr != nil {
			// Executed but not journaled, and the client will see an
			// error: the op is unacked, so recovery's pre-op state is a
			// legal outcome.
			return res, nil, serr
		}
	}
	return res, nil, nil
}

// execDurableRelocate is the two-record relocation protocol: intent
// before any state changes, commit after TryRelocate resolves.
func (sv *Server) execDurableRelocate(s *Session, op opRequest) (opResult, error, error) {
	var res opResult
	src, words, bytes, perr := s.relocatePlan(op)
	if perr != nil {
		return res, perr, nil
	}
	tgt := s.arenaNext
	intent := &walRecord{kind: recIntent, src: uint64(src), tgt: uint64(tgt), words: words}
	if serr := sv.logAppend(s, intent); serr != nil {
		// Aborted pre-execution: the cursor never moved and no machine
		// state changed, matching what recovery will reconstruct.
		return res, nil, serr
	}
	s.arenaNext += mem.Addr(bytes)
	s.arenaOff += mem.Addr(bytes)
	rerr := s.tryRelocate(src, tgt, words)
	commit := &walRecord{kind: recCommit, tgt: uint64(tgt), ok: rerr == nil}
	if serr := sv.logAppend(s, commit); serr != nil {
		return res, nil, serr
	}
	if rerr != nil {
		return res, rerr, nil
	}
	res.Target = uint64(tgt)
	return res, nil, nil
}
