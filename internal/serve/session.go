package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"memfwd"
	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
	"memfwd/internal/oracle"
	"memfwd/internal/sched"
	"memfwd/internal/sim"
	"memfwd/internal/tier"
)

// tierHeatObjects sizes a tiered session's shared heat map: whole-heap
// coverage, because the migrator refuses to demote blocks the map does
// not track (same sizing as the CLI's -tiers path).
const tierHeatObjects = 1 << 16

// arenaRegionBytes is the relocation-target address space one shard
// region spans. Regions are keyed by shard id and sit far above any
// heap geometry the simulator configures (heaps end around 0x5000_0000
// with defaults), so a session's relocation targets always encode the
// shard that performed the relocation — and cross-shard migration
// visibly changes where new copies land while DigestModuloForwarding,
// which never looks at target addresses, stays invariant.
const arenaRegionBytes = 0x4_0000_0000

// shardArenaBase returns the relocation-arena base address for a shard.
func shardArenaBase(shard int) mem.Addr {
	return mem.Addr(arenaRegionBytes) * mem.Addr(shard+1)
}

// Session is one simulated machine owned by the server, in one of two
// modes:
//
//   - raw: the client is the guest program, driving individual
//     malloc/free/load/store/relocate operations through /op;
//   - app: a registered benchmark application runs on a dedicated
//     runner goroutine, advanced in guest-operation quanta through
//     /step, optionally wrapped in the chaos Relocator adversary.
//
// Either mode can be suspended, snapshotted, and migrated between
// shards at any operation boundary.
type Session struct {
	ID    string
	Mode  string // "raw" or an application name
	Chaos bool
	Tiers int // latency tiers the session's machine was built with (0 = untiered)
	Harts int // harts the session's machine was built with (0 or 1 = single-hart)

	shard atomic.Int32

	cfg sim.Config
	hub *obs.Broadcaster
	tr  *obs.Tracer

	// mu serializes raw-mode guest operations and all control-plane
	// work (digest, snapshot, migrate, close) on both modes. The
	// app-mode /step path deliberately does not take it: stepping can
	// block for a long time and synchronizes through the gate alone.
	mu        sync.Mutex
	m         *sim.Machine // raw mode; app mode reaches it via px
	closed    bool
	rawOps    uint64
	arenaNext mem.Addr // raw-mode relocation cursor within the shard region
	arenaOff  mem.Addr // cursor offset, preserved across migrations

	// Durability (nil when the server has no store, or after a storage
	// failure dropped this session to memory-only). Guarded by mu; the
	// create request rides along so checkpoints and app-mode recovery
	// can rewrite the session's recipe.
	log     *sessLog
	reqJSON []byte

	// App mode.
	g          *gate
	px         *proxy
	rel        *oracle.Relocator
	runnerDone chan struct{}
	res        app.Result
	runErr     error

	// Multi-hart (app mode with Harts >= 2): the scheduling group
	// driving relocator harts against the guest's operations. Host
	// state, like the tier daemon: it delegates through the proxy, so it
	// survives live migration unchanged (the proxy forwards SetHart to
	// whichever machine is current).
	grp *sched.Group

	// Tiering (app mode with Tiers >= 2): the migrator daemon wrapping
	// the proxy, and the heat map shared between machine and daemon.
	// Both are host state — they survive live migration by reattaching
	// to the swapped-in machine (see migrate).
	td   *tier.Daemon
	heat *obs.HeatMap
}

// newSession builds a session on the given shard. For app mode, name
// must be a registered application; the runner goroutine starts parked
// (zero budget) and advances only under /step grants.
func newSession(id string, shard int, cfg sim.Config, req createRequest) (*Session, error) {
	// Tiering is per-session config: the tier spec goes into the
	// machine's sim.Config (so it travels with snapshots and rebuilds
	// identically on migration), and app sessions additionally get the
	// migrator daemon. Raw sessions get geometry only — the daemon is an
	// app.Machine interceptor and raw ops drive the machine directly.
	var tc *mem.TierConfig
	if req.Tiers != 0 {
		if req.Tiers < 2 {
			return nil, fmt.Errorf("tiers must be at least 2 (got %d)", req.Tiers)
		}
		base := cfg.MemLatency
		if base <= 0 {
			base = sim.DefaultConfig().MemLatency
		}
		tc = mem.DefaultTierConfig(req.Tiers, base)
		cfg.Tiers = tc
	}
	// Hart count is machine geometry like the tier spec: it goes into
	// sim.Config so snapshots rebuild the same machine shape, and app
	// sessions with Harts >= 2 additionally get the scheduling group.
	// Validated here, not at the machine, so a bad request is an HTTP
	// 400 rather than a server panic.
	if req.Harts < 0 {
		return nil, fmt.Errorf("harts must be positive (got %d)", req.Harts)
	}
	if req.Harts > sim.MaxHarts {
		return nil, fmt.Errorf("harts must be at most %d (got %d)", sim.MaxHarts, req.Harts)
	}
	if req.Harts > 1 {
		if req.Mode == "" || req.Mode == "raw" {
			return nil, fmt.Errorf("harts requires an app-mode session (raw sessions have no runner to schedule against)")
		}
		cfg.Harts = req.Harts
	}
	s := &Session{
		ID:    id,
		Mode:  "raw",
		Tiers: req.Tiers,
		Harts: req.Harts,
		cfg:   cfg,
		hub:   obs.NewBroadcaster(),
	}
	s.shard.Store(int32(shard))
	s.arenaNext = shardArenaBase(shard)
	s.tr = obs.NewTracer(obs.NoClose(s.hub), 32)

	m := sim.New(cfg)
	m.SetTracer(s.tr)
	if req.Mode == "" || req.Mode == "raw" {
		s.m = m
		return s, nil
	}

	a, ok := memfwd.AppByName(req.Mode)
	if !ok {
		return nil, fmt.Errorf("unknown mode %q (want \"raw\" or an application name)", req.Mode)
	}
	s.Mode = a.Name
	s.Chaos = req.Chaos
	s.g = newGate()
	s.px = newProxy(s.g, m)
	var gm app.Machine = s.px
	if req.Harts > 1 {
		grp, err := sched.New(s.px, sched.Config{
			Harts:    req.Harts,
			Seed:     req.SchedSeed,
			Interval: req.SchedInterval,
		})
		if err != nil {
			return nil, err
		}
		s.grp = grp
		gm = grp
	}
	if tc != nil {
		h := obs.NewHeatMap(tierHeatObjects, 0)
		m.SetHeatMap(h)
		s.heat = h
		s.td = tier.New(gm, tier.Config{
			Tiers:    tc,
			Seed:     req.Seed,
			Every:    req.MigrateEvery,
			FastFrac: req.FastFrac,
			OneShot:  req.TierStatic,
			Heat:     h,
		})
		gm = s.td
	}
	if req.Chaos {
		seed := req.ChaosSeed
		if seed == 0 {
			seed = 1
		}
		// The adversary wraps the daemon (when present): its relocations
		// and clock run through the same interception chain the guest
		// uses, so a chaos episode perturbs the migrator's view exactly
		// as an external agent would.
		s.rel = oracle.NewRelocator(gm, seed, req.ChaosInterval)
		gm = s.rel
	}
	appCfg := app.Config{
		Opt:      req.Opt,
		Prefetch: req.Prefetch,
		Seed:     req.Seed,
		Scale:    req.Scale,
	}
	s.runnerDone = make(chan struct{})
	go func() {
		defer close(s.runnerDone)
		defer s.g.finish()
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killed); !ok {
					s.runErr = fmt.Errorf("serve: session %s (%s) panicked: %v", s.ID, s.Mode, r)
				}
			}
		}()
		s.res = a.Run(gm, appCfg)
		if s.grp != nil {
			// Commit in-flight relocations so the final state (and any
			// digest a client reads) reflects whole relocations only.
			s.grp.Quiesce()
		}
		s.px.machine().Finalize()
	}()
	return s, nil
}

// withMachine runs fn with exclusive ownership of the session's
// machine, quiescing the runner at an operation boundary for app
// sessions. fn must not retain the machine.
func (s *Session) withMachine(fn func(m *sim.Machine) error) error {
	if s.g != nil {
		s.g.pause()
		defer s.g.resume()
		if s.grp != nil {
			// In-flight relocation jobs hold coroutine stacks the machine
			// state cannot capture; drive them to completion (which also
			// parks the machine on the guest hart) before fn sees it.
			s.grp.Quiesce()
		}
		return fn(s.px.machine())
	}
	return fn(s.m)
}

// ops returns the guest operations performed so far.
func (s *Session) ops() uint64 {
	if s.g != nil {
		return uint64(s.g.ops())
	}
	return s.rawOps
}

// tierView is the /stats and /metrics view of a session's migrator.
type tierView struct {
	Stats     tier.Stats `json:"stats"`
	NearBytes uint64     `json:"nearBytes"`
	FarBytes  uint64     `json:"farBytes"`
}

// tierSnapshot reads the migrator's accounting with the machine
// quiesced (the daemon shares the runner's synchronization domain).
// Callers hold s.mu. Returns nil for untiered and raw sessions.
func (s *Session) tierSnapshot() *tierView {
	if s.td == nil {
		return nil
	}
	var v tierView
	s.withMachine(func(m *sim.Machine) error { //nolint:errcheck // fn returns nil
		v = tierView{Stats: s.td.Stats(), NearBytes: s.td.NearLive(), FarBytes: s.td.FarLive()}
		return nil
	})
	return &v
}

// digest computes the heap digest modulo forwarding. Callers hold s.mu.
func (s *Session) digest() (uint64, error) {
	var d uint64
	err := s.withMachine(func(m *sim.Machine) error {
		var err error
		d, err = oracle.DigestModuloForwarding(m.Mem, m.Fwd, m.Alloc)
		return err
	})
	return d, err
}

// save captures the session's machine state. Callers hold s.mu.
func (s *Session) save() *sim.MachineState {
	var st *sim.MachineState
	s.withMachine(func(m *sim.Machine) error { //nolint:errcheck // fn returns nil
		st = m.SaveState()
		return nil
	})
	return st
}

// migrate re-homes the session on shard `to`: the machine state is
// captured, re-instantiated on a fresh machine, and the session's
// observability attachments and relocation cursor move with it (the
// cursor re-bases into the target shard's arena region at its current
// offset, so relocation targets never repeat). Callers hold s.mu.
func (s *Session) migrate(to int) error {
	return s.withMachine(func(m *sim.Machine) error {
		nm := sim.New(s.cfg)
		if err := nm.LoadState(m.SaveState()); err != nil {
			return fmt.Errorf("serve: migrate %s: %w", s.ID, err)
		}
		nm.SetTracer(s.tr)
		if s.heat != nil {
			nm.SetHeatMap(s.heat)
		}
		if s.g != nil {
			s.px.swap(nm)
		} else {
			s.m = nm
		}
		if s.td != nil {
			// The daemon's policy state is host state and persists; the
			// allocator (and its placement hook) is machine state and
			// must be re-cached from the swapped-in machine.
			s.td.Rebind()
		}
		s.shard.Store(int32(to))
		s.arenaNext = shardArenaBase(to) + s.arenaOff
		return nil
	})
}

// close tears the session down: the runner (if any) is unwound, the
// tracer's tail is flushed into the hub, and the hub closes so /events
// streams drain and end. Callers hold s.mu.
func (s *Session) close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.g != nil {
		s.g.kill()
		<-s.runnerDone
		if s.grp != nil {
			s.grp.Close()
		}
	}
	s.tr.Close() //nolint:errcheck // flush into a NoClose hub cannot fail
	s.hub.Close()
	s.log.close() //nolint:errcheck // nil-safe; the fd is all that's left
	s.log = nil
}

// result returns the app run's outcome; valid only once the run is
// done (gate.finished).
func (s *Session) result() (app.Result, error) {
	<-s.runnerDone
	return s.res, s.runErr
}
