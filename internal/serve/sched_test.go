package serve

import (
	"fmt"
	"testing"

	"memfwd"
	"memfwd/internal/apps/app"
	"memfwd/internal/oracle"
	"memfwd/internal/sim"
)

// TestMultiHartSessionMigrateMidChaos is the served form of the
// concurrency contract: an application session whose machine runs
// relocator harts against the guest (with the chaos adversary attached
// on top) is repeatedly suspended, live-migrated between shards, and
// snapshotted mid-run — and still finishes with the checksum and heap
// digest of a plain single-hart run on a private machine. Every layer
// of interference (concurrent relocation jobs, adversary episodes,
// quiesce-and-rebuild migration) must be invisible to the guest.
func TestMultiHartSessionMigrateMidChaos(t *testing.T) {
	const (
		shards    = 4
		chaosSeed = 99
		appSeed   = 7
	)
	cases := []struct {
		app   string
		harts int
	}{
		{"health", 2},
		{"health", 4},
		{"compress", 2},
		{"mst", 4},
	}
	if testing.Short() {
		cases = cases[1:2] // the highest-contention cell: health at harts=4
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%s/harts=%d", tc.app, tc.harts), func(t *testing.T) {
			t.Parallel()
			a, ok := memfwd.AppByName(tc.app)
			if !ok {
				t.Fatalf("unknown app %q", tc.app)
			}

			// Control: plain machine, no harts, no chaos, no server. The
			// group and the adversary must both be functionally invisible,
			// so the strongest reference is the least decorated one.
			appCfg := app.Config{Opt: true, Seed: appSeed}
			ctrl := sim.New(sim.Config{})
			wantRes := a.Run(ctrl, appCfg)
			ctrl.Finalize()
			wantDig, err := oracle.DigestModuloForwarding(ctrl.Mem, ctrl.Fwd, ctrl.Alloc)
			if err != nil {
				t.Fatalf("control digest: %v", err)
			}

			sv := New(Config{Shards: shards})
			s, err := sv.createSession(createRequest{
				Mode: a.Name, Opt: true, Seed: appSeed,
				Chaos: true, ChaosSeed: chaosSeed,
				Harts: tc.harts, SchedSeed: 5, SchedInterval: 8,
			})
			if err != nil {
				t.Fatal(err)
			}

			var (
				quantum    int64 = 1024
				migrations int
				done       bool
			)
			for !done {
				_, done = s.g.step(quantum)
				if done {
					break
				}
				next := (int(s.shard.Load()) + 1) % shards
				if err := sv.migrateSession(s, next); err != nil {
					t.Fatalf("migration %d: %v", migrations, err)
				}
				migrations++
				if migrations == 3 {
					// Mid-run: snapshot (which quiesces in-flight jobs),
					// restore on another shard, and check the restored
					// machine digests identically to the live one.
					liveDig, err := func() (uint64, error) {
						s.mu.Lock()
						defer s.mu.Unlock()
						return s.digest()
					}()
					if err != nil {
						t.Fatalf("live digest: %v", err)
					}
					snapID, _ := sv.snapshotSession(s)
					restoreShard := (next + 2) % shards
					rs, err := sv.restoreSnapshot(snapID, &restoreShard)
					if err != nil {
						t.Fatalf("restore: %v", err)
					}
					rs.mu.Lock()
					restDig, err := rs.digest()
					rs.mu.Unlock()
					if err != nil {
						t.Fatalf("restored digest: %v", err)
					}
					if restDig != liveDig {
						t.Fatalf("mid-run restore digest %#x != live digest %#x", restDig, liveDig)
					}
					if !sv.deleteSession(rs.ID) {
						t.Fatal("restored session vanished")
					}
				}
				if quantum < 1<<20 {
					quantum *= 2
				}
			}

			gotRes, runErr := s.result()
			if runErr != nil {
				t.Fatalf("served run: %v", runErr)
			}
			if gotRes.Checksum != wantRes.Checksum {
				t.Errorf("checksum diverged: served %#x, control %#x", gotRes.Checksum, wantRes.Checksum)
			}
			if migrations < 3 {
				t.Errorf("only %d migrations; app too short for the proof", migrations)
			}

			fm := s.px.machine()
			gotDig, err := oracle.DigestModuloForwarding(fm.Mem, fm.Fwd, fm.Alloc)
			if err != nil {
				t.Fatalf("served digest: %v", err)
			}
			if gotDig != wantDig {
				t.Errorf("digest diverged: served %#x, control %#x", gotDig, wantDig)
			}
			if err := oracle.CheckMachine(fm); err != nil {
				t.Errorf("served machine invariants: %v", err)
			}

			// Both interference sources must actually have run, or the
			// proof is vacuous.
			if st := s.grp.Stats(); st.Relocations == 0 {
				t.Errorf("scheduling group committed no relocations: %+v", st)
			}
			if s.rel.Relocations == 0 {
				t.Error("adversary performed no relocations")
			}

			if err := sv.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMultiHartSessionValidation: hart-count validation happens at
// session creation and surfaces as HTTP 400, never as a server panic.
func TestMultiHartSessionValidation(t *testing.T) {
	sv := startServer(t, Config{Shards: 1})

	if err := callErr(sv, "POST", "/sessions", createRequest{Mode: "health", Harts: -1}, nil); err == nil {
		t.Fatal("harts=-1 accepted; want HTTP 400")
	}
	if err := callErr(sv, "POST", "/sessions",
		createRequest{Mode: "health", Harts: sim.MaxHarts + 1}, nil); err == nil {
		t.Fatalf("harts=%d accepted; want HTTP 400", sim.MaxHarts+1)
	}
	if err := callErr(sv, "POST", "/sessions", createRequest{Mode: "raw", Harts: 2}, nil); err == nil {
		t.Fatal("raw session with harts=2 accepted; want HTTP 400")
	}

	var info sessionInfo
	call(t, sv, "POST", "/sessions",
		createRequest{Mode: "health", Opt: true, Harts: 2, SchedSeed: 3}, &info)
	if info.Harts != 2 {
		t.Fatalf("created %+v, want harts=2", info)
	}
	var step struct {
		Done bool `json:"done"`
	}
	for !step.Done {
		call(t, sv, "POST", "/sessions/"+info.ID+"/step", map[string]int64{"ops": 1 << 20}, &step)
	}
}
