package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startServer boots a server on a free port and tears it down with the
// test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	sv := New(cfg)
	if err := sv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sv.Close() })
	return sv
}

// call posts body to path and decodes the JSON reply into out,
// failing the test on a non-200 status.
func call(t *testing.T, sv *Server, method, path string, body, out any) {
	t.Helper()
	if err := callErr(sv, method, path, body, out); err != nil {
		t.Fatal(err)
	}
}

func callErr(sv *Server, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, "http://"+sv.Addr()+path, rd)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// TestRawSessionEndToEnd drives the whole raw-session lifecycle over
// real HTTP: guest operations, relocation through the production
// two-phase commit, snapshot, restore onto a different shard, digest
// equality across the restore, and reads through the forwarding chain
// on the restored machine.
func TestRawSessionEndToEnd(t *testing.T) {
	sv := startServer(t, Config{Shards: 4})

	shard := 0
	var info sessionInfo
	call(t, sv, "POST", "/sessions", createRequest{Mode: "raw", Shard: &shard}, &info)
	if info.Shard != 0 || info.Mode != "raw" {
		t.Fatalf("created %+v", info)
	}

	var blk opResult
	call(t, sv, "POST", "/sessions/"+info.ID+"/op", opRequest{Op: "malloc", Size: 64}, &blk)
	if blk.Addr == 0 {
		t.Fatal("malloc returned 0")
	}
	for i := 0; i < 8; i++ {
		call(t, sv, "POST", "/sessions/"+info.ID+"/op",
			opRequest{Op: "store", Addr: blk.Addr + uint64(i*8), Value: 0xA0 + uint64(i)}, nil)
	}
	var rel opResult
	call(t, sv, "POST", "/sessions/"+info.ID+"/op", opRequest{Op: "relocate", Addr: blk.Addr}, &rel)
	if rel.Target < uint64(shardArenaBase(0)) || rel.Target >= uint64(shardArenaBase(1)) {
		t.Fatalf("relocation target %#x not in shard 0's arena region", rel.Target)
	}
	var fb opResult
	call(t, sv, "POST", "/sessions/"+info.ID+"/op", opRequest{Op: "fbit", Addr: blk.Addr}, &fb)
	if !fb.FBit {
		t.Fatal("source word does not forward after relocate")
	}

	var preDig opResult
	call(t, sv, "POST", "/sessions/"+info.ID+"/op", opRequest{Op: "digest"}, &preDig)

	var snapped struct {
		Snapshot string `json:"snapshot"`
	}
	call(t, sv, "POST", "/sessions/"+info.ID+"/snapshot", struct{}{}, &snapped)
	restoreShard := 2
	var restored sessionInfo
	call(t, sv, "POST", "/restore", map[string]any{"snapshot": snapped.Snapshot, "shard": restoreShard}, &restored)
	if restored.Shard != 2 {
		t.Fatalf("restored onto shard %d, want 2", restored.Shard)
	}

	var postDig opResult
	call(t, sv, "POST", "/sessions/"+restored.ID+"/op", opRequest{Op: "digest"}, &postDig)
	if postDig.Value != preDig.Value {
		t.Fatalf("digest diverged across restore: %#x -> %#x", preDig.Value, postDig.Value)
	}
	// The forwarding chain planted before the snapshot must still
	// resolve on the restored machine.
	var v opResult
	call(t, sv, "POST", "/sessions/"+restored.ID+"/op", opRequest{Op: "load", Addr: blk.Addr + 24}, &v)
	if v.Value != 0xA3 {
		t.Fatalf("load through restored chain = %#x, want 0xA3", v.Value)
	}
	// New relocations on the restored session land in its new shard's
	// arena region.
	var blk2, rel2 opResult
	call(t, sv, "POST", "/sessions/"+restored.ID+"/op", opRequest{Op: "malloc", Size: 32}, &blk2)
	call(t, sv, "POST", "/sessions/"+restored.ID+"/op", opRequest{Op: "relocate", Addr: blk2.Addr}, &rel2)
	if rel2.Target < uint64(shardArenaBase(restoreShard)) || rel2.Target >= uint64(shardArenaBase(restoreShard+1)) {
		t.Fatalf("post-restore relocation target %#x not in shard %d's region", rel2.Target, restoreShard)
	}

	call(t, sv, "DELETE", "/sessions/"+info.ID, nil, nil)
	call(t, sv, "DELETE", "/sessions/"+restored.ID, nil, nil)
	if err := callErr(sv, "POST", "/sessions/"+info.ID+"/op", opRequest{Op: "digest"}, nil); err == nil {
		t.Fatal("op on a deleted session succeeded")
	}
}

// TestRawOpValidation: guest-level mistakes come back as HTTP errors,
// never server panics.
func TestRawOpValidation(t *testing.T) {
	sv := startServer(t, Config{Shards: 1})
	var info sessionInfo
	call(t, sv, "POST", "/sessions", createRequest{}, &info)
	for _, bad := range []opRequest{
		{Op: "free", Addr: 0x1234},               // non-live block
		{Op: "relocate", Addr: 0x1234},           // non-live block
		{Op: "load", Addr: 0x1000_0001},          // misaligned word access
		{Op: "nonsense"},                         // unknown op
		{Op: "malloc"},                           // missing size
		{Op: "load", Addr: 0x1000_0000, Size: 3}, // bad access size
	} {
		if err := callErr(sv, "POST", "/sessions/"+info.ID+"/op", bad, nil); err == nil {
			t.Errorf("op %+v succeeded, want error", bad)
		}
	}
	// The session survives all of the above.
	var res opResult
	call(t, sv, "POST", "/sessions/"+info.ID+"/op", opRequest{Op: "malloc", Size: 64}, &res)
	if res.Addr == 0 {
		t.Fatal("session unusable after rejected ops")
	}
}

// TestAppSessionStepEventsAndStats runs a benchmark application as a
// stepped session with the chaos adversary attached, streams its live
// events over /events, hammers /stats (which quiesces the runner)
// while stepping, and checks the final result arrives exactly once.
func TestAppSessionStepEventsAndStats(t *testing.T) {
	sv := startServer(t, Config{Shards: 2})
	var info sessionInfo
	call(t, sv, "POST", "/sessions", createRequest{Mode: "mst", Seed: 3, Chaos: true, ChaosSeed: 11}, &info)

	// Stream events concurrently; count NDJSON lines until the hub
	// closes at session deletion.
	lines := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + sv.Addr() + "/sessions/" + info.ID + "/events")
		if err != nil {
			lines <- -1
			return
		}
		defer resp.Body.Close()
		n := 0
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ev map[string]any
			if json.Unmarshal(sc.Bytes(), &ev) != nil {
				lines <- -1
				return
			}
			n++
		}
		lines <- n
	}()
	time.Sleep(10 * time.Millisecond) // let the subscriber attach

	var stepsDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stepsDone.Load() {
			if err := callErr(sv, "GET", "/sessions/"+info.ID+"/stats", nil, nil); err != nil {
				t.Errorf("stats during step: %v", err)
				return
			}
		}
	}()

	var final *stepResult
	for i := 0; i < 10_000; i++ {
		var resp stepResponse
		call(t, sv, "POST", "/sessions/"+info.ID+"/step", map[string]int64{"ops": 20_000}, &resp)
		if resp.Done {
			final = resp.Result
			break
		}
	}
	stepsDone.Store(true)
	wg.Wait()
	if final == nil {
		t.Fatal("run never finished")
	}
	if final.Err != "" {
		t.Fatalf("run failed: %s", final.Err)
	}
	if final.Checksum == 0 {
		t.Fatal("run produced zero checksum")
	}

	var stats struct {
		Session sessionInfo `json:"session"`
		Digest  string      `json:"digest"`
	}
	call(t, sv, "GET", "/sessions/"+info.ID+"/stats", nil, &stats)
	if !stats.Session.Done || stats.Digest == "" || stats.Digest == "0x0" {
		t.Fatalf("final stats %+v", stats)
	}

	call(t, sv, "DELETE", "/sessions/"+info.ID, nil, nil)
	select {
	case n := <-lines:
		if n <= 0 {
			t.Fatalf("event stream delivered %d lines", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event stream did not end after session deletion")
	}
}

// TestMetricsScrubbed pins the satellite-4 guarantee for the serve
// plane: every computed gauge is finite even when every denominator
// (sessions created, events, shards' work) is zero, and the /metrics
// endpoint always serves decodable JSON.
func TestMetricsScrubbed(t *testing.T) {
	sv := startServer(t, Config{Shards: 3})
	mets := sv.MetricsSnapshot()
	for k, v := range mets {
		if v != scrub(v) {
			t.Errorf("fresh-server metric %s = %v, want finite", k, v)
		}
	}
	for _, k := range []string{"serve.ops_per_session", "serve.events.drop_fraction"} {
		if v, ok := mets[k]; !ok || v != 0 {
			t.Errorf("%s = %v (present=%v), want 0 with zero denominators", k, v, ok)
		}
	}
	var out struct {
		Metrics map[string]float64 `json:"metrics"`
	}
	call(t, sv, "GET", "/metrics", nil, &out)
	if len(out.Metrics) != len(mets) {
		t.Fatalf("/metrics served %d gauges, want %d", len(out.Metrics), len(mets))
	}
}

// TestGate exercises the budget gate's contract directly: grants are
// consumed exactly, pause parks at an operation boundary, kill unwinds
// a parked runner.
func TestGate(t *testing.T) {
	g := newGate()
	var count atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer g.finish()
		defer func() { recover() }() //nolint:errcheck // killed unwind
		for {
			g.tick()
			count.Add(1)
		}
	}()

	used, doneFlag := g.step(10)
	if used != 10 || doneFlag {
		t.Fatalf("step(10): used=%d done=%v", used, doneFlag)
	}
	g.pause() // parks the runner inside its next tick: count is now stable
	if count.Load() != 10 {
		t.Fatalf("count=%d after step(10)+pause, want 10", count.Load())
	}
	g.mu.Lock()
	g.budget += 100 // grant budget while paused: runner must stay parked
	g.cond.Broadcast()
	g.mu.Unlock()
	time.Sleep(5 * time.Millisecond)
	if count.Load() != 10 {
		t.Fatal("runner advanced while paused")
	}
	g.resume()
	used, _ = g.drain() // wait out the 100-op grant
	if used != 110 {
		t.Fatalf("after resume used=%d, want 110", used)
	}
	g.pause()
	if count.Load() != 110 {
		t.Fatalf("count=%d after grant drained, want 110", count.Load())
	}
	g.resume()
	g.kill()
	<-done
	if !g.finished() {
		t.Fatal("killed runner not finished")
	}
}

// Satellite regression: a non-positive grant must not block on budget
// granted by an earlier step. Before the guard, step(n<=0) added
// nothing to the budget but still sat in the wait loop until the
// pending grant drained — with a parked runner, forever.
func TestGateStepNonPositiveReturnsImmediately(t *testing.T) {
	g := newGate()
	g.mu.Lock()
	g.budget = 7 // pending grant from an earlier step; nobody consuming
	g.used = 3
	g.mu.Unlock()
	type res struct {
		used int64
		done bool
	}
	got := make(chan res, 2)
	for _, n := range []int64{0, -4} {
		go func(n int64) {
			used, done := g.step(n)
			got <- res{used, done}
		}(n)
	}
	for i := 0; i < 2; i++ {
		select {
		case r := <-got:
			if r.used != 3 || r.done {
				t.Fatalf("step(<=0) = %+v, want used=3 done=false", r)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("step with non-positive grant blocked on earlier budget")
		}
	}
}

// Race test: a kill during a blocked step must wake the waiter with
// done=true promptly, not leave it hung on budget that will never be
// consumed.
func TestGateKillWakesBlockedStep(t *testing.T) {
	g := newGate()
	started := make(chan struct{})
	go func() {
		defer g.finish()
		defer func() { recover() }() //nolint:errcheck // killed unwind
		close(started)
		for {
			g.tick()
		}
	}()
	<-started
	g.pause() // park the runner so the grant below is never consumed

	type res struct {
		used int64
		done bool
	}
	got := make(chan res, 1)
	go func() {
		used, done := g.step(100)
		got <- res{used, done}
	}()
	time.Sleep(5 * time.Millisecond) // let the step enter its wait
	g.kill()
	select {
	case r := <-got:
		if !r.done {
			t.Fatalf("blocked step woke with done=%v, want true", r.done)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("kill did not wake the blocked step")
	}
}

// TestStepHTTPRejectsNonPositive: the HTTP layer 400s non-positive
// grants before they reach the gate.
func TestStepHTTPRejectsNonPositive(t *testing.T) {
	sv := startServer(t, Config{Shards: 1})
	var info sessionInfo
	call(t, sv, "POST", "/sessions", createRequest{Mode: "mst", Seed: 3}, &info)
	for _, ops := range []int64{0, -1} {
		err := callErr(sv, "POST", "/sessions/"+info.ID+"/step", map[string]int64{"ops": ops}, nil)
		if err == nil || !strings.Contains(err.Error(), "400") {
			t.Fatalf("step ops=%d: err=%v, want 400", ops, err)
		}
	}
	call(t, sv, "DELETE", "/sessions/"+info.ID, nil, nil)
}

// TestDeleteWakesBlockedStep drives the kill-during-step race over
// real HTTP: a step holding a grant far larger than the run consumes
// quickly is interrupted by session deletion and must return promptly.
func TestDeleteWakesBlockedStep(t *testing.T) {
	sv := startServer(t, Config{Shards: 1})
	var info sessionInfo
	call(t, sv, "POST", "/sessions", createRequest{Mode: "mst", Seed: 3}, &info)
	done := make(chan error, 1)
	go func() {
		var resp stepResponse
		done <- callErr(sv, "POST", "/sessions/"+info.ID+"/step",
			map[string]int64{"ops": 1 << 40}, &resp)
	}()
	time.Sleep(20 * time.Millisecond)
	call(t, sv, "DELETE", "/sessions/"+info.ID, nil, nil)
	select {
	case err := <-done:
		// Either a clean done=true response or the handler observed the
		// session vanish; hanging is the failure mode.
		_ = err
	case <-time.After(5 * time.Second):
		t.Fatal("step did not return after session deletion")
	}
}

// TestSelftestSmall runs the full load harness (reference runs, real
// HTTP, concurrent sessions, snapshot/restore and migrate paths, bleed
// checks) at a size fit for CI. The -race leg of CI runs this too.
func TestSelftestSmall(t *testing.T) {
	cfg := SelftestConfig{Sessions: 64, Shards: 4, Workers: 16, Ops: 96}
	if testing.Short() {
		cfg.Sessions = 24
	}
	if err := Selftest(cfg, t.Logf); err != nil {
		t.Fatal(err)
	}
}
