package serve

// Restart recovery: rebuilding a server's sessions and snapshots from
// the durable store after a crash. Call Recover on a freshly built
// Server (same Shards and Sim configuration that wrote the store)
// before Start.
//
// Per session directory:
//
//  1. Stale .tmp files from torn atomic writes are removed; a missing
//     snap file means the crash beat the first meta write — the session
//     was never acked and its directory is cleaned up.
//  2. The WAL is scanned record by record; a torn or corrupt tail is
//     rolled back to the last intact record (TailRollbacks), and
//     records older than the meta's walSeq — leftovers of a checkpoint
//     that crashed between meta write and WAL reset — are dropped.
//  3. Raw sessions rebuild machine state from the snapshot and replay
//     the surviving records. A dangling relocation intent at the tail
//     (the crash hit between intent and commit) is scavenged forward
//     with the fault package's journal machinery — the disk-layer twin
//     of repairing a torn in-memory relocation. App sessions re-execute
//     deterministically from their create request, re-granting the
//     largest journaled cumulative step total.
//
// Anything that fails validation counts as Damaged and stays on disk,
// unrecovered, for inspection; recovery never guesses.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
	"memfwd/internal/sim"
)

// RecoverReport summarizes what Recover rebuilt and repaired.
type RecoverReport struct {
	Sessions       int `json:"sessions"`
	Snapshots      int `json:"snapshots"`
	ReplayedOps    int `json:"replayedOps"`
	ReplayedGrants int `json:"replayedGrants"`
	TailRollbacks  int `json:"tailRollbacks"`
	Scavenges      int `json:"scavenges"`
	Damaged        int `json:"damaged"`
}

// Recover scans the configured store and re-materializes every
// recoverable session and snapshot into the server. It must run before
// Start, on a server built with the same Shards and Sim configuration
// that wrote the store.
func (sv *Server) Recover() (RecoverReport, error) {
	var rep RecoverReport
	st := sv.cfg.Store
	if st == nil {
		return rep, errors.New("serve: recover needs a configured store")
	}
	if err := sv.recoverSessions(st, &rep); err != nil {
		return rep, err
	}
	if err := sv.recoverSnapshots(st, &rep); err != nil {
		return rep, err
	}
	sv.mu.Lock()
	sv.recovered = rep
	sv.mu.Unlock()
	return rep, nil
}

func (sv *Server) recoverSessions(st *Store, rep *RecoverReport) error {
	dir := filepath.Join(st.cfg.Dir, "sessions")
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, id := range names {
		bumpCounter(&sv.nextSession, id, "s-")
		s, err := sv.recoverSession(st, id, rep)
		if err != nil {
			rep.Damaged++
			continue
		}
		if s == nil {
			continue // unacked creation, cleaned up
		}
		shardID := int(s.shard.Load())
		sv.mu.Lock()
		sv.sessions[s.ID] = s
		sv.mu.Unlock()
		sv.shards[shardID].active.Add(1)
		rep.Sessions++
	}
	return nil
}

// bumpCounter advances an id counter past a recovered "<prefix>N" name
// so new ids never collide with recovered ones. Recovery is
// single-threaded, so Load+Store does not race.
func bumpCounter(ctr *atomic.Uint64, name, prefix string) {
	if !strings.HasPrefix(name, prefix) {
		return
	}
	n, err := strconv.ParseUint(strings.TrimPrefix(name, prefix), 10, 64)
	if err != nil {
		return
	}
	if n > ctr.Load() {
		ctr.Store(n)
	}
}

// recoverSession rebuilds one session from its directory. A nil, nil
// return means there was nothing durable to recover (creation never
// acked). Errors mean damage: the caller counts it and moves on.
func (sv *Server) recoverSession(st *Store, id string, rep *RecoverReport) (*Session, error) {
	os.Remove(st.sessionSnapPath(id) + ".tmp") //nolint:errcheck // stale torn write
	data, err := os.ReadFile(st.sessionSnapPath(id))
	if os.IsNotExist(err) {
		// The crash beat the first meta write; the session was never
		// acknowledged to anyone.
		os.RemoveAll(st.sessionDir(id)) //nolint:errcheck // best-effort
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	meta, err := decodeSessionMeta(data)
	if err != nil {
		return nil, err
	}
	if meta.id != id {
		return nil, fmt.Errorf("serve: session dir %q holds meta for %q", id, meta.id)
	}
	if meta.shard < 0 || meta.shard >= len(sv.shards) {
		return nil, fmt.Errorf("serve: session %s on shard %d, server has %d", id, meta.shard, len(sv.shards))
	}

	recs, validLen, rolledBack, err := st.readWAL(id)
	if err != nil {
		return nil, err
	}
	if rolledBack {
		if err := os.Truncate(st.sessionWALPath(id), validLen); err != nil {
			return nil, err
		}
		rep.TailRollbacks++
	}
	// Drop records a crashed checkpoint already folded into the meta,
	// then insist the survivors are the contiguous run the append
	// protocol guarantees.
	live := recs[:0]
	for _, rec := range recs {
		if rec.seq >= meta.walSeq {
			live = append(live, rec)
		}
	}
	for i, rec := range live {
		if rec.seq != meta.walSeq+uint64(i) {
			return nil, fmt.Errorf("serve: session %s WAL seq %d, want %d", id, rec.seq, meta.walSeq+uint64(i))
		}
	}
	if len(live) == 0 && validLen > 0 {
		// Every record was stale: finish the checkpoint's interrupted
		// reset so the file and the meta agree again.
		if err := os.Truncate(st.sessionWALPath(id), 0); err != nil {
			return nil, err
		}
		validLen = 0
	}

	var s *Session
	if meta.mode == "raw" {
		s, err = sv.recoverRawSession(meta, live, rep)
	} else {
		s, err = sv.recoverAppSession(meta, live, rep)
	}
	if err != nil {
		return nil, err
	}
	nextSeq := meta.walSeq
	if n := len(live); n > 0 {
		nextSeq = live[n-1].seq + 1
	}
	l, err := st.openSessionLog(id, validLen, nextSeq, len(live))
	if err != nil {
		s.mu.Lock()
		s.close()
		s.mu.Unlock()
		return nil, err
	}
	s.log = l
	return s, nil
}

// recoverRawSession rebuilds a raw session: decode the snapshot state,
// load it into a fresh machine, replay the WAL.
func (sv *Server) recoverRawSession(meta *sessionMeta, recs []*walRecord, rep *RecoverReport) (*Session, error) {
	mst, err := sim.DecodeState(meta.state)
	if err != nil {
		return nil, err
	}
	var req createRequest
	if len(meta.req) > 0 {
		json.Unmarshal(meta.req, &req) //nolint:errcheck // cosmetic fields only
	}
	s := &Session{
		ID:    meta.id,
		Mode:  "raw",
		Tiers: req.Tiers,
		cfg:   mst.Config(),
		hub:   obs.NewBroadcaster(),
	}
	s.shard.Store(int32(meta.shard))
	s.tr = obs.NewTracer(obs.NoClose(s.hub), 32)
	m := sim.New(mst.Config())
	if err := m.LoadState(mst); err != nil {
		return nil, fmt.Errorf("serve: recover %s: %w", meta.id, err)
	}
	m.SetTracer(s.tr)
	s.m = m
	s.reqJSON = meta.req
	s.rawOps = meta.rawOps
	s.arenaOff = meta.arenaOff
	s.arenaNext = shardArenaBase(meta.shard) + meta.arenaOff
	if err := sv.replayRaw(s, recs, rep); err != nil {
		return nil, fmt.Errorf("serve: recover %s: %w", meta.id, err)
	}
	return s, nil
}

// replayRaw re-executes journaled records against a session restored
// to its snapshot state. Every record journaled a deterministic
// operation that succeeded (or, for relocations, whose outcome was
// journaled), so replay divergence means damage.
func (sv *Server) replayRaw(s *Session, recs []*walRecord, rep *RecoverReport) error {
	for i := 0; i < len(recs); i++ {
		rec := recs[i]
		switch rec.kind {
		case recOp:
			req := opRequest{Op: opNameFor(rec.opCode), Addr: rec.addr, Size: rec.size, Value: rec.value}
			if _, err := s.execOp(req); err != nil {
				return fmt.Errorf("replay %s (seq %d): %w", req.Op, rec.seq, err)
			}
			rep.ReplayedOps++
		case recIntent:
			if rec.tgt != uint64(s.arenaNext) {
				return fmt.Errorf("replay intent (seq %d): target %#x, cursor at %#x", rec.seq, rec.tgt, s.arenaNext)
			}
			bytes := (uint64(rec.words)*mem.WordSize + 0xFFF) &^ uint64(0xFFF)
			s.arenaNext += mem.Addr(bytes)
			s.arenaOff += mem.Addr(bytes)
			if i+1 < len(recs) {
				commit := recs[i+1]
				if commit.kind != recCommit || commit.tgt != rec.tgt {
					return fmt.Errorf("replay intent (seq %d): not followed by its commit", rec.seq)
				}
				i++
				// Re-run the relocation exactly as the original did — a
				// failed attempt also ran against the machine, so a
				// journaled failure is replayed, not skipped.
				err := s.tryRelocate(mem.Addr(rec.src), mem.Addr(rec.tgt), rec.words)
				if (err == nil) != commit.ok {
					return fmt.Errorf("replay relocate (seq %d): outcome %v, journal says ok=%v", rec.seq, err, commit.ok)
				}
				rep.ReplayedOps++
				continue
			}
			// Dangling intent at the tail: the crash hit after the intent
			// was durable but before the commit. The in-memory relocation
			// may have completed, partially run, or never started — from
			// the snapshot+replay state all three look the same, and the
			// journal roll-forward drives it to completion (relocation
			// never changes the digest modulo forwarding, so either
			// allowed post-crash state has the same digest).
			j := &fault.Journal{Active: true, Src: mem.Addr(rec.src), Tgt: mem.Addr(rec.tgt), NWords: rec.words}
			if _, err := fault.Scavenge(s.m.Mem, s.m.Fwd, j, nil); err != nil {
				return fmt.Errorf("replay scavenge (seq %d): %w", rec.seq, err)
			}
			rep.Scavenges++
		case recCommit:
			return fmt.Errorf("replay: commit (seq %d) without an intent", rec.seq)
		case recGrant:
			return fmt.Errorf("replay: grant record (seq %d) in a raw session", rec.seq)
		}
	}
	return nil
}

// recoverAppSession rebuilds an app session by deterministic
// re-execution: the create request reconstructs the exact app, chaos,
// scheduler, and tier stack, and re-granting the largest journaled
// cumulative step total replays the guest to where the crashed server
// had acknowledged it.
func (sv *Server) recoverAppSession(meta *sessionMeta, recs []*walRecord, rep *RecoverReport) (*Session, error) {
	var req createRequest
	if err := json.Unmarshal(meta.req, &req); err != nil {
		return nil, fmt.Errorf("serve: recover %s: bad create request: %w", meta.id, err)
	}
	var maxUsed int64
	grants := 0
	for _, rec := range recs {
		if rec.kind != recGrant {
			return nil, fmt.Errorf("serve: recover %s: record kind %d in an app WAL", meta.id, rec.kind)
		}
		if rec.used > maxUsed {
			maxUsed = rec.used
		}
		grants++
	}
	s, err := newSession(meta.id, meta.shard, sv.cfg.Sim, req)
	if err != nil {
		return nil, fmt.Errorf("serve: recover %s: %w", meta.id, err)
	}
	s.reqJSON = meta.req
	if maxUsed > 0 {
		s.g.step(maxUsed)
	}
	rep.ReplayedGrants += grants
	return s, nil
}

func (sv *Server) recoverSnapshots(st *Store, rep *RecoverReport) error {
	dir := filepath.Join(st.cfg.Dir, "snapshots")
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) //nolint:errcheck // stale torn write
			continue
		}
		if strings.HasSuffix(name, ".bin") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		id := strings.TrimSuffix(name, ".bin")
		bumpCounter(&sv.nextSnap, id, "snap-")
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			rep.Damaged++
			continue
		}
		sf, err := decodeSnapFile(data)
		if err != nil {
			rep.Damaged++
			continue
		}
		mst, err := sim.DecodeState(sf.state)
		if err != nil {
			rep.Damaged++
			continue
		}
		sv.mu.Lock()
		sv.snaps[id] = &storedSnapshot{
			st:       mst,
			ops:      sf.ops,
			arenaOff: sf.arenaOff,
			from:     sf.from,
			mode:     sf.mode,
		}
		sv.mu.Unlock()
		rep.Snapshots++
	}
	return nil
}
