// Package serve is the long-running session server over the simulator:
// a pool of sim.Machines sharded across worker shards, driven by many
// concurrent HTTP clients through create-session / op / step /
// snapshot / restore / migrate / stats requests. The enabling
// primitive is the full machine snapshot (sim.SaveState/LoadState):
// because the entire architectural and micro-architectural state of a
// machine can be captured byte-exactly and re-instantiated elsewhere,
// a session can be suspended mid-run — even mid-chaos-episode — moved
// to another shard, and resumed with bit-identical behaviour.
//
// Concurrency model, in one paragraph: every session's machine is
// touched by exactly one goroutine at a time. Raw sessions serialize
// guest operations under the session mutex. App sessions run the
// application on a dedicated runner goroutine that executes against a
// rebindable machine proxy; the proxy charges every guest operation
// against a budget gate, so the runner only ever advances when a
// client has granted budget via /step, and parks between operations
// otherwise. Control-plane work (digest, snapshot, migration) first
// parks the runner at an operation boundary (gate.pause), does its
// work, and lets the runner continue — the gate's mutex provides the
// happens-before edge that makes the machine hand-off race-clean.
package serve

import "sync"

// killed is the sentinel panic value used to unwind a parked runner
// goroutine out of a session that is being deleted mid-run.
type killed struct{}

// gate meters a runner goroutine in guest operations. The runner calls
// tick before every counted operation; controllers grant budget with
// step, park the runner with pause/resume, and tear it down with kill.
type gate struct {
	mu   sync.Mutex
	cond *sync.Cond

	budget int64 // operations the runner may still perform
	paused int   // pause depth; > 0 parks the runner at the next tick
	parked bool  // runner is waiting inside tick
	done   bool  // runner returned (normally or by panic)
	killed bool  // next tick must unwind the runner
	used   int64 // total operations consumed over the session's life
}

func newGate() *gate {
	g := &gate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// tick consumes one unit of budget, parking until budget is available
// and no pause is in force. Called by the proxy before every counted
// guest operation (loads, stores, mallocs, frees); panics with killed
// when the session is being torn down.
func (g *gate) tick() {
	g.mu.Lock()
	for (g.budget <= 0 || g.paused > 0) && !g.killed {
		g.parked = true
		g.cond.Broadcast()
		g.cond.Wait()
	}
	g.parked = false
	if g.killed {
		g.mu.Unlock()
		panic(killed{})
	}
	g.budget--
	g.used++
	if g.budget == 0 {
		g.cond.Broadcast() // wake a step waiter: grant exhausted
	}
	g.mu.Unlock()
}

// step grants n additional guest operations and blocks until they are
// consumed or the run finishes, returning the total operations consumed
// so far and whether the run is done. A pause in force does not abort
// the grant — the runner resumes consuming it once resumed. A
// non-positive n grants nothing and returns the current state
// immediately: it must not turn into a wait on budget some *earlier*
// step granted (the HTTP layer rejects such requests, but the gate is
// safe against them regardless).
func (g *gate) step(n int64) (used int64, done bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n <= 0 {
		return g.used, g.done
	}
	g.budget += n
	g.cond.Broadcast()
	for g.budget > 0 && !g.done {
		g.cond.Wait()
	}
	return g.used, g.done
}

// drain blocks until every previously granted operation is consumed or
// the run finishes — the wait-only behaviour step(0) used to have by
// accident, as an explicit primitive for controllers that want it.
func (g *gate) drain() (used int64, done bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.budget > 0 && !g.done {
		g.cond.Wait()
	}
	return g.used, g.done
}

// pause parks the runner at its next operation boundary and returns
// once it is parked (or the run has finished). Callers own the machine
// until the matching resume. Pauses nest.
func (g *gate) pause() {
	g.mu.Lock()
	g.paused++
	for !g.parked && !g.done {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// resume undoes one pause.
func (g *gate) resume() {
	g.mu.Lock()
	g.paused--
	g.cond.Broadcast()
	g.mu.Unlock()
}

// kill unwinds the runner (its next tick panics with the killed
// sentinel, which the runner recovers) and waits for it to finish.
// Safe to call on an already-finished run.
func (g *gate) kill() {
	g.mu.Lock()
	g.killed = true
	g.cond.Broadcast()
	for !g.done {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// finish marks the run complete; called by the runner on the way out.
func (g *gate) finish() {
	g.mu.Lock()
	g.done = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

// ops returns the total operations consumed so far.
func (g *gate) ops() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// finished reports whether the run is done.
func (g *gate) finished() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.done
}
