package serve

import (
	"testing"

	"memfwd"
	"memfwd/internal/apps/app"
	"memfwd/internal/sim"
)

// TestTieredAppSessionEndToEnd drives an app session on a tiered
// machine with the online migrator enabled, over real HTTP: the run is
// stepped, live-migrated to another shard mid-run (the daemon's policy
// state must survive the machine swap), and stepped to completion. The
// result checksum must equal an undisturbed untiered run — online
// tiering re-decides placement, never what the program computes — and
// the control plane must expose the daemon's accounting on /stats and
// /metrics.
func TestTieredAppSessionEndToEnd(t *testing.T) {
	const seed = 5
	a, ok := memfwd.AppByName("health")
	if !ok {
		t.Fatal("health app not registered")
	}
	baseline := a.Run(sim.New(sim.Config{}), app.Config{Seed: seed, Scale: 1})

	sv := startServer(t, Config{Shards: 2})
	var info sessionInfo
	call(t, sv, "POST", "/sessions", createRequest{Mode: "health", Seed: seed, Tiers: 2}, &info)
	if info.Tiers != 2 {
		t.Fatalf("created %+v, want tiers=2", info)
	}

	step := func(ops int64) stepResponse {
		var resp stepResponse
		call(t, sv, "POST", "/sessions/"+info.ID+"/step", map[string]int64{"ops": ops}, &resp)
		return resp
	}
	type statsResp struct {
		Session sessionInfo `json:"session"`
		Tier    *tierView   `json:"tier"`
	}

	// Run far enough for the migrator to have woken, then check the
	// stats plane sees it.
	if resp := step(150_000); resp.Done {
		t.Fatal("health finished within the first step grant; the mid-run checks below would be vacuous")
	}
	var mid statsResp
	call(t, sv, "GET", "/sessions/"+info.ID+"/stats", nil, &mid)
	if mid.Tier == nil {
		t.Fatal("/stats on a tiered session has no tier section")
	}
	if mid.Tier.Stats.Wakes == 0 {
		t.Fatalf("migrator never woke in 150k ops: %+v", mid.Tier.Stats)
	}

	// Live-migrate mid-run: the daemon and its heat map are host state
	// and must reattach to the swapped-in machine.
	to := (info.Shard + 1) % 2
	call(t, sv, "POST", "/sessions/"+info.ID+"/migrate", map[string]int{"shard": to}, &info)
	if info.Shard != to {
		t.Fatalf("migrated to shard %d, want %d", info.Shard, to)
	}
	mets := sv.MetricsSnapshot()
	if mets["serve.tier.sessions"] != 1 {
		t.Fatalf("serve.tier.sessions = %v, want 1", mets["serve.tier.sessions"])
	}
	if mets["serve.tier.wakes"] == 0 {
		t.Fatal("serve.tier.wakes gauge is zero with a woken migrator")
	}

	var final *stepResult
	for i := 0; i < 10_000 && final == nil; i++ {
		if resp := step(200_000); resp.Done {
			final = resp.Result
		}
	}
	if final == nil {
		t.Fatal("run never finished")
	}
	if final.Err != "" {
		t.Fatalf("run failed: %s", final.Err)
	}
	if final.Checksum != baseline.Checksum {
		t.Fatalf("tiered checksum %#x != untiered baseline %#x: the migrator changed what the program computed",
			final.Checksum, baseline.Checksum)
	}

	var fin statsResp
	call(t, sv, "GET", "/sessions/"+info.ID+"/stats", nil, &fin)
	if fin.Tier == nil || !fin.Session.Done {
		t.Fatalf("final stats %+v", fin.Session)
	}
	if fin.Tier.Stats.Demotions == 0 || fin.Tier.Stats.Placed == 0 {
		t.Fatalf("daemon idle over a full health run: %+v", fin.Tier.Stats)
	}
	if fin.Tier.Stats.Wakes < mid.Tier.Stats.Wakes {
		t.Fatalf("wakes went backwards across migration: %d -> %d", mid.Tier.Stats.Wakes, fin.Tier.Stats.Wakes)
	}

	call(t, sv, "DELETE", "/sessions/"+info.ID, nil, nil)
	if n := sv.MetricsSnapshot()["serve.tier.sessions"]; n != 0 {
		t.Fatalf("serve.tier.sessions = %v after delete, want 0", n)
	}
}

// TestTieredRawSessionAndValidation: a raw session accepts tier
// geometry (the machine's far window is real, latency-wise) but runs no
// daemon, and a tiers=1 request is a client error, not a panic.
func TestTieredRawSessionAndValidation(t *testing.T) {
	sv := startServer(t, Config{Shards: 1})

	if err := callErr(sv, "POST", "/sessions", createRequest{Tiers: 1}, nil); err == nil {
		t.Fatal("tiers=1 accepted; want HTTP 400")
	}

	var info sessionInfo
	call(t, sv, "POST", "/sessions", createRequest{Mode: "raw", Tiers: 3}, &info)
	if info.Tiers != 3 {
		t.Fatalf("created %+v, want tiers=3", info)
	}
	var blk opResult
	call(t, sv, "POST", "/sessions/"+info.ID+"/op", opRequest{Op: "malloc", Size: 64}, &blk)
	call(t, sv, "POST", "/sessions/"+info.ID+"/op",
		opRequest{Op: "store", Addr: blk.Addr, Value: 7}, nil)
	var v opResult
	call(t, sv, "POST", "/sessions/"+info.ID+"/op", opRequest{Op: "load", Addr: blk.Addr}, &v)
	if v.Value != 7 {
		t.Fatalf("load = %d, want 7", v.Value)
	}
	// No daemon: /stats must not grow a tier section.
	var st struct {
		Tier *tierView `json:"tier"`
	}
	call(t, sv, "GET", "/sessions/"+info.ID+"/stats", nil, &st)
	if st.Tier != nil {
		t.Fatalf("raw session exposes a migrator: %+v", st.Tier)
	}
}
