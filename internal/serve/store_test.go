package serve

import (
	"os"
	"testing"
	"time"

	"memfwd/internal/fault"
	"memfwd/internal/wire"
)

// noSleep is the backoff seam for tests that should not wait out real
// retry delays.
func noSleep(time.Duration) {}

// openTestStore opens a store in a fresh temp dir with instant backoff.
func openTestStore(t testing.TB, cfg StoreConfig) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Sleep == nil {
		cfg.Sleep = noSleep
	}
	st, err := OpenStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestWALRecordCodecRoundTrip: every record kind survives the
// encode / frame / decode cycle exactly.
func TestWALRecordCodecRoundTrip(t *testing.T) {
	records := []*walRecord{
		{seq: 1, kind: recOp, opCode: opMalloc, addr: 0, size: 128},
		{seq: 2, kind: recOp, opCode: opStore, addr: 0x1008, size: 8, value: 0xDEAD},
		{seq: 3, kind: recOp, opCode: opFBit, addr: 0x1000},
		{seq: 4, kind: recIntent, src: 0x1000, tgt: 0x4_0000_0000, words: 16},
		{seq: 5, kind: recCommit, tgt: 0x4_0000_0000, ok: true},
		{seq: 6, kind: recCommit, tgt: 0x4_0000_1000, ok: false},
		{seq: 7, kind: recGrant, used: 1 << 40},
	}
	var buf []byte
	for _, rec := range records {
		buf = rec.encode(buf)
	}
	rest := buf
	for i, want := range records {
		payload, next, err := wire.NextRecord(rest)
		if err != nil || payload == nil {
			t.Fatalf("record %d: NextRecord: payload=%v err=%v", i, payload, err)
		}
		got, err := decodeWALRecord(payload)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if *got != *want {
			t.Fatalf("record %d round-trip: got %+v, want %+v", i, got, want)
		}
		rest = next
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after all records", len(rest))
	}
}

// TestSessionMetaCodec: the snapshot-file payload round-trips, and any
// single corrupt byte or truncation is rejected cleanly, never decoded.
func TestSessionMetaCodec(t *testing.T) {
	meta := &sessionMeta{
		id:       "s-7",
		mode:     "raw",
		shard:    3,
		req:      []byte(`{"mode":"raw"}`),
		rawOps:   42,
		arenaOff: 0x3000,
		walSeq:   9,
		state:    []byte{1, 2, 3, 4, 5, 6, 7, 8},
	}
	frame := meta.encode()
	got, err := decodeSessionMeta(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.id != meta.id || got.mode != meta.mode || got.shard != meta.shard ||
		got.rawOps != meta.rawOps || got.arenaOff != meta.arenaOff || got.walSeq != meta.walSeq ||
		string(got.req) != string(meta.req) || string(got.state) != string(meta.state) {
		t.Fatalf("round-trip: got %+v, want %+v", got, meta)
	}
	for i := range frame {
		corrupt := append([]byte(nil), frame...)
		corrupt[i] ^= 0x40
		if _, err := decodeSessionMeta(corrupt); err == nil {
			t.Fatalf("flipped byte %d accepted", i)
		}
	}
	for n := 0; n < len(frame); n += 7 {
		if _, err := decodeSessionMeta(frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
}

// TestReadWALRollsBackDamagedTail: garbage (or a torn record) after the
// last intact record is rolled back, keeping the valid prefix.
func TestReadWALRollsBackDamagedTail(t *testing.T) {
	st := openTestStore(t, StoreConfig{})
	l, err := st.openSessionLog("s-1", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.append(&walRecord{kind: recOp, opCode: opMalloc, size: 64}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.sync(); err != nil {
		t.Fatal(err)
	}
	wantLen := l.end
	if err := l.close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(st.sessionWALPath("s-1"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn garbage after the last fsync")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, validLen, rolledBack, err := st.readWAL("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if !rolledBack {
		t.Fatal("damaged tail not reported")
	}
	if validLen != wantLen {
		t.Fatalf("valid prefix %d bytes, want %d", validLen, wantLen)
	}
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.seq != uint64(1+i) || rec.kind != recOp || rec.opCode != opMalloc {
			t.Fatalf("record %d: %+v", i, rec)
		}
	}
}

// TestRetryBackoffSchedule: transient faults are retried through the
// Sleep seam with doubling backoff, and the write eventually lands
// intact.
func TestRetryBackoffSchedule(t *testing.T) {
	var slept []time.Duration
	st := openTestStore(t, StoreConfig{
		Retries:      3,
		RetryBackoff: time.Millisecond,
		Sleep:        func(d time.Duration) { slept = append(slept, d) },
	})
	st.SetDiskInjector(fault.NewDisk(11).
		Arm(fault.DiskShort, fault.DiskWALAppend, 1).
		Arm(fault.DiskShort, fault.DiskWALAppend, 2))
	l, err := st.openSessionLog("s-1", 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.append(&walRecord{kind: recGrant, used: 99}); err != nil {
		t.Fatalf("append after transient faults: %v", err)
	}
	if err := l.sync(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoff schedule %v, want %v", slept, want)
	}
	if got := st.retries.Load(); got != 2 {
		t.Fatalf("retries counter %d, want 2", got)
	}
	if st.Dead() {
		t.Fatal("store died on a transient fault")
	}
	recs, _, rolledBack, err := st.readWAL("s-1")
	if err != nil || rolledBack || len(recs) != 1 || recs[0].used != 99 {
		t.Fatalf("post-retry WAL: recs=%v rolledBack=%v err=%v", recs, rolledBack, err)
	}
}

// TestAtomicReplaceKeepsOldFileAcrossCrash: a crash before the rename
// leaves the previous snapshot file untouched and decodable.
func TestAtomicReplaceKeepsOldFileAcrossCrash(t *testing.T) {
	st := openTestStore(t, StoreConfig{})
	old := &sessionMeta{id: "s-1", mode: "raw", walSeq: 1, rawOps: 7}
	if err := st.writeSessionMeta(old); err != nil {
		t.Fatal(err)
	}
	st.SetDiskInjector(fault.NewDisk(5).Arm(fault.DiskCrash, fault.DiskSnapRename, 1))
	if err := st.writeSessionMeta(&sessionMeta{id: "s-1", mode: "raw", walSeq: 9, rawOps: 8}); err == nil {
		t.Fatal("crash before rename reported success")
	}
	if !st.Dead() {
		t.Fatal("fatal fault did not latch the store dead")
	}
	data, err := os.ReadFile(st.sessionSnapPath("s-1"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSessionMeta(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.rawOps != old.rawOps || got.walSeq != old.walSeq {
		t.Fatalf("live file holds %+v, want the pre-crash meta %+v", got, old)
	}
}

// BenchmarkWALAppend is the WAL hot-path leg of BENCH_store.json:
// encode + positioned write + read-back verification, no fsync.
func BenchmarkWALAppend(b *testing.B) {
	st := openTestStore(b, StoreConfig{Dir: b.TempDir()})
	l, err := st.openSessionLog("bench", 0, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer l.close()
	rec := &walRecord{kind: recOp, opCode: opStore, addr: 0x1008, size: 8, value: 0xABCD}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.append(rec); err != nil {
			b.Fatal(err)
		}
	}
}
