package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"memfwd/internal/sim"
)

// BenchmarkServeRawOps measures raw guest-operation throughput over
// real HTTP in batches of 32 (the selftest's batch size), the unit the
// load harness is built from.
func BenchmarkServeRawOps(b *testing.B) {
	sv := New(Config{Shards: 1})
	if err := sv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer sv.Close()
	s, err := sv.createSession(createRequest{})
	if err != nil {
		b.Fatal(err)
	}
	var blk opResult
	if err := benchPost(sv, s.ID, opRequest{Op: "malloc", Size: 4096}, &blk); err != nil {
		b.Fatal(err)
	}

	const batch = 32
	ops := make([]opRequest, batch)
	for i := range ops {
		if i%2 == 0 {
			ops[i] = opRequest{Op: "store", Addr: blk.Addr + uint64(i*8), Value: uint64(i)}
		} else {
			ops[i] = opRequest{Op: "load", Addr: blk.Addr + uint64((i-1)*8)}
		}
	}
	req := opRequest{Ops: ops}

	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		if err := benchPost(sv, s.ID, req, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N), "guest_ops")
}

// BenchmarkServeMigrate measures the full suspend → SaveState →
// LoadState → resume cycle on a session with a populated heap: the
// cost of re-homing one session between shards.
func BenchmarkServeMigrate(b *testing.B) {
	sv := New(Config{Shards: 2, Sim: sim.Config{}})
	s, err := sv.createSession(createRequest{})
	if err != nil {
		b.Fatal(err)
	}
	// ~256 KiB of touched heap across 64 blocks, some forwarded.
	s.mu.Lock()
	for i := 0; i < 64; i++ {
		blk, err := s.execOp(opRequest{Op: "malloc", Size: 4096})
		if err != nil {
			b.Fatal(err)
		}
		for w := 0; w < 512; w += 8 {
			if _, err := s.execOp(opRequest{Op: "store", Addr: blk.Addr + uint64(w*8), Value: uint64(i*w + 1)}); err != nil {
				b.Fatal(err)
			}
		}
		if i%8 == 0 {
			if _, err := s.execOp(opRequest{Op: "relocate", Addr: blk.Addr}); err != nil {
				b.Fatal(err)
			}
		}
	}
	s.mu.Unlock()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sv.migrateSession(s, i%2); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPost(sv *Server, sessionID string, req opRequest, out any) error {
	buf, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := http.Post("http://"+sv.Addr()+"/sessions/"+sessionID+"/op", "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("op: %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
