package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"memfwd/internal/mem"
	"memfwd/internal/opt"
	"memfwd/internal/oracle"
	"memfwd/internal/sim"
)

// SelftestConfig sizes the load harness. Zero fields take defaults.
type SelftestConfig struct {
	Sessions int   // concurrent synthetic sessions (default 1000)
	Shards   int   // server shards (default 4)
	Workers  int   // concurrent HTTP driver goroutines (default 32)
	Ops      int   // script length per session (default 160)
	Seed     int64 // base seed; session i runs script Seed+i (default 1)
	Sim      sim.Config

	// Short shrinks the zero-field defaults (200 sessions, 16 workers,
	// 80 ops) for quick smoke runs; explicitly set fields still win.
	Short bool
}

func (c SelftestConfig) norm() SelftestConfig {
	if c.Short {
		if c.Sessions <= 0 {
			c.Sessions = 200
		}
		if c.Workers <= 0 {
			c.Workers = 16
		}
		if c.Ops <= 0 {
			c.Ops = 80
		}
	}
	if c.Sessions <= 0 {
		c.Sessions = 1000
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.Ops <= 0 {
		c.Ops = 160
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Selftest boots a server and drives cfg.Sessions synthetic sessions
// against it over real HTTP, proving zero cross-session state bleed:
// every session's malloc addresses, load values, and final heap digest
// must be identical to a single-session in-process reference run of
// the same seeded script. All sessions exist concurrently through the
// middle of the run; half are snapshotted and restored onto the next
// shard mid-script (checking digest equality across the restore), the
// other half live-migrate. logf (nil discards) receives progress.
func Selftest(cfg SelftestConfig, logf func(string, ...any)) error {
	cfg = cfg.norm()
	say := func(format string, args ...any) {
		if logf != nil {
			logf(format, args...)
		}
	}
	sv := New(Config{Shards: cfg.Shards, Sim: cfg.Sim})
	if err := sv.Start("127.0.0.1:0"); err != nil {
		return err
	}
	defer sv.Close()
	base := "http://" + sv.Addr()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Workers * 2,
		MaxIdleConnsPerHost: cfg.Workers * 2,
	}}

	start := time.Now()
	clients := make([]*scriptClient, cfg.Sessions)
	for i := range clients {
		clients[i] = &scriptClient{
			base:   base,
			http:   client,
			seed:   cfg.Seed + int64(i),
			shard:  i % cfg.Shards,
			shards: cfg.Shards,
			simCfg: cfg.Sim,
			split:  cfg.Ops / 2,
			nOps:   cfg.Ops,
		}
	}

	// Phase A: reference runs, session creation, first half-script.
	// After this phase every session exists concurrently.
	if err := forEach(cfg.Workers, len(clients), func(i int) error {
		return clients[i].phaseA()
	}); err != nil {
		return fmt.Errorf("serve selftest phase A: %w", err)
	}
	mets := sv.MetricsSnapshot()
	if got := int(mets["serve.sessions.active"]); got != cfg.Sessions {
		return fmt.Errorf("serve selftest: %d sessions active at peak, want %d", got, cfg.Sessions)
	}
	for i := 0; i < cfg.Shards; i++ {
		if mets[fmt.Sprintf("serve.shard.%d.active", i)] == 0 {
			return fmt.Errorf("serve selftest: shard %d hosts no sessions at peak", i)
		}
	}
	say("phase A done: %d sessions live across %d shards (%s)",
		cfg.Sessions, cfg.Shards, time.Since(start).Round(time.Millisecond))

	// Phase B: snapshot+restore or migrate mid-script, second
	// half-script, digest verification against the reference.
	if err := forEach(cfg.Workers, len(clients), func(i int) error {
		return clients[i].phaseB()
	}); err != nil {
		return fmt.Errorf("serve selftest phase B: %w", err)
	}

	// Phase C: teardown and final metrics sanity.
	if err := forEach(cfg.Workers, len(clients), func(i int) error {
		return clients[i].phaseC()
	}); err != nil {
		return fmt.Errorf("serve selftest phase C: %w", err)
	}
	mets = sv.MetricsSnapshot()
	for k, v := range mets {
		if v != scrub(v) {
			return fmt.Errorf("serve selftest: metric %s is not finite", k)
		}
	}
	if mets["serve.sessions.active"] != 0 {
		return fmt.Errorf("serve selftest: %v sessions leaked", mets["serve.sessions.active"])
	}
	say("selftest passed: %d sessions, %d shards, %.0f guest ops, %d migrations, %d restores in %s",
		cfg.Sessions, cfg.Shards, mets["serve.ops"],
		uint64(mets["serve.migrations"]), uint64(mets["serve.restores"]),
		time.Since(start).Round(time.Millisecond))
	return nil
}

// forEach runs fn(0..n-1) on `workers` goroutines, returning the first
// error (all goroutines drain before return).
func forEach(workers, n int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fn(i); err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

// --- synthetic script -------------------------------------------------

// sop is one scripted guest operation. Block references are indices
// into the session's malloc history, so the same script replays against
// any target.
type sop struct {
	kind  byte // 'm'alloc, 'f'ree, 's'tore, 'l'oad, 'r'elocate
	size  uint64
	block int
	off   uint64 // word offset within the block
	val   uint64
}

// genScript derives a deterministic operation script from a seed. The
// generator models block liveness so frees and relocations always hit
// live blocks.
func genScript(seed int64, n int) []sop {
	rng := rand.New(rand.NewSource(seed))
	type blk struct {
		size uint64
		live bool
	}
	var blocks []blk
	var liveIdx []int
	reindex := func() {
		liveIdx = liveIdx[:0]
		for i, b := range blocks {
			if b.live {
				liveIdx = append(liveIdx, i)
			}
		}
	}
	ops := make([]sop, 0, n)
	for len(ops) < n {
		k := rng.Intn(10)
		if len(liveIdx) == 0 {
			k = 0
		}
		switch {
		case k < 3: // malloc
			size := uint64(8 * (1 + rng.Intn(64)))
			blocks = append(blocks, blk{size: size, live: true})
			liveIdx = append(liveIdx, len(blocks)-1)
			ops = append(ops, sop{kind: 'm', size: size})
		case k < 6: // store
			bi := liveIdx[rng.Intn(len(liveIdx))]
			ops = append(ops, sop{kind: 's', block: bi,
				off: uint64(rng.Intn(int(blocks[bi].size / 8))), val: rng.Uint64()})
		case k < 9: // load
			bi := liveIdx[rng.Intn(len(liveIdx))]
			ops = append(ops, sop{kind: 'l', block: bi,
				off: uint64(rng.Intn(int(blocks[bi].size / 8)))})
		case k == 9 && rng.Intn(3) == 0: // free (kept rare)
			bi := liveIdx[rng.Intn(len(liveIdx))]
			blocks[bi].live = false
			reindex()
			ops = append(ops, sop{kind: 'f', block: bi})
		default: // relocate
			bi := liveIdx[rng.Intn(len(liveIdx))]
			ops = append(ops, sop{kind: 'r', block: bi})
		}
	}
	return ops
}

// fnvMix folds v into a running FNV-1a sum.
func fnvMix(h, v uint64) uint64 {
	const prime64 = 1099511628211
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime64
		v >>= 8
	}
	return h
}

// runReference executes script on a private in-process machine,
// returning the malloc address sequence, the FNV sum of load values,
// and the final heap digest. This is the single-session ground truth a
// served session must match exactly.
func runReference(simCfg sim.Config, script []sop) (addrs []uint64, loadSum, digest uint64, err error) {
	m := sim.New(simCfg)
	arena := shardArenaBase(0)
	loadSum = 14695981039346656037
	for _, op := range script {
		switch op.kind {
		case 'm':
			addrs = append(addrs, uint64(m.Malloc(op.size)))
		case 'f':
			m.Free(mem.Addr(addrs[op.block]))
		case 's':
			m.StoreWord(mem.Addr(addrs[op.block])+mem.Addr(op.off*8), op.val)
		case 'l':
			loadSum = fnvMix(loadSum, m.LoadWord(mem.Addr(addrs[op.block])+mem.Addr(op.off*8)))
		case 'r':
			size, ok := m.Allocator().SizeOf(mem.Addr(addrs[op.block]))
			if !ok {
				return nil, 0, 0, fmt.Errorf("reference: relocate of dead block %d", op.block)
			}
			bytes := (size + 0xFFF) &^ uint64(0xFFF)
			if rerr := opt.TryRelocate(m, mem.Addr(addrs[op.block]), arena, int(size/8)); rerr != nil {
				return nil, 0, 0, fmt.Errorf("reference relocate: %w", rerr)
			}
			arena += mem.Addr(bytes)
		}
	}
	digest, err = oracle.DigestModuloForwarding(m.Mem, m.Fwd, m.Alloc)
	return addrs, loadSum, digest, err
}

// scriptClient drives one synthetic session over HTTP and checks it
// against its in-process reference run.
type scriptClient struct {
	base   string
	http   *http.Client
	seed   int64
	shard  int
	shards int
	simCfg sim.Config
	split  int
	nOps   int

	script    []sop
	wantAddrs []uint64
	wantSum   uint64
	wantDig   uint64

	id      string
	nMalloc int // served mallocs verified against wantAddrs so far
	loadSum uint64
}

func (c *scriptClient) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", path, resp.Status, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func (c *scriptClient) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, data)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// runOps executes script[from:to] against the served session in
// batches. Block addresses are taken from the reference run's malloc
// sequence (so an op may reference a block malloc'd earlier in the same
// batch), and every served malloc is checked against that prediction —
// the core zero-bleed assertion: any cross-session allocator state
// leak shifts an address and trips it.
func (c *scriptClient) runOps(from, to int) error {
	const batchMax = 32
	for from < to {
		n := to - from
		if n > batchMax {
			n = batchMax
		}
		chunk := c.script[from : from+n]
		reqs := make([]opRequest, len(chunk))
		for i, op := range chunk {
			switch op.kind {
			case 'm':
				reqs[i] = opRequest{Op: "malloc", Size: op.size}
			case 'f':
				reqs[i] = opRequest{Op: "free", Addr: c.wantAddrs[op.block]}
			case 's':
				reqs[i] = opRequest{Op: "store", Addr: c.wantAddrs[op.block] + op.off*8, Value: op.val}
			case 'l':
				reqs[i] = opRequest{Op: "load", Addr: c.wantAddrs[op.block] + op.off*8}
			case 'r':
				reqs[i] = opRequest{Op: "relocate", Addr: c.wantAddrs[op.block]}
			}
		}
		var out struct {
			Results []opResult `json:"results"`
		}
		if err := c.post("/sessions/"+c.id+"/op", opRequest{Ops: reqs}, &out); err != nil {
			return err
		}
		if len(out.Results) != len(chunk) {
			return fmt.Errorf("batch returned %d results, want %d", len(out.Results), len(chunk))
		}
		for i, op := range chunk {
			switch op.kind {
			case 'm':
				got := out.Results[i].Addr
				if want := c.wantAddrs[c.nMalloc]; got != want {
					return fmt.Errorf("session %s (seed %d): malloc %d returned %#x, reference run got %#x — cross-session bleed",
						c.id, c.seed, c.nMalloc, got, want)
				}
				c.nMalloc++
			case 'l':
				c.loadSum = fnvMix(c.loadSum, out.Results[i].Value)
			}
		}
		from += n
	}
	return nil
}

func (c *scriptClient) digest() (uint64, error) {
	var out opResult
	if err := c.post("/sessions/"+c.id+"/op", opRequest{Op: "digest"}, &out); err != nil {
		return 0, err
	}
	return out.Value, nil
}

func (c *scriptClient) phaseA() error {
	c.script = genScript(c.seed, c.nOps)
	var err error
	c.wantAddrs, c.wantSum, c.wantDig, err = runReference(c.simCfg, c.script)
	if err != nil {
		return err
	}
	c.loadSum = 14695981039346656037
	var info sessionInfo
	if err := c.post("/sessions", createRequest{Mode: "raw", Shard: &c.shard}, &info); err != nil {
		return err
	}
	c.id = info.ID
	return c.runOps(0, c.split)
}

func (c *scriptClient) phaseB() error {
	next := (c.shard + 1) % c.shards
	if c.seed%2 == 0 {
		// Suspend / restore path: snapshot, restore on the next shard,
		// check the restored copy digests identically, retire the
		// original, continue on the restored session.
		preDig, err := c.digest()
		if err != nil {
			return err
		}
		var snapped struct {
			Snapshot string `json:"snapshot"`
		}
		if err := c.post("/sessions/"+c.id+"/snapshot", struct{}{}, &snapped); err != nil {
			return err
		}
		var restored sessionInfo
		if err := c.post("/restore", map[string]any{"snapshot": snapped.Snapshot, "shard": next}, &restored); err != nil {
			return err
		}
		req, _ := http.NewRequest(http.MethodDelete, c.base+"/sessions/"+c.id, nil)
		if err := c.do(req, nil); err != nil {
			return err
		}
		c.id = restored.ID
		postDig, err := c.digest()
		if err != nil {
			return err
		}
		if postDig != preDig {
			return fmt.Errorf("seed %d: digest diverged across snapshot/restore: %#x -> %#x", c.seed, preDig, postDig)
		}
	} else {
		// Live migration path: the session keeps its identity and moves.
		if err := c.post("/sessions/"+c.id+"/migrate", map[string]int{"shard": next}, nil); err != nil {
			return err
		}
	}
	c.shard = next
	if err := c.runOps(c.split, len(c.script)); err != nil {
		return err
	}
	dig, err := c.digest()
	if err != nil {
		return err
	}
	if dig != c.wantDig {
		return fmt.Errorf("seed %d: final digest %#x, reference %#x — cross-session bleed", c.seed, dig, c.wantDig)
	}
	if c.loadSum != c.wantSum {
		return fmt.Errorf("seed %d: load sum %#x, reference %#x — cross-session bleed", c.seed, c.loadSum, c.wantSum)
	}
	return nil
}

func (c *scriptClient) phaseC() error {
	req, _ := http.NewRequest(http.MethodDelete, c.base+"/sessions/"+c.id, nil)
	return c.do(req, nil)
}
