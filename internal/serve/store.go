package serve

// The durable session store: crash-safe persistence under the serve
// plane. Every session gets a directory holding an atomically-replaced
// snapshot file (meta + optional machine state, wire-framed and
// CRC-covered) and a write-ahead log of per-record-CRC'd operation
// records, so a killed server restarts as snapshot + replayed ops
// (recovery.go). Standalone /snapshot captures persist beside them.
//
// Layout under StoreConfig.Dir:
//
//	sessions/<id>/snap.bin   session meta + machine state (atomic replace)
//	sessions/<id>/wal.log    appended op records since the snapshot
//	snapshots/<snapid>.bin   server-held snapshot captures
//
// Crash model: the process can die at any persistence point, leaving
// the current write torn; completed writes survive (they are in the OS
// page cache or on disk), and the fsync seams mark the points where
// durability is guaranteed. The deterministic fault.DiskInjector
// drives exactly these points in tests — a fatal fault latches the
// store dead (everything after a simulated process death must fail),
// and recovery then proves the on-disk remains land on a no-third-state
// digest.
//
// Transient errors (short writes) are retried with bounded backoff
// through the Sleep seam; flipped bits are caught by read-back
// verification against the bytes we meant to write and retried the
// same way.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/sim"
	"memfwd/internal/wire"
)

// File-frame magics for the store's artifacts.
const (
	metaMagic   = "MFWDMETA" // sessions/<id>/snap.bin
	snapMagic   = "MFWDSNPF" // snapshots/<snapid>.bin
	metaVersion = 1
)

// ErrStoreDead reports an operation on a store that already suffered a
// fatal (process-death) fault; everything fails until a new store is
// opened over the directory, exactly as a real crash forces a restart.
var ErrStoreDead = errors.New("serve: store is dead (fatal disk fault)")

// StoreConfig configures a Store. Zero fields take defaults.
type StoreConfig struct {
	// Dir is the store's root directory (required; created if absent).
	Dir string

	// Retries bounds retry attempts for transient store errors
	// (default 3).
	Retries int

	// RetryBackoff is the first retry's delay, doubling per attempt
	// (default 2ms).
	RetryBackoff time.Duration

	// Sleep is the backoff seam (default time.Sleep); tests inject a
	// recorder to prove the backoff schedule without waiting it out.
	Sleep func(time.Duration)

	// CheckpointEvery folds the WAL back into the snapshot file after
	// this many records (default 256; raw sessions only).
	CheckpointEvery int
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 2 * time.Millisecond
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 256
	}
	return c
}

// Store is the durable layer under a Server. Its persistence methods
// are called with the owning session's lock held (or during
// single-threaded recovery), so per-session artifacts never race;
// distinct sessions write distinct files.
type Store struct {
	cfg StoreConfig
	inj *fault.DiskInjector

	dead atomic.Bool

	// Counters surface through /metrics as serve.store.*.
	appends     atomic.Uint64
	syncs       atomic.Uint64
	retries     atomic.Uint64
	failures    atomic.Uint64
	checkpoints atomic.Uint64
}

// OpenStore opens (creating if needed) a store rooted at cfg.Dir.
func OpenStore(cfg StoreConfig) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("serve: store needs a directory")
	}
	cfg = cfg.withDefaults()
	for _, d := range []string{cfg.Dir, filepath.Join(cfg.Dir, "sessions"), filepath.Join(cfg.Dir, "snapshots")} {
		if err := os.MkdirAll(d, 0o777); err != nil {
			return nil, fmt.Errorf("serve: open store: %w", err)
		}
	}
	return &Store{cfg: cfg}, nil
}

// SetDiskInjector installs (or removes, with nil) the deterministic
// disk-fault source. Test wiring; a nil injector costs one nil check
// per point.
func (st *Store) SetDiskInjector(in *fault.DiskInjector) { st.inj = in }

// DiskInjector returns the installed injector, or nil.
func (st *Store) DiskInjector() *fault.DiskInjector { return st.inj }

// Dead reports whether a fatal disk fault has latched the store dead.
func (st *Store) Dead() bool { return st.dead.Load() }

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.cfg.Dir }

func (st *Store) sessionDir(id string) string {
	return filepath.Join(st.cfg.Dir, "sessions", id)
}

func (st *Store) sessionSnapPath(id string) string {
	return filepath.Join(st.sessionDir(id), "snap.bin")
}

func (st *Store) sessionWALPath(id string) string {
	return filepath.Join(st.sessionDir(id), "wal.log")
}

func (st *Store) snapshotPath(id string) string {
	return filepath.Join(st.cfg.Dir, "snapshots", id+".bin")
}

// fatal latches the store dead and returns err.
func (st *Store) fatal(err error) error {
	st.dead.Store(true)
	st.failures.Add(1)
	return err
}

// retryLoop runs op up to 1+Retries times, backing off between
// transient failures. op reports (transient, err); a non-transient
// error aborts immediately.
func (st *Store) retryLoop(op func() (bool, error)) error {
	backoff := st.cfg.RetryBackoff
	var err error
	var transient bool
	for attempt := 0; attempt <= st.cfg.Retries; attempt++ {
		if attempt > 0 {
			st.retries.Add(1)
			st.cfg.Sleep(backoff)
			backoff *= 2
		}
		transient, err = op()
		if err == nil || !transient {
			return err
		}
	}
	st.failures.Add(1)
	return fmt.Errorf("serve: store gave up after %d retries: %w", st.cfg.Retries, err)
}

// writeFileAtomic durably replaces path with frame via the
// write-tmp / fsync / rename / fsync-dir protocol, retrying transient
// faults. Fatal faults latch the store dead; the torn tmp file (or the
// untouched live file) is exactly what a crash at that point leaves
// for recovery to deal with.
func (st *Store) writeFileAtomic(path string, frame []byte) error {
	if st.dead.Load() {
		return ErrStoreDead
	}
	return st.retryLoop(func() (bool, error) { return st.tryWriteFileAtomic(path, frame) })
}

func (st *Store) tryWriteFileAtomic(path string, frame []byte) (transient bool, err error) {
	tmp := path + ".tmp"
	data, ferr := st.inj.FilterData(fault.DiskSnapWrite, frame)
	if ferr != nil {
		var df *fault.DiskFault
		if errors.As(ferr, &df) && df.Kind == fault.DiskCrash {
			// Crash before the write: nothing reaches the disk.
			return false, st.fatal(ferr)
		}
	}
	if werr := os.WriteFile(tmp, data, 0o666); werr != nil {
		return true, werr
	}
	if ferr != nil {
		var df *fault.DiskFault
		if errors.As(ferr, &df) && df.Fatal() {
			// Torn write then death: the partial tmp file stays behind.
			return false, st.fatal(ferr)
		}
		// Short write: remove the partial and let the caller retry.
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return true, ferr
	}
	if perr := st.inj.Point(fault.DiskSnapSync); perr != nil {
		// Crash before fsync: tmp may or may not have reached disk, the
		// live file is untouched either way.
		return false, st.fatal(perr)
	}
	if serr := syncFile(tmp); serr != nil {
		return true, serr
	}
	// Read-back verification: a flipped bit on the way down is caught
	// here, before the corrupt file can be renamed over the good one.
	got, rerr := os.ReadFile(tmp)
	if rerr != nil {
		return true, rerr
	}
	if !bytesEqual(got, frame) {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return true, fmt.Errorf("serve: store verify mismatch writing %s", filepath.Base(path))
	}
	if perr := st.inj.Point(fault.DiskSnapRename); perr != nil {
		// Crash before rename: durable tmp, live file still old.
		return false, st.fatal(perr)
	}
	if rerr := os.Rename(tmp, path); rerr != nil {
		return true, rerr
	}
	if perr := st.inj.Point(fault.DiskSnapRenamed); perr != nil {
		// Crash after rename: the new file is already live.
		return false, st.fatal(perr)
	}
	syncDir(filepath.Dir(path)) //nolint:errcheck // advisory; rename already visible
	st.syncs.Add(1)
	return false, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func syncFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// --- session meta -----------------------------------------------------

// sessionMeta is the snapshot file's payload: everything needed to
// re-materialize the session except what the WAL replays. State is a
// sim.EncodeState frame for raw sessions; empty for app sessions,
// which re-execute deterministically from the create request.
type sessionMeta struct {
	id       string
	mode     string
	shard    int
	req      []byte // createRequest JSON, for app re-execution
	rawOps   uint64
	arenaOff mem.Addr
	walSeq   uint64 // first WAL sequence NOT covered by state
	state    []byte // sim.EncodeState output, or empty
}

func (m *sessionMeta) encode() []byte {
	var w wire.Writer
	w.String(m.id)
	w.String(m.mode)
	w.Int(m.shard)
	w.Blob(m.req)
	w.U64(m.rawOps)
	w.U64(uint64(m.arenaOff))
	w.U64(m.walSeq)
	w.Blob(m.state)
	return wire.SealFrame(metaMagic, metaVersion, w.Bytes())
}

func decodeSessionMeta(data []byte) (*sessionMeta, error) {
	version, payload, err := wire.OpenFrame(metaMagic, data)
	if err != nil {
		return nil, err
	}
	if version != metaVersion {
		return nil, fmt.Errorf("serve: session meta version %d, want %d", version, metaVersion)
	}
	r := wire.NewReader(payload)
	m := &sessionMeta{
		id:       r.String(),
		mode:     r.String(),
		shard:    r.Int(),
		req:      r.Blob(),
		rawOps:   r.U64(),
		arenaOff: mem.Addr(r.U64()),
		walSeq:   r.U64(),
		state:    r.Blob(),
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	if m.walSeq < 1 {
		return nil, fmt.Errorf("serve: session meta walSeq %d invalid", m.walSeq)
	}
	return m, nil
}

// writeSessionMeta durably replaces the session's snapshot file.
func (st *Store) writeSessionMeta(m *sessionMeta) error {
	if st.dead.Load() {
		return ErrStoreDead
	}
	if err := os.MkdirAll(st.sessionDir(m.id), 0o777); err != nil {
		return err
	}
	return st.writeFileAtomic(st.sessionSnapPath(m.id), m.encode())
}

// removeSession deletes a session's directory (DELETE /sessions/{id}).
func (st *Store) removeSession(id string) error {
	if st.dead.Load() {
		return ErrStoreDead
	}
	return os.RemoveAll(st.sessionDir(id))
}

// --- standalone snapshots ---------------------------------------------

// snapFile is a persisted /snapshot capture.
type snapFile struct {
	from     string
	mode     string
	ops      uint64
	arenaOff mem.Addr
	state    []byte // sim.EncodeState output
}

func (s *snapFile) encode() []byte {
	var w wire.Writer
	w.String(s.from)
	w.String(s.mode)
	w.U64(s.ops)
	w.U64(uint64(s.arenaOff))
	w.Blob(s.state)
	return wire.SealFrame(snapMagic, metaVersion, w.Bytes())
}

func decodeSnapFile(data []byte) (*snapFile, error) {
	version, payload, err := wire.OpenFrame(snapMagic, data)
	if err != nil {
		return nil, err
	}
	if version != metaVersion {
		return nil, fmt.Errorf("serve: snapshot file version %d, want %d", version, metaVersion)
	}
	r := wire.NewReader(payload)
	s := &snapFile{
		from:     r.String(),
		mode:     r.String(),
		ops:      r.U64(),
		arenaOff: mem.Addr(r.U64()),
		state:    r.Blob(),
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return s, nil
}

// writeSnapshot persists a /snapshot capture.
func (st *Store) writeSnapshot(id string, snap *storedSnapshot) error {
	if st.dead.Load() {
		return ErrStoreDead
	}
	state, err := sim.EncodeState(snap.st)
	if err != nil {
		return err
	}
	sf := &snapFile{from: snap.from, mode: snap.mode, ops: snap.ops, arenaOff: snap.arenaOff, state: state}
	return st.writeFileAtomic(st.snapshotPath(id), sf.encode())
}

// --- write-ahead log --------------------------------------------------

// WAL record kinds (first body byte after the sequence number).
const (
	recOp     = 1 // a raw guest operation (opCode + addr/size/value)
	recIntent = 2 // relocation intent: src, tgt, words
	recCommit = 3 // relocation outcome: tgt, ok
	recGrant  = 4 // app step grant: cumulative ops used
)

// Raw op codes inside recOp records.
const (
	opMalloc = 1
	opFree   = 2
	opLoad   = 3
	opStore  = 4
	opFBit   = 5
	opFinal  = 6
)

// opCodeFor maps the HTTP op grammar to WAL op codes; 0 means the op
// is not logged (digest is a pure untimed read; relocate uses
// intent/commit records).
func opCodeFor(op string) uint8 {
	switch op {
	case "malloc":
		return opMalloc
	case "free":
		return opFree
	case "load":
		return opLoad
	case "store":
		return opStore
	case "fbit":
		return opFBit
	case "final":
		return opFinal
	}
	return 0
}

func opNameFor(code uint8) string {
	switch code {
	case opMalloc:
		return "malloc"
	case opFree:
		return "free"
	case opLoad:
		return "load"
	case opStore:
		return "store"
	case opFBit:
		return "fbit"
	case opFinal:
		return "final"
	}
	return ""
}

// walRecord is one decoded WAL record.
type walRecord struct {
	seq  uint64
	kind uint8

	// recOp
	opCode uint8
	addr   uint64
	size   uint64
	value  uint64

	// recIntent / recCommit
	src   uint64
	tgt   uint64
	words int
	ok    bool

	// recGrant
	used int64
}

func (rec *walRecord) encode(dst []byte) []byte {
	var w wire.Writer
	w.Grow(40)
	w.U64(rec.seq)
	w.U8(rec.kind)
	switch rec.kind {
	case recOp:
		w.U8(rec.opCode)
		w.U64(rec.addr)
		w.U64(rec.size)
		w.U64(rec.value)
	case recIntent:
		w.U64(rec.src)
		w.U64(rec.tgt)
		w.Int(rec.words)
	case recCommit:
		w.U64(rec.tgt)
		w.Bool(rec.ok)
	case recGrant:
		w.I64(rec.used)
	}
	return wire.AppendRecord(dst, w.Bytes())
}

func decodeWALRecord(payload []byte) (*walRecord, error) {
	r := wire.NewReader(payload)
	rec := &walRecord{seq: r.U64(), kind: r.U8()}
	switch rec.kind {
	case recOp:
		rec.opCode = r.U8()
		rec.addr = r.U64()
		rec.size = r.U64()
		rec.value = r.U64()
		if opNameFor(rec.opCode) == "" {
			return nil, fmt.Errorf("serve: WAL op record with unknown code %d", rec.opCode)
		}
	case recIntent:
		rec.src = r.U64()
		rec.tgt = r.U64()
		rec.words = r.Int()
	case recCommit:
		rec.tgt = r.U64()
		rec.ok = r.Bool()
	case recGrant:
		rec.used = r.I64()
	default:
		return nil, fmt.Errorf("serve: WAL record with unknown kind %d", rec.kind)
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return rec, nil
}

// sessLog is one session's open write-ahead log. The file is opened
// read-write (not O_APPEND: retries rewrite a failed tail in place)
// and the end offset tracked explicitly. All methods are called with
// the owning session's lock held.
type sessLog struct {
	st    *Store
	f     *os.File
	end   int64  // bytes of durable, verified records
	seq   uint64 // next sequence number to assign
	recs  int    // records appended since the last checkpoint
	dirty bool   // records appended since the last sync
}

// openSessionLog opens (creating if needed) a session's WAL positioned
// at end (the validated length recovery or creation established) with
// the next sequence number seq.
func (st *Store) openSessionLog(id string, end int64, seq uint64, recs int) (*sessLog, error) {
	if st.dead.Load() {
		return nil, ErrStoreDead
	}
	if err := os.MkdirAll(st.sessionDir(id), 0o777); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(st.sessionWALPath(id), os.O_RDWR|os.O_CREATE, 0o666)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, err
	}
	return &sessLog{st: st, f: f, end: end, seq: seq, recs: recs}, nil
}

// append writes one record. The record is verified by read-back before
// the log advances, so a flipped bit or short write is retried and a
// fatal fault leaves exactly the torn tail a crash would.
func (l *sessLog) append(rec *walRecord) error {
	if l.st.dead.Load() {
		return ErrStoreDead
	}
	rec.seq = l.seq
	framed := rec.encode(nil)
	err := l.st.retryLoop(func() (bool, error) { return l.tryAppend(framed) })
	if err != nil {
		return err
	}
	l.end += int64(len(framed))
	l.seq++
	l.recs++
	l.dirty = true
	l.st.appends.Add(1)
	return nil
}

func (l *sessLog) tryAppend(framed []byte) (transient bool, err error) {
	data, ferr := l.st.inj.FilterData(fault.DiskWALAppend, framed)
	if ferr != nil {
		var df *fault.DiskFault
		if errors.As(ferr, &df) && df.Kind == fault.DiskCrash {
			return false, l.st.fatal(ferr)
		}
	}
	if _, werr := l.f.WriteAt(data, l.end); werr != nil {
		return true, werr
	}
	if ferr != nil {
		var df *fault.DiskFault
		if errors.As(ferr, &df) && df.Fatal() {
			// Torn append then death: the partial record stays as the tail.
			return false, l.st.fatal(ferr)
		}
		// Short write: roll the partial back and retry.
		if terr := l.f.Truncate(l.end); terr != nil {
			return false, l.st.fatal(terr)
		}
		return true, ferr
	}
	// Read-back verification catches silent corruption (bit flips) while
	// the bytes we meant to write are still in hand.
	got := make([]byte, len(framed))
	if _, rerr := l.f.ReadAt(got, l.end); rerr != nil {
		return true, rerr
	}
	if !bytesEqual(got, framed) {
		if terr := l.f.Truncate(l.end); terr != nil {
			return false, l.st.fatal(terr)
		}
		return true, fmt.Errorf("serve: WAL verify mismatch at offset %d", l.end)
	}
	return false, nil
}

// sync makes every appended record durable (the acknowledgement
// barrier: a batch is acked to the client only after this returns).
func (l *sessLog) sync() error {
	if l.st.dead.Load() {
		return ErrStoreDead
	}
	if !l.dirty {
		return nil
	}
	if perr := l.st.inj.Point(fault.DiskWALSync); perr != nil {
		return l.st.fatal(perr)
	}
	if err := l.f.Sync(); err != nil {
		return l.st.fatal(err)
	}
	l.dirty = false
	l.st.syncs.Add(1)
	return nil
}

// reset truncates the log after a checkpoint folded its records into
// the snapshot file. Sequence numbers keep counting — the meta's
// walSeq marks where live records start.
func (l *sessLog) reset() error {
	if l.st.dead.Load() {
		return ErrStoreDead
	}
	if perr := l.st.inj.Point(fault.DiskWALReset); perr != nil {
		return l.st.fatal(perr)
	}
	if err := l.f.Truncate(0); err != nil {
		return l.st.fatal(err)
	}
	l.end = 0
	l.recs = 0
	l.dirty = false
	return nil
}

// close releases the file handle (session close/delete; the file
// itself is removed by removeSession, kept by a plain close).
func (l *sessLog) close() error {
	if l == nil || l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// readWAL scans a session's on-disk WAL, returning every intact record
// and the byte length of the valid prefix. A torn or corrupt tail is
// reported via rolledBack (the caller truncates to validLen); damage
// *before* the tail cannot happen under the append protocol, and a
// decode failure mid-log is returned as an error.
func (st *Store) readWAL(id string) (recs []*walRecord, validLen int64, rolledBack bool, err error) {
	data, rerr := os.ReadFile(st.sessionWALPath(id))
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return nil, 0, false, nil
		}
		return nil, 0, false, rerr
	}
	rest := data
	for len(rest) > 0 {
		payload, next, nerr := wire.NextRecord(rest)
		if nerr != nil {
			// Torn tail: keep what decoded, drop the rest.
			return recs, validLen, true, nil
		}
		if payload == nil {
			break
		}
		rec, derr := decodeWALRecord(payload)
		if derr != nil {
			// Framing was intact but the body is malformed — treat it
			// and everything after as the damaged tail.
			return recs, validLen, true, nil
		}
		recs = append(recs, rec)
		validLen += int64(len(rest) - len(next))
		rest = next
	}
	return recs, validLen, false, nil
}
