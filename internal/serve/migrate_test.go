package serve

import (
	"testing"

	"memfwd"
	"memfwd/internal/apps/app"
	"memfwd/internal/oracle"
	"memfwd/internal/sim"
)

// TestSnapshotMigrateMidChaos is the acceptance proof for the session
// server: every benchmark application, run as a served session with the
// chaos relocation adversary attached, is repeatedly suspended
// mid-chaos-episode, snapshotted, restored onto a different shard, and
// migrated between shards — and still finishes with exactly the result,
// heap digest, and adversary statistics of an undisturbed control run
// on a private machine. Migration and snapshotting are therefore
// invisible to both the guest program and the adversary.
func TestSnapshotMigrateMidChaos(t *testing.T) {
	apps := memfwd.Apps()
	if testing.Short() {
		apps = apps[:3] // compress, eqntott, bh
	}
	const (
		shards    = 4
		chaosSeed = 99
		appSeed   = 7
	)
	for _, a := range apps {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()

			// Control: same app, same seeds, same adversary, one
			// machine, no interruptions.
			appCfg := app.Config{Opt: true, Seed: appSeed}
			ctrl := sim.New(sim.Config{})
			crel := oracle.NewRelocator(ctrl, chaosSeed, 0)
			wantRes := a.Run(crel, appCfg)
			ctrl.Finalize()
			wantDig, err := oracle.DigestModuloForwarding(ctrl.Mem, ctrl.Fwd, ctrl.Alloc)
			if err != nil {
				t.Fatalf("control digest: %v", err)
			}

			sv := New(Config{Shards: shards})
			s, err := sv.createSession(createRequest{
				Mode: a.Name, Opt: true, Seed: appSeed,
				Chaos: true, ChaosSeed: chaosSeed,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Step in growing quanta, bouncing the session to a new
			// shard between grants. Growing quanta keep the round count
			// (and so the per-migration full-state copy cost) bounded
			// for long apps while guaranteeing short apps still migrate
			// several times.
			var (
				quantum    int64 = 1024
				migrations int
				done       bool
			)
			for !done {
				_, done = s.g.step(quantum)
				if done {
					break
				}
				next := (int(s.shard.Load()) + 1) % shards
				if err := sv.migrateSession(s, next); err != nil {
					t.Fatalf("migration %d: %v", migrations, err)
				}
				migrations++
				if migrations == 3 {
					// Mid-run, mid-chaos-episode: snapshot, restore on
					// yet another shard, and check the restored machine
					// digests identically to the live suspended one.
					liveDig, err := func() (uint64, error) {
						s.mu.Lock()
						defer s.mu.Unlock()
						return s.digest()
					}()
					if err != nil {
						t.Fatalf("live digest: %v", err)
					}
					snapID, _ := sv.snapshotSession(s)
					restoreShard := (next + 2) % shards
					rs, err := sv.restoreSnapshot(snapID, &restoreShard)
					if err != nil {
						t.Fatalf("restore: %v", err)
					}
					rs.mu.Lock()
					restDig, err := rs.digest()
					rs.mu.Unlock()
					if err != nil {
						t.Fatalf("restored digest: %v", err)
					}
					if restDig != liveDig {
						t.Fatalf("mid-chaos restore digest %#x != live digest %#x", restDig, liveDig)
					}
					if !sv.deleteSession(rs.ID) {
						t.Fatal("restored session vanished")
					}
				}
				if quantum < 1<<20 {
					quantum *= 2
				}
			}

			gotRes, runErr := s.result()
			if runErr != nil {
				t.Fatalf("served run: %v", runErr)
			}
			if gotRes != wantRes {
				t.Errorf("result diverged:\n  served  %+v\n  control %+v", gotRes, wantRes)
			}
			if migrations < 3 {
				t.Errorf("only %d migrations; app too short for the proof", migrations)
			}

			fm := s.px.machine() // runner already finalized it on the way out
			gotDig, err := oracle.DigestModuloForwarding(fm.Mem, fm.Fwd, fm.Alloc)
			if err != nil {
				t.Fatalf("served digest: %v", err)
			}
			if gotDig != wantDig {
				t.Errorf("digest diverged: served %#x, control %#x", gotDig, wantDig)
			}
			if err := oracle.CheckMachine(fm); err != nil {
				t.Errorf("served machine invariants: %v", err)
			}

			// The adversary itself must not have noticed: identical
			// action counts mean the chaos episode replayed exactly.
			if s.rel.Relocations != crel.Relocations ||
				s.rel.Lengthenings != crel.Lengthenings ||
				s.rel.Probes != crel.Probes ||
				s.rel.CyclicProbes != crel.CyclicProbes {
				t.Errorf("adversary stats diverged:\n  served  reloc=%d length=%d probes=%d cyclic=%d\n  control reloc=%d length=%d probes=%d cyclic=%d",
					s.rel.Relocations, s.rel.Lengthenings, s.rel.Probes, s.rel.CyclicProbes,
					crel.Relocations, crel.Lengthenings, crel.Probes, crel.CyclicProbes)
			}
			if s.rel.Relocations == 0 {
				t.Error("adversary performed no relocations; proof is vacuous")
			}

			if err := sv.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
