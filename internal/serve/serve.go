package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"memfwd/internal/mem"
	"memfwd/internal/obs"
	"memfwd/internal/opt"
	"memfwd/internal/oracle"
	"memfwd/internal/report"
	"memfwd/internal/sim"
)

// Config sizes a Server. Zero fields take defaults.
type Config struct {
	// Shards is the number of worker shards sessions are distributed
	// over (default 4). Each session is owned by exactly one shard at a
	// time; migration re-homes it.
	Shards int

	// Sim configures every session's machine (zero fields take the
	// simulator defaults).
	Sim sim.Config

	// Store persists every session to disk (see store.go); nil serves
	// memory-only. A server recovering a store must be built with the
	// same Shards and Sim configuration that wrote it.
	Store *Store

	// MaxInflight caps concurrently admitted /op and /step requests per
	// shard (default 1024); excess load is shed with 429 + Retry-After
	// rather than queued without bound.
	MaxInflight int

	// QuarantineAfter takes a shard out of new-session placement after
	// this many storage strikes (default 3). Quarantined shards keep
	// serving their existing sessions — degradation, not eviction.
	QuarantineAfter int
}

// shard is one session home: a unit of placement with its own arena
// region (shardArenaBase) and counters. Sessions themselves live in the
// server-wide table; the shard records ownership accounting.
type shard struct {
	id          int
	active      atomic.Int64
	created     atomic.Uint64
	migratedIn  atomic.Uint64
	migratedOut atomic.Uint64

	// Robustness accounting: admitted-but-unfinished requests (load
	// shedding), requests shed, storage strikes, and the quarantine
	// latch strikes trip.
	inflight    atomic.Int64
	shed        atomic.Uint64
	strikes     atomic.Int64
	quarantined atomic.Bool
}

// Server owns a pool of simulated machines sharded across workers and
// serves them to concurrent clients over HTTP+JSON. See the package
// doc for the concurrency model.
type Server struct {
	cfg    Config
	shards []*shard

	ln  net.Listener
	srv *http.Server

	mu       sync.Mutex
	sessions map[string]*Session
	snaps    map[string]*storedSnapshot

	nextSession atomic.Uint64
	nextSnap    atomic.Uint64
	rr          atomic.Uint32

	created       atomic.Uint64
	closedCount   atomic.Uint64
	migrations    atomic.Uint64
	snapshots     atomic.Uint64
	restores      atomic.Uint64
	opsRetired    atomic.Uint64 // ops of closed sessions
	eventsRetired atomic.Uint64 // hub event totals of closed sessions
	dropsRetired  atomic.Uint64

	shedCount      atomic.Uint64 // requests shed with 429 across shards
	durabilityLost atomic.Uint64 // sessions dropped to memory-only

	// recovered is the last Recover() report (guarded by mu; zero when
	// the server never recovered a store).
	recovered RecoverReport
}

// storedSnapshot is one server-held machine snapshot. The underlying
// MachineState is never mutated after capture (LoadState deep-copies),
// so one snapshot can seed any number of restores.
type storedSnapshot struct {
	st       *sim.MachineState
	ops      uint64
	arenaOff mem.Addr
	from     string // session the snapshot was taken of
	mode     string
}

// New builds a server; Start binds it to a listener.
func New(cfg Config) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 1024
	}
	if cfg.QuarantineAfter <= 0 {
		cfg.QuarantineAfter = 3
	}
	sv := &Server{
		cfg:      cfg,
		sessions: make(map[string]*Session),
		snaps:    make(map[string]*storedSnapshot),
	}
	for i := 0; i < cfg.Shards; i++ {
		sv.shards = append(sv.shards, &shard{id: i})
	}
	return sv
}

// Start listens on addr (":0" picks a free port) and serves until
// Close.
func (sv *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", sv.handleIndex)
	mux.HandleFunc("GET /healthz", sv.handleHealthz)
	mux.HandleFunc("GET /metrics", sv.handleMetrics)
	mux.HandleFunc("POST /sessions", sv.handleCreate)
	mux.HandleFunc("GET /sessions", sv.handleList)
	mux.HandleFunc("GET /sessions/{id}", sv.handleStats)
	mux.HandleFunc("GET /sessions/{id}/stats", sv.handleStats)
	mux.HandleFunc("POST /sessions/{id}/op", sv.handleOp)
	mux.HandleFunc("POST /sessions/{id}/step", sv.handleStep)
	mux.HandleFunc("POST /sessions/{id}/snapshot", sv.handleSnapshot)
	mux.HandleFunc("POST /sessions/{id}/migrate", sv.handleMigrate)
	mux.HandleFunc("DELETE /sessions/{id}", sv.handleDelete)
	mux.HandleFunc("GET /sessions/{id}/events", sv.handleEvents)
	mux.HandleFunc("POST /restore", sv.handleRestore)
	sv.ln = ln
	// Hardened defaults: a stalled or hostile client cannot hold a
	// connection open indefinitely or feed an unbounded header. The
	// /step and /events handlers, which legitimately outlive these
	// deadlines, clear them per-request via http.ResponseController.
	sv.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		MaxHeaderBytes:    64 << 10,
	}
	go sv.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return nil
}

// Addr returns the bound listen address.
func (sv *Server) Addr() string { return sv.ln.Addr().String() }

// Close stops serving and tears down every session.
func (sv *Server) Close() error {
	var err error
	if sv.srv != nil {
		err = sv.srv.Close()
	}
	sv.mu.Lock()
	sessions := make([]*Session, 0, len(sv.sessions))
	for _, s := range sv.sessions {
		sessions = append(sessions, s)
	}
	sv.sessions = make(map[string]*Session)
	sv.mu.Unlock()
	for _, s := range sessions {
		sv.retire(s)
	}
	return err
}

// --- session lifecycle ------------------------------------------------

// createRequest is the POST /sessions body.
type createRequest struct {
	// Mode is "raw" (default) or a registered application name.
	Mode string `json:"mode,omitempty"`

	// Shard pins placement; nil round-robins.
	Shard *int `json:"shard,omitempty"`

	// App-mode knobs (see app.Config).
	Seed     int64 `json:"seed,omitempty"`
	Scale    int   `json:"scale,omitempty"`
	Opt      bool  `json:"opt,omitempty"`
	Prefetch bool  `json:"prefetch,omitempty"`

	// Chaos wraps the app run in the seeded relocation adversary.
	Chaos         bool  `json:"chaos,omitempty"`
	ChaosSeed     int64 `json:"chaosSeed,omitempty"`
	ChaosInterval int   `json:"chaosInterval,omitempty"`

	// Tiers builds the session's machine with n latency tiers (n >= 2;
	// 0 means untiered). App sessions additionally run under the online
	// migrator daemon; raw sessions get the tiered geometry only. The
	// remaining knobs mirror the CLI's -migrate-every, -fast-frac and
	// -tier-static flags and take the daemon's defaults when zero.
	Tiers        int     `json:"tiers,omitempty"`
	MigrateEvery int     `json:"migrateEvery,omitempty"`
	FastFrac     float64 `json:"fastFrac,omitempty"`
	TierStatic   bool    `json:"tierStatic,omitempty"`

	// Harts builds an app session's machine with n harts (n >= 2; 0 or
	// 1 means single-hart): harts 1..n-1 are relocator harts a
	// deterministic seeded scheduling group interleaves against the
	// guest's operations, racing concurrent relocations under the
	// forwarding safety net. SchedSeed seeds the interleaving and
	// SchedInterval is the mean guest operations between job launches
	// (zero takes the scheduler defaults), mirroring the CLI's -harts
	// and -sched-seed flags.
	Harts         int   `json:"harts,omitempty"`
	SchedSeed     int64 `json:"schedSeed,omitempty"`
	SchedInterval int   `json:"schedInterval,omitempty"`
}

// sessionInfo is the JSON view of a session.
type sessionInfo struct {
	ID    string `json:"id"`
	Mode  string `json:"mode"`
	Shard int    `json:"shard"`
	Chaos bool   `json:"chaos,omitempty"`
	Tiers int    `json:"tiers,omitempty"`
	Harts int    `json:"harts,omitempty"`
	Ops   uint64 `json:"ops"`
	Done  bool   `json:"done,omitempty"`
}

func (sv *Server) info(s *Session) sessionInfo {
	done := s.g != nil && s.g.finished()
	return sessionInfo{
		ID:    s.ID,
		Mode:  s.Mode,
		Shard: int(s.shard.Load()),
		Chaos: s.Chaos,
		Tiers: s.Tiers,
		Harts: s.Harts,
		Ops:   s.ops(),
		Done:  done,
	}
}

// pickShard resolves a placement request against the shard pool,
// skipping quarantined shards when round-robining. Pinning to a
// quarantined shard is refused: the client asked for a home the server
// knows it cannot keep durable.
func (sv *Server) pickShard(req *int) (int, error) {
	if req != nil {
		if *req < 0 || *req >= len(sv.shards) {
			return 0, fmt.Errorf("shard %d out of range [0,%d)", *req, len(sv.shards))
		}
		if sv.shards[*req].quarantined.Load() {
			return 0, fmt.Errorf("shard %d is quarantined", *req)
		}
		return *req, nil
	}
	for i := 0; i < len(sv.shards); i++ {
		id := int(sv.rr.Add(1)-1) % len(sv.shards)
		if !sv.shards[id].quarantined.Load() {
			return id, nil
		}
	}
	return 0, errors.New("all shards quarantined")
}

// createSession builds, persists, and registers a session (also the
// entry point the in-process proof tests use).
func (sv *Server) createSession(req createRequest) (*Session, error) {
	shardID, err := sv.pickShard(req.Shard)
	if err != nil {
		return nil, err
	}
	id := fmt.Sprintf("s-%d", sv.nextSession.Add(1))
	s, err := newSession(id, shardID, sv.cfg.Sim, req)
	if err != nil {
		return nil, err
	}
	s.reqJSON, _ = json.Marshal(req) //nolint:errcheck // plain struct cannot fail
	if err := sv.persistNewSession(s); err != nil {
		sv.strike(shardID)
		s.mu.Lock()
		s.close()
		s.mu.Unlock()
		return nil, fmt.Errorf("persist session: %w", err)
	}
	sv.mu.Lock()
	sv.sessions[id] = s
	sv.mu.Unlock()
	sv.shards[shardID].active.Add(1)
	sv.shards[shardID].created.Add(1)
	sv.created.Add(1)
	return s, nil
}

// session looks a live session up.
func (sv *Server) session(id string) (*Session, bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	s, ok := sv.sessions[id]
	return s, ok
}

// migrateSession re-homes s onto shard `to`.
func (sv *Server) migrateSession(s *Session, to int) error {
	if to < 0 || to >= len(sv.shards) {
		return fmt.Errorf("shard %d out of range [0,%d)", to, len(sv.shards))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("session %s is closed", s.ID)
	}
	from := int(s.shard.Load())
	if err := s.migrate(to); err != nil {
		return err
	}
	if from != to {
		sv.shards[from].active.Add(-1)
		sv.shards[from].migratedOut.Add(1)
		sv.shards[to].active.Add(1)
		sv.shards[to].migratedIn.Add(1)
	}
	sv.migrations.Add(1)
	// The durable meta records the shard (and, for raw sessions, the
	// arena cursor the shard implies), so it must follow the move. A
	// failed rewrite leaves a meta that would replay relocations against
	// the wrong arena region — drop durability rather than keep a lie.
	if s.log != nil {
		if err := sv.persistCheckpoint(s); err != nil {
			sv.dropDurability(s, err)
		}
	}
	return nil
}

// snapshotSession captures s into the server-held snapshot store.
func (sv *Server) snapshotSession(s *Session) (string, *storedSnapshot) {
	s.mu.Lock()
	snap := &storedSnapshot{
		st:       s.save(),
		ops:      s.ops(),
		arenaOff: s.arenaOff,
		from:     s.ID,
		mode:     s.Mode,
	}
	s.mu.Unlock()
	id := fmt.Sprintf("snap-%d", sv.nextSnap.Add(1))
	sv.mu.Lock()
	sv.snaps[id] = snap
	sv.mu.Unlock()
	sv.snapshots.Add(1)
	return id, snap
}

// restoreSnapshot instantiates a stored snapshot as a new raw session
// on the given shard (negative round-robins). App-mode snapshots also
// restore as raw sessions: the machine state is complete, but the
// application's control flow is host state that only travels with a
// live migration.
func (sv *Server) restoreSnapshot(snapID string, shardReq *int) (*Session, error) {
	sv.mu.Lock()
	snap, ok := sv.snaps[snapID]
	sv.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("unknown snapshot %q", snapID)
	}
	shardID, err := sv.pickShard(shardReq)
	if err != nil {
		return nil, err
	}
	id := fmt.Sprintf("s-%d", sv.nextSession.Add(1))
	s := &Session{
		ID:   id,
		Mode: "raw",
		cfg:  snap.st.Config(),
		hub:  obs.NewBroadcaster(),
	}
	s.shard.Store(int32(shardID))
	s.tr = obs.NewTracer(obs.NoClose(s.hub), 32)
	m := sim.New(snap.st.Config())
	if err := m.LoadState(snap.st); err != nil {
		return nil, fmt.Errorf("restore %s: %w", snapID, err)
	}
	m.SetTracer(s.tr)
	s.m = m
	s.rawOps = snap.ops
	s.arenaOff = snap.arenaOff
	s.arenaNext = shardArenaBase(shardID) + snap.arenaOff
	if err := sv.persistNewSession(s); err != nil {
		sv.strike(shardID)
		s.mu.Lock()
		s.close()
		s.mu.Unlock()
		return nil, fmt.Errorf("persist session: %w", err)
	}
	sv.mu.Lock()
	sv.sessions[id] = s
	sv.mu.Unlock()
	sv.shards[shardID].active.Add(1)
	sv.shards[shardID].created.Add(1)
	sv.created.Add(1)
	sv.restores.Add(1)
	return s, nil
}

// deleteSession removes and retires a session.
func (sv *Server) deleteSession(id string) bool {
	sv.mu.Lock()
	s, ok := sv.sessions[id]
	if ok {
		delete(sv.sessions, id)
	}
	sv.mu.Unlock()
	if !ok {
		return false
	}
	sv.retire(s)
	if st := sv.cfg.Store; st != nil {
		st.removeSession(id) //nolint:errcheck // deletion is best-effort on a dead store
	}
	return true
}

// retire closes a session already removed from the table and folds its
// accounting into the retired counters.
func (sv *Server) retire(s *Session) {
	s.mu.Lock()
	ops := s.ops()
	events, drops, _ := s.hub.Stats()
	s.close()
	s.mu.Unlock()
	sv.shards[int(s.shard.Load())].active.Add(-1)
	sv.opsRetired.Add(ops)
	sv.eventsRetired.Add(events)
	sv.dropsRetired.Add(drops)
	sv.closedCount.Add(1)
}

// --- raw guest operations ---------------------------------------------

// opRequest is one raw guest operation; the POST .../op body is either
// a single opRequest or {"ops": [...]} for a batch.
type opRequest struct {
	Op    string      `json:"op"`
	Addr  uint64      `json:"addr,omitempty"`
	Size  uint64      `json:"size,omitempty"` // malloc bytes, or access size (default 8)
	Value uint64      `json:"value,omitempty"`
	Words int         `json:"words,omitempty"` // relocate length (default: whole block)
	Ops   []opRequest `json:"ops,omitempty"`
}

// opResult is one operation's outcome.
type opResult struct {
	Addr   uint64 `json:"addr,omitempty"`   // malloc result
	Value  uint64 `json:"value,omitempty"`  // load / digest result
	FBit   bool   `json:"fbit,omitempty"`   // fbit result
	Target uint64 `json:"target,omitempty"` // relocate target
}

// execOp runs one raw guest operation under s.mu. Guest-level mistakes
// (bad free, misaligned access) surface as errors, not server panics.
func (s *Session) execOp(req opRequest) (res opResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("op %q: %v", req.Op, r)
		}
	}()
	size := uint(req.Size)
	if size == 0 {
		size = 8
	}
	switch req.Op {
	case "malloc":
		if req.Size == 0 {
			return res, fmt.Errorf("malloc needs size")
		}
		res.Addr = uint64(s.m.Malloc(req.Size))
	case "free":
		if !s.m.Allocator().Live(mem.Addr(req.Addr)) {
			return res, fmt.Errorf("free of non-live block %#x", req.Addr)
		}
		s.m.Free(mem.Addr(req.Addr))
	case "load":
		res.Value = s.m.Load(mem.Addr(req.Addr), size)
	case "store":
		s.m.Store(mem.Addr(req.Addr), req.Value, size)
	case "fbit":
		res.FBit = s.m.ReadFBit(mem.Addr(req.Addr))
	case "final":
		res.Addr = uint64(s.m.FinalAddr(mem.Addr(req.Addr)))
	case "relocate":
		src, words, bytes, perr := s.relocatePlan(req)
		if perr != nil {
			return res, perr
		}
		tgt := s.arenaNext
		s.arenaNext += mem.Addr(bytes)
		s.arenaOff += mem.Addr(bytes)
		if err := opt.TryRelocate(s.m, src, tgt, words); err != nil {
			return res, err
		}
		res.Target = uint64(tgt)
	case "digest":
		d, derr := oracle.DigestModuloForwarding(s.m.Mem, s.m.Fwd, s.m.Alloc)
		if derr != nil {
			return res, derr
		}
		res.Value = d
	default:
		return res, fmt.Errorf("unknown op %q", req.Op)
	}
	switch req.Op {
	case "malloc", "free", "load", "store":
		s.rawOps++
	}
	return res, nil
}

// relocatePlan validates a relocate request without mutating anything:
// the source block, the word count (default: the whole block), and the
// page-rounded arena bytes the relocation will consume. The durable
// path needs the plan before execution so the WAL intent precedes the
// state change.
func (s *Session) relocatePlan(req opRequest) (src mem.Addr, words int, bytes uint64, err error) {
	blockSize, ok := s.m.Allocator().SizeOf(mem.Addr(req.Addr))
	if !ok {
		return 0, 0, 0, fmt.Errorf("relocate of non-live block %#x", req.Addr)
	}
	words = req.Words
	if words <= 0 {
		words = int(blockSize / mem.WordSize)
	}
	if uint64(words)*mem.WordSize > blockSize {
		return 0, 0, 0, fmt.Errorf("relocate of %d words exceeds block size %d", words, blockSize)
	}
	bytes = (uint64(words)*mem.WordSize + 0xFFF) &^ uint64(0xFFF)
	return mem.Addr(req.Addr), words, bytes, nil
}

// tryRelocate runs TryRelocate with execOp's panic containment (the
// durable path and WAL replay call it outside execOp).
func (s *Session) tryRelocate(src, tgt mem.Addr, words int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("relocate: %v", r)
		}
	}()
	return opt.TryRelocate(s.m, src, tgt, words)
}

// --- HTTP plumbing ----------------------------------------------------

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	report.WriteJSON(w, v) //nolint:errcheck // headers sent; nothing left to do
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	report.WriteJSON(w, map[string]string{"error": fmt.Sprintf(format, args...)}) //nolint:errcheck
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// clearDeadlines lifts the server's read/write timeouts for a handler
// that legitimately outlives them (long-blocking /step, streaming
// /events).
func clearDeadlines(w http.ResponseWriter) {
	rc := http.NewResponseController(w)
	rc.SetReadDeadline(time.Time{})  //nolint:errcheck // best-effort
	rc.SetWriteDeadline(time.Time{}) //nolint:errcheck // best-effort
}

func (sv *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{
		"healthz":  "/healthz",
		"metrics":  "/metrics",
		"sessions": "POST /sessions {mode, shard?, seed, opt, chaos...}; GET /sessions",
		"op":       "POST /sessions/{id}/op {op: malloc|free|load|store|relocate|fbit|final|digest, ...} or {ops: [...]}",
		"step":     "POST /sessions/{id}/step {ops: N} (app sessions)",
		"stats":    "GET /sessions/{id}/stats",
		"snapshot": "POST /sessions/{id}/snapshot",
		"restore":  "POST /restore {snapshot, shard?}",
		"migrate":  "POST /sessions/{id}/migrate {shard}",
		"events":   "GET /sessions/{id}/events (NDJSON stream)",
	})
}

func (sv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sv.mu.Lock()
	n := len(sv.sessions)
	sv.mu.Unlock()
	quarantined := 0
	for _, sh := range sv.shards {
		if sh.quarantined.Load() {
			quarantined++
		}
	}
	resp := map[string]any{
		"ok":          quarantined < len(sv.shards),
		"shards":      len(sv.shards),
		"quarantined": quarantined,
		"sessions":    n,
	}
	if st := sv.cfg.Store; st != nil {
		resp["store"] = map[string]any{"dir": st.Dir(), "dead": st.Dead()}
		if st.Dead() {
			resp["ok"] = false
		}
	}
	writeJSON(w, resp)
}

func (sv *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if !decode(w, r, &req) {
		return
	}
	s, err := sv.createSession(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, sv.info(s))
}

func (sv *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sv.mu.Lock()
	infos := make([]sessionInfo, 0, len(sv.sessions))
	for _, s := range sv.sessions {
		infos = append(infos, sv.info(s))
	}
	sv.mu.Unlock()
	writeJSON(w, map[string]any{"sessions": infos})
}

func (sv *Server) handleOp(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	if s.Mode != "raw" {
		writeErr(w, http.StatusConflict, "session %s runs app %q; use /step", s.ID, s.Mode)
		return
	}
	release, ok := sv.admit(w, s)
	if !ok {
		return
	}
	defer release()
	var req opRequest
	if !decode(w, r, &req) {
		return
	}
	batch := req.Ops
	single := len(batch) == 0
	if single {
		batch = []opRequest{req}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeErr(w, http.StatusGone, "session %s is closed", s.ID)
		return
	}
	results, err := sv.execOps(s, batch)
	s.mu.Unlock()
	if err != nil {
		var ge *guestOpError
		if errors.As(err, &ge) {
			writeErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		writeErr(w, http.StatusServiceUnavailable, "storage: %v", err)
		return
	}
	if single {
		writeJSON(w, results[0])
		return
	}
	writeJSON(w, map[string]any{"results": results})
}

// stepResponse is the POST .../step reply.
type stepResponse struct {
	Used   int64       `json:"used"` // total guest ops consumed so far
	Done   bool        `json:"done"`
	Result *stepResult `json:"result,omitempty"`
}

type stepResult struct {
	Checksum      uint64 `json:"checksum"`
	Relocated     int    `json:"relocated"`
	SpaceOverhead uint64 `json:"spaceOverhead"`
	Err           string `json:"err,omitempty"`
}

func (sv *Server) handleStep(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	if s.g == nil {
		writeErr(w, http.StatusConflict, "session %s is raw; use /op", s.ID)
		return
	}
	release, admitted := sv.admit(w, s)
	if !admitted {
		return
	}
	defer release()
	var req struct {
		Ops int64 `json:"ops"`
	}
	if !decode(w, r, &req) {
		return
	}
	if req.Ops <= 0 {
		writeErr(w, http.StatusBadRequest, "ops must be positive")
		return
	}
	// Stepping blocks until the runner consumes the grant, which can
	// outlive the server's write deadline.
	clearDeadlines(w)
	used, done, serr := sv.stepSession(s, req.Ops)
	if serr != nil {
		writeErr(w, http.StatusServiceUnavailable, "storage: %v", serr)
		return
	}
	resp := stepResponse{Used: used, Done: done}
	if done {
		res, err := s.result()
		sr := stepResult{Checksum: res.Checksum, Relocated: res.Relocated, SpaceOverhead: res.SpaceOverhead}
		if err != nil {
			sr.Err = err.Error()
		}
		resp.Result = &sr
	}
	writeJSON(w, resp)
}

func (sv *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeErr(w, http.StatusGone, "session %s is closed", s.ID)
		return
	}
	info := sv.info(s)
	dig, err := s.digest()
	var stats *sim.Stats
	s.withMachine(func(m *sim.Machine) error { //nolint:errcheck // fn returns nil
		stats = m.Snapshot()
		return nil
	})
	tv := s.tierSnapshot()
	s.mu.Unlock()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "digest: %v", err)
		return
	}
	resp := map[string]any{
		"session": info,
		"digest":  fmt.Sprintf("%#x", dig),
		"stats":   stats,
	}
	if tv != nil {
		resp["tier"] = tv
	}
	writeJSON(w, resp)
}

func (sv *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	id, snap := sv.snapshotSession(s)
	resp := map[string]any{"snapshot": id, "session": sv.info(s)}
	if st := sv.cfg.Store; st != nil {
		// The in-memory snapshot is already taken; persistence failure
		// degrades the reply, not the capture.
		if err := st.writeSnapshot(id, snap); err != nil {
			sv.strike(int(s.shard.Load()))
			resp["durable"] = false
			resp["storeError"] = err.Error()
		} else {
			resp["durable"] = true
		}
	}
	writeJSON(w, resp)
}

func (sv *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Snapshot string `json:"snapshot"`
		Shard    *int   `json:"shard,omitempty"`
	}
	if !decode(w, r, &req) {
		return
	}
	s, err := sv.restoreSnapshot(req.Snapshot, req.Shard)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, sv.info(s))
}

func (sv *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	var req struct {
		Shard int `json:"shard"`
	}
	if !decode(w, r, &req) {
		return
	}
	if err := sv.migrateSession(s, req.Shard); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, sv.info(s))
}

func (sv *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !sv.deleteSession(r.PathValue("id")) {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	writeJSON(w, map[string]bool{"deleted": true})
}

// handleEvents streams the session's live trace events as NDJSON until
// the client disconnects or the session closes (which closes its hub;
// queued batches drain first — the Broadcaster contract).
func (sv *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s, ok := sv.session(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown session")
		return
	}
	sub := s.hub.Subscribe(64)
	defer sub.Unsubscribe()
	clearDeadlines(w) // the stream outlives any fixed write deadline
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}
	sink := obs.NewNDJSONSink(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case batch, ok := <-sub.C:
			if !ok {
				return
			}
			if sink.WriteEvents(batch) != nil || sink.Close() != nil {
				return // client went away; Close here only flushes
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}

// scrub maps NaN/Inf to 0 so every computed gauge the server exposes is
// JSON-encodable and monitoring-safe, whatever the denominators were.
func scrub(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// MetricsSnapshot computes the /metrics gauge map (exported through the
// handler; tests call it directly).
func (sv *Server) MetricsSnapshot() map[string]float64 {
	sv.mu.Lock()
	sessions := make([]*Session, 0, len(sv.sessions))
	for _, s := range sv.sessions {
		sessions = append(sessions, s)
	}
	sv.mu.Unlock()
	var ops, events, drops uint64
	active := len(sessions)
	var tierSessions int
	var tierAgg tierView
	for _, s := range sessions {
		ops += s.ops()
		e, d, _ := s.hub.Stats()
		events += e
		drops += d
		if s.td == nil {
			continue
		}
		// Tier gauges need the machine quiesced; take the session mutex
		// like any other control-plane read and skip closed sessions.
		s.mu.Lock()
		if !s.closed {
			if tv := s.tierSnapshot(); tv != nil {
				tierSessions++
				tierAgg.Stats.Wakes += tv.Stats.Wakes
				tierAgg.Stats.Promotions += tv.Stats.Promotions
				tierAgg.Stats.Demotions += tv.Stats.Demotions
				tierAgg.Stats.Placed += tv.Stats.Placed
				tierAgg.Stats.Spills += tv.Stats.Spills
				tierAgg.Stats.Repaired += tv.Stats.Repaired
				tierAgg.Stats.Remorse += tv.Stats.Remorse
				tierAgg.NearBytes += tv.NearBytes
				tierAgg.FarBytes += tv.FarBytes
			}
		}
		s.mu.Unlock()
	}
	ops += sv.opsRetired.Load()
	events += sv.eventsRetired.Load()
	drops += sv.dropsRetired.Load()
	created := sv.created.Load()

	vals := map[string]float64{
		"serve.shards":           float64(len(sv.shards)),
		"serve.sessions.active":  float64(active),
		"serve.sessions.created": float64(created),
		"serve.sessions.closed":  float64(sv.closedCount.Load()),
		"serve.migrations":       float64(sv.migrations.Load()),
		"serve.snapshots":        float64(sv.snapshots.Load()),
		"serve.restores":         float64(sv.restores.Load()),
		"serve.ops":              float64(ops),
		"serve.events":           float64(events),
		"serve.events.dropped":   float64(drops),
		// Computed ratios: zero denominators scrub to 0, never NaN/Inf.
		"serve.ops_per_session":      scrub(float64(ops) / float64(created)),
		"serve.sessions_per_shard":   scrub(float64(active) / float64(len(sv.shards))),
		"serve.events.drop_fraction": scrub(float64(drops) / float64(events)),
		// Tiering, aggregated over live tiered sessions (all 0 when none).
		"serve.tier.sessions":       float64(tierSessions),
		"serve.tier.wakes":          float64(tierAgg.Stats.Wakes),
		"serve.tier.promotions":     float64(tierAgg.Stats.Promotions),
		"serve.tier.demotions":      float64(tierAgg.Stats.Demotions),
		"serve.tier.placed":         float64(tierAgg.Stats.Placed),
		"serve.tier.spills":         float64(tierAgg.Stats.Spills),
		"serve.tier.repaired":       float64(tierAgg.Stats.Repaired),
		"serve.tier.remorse":        float64(tierAgg.Stats.Remorse),
		"serve.tier.near.bytesLive": float64(tierAgg.NearBytes),
		"serve.tier.far.bytesLive":  float64(tierAgg.FarBytes),
	}
	quarantined := 0
	for _, sh := range sv.shards {
		prefix := fmt.Sprintf("serve.shard.%d.", sh.id)
		vals[prefix+"active"] = float64(sh.active.Load())
		vals[prefix+"created"] = float64(sh.created.Load())
		vals[prefix+"migrated_in"] = float64(sh.migratedIn.Load())
		vals[prefix+"migrated_out"] = float64(sh.migratedOut.Load())
		vals[prefix+"inflight"] = float64(sh.inflight.Load())
		vals[prefix+"shed"] = float64(sh.shed.Load())
		vals[prefix+"strikes"] = float64(sh.strikes.Load())
		q := 0.0
		if sh.quarantined.Load() {
			q = 1
			quarantined++
		}
		vals[prefix+"quarantined"] = q
	}
	vals["serve.shed"] = float64(sv.shedCount.Load())
	vals["serve.durability_lost"] = float64(sv.durabilityLost.Load())
	vals["serve.shards.quarantined"] = float64(quarantined)
	if st := sv.cfg.Store; st != nil {
		vals["serve.store.appends"] = float64(st.appends.Load())
		vals["serve.store.syncs"] = float64(st.syncs.Load())
		vals["serve.store.retries"] = float64(st.retries.Load())
		vals["serve.store.failures"] = float64(st.failures.Load())
		vals["serve.store.checkpoints"] = float64(st.checkpoints.Load())
		dead := 0.0
		if st.Dead() {
			dead = 1
		}
		vals["serve.store.dead"] = dead
	}
	sv.mu.Lock()
	rec := sv.recovered
	sv.mu.Unlock()
	vals["serve.recovered.sessions"] = float64(rec.Sessions)
	vals["serve.recovered.snapshots"] = float64(rec.Snapshots)
	vals["serve.recovered.replayed_ops"] = float64(rec.ReplayedOps)
	vals["serve.recovered.replayed_grants"] = float64(rec.ReplayedGrants)
	vals["serve.recovered.tail_rollbacks"] = float64(rec.TailRollbacks)
	vals["serve.recovered.scavenges"] = float64(rec.Scavenges)
	vals["serve.recovered.damaged"] = float64(rec.Damaged)
	for k, v := range vals {
		vals[k] = scrub(v)
	}
	return vals
}

func (sv *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"metrics": sv.MetricsSnapshot()})
}
