package opt

import (
	"testing"

	"memfwd/internal/mem"
	"memfwd/internal/sim"
)

func TestColorPoolGeometry(t *testing.T) {
	m := sim.New(sim.Config{})
	// 4KB way, 4 colors => 1KB regions.
	p := NewColorPool(m, 4096, 4)
	for c := 0; c < 4; c++ {
		a := p.Alloc(c, 64)
		if got := p.Color(a); got != c {
			t.Errorf("alloc for color %d landed in color %d (%#x)", c, got, a)
		}
	}
}

func TestColorPoolStaysInRegionAcrossFrames(t *testing.T) {
	m := sim.New(sim.Config{})
	p := NewColorPool(m, 4096, 4)
	for i := 0; i < 100; i++ { // 100*64B = 6400B > one 1KB region
		a := p.Alloc(2, 64)
		if p.Color(a) != 2 {
			t.Fatalf("alloc %d escaped its color: %#x", i, a)
		}
	}
	if len(p.frames) < 2 {
		t.Fatal("expected the pool to grow frames")
	}
}

func TestColorPoolBadArgs(t *testing.T) {
	m := sim.New(sim.Config{})
	for _, f := range []func(){
		func() { NewColorPool(m, 4095, 4) },
		func() { NewColorPool(m, 4096, 4).Alloc(4, 8) },
		func() { NewColorPool(m, 4096, 4).Alloc(0, 2048) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestColoringRemovesConflictMisses reproduces the cache-conflict
// scenario of Section 2.2: three hot blocks that map to the same sets
// of a 2-way cache thrash it; recoloring them into distinct regions
// eliminates the conflict misses — and the old pointers still work.
func TestColoringRemovesConflictMisses(t *testing.T) {
	const (
		l1Size  = 8192
		assoc   = 2
		waySize = l1Size / assoc // 4096
		blockB  = 256
	)
	run := func(recolor bool) (uint64, int64, uint64) {
		m := sim.New(sim.Config{LineSize: 64, L1Size: l1Size, L1Assoc: assoc})
		// Three blocks at the same offset in consecutive way-sized
		// frames: identical set mapping.
		ar := mem.NewArena(m.Alloc, 4*waySize)
		ar.AlignTo(waySize)
		var blocks []mem.Addr
		for i := 0; i < 3; i++ {
			base := ar.Alloc(waySize)
			blocks = append(blocks, base)
		}
		old := append([]mem.Addr(nil), blocks...)
		if recolor {
			p := NewColorPool(m, waySize, 4)
			for i := range blocks {
				blocks[i] = ColorRelocate(m, p, blocks[i], blockB, i+1)
			}
		}
		var sum uint64
		for round := 0; round < 600; round++ {
			for _, b := range blocks {
				for off := mem.Addr(0); off < blockB; off += 64 {
					sum += m.LoadWord(b + off)
					m.Inst(2)
				}
			}
		}
		// Stale pointers still resolve.
		for _, o := range old {
			sum += m.LoadWord(o)
		}
		st := m.Finalize()
		return st.L1.Misses(0), st.Cycles, sum
	}
	missBad, cycBad, sumBad := run(false)
	missGood, cycGood, sumGood := run(true)
	if sumBad != sumGood {
		t.Fatalf("functional divergence: %d vs %d", sumBad, sumGood)
	}
	if missGood*4 > missBad {
		t.Fatalf("coloring did not cut conflict misses: %d -> %d", missBad, missGood)
	}
	if cycGood >= cycBad {
		t.Fatalf("coloring not faster: %d -> %d", cycBad, cycGood)
	}
}
