package opt

import (
	"testing"
	"testing/quick"

	"memfwd/internal/quickseed"

	"memfwd/internal/mem"
	"memfwd/internal/sim"
)

// list node layout: [0]=value, [8]=next
const (
	nodeBytes = 16
	nextOff   = 8
)

var listDesc = ListDesc{NodeBytes: nodeBytes, NextOff: nextOff}

// buildList allocates a linked list with the given values, interleaving
// junk allocations so nodes are scattered (malloc-like fragmentation).
// Returns the address of a head-pointer variable.
func buildList(m *sim.Machine, vals []uint64) mem.Addr {
	headHandle := m.Malloc(8)
	prevHandle := headHandle
	for _, v := range vals {
		m.Malloc(40) // junk between nodes
		n := m.Malloc(nodeBytes)
		m.StoreWord(n, v)
		m.StorePtr(prevHandle, n)
		prevHandle = n + nextOff
	}
	return headHandle
}

// collect walks the list from the head handle, returning node addresses
// and values.
func collect(m *sim.Machine, headHandle mem.Addr) (addrs []mem.Addr, vals []uint64) {
	p := m.LoadPtr(headHandle)
	for p != 0 {
		addrs = append(addrs, p)
		vals = append(vals, m.LoadWord(p))
		p = m.LoadPtr(p + nextOff)
	}
	return
}

func TestRelocateBasic(t *testing.T) {
	m := sim.New(sim.Config{})
	src := m.Malloc(32)
	tgt := m.Malloc(32)
	for i := 0; i < 4; i++ {
		m.StoreWord(src+mem.Addr(i*8), uint64(100+i))
	}
	Relocate(m, src, tgt, 4)
	for i := 0; i < 4; i++ {
		old := src + mem.Addr(i*8)
		if got := m.LoadWord(old); got != uint64(100+i) {
			t.Fatalf("word %d through forwarding = %d", i, got)
		}
		if v, fb := m.Fwd.UnforwardedRead(old); !fb || mem.Addr(v) != tgt+mem.Addr(i*8) {
			t.Fatalf("word %d: fwd (%#x,%v)", i, v, fb)
		}
	}
}

func TestRelocateAppendsToChainEnd(t *testing.T) {
	m := sim.New(sim.Config{})
	a := m.Malloc(8)
	b := m.Malloc(8)
	c := m.Malloc(8)
	m.StoreWord(a, 77)
	Relocate(m, a, b, 1)
	Relocate(m, a, c, 1) // must chase a->b and relocate b's data to c
	if got := m.LoadWord(a); got != 77 {
		t.Fatalf("value via chain = %d", got)
	}
	// b must now forward to c.
	if v, fb := m.Fwd.UnforwardedRead(b); !fb || mem.Addr(v) != c {
		t.Fatalf("middle of chain: (%#x,%v), want (%#x,true)", v, fb, c)
	}
	if v, fb := m.Fwd.UnforwardedRead(c); fb || v != 77 {
		t.Fatalf("chain end: (%d,%v)", v, fb)
	}
}

func TestListLinearizePacksNodes(t *testing.T) {
	m := sim.New(sim.Config{})
	vals := []uint64{10, 20, 30, 40, 50}
	head := buildList(m, vals)

	preAddrs, _ := collect(m, head)
	// Scattered before: consecutive nodes not adjacent.
	adjacent := 0
	for i := 1; i < len(preAddrs); i++ {
		if preAddrs[i] == preAddrs[i-1]+nodeBytes {
			adjacent++
		}
	}
	if adjacent != 0 {
		t.Fatalf("expected scattered input layout, %d adjacent pairs", adjacent)
	}

	pool := NewPool(m, 1<<16)
	n := ListLinearize(m, pool, head, listDesc)
	if n != len(vals) {
		t.Fatalf("linearized %d nodes, want %d", n, len(vals))
	}

	postAddrs, postVals := collect(m, head)
	for i, v := range vals {
		if postVals[i] != v {
			t.Fatalf("value %d = %d, want %d", i, postVals[i], v)
		}
	}
	for i := 1; i < len(postAddrs); i++ {
		if postAddrs[i] != postAddrs[i-1]+nodeBytes {
			t.Fatalf("nodes not contiguous: %#x then %#x", postAddrs[i-1], postAddrs[i])
		}
	}
	// Traversal through the head no longer forwards at all.
	st := m.Finalize()
	_ = st
}

func TestStrayPointerSurvivesLinearization(t *testing.T) {
	m := sim.New(sim.Config{})
	vals := []uint64{1, 2, 3, 4}
	head := buildList(m, vals)
	pre, _ := collect(m, head)
	stray := pre[2] // pointer to the middle of the list, held elsewhere

	pool := NewPool(m, 1<<16)
	ListLinearize(m, pool, head, listDesc)

	// The stray pointer still reads the right node via forwarding.
	if got := m.LoadWord(stray); got != 3 {
		t.Fatalf("stray read = %d, want 3", got)
	}
	// And traversal from the stray pointer reaches the rest.
	next := m.LoadPtr(stray + nextOff)
	if got := m.LoadWord(next); got != 4 {
		t.Fatalf("stray traversal = %d, want 4", got)
	}
	st := m.Finalize()
	if st.LoadsForwarded() == 0 {
		t.Fatal("stray access should have been forwarded")
	}
}

func TestRelinearizationKeepsWorking(t *testing.T) {
	m := sim.New(sim.Config{})
	vals := []uint64{5, 6, 7}
	head := buildList(m, vals)
	pre, _ := collect(m, head)
	stray := pre[1]
	pool := NewPool(m, 1<<16)
	for r := 0; r < 3; r++ {
		ListLinearize(m, pool, head, listDesc)
	}
	_, post := collect(m, head)
	for i, v := range vals {
		if post[i] != v {
			t.Fatalf("after 3 linearizations: val[%d]=%d want %d", i, post[i], v)
		}
	}
	// The stray pointer chases a 3-hop chain but still lands right.
	if got := m.LoadWord(stray); got != 6 {
		t.Fatalf("stray after 3 relinearizations = %d", got)
	}
	st := m.Finalize()
	if st.LoadsFwdByHops[3] == 0 {
		t.Fatalf("expected a 3-hop load, histogram %v", st.LoadsFwdByHops[:5])
	}
}

func TestLinearizeEmptyList(t *testing.T) {
	m := sim.New(sim.Config{})
	head := m.Malloc(8) // null head
	pool := NewPool(m, 1<<12)
	if n := ListLinearize(m, pool, head, listDesc); n != 0 {
		t.Fatalf("linearized %d nodes of an empty list", n)
	}
}

func TestPoolContiguityAcrossAllocs(t *testing.T) {
	m := sim.New(sim.Config{})
	pool := NewPool(m, 1<<12)
	a := pool.Alloc(24)
	b := pool.Alloc(24)
	if b != a+24 {
		t.Fatalf("pool allocs not adjacent: %#x then %#x", a, b)
	}
	if pool.BytesUsed != 48 {
		t.Fatalf("BytesUsed = %d", pool.BytesUsed)
	}
}

func TestPoolGrowsNewArena(t *testing.T) {
	m := sim.New(sim.Config{})
	pool := NewPool(m, 64)
	var last mem.Addr
	for i := 0; i < 10; i++ {
		a := pool.Alloc(40)
		if a == 0 {
			t.Fatal("pool returned null")
		}
		last = a
	}
	_ = last
	if pool.BytesUsed != 400 {
		t.Fatalf("BytesUsed = %d", pool.BytesUsed)
	}
}

func TestPoolAlignTo(t *testing.T) {
	m := sim.New(sim.Config{})
	pool := NewPool(m, 1<<12)
	pool.Alloc(8)
	pool.AlignTo(128)
	a := pool.Alloc(8)
	if uint64(a)%128 != 0 {
		t.Fatalf("aligned alloc at %#x", a)
	}
}

// tree node layout: [0]=value, [8]=left, [16]=right
const treeNodeBytes = 24

var treeDesc = TreeDesc{NodeBytes: treeNodeBytes, ChildOffs: []uint64{8, 16}}

// buildTree makes a complete binary tree of the given depth with
// pre-order values; returns the root-handle address and expected
// pre-order sum.
func buildTree(m *sim.Machine, depth int) (mem.Addr, uint64) {
	rootHandle := m.Malloc(8)
	var sum uint64
	var build func(handle mem.Addr, d int, id uint64) uint64
	next := uint64(1)
	build = func(handle mem.Addr, d int, id uint64) uint64 {
		if d == 0 {
			return 0
		}
		m.Malloc(56) // junk: scatter nodes
		n := m.Malloc(treeNodeBytes)
		m.StoreWord(n, id)
		sum += id
		m.StorePtr(handle, n)
		next++
		build(n+8, d-1, next)
		next++
		build(n+16, d-1, next)
		return id
	}
	build(rootHandle, depth, next)
	return rootHandle, sum
}

// treeSum walks the tree summing values.
func treeSum(m *sim.Machine, rootHandle mem.Addr) uint64 {
	var walk func(p mem.Addr) uint64
	walk = func(p mem.Addr) uint64 {
		if p == 0 {
			return 0
		}
		return m.LoadWord(p) + walk(m.LoadPtr(p+8)) + walk(m.LoadPtr(p+16))
	}
	return walk(m.LoadPtr(rootHandle))
}

func TestSubtreeClusterPreservesTree(t *testing.T) {
	m := sim.New(sim.Config{})
	root, want := buildTree(m, 5) // 31 nodes
	pool := NewPool(m, 1<<16)
	n := SubtreeCluster(m, pool, root, treeDesc, 128)
	if n != 31 {
		t.Fatalf("clustered %d nodes, want 31", n)
	}
	if got := treeSum(m, root); got != want {
		t.Fatalf("tree sum after clustering = %d, want %d", got, want)
	}
}

func TestSubtreeClusterPacksParentWithChildren(t *testing.T) {
	m := sim.New(sim.Config{})
	root, _ := buildTree(m, 4)
	pool := NewPool(m, 1<<16)
	const clusterBytes = 128 // 5 nodes of 24B per cluster
	SubtreeCluster(m, pool, root, treeDesc, clusterBytes)
	r := m.LoadPtr(root)
	l := m.LoadPtr(r + 8)
	rt := m.LoadPtr(r + 16)
	// Root and both children share one aligned cluster.
	if uint64(r)/clusterBytes != uint64(l)/clusterBytes ||
		uint64(r)/clusterBytes != uint64(rt)/clusterBytes {
		t.Fatalf("root %#x children %#x %#x not in one %dB cluster", r, l, rt, clusterBytes)
	}
}

func TestSubtreeClusterStrayPointerForwarded(t *testing.T) {
	m := sim.New(sim.Config{})
	root, _ := buildTree(m, 3)
	oldRoot := m.LoadPtr(root)
	pool := NewPool(m, 1<<16)
	SubtreeCluster(m, pool, root, treeDesc, 128)
	if got := m.LoadWord(oldRoot); got != 1 {
		t.Fatalf("stray root value = %d, want 1", got)
	}
	st := m.Finalize()
	if st.LoadsForwarded() == 0 {
		t.Fatal("stray tree access should forward")
	}
}

func TestOptimizationChargesInstructions(t *testing.T) {
	m := sim.New(sim.Config{})
	head := buildList(m, []uint64{1, 2, 3, 4, 5, 6, 7, 8})
	before := m.Pipe.Stats.Instructions
	pool := NewPool(m, 1<<14)
	ListLinearize(m, pool, head, listDesc)
	after := m.Pipe.Stats.Instructions
	if after-before < 50 {
		t.Fatalf("linearization charged only %d instructions", after-before)
	}
}

// Property: relocating any object of 1..8 random words (possibly
// repeatedly) preserves every word through every historical address.
func TestRelocatePreservesDataProperty(t *testing.T) {
	prop := func(vals []uint64, hops uint8) bool {
		if len(vals) == 0 {
			vals = []uint64{1}
		}
		if len(vals) > 8 {
			vals = vals[:8]
		}
		n := len(vals)
		m := sim.New(sim.Config{})
		src := m.Malloc(uint64(n * 8))
		for i, v := range vals {
			m.StoreWord(src+mem.Addr(i*8), v)
		}
		addrs := []mem.Addr{src}
		pool := NewPool(m, 1<<14)
		for h := 0; h < int(hops%5); h++ {
			tgt := pool.Alloc(uint64(n * 8))
			Relocate(m, addrs[int(hops)%len(addrs)], tgt, n)
			addrs = append(addrs, tgt)
		}
		for _, a := range addrs {
			for i, v := range vals {
				if m.LoadWord(a+mem.Addr(i*8)) != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickseed.Config(t, 150)); err != nil {
		t.Fatal(err)
	}
}
