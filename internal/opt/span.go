// Relocation-span instrumentation for TryRelocate: when the machine
// carries an obs.SpanTable, every relocation attempt is recorded as a
// structured span over the two-phase commit with per-phase cycle costs,
// chain length before/after, outcome, and any fault-injector shots that
// fired inside the span. With no table attached the cost is one type
// assertion per relocation and zero allocations.
package opt

import (
	"memfwd/internal/core"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
)

// spanRecorder is the optional machine surface span recording needs:
// both sim.Machine (cycle-accurate stamps) and oracle.Machine (Now
// constantly 0, zero-width phases) satisfy it.
type spanRecorder interface {
	RelocationSpans() *obs.SpanTable
	Now() int64
}

// relocSpan accumulates one in-flight TryRelocate span. A nil receiver
// is a record-nothing no-op, so the instrumentation sites in
// TryRelocate stay unconditional.
type relocSpan struct {
	st   *obs.SpanTable
	now  func() int64
	inj  *fault.Injector
	base int // len(inj.Shots) when the span opened

	span                   obs.RelocationSpan
	tCopy, tVerify, tPlant int64 // completion stamps; -1 = not reached
}

// beginSpan opens a span if (and only if) the machine exposes a span
// table. The chain-length probe uses hook-free direct reads, so it
// perturbs neither timing nor fault-injector visit counts.
func beginSpan(m any, fwd *core.Forwarder, inj *fault.Injector, src, tgt mem.Addr, nWords int) *relocSpan {
	sr, ok := m.(spanRecorder)
	if !ok {
		return nil
	}
	st := sr.RelocationSpans()
	if st == nil {
		return nil
	}
	r := &relocSpan{st: st, now: sr.Now, inj: inj, tCopy: -1, tVerify: -1, tPlant: -1}
	if inj != nil {
		r.base = len(inj.Shots)
	}
	r.span = obs.RelocationSpan{
		Src:         uint64(src),
		Tgt:         uint64(tgt),
		Words:       nWords,
		ChainBefore: chainLen(fwd, src),
		ChainAfter:  -1,
		Begin:       sr.Now(),
	}
	return r
}

func (r *relocSpan) copyDone() {
	if r != nil {
		r.tCopy = r.now()
	}
}

func (r *relocSpan) verifyDone() {
	if r != nil {
		r.tVerify = r.now()
	}
}

func (r *relocSpan) plantDone() {
	if r != nil {
		r.tPlant = r.now()
	}
}

// finish stamps the outcome and records the span. Phase durations are
// derived from the completion stamps: a phase that never completed
// reports -1 (its partial cost folds into TotalCycles). Crash-fault
// panics unwind past finish entirely — a crashed relocation records no
// span, mirroring a real process death.
func (r *relocSpan) finish(fwd *core.Forwarder, src mem.Addr, outcome obs.RelocOutcome, err error) {
	if r == nil {
		return
	}
	s := &r.span
	s.TotalCycles = r.now() - s.Begin
	s.CopyCycles, s.VerifyCycles, s.PlantCycles = -1, -1, -1
	last := s.Begin
	if r.tCopy >= 0 {
		s.CopyCycles = r.tCopy - last
		last = r.tCopy
	}
	if r.tVerify >= 0 {
		s.VerifyCycles = r.tVerify - last
		last = r.tVerify
	}
	if r.tPlant >= 0 {
		s.PlantCycles = r.tPlant - last
	}
	s.Outcome = outcome
	if outcome == obs.RelocCommitted {
		s.ChainAfter = chainLen(fwd, src)
	}
	if err != nil {
		s.Err = err.Error()
	}
	if r.inj != nil {
		for _, sh := range r.inj.Shots[r.base:] {
			s.Faults = append(s.Faults, sh.String())
		}
	}
	r.st.Record(*s)
}

// chainLen measures the forwarding chain length of the word at a using
// the direct (hook-free, untimed) forwarder reads; bounded by ChainCap
// so a cyclic chain cannot hang the probe.
func chainLen(fwd *core.Forwarder, a mem.Addr) int {
	n := 0
	w := mem.WordAlign(a)
	for fwd.ReadFBit(w) {
		v, _ := fwd.UnforwardedRead(w)
		w = mem.WordAlign(mem.Addr(v))
		n++
		if n > fwd.ChainCap {
			break
		}
	}
	return n
}
