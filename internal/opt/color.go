package opt

import (
	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
)

// Data coloring (Section 2.2, "Reducing Cache Conflicts", after
// Chilimbi & Larus): partition the cache into logically separate
// regions (colors) and relocate data items that are accessed close
// together in time into different regions, so they can never evict one
// another. Memory forwarding makes the relocation safe without proving
// anything about outstanding pointers.

// ColorPool allocates relocation targets whose cache-set mapping falls
// inside a chosen color's region. It carves way-sized frames out of the
// heap; within each frame, byte offsets map one-to-one onto cache sets,
// so constraining the offset constrains the set.
type ColorPool struct {
	m          app.Machine
	frameBytes uint64 // bytes that map the cache's sets exactly once
	colors     int

	frames  []mem.Addr // frame base addresses (frame-aligned)
	cursors []uint64   // per color: next free offset within its region
	frameOf []int      // per color: index into frames

	// BytesUsed counts relocation storage handed out.
	BytesUsed uint64
}

// NewColorPool creates a pool for a cache whose one-way span is
// waySizeBytes (cache size / associativity), split into colors regions.
func NewColorPool(m app.Machine, waySizeBytes uint64, colors int) *ColorPool {
	if colors < 1 {
		colors = 1
	}
	if waySizeBytes == 0 || waySizeBytes%uint64(colors) != 0 {
		panic("opt: way size must be a positive multiple of the color count")
	}
	p := &ColorPool{
		m:          m,
		frameBytes: waySizeBytes,
		colors:     colors,
		cursors:    make([]uint64, colors),
		frameOf:    make([]int, colors),
	}
	for c := range p.frameOf {
		p.frameOf[c] = -1
	}
	return p
}

// regionBytes is the per-frame span of one color.
func (p *ColorPool) regionBytes() uint64 { return p.frameBytes / uint64(p.colors) }

// newFrame allocates a frame-aligned region of frameBytes.
func (p *ColorPool) newFrame() mem.Addr {
	p.m.Inst(6)
	ar := mem.NewArena(p.m.Allocator(), 2*p.frameBytes)
	ar.AlignTo(p.frameBytes)
	base := ar.Alloc(p.frameBytes)
	if base == 0 || uint64(base)%p.frameBytes != 0 {
		panic("opt: could not build an aligned color frame")
	}
	p.frames = append(p.frames, base)
	return base
}

// Alloc returns n bytes whose addresses map into color's cache region.
// n must fit within one region.
func (p *ColorPool) Alloc(color int, n uint64) mem.Addr {
	p.m.Inst(3)
	if color < 0 || color >= p.colors {
		panic("opt: color out of range")
	}
	size := (n + mem.WordSize - 1) &^ uint64(mem.WordSize-1)
	if size > p.regionBytes() {
		panic("opt: allocation larger than a color region")
	}
	if p.frameOf[color] < 0 || p.cursors[color]+size > p.regionBytes() {
		// Start (or move to) a frame with room for this color.
		p.frameOf[color]++
		for p.frameOf[color] >= len(p.frames) {
			p.newFrame()
		}
		p.cursors[color] = 0
	}
	base := p.frames[p.frameOf[color]]
	a := base + mem.Addr(uint64(color)*p.regionBytes()+p.cursors[color])
	p.cursors[color] += size
	p.BytesUsed += size
	return a
}

// Color returns the color (cache region) address a maps to under this
// pool's geometry.
func (p *ColorPool) Color(a mem.Addr) int {
	return int(uint64(a) % p.frameBytes / p.regionBytes())
}

// ColorRelocate relocates the object at addr (nBytes, word multiple)
// into the given color's region and returns its new address. Forwarding
// keeps every stale pointer valid.
func ColorRelocate(m app.Machine, p *ColorPool, addr mem.Addr, nBytes uint64, color int) mem.Addr {
	tgt := p.Alloc(color, nBytes)
	Relocate(m, addr, tgt, int(nBytes/mem.WordSize))
	return tgt
}
