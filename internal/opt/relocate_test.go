package opt

import (
	"errors"
	"testing"

	"memfwd/internal/core"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/quickseed"
	"memfwd/internal/sim"
)

// outOfHeap returns a relocation-target address strictly outside the
// guest heap (as the chaos adversary's private arena is), so tests can
// abort relocations without perturbing allocator state.
func outOfHeap(m *sim.Machine, n int) mem.Addr {
	_, heapEnd := m.Alloc.Range()
	return (heapEnd + 0x1F_FFFF) &^ 0xF_FFFF
}

// TestTryRelocateCyclicChainErrors is the regression test for the
// unbounded chain-append walk: a cyclic forwarding chain — the shape
// the chaos adversary's cyclic probes plant — used to hang Relocate
// forever. TryRelocate must now return an error wrapping
// core.ErrCycle, and Relocate must panic rather than spin.
func TestTryRelocateCyclicChainErrors(t *testing.T) {
	rng := quickseed.Rand(t)
	for _, misaligned := range []bool{false, true} {
		m := sim.New(sim.Config{LineSize: 128})
		base := m.Malloc(4 * mem.WordSize)
		// Close a 3-word forwarding loop over the block's first word.
		w := []mem.Addr{base, base + 8, base + 16}
		for i := range w {
			tgt := uint64(w[(i+1)%len(w)])
			if misaligned {
				// The chaos probes hold misaligned forwarding
				// addresses; the word-aligned append walk must still
				// terminate on them.
				tgt += uint64(1 + rng.Intn(7))
			}
			m.UnforwardedWrite(w[i], tgt, true)
		}
		tgt := outOfHeap(m, 1)
		err := TryRelocate(m, base, tgt, 1)
		if err == nil {
			t.Fatalf("misaligned=%v: cyclic chain accepted", misaligned)
		}
		if !misaligned && !errors.Is(err, core.ErrCycle) {
			t.Fatalf("error %v does not wrap core.ErrCycle", err)
		}
	}

	// Relocate (the abort-on-failure wrapper) must panic, not hang.
	m := sim.New(sim.Config{LineSize: 128})
	base := m.Malloc(2 * mem.WordSize)
	m.UnforwardedWrite(base, uint64(base), true) // self-loop
	defer func() {
		if recover() == nil {
			t.Fatal("Relocate did not panic on a cyclic chain")
		}
	}()
	Relocate(m, base, outOfHeap(m, 1), 1)
}

// TestTryRelocateLongAcyclicChain drives the walk past HopLimit so the
// accurate-check escalation runs and reports a false alarm, and the
// relocation still completes correctly.
func TestTryRelocateLongAcyclicChain(t *testing.T) {
	m := sim.New(sim.Config{LineSize: 128})
	base := m.Malloc(mem.WordSize)
	const val = uint64(0xfeed)
	m.StoreWord(base, val)
	// Re-relocate the word repeatedly, growing its chain well past
	// HopLimit (8).
	prev := base
	for i := 0; i < 2*m.Fwd.HopLimit; i++ {
		tgt := outOfHeap(m, 1) + mem.Addr(0x1000*i)
		if err := TryRelocate(m, base, tgt, 1); err != nil {
			t.Fatalf("re-relocation %d: %v", i, err)
		}
		prev = tgt
	}
	if got := m.LoadWord(base); got != val {
		t.Fatalf("value through long chain = %#x, want %#x", got, val)
	}
	final, err := m.Fwd.FinalAddr(base)
	if err != nil {
		t.Fatal(err)
	}
	if final != prev {
		t.Fatalf("chain resolves to %#x, want final target %#x", final, prev)
	}
	if m.Fwd.CycleFalseAlarms == 0 {
		t.Fatal("walk never escalated to the accurate check")
	}
}

// TestTryRelocateJournal checks that a fault-injected machine journals
// the relocation and commits on success.
func TestTryRelocateJournal(t *testing.T) {
	m := sim.New(sim.Config{LineSize: 128})
	inj := fault.New(quickseed.Seed(t))
	m.SetFaultInjector(inj)
	base := m.Malloc(3 * mem.WordSize)
	for i := 0; i < 3; i++ {
		m.StoreWord(base+mem.Addr(i*8), uint64(100+i))
	}
	tgt := outOfHeap(m, 3)
	if err := TryRelocate(m, base, tgt, 3); err != nil {
		t.Fatal(err)
	}
	j := inj.Journal
	if j.Active {
		t.Fatal("journal not committed")
	}
	if j.Src != base || j.Tgt != tgt || j.NWords != 3 || len(j.Ends) != 3 {
		t.Fatalf("journal %+v", j)
	}
	for i := 0; i < 3; i++ {
		if got := m.LoadWord(base + mem.Addr(i*8)); got != uint64(100+i) {
			t.Fatalf("word %d = %d", i, got)
		}
	}
}
