// Package opt implements the software side of memory forwarding: the
// relocation-based layout optimizations of Sections 2.2, 3.1 and 5 of
// the paper, written against the simulated machine so every instruction
// and memory reference they execute is charged.
//
//   - Relocate is Figure 4(a): move an object word by word, appending
//     the new location to the end of any existing forwarding chain.
//   - Pool supplies relocation targets from contiguous memory,
//     "thereby creating spatial locality" (Figure 4b).
//   - ListLinearize is Figure 4(b): pack the nodes of a linked list
//     into consecutive addresses, updating the list-head handle and the
//     internal next pointers.
//   - SubtreeCluster is the BH optimization (Figure 9): pack subtrees
//     into cache-line-sized clusters in balanced (breadth-first) form.
package opt

import (
	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
)

// Relocate moves nWords words of data from src to tgt and installs tgt
// as the forwarding address of src, as in Figure 4(a). If a word of src
// has already been relocated, the walk follows its chain so tgt is
// appended at the end. src and tgt must be word-aligned and disjoint.
func Relocate(m app.Machine, src, tgt mem.Addr, nWords int) {
	for i := 0; i < nWords; i++ {
		s := src + mem.Addr(i*mem.WordSize)
		d := tgt + mem.Addr(i*mem.WordSize)
		m.Inst(3) // loop control and address generation
		v, fbit := m.UnforwardedRead(s)
		for fbit {
			// Append at the end of the existing forwarding chain.
			m.Inst(2)
			s = mem.WordAlign(mem.Addr(v))
			v, fbit = m.UnforwardedRead(s)
		}
		m.UnforwardedWrite(d, v, false)
		m.UnforwardedWrite(s, uint64(d), true)
	}
	m.TraceRelocate(src, tgt, nWords)
}

// Pool hands out relocation targets from contiguous memory. When one
// arena fills, the pool chains to a fresh one; consecutive Alloc calls
// within an arena are strictly adjacent, which is what creates spatial
// locality after relocation.
type Pool struct {
	m     app.Machine
	arena *mem.Arena
	chunk uint64

	// BytesUsed is the total relocation-target storage consumed — the
	// paper's Table 1 "Space Overhead" column.
	BytesUsed uint64
}

// NewPool creates a pool whose arenas are chunkBytes each.
func NewPool(m app.Machine, chunkBytes uint64) *Pool {
	if chunkBytes < 4*mem.WordSize {
		chunkBytes = 4 * mem.WordSize
	}
	return &Pool{m: m, chunk: chunkBytes}
}

// Alloc returns n contiguous bytes of fresh relocation-target memory.
func (p *Pool) Alloc(n uint64) mem.Addr {
	p.m.Inst(2) // bump-pointer allocation
	if p.arena != nil {
		if a := p.arena.Alloc(n); a != 0 {
			p.BytesUsed += n
			return a
		}
	}
	chunk := p.chunk
	if n > chunk {
		chunk = n
	}
	p.arena = mem.NewArena(p.m.Allocator(), chunk)
	a := p.arena.Alloc(n)
	if a == 0 {
		panic("opt: fresh arena could not satisfy allocation")
	}
	p.BytesUsed += n
	return a
}

// AlignTo advances the pool cursor so the next Alloc starts at a
// multiple of align (used to keep clusters from straddling lines).
func (p *Pool) AlignTo(align uint64) {
	p.m.Inst(2)
	if p.arena == nil {
		p.arena = mem.NewArena(p.m.Allocator(), p.chunk)
	}
	p.arena.AlignTo(align)
}

// ListDesc describes the layout of a singly linked list's nodes.
type ListDesc struct {
	NodeBytes uint64 // node size (word multiple)
	NextOff   uint64 // byte offset of the next pointer within the node
}

// ListLinearize relocates every node of the list whose head pointer is
// stored at headHandle into consecutive pool addresses, exactly as the
// paper's Figure 4(b): the head handle and each copied next pointer are
// updated to the new locations, so subsequent traversals through the
// head touch only the new, dense layout. Stray pointers to old node
// addresses keep working via forwarding. Returns the node count.
func ListLinearize(m app.Machine, p *Pool, headHandle mem.Addr, d ListDesc) int {
	words := int(d.NodeBytes / mem.WordSize)
	n := 0
	handle := headHandle
	node := m.LoadPtr(handle)
	for node != 0 {
		m.Inst(3) // loop control
		tgt := p.Alloc(d.NodeBytes)
		Relocate(m, node, tgt, words)
		m.StorePtr(handle, tgt)
		handle = tgt + mem.Addr(d.NextOff)
		// The copied next pointer still holds the old address of the
		// next node; read it directly from the new copy.
		node = m.LoadPtr(handle)
		n++
	}
	return n
}

// TreeDesc describes the layout of a tree's nodes.
type TreeDesc struct {
	NodeBytes uint64
	ChildOffs []uint64 // byte offsets of the child pointers
}

// SubtreeCluster relocates the tree rooted at the pointer stored in
// rootHandle so that each cluster of clusterBytes holds a subtree
// packed in the most balanced (breadth-first) form, per the BH
// case study (Figure 9). Children that do not fit the current cluster
// seed new clusters. Returns the number of nodes relocated.
func SubtreeCluster(m app.Machine, p *Pool, rootHandle mem.Addr, d TreeDesc, clusterBytes uint64) int {
	perCluster := int(clusterBytes / d.NodeBytes)
	if perCluster < 1 {
		perCluster = 1
	}
	words := int(d.NodeBytes / mem.WordSize)
	count := 0

	clusterRoots := []mem.Addr{rootHandle}
	var q []mem.Addr
	for len(clusterRoots) > 0 {
		h := clusterRoots[len(clusterRoots)-1]
		clusterRoots = clusterRoots[:len(clusterRoots)-1]
		m.Inst(2)
		if m.LoadPtr(h) == 0 {
			continue
		}
		p.AlignTo(clusterBytes)
		q = append(q[:0], h)
		taken := 0
		for len(q) > 0 && taken < perCluster {
			handle := q[0]
			q = q[1:]
			m.Inst(3)
			node := m.LoadPtr(handle)
			if node == 0 {
				continue
			}
			tgt := p.Alloc(d.NodeBytes)
			Relocate(m, node, tgt, words)
			m.StorePtr(handle, tgt)
			taken++
			count++
			for _, off := range d.ChildOffs {
				q = append(q, tgt+mem.Addr(off))
			}
		}
		// Whatever remains in breadth-first order roots new clusters.
		clusterRoots = append(clusterRoots, q...)
		q = q[:0]
	}
	return count
}
