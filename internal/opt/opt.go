// Package opt implements the software side of memory forwarding: the
// relocation-based layout optimizations of Sections 2.2, 3.1 and 5 of
// the paper, written against the simulated machine so every instruction
// and memory reference they execute is charged.
//
//   - Relocate is Figure 4(a): move an object word by word, appending
//     the new location to the end of any existing forwarding chain.
//   - Pool supplies relocation targets from contiguous memory,
//     "thereby creating spatial locality" (Figure 4b).
//   - ListLinearize is Figure 4(b): pack the nodes of a linked list
//     into consecutive addresses, updating the list-head handle and the
//     internal next pointers.
//   - SubtreeCluster is the BH optimization (Figure 9): pack subtrees
//     into cache-line-sized clusters in balanced (breadth-first) form.
package opt

import (
	"errors"
	"fmt"

	"memfwd/internal/apps/app"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
)

// ErrTorn is wrapped by TryRelocate when its verification phases find
// a copy or a plant that does not match what was written — a torn
// relocation. The heap is repairable from the relocation journal
// (fault.Scavenge / Injector.Repair).
var ErrTorn = errors.New("opt: torn relocation detected")

// relocationBarrier is the optional interface a machine wrapper
// implements when relocations may be in flight concurrently with the
// caller (the multi-hart scheduler in internal/sched). TryRelocate
// invokes it before touching any shared relocation state — before even
// reading the machine's fault injector — so the wrapper can drain
// conflicting in-flight work: another relocation of the same source
// block (concurrent chain-append is illegal) or any faulted relocation
// (the journal and armed injector must be exclusively owned).
// Interceptor chains (tier daemon, chaos relocator) forward it inward.
type relocationBarrier interface {
	RelocationBarrier(src mem.Addr)
}

// Relocate moves nWords words of data from src to tgt and installs tgt
// as the forwarding address of src, as in Figure 4(a). It is
// TryRelocate with the paper's abort-on-failure policy: a forwarding
// cycle or a torn relocation panics, as the paper's runtime aborts on
// a confirmed cycle.
func Relocate(m app.Machine, src, tgt mem.Addr, nWords int) {
	if err := TryRelocate(m, src, tgt, nWords); err != nil {
		panic(fmt.Sprintf("opt: Relocate(%#x -> %#x, %d words): %v", src, tgt, nWords, err))
	}
}

// TryRelocate moves nWords words of data from src to tgt and installs
// tgt as the forwarding address of src. If a word of src has already
// been relocated, the walk follows its chain so tgt is appended at the
// end (the Figure 4(a) rule). src and tgt must be word-aligned and
// disjoint.
//
// The move is a two-phase commit, ordered so that aborting at any
// instruction boundary leaves the heap architecturally consistent:
//
//	Phase 1 (copy): every word's current value is copied from its
//	chain end into the target. These writes touch only the target —
//	memory no guest pointer resolves to — so the reachable heap is
//	untouched no matter where phase 1 stops.
//
//	Phase 2 (plant): each chain end is overwritten with a forwarding
//	word pointing at its copy. Every plant is a single atomic
//	Unforwarded_Write, and its copy already holds the identical
//	value, so after any prefix of plants every dereference still
//	yields the value it yielded before the relocation began.
//
// The chain-append walk is bounded: if a chain exceeds the forwarder's
// HopLimit the accurate cycle check runs once (the same
// Floyd-machinery escalation Resolve performs), returning an error
// wrapping core.ErrCycle on a confirmed cycle; an acyclic walk is
// still capped by ChainCap. The old implementation span forever on a
// cyclic chain.
//
// When the machine carries a fault.Injector, TryRelocate additionally
// journals its intent through it (so fault.Scavenge can roll a torn
// relocation forward), announces the boundary fault points, and runs
// read-back verification after the copy phase and after each plant —
// the detection half of the fault model. Without an injector the
// instruction sequence is exactly the two phases above.
//
// Under concurrent execution (internal/sched) two extra rules apply,
// both free at harts=1:
//
//   - the machine's RelocationBarrier hook (if implemented) runs
//     first, before the injector is read: the scheduler drains any
//     in-flight relocation of the same block (chains must not be
//     appended to concurrently) and any in-flight *faulted* relocation
//     (the journal and the armed injector are exclusive state);
//   - each plant refreshes its copy against the chain end's current
//     value just before the forwarding word is written, making the
//     read-copy-plant step atomic with respect to mutator stores (a
//     guest store between the copy phase and the plant would otherwise
//     commit a stale copy).
func TryRelocate(m app.Machine, src, tgt mem.Addr, nWords int) error {
	if b, ok := m.(relocationBarrier); ok {
		b.RelocationBarrier(src)
	}
	inj := m.FaultInjector()
	var j *fault.Journal
	if inj != nil {
		j = &inj.Journal
	}
	fwd := m.Forwarder()
	rec := beginSpan(m, fwd, inj, src, tgt, nWords)

	j.Begin(src, tgt, nWords)
	inj.Step(fault.RelocateBegin)

	// Phase 1: walk each word's chain to its end and copy the value.
	var endsBuf [16]mem.Addr
	ends := endsBuf[:0]
	restore := inj.Region(fault.CopyWrite)
	for i := 0; i < nWords; i++ {
		s := src + mem.Addr(i*mem.WordSize)
		d := tgt + mem.Addr(i*mem.WordSize)
		m.Inst(3) // loop control and address generation
		v, fbit := m.UnforwardedRead(s)
		hops, checked := 0, false
		for fbit {
			// Append at the end of the existing forwarding chain.
			m.Inst(2)
			hops++
			if hops > fwd.HopLimit && !checked {
				// Escalate exactly as the hardware walk does: one
				// accurate (Floyd) cycle check from the chain start.
				checked = true
				if _, _, err := fwd.Resolve(src+mem.Addr(i*mem.WordSize), nil); err != nil {
					restore()
					err = fmt.Errorf("opt: relocating %#x word %d: %w", src, i, err)
					rec.finish(fwd, src, obs.RelocAborted, err)
					return err
				}
			}
			if hops > fwd.ChainCap {
				restore()
				err := fmt.Errorf("opt: relocating %#x word %d: chain exceeds cap %d", src, i, fwd.ChainCap)
				rec.finish(fwd, src, obs.RelocAborted, err)
				return err
			}
			s = mem.WordAlign(mem.Addr(v))
			v, fbit = m.UnforwardedRead(s)
		}
		m.UnforwardedWrite(d, v, false)
		ends = append(ends, s)
		j.RecordCopy(s)
		inj.Step(fault.RelocateCopied)
	}
	restore()
	rec.copyDone()

	// Copy verification, only under fault injection: re-read every copy
	// against its still-authoritative chain end, so a corrupted copy is
	// caught while the reachable heap is still untouched.
	if inj != nil {
		for i, e := range ends {
			d := tgt + mem.Addr(i*mem.WordSize)
			dv, dfb := m.UnforwardedRead(d)
			ev, _ := m.UnforwardedRead(e)
			if dfb || dv != ev {
				err := fmt.Errorf("%w: copy of word %d (%#x -> %#x)", ErrTorn, i, e, d)
				rec.finish(fwd, src, obs.RelocTorn, err)
				return err
			}
		}
		inj.Step(fault.RelocateVerify)
		rec.verifyDone()
	}

	// Phase 2: plant the forwarding words, each one atomic.
	restore = inj.Region(fault.PlantWrite)
	for i, e := range ends {
		d := tgt + mem.Addr(i*mem.WordSize)
		m.Inst(1)
		// Refresh the copy against the chain end's current value: under
		// concurrent mutators a guest store may have legally landed on e
		// since the copy phase read it. The reads and the fix-up write
		// are functional (the timed walk was already charged in phase
		// 1), and at harts=1 neither branch can fire — e cannot have
		// changed — so single-hart timing and output are untouched.
		cur, cfb := fwd.UnforwardedRead(e)
		if cfb {
			// e already forwards: unreachable under the scheduler's
			// barrier discipline (distinct relocations never share a
			// chain end, and same-block relocations are drained), kept
			// as a defensive skip — planting over a foreign forwarding
			// word would orphan its copy.
			continue
		}
		if dv, _ := fwd.UnforwardedRead(d); dv != cur {
			fwd.UnforwardedWrite(d, cur, false)
		}
		m.UnforwardedWrite(e, uint64(d), true)
		if inj != nil {
			// Plant verification: corruption after this point is no
			// longer caught by the copy check, so read the plant back.
			ev, efb := m.UnforwardedRead(e)
			if !efb || mem.Addr(ev) != d {
				restore()
				err := fmt.Errorf("%w: plant of word %d at %#x", ErrTorn, i, e)
				rec.finish(fwd, src, obs.RelocTorn, err)
				return err
			}
		}
		inj.Step(fault.RelocatePlant)
	}
	restore()
	rec.plantDone()

	inj.Step(fault.RelocateEnd)
	j.Commit()
	m.TraceRelocate(src, tgt, nWords)
	rec.finish(fwd, src, obs.RelocCommitted, nil)
	return nil
}

// Pool hands out relocation targets from contiguous memory. When one
// arena fills, the pool chains to a fresh one; consecutive Alloc calls
// within an arena are strictly adjacent, which is what creates spatial
// locality after relocation.
type Pool struct {
	m     app.Machine
	arena *mem.Arena
	chunk uint64

	// BytesUsed is the total relocation-target storage consumed — the
	// paper's Table 1 "Space Overhead" column.
	BytesUsed uint64
}

// NewPool creates a pool whose arenas are chunkBytes each.
func NewPool(m app.Machine, chunkBytes uint64) *Pool {
	if chunkBytes < 4*mem.WordSize {
		chunkBytes = 4 * mem.WordSize
	}
	return &Pool{m: m, chunk: chunkBytes}
}

// Alloc returns n contiguous bytes of fresh relocation-target memory.
func (p *Pool) Alloc(n uint64) mem.Addr {
	p.m.Inst(2) // bump-pointer allocation
	if p.arena != nil {
		if a := p.arena.Alloc(n); a != 0 {
			p.BytesUsed += n
			return a
		}
	}
	chunk := p.chunk
	if n > chunk {
		chunk = n
	}
	p.arena = mem.NewArena(p.m.Allocator(), chunk)
	a := p.arena.Alloc(n)
	if a == 0 {
		panic("opt: fresh arena could not satisfy allocation")
	}
	p.BytesUsed += n
	return a
}

// AlignTo advances the pool cursor so the next Alloc starts at a
// multiple of align (used to keep clusters from straddling lines).
func (p *Pool) AlignTo(align uint64) {
	p.m.Inst(2)
	if p.arena == nil {
		p.arena = mem.NewArena(p.m.Allocator(), p.chunk)
	}
	p.arena.AlignTo(align)
}

// ListDesc describes the layout of a singly linked list's nodes.
type ListDesc struct {
	NodeBytes uint64 // node size (word multiple)
	NextOff   uint64 // byte offset of the next pointer within the node
}

// ListLinearize relocates every node of the list whose head pointer is
// stored at headHandle into consecutive pool addresses, exactly as the
// paper's Figure 4(b): the head handle and each copied next pointer are
// updated to the new locations, so subsequent traversals through the
// head touch only the new, dense layout. Stray pointers to old node
// addresses keep working via forwarding. Returns the node count.
func ListLinearize(m app.Machine, p *Pool, headHandle mem.Addr, d ListDesc) int {
	words := int(d.NodeBytes / mem.WordSize)
	n := 0
	handle := headHandle
	node := m.LoadPtr(handle)
	for node != 0 {
		m.Inst(3) // loop control
		tgt := p.Alloc(d.NodeBytes)
		Relocate(m, node, tgt, words)
		m.StorePtr(handle, tgt)
		handle = tgt + mem.Addr(d.NextOff)
		// The copied next pointer still holds the old address of the
		// next node; read it directly from the new copy.
		node = m.LoadPtr(handle)
		n++
	}
	return n
}

// TreeDesc describes the layout of a tree's nodes.
type TreeDesc struct {
	NodeBytes uint64
	ChildOffs []uint64 // byte offsets of the child pointers
}

// SubtreeCluster relocates the tree rooted at the pointer stored in
// rootHandle so that each cluster of clusterBytes holds a subtree
// packed in the most balanced (breadth-first) form, per the BH
// case study (Figure 9). Children that do not fit the current cluster
// seed new clusters. Returns the number of nodes relocated.
func SubtreeCluster(m app.Machine, p *Pool, rootHandle mem.Addr, d TreeDesc, clusterBytes uint64) int {
	perCluster := int(clusterBytes / d.NodeBytes)
	if perCluster < 1 {
		perCluster = 1
	}
	words := int(d.NodeBytes / mem.WordSize)
	count := 0

	clusterRoots := []mem.Addr{rootHandle}
	var q []mem.Addr
	for len(clusterRoots) > 0 {
		h := clusterRoots[len(clusterRoots)-1]
		clusterRoots = clusterRoots[:len(clusterRoots)-1]
		m.Inst(2)
		if m.LoadPtr(h) == 0 {
			continue
		}
		p.AlignTo(clusterBytes)
		q = append(q[:0], h)
		taken := 0
		for len(q) > 0 && taken < perCluster {
			handle := q[0]
			q = q[1:]
			m.Inst(3)
			node := m.LoadPtr(handle)
			if node == 0 {
				continue
			}
			tgt := p.Alloc(d.NodeBytes)
			Relocate(m, node, tgt, words)
			m.StorePtr(handle, tgt)
			taken++
			count++
			for _, off := range d.ChildOffs {
				q = append(q, tgt+mem.Addr(off))
			}
		}
		// Whatever remains in breadth-first order roots new clusters.
		clusterRoots = append(clusterRoots, q...)
		q = q[:0]
	}
	return count
}
