package opt

import (
	"strings"
	"testing"

	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
	"memfwd/internal/quickseed"
	"memfwd/internal/sim"
)

func TestTryRelocateRecordsCommittedSpan(t *testing.T) {
	m := sim.New(sim.Config{LineSize: 128})
	st := obs.NewSpanTable(8)
	m.SetSpans(st)
	base := m.Malloc(3 * mem.WordSize)
	for i := 0; i < 3; i++ {
		m.StoreWord(base+mem.Addr(i*8), uint64(200+i))
	}
	tgt := outOfHeap(m, 3)
	if err := TryRelocate(m, base, tgt, 3); err != nil {
		t.Fatal(err)
	}
	spans := st.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Outcome != obs.RelocCommitted || s.Err != "" {
		t.Fatalf("outcome %q err %q, want committed", s.Outcome, s.Err)
	}
	if s.Src != uint64(base) || s.Tgt != uint64(tgt) || s.Words != 3 {
		t.Fatalf("identity wrong: %+v", s)
	}
	if s.ChainBefore != 0 || s.ChainAfter != 1 {
		t.Fatalf("chain %d -> %d, want 0 -> 1 (one forwarding hop planted)", s.ChainBefore, s.ChainAfter)
	}
	// On the cycle-accurate machine copy and plant completed with
	// non-negative costs; copy verification only exists under fault
	// injection, so with no injector it reports -1 (never ran).
	if s.CopyCycles < 0 || s.PlantCycles < 0 {
		t.Fatalf("completed phases report -1: %+v", s)
	}
	if s.VerifyCycles != -1 {
		t.Fatalf("VerifyCycles = %d, want -1 with no injector", s.VerifyCycles)
	}
	if s.TotalCycles <= 0 {
		t.Fatalf("TotalCycles = %d, want > 0", s.TotalCycles)
	}
	if sum := s.CopyCycles + s.VerifyCycles + s.PlantCycles; sum > s.TotalCycles {
		t.Fatalf("phase sum %d exceeds total %d", sum, s.TotalCycles)
	}
	if len(s.Faults) != 0 {
		t.Fatalf("no injector armed but span carries faults: %v", s.Faults)
	}
}

// TestTryRelocateVerifyPhaseUnderInjector: with an (inert) injector
// installed the copy-verification pass runs, so committed spans carry a
// real verify-phase cost instead of -1.
func TestTryRelocateVerifyPhaseUnderInjector(t *testing.T) {
	m := sim.New(sim.Config{LineSize: 128})
	st := obs.NewSpanTable(8)
	m.SetSpans(st)
	m.SetFaultInjector(fault.New(quickseed.Seed(t))) // armed with nothing
	base := m.Malloc(2 * mem.WordSize)
	m.StoreWord(base, 1)
	m.StoreWord(base+8, 2)
	if err := TryRelocate(m, base, outOfHeap(m, 2), 2); err != nil {
		t.Fatal(err)
	}
	s := st.Spans()[0]
	if s.Outcome != obs.RelocCommitted {
		t.Fatalf("outcome %q, want committed", s.Outcome)
	}
	if s.VerifyCycles < 0 {
		t.Fatalf("verify ran but reports %d", s.VerifyCycles)
	}
	if len(s.Faults) != 0 {
		t.Fatalf("inert injector produced shots: %v", s.Faults)
	}
}

// TestTryRelocateSpanChainGrowth: re-relocating the same source grows
// the chain; the spans must see it (ChainBefore climbing).
func TestTryRelocateSpanChainGrowth(t *testing.T) {
	m := sim.New(sim.Config{LineSize: 128})
	st := obs.NewSpanTable(8)
	m.SetSpans(st)
	base := m.Malloc(mem.WordSize)
	m.StoreWord(base, 7)
	for i := 0; i < 3; i++ {
		tgt := outOfHeap(m, 1) + mem.Addr(0x1000*i)
		if err := TryRelocate(m, base, tgt, 1); err != nil {
			t.Fatal(err)
		}
	}
	spans := st.Spans()
	if len(spans) != 3 {
		t.Fatalf("recorded %d spans, want 3", len(spans))
	}
	for i, s := range spans {
		if s.ChainBefore != i || s.ChainAfter != i+1 {
			t.Fatalf("span %d chain %d -> %d, want %d -> %d",
				i, s.ChainBefore, s.ChainAfter, i, i+1)
		}
	}
}

func TestTryRelocateAbortedSpanOnCycle(t *testing.T) {
	m := sim.New(sim.Config{LineSize: 128})
	st := obs.NewSpanTable(8)
	m.SetSpans(st)
	base := m.Malloc(2 * mem.WordSize)
	m.UnforwardedWrite(base, uint64(base), true) // self-loop
	if err := TryRelocate(m, base, outOfHeap(m, 1), 1); err == nil {
		t.Fatal("cyclic chain accepted")
	}
	spans := st.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Outcome != obs.RelocAborted {
		t.Fatalf("outcome %q, want aborted", s.Outcome)
	}
	if s.Err == "" {
		t.Fatal("aborted span carries no reason")
	}
	if s.ChainAfter != -1 {
		t.Fatalf("ChainAfter = %d, want -1 (nothing committed)", s.ChainAfter)
	}
	// The walk failed before any phase completed.
	if s.CopyCycles != -1 || s.VerifyCycles != -1 || s.PlantCycles != -1 {
		t.Fatalf("unreached phases not -1: %+v", s)
	}
}

// TestTryRelocateTornSpanCarriesFaultAnnotation: a bit-flip armed on the
// copy writes is caught by copy verification; the span must record the
// torn outcome, the reason, and the injector shot that caused it.
func TestTryRelocateTornSpanCarriesFaultAnnotation(t *testing.T) {
	m := sim.New(sim.Config{LineSize: 128})
	st := obs.NewSpanTable(8)
	m.SetSpans(st)
	inj := fault.New(quickseed.Seed(t)).Arm(fault.FlipBit, fault.CopyWrite, 1)
	m.SetFaultInjector(inj)
	base := m.Malloc(2 * mem.WordSize)
	m.StoreWord(base, 0xAAAA)
	m.StoreWord(base+8, 0xBBBB)
	err := TryRelocate(m, base, outOfHeap(m, 2), 2)
	if err == nil {
		t.Fatal("corrupted copy committed")
	}
	spans := st.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Outcome != obs.RelocTorn {
		t.Fatalf("outcome %q, want torn", s.Outcome)
	}
	if !strings.Contains(s.Err, "torn") {
		t.Fatalf("Err %q does not name the tear", s.Err)
	}
	if len(s.Faults) != 1 || !strings.Contains(s.Faults[0], "flip") {
		t.Fatalf("span missing fault annotation: %v", s.Faults)
	}
	// Copy completed (the flip is silent at write time); the failure is
	// at verify, so verify/plant never completed.
	if s.CopyCycles < 0 {
		t.Fatalf("copy phase should have completed: %+v", s)
	}
	if s.VerifyCycles != -1 || s.PlantCycles != -1 {
		t.Fatalf("phases past the tear not -1: %+v", s)
	}
}

// TestTryRelocateCrashRecordsNoSpan: a crash fault panics out of
// TryRelocate, modelling process death — no span is recorded, exactly
// as a real flight recorder would lose the in-flight record.
func TestTryRelocateCrashRecordsNoSpan(t *testing.T) {
	m := sim.New(sim.Config{LineSize: 128})
	st := obs.NewSpanTable(8)
	m.SetSpans(st)
	inj := fault.New(quickseed.Seed(t)).Arm(fault.Crash, fault.RelocateVerify, 1)
	m.SetFaultInjector(inj)
	base := m.Malloc(mem.WordSize)
	m.StoreWord(base, 1)
	func() {
		defer func() {
			if _, ok := fault.AsCrash(recover()); !ok {
				t.Fatal("expected crash panic")
			}
		}()
		_ = TryRelocate(m, base, outOfHeap(m, 1), 1)
	}()
	if st.Count() != 0 {
		t.Fatalf("crashed relocation recorded %d spans, want 0", st.Count())
	}
}

// TestTryRelocateWithoutTableRecordsNothing pins the disabled path: no
// table attached means no spans anywhere, and relocation still works.
func TestTryRelocateWithoutTableRecordsNothing(t *testing.T) {
	m := sim.New(sim.Config{LineSize: 128})
	base := m.Malloc(mem.WordSize)
	m.StoreWord(base, 5)
	if err := TryRelocate(m, base, outOfHeap(m, 1), 1); err != nil {
		t.Fatal(err)
	}
	if m.RelocationSpans() != nil {
		t.Fatal("machine grew a span table out of nowhere")
	}
	if got := m.LoadWord(base); got != 5 {
		t.Fatalf("value = %d, want 5", got)
	}
}
