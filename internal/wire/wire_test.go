package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U8(7)
	w.U32(0xDEADBEEF)
	w.U64(1<<63 | 12345)
	w.I64(-42)
	w.Int(-7)
	w.Bool(true)
	w.Bool(false)
	w.String("hello")
	w.Blob([]byte{1, 2, 3})
	w.String("")

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<63|12345 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Errorf("Bool round trip broken")
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	var w Writer
	w.U64(1)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.U64()
		if r.Err() == nil {
			t.Errorf("cut at %d: no error", cut)
		}
	}
}

func TestReaderErrorLatches(t *testing.T) {
	r := NewReader([]byte{1})
	r.U64() // truncated
	first := r.Err()
	if first == nil {
		t.Fatal("expected truncation error")
	}
	_ = r.U32()
	_ = r.String()
	if r.Err() != first {
		t.Fatalf("error did not latch: %v then %v", first, r.Err())
	}
}

func TestReaderBadBool(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestReaderCountBounds(t *testing.T) {
	// A huge count must fail before allocating.
	var w Writer
	w.U32(1 << 30)
	r := NewReader(w.Bytes())
	if n := r.Count(8); n != 0 || r.Err() == nil {
		t.Fatalf("Count accepted %d with %d remaining", n, r.Remaining())
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	r := NewReader([]byte{0, 0, 0, 0, 99})
	r.U32()
	if err := r.Close(); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("Close = %v, want trailing-bytes error", err)
	}
}

func TestFileFrame(t *testing.T) {
	payload := []byte("the payload")
	frame := SealFrame("TESTMAGC", 3, payload)
	v, got, err := OpenFrame("TESTMAGC", frame)
	if err != nil || v != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("OpenFrame = (%d, %q, %v)", v, got, err)
	}
	if _, _, err := OpenFrame("OTHERMAG", frame); err == nil {
		t.Error("wrong magic accepted")
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := OpenFrame("TESTMAGC", frame[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, err := OpenFrame("TESTMAGC", bad); err == nil {
			t.Errorf("bit flip at byte %d accepted", i)
		}
	}
}

func TestRecordFrame(t *testing.T) {
	var log []byte
	payloads := [][]byte{[]byte("one"), []byte(""), []byte("three")}
	for _, p := range payloads {
		log = AppendRecord(log, p)
	}
	rest := log
	for i, want := range payloads {
		var p []byte
		var err error
		p, rest, err = NextRecord(rest)
		if err != nil || !bytes.Equal(p, want) {
			t.Fatalf("record %d = (%q, %v), want %q", i, p, err, want)
		}
	}
	if p, rest, err := NextRecord(rest); p != nil || rest != nil || err != nil {
		t.Fatalf("clean EOF = (%v, %v, %v)", p, rest, err)
	}
}

func TestRecordTornTail(t *testing.T) {
	log := AppendRecord(nil, []byte("intact"))
	second := AppendRecord(nil, []byte("torn away"))
	for cut := 1; cut < len(second); cut++ {
		data := append(append([]byte(nil), log...), second[:cut]...)
		p, rest, err := NextRecord(data)
		if err != nil || string(p) != "intact" {
			t.Fatalf("cut %d: first record = (%q, %v)", cut, p, err)
		}
		if _, _, err := NextRecord(rest); !errors.Is(err, ErrTornRecord) {
			t.Fatalf("cut %d: torn tail error = %v", cut, err)
		}
	}
}

func TestRecordCorruption(t *testing.T) {
	rec := AppendRecord(nil, []byte("payload!"))
	for i := range rec {
		bad := append([]byte(nil), rec...)
		bad[i] ^= 0x10
		if _, _, err := NextRecord(bad); !errors.Is(err, ErrTornRecord) {
			// A flip in the length header can also produce a
			// plausible-but-short length that reads as truncation;
			// both must be ErrTornRecord.
			t.Errorf("flip at byte %d: err = %v", i, err)
		}
	}
}
