// Package wire is the little-endian binary substrate under the durable
// serve plane: a growing append Writer, an error-latching bounds-checked
// Reader, and the two framings every persistent artifact uses — a
// whole-file frame (magic + version + length + payload + CRC32-C) for
// snapshots, and a self-delimiting record frame (length + CRC32-C +
// payload) for write-ahead logs.
//
// The Reader is built for hostile input: every accessor validates
// bounds before touching the buffer, length-prefixed reads refuse
// counts that cannot fit in the remaining bytes (so corrupt input can
// never force a huge allocation), and the first failure latches — all
// subsequent reads return zero values, and the caller checks Err once
// at the end. Nothing in this package panics on malformed data.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// castagnoli is the CRC32-C table shared by both framings (the same
// polynomial storage systems use, with hardware support on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32-C of b.
func Checksum(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// --- Writer -----------------------------------------------------------

// Writer accumulates a little-endian encoding. The zero value is ready
// to use; Bytes returns the accumulated buffer.
type Writer struct {
	buf []byte
}

// Grow pre-sizes the buffer for n more bytes.
func (w *Writer) Grow(n int) {
	if cap(w.buf)-len(w.buf) < n {
		nb := make([]byte, len(w.buf), len(w.buf)+n)
		copy(nb, w.buf)
		w.buf = nb
	}
}

// Bytes returns the encoded buffer (owned by the Writer).
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes encoded so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I64 appends an int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// Bool appends a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// String appends a u32 length prefix and the string bytes.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob appends a u32 length prefix and the raw bytes.
func (w *Writer) Blob(b []byte) {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Raw appends bytes verbatim, with no length prefix.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// --- Reader -----------------------------------------------------------

// ErrTruncated reports input that ended before a read completed.
var ErrTruncated = errors.New("wire: truncated input")

// Reader decodes a buffer written by Writer. The first error latches:
// every later read returns a zero value, so decode sequences read
// straight through and check Err (or Close) once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps b for decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the latched decode error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Close returns the latched error, or an error if unread bytes remain —
// a full decode must consume its input exactly.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

// Fail latches err (the first call wins); decoders use it to surface
// validation failures through the same channel as truncation.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Failf latches a formatted error.
func (r *Reader) Failf(format string, args ...any) {
	r.Fail(fmt.Errorf(format, args...))
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int encoded by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// Bool reads a bool, rejecting any byte but 0 and 1 (a corrupted flag
// must fail loudly, not silently normalize on re-encode).
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail(errors.New("wire: bad bool byte"))
		return false
	}
}

// Count reads a u32 element count and validates that count*elemSize
// fits in the remaining input, so corrupt counts can never drive a
// pathological allocation. elemSize is the minimum encoded size of one
// element; pass 1 when elements are single bytes.
func (r *Reader) Count(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n < 0 || n > r.Remaining()/elemSize {
		r.Failf("wire: count %d exceeds remaining input", n)
		return 0
	}
	return n
}

// String reads a string written by Writer.String.
func (r *Reader) String() string {
	n := r.Count(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Blob reads a byte slice written by Writer.Blob (copied out of the
// input buffer).
func (r *Reader) Blob() []byte {
	n := r.Count(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// --- file frame -------------------------------------------------------

// File frame layout: magic (8 bytes) | version u32 | payloadLen u64 |
// payload | crc32c u32, where the CRC covers everything before it —
// header included, so a flipped version or length byte is as
// detectable as a flipped payload byte, and a torn write is caught no
// matter where it was cut.

// MagicLen is the required length of a file-frame magic string.
const MagicLen = 8

const fileHeaderLen = MagicLen + 4 + 8

// SealFrame wraps payload in a file frame.
func SealFrame(magic string, version uint32, payload []byte) []byte {
	if len(magic) != MagicLen {
		panic(fmt.Sprintf("wire: magic %q must be %d bytes", magic, MagicLen))
	}
	var w Writer
	w.Grow(fileHeaderLen + len(payload) + 4)
	w.Raw([]byte(magic))
	w.U32(version)
	w.U64(uint64(len(payload)))
	w.Raw(payload)
	w.U32(Checksum(w.Bytes()))
	return w.Bytes()
}

// OpenFrame validates and unwraps a file frame, returning the version
// and payload (a sub-slice of data). Truncation, a wrong magic, a
// length mismatch, trailing bytes, and a CRC mismatch are all errors.
func OpenFrame(magic string, data []byte) (version uint32, payload []byte, err error) {
	if len(magic) != MagicLen {
		panic(fmt.Sprintf("wire: magic %q must be %d bytes", magic, MagicLen))
	}
	if len(data) < fileHeaderLen+4 {
		return 0, nil, fmt.Errorf("wire: frame too short (%d bytes): %w", len(data), ErrTruncated)
	}
	if string(data[:MagicLen]) != magic {
		return 0, nil, fmt.Errorf("wire: bad magic %q (want %q)", data[:MagicLen], magic)
	}
	version = binary.LittleEndian.Uint32(data[MagicLen:])
	plen := binary.LittleEndian.Uint64(data[MagicLen+4:])
	if plen != uint64(len(data)-fileHeaderLen-4) {
		return 0, nil, fmt.Errorf("wire: frame payload length %d does not match %d data bytes", plen, len(data)-fileHeaderLen-4)
	}
	payload = data[fileHeaderLen : fileHeaderLen+int(plen)]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := Checksum(data[:len(data)-4]); got != want {
		return 0, nil, fmt.Errorf("wire: frame checksum %#x, want %#x", got, want)
	}
	return version, payload, nil
}

// --- record frame -----------------------------------------------------

// Record frame layout: payloadLen u32 | crc32c(payload) u32 | payload.
// Records are concatenated into a log; a torn tail is detected by the
// length or CRC and rolled back to the last intact record.

// MaxRecord bounds one record's payload; anything larger in a length
// header is treated as corruption rather than an allocation request.
const MaxRecord = 1 << 20

// recordHeaderLen is the fixed per-record framing overhead.
const recordHeaderLen = 8

// ErrTornRecord reports a record whose framing or checksum is invalid —
// the torn tail of a crashed log append.
var ErrTornRecord = errors.New("wire: torn record")

// AppendRecord appends a record frame around payload to dst.
func AppendRecord(dst, payload []byte) []byte {
	if len(payload) > MaxRecord {
		panic(fmt.Sprintf("wire: record payload %d exceeds MaxRecord", len(payload)))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, Checksum(payload))
	return append(dst, payload...)
}

// NextRecord splits the first record off a log buffer, returning its
// payload (a sub-slice of data) and the remainder. An empty buffer
// returns (nil, nil, nil); a damaged or incomplete head record returns
// ErrTornRecord.
func NextRecord(data []byte) (payload, rest []byte, err error) {
	if len(data) == 0 {
		return nil, nil, nil
	}
	if len(data) < recordHeaderLen {
		return nil, nil, fmt.Errorf("%w: %d-byte partial header", ErrTornRecord, len(data))
	}
	plen := binary.LittleEndian.Uint32(data)
	if plen > MaxRecord {
		return nil, nil, fmt.Errorf("%w: implausible payload length %d", ErrTornRecord, plen)
	}
	if uint32(len(data)-recordHeaderLen) < plen {
		return nil, nil, fmt.Errorf("%w: payload cut at %d of %d bytes", ErrTornRecord, len(data)-recordHeaderLen, plen)
	}
	payload = data[recordHeaderLen : recordHeaderLen+int(plen)]
	want := binary.LittleEndian.Uint32(data[4:])
	if got := Checksum(payload); got != want {
		return nil, nil, fmt.Errorf("%w: checksum %#x, want %#x", ErrTornRecord, got, want)
	}
	return payload, data[recordHeaderLen+int(plen):], nil
}
