package mp

import (
	"testing"

	"memfwd/internal/mem"
)

// pingPong runs nRounds of each processor storing to its own counter.
// With counters packed into one line this false-shares; with padded
// (relocated) counters it does not.
func pingPong(t *testing.T, relocate bool) (*System, []mem.Addr, int64) {
	t.Helper()
	s := New(Config{Processors: 4, LineSize: 64})
	base := s.Heap.Alloc(4 * 8) // four counters in one 64B line
	counters := make([]mem.Addr, 4)
	for i := range counters {
		counters[i] = base + mem.Addr(i*8)
	}
	if relocate {
		s.RelocatePadded(counters)
		// Threads keep their OLD pointers: forwarding must keep the
		// program correct while curing the false sharing.
	}
	for round := 0; round < 400; round++ {
		for i, c := range s.CPUs {
			v := c.LoadWord(counters[i])
			c.StoreWord(counters[i], v+1)
			c.Inst(4)
		}
	}
	return s, counters, s.Cycles()
}

func TestFalseSharingDetected(t *testing.T) {
	s, _, _ := pingPong(t, false)
	if s.Stats.Invalidations == 0 {
		t.Fatal("no invalidations on a falsely shared line")
	}
	if s.Stats.FalseInvalidations == 0 {
		t.Fatal("invalidations not classified as false sharing")
	}
	if s.Stats.FalseInvalidations < s.Stats.TrueInvalidations {
		t.Fatalf("expected false sharing to dominate: false=%d true=%d",
			s.Stats.FalseInvalidations, s.Stats.TrueInvalidations)
	}
}

func TestRelocationCuresFalseSharing(t *testing.T) {
	sBad, _, cyclesBad := pingPong(t, false)
	sGood, _, cyclesGood := pingPong(t, true)
	if sGood.Stats.FalseInvalidations >= sBad.Stats.FalseInvalidations/10 {
		t.Fatalf("relocation left %d false invalidations (was %d)",
			sGood.Stats.FalseInvalidations, sBad.Stats.FalseInvalidations)
	}
	if cyclesGood >= cyclesBad {
		t.Fatalf("padded counters not faster: %d vs %d", cyclesGood, cyclesBad)
	}
}

func TestStalePointersStayCorrectAcrossRelocation(t *testing.T) {
	s, counters, _ := pingPong(t, true)
	// 400 increments per processor through stale (old-address)
	// pointers; values must be exact.
	for i, c := range s.CPUs {
		if v := c.LoadWord(counters[i]); v != 400 {
			t.Fatalf("cpu %d counter = %d, want 400", i, v)
		}
	}
}

func TestTrueSharingClassified(t *testing.T) {
	s := New(Config{Processors: 2, LineSize: 64})
	x := s.Heap.Alloc(8)
	// Both processors write the SAME word: true sharing.
	for round := 0; round < 100; round++ {
		for _, c := range s.CPUs {
			v := c.LoadWord(x)
			c.StoreWord(x, v+1)
		}
	}
	if s.Stats.TrueInvalidations == 0 {
		t.Fatal("true sharing not classified")
	}
	if s.Stats.FalseInvalidations > s.Stats.TrueInvalidations/4 {
		t.Fatalf("mostly-true sharing misclassified: false=%d true=%d",
			s.Stats.FalseInvalidations, s.Stats.TrueInvalidations)
	}
	if v := s.CPUs[0].LoadWord(x); v != 200 {
		t.Fatalf("shared counter = %d, want 200", v)
	}
}

func TestInterventionOnRemoteDirtyLine(t *testing.T) {
	s := New(Config{Processors: 2, LineSize: 64})
	x := s.Heap.Alloc(8)
	s.CPUs[0].StoreWord(x, 7)
	if v := s.CPUs[1].LoadWord(x); v != 7 {
		t.Fatalf("read %d", v)
	}
	if s.Stats.Interventions != 1 {
		t.Fatalf("interventions = %d, want 1", s.Stats.Interventions)
	}
}

func TestPrivateDataNoCoherenceTraffic(t *testing.T) {
	s := New(Config{Processors: 4, LineSize: 64})
	// Each processor works on its own line: no invalidations at all.
	private := make([]mem.Addr, 4)
	for i := range private {
		private[i] = s.Heap.Alloc(64)
		for uint64(private[i])%64 != 0 {
			private[i] = s.Heap.Alloc(64)
		}
	}
	for round := 0; round < 100; round++ {
		for i, c := range s.CPUs {
			v := c.LoadWord(private[i])
			c.StoreWord(private[i], v+1)
		}
	}
	if s.Stats.Invalidations != 0 {
		t.Fatalf("invalidations on private data: %d", s.Stats.Invalidations)
	}
}

func TestRelocatePaddedTargetsLineAligned(t *testing.T) {
	s := New(Config{Processors: 2, LineSize: 64})
	base := s.Heap.Alloc(32)
	items := []mem.Addr{base, base + 8, base + 16, base + 24}
	for i, a := range items {
		s.CPUs[0].StoreWord(a, uint64(100+i))
	}
	newAddrs := s.RelocatePadded(items)
	seen := map[uint64]bool{}
	for i, na := range newAddrs {
		if uint64(na)%64 != 0 {
			t.Errorf("target %d at %#x not line-aligned", i, na)
		}
		line := uint64(na) / 64
		if seen[line] {
			t.Errorf("two items share line %#x", line)
		}
		seen[line] = true
		if v := s.CPUs[1].LoadWord(items[i]); v != uint64(100+i) {
			t.Errorf("item %d through stale pointer = %d", i, v)
		}
	}
}

func TestTooManyProcessorsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 33 processors")
		}
	}()
	New(Config{Processors: 33})
}

// TestFalseSharingWorsensWithLineSize: longer coherence units capture
// more unrelated items, so the packed layout's ping-pong grows with the
// line size while the padded layout stays clean — the paper's argument
// that relocation matters more as lines lengthen applies to coherence
// too.
func TestFalseSharingWorsensWithLineSize(t *testing.T) {
	run := func(lineSize int) uint64 {
		s := New(Config{Processors: 8, LineSize: lineSize})
		base := s.Heap.Alloc(8 * 8)
		counters := make([]mem.Addr, 8)
		for i := range counters {
			counters[i] = base + mem.Addr(i*8)
		}
		for round := 0; round < 200; round++ {
			for i, c := range s.CPUs {
				v := c.LoadWord(counters[i])
				c.StoreWord(counters[i], v+1)
			}
		}
		return s.Stats.FalseInvalidations
	}
	// At 32B lines, 8×8B counters split into two groups of four that
	// ping-pong independently; at 128B all eight share one line, so
	// every store invalidates up to seven remote copies.
	f32, f128 := run(32), run(128)
	if f128 <= f32 {
		t.Fatalf("false sharing should worsen with line size: 32B=%d 128B=%d", f32, f128)
	}
	// Padding cures it at every line size.
	for _, ls := range []int{32, 64, 128} {
		s := New(Config{Processors: 8, LineSize: ls})
		base := s.Heap.Alloc(8 * 8)
		counters := make([]mem.Addr, 8)
		for i := range counters {
			counters[i] = base + mem.Addr(i*8)
		}
		s.RelocatePadded(counters)
		for round := 0; round < 100; round++ {
			for i, c := range s.CPUs {
				v := c.LoadWord(counters[i])
				c.StoreWord(counters[i], v+1)
			}
		}
		if s.Stats.FalseInvalidations != 0 {
			t.Fatalf("line %d: padded layout still false-shares", ls)
		}
	}
}
