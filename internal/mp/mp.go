// Package mp extends the single-processor machine to a small
// cache-coherent shared-memory multiprocessor, implementing the
// false-sharing application of memory forwarding the paper describes in
// Section 2.2: "by relocating those unrelated data items to distinct
// cache lines, false sharing can be avoided. Memory forwarding would be
// especially helpful in avoiding false sharing in irregular
// shared-memory applications, where proving that data items can be
// safely relocated is difficult."
//
// The model: each processor has a private L1; an invalidation-based
// (MSI-style) directory keeps the L1s coherent at line granularity over
// a shared tagged memory. Stores invalidate remote copies; loads of a
// remotely-dirty line pay an intervention. The directory classifies
// each invalidation as true or false sharing by comparing the words the
// victim actually touched against the word being written.
//
// Timing is per-processor: each CPU owns a pipeline, and coherence
// events add latency to the access that caused them. Guest threads are
// driven in explicit rounds by the caller (lock-step interleaving),
// which is what produces the ping-ponging the paper describes.
package mp

import (
	"fmt"

	"memfwd/internal/cache"
	"memfwd/internal/core"
	"memfwd/internal/cpu"
	"memfwd/internal/mem"
)

// Config sizes the multiprocessor.
type Config struct {
	Processors int
	LineSize   int
	L1Size     int
	L1Assoc    int
	L1HitLat   int64
	MemLatency int64

	// InvalidateLat is the latency a store pays per remote copy it must
	// invalidate; InterventionLat is the latency a load pays to fetch a
	// line that is dirty in another processor's cache.
	InvalidateLat   int64
	InterventionLat int64

	HeapBase  mem.Addr
	HeapLimit uint64
}

// DefaultConfig returns a 4-processor system with health-class L1s.
func DefaultConfig() Config {
	return Config{
		Processors:      4,
		LineSize:        64,
		L1Size:          8 * 1024,
		L1Assoc:         2,
		L1HitLat:        1,
		MemLatency:      70,
		InvalidateLat:   20,
		InterventionLat: 40,
		HeapBase:        0x2000_0000,
		HeapLimit:       1 << 28,
	}
}

// Stats aggregates system-wide coherence behaviour.
type Stats struct {
	Invalidations      uint64
	FalseInvalidations uint64 // victim never touched the written word
	TrueInvalidations  uint64
	Interventions      uint64
}

type dirEntry struct {
	sharers uint32 // bitmask of processors with a copy
	dirty   int    // processor holding it modified, or -1
	// touched[i] is a bitmask of the words of this line processor i has
	// accessed since it last (re)acquired the line; used to classify
	// invalidations as true or false sharing.
	touched []uint8
}

// System is one simulated multiprocessor.
type System struct {
	cfg  Config
	Mem  *mem.Memory
	Fwd  *core.Forwarder
	Heap *mem.Allocator
	CPUs []*CPU

	dir      map[uint64]*dirEntry
	lineMask uint64

	Stats Stats
}

// CPU is one processor: a private L1 and pipeline over the shared
// memory.
type CPU struct {
	ID   int
	L1   *cache.Cache
	Pipe *cpu.Pipeline
	sys  *System
}

// New builds the system (zero config fields defaulted).
func New(cfg Config) *System {
	d := DefaultConfig()
	if cfg.Processors == 0 {
		cfg.Processors = d.Processors
	}
	if cfg.Processors > 32 {
		panic("mp: at most 32 processors")
	}
	if cfg.LineSize == 0 {
		cfg.LineSize = d.LineSize
	}
	if cfg.L1Size == 0 {
		cfg.L1Size = d.L1Size
	}
	if cfg.L1Assoc == 0 {
		cfg.L1Assoc = d.L1Assoc
	}
	if cfg.L1HitLat == 0 {
		cfg.L1HitLat = d.L1HitLat
	}
	if cfg.MemLatency == 0 {
		cfg.MemLatency = d.MemLatency
	}
	if cfg.InvalidateLat == 0 {
		cfg.InvalidateLat = d.InvalidateLat
	}
	if cfg.InterventionLat == 0 {
		cfg.InterventionLat = d.InterventionLat
	}
	if cfg.HeapBase == 0 {
		cfg.HeapBase = d.HeapBase
	}
	if cfg.HeapLimit == 0 {
		cfg.HeapLimit = d.HeapLimit
	}

	m := mem.New()
	s := &System{
		cfg:      cfg,
		Mem:      m,
		Fwd:      core.NewForwarder(m),
		Heap:     mem.NewAllocator(m, cfg.HeapBase, cfg.HeapLimit),
		dir:      make(map[uint64]*dirEntry),
		lineMask: ^uint64(cfg.LineSize - 1),
	}
	for i := 0; i < cfg.Processors; i++ {
		mm := cache.NewMainMemory(cfg.MemLatency, 8, cfg.LineSize)
		l1 := cache.New(cache.Config{
			Name: fmt.Sprintf("P%d.L1", i), SizeBytes: cfg.L1Size,
			LineSize: cfg.LineSize, Assoc: cfg.L1Assoc,
			HitLatency: cfg.L1HitLat, MSHRs: 8, TransferBytesPerCycle: 16,
		}, mm)
		s.CPUs = append(s.CPUs, &CPU{ID: i, L1: l1, Pipe: cpu.New(cpu.Config{})})
	}
	for _, c := range s.CPUs {
		c.sys = s
	}
	return s
}

func (s *System) entry(lineAddr uint64) *dirEntry {
	e := s.dir[lineAddr]
	if e == nil {
		e = &dirEntry{dirty: -1, touched: make([]uint8, s.cfg.Processors)}
		s.dir[lineAddr] = e
	}
	return e
}

func wordBit(lineAddr, a uint64) uint8 {
	off := (a - lineAddr) >> 3
	return 1 << (off & 7)
}

// coherence applies the directory protocol for processor id accessing
// address a (write or read), returning the extra latency incurred.
func (s *System) coherence(id int, a uint64, write bool) int64 {
	lineAddr := a & s.lineMask
	e := s.entry(lineAddr)
	var extra int64

	if write {
		// Invalidate every other copy.
		for j, c := range s.CPUs {
			if j == id || e.sharers&(1<<uint(j)) == 0 {
				continue
			}
			c.L1.Invalidate(a)
			s.Stats.Invalidations++
			extra += s.cfg.InvalidateLat
			if e.touched[j]&wordBit(lineAddr, a) != 0 {
				s.Stats.TrueInvalidations++
			} else {
				// The victim had the line but never touched this word:
				// the classic false-sharing ping-pong.
				s.Stats.FalseInvalidations++
			}
			e.sharers &^= 1 << uint(j)
			e.touched[j] = 0
		}
		e.dirty = id
	} else if e.dirty >= 0 && e.dirty != id {
		// Fetch from the dirty owner.
		s.Stats.Interventions++
		extra += s.cfg.InterventionLat
		e.dirty = -1
	}
	e.sharers |= 1 << uint(id)
	e.touched[id] |= wordBit(lineAddr, a)
	return extra
}

// resolve follows the shared forwarding chain.
func (c *CPU) resolve(a mem.Addr) (mem.Addr, int) {
	final, hops, err := c.sys.Fwd.Resolve(a, nil)
	if err != nil {
		panic(fmt.Sprintf("mp: %v", err))
	}
	return final, hops
}

// LoadWord performs a coherent 64-bit load.
func (c *CPU) LoadWord(a mem.Addr) uint64 {
	final, hops := c.resolve(a)
	v := c.sys.Mem.ReadWord(mem.WordAlign(final))
	r := cpu.Range{Lo: uint64(final), Hi: uint64(final) + 8}
	c.Pipe.Load(r, r, 0, func(issue int64) int64 {
		t := issue + int64(hops)*4
		t += c.sys.coherence(c.ID, uint64(mem.WordAlign(final)), false)
		ready, _ := c.L1.Access(uint64(final), cache.Load, t)
		return ready
	})
	return v
}

// StoreWord performs a coherent 64-bit store, invalidating remote
// copies of the line.
func (c *CPU) StoreWord(a mem.Addr, v uint64) {
	final, hops := c.resolve(a)
	c.sys.Mem.WriteWord(mem.WordAlign(final), v)
	r := cpu.Range{Lo: uint64(final), Hi: uint64(final) + 8}
	c.Pipe.Store(r, r, func(start int64) int64 {
		t := start + int64(hops)*4
		t += c.sys.coherence(c.ID, uint64(mem.WordAlign(final)), true)
		ready, _ := c.L1.Access(uint64(final), cache.Store, t)
		return ready
	})
}

// Inst accounts n plain instructions on this processor.
func (c *CPU) Inst(n int) {
	for i := 0; i < n; i++ {
		c.Pipe.Op(1)
	}
}

// Cycles finalizes every pipeline and returns the slowest processor's
// cycle count (parallel execution finishes when the last thread does).
func (s *System) Cycles() int64 {
	var worst int64
	for _, c := range s.CPUs {
		c.Pipe.Finalize()
		if c.Pipe.Stats.Cycles > worst {
			worst = c.Pipe.Stats.Cycles
		}
	}
	return worst
}

// RelocatePadded relocates each of the word-sized items to its own
// cache line in fresh memory, leaving forwarding addresses behind: the
// paper's false-sharing cure, safe even when other threads hold stale
// pointers. Returns the new addresses.
func (s *System) RelocatePadded(items []mem.Addr) []mem.Addr {
	out := make([]mem.Addr, len(items))
	save := s.Heap.HeaderBytes
	s.Heap.HeaderBytes = 0
	for i, a := range items {
		// Take line-sized blocks until one lands on a line boundary
		// (with headerless bump allocation this converges immediately
		// after at most one discard).
		tgt := s.Heap.Alloc(uint64(s.cfg.LineSize))
		for uint64(tgt)&^s.lineMask != 0 {
			pad := uint64(s.cfg.LineSize) - (uint64(tgt) &^ s.lineMask)
			s.Heap.Alloc(pad)
			tgt = s.Heap.Alloc(uint64(s.cfg.LineSize))
		}
		wa := mem.WordAlign(a)
		v, _ := s.Fwd.UnforwardedRead(wa)
		s.Fwd.UnforwardedWrite(tgt, v, false)
		s.Fwd.UnforwardedWrite(wa, uint64(tgt), true)
		out[i] = tgt
	}
	s.Heap.HeaderBytes = save
	return out
}
