package sched

import (
	"errors"
	"fmt"

	"memfwd/internal/apps/app"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
)

// errQuit unwinds a hart coroutine during Close; it is never stored as
// a propagated panic.
var errQuit = errors.New("sched: hart quit")

// job is one relocation assigned to a service hart: the production
// two-phase commit of jb.src into jb.tgt, optionally with a private
// fault injector armed (faulted jobs own the machine's injector slot
// and journal for their whole interleaved duration — the
// RelocationBarrier drains them before any other journaling starts).
type job struct {
	src, tgt mem.Addr
	words    int
	inj      *fault.Injector
	kind     fault.Kind
	point    fault.Point
	visit    int
}

// hart is one relocator hart: a coroutine that runs relocation jobs
// against the shared machine, suspended at every word access so the
// scheduler interleaves it with the guest at word-access granularity.
//
// The coroutine is a goroutine in a strict ping-pong handshake with the
// scheduler (resume/yielded are unbuffered): exactly one side runs at
// any instant, every hand-off is a channel operation, and all shared
// state is touched only by the running side — sequential semantics,
// deterministic under the race detector.
type hart struct {
	g  *Group
	id int // hart id on the machine (1..P-1; hart 0 is the guest)

	job *job

	resume  chan struct{}
	yielded chan struct{}
	quit    bool
	dead    bool // coroutine exited (yielded channel closed)

	panicVal any
}

func newHart(g *Group, id int) *hart {
	h := &hart{
		g:       g,
		id:      id,
		resume:  make(chan struct{}),
		yielded: make(chan struct{}),
	}
	go h.run()
	return h
}

// run is the coroutine body: park until resumed, run any assigned job
// to completion (yielding at each word access), repeat.
func (h *hart) run() {
	defer func() {
		if r := recover(); r != nil && r != errQuit { //nolint:errorlint // sentinel identity
			h.panicVal = r
		}
		close(h.yielded)
	}()
	h.await()
	for {
		for h.job == nil {
			h.yield()
		}
		h.g.runJob(h)
		h.job = nil
	}
}

// yield suspends the coroutine and hands control back to the scheduler.
func (h *hart) yield() {
	h.yielded <- struct{}{}
	h.await()
}

// await parks until the scheduler grants the next step.
func (h *hart) await() {
	<-h.resume
	if h.quit {
		panic(errQuit)
	}
}

// step grants the coroutine one step: it runs until its next yield.
// A coroutine that exits (quit, or a propagated failure) closes its
// yielded channel; the failure re-panics here, on the scheduler side.
func (h *hart) step() {
	if h.dead {
		return
	}
	h.resume <- struct{}{}
	if _, ok := <-h.yielded; !ok {
		h.dead = true
		if h.panicVal != nil {
			p := h.panicVal
			h.panicVal = nil
			panic(fmt.Sprintf("sched: hart %d: %v", h.id, p))
		}
	}
}

// hartMachine is the machine view a relocation job executes against: it
// delegates everything to the scheduler's inner machine and yields the
// coroutine *after* each word access. Yield-after is load-bearing: the
// plant step in opt.TryRelocate refreshes the copy with functional
// reads (no yield) immediately before the plant write, so
// refresh+plant execute atomically within one granted step — a mutator
// store can never slip between them.
//
// The embedded interface is the group's *inner* machine, so a job's
// relocation does not re-enter the group's own barrier or scheduling
// points, and optional interfaces the outer wrappers add (span
// recording, relocation barriers) are deliberately absent here.
type hartMachine struct {
	app.Machine
	h *hart
}

func (hm *hartMachine) ReadFBit(a mem.Addr) bool {
	v := hm.Machine.ReadFBit(a)
	hm.h.yield()
	return v
}

func (hm *hartMachine) UnforwardedRead(a mem.Addr) (uint64, bool) {
	v, fb := hm.Machine.UnforwardedRead(a)
	hm.h.yield()
	return v, fb
}

func (hm *hartMachine) UnforwardedWrite(a mem.Addr, v uint64, fbit bool) {
	hm.Machine.UnforwardedWrite(a, v, fbit)
	hm.h.yield()
}
