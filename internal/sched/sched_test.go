package sched_test

import (
	"reflect"
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/oracle"
	"memfwd/internal/sched"
	"memfwd/internal/sim"
)

// lcg drives the synthetic guest workload. Deliberately distinct from
// the scheduler's own generator so the two streams cannot accidentally
// correlate.
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s
}

func (l *lcg) intn(n int) int { return int((l.next() >> 33) % uint64(n)) }

// wblock mirrors one live heap block in the workload's memory model.
type wblock struct {
	base mem.Addr
	vals []uint64
}

// workload is the seeded guest mutator with a word-level memory model:
// every load is checked against the model the moment it returns, so a
// relocation that tears a value — or a forwarding word that leaks into
// data space — is caught at the exact racing access, not just in a
// final digest. The operation sequence depends only on the workload
// seed and the model (never on addresses or machine timing), so equal
// seeds drive any two machines through identical guest operation
// streams — the premise the scheduler's determinism contract is tested
// against.
type workload struct {
	t      *testing.T
	rng    lcg
	blocks []wblock
	sum    uint64
	ops    int
}

func newWorkload(t *testing.T, seed uint64) *workload {
	return &workload{t: t, rng: lcg{s: seed}}
}

// clone deep-copies the model so a snapshot restored onto a second
// machine can be driven through the same continuation.
func (w *workload) clone(t *testing.T) *workload {
	c := &workload{t: t, rng: w.rng, sum: w.sum, ops: w.ops}
	c.blocks = make([]wblock, len(w.blocks))
	for i, b := range w.blocks {
		c.blocks[i] = wblock{base: b.base, vals: append([]uint64(nil), b.vals...)}
	}
	return c
}

func (w *workload) run(m app.Machine, n int) {
	for i := 0; i < n; i++ {
		w.ops++
		op := w.rng.intn(100)
		switch {
		case op < 20 || len(w.blocks) == 0: // malloc + init
			words := 2 + w.rng.intn(9)
			val0 := w.rng.next()
			base := m.Malloc(uint64(words) * mem.WordSize)
			if base == 0 {
				w.t.Fatalf("op %d: malloc(%d words) failed", w.ops, words)
			}
			b := wblock{base: base, vals: make([]uint64, words)}
			for j := range b.vals {
				v := val0 + uint64(j)
				m.StoreWord(base+mem.Addr(j)*mem.WordSize, v)
				b.vals[j] = v
			}
			w.blocks = append(w.blocks, b)
		case op < 30 && len(w.blocks) > 4: // free
			k := w.rng.intn(len(w.blocks))
			m.Free(w.blocks[k].base)
			w.blocks[k] = w.blocks[len(w.blocks)-1]
			w.blocks = w.blocks[:len(w.blocks)-1]
		case op < 65: // store
			k := w.rng.intn(len(w.blocks))
			b := &w.blocks[k]
			j := w.rng.intn(len(b.vals))
			v := w.rng.next()
			m.StoreWord(b.base+mem.Addr(j)*mem.WordSize, v)
			b.vals[j] = v
		default: // load, model-checked at the racing access
			k := w.rng.intn(len(w.blocks))
			b := &w.blocks[k]
			j := w.rng.intn(len(b.vals))
			got := m.LoadWord(b.base + mem.Addr(j)*mem.WordSize)
			if got != b.vals[j] {
				w.t.Fatalf("op %d: load %#x word %d = %#x, want %#x (model)",
					w.ops, b.base, j, got, b.vals[j])
			}
			w.sum = w.sum*31 + got
		}
	}
}

func digestOf(t *testing.T, m app.Machine) uint64 {
	t.Helper()
	d, err := oracle.DigestModuloForwarding(m.Memory(), m.Forwarder(), m.Allocator())
	if err != nil {
		t.Fatalf("digest: %v", err)
	}
	return d
}

// baseline runs the workload on a bare oracle machine — no scheduler,
// no relocation — and returns its checksum and heap digest: the serial
// reference every scheduled run must be indistinguishable from.
func baseline(t *testing.T, seed uint64, ops int) (sum, dig uint64) {
	om := oracle.New(oracle.Config{})
	w := newWorkload(t, seed)
	w.run(om, ops)
	return w.sum, digestOf(t, om)
}

// TestNewValidation: bad hart counts are errors, never panics — the
// CLI and the session server surface them as usage errors / HTTP 400.
func TestNewValidation(t *testing.T) {
	for _, harts := range []int{0, -1, -64} {
		if _, err := sched.New(oracle.New(oracle.Config{}), sched.Config{Harts: harts}); err == nil {
			t.Errorf("New(harts=%d) accepted a non-positive hart count", harts)
		}
	}
	// Requesting more harts than the timing machine was built with is
	// an error too.
	m := sim.New(sim.Config{Harts: 2})
	if _, err := sched.New(m, sched.Config{Harts: 4, Seed: 1}); err == nil {
		t.Error("New(harts=4) accepted a 2-hart machine")
	}
	g, err := sched.New(m, sched.Config{Harts: 2, Seed: 1})
	if err != nil {
		t.Fatalf("New(harts=2) on a 2-hart machine: %v", err)
	}
	g.Close()
	// The functional oracle has no per-hart timing, so any count works.
	g2, err := sched.New(oracle.New(oracle.Config{}), sched.Config{Harts: 8, Seed: 1})
	if err != nil {
		t.Fatalf("New(harts=8) on the oracle: %v", err)
	}
	defer g2.Close()
	// A cursor naming an out-of-range guest hart is rejected cleanly.
	if err := g2.SetCursor(sched.Cursor{GuestHart: 9}); err == nil {
		t.Error("SetCursor accepted an out-of-range guest hart")
	}
}

// TestTransparentAtOneHart: a 1-hart group schedules nothing and is a
// transparent wrapper — same checksum, same digest, zero accounting.
func TestTransparentAtOneHart(t *testing.T) {
	const seed, ops = 21, 4000
	wantSum, wantDig := baseline(t, seed, ops)

	om := oracle.New(oracle.Config{})
	g, err := sched.New(om, sched.Config{Harts: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	w := newWorkload(t, seed)
	w.run(g, ops)
	g.Quiesce()
	if w.sum != wantSum {
		t.Errorf("checksum %#x, want %#x", w.sum, wantSum)
	}
	if d := digestOf(t, g); d != wantDig {
		t.Errorf("digest %#x, want %#x", d, wantDig)
	}
	if g.Stats() != (sched.Stats{}) {
		t.Errorf("1-hart group accumulated stats: %+v", g.Stats())
	}
}

// TestConcurrentRelocationSafety is the memory-model oracle over
// relocate-vs-mutate races: relocator harts race the guest's loads and
// stores at word granularity, every load is checked against the model
// at the racing access, and the final heap must digest identically to
// the serial no-relocation execution — across hart counts and seeds.
func TestConcurrentRelocationSafety(t *testing.T) {
	const seed, ops = 77, 6000
	wantSum, wantDig := baseline(t, seed, ops)
	for _, harts := range []int{2, 4} {
		for schedSeed := int64(1); schedSeed <= 4; schedSeed++ {
			om := oracle.New(oracle.Config{})
			g, err := sched.New(om, sched.Config{Harts: harts, Seed: schedSeed, Interval: 8})
			if err != nil {
				t.Fatal(err)
			}
			w := newWorkload(t, seed)
			w.run(g, ops)
			g.Quiesce()
			st := g.Stats()
			if w.sum != wantSum {
				t.Errorf("harts=%d seed=%d: checksum %#x, want %#x", harts, schedSeed, w.sum, wantSum)
			}
			if d := digestOf(t, g); d != wantDig {
				t.Errorf("harts=%d seed=%d: digest %#x, want %#x", harts, schedSeed, d, wantDig)
			}
			if err := oracle.CheckForwarding(om.Mem, om.Fwd); err != nil {
				t.Errorf("harts=%d seed=%d: forwarding invariants: %v", harts, schedSeed, err)
			}
			if st.Relocations == 0 {
				t.Errorf("harts=%d seed=%d: no concurrent relocations committed; test is vacuous", harts, schedSeed)
			}
			g.Close()
		}
	}
}

// TestScheduleDeterminism: equal seeds over equal guest operation
// sequences replay identical interleavings — identical accounting and
// identical cursors — and *different* seeds still converge to the same
// guest-visible behaviour.
func TestScheduleDeterminism(t *testing.T) {
	const seed, ops = 5, 5000
	type outcome struct {
		sum, dig uint64
		st       sched.Stats
		cur      sched.Cursor
	}
	once := func(schedSeed int64) outcome {
		om := oracle.New(oracle.Config{})
		g, err := sched.New(om, sched.Config{Harts: 4, Seed: schedSeed, Interval: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		w := newWorkload(t, seed)
		w.run(g, ops)
		g.Quiesce()
		return outcome{sum: w.sum, dig: digestOf(t, g), st: g.Stats(), cur: g.Cursor()}
	}
	a, b := once(11), once(11)
	if a.sum != b.sum || a.dig != b.dig {
		t.Errorf("same seed diverged: (%#x, %#x) vs (%#x, %#x)", a.sum, a.dig, b.sum, b.dig)
	}
	if a.st != b.st {
		t.Errorf("same seed, different accounting: %+v vs %+v", a.st, b.st)
	}
	if !reflect.DeepEqual(a.cur, b.cur) {
		t.Errorf("same seed, different cursors:\n  %+v\n  %+v", a.cur, b.cur)
	}
	c := once(12)
	if c.st == a.st {
		t.Log("seeds 11 and 12 happened to schedule identically (not an error)")
	}
	if c.sum != a.sum || c.dig != a.dig {
		t.Errorf("guest-visible behaviour depends on the scheduling seed: (%#x, %#x) vs (%#x, %#x)",
			c.sum, c.dig, a.sum, a.dig)
	}
}

// TestDifferentialUnderSchedule runs the timing simulator and the
// functional oracle under the *same* schedule: the scheduler's
// decisions derive only from its seed, the guest operation stream, and
// functional job progress, so equal-seeded groups over the two machines
// must interleave identically and agree on every guest-visible value.
func TestDifferentialUnderSchedule(t *testing.T) {
	const seed, ops = 33, 5000
	run := func(inner app.Machine) (uint64, uint64, sched.Stats) {
		g, err := sched.New(inner, sched.Config{Harts: 3, Seed: 9, Interval: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		w := newWorkload(t, seed)
		w.run(g, ops)
		g.Quiesce()
		return w.sum, digestOf(t, g), g.Stats()
	}
	sm := sim.New(sim.Config{Harts: 3})
	simSum, simDig, simSt := run(sm)
	sm.Finalize()
	om := oracle.New(oracle.Config{})
	oraSum, oraDig, oraSt := run(om)

	if simSum != oraSum {
		t.Errorf("checksums diverged: sim %#x, oracle %#x", simSum, oraSum)
	}
	if simDig != oraDig {
		t.Errorf("digests diverged: sim %#x, oracle %#x", simDig, oraDig)
	}
	if simSt != oraSt {
		t.Errorf("schedules diverged: sim %+v, oracle %+v", simSt, oraSt)
	}
	if simSt.Relocations == 0 {
		t.Error("no concurrent relocations committed; test is vacuous")
	}
	if err := oracle.CheckMachine(sm); err != nil {
		t.Errorf("sim invariants: %v", err)
	}
	if err := oracle.CheckForwarding(om.Mem, om.Fwd); err != nil {
		t.Errorf("oracle invariants: %v", err)
	}
}

// TestCrashConsistencyUnderContention enumerates crashes at every
// boundary point of a *contended* relocation — one racing guest loads
// and stores — and demands the scavenger roll the heap forward to a
// state digest-identical to the serial no-relocation execution. "No
// third state" under concurrency.
func TestCrashConsistencyUnderContention(t *testing.T) {
	const seed, ops = 99, 4000
	wantSum, wantDig := baseline(t, seed, ops)
	points := []fault.Point{
		fault.RelocateBegin, fault.RelocateCopied, fault.RelocateVerify,
		fault.RelocatePlant, fault.RelocateEnd,
	}
	for _, harts := range []int{2, 4} {
		crashes, scavenges := 0, 0
		for _, p := range points {
			for visit := 1; visit <= 3; visit++ {
				om := oracle.New(oracle.Config{})
				g, err := sched.New(om, sched.Config{Harts: harts, Seed: 13, Interval: 8})
				if err != nil {
					t.Fatal(err)
				}
				g.InjectNext(fault.Crash, p, visit)
				w := newWorkload(t, seed)
				w.run(g, ops)
				g.Quiesce()
				st := g.Stats()
				if w.sum != wantSum {
					t.Errorf("harts=%d crash@%v:%d: checksum %#x, want %#x", harts, p, visit, w.sum, wantSum)
				}
				if d := digestOf(t, g); d != wantDig {
					t.Errorf("harts=%d crash@%v:%d: digest %#x, want %#x", harts, p, visit, d, wantDig)
				}
				if err := oracle.CheckForwarding(om.Mem, om.Fwd); err != nil {
					t.Errorf("harts=%d crash@%v:%d: forwarding invariants: %v", harts, p, visit, err)
				}
				if st.Faulted == 0 {
					t.Errorf("harts=%d crash@%v:%d: the armed job never launched", harts, p, visit)
				}
				crashes += st.Crashes
				scavenges += st.Scavenges
				g.Close()
			}
		}
		// Individual (point, visit) pairs may legitimately never fire
		// (a visit count beyond the job's word count), but across the
		// enumeration real crashes — and journal roll-forwards — must
		// have happened, or the test proves nothing.
		if crashes == 0 || scavenges == 0 {
			t.Errorf("harts=%d: %d crashes, %d scavenges across the enumeration; test is vacuous",
				harts, crashes, scavenges)
		}
	}
}

// TestRandomFaultedSchedule drives the repertoire the chaos harness
// uses (EnableFaults: roughly a quarter of jobs crash at seeded
// boundary points) across several seeds, as a broader sweep behind the
// exhaustive enumeration above.
func TestRandomFaultedSchedule(t *testing.T) {
	const seed, ops = 55, 6000
	wantSum, wantDig := baseline(t, seed, ops)
	var crashes int
	for schedSeed := int64(1); schedSeed <= 6; schedSeed++ {
		om := oracle.New(oracle.Config{})
		g, err := sched.New(om, sched.Config{Harts: 4, Seed: schedSeed, Interval: 8})
		if err != nil {
			t.Fatal(err)
		}
		g.EnableFaults()
		w := newWorkload(t, seed)
		w.run(g, ops)
		g.Quiesce()
		if w.sum != wantSum {
			t.Errorf("seed=%d: checksum %#x, want %#x", schedSeed, w.sum, wantSum)
		}
		if d := digestOf(t, g); d != wantDig {
			t.Errorf("seed=%d: digest %#x, want %#x", schedSeed, d, wantDig)
		}
		if err := oracle.CheckForwarding(om.Mem, om.Fwd); err != nil {
			t.Errorf("seed=%d: forwarding invariants: %v", schedSeed, err)
		}
		crashes += g.Stats().Crashes
		g.Close()
	}
	if crashes == 0 {
		t.Error("no crashes fired across six faulted seeds; test is vacuous")
	}
}

// TestSnapshotRestoreMidSchedule: SaveState round-trips the multi-hart
// machine byte-exactly, the scheduler cursor round-trips through
// SetCursor, and the restored pair continues instruction-for-
// instruction identically to the source — timing included.
func TestSnapshotRestoreMidSchedule(t *testing.T) {
	cfg := sim.Config{Harts: 2}
	scfg := sched.Config{Harts: 2, Seed: 3, Interval: 8}

	m1 := sim.New(cfg)
	g1, err := sched.New(m1, scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g1.Close()
	w1 := newWorkload(t, 42)
	w1.run(g1, 3000)
	g1.Quiesce()
	st := m1.SaveState()
	cur := g1.Cursor()

	m2 := sim.New(cfg)
	if err := m2.LoadState(st); err != nil {
		t.Fatal(err)
	}
	if st2 := m2.SaveState(); !reflect.DeepEqual(st, st2) {
		t.Error("restored machine does not re-save byte-identically")
	}
	g2, err := sched.New(m2, scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Close()
	if err := g2.SetCursor(cur); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g2.Cursor(), cur) {
		t.Error("cursor did not round-trip through SetCursor")
	}

	w2 := w1.clone(t)
	w1.run(g1, 3000)
	w2.run(g2, 3000)
	g1.Quiesce()
	g2.Quiesce()
	if w1.sum != w2.sum {
		t.Errorf("continuations diverged: checksum %#x vs %#x", w1.sum, w2.sum)
	}
	if d1, d2 := digestOf(t, g1), digestOf(t, g2); d1 != d2 {
		t.Errorf("continuations diverged: digest %#x vs %#x", d1, d2)
	}
	if g1.Stats() != g2.Stats() {
		t.Errorf("continuations scheduled differently: %+v vs %+v", g1.Stats(), g2.Stats())
	}
	if !reflect.DeepEqual(g1.Cursor(), g2.Cursor()) {
		t.Error("continuations ended with different cursors")
	}
	s1, s2 := m1.Finalize(), m2.Finalize()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("continuations diverged in timing:\n  %+v\n  %+v", s1, s2)
	}
}

// TestFreeDrainsConflictingJob: freeing a block mid-relocation must not
// leave a job planting into freed memory — the group drains the
// conflicting job first. The workload above frees constantly, so this
// is exercised implicitly; here a group at maximum launch pressure
// frees every block it allocates immediately after a burst of traffic.
func TestFreeDrainsConflictingJob(t *testing.T) {
	om := oracle.New(oracle.Config{})
	g, err := sched.New(om, sched.Config{Harts: 4, Seed: 17, Interval: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i := 0; i < 400; i++ {
		b := g.Malloc(8 * 8)
		for j := 0; j < 8; j++ {
			g.StoreWord(b+mem.Addr(j)*mem.WordSize, uint64(i*8+j))
		}
		for j := 0; j < 8; j++ {
			if got := g.LoadWord(b + mem.Addr(j)*mem.WordSize); got != uint64(i*8+j) {
				t.Fatalf("block %d word %d: got %d", i, j, got)
			}
		}
		g.Free(b)
	}
	g.Quiesce()
	if err := oracle.CheckForwarding(om.Mem, om.Fwd); err != nil {
		t.Errorf("forwarding invariants: %v", err)
	}
}
