package sched

import (
	"fmt"

	"memfwd/internal/mem"
)

// Cursor is the scheduler's complete resumable state: the generator
// word, the launch countdown, block tracking, arena and budget cursors,
// and the accounting. A Group restored from a Cursor (on any process,
// any shard) makes decisions identical to the source group's — the
// scheduler side of the snapshot/restore determinism contract
// (DESIGN.md §10), extended to multi-hart sessions. All fields are
// exported plain data so the cursor serializes with the machine state.
//
// A cursor captures no in-flight jobs: Cursor requires a quiescent
// group (call Quiesce first), which also parks the underlying machine
// on the guest hart — exactly the state sim.SaveState demands.
type Cursor struct {
	RngState   uint64
	Countdown  int
	GuestHart  int
	WordBudget int64
	ArenaNext  mem.Addr
	ArenaEnd   mem.Addr
	Blocks     []mem.Addr
	Faults     bool
	Stats      Stats
}

// Cursor captures the scheduler state. The group must be idle: no job
// in flight on any hart (Quiesce guarantees this).
func (g *Group) Cursor() Cursor {
	for _, h := range g.harts {
		if h.job != nil && !h.dead {
			panic(fmt.Sprintf("sched: Cursor with a job in flight on hart %d (Quiesce first)", h.id))
		}
	}
	return Cursor{
		RngState:   g.rng.state,
		Countdown:  g.countdown,
		GuestHart:  g.guestHart,
		WordBudget: g.wordBudget,
		ArenaNext:  g.arenaNext,
		ArenaEnd:   g.arenaEnd,
		Blocks:     append([]mem.Addr(nil), g.blocks...),
		Faults:     g.faults,
		Stats:      g.stats,
	}
}

// SetCursor restores a cursor captured from an equal-configured group.
// The group must be idle (freshly built, or quiesced).
func (g *Group) SetCursor(c Cursor) error {
	for _, h := range g.harts {
		if h.job != nil && !h.dead {
			return fmt.Errorf("sched: SetCursor with a job in flight on hart %d", h.id)
		}
	}
	if c.GuestHart < 0 || c.GuestHart >= g.cfg.Harts {
		return fmt.Errorf("sched: cursor guest hart %d out of range (harts=%d)", c.GuestHart, g.cfg.Harts)
	}
	g.rng.state = c.RngState
	g.countdown = c.Countdown
	g.wordBudget = c.WordBudget
	g.arenaNext = c.ArenaNext
	g.arenaEnd = c.ArenaEnd
	g.blocks = append(g.blocks[:0], c.Blocks...)
	g.faults = c.Faults
	g.stats = c.Stats
	g.SetGuestHart(c.GuestHart)
	return nil
}
