package sched

// prng is a splitmix64 generator. The scheduler cannot use math/rand:
// the cursor (Cursor/SetCursor) must round-trip the generator state
// byte-exactly through snapshots, and splitmix64's whole state is one
// word. Quality is far beyond what interleaving choice needs.
type prng struct {
	state uint64
}

func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// intn returns a value in [0, n). n must be positive. The tiny modulo
// bias is irrelevant for scheduling draws and keeps the draw count per
// decision fixed at one, which the replay contract depends on.
func (p *prng) intn(n int) int {
	return int(p.next() % uint64(n))
}
