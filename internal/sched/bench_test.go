package sched_test

import (
	"testing"

	"memfwd/internal/mem"
	"memfwd/internal/oracle"
	"memfwd/internal/sched"
	"memfwd/internal/sim"
)

// BenchmarkGroupTransparent is the single-hart tax: a guest load
// routed through a harts=1 group, which schedules nothing. This is
// the overhead every existing configuration pays for the multi-hart
// machinery merely existing, so it is alloc-gated at zero.
func BenchmarkGroupTransparent(b *testing.B) {
	m := oracle.New(oracle.Config{})
	g, err := sched.New(m, sched.Config{Harts: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	a := g.Malloc(4096)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.LoadWord(a)
	}
	_ = sink
}

// BenchmarkGroupPoint is the steady-state multi-hart tax: one guest
// load through a harts=4 group whose launch countdown never expires —
// the per-operation scheduling-point cost with no job in flight.
func BenchmarkGroupPoint(b *testing.B) {
	m := oracle.New(oracle.Config{})
	g, err := sched.New(m, sched.Config{Harts: 4, Seed: 1, Interval: 1 << 28})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	a := g.Malloc(4096)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.LoadWord(a)
	}
	_ = sink
}

// BenchmarkGroupContendedRun is a whole contended workload per
// iteration: a guest allocating, mutating, and reading 64 blocks on
// the timing simulator while three relocator harts race it at an
// aggressive launch interval, then a quiesce committing whatever is
// still in flight. This is the end-to-end price of concurrent
// relocation, pipelines and caches included.
func BenchmarkGroupContendedRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := sim.New(sim.Config{Harts: 4})
		g, err := sched.New(m, sched.Config{Harts: 4, Seed: int64(i) + 1, Interval: 4})
		if err != nil {
			b.Fatal(err)
		}
		blocks := make([]mem.Addr, 0, 64)
		for j := 0; j < 64; j++ {
			blocks = append(blocks, g.Malloc(256))
		}
		var sink uint64
		for j := 0; j < 4096; j++ {
			a := blocks[j%len(blocks)]
			g.StoreWord(a+mem.Addr(j%32)*8, uint64(j))
			sink += g.LoadWord(a + mem.Addr(j/2%32)*8)
		}
		g.Quiesce()
		if g.Stats().Relocations == 0 {
			b.Fatal("no relocations committed; benchmark is vacuous")
		}
		g.Close()
		_ = sink
	}
}
