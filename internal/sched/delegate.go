package sched

import (
	"fmt"

	"memfwd/internal/core"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
)

// app.Machine delegation. Scheduling points (point) fire at the guest's
// *data* operations — loads, stores, malloc, free — matching the chaos
// Relocator's interception sites. The ISA-extension primitives
// (ReadFBit, UnforwardedRead/Write, FinalAddr) and Inst deliberately
// take no scheduling point: they are what guest-initiated relocation
// passes (opt.ListLinearize and friends) are made of, so a guest
// relocation runs with no job launches between its own word accesses —
// the RelocationBarrier at its head is then sufficient to keep the
// group's jobs off its source block for the whole two-phase commit.

// Inst delegates (no scheduling point; see above).
func (g *Group) Inst(n int) { g.inner.Inst(n) }

// Load takes a scheduling point and delegates.
func (g *Group) Load(a mem.Addr, size uint) uint64 {
	g.point()
	return g.inner.Load(a, size)
}

// Store takes a scheduling point and delegates.
func (g *Group) Store(a mem.Addr, v uint64, size uint) {
	g.point()
	g.inner.Store(a, v, size)
}

// LoadWord delegates through Load.
func (g *Group) LoadWord(a mem.Addr) uint64 { return g.Load(a, 8) }

// StoreWord delegates through Store.
func (g *Group) StoreWord(a mem.Addr, v uint64) { g.Store(a, v, 8) }

// LoadPtr delegates through Load.
func (g *Group) LoadPtr(a mem.Addr) mem.Addr { return mem.Addr(g.Load(a, 8)) }

// StorePtr delegates through Store.
func (g *Group) StorePtr(a, p mem.Addr) { g.Store(a, uint64(p), 8) }

// Load32 delegates through Load.
func (g *Group) Load32(a mem.Addr) uint32 { return uint32(g.Load(a, 4)) }

// Store32 delegates through Store.
func (g *Group) Store32(a mem.Addr, v uint32) { g.Store(a, uint64(v), 4) }

// Load16 delegates through Load.
func (g *Group) Load16(a mem.Addr) uint16 { return uint16(g.Load(a, 2)) }

// Store16 delegates through Store.
func (g *Group) Store16(a mem.Addr, v uint16) { g.Store(a, uint64(v), 2) }

// Load8 delegates through Load.
func (g *Group) Load8(a mem.Addr) uint8 { return uint8(g.Load(a, 1)) }

// Store8 delegates through Store.
func (g *Group) Store8(a mem.Addr, v uint8) { g.Store(a, uint64(v), 1) }

// Prefetch delegates.
func (g *Group) Prefetch(a mem.Addr, lines int) { g.inner.Prefetch(a, lines) }

// ReadFBit delegates (no scheduling point; see the package note above).
func (g *Group) ReadFBit(a mem.Addr) bool { return g.inner.ReadFBit(a) }

// UnforwardedRead delegates.
func (g *Group) UnforwardedRead(a mem.Addr) (uint64, bool) { return g.inner.UnforwardedRead(a) }

// UnforwardedWrite delegates.
func (g *Group) UnforwardedWrite(a mem.Addr, v uint64, fbit bool) {
	g.inner.UnforwardedWrite(a, v, fbit)
}

// FinalAddr delegates.
func (g *Group) FinalAddr(a mem.Addr) mem.Addr { return g.inner.FinalAddr(a) }

// PtrEqual delegates.
func (g *Group) PtrEqual(a, b mem.Addr) bool { return g.inner.PtrEqual(a, b) }

// SetTrap delegates.
func (g *Group) SetTrap(h core.TrapHandler) { g.inner.SetTrap(h) }

// Malloc takes a scheduling point, delegates, and tracks the new block
// as relocation-eligible.
func (g *Group) Malloc(n uint64) mem.Addr {
	g.point()
	a := g.inner.Malloc(n)
	// A fresh block overlapping an in-flight job's source means the
	// liveness discipline broke somewhere (the allocator zeroes reused
	// space, wiping the job's half-planted forwarding words): fail at
	// the cause, not at the eventual digest mismatch.
	for _, h := range g.harts {
		if h.job != nil && !h.dead && h.job.src >= a && h.job.src < a+mem.Addr(n) {
			panic(fmt.Sprintf("sched: malloc %#x+%#x overlaps in-flight relocation of %#x", a, n, h.job.src))
		}
	}
	if a != 0 && len(g.blocks) < g.maxBlocks {
		g.blocks = append(g.blocks, a)
	}
	return a
}

// Free takes its scheduling point first, then drains any in-flight job
// relocating the same logical object — a relocation must not outlive
// its object's liveness, and the machine's Free releases every block on
// the forwarding chain (the Section 3.3 deallocation wrapper), so the
// match must be by object identity, not raw address: the guest may free
// through a relocated alias of the job's source base. The order is
// load-bearing: the scheduling point may itself launch a job on this
// object (it is still live until the delegation below), so draining
// must come after the last point at which a job can appear and before
// the allocator revokes the blocks — otherwise a later Malloc could
// reuse the range and zero the job's half-planted forwarding words.
// (The tracking list drops the block lazily via the allocator's
// liveness check.)
func (g *Group) Free(a mem.Addr) {
	g.point()
	if !g.inService {
		for _, h := range g.harts {
			if h.job != nil && !h.dead && g.sameObject(h.job.src, a) {
				g.drain(h)
			}
		}
	}
	g.inner.Free(a)
}

// Allocator delegates.
func (g *Group) Allocator() *mem.Allocator { return g.inner.Allocator() }

// Memory delegates.
func (g *Group) Memory() *mem.Memory { return g.inner.Memory() }

// Forwarder delegates.
func (g *Group) Forwarder() *core.Forwarder { return g.inner.Forwarder() }

// LineSize delegates.
func (g *Group) LineSize() int { return g.inner.LineSize() }

// FaultInjector delegates.
func (g *Group) FaultInjector() *fault.Injector { return g.inner.FaultInjector() }

// SetFaultInjector installs an injector from outside the group (the
// chaos adversary's faulted episodes, crash-consistency harnesses).
// The injector's write hook sees and visit-counts every write reaching
// the tagged memory — including a half-done job's copy and plant
// writes, which would silently consume the caller's armed visits (or
// fire its crash inside the group's own job). So a non-nil install
// first drives every in-flight job to completion; launches stay
// suppressed while a foreign injector is installed.
func (g *Group) SetFaultInjector(in *fault.Injector) {
	if in != nil {
		g.Quiesce()
	}
	g.inner.SetFaultInjector(in)
}

// Site delegates.
func (g *Group) Site(name string) int { return g.inner.Site(name) }

// SetSite delegates.
func (g *Group) SetSite(id int) { g.inner.SetSite(id) }

// PhaseBegin delegates.
func (g *Group) PhaseBegin(name string) { g.inner.PhaseBegin(name) }

// PhaseEnd delegates.
func (g *Group) PhaseEnd(name string) { g.inner.PhaseEnd(name) }

// TraceRelocate delegates.
func (g *Group) TraceRelocate(src, tgt mem.Addr, nWords int) {
	g.inner.TraceRelocate(src, tgt, nWords)
}

// Now forwards the machine's cycle clock when it has one (sim and
// oracle machines both do), so span recording survives the group being
// in the interceptor chain.
func (g *Group) Now() int64 {
	if sr, ok := g.inner.(interface{ Now() int64 }); ok {
		return sr.Now()
	}
	return 0
}

// RelocationSpans forwards the machine's span table when it has one.
func (g *Group) RelocationSpans() *obs.SpanTable {
	if sr, ok := g.inner.(interface{ RelocationSpans() *obs.SpanTable }); ok {
		return sr.RelocationSpans()
	}
	return nil
}
