// Package sched is the deterministic seeded multi-hart scheduler: it
// runs relocations *concurrently* with the guest program, interleaved
// at word-access granularity, and makes every interleaving enumerable
// and replayable from a seed.
//
// A Group wraps an app.Machine (the interceptor pattern the chaos
// Relocator established) and owns P-1 relocator harts, each a
// coroutine driving the production two-phase commit (opt.TryRelocate)
// against the shared tagged memory. At every intercepted guest
// operation the Group may launch a new relocation job and grants a
// seeded number of single-word steps to in-flight jobs; each step runs
// one word access of a relocation, bracketed by sim.SetHart so its
// timing lands on the relocator hart's private pipeline and caches.
// The guest's loads and stores therefore genuinely race the copy and
// plant phases, with the forwarding word as the read barrier — the
// paper's central safety claim, exercised for real.
//
// Determinism: every decision comes from a splitmix64 generator
// advanced only by the guest's operation sequence and the (functional)
// progress of jobs. Two machines driven through identical guest
// operations under equal-seeded Groups make identical decisions — the
// differential harness runs the timing simulator and the functional
// oracle under the *same* schedule and demands identical results.
//
// Allowed behaviours (DESIGN.md §12): a Group must never make a guest
// operation return a value that differs from some serial execution of
// the same operations without relocation, and DigestModuloForwarding
// must be invariant across seeds, hart counts, and crash points.
package sched

import (
	"fmt"

	"memfwd/internal/apps/app"
	"memfwd/internal/core"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
)

// Config parameterizes a Group.
type Config struct {
	// Harts is the total hart count including the guest mutator
	// (hart 0). Must be >= 1; a 1-hart group schedules nothing and is
	// a transparent wrapper.
	Harts int

	// Seed drives every scheduling decision. Equal seeds over equal
	// guest operation sequences replay identical interleavings.
	Seed int64

	// Interval is the mean number of guest operations between job
	// launches (0 takes 64, the chaos Relocator's default cadence).
	Interval int

	// MaxBlockBytes caps the size of blocks eligible for relocation
	// jobs; WordBudget bounds the total words relocated over the
	// group's lifetime (defaults match the chaos Relocator).
	MaxBlockBytes uint64
	WordBudget    int64
}

// Stats is the group's accounting.
type Stats struct {
	Relocations int   // jobs committed (including scavenged-forward)
	Faulted     int   // jobs run with a private injector armed
	Crashes     int   // armed crashes that fired
	Scavenges   int   // torn jobs rolled forward from their journal
	Steps       int64 // single-word service steps granted
	Drains      int   // jobs force-completed by the relocation barrier
}

// hartSwitcher is the optional per-hart timing interface of the inner
// machine (sim.Machine, or the serve proxy forwarding to one). Absent
// — the functional oracle — service steps still run, just without
// per-hart timing attribution.
type hartSwitcher interface {
	SetHart(i int)
	HartCount() int
}

// maxGrantsPerPoint bounds service steps granted at one guest
// operation; together with the 1-in-3 stop draw it yields about two
// steps per point when jobs are in flight.
const maxGrantsPerPoint = 4

// Group implements app.Machine, scheduling concurrent relocations
// around the guest operations it forwards. Not safe for concurrent use
// by multiple goroutines — like the machine it wraps, it belongs to
// one guest.
type Group struct {
	inner app.Machine
	hs    hartSwitcher // nil when inner has no per-hart timing
	cfg   Config
	rng   prng

	harts     []*hart
	countdown int
	guestHart int

	blocks     []mem.Addr
	maxBlocks  int
	wordBudget int64

	arenaNext, arenaEnd mem.Addr

	faults    bool
	forced    *job // InjectNext's pending plan
	inService bool
	closed    bool

	stats Stats
}

var _ app.Machine = (*Group)(nil)

// New wraps inner in a scheduling group. An error (never a panic) is
// returned for a non-positive hart count or one exceeding the inner
// machine's harts — the CLI/HTTP layers surface it as a clean input
// error.
func New(inner app.Machine, cfg Config) (*Group, error) {
	if cfg.Harts < 1 {
		return nil, fmt.Errorf("sched: harts must be at least 1 (got %d)", cfg.Harts)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 64
	}
	if cfg.MaxBlockBytes == 0 {
		cfg.MaxBlockBytes = 1 << 19
	}
	if cfg.WordBudget == 0 {
		cfg.WordBudget = 1 << 19
	}
	g := &Group{
		inner:      inner,
		cfg:        cfg,
		rng:        prng{state: uint64(cfg.Seed)},
		maxBlocks:  1 << 14,
		wordBudget: cfg.WordBudget,
	}
	if hs, ok := inner.(hartSwitcher); ok {
		if hs.HartCount() < cfg.Harts {
			return nil, fmt.Errorf("sched: %d harts requested but the machine has %d", cfg.Harts, hs.HartCount())
		}
		g.hs = hs
	}
	// Private relocation arena, above the guest heap AND above the
	// chaos Relocator's region (both size from the same heap end), so
	// the two adversaries can stack without colliding.
	_, heapEnd := inner.Allocator().Range()
	base := (heapEnd+0xF_FFFF)&^0xF_FFFF + 0x10_0000 + (1 << 28) + 0x10_0000
	g.arenaNext = base
	g.arenaEnd = base + (1 << 28)
	for i := 1; i < cfg.Harts; i++ {
		g.harts = append(g.harts, newHart(g, i))
	}
	g.reload()
	return g, nil
}

// Stats returns the group's accounting so far.
func (g *Group) Stats() Stats { return g.stats }

// EnableFaults adds crash injection to the repertoire: roughly a
// quarter of subsequent jobs run with a private injector arming a
// crash at a seeded boundary point of the relocation. Crash is the
// only kind injected concurrently — corruption kinds verify against
// values a racing mutator may legally change, so they stay with the
// (atomic) chaos Relocator.
func (g *Group) EnableFaults() { g.faults = true }

// InjectNext arms the next *solo* launch — a faulted job is exclusive
// with other jobs (see launch), so the plan waits until a job launches
// with no other job in flight — with exactly this fault plan (test
// hook for the exhaustive crash-point enumeration). kind should be
// fault.Crash; visit counts above the job's word count simply never
// fire.
func (g *Group) InjectNext(kind fault.Kind, p fault.Point, visit int) {
	g.forced = &job{kind: kind, point: p, visit: visit}
}

// reload draws the next launch countdown.
func (g *Group) reload() { g.countdown = 1 + g.rng.intn(2*g.cfg.Interval) }

// point runs at every intercepted guest operation: maybe launch a job,
// then grant a seeded burst of service steps to in-flight jobs.
func (g *Group) point() {
	if len(g.harts) == 0 || g.inService {
		return
	}
	g.inService = true
	defer func() { g.inService = false }()
	g.countdown--
	if g.countdown <= 0 {
		g.reload()
		g.launch()
	}
	for i := 0; i < maxGrantsPerPoint; i++ {
		h := g.pickBusy()
		if h == nil {
			return
		}
		if g.rng.intn(3) == 0 {
			return
		}
		g.svcStep(h)
	}
}

// svcStep grants one coroutine step as the hart's identity: the step's
// timing lands on that hart's pipeline and caches, and the machine is
// restored to the guest hart afterwards (also on a propagated panic,
// so failure reports read coherent state).
func (g *Group) svcStep(h *hart) {
	if g.hs != nil {
		g.hs.SetHart(h.id)
		defer g.hs.SetHart(g.guestHart)
	}
	g.stats.Steps++
	h.step()
}

// pickBusy draws a random hart with a job in flight (nil when idle).
func (g *Group) pickBusy() *hart {
	n := 0
	for _, h := range g.harts {
		if h.job != nil && !h.dead {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	k := g.rng.intn(n)
	for _, h := range g.harts {
		if h.job != nil && !h.dead {
			if k == 0 {
				return h
			}
			k--
		}
	}
	return nil
}

// launch assigns a relocation job to an idle hart, if a hart and an
// eligible block are available. No launch happens while a foreign
// injector is installed on the machine: job writes would pollute its
// visit counting and journal (see SetFaultInjector).
//
// A faulted job is additionally exclusive with every other group job,
// in both directions. The machine has one injector slot and one
// journal, and a job binds to them by reading FaultInjector() at its
// *first step* — not at launch — so any overlap cross-wires them: a
// clean job that starts while a faulted job's injector is installed
// would journal into the faulted job's journal (and the scavenger
// would then replay the wrong relocation), and a faulted job that
// installs its injector while a clean job is waiting for its first
// step poisons that job the same way. Hence: nothing launches while a
// faulted job is in flight, and a fault arms only when no other job
// is in flight. Faulted jobs still race the guest's loads and stores
// — exclusivity is only between relocator harts.
func (g *Group) launch() {
	if g.inner.FaultInjector() != nil {
		return
	}
	var idle *hart
	nIdle, inFlight := 0, 0
	for _, h := range g.harts {
		if h.dead {
			continue
		}
		if h.job == nil {
			nIdle++
		} else {
			inFlight++
			if h.job.inj != nil {
				return
			}
		}
	}
	if nIdle == 0 {
		return
	}
	k := g.rng.intn(nIdle)
	for _, h := range g.harts {
		if h.job == nil && !h.dead {
			if k == 0 {
				idle = h
				break
			}
			k--
		}
	}
	base := g.pickBlock()
	if base == 0 || g.busyOn(base) {
		return
	}
	size, ok := g.inner.Allocator().SizeOf(base)
	if !ok || size > g.cfg.MaxBlockBytes {
		return
	}
	words := int(size / mem.WordSize)
	if words == 0 || g.wordBudget < int64(words) {
		return
	}
	tgt := g.arenaTake(size)
	if tgt == 0 {
		return
	}
	g.wordBudget -= int64(words)

	jb := &job{src: base, tgt: tgt, words: words}
	switch {
	case inFlight > 0:
		// Not alone: launch clean (see the exclusivity rule above). A
		// forced injection stays armed for the next solo launch.
	case g.forced != nil:
		jb.kind, jb.point, jb.visit = g.forced.kind, g.forced.point, g.forced.visit
		jb.inj = fault.New(int64(g.rng.next()>>1)).Arm(jb.kind, jb.point, jb.visit)
		g.forced = nil
		g.stats.Faulted++
	case g.faults && g.rng.intn(4) == 0:
		jb.kind = fault.Crash
		jb.point, jb.visit = g.armCrash(words)
		jb.inj = fault.New(int64(g.rng.next()>>1)).Arm(jb.kind, jb.point, jb.visit)
		g.stats.Faulted++
	}
	idle.job = jb
}

// armCrash draws a crash point and a visit count within a words-long
// relocation's boundary steps.
func (g *Group) armCrash(words int) (fault.Point, int) {
	points := []fault.Point{
		fault.RelocateBegin, fault.RelocateCopied, fault.RelocateVerify,
		fault.RelocatePlant, fault.RelocateEnd,
	}
	p := points[g.rng.intn(len(points))]
	switch p {
	case fault.RelocateCopied, fault.RelocatePlant:
		return p, 1 + g.rng.intn(words)
	default:
		return p, 1
	}
}

// pickBlock draws a live tracked block (0 when none), lazily dropping
// dead ones — the same policy as the chaos Relocator.
func (g *Group) pickBlock() mem.Addr {
	al := g.inner.Allocator()
	for len(g.blocks) > 0 {
		i := g.rng.intn(len(g.blocks))
		base := g.blocks[i]
		if !al.Live(base) {
			g.blocks[i] = g.blocks[len(g.blocks)-1]
			g.blocks = g.blocks[:len(g.blocks)-1]
			continue
		}
		return base
	}
	return 0
}

// busyOn reports whether some in-flight job is relocating base.
func (g *Group) busyOn(base mem.Addr) bool {
	for _, h := range g.harts {
		if h.job != nil && h.job.src == base {
			return true
		}
	}
	return false
}

// arenaTake bumps n word-rounded bytes off the private arena (0 when
// exhausted; the group then goes quiet, like the chaos arena).
func (g *Group) arenaTake(n uint64) mem.Addr {
	n = (n + mem.WordSize - 1) &^ uint64(mem.WordSize-1)
	if g.arenaNext+mem.Addr(n) > g.arenaEnd {
		return 0
	}
	a := g.arenaNext
	g.arenaNext += mem.Addr(n)
	return a
}

// runJob executes one job inside a hart coroutine: the production
// two-phase commit through the yield-instrumented machine view, crash
// recovery and journal roll-forward on failure, and a structural
// post-check. It runs interleaved with the guest; only the code
// between two yields is atomic.
func (g *Group) runJob(h *hart) {
	jb := h.job
	hm := &hartMachine{Machine: g.inner, h: h}

	prev := g.inner.FaultInjector()
	inj := prev
	if jb.inj != nil {
		// A faulted job owns the machine's injector slot (and with it
		// the journal) for its whole interleaved duration; the
		// RelocationBarrier drains it before anyone else journals.
		g.inner.SetFaultInjector(jb.inj)
		inj = jb.inj
	}
	err := func() (err error) {
		defer fault.RecoverCrash(&err)
		return opt.TryRelocate(hm, jb.src, jb.tgt, jb.words)
	}()
	if jb.inj != nil {
		g.inner.SetFaultInjector(prev)
		if jb.inj.Fired() {
			g.stats.Crashes++
		}
	}
	if err != nil {
		// Crash or torn detection: roll the relocation forward from its
		// journal. Scavenge runs on raw memory with the injector
		// suspended and executes here without yields, so the repair is
		// atomic with respect to the guest — exactly the stop-the-world
		// recovery pass DESIGN.md §8 describes.
		if inj == nil {
			panic(fmt.Sprintf("sched: relocation of %#x (%d words): %v", jb.src, jb.words, err))
		}
		if _, serr := fault.Scavenge(g.inner.Memory(), g.inner.Forwarder(), &inj.Journal, inj); serr != nil {
			panic(fmt.Sprintf("sched: scavenge of %#x after %q: %v", jb.src, err, serr))
		}
		g.stats.Scavenges++
	}

	// Structural verification, valid under contention (racing mutator
	// stores legally change *values*, which the surrounding
	// differential harness checks end to end): every source word must
	// resolve to its copy, and no copy may itself forward.
	fwd := g.inner.Forwarder()
	for i := 0; i < jb.words; i++ {
		s := jb.src + mem.Addr(i*mem.WordSize)
		d := jb.tgt + mem.Addr(i*mem.WordSize)
		final, _, rerr := fwd.Resolve(s, nil)
		if rerr != nil {
			panic(fmt.Sprintf("sched: post-job resolve of %#x: %v", s, rerr))
		}
		if mem.WordAlign(final) != d {
			panic(fmt.Sprintf("sched: post-job %#x resolves to %#x, want %#x (job %#x->%#x %dw, fault %v@%v:%d fired=%v err=%v)",
				s, final, d, jb.src, jb.tgt, jb.words, jb.kind, jb.point, jb.visit, jb.inj.Fired(), err))
		}
		if _, fb := fwd.UnforwardedRead(d); fb {
			panic(fmt.Sprintf("sched: post-job copy %#x forwards", d))
		}
	}
	g.stats.Relocations++
}

// RelocationBarrier is opt.TryRelocate's pre-flight hook: before any
// relocation by anyone *outside* the group's own harts (a layout pass
// run by the guest, the tiering daemon, the chaos adversary) touches
// shared relocation state, conflicting in-flight jobs are driven to
// completion. Two conflicts exist: a job on the same source block
// (concurrent chain-append would let a plant land at a stale chain end
// and the scavenger treat a foreign plant as corruption), and — when
// any injector is in play — any faulted job (journals and the
// machine's injector slot are exclusive).
func (g *Group) RelocationBarrier(src mem.Addr) {
	if len(g.harts) == 0 || g.inService {
		return
	}
	g.inService = true
	defer func() { g.inService = false }()
	for _, h := range g.harts {
		if h.job == nil || h.dead {
			continue
		}
		if g.sameObject(h.job.src, src) || h.job.inj != nil || g.inner.FaultInjector() != nil {
			g.drain(h)
		}
	}
}

// finalOf resolves a's forwarding chain to its final word without
// going through the Forwarder — crucially, without touching its
// FaultHook, so a barrier or free check never consumes an armed
// injector's visit counts or perturbs crash timing. Reports false on a
// chain longer than any the group can legally build (a cycle, or
// memory mid-corruption); callers treat that conservatively.
func (g *Group) finalOf(a mem.Addr) (mem.Addr, bool) {
	mm := g.inner.Memory()
	wa := mem.WordAlign(a)
	for hops := 0; mm.FBit(wa); hops++ {
		if hops > 4*core.DefaultHopLimit {
			return 0, false
		}
		wa = mem.WordAlign(mem.Addr(mm.ReadWord(wa)))
	}
	return wa, true
}

// sameObject reports whether two pointers name the same logical object
// — their forwarding chains converge on the same final word. A guest
// that has already relocated a block holds the *new* address, so a
// conflict check comparing raw source addresses misses the alias: the
// group's job (keyed by the original base) and the guest's re-
// relocation (keyed by the previous target) then race their plants on
// the very same chain-end words. Distinct objects can never share a
// chain word — every relocation target starts unreachable — so final-
// word equality is exactly object identity. Unresolvable chains count
// as conflicting, which at worst drains a job early.
func (g *Group) sameObject(a, b mem.Addr) bool {
	fa, oka := g.finalOf(a)
	fb, okb := g.finalOf(b)
	if !oka || !okb {
		return true
	}
	return fa == fb
}

// drain drives one hart's in-flight job to completion.
func (g *Group) drain(h *hart) {
	g.stats.Drains++
	for h.job != nil && !h.dead {
		g.svcStep(h)
	}
}

// Quiesce drives every in-flight job to completion, leaving the group
// idle and the heap free of half-planted relocations. Required before
// Cursor, SaveState on the underlying machine, or a final digest that
// should reflect only committed relocations.
func (g *Group) Quiesce() {
	if g.inService {
		return
	}
	g.inService = true
	defer func() { g.inService = false }()
	for _, h := range g.harts {
		for h.job != nil && !h.dead {
			g.svcStep(h)
		}
	}
}

// Close terminates the hart coroutines. In-flight jobs are abandoned
// mid-relocation (call Quiesce first if the machine is used again);
// Close is terminal and idempotent.
func (g *Group) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, h := range g.harts {
		h.quit = true
		h.step()
	}
}

// SetGuestHart moves the guest mutator onto hart i (the fuzzer's
// hart-switch opcode): subsequent guest operations charge hart i's
// timing state. Purely a timing identity — functional behaviour is
// unchanged, so oracle-backed groups accept it as a no-op draw.
// Sharing an id with a busy relocator hart is allowed; both then
// accumulate onto the same pipeline.
func (g *Group) SetGuestHart(i int) {
	if i < 0 || i >= g.cfg.Harts {
		panic(fmt.Sprintf("sched: SetGuestHart(%d) out of range (harts=%d)", i, g.cfg.Harts))
	}
	g.guestHart = i
	if g.hs != nil {
		g.hs.SetHart(i)
	}
}
