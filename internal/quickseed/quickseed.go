// Package quickseed is the shared seeded-RNG helper for the repo's
// testing/quick property tests. Every property previously built its
// own anonymous quick.Config, which made failures irreproducible: the
// default quick.Config draws from a global time-seeded source. This
// helper gives each property a deterministic per-test seed, logs it,
// and lets a failing run be replayed exactly with -quickseed=<value>.
//
// It lives in its own leaf package (rather than internal/apps/apptest,
// where the rest of the shared test harness is) because the in-package
// property tests of mem, cache, and cpu sit below apptest in the
// import graph; apptest re-exports it for the packages above.
package quickseed

import (
	"flag"
	"math/rand"
	"testing"
	"testing/quick"
)

var flagSeed = flag.Int64("quickseed", 0,
	"override the per-test property seed (0 = derive from the test name)")

// seedFor derives a stable nonzero seed from a test name (FNV-1a).
func seedFor(name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	s := int64(h &^ (1 << 63))
	if s == 0 {
		s = 1
	}
	return s
}

// Seed returns the property seed in effect for t: the -quickseed flag
// when set, otherwise a stable value derived from the test's name. It
// logs the seed so a failure report always carries its reproduction
// recipe.
func Seed(t *testing.T) int64 {
	t.Helper()
	s := *flagSeed
	if s == 0 {
		s = seedFor(t.Name())
	}
	t.Logf("property seed %d (replay with -quickseed=%d)", s, s)
	return s
}

// Rand returns a deterministic RNG for t, seeded via Seed.
func Rand(t *testing.T) *rand.Rand {
	t.Helper()
	return rand.New(rand.NewSource(Seed(t)))
}

// Config returns a quick.Config with maxCount cases drawn from the
// deterministic per-test RNG.
func Config(t *testing.T, maxCount int) *quick.Config {
	t.Helper()
	return &quick.Config{MaxCount: maxCount, Rand: Rand(t)}
}
