package mem

import (
	"testing"
	"testing/quick"

	"memfwd/internal/quickseed"
)

func newTestAlloc() *Allocator {
	return NewAllocator(New(), 0x10000, 1<<24)
}

func TestAllocWordAligned(t *testing.T) {
	al := newTestAlloc()
	for _, n := range []uint64{1, 7, 8, 9, 24, 100} {
		a := al.Alloc(n)
		if a&WordMask != 0 {
			t.Errorf("Alloc(%d) = %#x not word-aligned", n, a)
		}
	}
}

func TestAllocZeroSizeGetsAWord(t *testing.T) {
	al := newTestAlloc()
	a := al.Alloc(0)
	if sz, ok := al.SizeOf(a); !ok || sz != WordSize {
		t.Fatalf("Alloc(0): size %d ok %v", sz, ok)
	}
}

func TestAllocBlocksDisjoint(t *testing.T) {
	al := newTestAlloc()
	type blk struct {
		base Addr
		size uint64
	}
	var blocks []blk
	sizes := []uint64{8, 16, 24, 40, 8, 128, 56, 16}
	for _, n := range sizes {
		a := al.Alloc(n)
		for _, b := range blocks {
			if a < b.base+Addr(b.size) && b.base < a+Addr(roundSize(n)) {
				t.Fatalf("block %#x+%d overlaps %#x+%d", a, n, b.base, b.size)
			}
		}
		blocks = append(blocks, blk{a, roundSize(n)})
	}
}

func TestFreeReuse(t *testing.T) {
	al := newTestAlloc()
	a := al.Alloc(32)
	al.Free(a)
	b := al.Alloc(32)
	if a != b {
		t.Fatalf("LIFO reuse expected: got %#x, freed %#x", b, a)
	}
	// Reused block must come back zeroed with clear fbits.
	al.m.WriteWordFBit(b, 99, true)
	al.Free(b)
	c := al.Alloc(32)
	if v, f := al.m.ReadWordFBit(c); v != 0 || f {
		t.Fatalf("reused block not scrubbed: (%d,%v)", v, f)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	al := newTestAlloc()
	a := al.Alloc(16)
	al.Free(a)
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	al.Free(a)
}

func TestFreeUnknownPanics(t *testing.T) {
	al := newTestAlloc()
	defer func() {
		if recover() == nil {
			t.Fatal("free of unknown address did not panic")
		}
	}()
	al.Free(0x999000)
}

func TestAccounting(t *testing.T) {
	al := newTestAlloc()
	a := al.Alloc(16)
	b := al.Alloc(24)
	if al.BytesLive != 40 || al.PeakLive != 40 {
		t.Fatalf("live %d peak %d", al.BytesLive, al.PeakLive)
	}
	al.Free(a)
	if al.BytesLive != 24 || al.PeakLive != 40 {
		t.Fatalf("after free: live %d peak %d", al.BytesLive, al.PeakLive)
	}
	al.Free(b)
	if al.BytesLive != 0 {
		t.Fatalf("live %d after freeing all", al.BytesLive)
	}
	if al.BytesAllocated != 40 {
		t.Fatalf("cumulative %d", al.BytesAllocated)
	}
}

func TestHeaderPaddingScattersBlocks(t *testing.T) {
	al := newTestAlloc()
	a := al.Alloc(8)
	b := al.Alloc(8)
	if b-a != Addr(8+al.HeaderBytes) {
		t.Fatalf("gap %d, want %d", b-a, 8+al.HeaderBytes)
	}
}

// Property: any interleaving of allocs and frees keeps live blocks
// disjoint and the accounting consistent.
func TestAllocatorProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		al := NewAllocator(New(), 0x10000, 1<<26)
		var liveList []Addr
		for _, op := range ops {
			if op%3 != 0 || len(liveList) == 0 {
				n := uint64(op%200) + 1
				liveList = append(liveList, al.Alloc(n))
			} else {
				i := int(op/3) % len(liveList)
				al.Free(liveList[i])
				liveList = append(liveList[:i], liveList[i+1:]...)
			}
		}
		blocks := al.LiveBlocks()
		if len(blocks) != len(liveList) {
			return false
		}
		var sum uint64
		for i, b := range blocks {
			sz, ok := al.SizeOf(b)
			if !ok {
				return false
			}
			sum += sz
			if i > 0 {
				prev := blocks[i-1]
				psz, _ := al.SizeOf(prev)
				if prev+Addr(psz) > b {
					return false // overlap
				}
			}
		}
		return sum == al.BytesLive
	}
	if err := quick.Check(f, quickseed.Config(t, 200)); err != nil {
		t.Fatal(err)
	}
}

func TestArena(t *testing.T) {
	al := newTestAlloc()
	ar := NewArena(al, 64)
	a := ar.Alloc(8)
	b := ar.Alloc(8)
	if b != a+8 {
		t.Fatalf("arena not contiguous: %#x then %#x", a, b)
	}
	c := ar.Alloc(48)
	if c == 0 {
		t.Fatal("arena should have fit 48 more bytes")
	}
	if d := ar.Alloc(8); d != 0 {
		t.Fatalf("exhausted arena returned %#x", d)
	}
	if ar.Used() != 64 || ar.Remaining() != 0 {
		t.Fatalf("used %d remaining %d", ar.Used(), ar.Remaining())
	}
}

func TestArenaHasNoHeaderGaps(t *testing.T) {
	al := newTestAlloc()
	ar := NewArena(al, 1024)
	prev := ar.Alloc(24)
	for i := 0; i < 10; i++ {
		next := ar.Alloc(24)
		if next != prev+24 {
			t.Fatalf("gap inside arena: %#x after %#x", next, prev)
		}
		prev = next
	}
}

func TestSizeOfBrkContains(t *testing.T) {
	al := newTestAlloc()
	a := al.Alloc(24)
	if sz, ok := al.SizeOf(a); !ok || sz != 24 {
		t.Fatalf("SizeOf: %d %v", sz, ok)
	}
	if _, ok := al.SizeOf(a + 8); ok {
		t.Fatal("SizeOf of interior address")
	}
	if !al.Contains(a) || al.Contains(0x2) {
		t.Fatal("Contains")
	}
	if al.Brk() <= a {
		t.Fatal("Brk should be past the allocation")
	}
}

func TestPinnedBlocks(t *testing.T) {
	al := newTestAlloc()
	a := al.Alloc(64)
	al.Pin(a)
	if al.Freeable(a) {
		t.Fatal("pinned block reported freeable")
	}
	if !al.Live(a) {
		t.Fatal("pinned block must stay live")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("freeing a pinned block must panic")
			}
		}()
		al.Free(a)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pinning an unallocated block must panic")
			}
		}()
		al.Pin(0x424240)
	}()
}

func TestArenaAlignTo(t *testing.T) {
	al := newTestAlloc()
	ar := NewArena(al, 256)
	ar.Alloc(8)
	ar.AlignTo(64)
	a := ar.Alloc(8)
	if a == 0 || uint64(a)%64 != 0 {
		t.Fatalf("post-AlignTo block %#x not 64-byte aligned", a)
	}
	// Aligning an already-aligned cursor is a no-op.
	used := ar.Used()
	ar.AlignTo(8)
	if ar.Used() != used {
		t.Fatalf("AlignTo on aligned cursor moved it: %d -> %d", used, ar.Used())
	}
}

// Regression: when the aligned position falls beyond the arena's end,
// AlignTo must exhaust the arena (cursor to end, next Alloc returns 0).
// An earlier version left the cursor where it was, so the next Alloc
// quietly handed out a block violating the alignment just requested.
func TestArenaAlignToPastEnd(t *testing.T) {
	al := newTestAlloc()
	ar := NewArena(al, 40)
	if uint64(ar.Base())%64 != 0 {
		t.Fatalf("test precondition: arena base %#x must be 64-aligned", ar.Base())
	}
	if ar.Alloc(8) == 0 {
		t.Fatal("fresh arena exhausted")
	}
	ar.AlignTo(64) // base is 64-aligned, so next boundary is past end
	if got := ar.Alloc(8); got != 0 {
		t.Fatalf("Alloc after past-end AlignTo returned %#x, want 0 (exhausted)", got)
	}
	if ar.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", ar.Remaining())
	}
}

func TestArenaAlignToBadArg(t *testing.T) {
	al := newTestAlloc()
	ar := NewArena(al, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("AlignTo(3) must panic")
		}
	}()
	ar.AlignTo(3)
}

func TestZeroUnalignedPanics(t *testing.T) {
	m := New()
	defer func() {
		if recover() == nil {
			t.Fatal("Zero on unaligned base must panic")
		}
	}()
	m.Zero(0x1001, 16)
}

func TestAllocatorExhaustionPanics(t *testing.T) {
	al := NewAllocator(New(), 0x1000, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted arena must panic")
		}
	}()
	for i := 0; i < 10; i++ {
		al.Alloc(32)
	}
}
