// Package mem implements the tagged-memory substrate required by memory
// forwarding (Luk & Mowry, ISCA 1999, Section 2.1): a sparse 64-bit
// simulated address space in which every 64-bit word carries a one-bit
// tag (the "forwarding bit") distinguishing forwarding addresses from
// ordinary data.
//
// This package is purely functional state: it knows nothing about
// forwarding semantics (internal/core), caches, or timing. It provides
// word and subword access, the forwarding-bit bitmap, and a word-aligned
// allocator.
package mem

import (
	"errors"
	"fmt"
	"sort"
)

// Addr is a simulated 64-bit virtual address.
type Addr uint64

// Word geometry of the simulated machine. The paper assumes a 64-bit
// architecture: forwarding operates at the granularity of one pointer,
// i.e. one 8-byte word.
const (
	WordSize  = 8 // bytes per word
	WordShift = 3
	WordMask  = WordSize - 1

	PageShift = 12 // 4 KB pages
	PageBytes = 1 << PageShift
	PageWords = PageBytes / WordSize
	pageMask  = PageBytes - 1
)

// WordAlign rounds a down to its containing word boundary.
func WordAlign(a Addr) Addr { return a &^ WordMask }

// WordOffset returns the byte offset of a within its word.
func WordOffset(a Addr) uint { return uint(a & WordMask) }

// ErrUnaligned is returned for accesses that are not naturally aligned
// for their size (guest programs keep natural alignment, as C compilers
// guarantee for scalar fields).
var ErrUnaligned = errors.New("mem: unaligned access")

type page struct {
	words [PageWords]uint64
	fbits [PageWords / 8]uint8
}

func (p *page) fbit(w uint) bool { return p.fbits[w>>3]&(1<<(w&7)) != 0 }
func (p *page) setFbit(w uint)   { p.fbits[w>>3] |= 1 << (w & 7) }
func (p *page) clearFbit(w uint) { p.fbits[w>>3] &^= 1 << (w & 7) }
func (p *page) putFbit(w uint, b bool) {
	if b {
		p.setFbit(w)
	} else {
		p.clearFbit(w)
	}
}

// Memory is a sparse paged 64-bit address space with one forwarding bit
// per word. Pages materialize on first touch, zero-filled with all
// forwarding bits clear — this models the operating system's
// Unforwarded_Write(0,0) initialization obligation from Section 3.3 of
// the paper.
//
// A small direct page cache (the MRU page plus a 2-way victim file)
// front-ends the page map: simulated programs overwhelmingly touch the
// same page on consecutive references, so the hot word/fbit accessors
// resolve without a map lookup or any allocation. The cache holds only
// materialized pages (never negative "no page" results), and pages are
// never unmapped, so cached entries cannot go stale; materialization
// simply installs the fresh page as the MRU entry. Memory is not safe
// for concurrent use — the cache mutates on reads.
type Memory struct {
	pages map[Addr]*page

	// Page cache: mru is the last page touched, vic holds the two most
	// recently demoted pages (round-robin fill via vicPtr).
	mruPN  Addr
	mru    *page
	vicPN  [2]Addr
	vic    [2]*page
	vicPtr uint8

	// PagesTouched counts pages materialized so far; it backs the
	// space-overhead accounting in Table 1.
	PagesTouched int

	// writeFault, when non-nil, intercepts every WriteWordFBit — the
	// Unforwarded_Write storage path — and may corrupt the value or the
	// forwarding bit before they land (fault injection; see
	// internal/fault). Ordinary data stores (WriteWord/WriteData) are
	// not interposed: the fault surface under study is the relocation
	// instrument, not the whole memory system.
	writeFault func(a Addr, v uint64, fbit bool) (uint64, bool)
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[Addr]*page)}
}

// lookup returns the materialized page containing a, or nil. The MRU
// check is the hit path taken by nearly every access.
func (m *Memory) lookup(a Addr) *page {
	pn := a >> PageShift
	if pn == m.mruPN && m.mru != nil {
		return m.mru
	}
	return m.lookupSlow(pn)
}

// lookupSlow probes the victim file, then the page map, promoting any
// hit to MRU.
func (m *Memory) lookupSlow(pn Addr) *page {
	for i := range m.vic {
		if m.vicPN[i] == pn && m.vic[i] != nil {
			// Swap with the MRU slot so neither entry is lost.
			p := m.vic[i]
			m.vic[i], m.vicPN[i] = m.mru, m.mruPN
			m.mru, m.mruPN = p, pn
			return p
		}
	}
	p := m.pages[pn]
	if p != nil {
		m.install(pn, p)
	}
	return p
}

// install makes (pn, p) the MRU cache entry, demoting the previous MRU
// page into the victim file.
func (m *Memory) install(pn Addr, p *page) {
	if m.mru != nil {
		m.vic[m.vicPtr], m.vicPN[m.vicPtr] = m.mru, m.mruPN
		m.vicPtr ^= 1
	}
	m.mru, m.mruPN = p, pn
}

func (m *Memory) page(a Addr) *page {
	if p := m.lookup(a); p != nil {
		return p
	}
	pn := a >> PageShift
	p := new(page)
	m.pages[pn] = p
	m.PagesTouched++
	m.install(pn, p)
	return p
}

// peek returns the page containing a if it has been touched, else nil.
func (m *Memory) peek(a Addr) *page { return m.lookup(a) }

func wordIndex(a Addr) uint { return uint((a & pageMask) >> WordShift) }

// ReadWord returns the raw 64-bit word containing a (a is word-aligned
// by the caller or rounded down here). No forwarding interpretation.
func (m *Memory) ReadWord(a Addr) uint64 {
	p := m.peek(a)
	if p == nil {
		return 0
	}
	return p.words[wordIndex(a)]
}

// WriteWord stores a raw 64-bit word at the word containing a, leaving
// the forwarding bit unchanged.
func (m *Memory) WriteWord(a Addr, v uint64) {
	m.page(a).words[wordIndex(a)] = v
}

// FBit reports the forwarding bit of the word containing a. This is the
// state inspected by the Read_FBit ISA extension (Figure 3).
func (m *Memory) FBit(a Addr) bool {
	p := m.peek(a)
	if p == nil {
		return false
	}
	return p.fbit(wordIndex(a))
}

// WriteWordFBit atomically stores v and the forwarding bit at the word
// containing a. This is the storage effect of the Unforwarded_Write ISA
// extension (Figure 3): "an Unforwarded_Write must change the word and
// its forwarding bit atomically".
func (m *Memory) WriteWordFBit(a Addr, v uint64, fbit bool) {
	if m.writeFault != nil {
		v, fbit = m.writeFault(a, v, fbit)
	}
	p := m.page(a)
	w := wordIndex(a)
	p.words[w] = v
	p.putFbit(w, fbit)
}

// SetWriteFault installs (or, with nil, removes) the write-fault hook
// consulted by WriteWordFBit. The hook may panic to model a crash at
// the instruction boundary before the write; the write then never
// lands.
func (m *Memory) SetWriteFault(f func(a Addr, v uint64, fbit bool) (uint64, bool)) {
	m.writeFault = f
}

// ReadWordFBit returns both the raw word and its forwarding bit, the
// storage effect of Unforwarded_Read (Figure 3).
func (m *Memory) ReadWordFBit(a Addr) (uint64, bool) {
	p := m.peek(a)
	if p == nil {
		return 0, false
	}
	w := wordIndex(a)
	return p.words[w], p.fbit(w)
}

// checkAlign validates natural alignment for a subword access of the
// given size (1, 2, 4, or 8 bytes). Naturally aligned accesses never
// cross a word boundary, which matches the paper's model where the byte
// offset into a forwarded word is preserved at the new location.
func checkAlign(a Addr, size uint) error {
	switch size {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("mem: bad access size %d", size)
	}
	if uint64(a)&uint64(size-1) != 0 {
		return ErrUnaligned
	}
	return nil
}

// ReadData reads size bytes (1, 2, 4, or 8) at a, zero-extended, with no
// forwarding interpretation. Returns ErrUnaligned for unnatural
// alignment.
func (m *Memory) ReadData(a Addr, size uint) (uint64, error) {
	if err := checkAlign(a, size); err != nil {
		return 0, err
	}
	w := m.ReadWord(WordAlign(a))
	if size == 8 {
		return w, nil
	}
	shift := WordOffset(a) * 8
	mask := (uint64(1) << (size * 8)) - 1
	return (w >> shift) & mask, nil
}

// WriteData writes the low size bytes of v at a with no forwarding
// interpretation, leaving the rest of the word and the forwarding bit
// unchanged.
func (m *Memory) WriteData(a Addr, v uint64, size uint) error {
	if err := checkAlign(a, size); err != nil {
		return err
	}
	wa := WordAlign(a)
	if size == 8 {
		m.WriteWord(wa, v)
		return nil
	}
	shift := WordOffset(a) * 8
	mask := ((uint64(1) << (size * 8)) - 1) << shift
	old := m.ReadWord(wa)
	m.WriteWord(wa, (old&^mask)|((v<<shift)&mask))
	return nil
}

// Touched reports whether the page containing a has been materialized.
// Untouched pages read as zero with clear forwarding bits; a touched
// page is one some write has reached.
func (m *Memory) Touched(a Addr) bool { return m.lookup(a) != nil }

// TouchedPages returns the base addresses of all materialized pages in
// ascending order. Heap digests and whole-memory invariant sweeps use
// it to enumerate every word that can differ from the zero-fill state.
func (m *Memory) TouchedPages() []Addr {
	out := make([]Addr, 0, len(m.pages))
	for pn := range m.pages {
		out = append(out, pn<<PageShift)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Zero clears exactly n bytes starting at a (word-aligned base),
// clearing the forwarding bit of every fully covered word — modelling
// OS initialization of fresh memory. If n is not a word multiple, the
// final partial word has only its low n%8 bytes cleared; the remaining
// bytes and that word's forwarding bit are preserved, since they belong
// to a neighbouring object that Zero has no licence to clobber.
func (m *Memory) Zero(a Addr, n uint64) {
	if a&WordMask != 0 {
		panic("mem: Zero requires word-aligned base")
	}
	full := n &^ uint64(WordMask)
	for off := uint64(0); off < full; off += WordSize {
		m.WriteWordFBit(a+Addr(off), 0, false)
	}
	if rem := n & WordMask; rem != 0 {
		wa := a + Addr(full)
		mask := (uint64(1) << (rem * 8)) - 1
		m.WriteWord(wa, m.ReadWord(wa)&^mask)
	}
}
