package mem

import (
	"testing"
	"testing/quick"

	"memfwd/internal/quickseed"
)

func TestWordAlign(t *testing.T) {
	cases := []struct {
		in   Addr
		want Addr
		off  uint
	}{
		{0, 0, 0}, {1, 0, 1}, {7, 0, 7}, {8, 8, 0}, {0x1234, 0x1230, 4},
	}
	for _, c := range cases {
		if got := WordAlign(c.in); got != c.want {
			t.Errorf("WordAlign(%#x) = %#x, want %#x", c.in, got, c.want)
		}
		if got := WordOffset(c.in); got != c.off {
			t.Errorf("WordOffset(%#x) = %d, want %d", c.in, got, c.off)
		}
	}
}

func TestFreshMemoryIsZeroWithClearFBits(t *testing.T) {
	m := New()
	for _, a := range []Addr{0, 8, 0x1000, 0xdeadbee8, 1 << 40} {
		if v := m.ReadWord(a); v != 0 {
			t.Errorf("fresh word at %#x = %d, want 0", a, v)
		}
		if m.FBit(a) {
			t.Errorf("fresh fbit at %#x set, want clear", a)
		}
	}
}

func TestWriteReadWord(t *testing.T) {
	m := New()
	m.WriteWord(0x100, 0xdeadbeefcafebabe)
	if got := m.ReadWord(0x100); got != 0xdeadbeefcafebabe {
		t.Fatalf("got %#x", got)
	}
	// Writing a word must not disturb the forwarding bit.
	if m.FBit(0x100) {
		t.Fatal("WriteWord set fbit")
	}
}

func TestWriteWordFBitAtomicity(t *testing.T) {
	m := New()
	m.WriteWordFBit(0x200, 0x5800, true)
	v, f := m.ReadWordFBit(0x200)
	if v != 0x5800 || !f {
		t.Fatalf("got (%#x,%v), want (0x5800,true)", v, f)
	}
	m.WriteWordFBit(0x200, 42, false)
	v, f = m.ReadWordFBit(0x200)
	if v != 42 || f {
		t.Fatalf("got (%#x,%v), want (42,false)", v, f)
	}
}

func TestFBitIndependentPerWord(t *testing.T) {
	m := New()
	m.WriteWordFBit(0x1000, 1, true)
	for _, a := range []Addr{0xff8, 0x1008, 0x1010} {
		if m.FBit(a) {
			t.Errorf("fbit at %#x leaked from neighbour", a)
		}
	}
	// Clearing one word's bit leaves the neighbour set.
	m.WriteWordFBit(0x1008, 2, true)
	m.WriteWordFBit(0x1000, 1, false)
	if m.FBit(0x1000) || !m.FBit(0x1008) {
		t.Fatal("fbit bitmap not independent per word")
	}
}

func TestSubwordReadWrite(t *testing.T) {
	m := New()
	// Build the word byte by byte and read it back at each granularity.
	base := Addr(0x3000)
	for i := uint64(0); i < 8; i++ {
		if err := m.WriteData(base+Addr(i), 0x10+i, 1); err != nil {
			t.Fatal(err)
		}
	}
	want := uint64(0x1716151413121110)
	if got, _ := m.ReadData(base, 8); got != want {
		t.Fatalf("word = %#x, want %#x", got, want)
	}
	if got, _ := m.ReadData(base+4, 4); got != 0x17161514 {
		t.Fatalf("upper half = %#x", got)
	}
	if got, _ := m.ReadData(base+2, 2); got != 0x1312 {
		t.Fatalf("half = %#x", got)
	}
	if got, _ := m.ReadData(base+5, 1); got != 0x15 {
		t.Fatalf("byte = %#x", got)
	}
	// A subword write leaves the rest of the word intact.
	if err := m.WriteData(base+4, 0xAABBCCDD, 4); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.ReadData(base, 8); got != 0xAABBCCDD13121110 {
		t.Fatalf("after subword write = %#x", got)
	}
}

func TestSubwordAlignment(t *testing.T) {
	m := New()
	if _, err := m.ReadData(0x1001, 2); err != ErrUnaligned {
		t.Errorf("2-byte read at odd address: err = %v, want ErrUnaligned", err)
	}
	if _, err := m.ReadData(0x1002, 4); err != ErrUnaligned {
		t.Errorf("4-byte read at 2 mod 4: err = %v, want ErrUnaligned", err)
	}
	if _, err := m.ReadData(0x1004, 8); err != ErrUnaligned {
		t.Errorf("8-byte read at 4 mod 8: err = %v, want ErrUnaligned", err)
	}
	if err := m.WriteData(0x1003, 1, 2); err != ErrUnaligned {
		t.Errorf("unaligned write: err = %v", err)
	}
	if _, err := m.ReadData(0x1000, 3); err == nil {
		t.Error("size-3 read accepted")
	}
}

func TestSubwordWritePreservesFBit(t *testing.T) {
	m := New()
	m.WriteWordFBit(0x4000, 0x5800, true)
	if err := m.WriteData(0x4004, 7, 4); err != nil {
		t.Fatal(err)
	}
	if !m.FBit(0x4000) {
		t.Fatal("subword WriteData cleared the fbit")
	}
}

func TestZero(t *testing.T) {
	m := New()
	for i := Addr(0); i < 4; i++ {
		m.WriteWordFBit(0x5000+i*8, uint64(i)+1, true)
	}
	m.Zero(0x5000, 32)
	for i := Addr(0); i < 4; i++ {
		v, f := m.ReadWordFBit(0x5000 + i*8)
		if v != 0 || f {
			t.Fatalf("word %d after Zero: (%d,%v)", i, v, f)
		}
	}
}

// Zero with a non-word-multiple length clears only the low n%8 bytes of
// the final word; the remaining bytes and that word's forwarding bit
// belong to a neighbouring object and must survive. (An earlier version
// zeroed the whole final word, clobbering the neighbour.)
func TestZeroPartialFinalWord(t *testing.T) {
	m := New()
	m.WriteWordFBit(0x5000, 0xAAAAAAAAAAAAAAAA, true)
	m.WriteWordFBit(0x5008, 0xBBBBBBBBCCCCCCCC, true)
	m.Zero(0x5000, 12)
	if v, f := m.ReadWordFBit(0x5000); v != 0 || f {
		t.Fatalf("fully covered word after Zero: (%#x,%v)", v, f)
	}
	v, f := m.ReadWordFBit(0x5008)
	if v != 0xBBBBBBBB00000000 {
		t.Fatalf("partial word = %#x, want high bytes preserved", v)
	}
	if !f {
		t.Fatal("Zero cleared the fbit of a partially covered word")
	}
	// Zero of zero bytes touches nothing.
	m.Zero(0x5008, 0)
	if v, f := m.ReadWordFBit(0x5008); v != 0xBBBBBBBB00000000 || !f {
		t.Fatalf("Zero(_, 0) modified memory: (%#x,%v)", v, f)
	}
}

// The page cache in front of the page map must never affect visibility:
// a miss on an untouched page (which returns zero without materializing)
// must not be cached as if the page existed, and a later write to that
// page must be observed by subsequent reads.
func TestPageCacheMaterializationVisibility(t *testing.T) {
	m := New()
	pageA := Addr(0x10000)
	pageB := Addr(0x20000)
	m.WriteWord(pageA, 111)
	if v := m.ReadWord(pageB); v != 0 {
		t.Fatalf("untouched page read %d", v)
	}
	if m.PagesTouched != 1 {
		t.Fatalf("read materialized a page: %d", m.PagesTouched)
	}
	m.WriteWord(pageB, 222)
	if v := m.ReadWord(pageB); v != 222 {
		t.Fatalf("write to previously-missed page invisible: %d", v)
	}
	if v := m.ReadWord(pageA); v != 111 {
		t.Fatalf("page A lost after B materialized: %d", v)
	}
	if v := m.ReadWord(pageB); v != 222 {
		t.Fatalf("page B lost after re-reading A: %d", v)
	}
}

// Sweeping across more pages than the cache holds (MRU + 2 victims)
// must still read every word back, exercising victim promotion and
// map refill.
func TestPageCacheCrossPageSweep(t *testing.T) {
	m := New()
	const pages = 8
	for i := 0; i < pages; i++ {
		for w := 0; w < 4; w++ {
			a := Addr(i)*PageBytes + Addr(w*WordSize)
			m.WriteWord(a, uint64(i*100+w))
		}
	}
	check := func(order []int) {
		for _, i := range order {
			for w := 0; w < 4; w++ {
				a := Addr(i)*PageBytes + Addr(w*WordSize)
				if v := m.ReadWord(a); v != uint64(i*100+w) {
					t.Fatalf("page %d word %d = %d", i, w, v)
				}
			}
		}
	}
	check([]int{0, 1, 2, 3, 4, 5, 6, 7})
	check([]int{7, 6, 5, 4, 3, 2, 1, 0})
	check([]int{0, 4, 1, 5, 2, 6, 3, 7, 0, 7})
	if m.PagesTouched != pages {
		t.Fatalf("PagesTouched = %d, want %d", m.PagesTouched, pages)
	}
}

// Forwarding bits must stay coherent when their page cycles through the
// cache's MRU and victim slots.
func TestPageCacheFBitCoherence(t *testing.T) {
	m := New()
	pageA := Addr(0x100000)
	m.WriteWordFBit(pageA, 0x9000, true)
	// Push A out of MRU and through both victim slots.
	for i := 1; i <= 4; i++ {
		m.WriteWord(pageA+Addr(i)*PageBytes, uint64(i))
	}
	if !m.FBit(pageA) {
		t.Fatal("fbit lost after page cycled through the cache")
	}
	v, f := m.ReadWordFBit(pageA)
	if v != 0x9000 || !f {
		t.Fatalf("ReadWordFBit = (%#x,%v)", v, f)
	}
	m.WriteWordFBit(pageA, 7, false)
	for i := 1; i <= 4; i++ {
		m.WriteWord(pageA+Addr(i)*PageBytes, uint64(i))
	}
	if m.FBit(pageA) {
		t.Fatal("cleared fbit resurrected after eviction")
	}
}

// Property: for any word value and any naturally-aligned subword slot,
// writing then reading that slot round-trips, and the other bytes of the
// word are untouched.
func TestSubwordRoundTripProperty(t *testing.T) {
	m := New()
	f := func(word uint64, v uint64, slotSel uint8, sizeSel uint8) bool {
		sizes := []uint{1, 2, 4, 8}
		size := sizes[int(sizeSel)%4]
		slots := 8 / size
		off := Addr(uint(slotSel)%slots) * Addr(size)
		base := Addr(0x8000)
		m.WriteWord(base, word)
		if err := m.WriteData(base+off, v, size); err != nil {
			return false
		}
		mask := uint64(1)<<(size*8) - 1
		if size == 8 {
			mask = ^uint64(0)
		}
		got, err := m.ReadData(base+off, size)
		if err != nil || got != v&mask {
			return false
		}
		// Remaining bytes unchanged.
		full := m.ReadWord(base)
		shift := uint(off) * 8
		wantFull := (word &^ (mask << shift)) | ((v & mask) << shift)
		return full == wantFull
	}
	if err := quick.Check(f, quickseed.Config(t, 2000)); err != nil {
		t.Fatal(err)
	}
}

func TestPagesTouchedCountsDistinctPages(t *testing.T) {
	m := New()
	m.WriteWord(0, 1)
	m.WriteWord(8, 2)         // same page
	m.WriteWord(PageBytes, 3) // second page
	m.WriteWord(1<<30, 4)     // third page
	if m.PagesTouched != 3 {
		t.Fatalf("PagesTouched = %d, want 3", m.PagesTouched)
	}
	// Reads of untouched pages must not materialize them.
	_ = m.ReadWord(1 << 40)
	if m.PagesTouched != 3 {
		t.Fatalf("read materialized a page: %d", m.PagesTouched)
	}
}
