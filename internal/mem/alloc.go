package mem

import (
	"fmt"
	"sort"
)

// Allocator is a word-aligned first-fit heap over a Memory, standing in
// for the C malloc/free the paper's applications use. Layout realism
// matters here: relocation-based optimizations exist precisely because
// malloc scatters logically-adjacent objects, so the allocator
// reproduces malloc-like behaviour — a bump pointer with per-block
// header padding, plus size-segregated free lists whose reuse
// interleaves objects of different lifetimes.
//
// All blocks are word-aligned (Section 3.3, "Memory Alignment":
// relocatable objects must be word-aligned so two objects never share a
// forwarding word).
type Allocator struct {
	m *Memory

	base Addr
	brk  Addr
	end  Addr

	// HeaderBytes of pad between blocks, modelling malloc boilerplate.
	// Zero for arenas used by relocation pools.
	HeaderBytes uint64

	// free maps rounded block size -> stack of free addresses (LIFO, as
	// in a typical freelist malloc).
	free map[uint64][]Addr

	// live maps block base -> usable size, to catch double frees and to
	// answer SizeOf.
	live map[Addr]uint64

	// pinned marks blocks owned by arenas/pools: they are live but must
	// never be freed through object-level deallocation (a relocated
	// object's final address may coincide with an arena base, and the
	// chain-freeing wrapper must not release the whole pool).
	pinned map[Addr]bool

	// Accounting for Table 1's "Space Overhead" column.
	BytesAllocated uint64 // cumulative
	BytesLive      uint64
	PeakLive       uint64

	// OnEvent, when non-nil, observes every "alloc" and "free" with the
	// block base and its rounded usable size. It fires *after* the
	// allocator's own bookkeeping, so a listener that inspects the
	// allocator (Live, SizeOf) sees a consistent post-state. This is the
	// single identity channel for heat attribution: every path that
	// creates or retires a block — timed Malloc/Free, untimed Alloc/Free,
	// arena carving — passes through here, so an address-reuse listener
	// (obs.HeatMap) can never be left holding a stale identity.
	OnEvent func(op string, a Addr, size uint64)

	// Place, when non-nil, is consulted by Alloc with the rounded block
	// size before the heap path runs. Returning a nonzero word-aligned
	// address places the block there instead of on the heap: the caller
	// owns that address space (in practice a tier window, carved by the
	// tiering daemon from its mem.Tiers arenas) and guarantees it is
	// fresh, zeroed, and never handed out twice. Placed blocks carry no
	// header and never enter the freelist — Free of one only retires its
	// identity — so window space is consumed bump-style, exactly like
	// relocation targets. Returning 0 means "no opinion": the block goes
	// on the heap as usual.
	Place func(size uint64) Addr
}

// NewAllocator creates an allocator managing [base, base+limit).
func NewAllocator(m *Memory, base Addr, limit uint64) *Allocator {
	if base&WordMask != 0 {
		panic("mem: allocator base must be word-aligned")
	}
	return &Allocator{
		m:           m,
		base:        base,
		brk:         base,
		end:         base + Addr(limit),
		HeaderBytes: 2 * WordSize,
		free:        make(map[uint64][]Addr),
		live:        make(map[Addr]uint64),
		pinned:      make(map[Addr]bool),
	}
}

// roundSize rounds a request up to a whole number of words. Requests
// within a word of 2^64 cannot be rounded without wrapping to zero —
// no arena can hold them, so they panic as exhaustion rather than
// silently becoming zero-size blocks.
func roundSize(n uint64) uint64 {
	if n == 0 {
		n = WordSize
	}
	if n > ^uint64(0)-(WordSize-1) {
		panic(fmt.Sprintf("mem: arena exhausted (allocation size %#x overflows word rounding)", n))
	}
	return (n + WordSize - 1) &^ uint64(WordMask)
}

// Alloc returns the base address of a zeroed block of at least n bytes.
// It panics if the arena is exhausted, which indicates a mis-sized
// experiment rather than a recoverable guest condition.
func (al *Allocator) Alloc(n uint64) Addr {
	size := roundSize(n)
	var a Addr
	if al.Place != nil {
		if p := al.Place(size); p != 0 {
			if p&WordMask != 0 {
				panic(fmt.Sprintf("mem: Place hook returned unaligned address %#x", p))
			}
			if al.Contains(p) {
				panic(fmt.Sprintf("mem: Place hook returned in-heap address %#x", p))
			}
			al.live[p] = size
			al.BytesAllocated += size
			al.BytesLive += size
			if al.BytesLive > al.PeakLive {
				al.PeakLive = al.BytesLive
			}
			if al.OnEvent != nil {
				al.OnEvent("alloc", p, size)
			}
			return p
		}
	}
	if stack := al.free[size]; len(stack) > 0 {
		a = stack[len(stack)-1]
		al.free[size] = stack[:len(stack)-1]
		al.m.Zero(a, size)
	} else {
		a = al.brk
		need := size + al.HeaderBytes
		if need < size || al.brk+Addr(need) < al.brk || al.brk+Addr(need) > al.end {
			panic(fmt.Sprintf("mem: arena exhausted (%#x bytes at brk %#x, end %#x)", need, al.brk, al.end))
		}
		al.brk += Addr(need)
		// Fresh pages are already zero with clear fbits; no Zero needed.
	}
	al.live[a] = size
	al.BytesAllocated += size
	al.BytesLive += size
	if al.BytesLive > al.PeakLive {
		al.PeakLive = al.BytesLive
	}
	if al.OnEvent != nil {
		al.OnEvent("alloc", a, size)
	}
	return a
}

// Free returns the block at a to the free list. Freeing an unknown or
// already-freed address panics: guest programs are deterministic and a
// bad free is a bug in the reproduction, not a runtime condition.
func (al *Allocator) Free(a Addr) {
	size, ok := al.live[a]
	if !ok {
		panic(fmt.Sprintf("mem: free of unallocated address %#x", a))
	}
	if al.pinned[a] {
		panic(fmt.Sprintf("mem: free of pinned (arena) block %#x", a))
	}
	delete(al.live, a)
	al.BytesLive -= size
	// Placed (out-of-heap) blocks never re-enter circulation: their
	// window space is bump-only, like relocation targets.
	if al.Contains(a) {
		al.free[size] = append(al.free[size], a)
	}
	if al.OnEvent != nil {
		al.OnEvent("free", a, size)
	}
}

// SizeOf returns the usable size of the live block at a.
func (al *Allocator) SizeOf(a Addr) (uint64, bool) {
	n, ok := al.live[a]
	return n, ok
}

// Live reports whether a is the base of a live block.
func (al *Allocator) Live(a Addr) bool {
	_, ok := al.live[a]
	return ok
}

// Pin marks the live block at a as arena-owned: Free of it panics, and
// Freeable reports false. NewArena pins its backing block.
func (al *Allocator) Pin(a Addr) {
	if _, ok := al.live[a]; !ok {
		panic(fmt.Sprintf("mem: pin of unallocated address %#x", a))
	}
	al.pinned[a] = true
}

// Freeable reports whether a is the base of a live block that object
// deallocation may release (live and not arena-pinned).
func (al *Allocator) Freeable(a Addr) bool {
	_, ok := al.live[a]
	return ok && !al.pinned[a]
}

// Brk returns the current high-water address of the arena.
func (al *Allocator) Brk() Addr { return al.brk }

// Contains reports whether a falls inside the arena's reserved range.
func (al *Allocator) Contains(a Addr) bool { return a >= al.base && a < al.end }

// Range returns the reserved address range [base, end) of the heap.
// The chaos relocator places its target storage outside this range so
// adversarial relocation never perturbs guest allocation addresses.
func (al *Allocator) Range() (base, end Addr) { return al.base, al.end }

// Pinned reports whether a is the base of an arena-pinned block.
func (al *Allocator) Pinned(a Addr) bool { return al.pinned[a] }

// LiveBlocks returns the sorted bases of all live blocks (test support).
func (al *Allocator) LiveBlocks() []Addr {
	out := make([]Addr, 0, len(al.live))
	for a := range al.live {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Arena is a bump-only contiguous allocator used for relocation pools:
// ListLinearize and friends allocate target storage from "a pool of
// contiguous memory, thereby creating spatial locality" (Figure 4b). It
// draws its backing range from the parent allocator's address space but
// never frees individual blocks; Reset recycles the whole pool.
type Arena struct {
	base Addr
	next Addr
	end  Addr
}

// NewArena carves an n-byte contiguous arena out of an allocator's
// address space (as a single block, so the parent can account for it).
func NewArena(al *Allocator, n uint64) *Arena {
	save := al.HeaderBytes
	al.HeaderBytes = 0
	base := al.Alloc(n)
	al.HeaderBytes = save
	al.Pin(base)
	return &Arena{base: base, next: base, end: base + Addr(n)}
}

// NewArenaAt lays an arena directly over [base, base+n) without drawing
// from any allocator. Tier windows live outside the guest heap's
// reserved range, so their arenas cannot be carved from the heap
// allocator; they are raw address-space regions backed, like all of
// Memory, by demand-zero pages.
func NewArenaAt(base Addr, n uint64) *Arena {
	if base&WordMask != 0 {
		panic("mem: arena base must be word-aligned")
	}
	return &Arena{base: base, next: base, end: base + Addr(n)}
}

// Alloc returns n contiguous word-aligned bytes, or 0 if the arena is
// exhausted (callers fall back to a fresh arena). The comparison is
// phrased against Remaining so a request within a word of 2^64 cannot
// wrap the cursor past end and "succeed".
func (ar *Arena) Alloc(n uint64) Addr {
	size := roundSize(n)
	if size > ar.Remaining() {
		return 0
	}
	a := ar.next
	ar.next += Addr(size)
	return a
}

// AlignTo advances the arena cursor to the next multiple of align
// (a power of two), so the following Alloc starts a fresh cache line or
// cluster. Wasted bytes are simply skipped. If the aligned position
// falls beyond the arena's end, the cursor advances to the end instead:
// the arena is exhausted and the next Alloc returns 0, rather than
// quietly handing out a block that violates the alignment the caller
// just requested.
func (ar *Arena) AlignTo(align uint64) {
	if align == 0 || align&(align-1) != 0 {
		panic("mem: AlignTo requires a power of two")
	}
	next := (uint64(ar.next) + align - 1) &^ (align - 1)
	if Addr(next) > ar.end {
		ar.next = ar.end
		return
	}
	ar.next = Addr(next)
}

// Remaining returns the bytes left in the arena.
func (ar *Arena) Remaining() uint64 { return uint64(ar.end - ar.next) }

// Used returns the bytes consumed so far.
func (ar *Arena) Used() uint64 { return uint64(ar.next - ar.base) }

// Base returns the arena's first address.
func (ar *Arena) Base() Addr { return ar.base }
