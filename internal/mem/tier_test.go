package mem

import (
	"fmt"
	"testing"
)

func mustPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		if r := recover(); r == nil {
			t.Fatalf("expected panic %q, got none", want)
		}
	}()
	f()
}

// Satellite regression: roundSize used to wrap for requests within a
// word of 2^64 — roundSize(^uint64(0)-3) became 0, so Alloc handed out
// a zero-size "block" (live[a]=0, brk advanced by header only) instead
// of failing. It must now panic as arena exhaustion.
func TestRoundSizeOverflowPanics(t *testing.T) {
	for _, n := range []uint64{^uint64(0), ^uint64(0) - 3, ^uint64(0) - 6} {
		mustPanic(t, "arena exhausted", func() { roundSize(n) })
	}
	// The largest roundable request still rounds cleanly.
	if got := roundSize(^uint64(0) - 7); got != ^uint64(0)-7 {
		t.Fatalf("roundSize(max-7) = %#x", got)
	}
}

func TestAllocHugeRequestPanics(t *testing.T) {
	al := newTestAlloc()
	for _, n := range []uint64{^uint64(0) - 3, ^uint64(0) - 8, 1 << 62} {
		mustPanic(t, "arena exhausted", func() { al.Alloc(n) })
		if al.BytesLive != 0 || len(al.live) != 0 {
			t.Fatalf("failed Alloc(%#x) leaked state: live=%d blocks=%d", n, al.BytesLive, len(al.live))
		}
	}
}

func TestArenaHugeRequestReturnsSentinel(t *testing.T) {
	ar := NewArenaAt(0x10000, 1<<20)
	// Rounds fine but wraps next+size past end without the Remaining
	// phrasing; must hit the 0 sentinel, not hand out a bogus address.
	if a := ar.Alloc(1 << 62); a != 0 {
		t.Fatalf("Alloc(1<<62) = %#x, want 0", a)
	}
	if a := ar.Alloc(64); a != 0x10000 {
		t.Fatalf("arena cursor perturbed by failed huge alloc: %#x", a)
	}
}

func defaultTestTiers() *Tiers {
	return NewTiers(DefaultTierConfig(2, 70))
}

func TestTierGeometry(t *testing.T) {
	tt := defaultTestTiers()
	if tt.N() != 2 || tt.Default() != 0 || tt.Slowest() != 1 {
		t.Fatalf("N=%d Default=%d Slowest=%d", tt.N(), tt.Default(), tt.Slowest())
	}
	if tt.Latency(0) != 70 || tt.Latency(1) != 210 {
		t.Fatalf("latencies %d/%d", tt.Latency(0), tt.Latency(1))
	}
	b0, e0 := tt.Window(0)
	b1, e1 := tt.Window(1)
	if b0 != TierWindowBase || e0-b0 != Addr(tt.Capacity(0)) {
		t.Fatalf("window 0 = [%#x,%#x)", b0, e0)
	}
	if b1 < e0+Addr(tierGuardBytes) {
		t.Fatalf("window 1 base %#x inside window 0's guard (end %#x)", b1, e0)
	}
	if e1 <= b1 {
		t.Fatalf("window 1 = [%#x,%#x)", b1, e1)
	}
}

func TestTierOf(t *testing.T) {
	tt := defaultTestTiers()
	b0, e0 := tt.Window(0)
	b1, _ := tt.Window(1)
	cases := []struct {
		a    Addr
		want int
	}{
		{0x1000_0000, 0}, // heap: near memory, tier 0
		{0, 0},           // the Arena 0-sentinel maps to the default tier
		{b0, 0},          // tier 0's own window is still near memory
		{e0 - 1, 0},
		{e0, 0},       // guard gap falls back to the default tier
		{b0 - 1, 0},   // below the first window
		{b1, 1},       // demotion window is the far tier
		{^Addr(0), 0}, // far beyond all windows
	}
	for _, c := range cases {
		if got := tt.TierOf(c.a); got != c.want {
			t.Errorf("TierOf(%#x) = %d, want %d", c.a, got, c.want)
		}
	}
	if tt.LineLatency(uint64(b0)) != 70 || tt.LineLatency(0x1000_0000) != 70 || tt.LineLatency(uint64(b1)) != 210 {
		t.Fatalf("LineLatency: near-window=%d heap=%d far-window=%d",
			tt.LineLatency(uint64(b0)), tt.LineLatency(0x1000_0000), tt.LineLatency(uint64(b1)))
	}
}

func TestTierTakeRelease(t *testing.T) {
	tt := defaultTestTiers()
	a := tt.Take(0, 60) // rounds to 64
	b0, _ := tt.Window(0)
	if a != b0 {
		t.Fatalf("Take = %#x, want window base %#x", a, b0)
	}
	if tt.BytesLive(0) != 64 {
		t.Fatalf("BytesLive(0) = %d", tt.BytesLive(0))
	}
	if tt.TierOf(a) != 0 {
		t.Fatalf("taken address %#x not in tier 0", a)
	}
	tt.Release(0, 60)
	if tt.BytesLive(0) != 0 {
		t.Fatalf("BytesLive(0) after release = %d", tt.BytesLive(0))
	}
	mustPanic(t, "release", func() { tt.Release(0, 8) })
}

// Satellite coverage: Arena.AlignTo / Alloc exhaustion interplay under
// tier-sized arenas — an aligned cursor parked exactly at end, a
// zero-Remaining arena, and the 0 sentinel must all behave.
func TestTierArenaExhaustion(t *testing.T) {
	tt := defaultTestTiers()
	ar := tt.Arena(0)
	base, end := tt.Window(0)

	// Drain the window to its final word.
	if a := ar.Alloc(tt.Capacity(0) - WordSize); a != base {
		t.Fatalf("drain alloc = %#x", a)
	}
	// AlignTo past the remaining word parks the cursor at end...
	ar.AlignTo(4096)
	if ar.Remaining() != 0 {
		t.Fatalf("Remaining after AlignTo past end = %d", ar.Remaining())
	}
	// ...and every subsequent Alloc, including size 0 (which rounds to
	// one word), returns the sentinel.
	for _, n := range []uint64{0, 1, 8, 1 << 20} {
		if a := ar.Alloc(n); a != 0 {
			t.Fatalf("Alloc(%d) on exhausted arena = %#x, want 0", n, a)
		}
	}
	// AlignTo on an exhausted arena is a no-op, not an overflow.
	ar.AlignTo(1 << 20)
	if ar.Remaining() != 0 || Addr(ar.next) != end {
		t.Fatalf("cursor moved past end: next=%#x end=%#x", ar.next, end)
	}

	// The sentinel can never collide with a real address: 0 is outside
	// every tier window (windows start at 2^40), so TierOf(0) is the
	// default tier and no window arena can ever return 0 as a block.
	for i := 0; i < tt.N(); i++ {
		b, e := tt.Window(i)
		if b == 0 || b <= 0 && e > 0 {
			t.Fatalf("tier %d window [%#x,%#x) contains the 0 sentinel", i, b, e)
		}
		if tt.TierOf(0) != tt.Default() {
			t.Fatalf("TierOf(0) = %d, want default %d", tt.TierOf(0), tt.Default())
		}
	}
}

func TestTierConfigValidation(t *testing.T) {
	mustPanic(t, "tiers", func() { NewTiers(&TierConfig{Latencies: []int64{70}, Capacities: []uint64{1 << 20}}) })
	mustPanic(t, "capacities", func() { NewTiers(&TierConfig{Latencies: []int64{70, 210}, Capacities: []uint64{1 << 20}}) })
	mustPanic(t, "non-decreasing", func() {
		NewTiers(&TierConfig{Latencies: []int64{210, 70}, Capacities: []uint64{1 << 20, 1 << 20}})
	})
	mustPanic(t, "word-aligned", func() {
		NewTiers(&TierConfig{Latencies: []int64{70, 210}, Capacities: []uint64{1 << 20, 12345}})
	})
	mustPanic(t, "positive", func() { DefaultTierConfig(2, 0) })
	mustPanic(t, "at least 2", func() { DefaultTierConfig(1, 70) })
}

// The Place hook is the spill-placement channel: a tiering daemon can
// route a new allocation straight into a far-memory window (direct
// address, no forwarding chain) instead of the over-budget heap. The
// allocator must treat placed blocks as first-class identities —
// live map, accounting, OnEvent — but never recycle their window
// space through the freelist.
func TestPlaceHookRoutesAllocs(t *testing.T) {
	al := newTestAlloc()
	tt := defaultTestTiers()
	al.Place = func(size uint64) Addr {
		if size == 64 {
			return tt.Take(tt.Slowest(), size)
		}
		return 0
	}
	var events []string
	al.OnEvent = func(op string, a Addr, size uint64) {
		events = append(events, fmt.Sprintf("%s:%#x:%d", op, a, size))
	}

	w := al.Alloc(60) // rounds to 64: placed in the far window
	slowBase, _ := tt.Window(tt.Slowest())
	if w != slowBase {
		t.Fatalf("placed alloc = %#x, want far-window base %#x", w, slowBase)
	}
	if al.Contains(w) {
		t.Fatalf("placed block %#x reported inside the heap range", w)
	}
	if !al.Live(w) || al.BytesLive != 64 {
		t.Fatalf("placed block not accounted: live=%v bytesLive=%d", al.Live(w), al.BytesLive)
	}

	h := al.Alloc(128) // hook declines: ordinary heap block
	if !al.Contains(h) {
		t.Fatalf("declined alloc %#x not on the heap", h)
	}

	al.Free(w)
	if al.Live(w) || al.BytesLive != 128 {
		t.Fatalf("placed free not accounted: live=%v bytesLive=%d", al.Live(w), al.BytesLive)
	}
	// The freed window address must NOT come back from the freelist.
	al.Place = nil
	if again := al.Alloc(64); again == w || !al.Contains(again) {
		t.Fatalf("freelist recycled window space: %#x", again)
	}

	want := []string{
		fmt.Sprintf("alloc:%#x:64", w),
		fmt.Sprintf("alloc:%#x:128", h),
		fmt.Sprintf("free:%#x:64", w),
		fmt.Sprintf("alloc:%#x:64", al.LiveBlocks()[len(al.LiveBlocks())-1]),
	}
	if len(events) != len(want) {
		t.Fatalf("events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %q, want %q", i, events[i], want[i])
		}
	}
}

func TestPlaceHookRejectsBadAddresses(t *testing.T) {
	al := newTestAlloc()
	al.Place = func(size uint64) Addr { return 0x10004 } // unaligned
	mustPanic(t, "unaligned", func() { al.Alloc(8) })
	al.Place = func(size uint64) Addr { return 0x20000 } // inside the heap
	mustPanic(t, "in-heap", func() { al.Alloc(8) })
}

// OnEvent is the heat-attribution channel: it must fire for every
// path that creates or retires a block — timed or untimed — and must
// fire after bookkeeping so listeners see consistent allocator state.
func TestOnEventCoversAllPaths(t *testing.T) {
	al := newTestAlloc()
	type ev struct {
		op   string
		a    Addr
		size uint64
		live bool
	}
	var got []ev
	al.OnEvent = func(op string, a Addr, size uint64) {
		got = append(got, ev{op, a, size, al.Live(a)})
	}
	a := al.Alloc(24)
	al.Free(a)
	b := al.Alloc(24) // freelist reuse: same base must re-announce
	ar := NewArena(al, 256)
	want := []ev{
		{"alloc", a, 24, true},
		{"free", a, 24, false},
		{"alloc", b, 24, true},
		{"alloc", ar.Base(), 256, true},
	}
	if len(got) != len(want) {
		t.Fatalf("events %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if a != b {
		t.Fatalf("expected freelist reuse, got %#x then %#x", a, b)
	}
}
