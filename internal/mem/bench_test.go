package mem

import "testing"

// The page cache makes same-page access the common fast path; these
// benchmarks watch it and the cross-page (victim/map) path separately.

var benchSink uint64

func BenchmarkReadWordSamePage(b *testing.B) {
	m := New()
	m.WriteWord(0x1000, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += m.ReadWord(0x1000)
	}
}

func BenchmarkReadWordFBitSamePage(b *testing.B) {
	m := New()
	m.WriteWordFBit(0x1000, 42, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, _ := m.ReadWordFBit(0x1000 + Addr(i&0x3f8))
		benchSink += v
	}
}

func BenchmarkWriteWordFBitSamePage(b *testing.B) {
	m := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.WriteWordFBit(0x1000+Addr(i&0x3f8), uint64(i), i&1 == 0)
	}
}

func BenchmarkReadWordCrossPageSweep(b *testing.B) {
	m := New()
	const pages = 64
	for i := 0; i < pages; i++ {
		m.WriteWord(Addr(i)*PageBytes, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink += m.ReadWord(Addr(i%pages) * PageBytes)
	}
}

// The word/fbit accessors are the innermost simulator operations; they
// must not allocate once the pages they touch are materialized.
func TestHotAccessorsZeroAlloc(t *testing.T) {
	m := New()
	m.WriteWordFBit(0x1000, 1, true)
	m.WriteWord(0x2000, 2) // neighbouring page for cache churn
	allocs := testing.AllocsPerRun(1000, func() {
		benchSink += m.ReadWord(0x1000)
		_, _ = m.ReadWordFBit(0x1000)
		_ = m.FBit(0x2000)
		m.WriteWordFBit(0x2000, 3, false)
	})
	if allocs != 0 {
		t.Fatalf("hot accessors allocated %.1f times per run, want 0", allocs)
	}
}
