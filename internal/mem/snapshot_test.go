package mem

import "testing"

// TestMemorySnapshotRoundTrip pins the deep-copy contract: a snapshot
// is unaffected by later mutation of the source, Restore reproduces
// every word and fbit exactly, and a snapshot is reusable.
func TestMemorySnapshotRoundTrip(t *testing.T) {
	m := New()
	// Pattern spanning several pages, with fbits on a scatter of words.
	for i := 0; i < 4*PageWords; i += 3 {
		a := Addr(0x1000_0000 + i*WordSize)
		m.WriteWordFBit(a, uint64(i)*0x9E37+1, i%5 == 0)
	}
	// A far page, to exercise sparse map copying.
	m.WriteWordFBit(0x7000_0000, 0xDEAD_BEEF, true)

	type cell struct {
		a Addr
		v uint64
		f bool
	}
	var want []cell
	for _, pb := range m.TouchedPages() {
		for w := 0; w < PageWords; w++ {
			a := pb + Addr(w*WordSize)
			v, f := m.ReadWordFBit(a)
			want = append(want, cell{a, v, f})
		}
	}
	wantTouched := m.PagesTouched

	s := m.Snapshot()

	// Mutate the source: overwrite captured words, touch new pages.
	m.WriteWordFBit(0x1000_0000, 0, false)
	m.WriteWordFBit(0x7000_0000, 1, false)
	m.WriteWord(0x9000_0000, 42)

	check := func(got *Memory) {
		t.Helper()
		if got.PagesTouched != wantTouched {
			t.Fatalf("PagesTouched = %d, want %d", got.PagesTouched, wantTouched)
		}
		if len(got.TouchedPages()) != s.Pages() {
			t.Fatalf("restored %d pages, snapshot has %d", len(got.TouchedPages()), s.Pages())
		}
		for _, c := range want {
			v, f := got.ReadWordFBit(c.a)
			if v != c.v || f != c.f {
				t.Fatalf("word %#x = (%#x,%v), want (%#x,%v)", c.a, v, f, c.v, c.f)
			}
		}
	}

	fresh := New()
	fresh.Restore(s)
	check(fresh)

	// Restoring over the mutated source must also converge, and the
	// page cache must not serve stale pre-restore pages.
	m.Restore(s)
	check(m)

	// Snapshot reuse: mutating one restored memory must not leak into
	// another restore of the same snapshot.
	fresh.WriteWord(0x1000_0000, 0xFFFF)
	again := New()
	again.Restore(s)
	check(again)
}

// TestAllocatorSnapshotRoundTrip pins that Restore reproduces the
// allocator's future behaviour exactly — in particular the LIFO order
// of per-size free stacks, which determines every reuse address.
func TestAllocatorSnapshotRoundTrip(t *testing.T) {
	m := New()
	al := NewAllocator(m, 0x1000_0000, 1<<20)
	a := al.Alloc(64)
	b := al.Alloc(64)
	c := al.Alloc(64)
	d := al.Alloc(128)
	al.Free(a)
	al.Free(c) // free stack for 64: [a, c] — LIFO pops c first
	al.Pin(d)

	s := al.Snapshot()

	// Drain the source's free stack to verify the expected pop order,
	// then confirm the snapshot still replays the same order elsewhere.
	if got := al.Alloc(64); got != c {
		t.Fatalf("source pop 1 = %#x, want %#x", got, c)
	}
	if got := al.Alloc(64); got != a {
		t.Fatalf("source pop 2 = %#x, want %#x", got, a)
	}
	srcBump := al.Alloc(8) // brk allocation after the stack drains

	m2 := New()
	al2 := NewAllocator(m2, 0x1000_0000, 1<<20)
	al2.Restore(s)
	if !al2.Live(b) || !al2.Live(d) || al2.Live(a) || al2.Live(c) {
		t.Fatalf("restored live set wrong")
	}
	if !al2.Pinned(d) || al2.Freeable(d) {
		t.Fatalf("restored pin state wrong")
	}
	if got := al2.Alloc(64); got != c {
		t.Fatalf("restored pop 1 = %#x, want %#x", got, c)
	}
	if got := al2.Alloc(64); got != a {
		t.Fatalf("restored pop 2 = %#x, want %#x", got, a)
	}
	if got := al2.Alloc(8); got != srcBump {
		t.Fatalf("restored brk alloc = %#x, source got %#x", got, srcBump)
	}
	if al2.BytesAllocated != al.BytesAllocated || al2.BytesLive != al.BytesLive || al2.PeakLive != al.PeakLive {
		t.Fatalf("restored accounting diverged: %d/%d/%d vs %d/%d/%d",
			al2.BytesAllocated, al2.BytesLive, al2.PeakLive,
			al.BytesAllocated, al.BytesLive, al.PeakLive)
	}
}
