package mem

// Snapshot/Restore for the functional memory state. A snapshot is a
// deep, process-local copy of the architectural state — materialized
// pages (words + fbit bitmaps) for Memory, and the full heap map
// (free/live/pinned + brk + accounting) for Allocator. It is a handle,
// not a serialized encoding: memfwd-serve migrates sessions between
// shards inside one process, so an in-memory deep copy is both the
// simplest and the fastest faithful format (DESIGN.md §10).
//
// Snapshots are immutable once taken and reusable: Restore deep-copies
// out of the snapshot again, so one snapshot can seed any number of
// target machines (e.g. a control replay plus a migration target).

// MemorySnapshot is a deep copy of a Memory's architectural state:
// every materialized page, including the per-word forwarding-bit
// bitmap, plus the PagesTouched accounting. The MRU/victim page cache
// is performance state, not architectural state, and is not captured.
type MemorySnapshot struct {
	pages        map[Addr]*page
	pagesTouched int
}

// Snapshot captures a deep copy of the memory's architectural state.
func (m *Memory) Snapshot() *MemorySnapshot {
	s := &MemorySnapshot{
		pages:        make(map[Addr]*page, len(m.pages)),
		pagesTouched: m.PagesTouched,
	}
	for pn, p := range m.pages {
		cp := *p // page is two arrays; value copy is a deep copy
		s.pages[pn] = &cp
	}
	return s
}

// Restore replaces m's pages and accounting with a deep copy of the
// snapshot. The direct page cache is invalidated (it would otherwise
// alias the discarded pages), and the writeFault hook is left alone:
// fault injection is wiring of the target machine, not memory state.
func (m *Memory) Restore(s *MemorySnapshot) {
	pages := make(map[Addr]*page, len(s.pages))
	for pn, p := range s.pages {
		cp := *p
		pages[pn] = &cp
	}
	m.pages = pages
	m.PagesTouched = s.pagesTouched
	m.mruPN, m.mru = 0, nil
	m.vicPN = [2]Addr{}
	m.vic = [2]*page{}
	m.vicPtr = 0
}

// Pages returns the number of materialized pages in the snapshot.
func (s *MemorySnapshot) Pages() int { return len(s.pages) }

// AllocatorSnapshot is a deep copy of an Allocator's heap state. The
// per-size free stacks are copied slice-by-slice so LIFO reuse order —
// which determines every future Alloc address — survives the round
// trip exactly.
type AllocatorSnapshot struct {
	base, brk, end Addr
	headerBytes    uint64
	free           map[uint64][]Addr
	live           map[Addr]uint64
	pinned         map[Addr]bool
	bytesAllocated uint64
	bytesLive      uint64
	peakLive       uint64
}

// Snapshot captures a deep copy of the allocator's state.
func (al *Allocator) Snapshot() *AllocatorSnapshot {
	s := &AllocatorSnapshot{
		base:           al.base,
		brk:            al.brk,
		end:            al.end,
		headerBytes:    al.HeaderBytes,
		free:           make(map[uint64][]Addr, len(al.free)),
		live:           make(map[Addr]uint64, len(al.live)),
		pinned:         make(map[Addr]bool, len(al.pinned)),
		bytesAllocated: al.BytesAllocated,
		bytesLive:      al.BytesLive,
		peakLive:       al.PeakLive,
	}
	for size, stack := range al.free {
		s.free[size] = append([]Addr(nil), stack...)
	}
	for a, n := range al.live {
		s.live[a] = n
	}
	for a, p := range al.pinned {
		s.pinned[a] = p
	}
	return s
}

// Restore replaces the allocator's heap state with a deep copy of the
// snapshot, including the reserved range and brk: a restored session
// must hand out the exact addresses the source would have. The backing
// Memory reference and the OnEvent hook belong to the target and are
// preserved.
func (al *Allocator) Restore(s *AllocatorSnapshot) {
	al.base, al.brk, al.end = s.base, s.brk, s.end
	al.HeaderBytes = s.headerBytes
	al.free = make(map[uint64][]Addr, len(s.free))
	for size, stack := range s.free {
		al.free[size] = append([]Addr(nil), stack...)
	}
	al.live = make(map[Addr]uint64, len(s.live))
	for a, n := range s.live {
		al.live[a] = n
	}
	al.pinned = make(map[Addr]bool, len(s.pinned))
	for a, p := range s.pinned {
		al.pinned[a] = p
	}
	al.BytesAllocated = s.bytesAllocated
	al.BytesLive = s.bytesLive
	al.PeakLive = s.peakLive
}
