package mem

// Binary codec for the mem snapshots, built on internal/wire. These
// feed the sim.MachineState codec: snapshot fields are private, so
// each package serializes its own. Encodings are canonical — map keys
// are emitted in sorted order — so encoding the same state twice
// yields identical bytes, and decode validates every structural
// invariant (page alignment, ordering, count bounds) so a corrupted
// snapshot surfaces as an error from the decoder, never a panic or a
// malformed Memory downstream.

import (
	"fmt"
	"sort"

	"memfwd/internal/wire"
)

// pageEncBytes is the encoded size of one page record: page number +
// words + fbit bitmap. Used as the Count element bound.
const pageEncBytes = 8 + PageWords*8 + PageWords/8

// EncodeWire appends the snapshot's canonical encoding to w.
func (s *MemorySnapshot) EncodeWire(w *wire.Writer) {
	pns := make([]Addr, 0, len(s.pages))
	for pn := range s.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	w.Grow(4 + len(pns)*pageEncBytes + 8)
	w.U32(uint32(len(pns)))
	for _, pn := range pns {
		p := s.pages[pn]
		w.U64(uint64(pn))
		for _, word := range p.words {
			w.U64(word)
		}
		for _, fb := range p.fbits {
			w.U8(fb)
		}
	}
	w.Int(s.pagesTouched)
}

// DecodeMemorySnapshot reads a snapshot encoded by EncodeWire. Errors
// latch on r; the returned snapshot is only valid if r reports no
// error.
func DecodeMemorySnapshot(r *wire.Reader) *MemorySnapshot {
	n := r.Count(pageEncBytes)
	s := &MemorySnapshot{pages: make(map[Addr]*page, n)}
	prev := Addr(0)
	for i := 0; i < n; i++ {
		pn := Addr(r.U64())
		if r.Err() != nil {
			return s
		}
		if i > 0 && pn <= prev {
			r.Failf("mem: page numbers out of order (%#x after %#x)", pn, prev)
			return s
		}
		prev = pn
		p := &page{}
		for j := range p.words {
			p.words[j] = r.U64()
		}
		for j := range p.fbits {
			p.fbits[j] = r.U8()
		}
		s.pages[pn] = p
	}
	s.pagesTouched = r.Int()
	// PagesTouched counts materialized pages and pages are never
	// unmapped, so it must equal the page count exactly.
	if r.Err() == nil && s.pagesTouched != n {
		r.Failf("mem: pagesTouched %d != %d pages", s.pagesTouched, n)
	}
	return s
}

// EncodeWire appends the allocator snapshot's canonical encoding to w.
func (s *AllocatorSnapshot) EncodeWire(w *wire.Writer) {
	w.U64(uint64(s.base))
	w.U64(uint64(s.brk))
	w.U64(uint64(s.end))
	w.U64(s.headerBytes)

	// Free stacks: sorted by size class; each stack kept in order —
	// LIFO reuse determines every future Alloc address.
	sizes := make([]uint64, 0, len(s.free))
	for size := range s.free {
		sizes = append(sizes, size)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	w.U32(uint32(len(sizes)))
	for _, size := range sizes {
		stack := s.free[size]
		w.U64(size)
		w.U32(uint32(len(stack)))
		for _, a := range stack {
			w.U64(uint64(a))
		}
	}

	lives := make([]Addr, 0, len(s.live))
	for a := range s.live {
		lives = append(lives, a)
	}
	sort.Slice(lives, func(i, j int) bool { return lives[i] < lives[j] })
	w.U32(uint32(len(lives)))
	for _, a := range lives {
		w.U64(uint64(a))
		w.U64(s.live[a])
	}

	pins := make([]Addr, 0, len(s.pinned))
	for a := range s.pinned {
		pins = append(pins, a)
	}
	sort.Slice(pins, func(i, j int) bool { return pins[i] < pins[j] })
	w.U32(uint32(len(pins)))
	for _, a := range pins {
		w.U64(uint64(a))
		w.Bool(s.pinned[a])
	}

	w.U64(s.bytesAllocated)
	w.U64(s.bytesLive)
	w.U64(s.peakLive)
}

// DecodeAllocatorSnapshot reads a snapshot encoded by EncodeWire.
func DecodeAllocatorSnapshot(r *wire.Reader) *AllocatorSnapshot {
	s := &AllocatorSnapshot{
		base:        Addr(r.U64()),
		brk:         Addr(r.U64()),
		end:         Addr(r.U64()),
		headerBytes: r.U64(),
	}
	if r.Err() == nil && (s.base&WordMask != 0 || s.brk < s.base || s.end < s.brk) {
		r.Failf("mem: allocator range base=%#x brk=%#x end=%#x invalid", s.base, s.brk, s.end)
		return s
	}

	nSizes := r.Count(12)
	s.free = make(map[uint64][]Addr, nSizes)
	prevSize := uint64(0)
	for i := 0; i < nSizes; i++ {
		size := r.U64()
		if r.Err() != nil {
			return s
		}
		if i > 0 && size <= prevSize {
			r.Failf("mem: free size classes out of order (%d after %d)", size, prevSize)
			return s
		}
		prevSize = size
		nStack := r.Count(8)
		stack := make([]Addr, 0, nStack)
		for j := 0; j < nStack; j++ {
			stack = append(stack, Addr(r.U64()))
		}
		s.free[size] = stack
	}

	nLive := r.Count(16)
	s.live = make(map[Addr]uint64, nLive)
	prevA := Addr(0)
	for i := 0; i < nLive; i++ {
		a := Addr(r.U64())
		if r.Err() != nil {
			return s
		}
		if i > 0 && a <= prevA {
			r.Failf("mem: live addresses out of order (%#x after %#x)", a, prevA)
			return s
		}
		prevA = a
		s.live[a] = r.U64()
	}

	nPin := r.Count(9)
	s.pinned = make(map[Addr]bool, nPin)
	prevA = 0
	for i := 0; i < nPin; i++ {
		a := Addr(r.U64())
		if r.Err() != nil {
			return s
		}
		if i > 0 && a <= prevA {
			r.Failf("mem: pinned addresses out of order (%#x after %#x)", a, prevA)
			return s
		}
		prevA = a
		s.pinned[a] = r.Bool()
	}

	s.bytesAllocated = r.U64()
	s.bytesLive = r.U64()
	s.peakLive = r.U64()
	return s
}

// ValidateTierConfig checks cfg against the exact conditions NewTiers
// panics on, returning an error instead — the decode path must be able
// to reject a corrupted tier config without building it.
func ValidateTierConfig(cfg *TierConfig) error {
	n := len(cfg.Latencies)
	if n < 2 {
		return errTierf("a tiered memory needs at least 2 tiers, got %d", n)
	}
	if len(cfg.Capacities) != n {
		return errTierf("%d latencies but %d capacities", n, len(cfg.Capacities))
	}
	for i := 0; i < n; i++ {
		if cfg.Latencies[i] <= 0 {
			return errTierf("tier %d latency %d must be positive", i, cfg.Latencies[i])
		}
		if i > 0 && cfg.Latencies[i] < cfg.Latencies[i-1] {
			return errTierf("latencies must be non-decreasing (tier %d: %d < %d)",
				i, cfg.Latencies[i], cfg.Latencies[i-1])
		}
		if c := cfg.Capacities[i]; c == 0 || c&WordMask != 0 || c > maxTierCapacity {
			return errTierf("tier %d capacity %#x must be word-aligned, nonzero, and at most %#x",
				i, c, maxTierCapacity)
		}
	}
	return nil
}

func errTierf(format string, args ...any) error {
	return fmt.Errorf("mem: tier config: "+format, args...)
}
