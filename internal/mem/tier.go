package mem

import "fmt"

// Memory tiers (the OBASE direction): the physical address space is
// partitioned into N latency classes, fastest first. The guest heap —
// and every other address outside the explicit windows — is NEAR
// memory, tier 0: data is born fast, exactly like DRAM in a
// DRAM-plus-CXL or DRAM-plus-persistent-memory system. Each tier also
// owns a relocation window, a contiguous region outside the heap that
// the tiering daemon bump-allocates relocation targets from: windows
// of tiers 1..N-1 are far memory (demotion targets and overflow
// placement when near memory is over budget), and tier 0's window is
// near-latency space for hauling a mistakenly-demoted object back.
// An object changes tier only by being *relocated* — that is the
// paper's thesis applied to tiering: forwarding makes the relocation
// that tiering needs always safe, so placement can be re-decided
// continuously at run time.
//
// Tier geometry is a pure function of its TierConfig: windows start at
// TierWindowBase (far above the heap, the serve shard arenas, and the
// chaos arenas) and are laid out sequentially with guard gaps. Two
// Tiers built from equal configs agree on every address, so a machine
// rebuilt from a snapshot — or swapped under a live session — keeps
// the same tier map without any mutable state travelling with it.

const (
	// TierWindowBase is the first tier window's base address: 2^40,
	// far outside the guest heap (ends below 2^31) and the per-shard
	// serve arenas (top out below 2^39 for any realistic shard count).
	TierWindowBase = Addr(1) << 40

	// tierGuardBytes separates consecutive tier windows so an
	// off-by-one can never silently cross tiers.
	tierGuardBytes = uint64(1) << 30

	// maxTierCapacity bounds one window; enough for any simulated
	// working set while keeping window arithmetic far from overflow.
	maxTierCapacity = uint64(1) << 38
)

// TierConfig is the immutable specification of a tiered memory: the
// per-tier miss latency in cycles (fastest first) and the per-tier
// window capacity in bytes. It is carried by pointer inside sim.Config
// (which must stay comparable), so build one and share it.
type TierConfig struct {
	Latencies  []int64
	Capacities []uint64
}

// DefaultTierConfig builds an n-tier config whose near tier (the heap)
// costs baseLatency cycles and each further tier 3x the previous —
// DRAM vs CXL-attached vs persistent-class memory, roughly. Every tier
// gets a 64 MB relocation window.
func DefaultTierConfig(n int, baseLatency int64) *TierConfig {
	if n < 2 {
		panic("mem: a tier config needs at least 2 tiers")
	}
	if baseLatency <= 0 {
		panic("mem: tier base latency must be positive")
	}
	cfg := &TierConfig{}
	lat := baseLatency
	for i := 0; i < n; i++ {
		cfg.Latencies = append(cfg.Latencies, lat)
		cfg.Capacities = append(cfg.Capacities, 64<<20)
		lat *= 3
	}
	return cfg
}

// Tiers is the realized geometry plus per-tier residency accounting.
// Geometry (windows, latencies) is immutable after NewTiers; the
// accounting (Take/Release, BytesLive) is only ever driven by a single
// tiering daemon, so a Tiers held by a Machine purely for latency
// lookups stays constant.
type Tiers struct {
	lat    []int64
	base   []Addr
	cap    []uint64
	live   []uint64
	arenas []*Arena
}

// NewTiers validates cfg and lays out the tier windows. It panics on a
// malformed config: tier counts and capacities are experiment
// parameters, not runtime conditions.
func NewTiers(cfg *TierConfig) *Tiers {
	n := len(cfg.Latencies)
	if n < 2 {
		panic("mem: a tiered memory needs at least 2 tiers")
	}
	if len(cfg.Capacities) != n {
		panic(fmt.Sprintf("mem: tier config has %d latencies but %d capacities", n, len(cfg.Capacities)))
	}
	t := &Tiers{
		lat:    make([]int64, n),
		base:   make([]Addr, n),
		cap:    make([]uint64, n),
		live:   make([]uint64, n),
		arenas: make([]*Arena, n),
	}
	next := TierWindowBase
	for i := 0; i < n; i++ {
		if cfg.Latencies[i] <= 0 {
			panic(fmt.Sprintf("mem: tier %d latency %d must be positive", i, cfg.Latencies[i]))
		}
		if i > 0 && cfg.Latencies[i] < cfg.Latencies[i-1] {
			panic(fmt.Sprintf("mem: tier latencies must be non-decreasing (tier %d: %d < %d)",
				i, cfg.Latencies[i], cfg.Latencies[i-1]))
		}
		c := cfg.Capacities[i]
		if c == 0 || c&WordMask != 0 || c > maxTierCapacity {
			panic(fmt.Sprintf("mem: tier %d capacity %#x must be word-aligned, nonzero, and at most %#x",
				i, c, maxTierCapacity))
		}
		t.lat[i] = cfg.Latencies[i]
		t.cap[i] = c
		t.base[i] = next
		next += Addr(c + tierGuardBytes)
	}
	return t
}

// N returns the number of tiers.
func (t *Tiers) N() int { return len(t.lat) }

// Default returns the tier index of addresses outside every window —
// tier 0, near memory, where the heap and all unrelocated data live.
func (t *Tiers) Default() int { return 0 }

// Slowest returns the far-memory tier index.
func (t *Tiers) Slowest() int { return len(t.lat) - 1 }

// TierOf maps an address to its tier: the owning window's tier, or
// near memory (tier 0) for addresses outside all windows.
func (t *Tiers) TierOf(a Addr) int {
	if a < t.base[0] {
		return t.Default()
	}
	for i := range t.base {
		if a >= t.base[i] && a < t.base[i]+Addr(t.cap[i]) {
			return i
		}
	}
	return t.Default()
}

// Latency returns tier i's miss latency in cycles.
func (t *Tiers) Latency(i int) int64 { return t.lat[i] }

// LineLatency is the cache.MainMemory hook: the miss latency of the
// tier owning lineAddr.
func (t *Tiers) LineLatency(lineAddr uint64) int64 {
	return t.lat[t.TierOf(Addr(lineAddr))]
}

// Window returns tier i's relocation window [base, end).
func (t *Tiers) Window(i int) (base, end Addr) {
	return t.base[i], t.base[i] + Addr(t.cap[i])
}

// Capacity returns tier i's window capacity in bytes.
func (t *Tiers) Capacity(i int) uint64 { return t.cap[i] }

// BytesLive returns the bytes currently resident in tier i's window
// per Take/Release accounting.
func (t *Tiers) BytesLive(i int) uint64 { return t.live[i] }

// Arena returns tier i's bump arena over its window, built on first use.
func (t *Tiers) Arena(i int) *Arena {
	if t.arenas[i] == nil {
		t.arenas[i] = NewArenaAt(t.base[i], t.cap[i])
	}
	return t.arenas[i]
}

// Take bump-allocates n word-rounded bytes from tier i's window and
// accounts them resident, returning 0 when the window is exhausted.
// Targets are never recycled: a relocated-away copy may still be a
// live chain link, so the cursor only advances (same rule as the opt
// relocation pools).
func (t *Tiers) Take(i int, n uint64) Addr {
	a := t.Arena(i).Alloc(n)
	if a != 0 {
		t.live[i] += roundSize(n)
	}
	return a
}

// Release un-accounts n bytes from tier i (the object moved elsewhere
// or died). The window bytes themselves are not reused.
func (t *Tiers) Release(i int, n uint64) {
	n = roundSize(n)
	if n > t.live[i] {
		panic(fmt.Sprintf("mem: tier %d release of %#x bytes exceeds %#x live", i, n, t.live[i]))
	}
	t.live[i] -= n
}
