package health

import (
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/apps/apptest"
	"memfwd/internal/mem"
	"memfwd/internal/sim"
)

func runCfg(cfg app.Config) (app.Result, *sim.Stats) {
	m := sim.New(sim.Config{})
	r := App.Run(m, cfg)
	return r, m.Finalize()
}

func TestOptimizedMatchesUnoptimized(t *testing.T) {
	base, _ := runCfg(app.Config{Seed: 7})
	opt, _ := runCfg(app.Config{Seed: 7, Opt: true})
	if base.Checksum != opt.Checksum {
		t.Fatalf("checksum diverged: %d vs %d", base.Checksum, opt.Checksum)
	}
	if opt.Relocated == 0 {
		t.Fatal("optimization relocated nothing")
	}
	if opt.SpaceOverhead == 0 {
		t.Fatal("no space overhead recorded")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, sa := runCfg(app.Config{Seed: 3, Opt: true})
	b, sb := runCfg(app.Config{Seed: 3, Opt: true})
	if a.Checksum != b.Checksum {
		t.Fatal("checksum not deterministic")
	}
	if sa.Cycles != sb.Cycles {
		t.Fatalf("cycles not deterministic: %d vs %d", sa.Cycles, sb.Cycles)
	}
}

func TestSeedChangesWorkload(t *testing.T) {
	a, _ := runCfg(app.Config{Seed: 1})
	b, _ := runCfg(app.Config{Seed: 2})
	if a.Checksum == b.Checksum {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestPrefetchVariantsStayFunctional(t *testing.T) {
	base, _ := runCfg(app.Config{Seed: 5})
	pf, _ := runCfg(app.Config{Seed: 5, Prefetch: true, PrefetchBlock: 2})
	both, _ := runCfg(app.Config{Seed: 5, Opt: true, Prefetch: true, PrefetchBlock: 4})
	if base.Checksum != pf.Checksum || base.Checksum != both.Checksum {
		t.Fatal("prefetch variants changed results")
	}
}

func TestOptimizationReducesMisses(t *testing.T) {
	_, sBase := runCfg(app.Config{Seed: 9})
	_, sOpt := runCfg(app.Config{Seed: 9, Opt: true})
	if sOpt.L1.Misses(0) >= sBase.L1.Misses(0) {
		t.Fatalf("linearization did not cut load misses: %d -> %d",
			sBase.L1.Misses(0), sOpt.L1.Misses(0))
	}
}

func TestForwardingRareWhenPointersUpdated(t *testing.T) {
	// Health updates every pointer it holds, so the forwarding safety
	// net should almost never fire (Section 5.4's observation).
	_, s := runCfg(app.Config{Seed: 9, Opt: true})
	if s.Loads == 0 {
		t.Fatal("no loads recorded")
	}
	frac := float64(s.LoadsForwarded()) / float64(s.Loads)
	if frac > 0.001 {
		t.Fatalf("forwarded load fraction %.4f, want ~0", frac)
	}
}

func peek(m app.Machine, a mem.Addr) uint64 {
	f, _, err := m.Forwarder().Resolve(a, nil)
	if err != nil {
		panic(err)
	}
	return m.Memory().ReadWord(mem.WordAlign(f))
}

// TestListsWellFormedEveryStep walks all village lists after every
// simulation step and checks the structural invariants that the early
// development of this reproduction actually caught bugs against: no
// patient appears on two lists (by final address), no list cycles, and
// every id is positive.
func TestListsWellFormedEveryStep(t *testing.T) {
	for _, optOn := range []bool{false, true} {
		steps := 0
		cfg := app.Config{Seed: 11, Opt: optOn}
		cfg.Hooks.HealthStep = func(m app.Machine, villages []mem.Addr) {
			steps++
			if steps%5 != 0 { // every 5th step keeps the test quick
				return
			}
			seen := map[mem.Addr]bool{}
			for _, v := range villages {
				for _, off := range []mem.Addr{40, 48, 56} {
					p := mem.Addr(peek(m, v+off))
					hops := 0
					for p != 0 {
						f, _, err := m.Forwarder().Resolve(p, nil)
						if err != nil {
							t.Fatalf("opt=%v: %v", optOn, err)
						}
						fa := mem.WordAlign(f)
						if seen[fa] {
							t.Fatalf("opt=%v step %d: node %#x on two lists", optOn, steps, fa)
						}
						seen[fa] = true
						if id := peek(m, p+pID); id == 0 {
							t.Fatalf("opt=%v step %d: zero id (corrupt node) at %#x", optOn, steps, p)
						}
						if hops++; hops > 1<<20 {
							t.Fatalf("opt=%v step %d: list cycle", optOn, steps)
						}
						p = mem.Addr(peek(m, p+pNext))
					}
				}
			}
		}
		_, _ = runCfg(cfg)
		if steps == 0 {
			t.Fatal("hook never fired")
		}
	}
}

// TestScaleGrowsWork confirms the Scale knob scales the workload.
func TestScaleGrowsWork(t *testing.T) {
	_, s1 := runCfg(app.Config{Seed: 3, Scale: 1})
	_, s2 := runCfg(app.Config{Seed: 3, Scale: 2})
	if s2.Loads < s1.Loads*3/2 {
		t.Fatalf("Scale=2 loads %d not much larger than Scale=1 %d", s2.Loads, s1.Loads)
	}
}

func TestDifferential(t *testing.T) { apptest.Differential(t, App) }

func TestChaos(t *testing.T) { apptest.Chaos(t, App, 13) }
