// Package health reproduces the Olden "health" benchmark: a simulation
// of the Columbian health-care system. Villages form a 4-ary tree; each
// village keeps three linked lists of patients (waiting, assess,
// inside) that are traversed every time step and mutated constantly, so
// the lists fragment across the heap. The paper's optimization is
// periodic list linearization (Section 5.3), which gave health a more
// than twofold speedup at 128-byte lines.
package health

import (
	"math/rand"

	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
)

// Village layout (80 bytes).
const (
	vParent  = 0
	vChild0  = 8 // four children at 8, 16, 24, 32
	vWaiting = 40
	vAssess  = 48
	vInside  = 56
	vCounter = 64
	vID      = 72
	vBytes   = 80
)

// Patient layout (40 bytes, matching the several-field Olden record).
const (
	pID        = 0
	pRemaining = 8
	pHops      = 16
	pNext      = 24
	pBytes     = 40
)

var listDesc = opt.ListDesc{NodeBytes: pBytes, NextOff: pNext}

// linearizePeriod is the number of simulation steps between
// linearizations of a given village's lists ("the linearization process
// can be invoked ... periodically to adapt to the changing structure",
// Section 2.2).
const linearizePeriod = 12

// App is the registry entry.
var App = app.App{
	Name:         "health",
	Description:  "Columbian health-care simulation (Olden): 4-ary village tree with waiting/assess/inside patient lists",
	Optimization: "periodic list linearization of the per-village patient lists",
	Run:          run,
}

type state struct {
	m        app.Machine
	cfg      app.Config
	rng      *rand.Rand
	pool     *opt.Pool
	villages []mem.Addr // pre-order
	nextID   uint64
	checksum uint64
	reloc    int
	block    int
	step     int
	sites    struct{ traverse int }
}

func run(m app.Machine, cfg app.Config) app.Result {
	cfg = cfg.Norm()
	s := &state{
		m:     m,
		cfg:   cfg,
		rng:   app.NewRand(cfg.Seed),
		pool:  opt.NewPool(m, 1<<16),
		block: cfg.PrefetchBlock,
	}
	s.sites.traverse = m.Site("health.traverse")
	m.SetSite(s.sites.traverse)

	depth := 4
	steps := 50 * cfg.Scale

	// The paper's applications run in a heap aged by hundreds of
	// millions of instructions; patient records land at effectively
	// random addresses. Model that state before the measured phase.
	app.FragmentHeap(m, pBytes, 10000, 0.15, s.rng)

	// Phase marks label the trace and sampler time-series; they charge
	// no simulated time.
	m.PhaseBegin("build")
	root := s.buildVillage(0, depth)
	_ = root

	// Seed initial patients so steady state arrives quickly.
	for _, v := range s.villages {
		for i := 0; i < 2; i++ {
			s.append(v+vWaiting, v, s.newPatient(3+s.rng.Intn(6)))
		}
	}
	m.PhaseEnd("build")

	m.PhaseBegin("sim")
	for t := 0; t < steps; t++ {
		s.step = t
		for vi, v := range s.villages {
			s.stepVillage(v)
			if cfg.Hooks.HealthVillage != nil {
				cfg.Hooks.HealthVillage(m, t, vi, v)
			}
		}
		if cfg.Hooks.HealthStep != nil {
			cfg.Hooks.HealthStep(m, s.villages)
		}
	}
	m.PhaseEnd("sim")

	// Fold the remaining population into the checksum.
	m.PhaseBegin("drain")
	for _, v := range s.villages {
		for _, off := range []mem.Addr{vWaiting, vAssess, vInside} {
			p := m.LoadPtr(v + off)
			for p != 0 {
				s.checksum += m.LoadWord(p+pID) + m.LoadWord(p+pRemaining)
				p = m.LoadPtr(p + pNext)
			}
		}
	}
	m.PhaseEnd("drain")

	return app.Result{
		Checksum:      s.checksum,
		Relocated:     s.reloc,
		SpaceOverhead: s.pool.BytesUsed,
	}
}

// buildVillage allocates the village tree in depth-first order, as the
// original program does.
func (s *state) buildVillage(parent mem.Addr, depth int) mem.Addr {
	m := s.m
	v := m.Malloc(vBytes)
	m.StorePtr(v+vParent, parent)
	m.StoreWord(v+vID, uint64(len(s.villages)))
	s.villages = append(s.villages, v)
	if depth > 1 {
		for c := 0; c < 4; c++ {
			child := s.buildVillage(v, depth-1)
			m.StorePtr(v+vChild0+mem.Addr(c*8), child)
		}
	}
	return v
}

func (s *state) newPatient(remaining int) mem.Addr {
	m := s.m
	s.nextID++
	p := m.Malloc(pBytes)
	m.StoreWord(p+pID, s.nextID)
	m.StoreWord(p+pRemaining, uint64(remaining))
	return p
}

// append walks to the tail of the list at headHandle and links the
// patient there (the original code keeps tails implicit, paying a full
// traversal per insert). The owning village's op counter is bumped.
func (s *state) append(headHandle, village, patient mem.Addr) {
	m := s.m
	h := headHandle
	p := m.LoadPtr(h)
	for p != 0 {
		m.Inst(3)
		h = p + pNext
		p = m.LoadPtr(h)
	}
	m.StorePtr(h, patient)
	m.StorePtr(patient+pNext, 0)
	s.bumpCounter(village)
}

func (s *state) bumpCounter(village mem.Addr) {
	m := s.m
	c := m.LoadWord(village + vCounter)
	m.StoreWord(village+vCounter, c+1)
}

// stepVillage advances one village by one time step: discharge from
// inside, graduate from assess, admit from waiting, and generate new
// arrivals at leaves.
func (s *state) stepVillage(v mem.Addr) {
	m := s.m

	// Inside: treat, discharge at zero.
	h := v + vInside
	p := m.LoadPtr(h)
	for p != 0 {
		m.Inst(5)
		next := m.LoadPtr(p + pNext)
		if s.cfg.Prefetch && next != 0 {
			m.Prefetch(next, s.block)
		}
		r := m.LoadWord(p + pRemaining)
		if r <= 1 {
			s.checksum += m.LoadWord(p + pID)
			m.StorePtr(h, next)
			m.Free(p)
			s.bumpCounter(v)
		} else {
			m.StoreWord(p+pRemaining, r-1)
			h = p + pNext
		}
		p = next
	}

	// Assess: when done, either refer up to the parent's waiting list
	// or admit into this village.
	h = v + vAssess
	p = m.LoadPtr(h)
	for p != 0 {
		m.Inst(5)
		next := m.LoadPtr(p + pNext)
		if s.cfg.Prefetch && next != 0 {
			m.Prefetch(next, s.block)
		}
		r := m.LoadWord(p + pRemaining)
		if r <= 1 {
			m.StorePtr(h, next)
			s.bumpCounter(v)
			id := m.LoadWord(p + pID)
			hops := m.LoadWord(p + pHops)
			parent := m.LoadPtr(v + vParent)
			if parent != 0 && (id+hops)%4 != 0 {
				// Referred up: patients concentrate toward the root,
				// giving upper villages the long lists Olden health is
				// known for.
				m.StoreWord(p+pHops, hops+1)
				s.append(parent+vWaiting, parent, p)
			} else {
				m.StoreWord(p+pRemaining, uint64(8+id%8))
				s.append(v+vInside, v, p)
			}
		} else {
			m.StoreWord(p+pRemaining, r-1)
			h = p + pNext
		}
		p = next
	}

	// Waiting: check every waiting patient (the per-step visit walks
	// the whole list, as Olden health does), then admit the head into
	// assessment. Waiting lists grow long and keep a stable order,
	// which is exactly the structure linearization exploits.
	p = m.LoadPtr(v + vWaiting)
	for p != 0 {
		m.Inst(5)
		next := m.LoadPtr(p + pNext)
		if s.cfg.Prefetch && next != 0 {
			m.Prefetch(next, s.block)
		}
		w := m.LoadWord(p + pRemaining) // "how long waiting" check
		m.StoreWord(p+pRemaining, w+1)
		p = next
	}
	head := m.LoadPtr(v + vWaiting)
	if head != 0 {
		m.StorePtr(v+vWaiting, m.LoadPtr(head+pNext))
		s.bumpCounter(v)
		m.StoreWord(head+pRemaining, uint64(4+m.LoadWord(head+pID)%4))
		s.append(v+vAssess, v, head)
	}

	// Leaves generate new arrivals.
	if m.LoadPtr(v+vChild0) == 0 {
		for k := 0; k < 2; k++ {
			if s.rng.Intn(4) != 0 {
				s.append(v+vWaiting, v, s.newPatient(2+s.rng.Intn(4)))
			}
		}
	}

	// The locality optimization: periodically linearize this village's
	// lists (staggered across villages so relocation work spreads out).
	if s.cfg.Opt {
		vid := int(m.LoadWord(v + vID))
		if (s.step+vid)%linearizePeriod == linearizePeriod-1 {
			for _, off := range []mem.Addr{vWaiting, vAssess, vInside} {
				s.reloc += opt.ListLinearize(m, s.pool, v+off, listDesc)
			}
			m.StoreWord(v+vCounter, 0)
		}
	}
}
