package bh

import (
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/apps/apptest"
	"memfwd/internal/mem"
	"memfwd/internal/sim"
)

func TestConformance(t *testing.T) { apptest.Conformance(t, App) }

func TestPackUnpack(t *testing.T) {
	x, y, z := uint64(123), uint64(65535), uint64(7)
	gx, gy, gz := unpack(pack(x, y, z))
	if gx != x || gy != y || gz != z {
		t.Fatalf("got (%d,%d,%d)", gx, gy, gz)
	}
}

func TestOctant(t *testing.T) {
	c := pack(100, 100, 100)
	if o := octant(pack(150, 50, 100), c); o != 4|1 {
		t.Fatalf("octant = %d", o)
	}
	if o := octant(pack(0, 0, 0), c); o != 0 {
		t.Fatalf("octant = %d", o)
	}
}

func TestClusteringNeedsLongLines(t *testing.T) {
	// The paper: 78-byte cells need >=256B lines for meaningful
	// clustering. Speedup at 256B should exceed speedup at 64B.
	speedup := func(ls int) float64 {
		_, n := apptest.RunOn(sim.Config{LineSize: ls}, App, app.Config{Seed: 5})
		_, l := apptest.RunOn(sim.Config{LineSize: ls}, App, app.Config{Seed: 5, Opt: true})
		return float64(n.Cycles) / float64(l.Cycles)
	}
	s64, s256 := speedup(64), speedup(256)
	if s256 <= s64 {
		t.Errorf("clustering should pay off at long lines: 64B %.2f, 256B %.2f", s64, s256)
	}
	if s256 < 1.0 {
		t.Errorf("256B speedup %.2f < 1", s256)
	}
}

// peek reads a guest word functionally (through forwarding, untimed).
func peek(m app.Machine, a uint64) uint64 {
	f, _, err := m.Forwarder().Resolve(mem.Addr(a), nil)
	if err != nil {
		panic(err)
	}
	return m.Memory().ReadWord(mem.WordAlign(f))
}

// TestMassConservation checks, after every build+summarize, that the
// root cell's summarized mass equals the sum of all body masses that
// were inserted (minus any depth-clamped drops, which must be rare) —
// in both layouts, through relocated cells.
func TestMassConservation(t *testing.T) {
	for _, optOn := range []bool{false, true} {
		checked := 0
		cfg := app.Config{Seed: 13, Opt: optOn}
		cfg.Hooks.BHTree = func(m app.Machine, rootHandle, bodyList mem.Addr) {
			var bodyMass uint64
			nBodies := 0
			for p := bodyList; p != 0; p = mem.Addr(peek(m, uint64(p)+bNext)) {
				bodyMass += peek(m, uint64(p)+bMass)
				nBodies++
			}
			root := mem.Addr(peek(m, uint64(rootHandle)))
			rootMass := peek(m, uint64(root)+cMass)
			if rootMass > bodyMass {
				t.Fatalf("opt=%v: root mass %d exceeds total body mass %d", optOn, rootMass, bodyMass)
			}
			// Depth clamping may drop co-located bodies; tolerate <2%.
			if bodyMass-rootMass > bodyMass/50 {
				t.Fatalf("opt=%v: root mass %d vs body mass %d: too much lost", optOn, rootMass, bodyMass)
			}
			checked++
		}
		apptest.Run(App, cfg)
		if checked == 0 {
			t.Fatal("hook never fired")
		}
	}
}

// TestTreeWellFormed walks the final octree and checks structure: every
// child reachable once, kinds valid, and (optimized case) clustered
// cells still form a proper tree.
func TestTreeWellFormed(t *testing.T) {
	cfg := app.Config{Seed: 13, Opt: true}
	cfg.Hooks.BHTree = func(m app.Machine, rootHandle, bodyList mem.Addr) {
		seen := map[uint64]bool{}
		var walk func(p mem.Addr)
		nodes := 0
		walk = func(p mem.Addr) {
			if p == 0 {
				return
			}
			f, _, _ := m.Forwarder().Resolve(p, nil)
			if seen[uint64(f)] {
				t.Fatalf("node %#x reachable twice", p)
			}
			seen[uint64(f)] = true
			nodes++
			kind := peek(m, uint64(p)+cKind)
			switch kind {
			case kindBody:
			case kindCell:
				for o := 0; o < 8; o++ {
					walk(mem.Addr(peek(m, uint64(p)+cChild0+uint64(o*8))))
				}
			default:
				t.Fatalf("bad kind %d at %#x", kind, p)
			}
		}
		walk(mem.Addr(peek(m, uint64(rootHandle))))
		if nodes < 100 {
			t.Fatalf("suspiciously small tree: %d nodes", nodes)
		}
	}
	apptest.Run(App, cfg)
}

func TestDifferential(t *testing.T) { apptest.Differential(t, App) }

func TestChaos(t *testing.T) { apptest.Chaos(t, App, 13) }
