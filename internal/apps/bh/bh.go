// Package bh reproduces the Barnes-Hut N-body benchmark from the
// paper's Table 1: an octree is constructed depth-first at each time
// step and then traversed in a fairly random order (once per body) to
// compute forces. The paper's optimization is subtree clustering of the
// non-leaf nodes (Figure 9): internal nodes are relocated so that a
// parent and its nearby descendants share a cache-line-sized cluster in
// the most balanced form. Leaf bodies are linked on a list and are not
// clustered (Section 5.3).
package bh

import (
	"math/rand"

	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
)

// Node kind tags.
const (
	kindBody = 0
	kindCell = 1
)

// Internal (cell) node layout (88 bytes; the paper's BH cell is 78
// bytes, word-rounded here).
const (
	cKind   = 0
	cMass   = 8
	cCenter = 16 // packed 21-bit x/y/z
	cChild0 = 24 // eight children
	cBytes  = 88
)

// Body layout (48 bytes).
const (
	bKind  = 0
	bMass  = 8
	bPos   = 16
	bAcc   = 24
	bNext  = 32 // the body list
	bVel   = 40
	bBytes = 48
)

var cellDesc = opt.TreeDesc{
	NodeBytes: cBytes,
	ChildOffs: []uint64{24, 32, 40, 48, 56, 64, 72, 80},
}

// App is the registry entry.
var App = app.App{
	Name:         "bh",
	Description:  "Barnes-Hut N-body (octree built depth-first each step, traversed in random body order for force computation)",
	Optimization: "subtree clustering of the non-leaf octree nodes into cache-line-sized clusters (Figure 9); needs long lines to pack multiple 88-byte cells",
	Run:          run,
}

const space = 1 << 16 // coordinate range per axis

func pack(x, y, z uint64) uint64 { return x<<42 | y<<21 | z }
func unpack(p uint64) (x, y, z uint64) {
	return p >> 42 & 0x1FFFFF, p >> 21 & 0x1FFFFF, p & 0x1FFFFF
}

type state struct {
	m      app.Machine
	cfg    app.Config
	rng    *rand.Rand
	pool   *opt.Pool
	bodies []mem.Addr
	block  int
	reloc  int
}

func run(m app.Machine, cfg app.Config) app.Result {
	cfg = cfg.Norm()
	s := &state{
		m:     m,
		cfg:   cfg,
		rng:   app.NewRand(cfg.Seed),
		pool:  opt.NewPool(m, 1<<17),
		block: cfg.PrefetchBlock,
	}
	nBodies := 512 * cfg.Scale
	steps := 2

	app.FragmentHeap(m, cBytes, 4000, 0.15, s.rng)
	app.FragmentHeap(m, bBytes, 4000, 0.15, s.rng)

	// Bodies, linked on a list in creation order.
	var bodyList mem.Addr
	for i := 0; i < nBodies; i++ {
		b := m.Malloc(bBytes)
		m.StoreWord(b+bKind, kindBody)
		m.StoreWord(b+bMass, uint64(1+s.rng.Intn(100)))
		x := uint64(s.rng.Intn(space))
		y := uint64(s.rng.Intn(space))
		z := uint64(s.rng.Intn(space))
		m.StoreWord(b+bPos, pack(x, y, z))
		m.StorePtr(b+bNext, bodyList)
		bodyList = b
		s.bodies = append(s.bodies, b)
	}

	rootHandle := m.Malloc(8)
	var checksum uint64
	// The clusterBytes follows the line size, so short lines cannot
	// hold more than one 88-byte cell — the paper's observation that
	// meaningful clustering needs 256B lines or longer.
	clusterBytes := uint64(m.LineSize())

	order := make([]int, nBodies)
	for i := range order {
		order[i] = i
	}

	for t := 0; t < steps; t++ {
		s.buildTree(rootHandle, bodyList)
		s.summarize(m.LoadPtr(rootHandle))

		if cfg.Opt && clusterBytes >= cBytes+cBytes/3 {
			// Clustering pays only when a cluster can hold more than one
			// 88-byte cell; at short lines the paper notes it is not
			// meaningful, so the optimized build skips it (and the
			// layouts, hence the timings, coincide with N).
			s.reloc += s.clusterCells(rootHandle, clusterBytes)
		}
		if cfg.Hooks.BHTree != nil {
			cfg.Hooks.BHTree(m, rootHandle, bodyList)
		}

		// Force computation in fairly random body order.
		s.rng.Shuffle(nBodies, func(i, j int) { order[i], order[j] = order[j], order[i] })
		root := m.LoadPtr(rootHandle)
		for _, bi := range order {
			b := s.bodies[bi]
			pos := m.LoadWord(b + bPos)
			acc := s.force(root, pos, b, space)
			m.StoreWord(b+bAcc, acc)
			checksum += acc
		}

		// Advance positions a little (walk the body list).
		p := bodyList
		for p != 0 {
			m.Inst(3)
			next := m.LoadPtr(p + bNext)
			pos := m.LoadWord(p + bPos)
			acc := m.LoadWord(p + bAcc)
			x, y, z := unpack(pos)
			x = (x + acc%17) % space
			y = (y + acc%13) % space
			z = (z + acc%11) % space
			m.StoreWord(p+bPos, pack(x, y, z))
			p = next
		}
	}

	return app.Result{
		Checksum:      checksum,
		Relocated:     s.reloc,
		SpaceOverhead: s.pool.BytesUsed,
	}
}

// newCell allocates an internal node covering the cube centred at
// (cx,cy,cz).
func (s *state) newCell(cx, cy, cz uint64) mem.Addr {
	m := s.m
	c := m.Malloc(cBytes)
	m.StoreWord(c+cKind, kindCell)
	m.StoreWord(c+cCenter, pack(cx, cy, cz))
	return c
}

// buildTree inserts every body, constructing the octree depth-first as
// the original program does. Cells from previous steps are abandoned
// (the original rebuilds its tree each step too).
func (s *state) buildTree(rootHandle, bodyList mem.Addr) {
	m := s.m
	m.StorePtr(rootHandle, s.newCell(space/2, space/2, space/2))
	p := bodyList
	for p != 0 {
		m.Inst(2)
		next := m.LoadPtr(p + bNext)
		s.insert(m.LoadPtr(rootHandle), p, space/2)
		p = next
	}
}

// octant selects the child slot of pos relative to center.
func octant(pos, center uint64) int {
	px, py, pz := unpack(pos)
	cx, cy, cz := unpack(center)
	o := 0
	if px >= cx {
		o |= 4
	}
	if py >= cy {
		o |= 2
	}
	if pz >= cz {
		o |= 1
	}
	return o
}

// childCenter computes the center of child octant o of a cell centred
// at center with half-size half.
func childCenter(center uint64, o int, half uint64) uint64 {
	cx, cy, cz := unpack(center)
	q := half / 2
	if q == 0 {
		q = 1
	}
	if o&4 != 0 {
		cx += q
	} else {
		cx -= q
	}
	if o&2 != 0 {
		cy += q
	} else {
		cy -= q
	}
	if o&1 != 0 {
		cz += q
	} else {
		cz -= q
	}
	return pack(cx, cy, cz)
}

// insert places body b under cell, subdividing when two bodies collide
// in one octant.
func (s *state) insert(cell, b mem.Addr, half uint64) {
	m := s.m
	for {
		m.Inst(8)
		center := m.LoadWord(cell + cCenter)
		pos := m.LoadWord(b + bPos)
		o := octant(pos, center)
		slot := cell + cChild0 + mem.Addr(o*8)
		child := m.LoadPtr(slot)
		if child == 0 {
			m.StorePtr(slot, b)
			return
		}
		if m.LoadWord(child+cKind) == kindCell {
			cell = child
			half /= 2
			if half == 0 {
				half = 1
			}
			continue
		}
		// Occupied by a body: split the octant.
		if half <= 2 {
			// Degenerate co-location: drop the insertion at max depth
			// (mass merge), as real codes clamp depth.
			return
		}
		nc := s.newCell(0, 0, 0)
		m.StoreWord(nc+cCenter, childCenter(center, o, half))
		m.StorePtr(slot, nc)
		oldO := octant(m.LoadWord(child+bPos), m.LoadWord(nc+cCenter))
		m.StorePtr(nc+cChild0+mem.Addr(oldO*8), child)
		cell = nc
		half /= 2
	}
}

// summarize computes each cell's total mass and centre of mass with a
// post-order walk.
func (s *state) summarize(node mem.Addr) (mass uint64, center uint64) {
	m := s.m
	m.Inst(3)
	if m.LoadWord(node+cKind) == kindBody {
		return m.LoadWord(node + bMass), m.LoadWord(node + bPos)
	}
	var total, sx, sy, sz uint64
	for o := 0; o < 8; o++ {
		child := m.LoadPtr(node + cChild0 + mem.Addr(o*8))
		if child == 0 {
			continue
		}
		cm, cc := s.summarize(child)
		x, y, z := unpack(cc)
		total += cm
		sx += x * cm
		sy += y * cm
		sz += z * cm
	}
	if total == 0 {
		total = 1
	}
	c := pack(sx/total%space, sy/total%space, sz/total%space)
	m.StoreWord(node+cMass, total)
	m.StoreWord(node+cCenter, c)
	return total, c
}

// dist2 is the squared distance between two packed positions, clamped
// to keep the integer math tame.
func dist2(a, b uint64) uint64 {
	ax, ay, az := unpack(a)
	bx, by, bz := unpack(b)
	d := func(p, q uint64) uint64 {
		if p > q {
			return p - q
		}
		return q - p
	}
	dx, dy, dz := d(ax, bx), d(ay, by), d(az, bz)
	return dx*dx + dy*dy + dz*dz
}

// force walks the tree for one body using the opening criterion
// size/d < theta (theta = 1, in integer form d^2 > size^2).
func (s *state) force(node mem.Addr, pos uint64, self mem.Addr, size uint64) uint64 {
	m := s.m
	m.Inst(10)
	if node == 0 {
		return 0
	}
	kind := m.LoadWord(node + cKind)
	if kind == kindBody {
		if node == self {
			return 0
		}
		mass := m.LoadWord(node + bMass)
		d2 := dist2(m.LoadWord(node+bPos), pos)
		return mass * 4096 / (d2/1024 + 1)
	}
	center := m.LoadWord(node + cCenter)
	mass := m.LoadWord(node + cMass)
	d2 := dist2(center, pos)
	if d2 > size*size {
		// Far enough: use the cell summary.
		return mass * 4096 / (d2/1024 + 1)
	}
	var acc uint64
	for o := 0; o < 8; o++ {
		child := m.LoadPtr(node + cChild0 + mem.Addr(o*8))
		if child != 0 {
			if s.cfg.Prefetch {
				m.Prefetch(child, s.block)
			}
			acc += s.force(child, pos, self, size/2)
		}
	}
	return acc
}

// clusterCells is the BH-specific subtree clustering: like
// opt.SubtreeCluster, but it only relocates cells, never the bodies
// hanging off them, checking each child's kind tag before queueing it.
func (s *state) clusterCells(rootHandle mem.Addr, clusterBytes uint64) int {
	m := s.m
	perCluster := int(clusterBytes / cBytes)
	if perCluster < 1 {
		perCluster = 1
	}
	count := 0
	roots := []mem.Addr{rootHandle}
	var q []mem.Addr
	for len(roots) > 0 {
		h := roots[len(roots)-1]
		roots = roots[:len(roots)-1]
		m.Inst(2)
		s.pool.AlignTo(clusterBytes)
		q = append(q[:0], h)
		taken := 0
		for len(q) > 0 && taken < perCluster {
			handle := q[0]
			q = q[1:]
			m.Inst(3)
			node := m.LoadPtr(handle)
			if node == 0 || m.LoadWord(node+cKind) != kindCell {
				continue
			}
			tgt := s.pool.Alloc(cBytes)
			opt.Relocate(m, node, tgt, cBytes/8)
			m.StorePtr(handle, tgt)
			taken++
			count++
			for o := 0; o < 8; o++ {
				q = append(q, tgt+cChild0+mem.Addr(o*8))
			}
		}
		roots = append(roots, q...)
		q = q[:0]
	}
	return count
}
