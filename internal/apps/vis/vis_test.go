package vis

import (
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/apps/apptest"
	"memfwd/internal/sim"
)

func TestConformance(t *testing.T) { apptest.Conformance(t, App) }

func TestLibraryCounterTriggersLinearization(t *testing.T) {
	r, _ := apptest.Run(App, app.Config{Seed: 5, Opt: true})
	if r.Relocated < 1000 {
		t.Fatalf("only %d nodes relocated; threshold policy seems dead", r.Relocated)
	}
}

func TestStrayPointersSafeAcrossLinearization(t *testing.T) {
	// The checksum includes stray-pointer dereferences; equality with
	// the unoptimized run (checked in Conformance) plus a nonzero
	// forwarded count here proves forwarding saved at least one stray.
	_, s := apptest.Run(App, app.Config{Seed: 11, Opt: true})
	if s.LoadsForwarded() == 0 {
		t.Skip("no stray dereference hit a relocated node for this seed")
	}
}

func TestUnoptimizedDegradesWithLineSize(t *testing.T) {
	_, a := apptest.RunOn(sim.Config{LineSize: 32}, App, app.Config{Seed: 5})
	_, b := apptest.RunOn(sim.Config{LineSize: 128}, App, app.Config{Seed: 5})
	if b.Cycles <= a.Cycles {
		t.Errorf("unoptimized should degrade with line size: %d -> %d", a.Cycles, b.Cycles)
	}
}

func TestOptimizedBeatsUnoptimized(t *testing.T) {
	for _, ls := range []int{32, 64, 128} {
		_, n := apptest.RunOn(sim.Config{LineSize: ls}, App, app.Config{Seed: 5})
		_, l := apptest.RunOn(sim.Config{LineSize: ls}, App, app.Config{Seed: 5, Opt: true})
		if l.Cycles >= n.Cycles {
			t.Errorf("line %d: %d -> %d", ls, n.Cycles, l.Cycles)
		}
	}
}

// TestEscapedPointersNeverDangle: the op mix must never free a node an
// escaped pointer may reference — deleting only from non-escaped lists
// is the invariant that keeps the stray dereferences defined behaviour.
func TestEscapedPointersNeverDangle(t *testing.T) {
	// Run with a seed that exercises strays; Conformance checks the
	// checksum equality, so here it suffices that no panic occurred and
	// forwarding stats stayed sane.
	_, s := apptest.Run(App, app.Config{Seed: 23, Opt: true})
	if s.CyclesDetected != 0 {
		t.Fatal("forwarding cycle during vis run")
	}
}

// TestScaleGrowsWork confirms the Scale knob.
func TestScaleGrowsWork(t *testing.T) {
	_, s1 := apptest.Run(App, app.Config{Seed: 3, Scale: 1})
	_, s2 := apptest.Run(App, app.Config{Seed: 3, Scale: 2})
	if s2.Loads < s1.Loads*3/2 {
		t.Fatalf("Scale=2 loads %d vs Scale=1 %d", s2.Loads, s1.Loads)
	}
}

func TestDifferential(t *testing.T) { apptest.Differential(t, App) }

func TestChaos(t *testing.T) { apptest.Chaos(t, App, 13) }
