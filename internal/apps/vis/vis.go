// Package vis reproduces the list behaviour of VIS as described in
// Section 5.3 of the paper: a large application built on a generic
// linked-list library, with traversal-dominated workloads, frequent
// insertions and deletions, and library functions that return pointers
// to list elements which client code may hold across linearizations
// (the hazard memory forwarding makes safe).
//
// The paper's optimization is implemented verbatim: each list head
// record carries a counter of insert/delete operations since the last
// linearization; when it exceeds a threshold of 50, the library
// linearizes that list and resets the counter.
package vis

import (
	"math/rand"

	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
)

// List head record (32 bytes): head pointer, element count, and the
// op counter the paper adds for the optimization.
const (
	hHead    = 0
	hCount   = 8
	hCounter = 16
	hBytes   = 32
)

// List node (16 bytes).
const (
	nVal   = 0
	nNext  = 8
	nBytes = 16
)

var nodeDesc = opt.ListDesc{NodeBytes: nBytes, NextOff: nNext}

// linearizeThreshold is "arbitrarily set to 50 in our experiments"
// (Section 5.3).
const linearizeThreshold = 50

// App is the registry entry.
var App = app.App{
	Name:         "vis",
	Description:  "VIS list-library kernel: many generic linked lists under a traversal-heavy op mix with inserts, deletes, and escaped element pointers",
	Optimization: "library-internal list linearization when a per-list op counter exceeds 50",
	Run:          run,
}

type state struct {
	m     app.Machine
	cfg   app.Config
	rng   *rand.Rand
	pool  *opt.Pool
	block int
	reloc int
}

func run(m app.Machine, cfg app.Config) app.Result {
	cfg = cfg.Norm()
	s := &state{
		m:     m,
		cfg:   cfg,
		rng:   app.NewRand(cfg.Seed),
		pool:  opt.NewPool(m, 1<<17),
		block: cfg.PrefetchBlock,
	}

	nLists := 80
	initLen := 44
	ops := 10000 * cfg.Scale

	app.FragmentHeap(m, nBytes, 30000, 0.15, s.rng)

	lists := make([]mem.Addr, nLists)
	val := uint64(1)
	for i := range lists {
		lists[i] = m.Malloc(hBytes)
		for k := 0; k < initLen; k++ {
			s.insertTail(lists[i], val)
			val++
		}
	}

	// Escaped element pointers: library calls return pointers to list
	// elements, which clients stash and dereference much later — the
	// stray-pointer hazard that memory forwarding makes safe.
	strays := make([]mem.Addr, 0, 64)

	var checksum uint64
	for op := 0; op < ops; op++ {
		li := s.rng.Intn(nLists)
		l := lists[li]
		switch r := s.rng.Intn(100); {
		case r < 72:
			checksum += s.traverse(l)
		case r < 84:
			s.insertTail(l, val)
			val++
		case r < 94:
			// Clients only delete from the non-escaped lists, so an
			// escaped element pointer never dangles (dereferencing a
			// freed element is undefined in C with or without
			// forwarding).
			if li >= nLists/4 {
				s.deleteAt(l, s.rng.Intn(initLen))
			}
		case r < 98:
			if li >= nLists/4 {
				break
			}
			if p := s.elementAt(l, s.rng.Intn(initLen)); p != 0 {
				if len(strays) < cap(strays) {
					strays = append(strays, p)
				} else {
					strays[s.rng.Intn(len(strays))] = p
				}
			}
		default:
			if len(strays) > 0 {
				p := strays[s.rng.Intn(len(strays))]
				checksum += s.m.LoadWord(p + nVal) // may be forwarded
			}
		}
		if s.cfg.Opt {
			s.maybeLinearize(l)
		}
	}

	return app.Result{
		Checksum:      checksum,
		Relocated:     s.reloc,
		SpaceOverhead: s.pool.BytesUsed,
	}
}

// bumpOps implements the library's counter-and-reset policy.
func (s *state) bumpOps(l mem.Addr) {
	m := s.m
	c := m.LoadWord(l + hCounter)
	m.StoreWord(l+hCounter, c+1)
}

func (s *state) maybeLinearize(l mem.Addr) {
	m := s.m
	if m.LoadWord(l+hCounter) >= linearizeThreshold {
		s.reloc += opt.ListLinearize(m, s.pool, l+hHead, nodeDesc)
		m.StoreWord(l+hCounter, 0)
	}
}

// insertTail appends a node (the library walks to the tail).
func (s *state) insertTail(l mem.Addr, v uint64) {
	m := s.m
	n := m.Malloc(nBytes)
	m.StoreWord(n+nVal, v)
	h := l + hHead
	p := m.LoadPtr(h)
	for p != 0 {
		m.Inst(1)
		h = p + nNext
		p = m.LoadPtr(h)
	}
	m.StorePtr(h, n)
	m.StoreWord(l+hCount, m.LoadWord(l+hCount)+1)
	s.bumpOps(l)
}

// deleteAt removes the idx-th node if present.
func (s *state) deleteAt(l mem.Addr, idx int) {
	m := s.m
	h := l + hHead
	p := m.LoadPtr(h)
	for i := 0; p != 0 && i < idx; i++ {
		m.Inst(1)
		h = p + nNext
		p = m.LoadPtr(h)
	}
	if p == 0 {
		return
	}
	m.StorePtr(h, m.LoadPtr(p+nNext))
	m.Free(p)
	m.StoreWord(l+hCount, m.LoadWord(l+hCount)-1)
	s.bumpOps(l)
}

// elementAt returns a pointer to the idx-th element (a library accessor
// that escapes element pointers to the client).
func (s *state) elementAt(l mem.Addr, idx int) mem.Addr {
	m := s.m
	p := m.LoadPtr(l + hHead)
	for i := 0; p != 0 && i < idx; i++ {
		m.Inst(1)
		p = m.LoadPtr(p + nNext)
	}
	return p
}

// traverse sums the list — the dominant operation.
func (s *state) traverse(l mem.Addr) uint64 {
	m := s.m
	var sum uint64
	p := m.LoadPtr(l + hHead)
	for p != 0 {
		m.Inst(4)
		next := m.LoadPtr(p + nNext)
		if s.cfg.Prefetch && next != 0 {
			m.Prefetch(next, s.block)
		}
		sum += m.LoadWord(p + nVal)
		p = next
	}
	return sum
}
