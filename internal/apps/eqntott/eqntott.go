// Package eqntott reproduces the PTERM data structure of SPEC eqntott
// as the paper describes it in Section 5.3 (Figure 8): a hash table
// whose entries point to PTERM records, each of which points to a
// separately allocated array of short integers. The hot loop (cmppt)
// walks the table in hash order comparing PTERM bit-vectors.
//
// The optimization relocates each PTERM record together with its short
// array into a single chunk, and places the chunks at contiguous
// addresses in increasing hash-index order — invoked exactly once,
// immediately after the hash table is constructed (Figure 8b).
package eqntott

import (
	"math/rand"

	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
)

// PTERM record layout (24 bytes).
const (
	tIndex = 0
	tPtand = 8 // pointer to the short array
	tNext  = 16
	tBytes = 24
)

// Each PTERM's bit-vector: 16 shorts (32 bytes).
const (
	nShorts    = 16
	arrayBytes = nShorts * 2
)

// App is the registry entry.
var App = app.App{
	Name:         "eqntott",
	Description:  "SPEC eqntott PTERM kernel: hash table of PTERM records, each pointing to a separate short-integer array, compared repeatedly in hash order",
	Optimization: "pack each PTERM record with its short array into one chunk, chunks contiguous in hash order, once after table construction (Figure 8)",
	Run:          run,
}

type state struct {
	m       app.Machine
	cfg     app.Config
	rng     *rand.Rand
	pool    *opt.Pool
	buckets mem.Addr // bucket-head pointer array
	nBkts   int
	block   int
	reloc   int
}

func run(m app.Machine, cfg app.Config) app.Result {
	cfg = cfg.Norm()
	s := &state{
		m:     m,
		cfg:   cfg,
		rng:   app.NewRand(cfg.Seed),
		pool:  opt.NewPool(m, 1<<17),
		block: cfg.PrefetchBlock,
		nBkts: 256,
	}
	nTerms := 2600 * cfg.Scale
	passes := 22

	app.FragmentHeap(m, tBytes, 8000, 0.15, s.rng)
	app.FragmentHeap(m, arrayBytes, 8000, 0.15, s.rng)

	s.buckets = m.Malloc(uint64(s.nBkts) * 8)
	if cfg.Static {
		// Static placement (Section 1): the packed layout is chosen at
		// allocation time. No relocation, no forwarding — but only
		// possible because this optimization never needs to adapt.
		s.buildTableStatic(nTerms)
	} else {
		s.buildTable(nTerms)
		if cfg.Opt {
			s.packTable()
		}
	}
	if cfg.Hooks.Table != nil {
		cfg.Hooks.Table(m, s.buckets, s.nBkts)
	}

	probe := s.makeProbe()
	var checksum uint64
	for p := 0; p < passes; p++ {
		checksum += s.cmpptPass(probe, p)
	}

	return app.Result{
		Checksum:      checksum,
		Relocated:     s.reloc,
		SpaceOverhead: s.pool.BytesUsed,
	}
}

// buildTable inserts nTerms PTERMs at their buckets' heads. Records and
// arrays come from the aged heap, so they scatter (Figure 8a).
func (s *state) buildTable(nTerms int) {
	m := s.m
	for i := 0; i < nTerms; i++ {
		arr := m.Malloc(arrayBytes)
		for k := 0; k < nShorts; k++ {
			m.Store16(arr+mem.Addr(k*2), uint16(s.rng.Intn(3))) // 0, 1, or don't-care
		}
		rec := m.Malloc(tBytes)
		m.StoreWord(rec+tIndex, uint64(i))
		m.StorePtr(rec+tPtand, arr)
		h := s.buckets + mem.Addr(i%s.nBkts*8)
		m.StorePtr(rec+tNext, m.LoadPtr(h))
		m.StorePtr(h, rec)
	}
}

// buildTableStatic allocates each record+array pair directly as one
// chunk from a contiguous pool — the static-placement alternative the
// paper contrasts with relocation. Chain order within buckets matches
// buildTable's (head insertion), so results are identical.
func (s *state) buildTableStatic(nTerms int) {
	m := s.m
	for i := 0; i < nTerms; i++ {
		chunk := s.pool.Alloc(tBytes + arrayBytes)
		rec := chunk
		arr := chunk + tBytes
		for k := 0; k < nShorts; k++ {
			m.Store16(arr+mem.Addr(k*2), uint16(s.rng.Intn(3)))
		}
		m.StoreWord(rec+tIndex, uint64(i))
		m.StorePtr(rec+tPtand, arr)
		h := s.buckets + mem.Addr(i%s.nBkts*8)
		m.StorePtr(rec+tNext, m.LoadPtr(h))
		m.StorePtr(h, rec)
		s.reloc++ // statically placed objects, for accounting
	}
}

// packTable is the Figure 8(b) relocation: for every bucket in hash
// order, each chain record and its short array move into one contiguous
// chunk; chunk order follows the chain order. The chain links and the
// record-to-array pointer are updated; any pointer the program failed
// to update would still work via forwarding.
func (s *state) packTable() {
	m := s.m
	for b := 0; b < s.nBkts; b++ {
		handle := s.buckets + mem.Addr(b*8)
		rec := m.LoadPtr(handle)
		for rec != 0 {
			m.Inst(4)
			chunk := s.pool.Alloc(tBytes + arrayBytes)
			newRec := chunk
			newArr := chunk + tBytes
			arr := m.LoadPtr(rec + tPtand)
			opt.Relocate(m, rec, newRec, tBytes/8)
			opt.Relocate(m, arr, newArr, arrayBytes/8)
			m.StorePtr(newRec+tPtand, newArr)
			m.StorePtr(handle, newRec)
			handle = newRec + tNext
			rec = m.LoadPtr(handle)
			s.reloc += 2
		}
	}
}

// makeProbe builds the PTERM bit-vector that every pass compares
// against.
func (s *state) makeProbe() mem.Addr {
	m := s.m
	probe := m.Malloc(arrayBytes)
	for k := 0; k < nShorts; k++ {
		m.Store16(probe+mem.Addr(k*2), uint16(k%3))
	}
	return probe
}

// cmpptPass walks every bucket chain in hash order, comparing each
// PTERM's shorts against the probe with early exit — eqntott's cmppt.
func (s *state) cmpptPass(probe mem.Addr, salt int) uint64 {
	m := s.m
	var tally uint64
	for b := 0; b < s.nBkts; b++ {
		rec := m.LoadPtr(s.buckets + mem.Addr(b*8))
		for rec != 0 {
			m.Inst(6)
			next := m.LoadPtr(rec + tNext)
			if s.cfg.Prefetch && next != 0 {
				m.Prefetch(next, s.block)
			}
			arr := m.LoadPtr(rec + tPtand)
			idx := m.LoadWord(rec + tIndex)
			// Compare until mismatch (cmppt's early exit).
			for k := 0; k < nShorts; k++ {
				m.Inst(4)
				a := m.Load16(arr + mem.Addr(k*2))
				p := m.Load16(probe + mem.Addr(k*2))
				if a != p {
					tally += uint64(k) + idx%7 + uint64(salt%3)
					break
				}
				if k == nShorts-1 {
					tally += 100
				}
			}
			rec = next
		}
	}
	return tally
}
