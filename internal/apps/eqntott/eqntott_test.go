package eqntott

import (
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/apps/apptest"
	"memfwd/internal/mem"
	"memfwd/internal/sim"
)

func TestConformance(t *testing.T) { apptest.Conformance(t, App) }

func TestPackingHelpsMostAtLongLines(t *testing.T) {
	speedup := func(ls int) float64 {
		_, n := apptest.RunOn(sim.Config{LineSize: ls}, App, app.Config{Seed: 5})
		_, l := apptest.RunOn(sim.Config{LineSize: ls}, App, app.Config{Seed: 5, Opt: true})
		return float64(n.Cycles) / float64(l.Cycles)
	}
	s64, s128 := speedup(64), speedup(128)
	if s128 <= s64 {
		t.Errorf("speedup should grow with line size: 64B %.2f, 128B %.2f", s64, s128)
	}
	if s128 < 1.2 {
		t.Errorf("128B speedup %.2f too small for record+array packing", s128)
	}
}

func TestNoForwardingAfterCompletePointerUpdate(t *testing.T) {
	// The relocation happens once, immediately after construction, and
	// every pointer is updated — so no reference should ever forward.
	_, s := apptest.Run(App, app.Config{Seed: 5, Opt: true})
	if s.LoadsForwarded() != 0 || s.StoresForwarded() != 0 {
		t.Fatalf("forwarding occurred: %d loads, %d stores",
			s.LoadsForwarded(), s.StoresForwarded())
	}
}

func peek(m *sim.Machine, a mem.Addr) uint64 {
	f, _, err := m.Fwd.Resolve(a, nil)
	if err != nil {
		panic(err)
	}
	return m.Mem.ReadWord(mem.WordAlign(f))
}

// TestPackedLayoutContiguous verifies the Figure 8(b) structure after
// the real application's packing pass: walking each bucket chain, every
// record sits immediately before its own short array, and successive
// chain records occupy successive chunks.
func TestPackedLayoutContiguous(t *testing.T) {
	var buckets mem.Addr
	var nBkts int
	cfg := app.Config{Seed: 5, Opt: true}
	cfg.Hooks.Table = func(m app.Machine, b mem.Addr, n int) { buckets, nBkts = b, n }

	m := sim.New(sim.Config{})
	App.Run(m, cfg)

	const chunk = tBytes + arrayBytes
	pairs, contiguous := 0, 0
	for b := 0; b < nBkts; b++ {
		rec := mem.Addr(peek(m, buckets+mem.Addr(b*8)))
		var prev mem.Addr
		for rec != 0 {
			arr := mem.Addr(peek(m, rec+tPtand))
			if arr != rec+tBytes {
				t.Fatalf("bucket %d: array %#x not adjacent to record %#x", b, arr, rec)
			}
			if prev != 0 {
				pairs++
				if rec == prev+chunk {
					contiguous++
				}
			}
			prev = rec
			rec = mem.Addr(peek(m, rec+tNext))
		}
	}
	if pairs == 0 {
		t.Fatal("no chains with multiple records")
	}
	if contiguous != pairs {
		t.Fatalf("only %d/%d successive chain records contiguous", contiguous, pairs)
	}
}

// TestUnpackedLayoutScattered confirms the Figure 8(a) baseline: in the
// original layout, records and their arrays are not adjacent.
func TestUnpackedLayoutScattered(t *testing.T) {
	var buckets mem.Addr
	cfg := app.Config{Seed: 5}
	cfg.Hooks.Table = func(m app.Machine, b mem.Addr, n int) { buckets = b }

	m := sim.New(sim.Config{})
	App.Run(m, cfg)

	adjacent, total := 0, 0
	for b := 0; b < 16; b++ {
		rec := mem.Addr(peek(m, buckets+mem.Addr(b*8)))
		for rec != 0 {
			arr := mem.Addr(peek(m, rec+tPtand))
			total++
			if arr == rec+tBytes {
				adjacent++
			}
			rec = mem.Addr(peek(m, rec+tNext))
		}
	}
	if total == 0 {
		t.Fatal("empty table")
	}
	if adjacent*4 > total {
		t.Fatalf("baseline suspiciously packed: %d/%d adjacent", adjacent, total)
	}
}

// TestStaticPlacementOrdering is the Section 1 contrast measured:
// static placement (packed chunks, allocation order) beats the original
// layout, but loses to relocation — because relocation runs after the
// table is built and can pack chunks in the bucket-chain order the hot
// loop actually traverses, which static placement cannot know at
// allocation time. That adaptivity is the paper's argument for
// relocation over placement.
func TestStaticPlacementOrdering(t *testing.T) {
	rn, sn := apptest.Run(App, app.Config{Seed: 5})
	rl, sl := apptest.Run(App, app.Config{Seed: 5, Opt: true})
	rs, ss := apptest.Run(App, app.Config{Seed: 5, Static: true})
	if rl.Checksum != rs.Checksum || rn.Checksum != rs.Checksum {
		t.Fatalf("static placement diverged: N=%d L=%d S=%d", rn.Checksum, rl.Checksum, rs.Checksum)
	}
	if ss.Cycles >= sn.Cycles {
		t.Fatalf("static placement (%d) should beat the original layout (%d)", ss.Cycles, sn.Cycles)
	}
	if sl.Cycles >= ss.Cycles {
		t.Fatalf("relocation (%d) should beat static placement (%d): it packs in traversal order", sl.Cycles, ss.Cycles)
	}
	if ss.LoadsForwarded() != 0 {
		t.Fatal("static placement must never forward")
	}
}

func TestDifferential(t *testing.T) { apptest.Differential(t, App) }

func TestChaos(t *testing.T) { apptest.Chaos(t, App, 13) }
