// Package apptest provides the shared conformance checks every
// benchmark application must satisfy: functional equivalence between
// the optimized and unoptimized variants, determinism, seed
// sensitivity, and prefetch-variant safety.
package apptest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"memfwd/internal/apps/app"
	"memfwd/internal/obs"
	"memfwd/internal/oracle"
	"memfwd/internal/quickseed"
	"memfwd/internal/sim"
)

// Run executes one configuration on a default machine with 128-byte
// lines — the size at which every application's optimization is active
// (BH's subtree clustering needs long lines).
func Run(a app.App, cfg app.Config) (app.Result, *sim.Stats) {
	return RunOn(sim.Config{LineSize: 128}, a, cfg)
}

// RunOn executes one configuration on a machine built from mc.
func RunOn(mc sim.Config, a app.App, cfg app.Config) (app.Result, *sim.Stats) {
	m := sim.New(mc)
	r := a.Run(m, cfg)
	return r, m.Finalize()
}

// Conformance runs the checks shared by all eight applications.
func Conformance(t *testing.T, a app.App) {
	t.Helper()

	base, baseStats := Run(a, app.Config{Seed: 11})
	optR, optStats := Run(a, app.Config{Seed: 11, Opt: true})

	if base.Checksum != optR.Checksum {
		t.Errorf("%s: optimized checksum %d != unoptimized %d", a.Name, optR.Checksum, base.Checksum)
	}
	if optR.Relocated == 0 {
		t.Errorf("%s: optimization relocated nothing", a.Name)
	}
	if optR.SpaceOverhead == 0 {
		t.Errorf("%s: no relocation space overhead recorded", a.Name)
	}
	if baseStats.Loads == 0 || baseStats.Cycles == 0 {
		t.Errorf("%s: empty run (loads=%d cycles=%d)", a.Name, baseStats.Loads, baseStats.Cycles)
	}

	// Determinism: same seed, same machine => identical cycles.
	r2, s2 := Run(a, app.Config{Seed: 11, Opt: true})
	if r2.Checksum != optR.Checksum || s2.Cycles != optStats.Cycles {
		t.Errorf("%s: nondeterministic (chk %d vs %d, cyc %d vs %d)",
			a.Name, r2.Checksum, optR.Checksum, s2.Cycles, optStats.Cycles)
	}

	// Seed sensitivity.
	r3, _ := Run(a, app.Config{Seed: 12})
	if r3.Checksum == base.Checksum {
		t.Errorf("%s: seed does not affect the workload", a.Name)
	}

	// Prefetch variants must not change results.
	rp, _ := Run(a, app.Config{Seed: 11, Prefetch: true, PrefetchBlock: 4})
	rlp, _ := Run(a, app.Config{Seed: 11, Opt: true, Prefetch: true, PrefetchBlock: 4})
	if rp.Checksum != base.Checksum || rlp.Checksum != base.Checksum {
		t.Errorf("%s: prefetch variants changed results", a.Name)
	}

	// The slot partition invariant holds on real workloads.
	var slots uint64
	for _, v := range optStats.Slots {
		slots += v
	}
	if slots != uint64(optStats.Cycles)*4 {
		t.Errorf("%s: slots %d != 4*cycles %d", a.Name, slots, optStats.Cycles*4)
	}
}

// diffMachine is the machine geometry every differential and chaos run
// uses; it matches Run (128-byte lines keep all optimizations active).
var diffMachine = sim.Config{LineSize: 128}

// Differential runs a under every functional variant — baseline, the
// application's optimization pass, and the prefetch combinations — on
// both the timing simulator and the functional oracle, demanding
// identical results and identical final-heap digests modulo forwarding
// (see oracle.RunDifferential). This is the per-app end-to-end check
// that "relocation is always safe": any functional effect of the
// timing machinery, or any value a relocated run computes differently,
// fails here with the first divergence named.
func Differential(t *testing.T, a app.App) {
	t.Helper()
	variants := []struct {
		name string
		cfg  app.Config
	}{
		{"base", app.Config{Seed: 11}},
		{"opt", app.Config{Seed: 11, Opt: true}},
		{"prefetch", app.Config{Seed: 11, Prefetch: true, PrefetchBlock: 4}},
		{"opt+prefetch", app.Config{Seed: 11, Opt: true, Prefetch: true, PrefetchBlock: 4}},
	}
	if testing.Short() {
		variants = variants[:2]
	}
	for _, v := range variants {
		v := v
		t.Run("differential/"+v.name, func(t *testing.T) {
			if err := oracle.RunDifferential(diffMachine, a, v.cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

// Chaos runs seeded relocation-chaos episodes of a (see
// oracle.ChaosEpisode): the guest executes with an adversary randomly
// relocating its heap blocks — including chain-lengthening
// re-relocations and misaligned probe chains — and the run must be
// functionally indistinguishable from an unperturbed one. episodes is
// the full-mode episode count; short mode trims episodes (never
// coverage: both the timed-simulator and pure-oracle adversaries, and
// both the base and opt variants, always run at least once).
// Odd-numbered episodes additionally run with the adversary's fault
// injection armed: relocations are crashed, corrupted, journal-repaired
// and verified behind the guest's back, and the episode must still be
// bit-identical to the unperturbed run.
func Chaos(t *testing.T, a app.App, episodes int) {
	t.Helper()
	if episodes < 2 {
		episodes = 2
	}
	if testing.Short() {
		episodes = 2
	}
	cfgs := []struct {
		name string
		cfg  app.Config
	}{
		{"base", app.Config{Seed: 11}},
		{"opt", app.Config{Seed: 11, Opt: true}},
	}
	// One flight recorder across every episode: the per-phase quantile
	// report at the end covers all of this app's adversarial
	// relocations, fault-injected ones included.
	spans := obs.NewSpanTable(4096)
	for i := 0; i < episodes; i++ {
		v := cfgs[i%len(cfgs)]
		// Episode 0 runs on the full timing simulator; the rest use the
		// cheap pure-oracle adversary with distinct seeds.
		ch := oracle.ChaosConfig{
			Seed:   int64(1000*i) + 7,
			Timed:  i == 0 || i == 1,
			SimCfg: diffMachine,
			Faults: i%2 == 1,
			Spans:  spans,
		}
		mode := "oracle"
		if ch.Timed {
			mode = "sim"
		}
		t.Run(fmt.Sprintf("chaos/%s/%s/seed=%d", mode, v.name, ch.Seed), func(t *testing.T) {
			rel, err := oracle.ChaosEpisode(a, v.cfg, ch)
			if err != nil {
				t.Fatal(err)
			}
			if rel.Relocations == 0 {
				t.Errorf("%s: chaos episode (seed %d) performed no relocations", a.Name, ch.Seed)
			}
		})
	}
	t.Run("chaos/span-report", func(t *testing.T) {
		if spans.Count() == 0 {
			t.Fatalf("%s: no relocation spans recorded across chaos episodes", a.Name)
		}
		committed, _, _ := spans.Outcomes()
		if committed == 0 {
			t.Errorf("%s: chaos episodes committed no relocations", a.Name)
		}
		rep := spans.Report().String()
		for _, want := range []string{"p50 cyc", "p95 cyc", "copy", "plant", "committed"} {
			if !strings.Contains(rep, want) {
				t.Fatalf("%s: span report missing %q:\n%s", a.Name, want, rep)
			}
		}
		t.Logf("%s chaos flight recorder:\n%s", a.Name, rep)
	})
}

// Seed re-exports quickseed.Seed for test packages above apptest in
// the import graph; in-package tests of the lower layers (mem, cache,
// cpu) import internal/quickseed directly.
func Seed(t *testing.T) int64 { return quickseed.Seed(t) }

// Rand re-exports quickseed.Rand.
func Rand(t *testing.T) *rand.Rand { return quickseed.Rand(t) }

// QuickConfig re-exports quickseed.Config.
func QuickConfig(t *testing.T, maxCount int) *quick.Config { return quickseed.Config(t, maxCount) }
