// Package apptest provides the shared conformance checks every
// benchmark application must satisfy: functional equivalence between
// the optimized and unoptimized variants, determinism, seed
// sensitivity, and prefetch-variant safety.
package apptest

import (
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/sim"
)

// Run executes one configuration on a default machine with 128-byte
// lines — the size at which every application's optimization is active
// (BH's subtree clustering needs long lines).
func Run(a app.App, cfg app.Config) (app.Result, *sim.Stats) {
	return RunOn(sim.Config{LineSize: 128}, a, cfg)
}

// RunOn executes one configuration on a machine built from mc.
func RunOn(mc sim.Config, a app.App, cfg app.Config) (app.Result, *sim.Stats) {
	m := sim.New(mc)
	r := a.Run(m, cfg)
	return r, m.Finalize()
}

// Conformance runs the checks shared by all eight applications.
func Conformance(t *testing.T, a app.App) {
	t.Helper()

	base, baseStats := Run(a, app.Config{Seed: 11})
	optR, optStats := Run(a, app.Config{Seed: 11, Opt: true})

	if base.Checksum != optR.Checksum {
		t.Errorf("%s: optimized checksum %d != unoptimized %d", a.Name, optR.Checksum, base.Checksum)
	}
	if optR.Relocated == 0 {
		t.Errorf("%s: optimization relocated nothing", a.Name)
	}
	if optR.SpaceOverhead == 0 {
		t.Errorf("%s: no relocation space overhead recorded", a.Name)
	}
	if baseStats.Loads == 0 || baseStats.Cycles == 0 {
		t.Errorf("%s: empty run (loads=%d cycles=%d)", a.Name, baseStats.Loads, baseStats.Cycles)
	}

	// Determinism: same seed, same machine => identical cycles.
	r2, s2 := Run(a, app.Config{Seed: 11, Opt: true})
	if r2.Checksum != optR.Checksum || s2.Cycles != optStats.Cycles {
		t.Errorf("%s: nondeterministic (chk %d vs %d, cyc %d vs %d)",
			a.Name, r2.Checksum, optR.Checksum, s2.Cycles, optStats.Cycles)
	}

	// Seed sensitivity.
	r3, _ := Run(a, app.Config{Seed: 12})
	if r3.Checksum == base.Checksum {
		t.Errorf("%s: seed does not affect the workload", a.Name)
	}

	// Prefetch variants must not change results.
	rp, _ := Run(a, app.Config{Seed: 11, Prefetch: true, PrefetchBlock: 4})
	rlp, _ := Run(a, app.Config{Seed: 11, Opt: true, Prefetch: true, PrefetchBlock: 4})
	if rp.Checksum != base.Checksum || rlp.Checksum != base.Checksum {
		t.Errorf("%s: prefetch variants changed results", a.Name)
	}

	// The slot partition invariant holds on real workloads.
	var slots uint64
	for _, v := range optStats.Slots {
		slots += v
	}
	if slots != uint64(optStats.Cycles)*4 {
		t.Errorf("%s: slots %d != 4*cycles %d", a.Name, slots, optStats.Cycles*4)
	}
}
