// Package mst reproduces the Olden "mst" benchmark: a minimum spanning
// tree computed over a graph whose adjacency structure is a per-vertex
// hash table of edge records chained into bucket lists. The inner loop
// performs hash lookups that chase bucket chains, so the paper applies
// list linearization to the chains (Section 5.3), packing each vertex's
// edge records contiguously in bucket order after the graph is built.
package mst

import (
	"math/rand"

	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
)

// Vertex layout (guest): bucket-head pointer array, one word per bucket.
const nBuckets = 4

// Edge record layout (24 bytes).
const (
	eKey    = 0 // neighbour vertex id
	eWeight = 8
	eNext   = 16
	eBytes  = 24
)

var chainDesc = opt.ListDesc{NodeBytes: eBytes, NextOff: eNext}

// App is the registry entry.
var App = app.App{
	Name:         "mst",
	Description:  "minimum spanning tree (Olden): per-vertex hash tables of edge records in bucket chains",
	Optimization: "list linearization of every vertex's bucket chains, once after graph construction",
	Run:          run,
}

type state struct {
	m     app.Machine
	cfg   app.Config
	rng   *rand.Rand
	pool  *opt.Pool
	verts []mem.Addr // bucket arrays, one per vertex
	block int
	reloc int
}

func run(m app.Machine, cfg app.Config) app.Result {
	cfg = cfg.Norm()
	s := &state{
		m:     m,
		cfg:   cfg,
		rng:   app.NewRand(cfg.Seed),
		pool:  opt.NewPool(m, 1<<16),
		block: cfg.PrefetchBlock,
	}

	nVerts := 192 * cfg.Scale
	degree := 8

	app.FragmentHeap(m, eBytes, 8000, 0.15, s.rng)

	s.build(nVerts, degree)

	if cfg.Opt {
		// Pack each vertex's chains contiguously in bucket order so a
		// lookup scan touches dense lines.
		for _, v := range s.verts {
			for b := 0; b < nBuckets; b++ {
				s.reloc += opt.ListLinearize(m, s.pool, v+mem.Addr(b*8), chainDesc)
			}
		}
	}

	weight := s.prim(nVerts)

	return app.Result{
		Checksum:      weight,
		Relocated:     s.reloc,
		SpaceOverhead: s.pool.BytesUsed,
	}
}

// edgeWeight is a symmetric deterministic weight for the pair (a, b).
func edgeWeight(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	h := uint64(a)*2654435761 + uint64(b)*40503
	return h%1000 + 1
}

func (s *state) bucket(v mem.Addr, key int) mem.Addr {
	return v + mem.Addr((uint64(key)*2654435761>>20)%nBuckets*8)
}

// build allocates vertices and inserts degree edges per vertex into
// both endpoints' hash tables (insert at bucket head, as Olden does).
func (s *state) build(nVerts, degree int) {
	m := s.m
	s.verts = make([]mem.Addr, nVerts)
	for i := range s.verts {
		s.verts[i] = m.Malloc(nBuckets * 8)
	}
	for a := 0; a < nVerts; a++ {
		for d := 0; d < degree/2; d++ {
			b := s.rng.Intn(nVerts)
			if b == a {
				b = (a + 1) % nVerts
			}
			w := edgeWeight(a, b)
			s.insert(a, b, w)
			s.insert(b, a, w)
		}
	}
	// Guarantee connectivity with a ring.
	for a := 0; a < nVerts; a++ {
		b := (a + 1) % nVerts
		w := edgeWeight(a, b)
		if s.lookup(a, b) == 0 {
			s.insert(a, b, w)
			s.insert(b, a, w)
		}
	}
}

// insert prepends an edge record to vertex a's chain for key b unless
// already present.
func (s *state) insert(a, b int, w uint64) {
	if s.lookup(a, b) != 0 {
		return
	}
	m := s.m
	h := s.bucket(s.verts[a], b)
	e := m.Malloc(eBytes)
	m.StoreWord(e+eKey, uint64(b))
	m.StoreWord(e+eWeight, w)
	m.StorePtr(e+eNext, m.LoadPtr(h))
	m.StorePtr(h, e)
	if s.cfg.Hooks.MSTEdge != nil {
		s.cfg.Hooks.MSTEdge(a, b, w)
	}
}

// lookup returns the weight of edge (a, b), or 0 when absent, walking
// a's bucket chain — the benchmark's hot loop.
func (s *state) lookup(a, b int) uint64 {
	m := s.m
	m.Inst(7) // hash computation
	p := m.LoadPtr(s.bucket(s.verts[a], b))
	for p != 0 {
		m.Inst(4)
		next := m.LoadPtr(p + eNext)
		if s.cfg.Prefetch && next != 0 {
			m.Prefetch(next, s.block)
		}
		if m.LoadWord(p+eKey) == uint64(b) {
			return m.LoadWord(p + eWeight)
		}
		p = next
	}
	return 0
}

// prim computes the MST weight with the Olden-style O(V^2) loop: each
// round scans every remaining vertex, refreshing its distance via a
// hash lookup against the most recently added vertex.
func (s *state) prim(nVerts int) uint64 {
	m := s.m
	const inf = ^uint64(0)
	// Per-vertex scalars live in guest arrays, as in the original.
	dist := m.Malloc(uint64(nVerts) * 8)
	inTree := m.Malloc(uint64(nVerts))
	for v := 0; v < nVerts; v++ {
		m.StoreWord(dist+mem.Addr(v*8), inf)
	}
	m.Store8(inTree, 1)
	last := 0
	var total uint64
	for added := 1; added < nVerts; added++ {
		bestV, bestD := -1, inf
		for v := 0; v < nVerts; v++ {
			m.Inst(6)
			if m.Load8(inTree+mem.Addr(v)) != 0 {
				continue
			}
			dv := m.LoadWord(dist + mem.Addr(v*8))
			if w := s.lookup(v, last); w != 0 && w < dv {
				dv = w
				m.StoreWord(dist+mem.Addr(v*8), dv)
			}
			if dv < bestD {
				bestV, bestD = v, dv
			}
		}
		if bestV < 0 {
			break
		}
		m.Store8(inTree+mem.Addr(bestV), 1)
		total += bestD
		last = bestV
	}
	return total
}
