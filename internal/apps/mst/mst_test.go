package mst

import (
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/apps/apptest"
	"memfwd/internal/sim"
)

func TestConformance(t *testing.T) { apptest.Conformance(t, App) }

func TestLinearizationReducesMissesAndCycles(t *testing.T) {
	for _, ls := range []int{64, 128} {
		_, n := apptest.RunOn(sim.Config{LineSize: ls}, App, app.Config{Seed: 5})
		_, l := apptest.RunOn(sim.Config{LineSize: ls}, App, app.Config{Seed: 5, Opt: true})
		if l.L1.Misses(0) >= n.L1.Misses(0) {
			t.Errorf("line %d: misses %d -> %d (no reduction)", ls, n.L1.Misses(0), l.L1.Misses(0))
		}
		if l.Cycles >= n.Cycles {
			t.Errorf("line %d: cycles %d -> %d (no speedup)", ls, n.Cycles, l.Cycles)
		}
	}
}

func TestMSTWeightPositiveAndConnected(t *testing.T) {
	r, _ := apptest.Run(App, app.Config{Seed: 3})
	if r.Checksum == 0 {
		t.Fatal("MST weight zero: graph disconnected or lookup broken")
	}
}

func TestForwardingRare(t *testing.T) {
	_, s := apptest.Run(App, app.Config{Seed: 5, Opt: true})
	if frac := float64(s.LoadsForwarded()) / float64(s.Loads); frac > 0.001 {
		t.Fatalf("forwarded load fraction %.4f, want ~0", frac)
	}
}

// TestAgainstReferencePrim recomputes the MST weight with a textbook
// host-side Prim over the exact edge set the guest built, and requires
// the guest result (through all the simulated hash tables, and through
// relocation in the optimized variant) to match.
func TestAgainstReferencePrim(t *testing.T) {
	for _, optOn := range []bool{false, true} {
		type edge struct {
			b int
			w uint64
		}
		adj := map[int][]edge{}
		maxV := 0
		cfg := app.Config{Seed: 17, Opt: optOn}
		cfg.Hooks.MSTEdge = func(a, b int, w uint64) {
			adj[a] = append(adj[a], edge{b, w})
			if a > maxV {
				maxV = a
			}
			if b > maxV {
				maxV = b
			}
		}
		r, _ := apptest.Run(App, cfg)

		n := maxV + 1
		const inf = ^uint64(0)
		dist := make([]uint64, n)
		inTree := make([]bool, n)
		for i := range dist {
			dist[i] = inf
		}
		inTree[0] = true
		last := 0
		var want uint64
		for added := 1; added < n; added++ {
			for _, e := range adj[last] {
				if !inTree[e.b] && e.w < dist[e.b] {
					dist[e.b] = e.w
				}
			}
			best, bestD := -1, inf
			for v := 0; v < n; v++ {
				if !inTree[v] && dist[v] < bestD {
					best, bestD = v, dist[v]
				}
			}
			if best < 0 {
				t.Fatal("reference graph disconnected")
			}
			inTree[best] = true
			want += bestD
			last = best
		}
		if r.Checksum != want {
			t.Fatalf("opt=%v: guest MST weight %d != reference %d", optOn, r.Checksum, want)
		}
	}
}

func TestDifferential(t *testing.T) { apptest.Differential(t, App) }

func TestChaos(t *testing.T) { apptest.Chaos(t, App, 13) }
