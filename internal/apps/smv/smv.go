// Package smv reproduces the BDD kernel of the SMV model checker, the
// paper's forwarding-overhead case study (Section 5.4): BDD nodes are
// reachable both through a hash table (the unique table, an array of
// buckets pointing to linked lists) and through the binary-tree low/high
// pointers of other BDD nodes.
//
// The optimization linearizes the hash-bucket lists, which updates the
// bucket heads and chain links — but the program cannot update the tree
// pointers held inside other BDD nodes, so every access through a
// low/high pointer dereferences a one-hop forwarding address. SMV is
// the one application where the forwarding safety net fires constantly
// (the paper measures 7.7% of loads and 1.7% of stores taking one hop).
package smv

import (
	"math/rand"

	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
)

// BDD node layout (40 bytes).
const (
	nVar   = 0
	nLow   = 8
	nHigh  = 16
	nNext  = 24 // unique-table chain
	nMark  = 32 // visit marker written during evaluation sweeps
	nBytes = 40
)

var chainDesc = opt.ListDesc{NodeBytes: nBytes, NextOff: nNext}

// App is the registry entry.
var App = app.App{
	Name:         "smv",
	Description:  "SMV model-checker BDD kernel: nodes linked through both a hash table (unique table) and binary-tree low/high pointers",
	Optimization: "linearize the unique-table bucket lists; tree pointers cannot be updated, so forwarding actually occurs (Section 5.4)",
	Run:          run,
}

const nBuckets = 512

type state struct {
	m       app.Machine
	cfg     app.Config
	rng     *rand.Rand
	pool    *opt.Pool
	buckets mem.Addr
	nodes   []mem.Addr // creation-order node handles (old addresses)
	block   int
	reloc   int

	// Static reference sites for the forwarding profiler.
	siteEval, siteLookup int
}

func run(m app.Machine, cfg app.Config) app.Result {
	cfg = cfg.Norm()
	s := &state{
		m:     m,
		cfg:   cfg,
		rng:   app.NewRand(cfg.Seed),
		pool:  opt.NewPool(m, 1<<17),
		block: cfg.PrefetchBlock,
	}

	nMk := 6000 * cfg.Scale
	nEvals := 4000 * cfg.Scale

	s.siteEval = m.Site("smv.eval.tree")
	s.siteLookup = m.Site("smv.lookup.chain")

	app.FragmentHeap(m, nBytes, 12000, 0.15, s.rng)

	s.buckets = m.Malloc(nBuckets * 8)

	// Terminal nodes (false, true).
	for v := uint64(0); v < 2; v++ {
		t := m.Malloc(nBytes)
		m.StoreWord(t+nVar, ^uint64(0)-v)
		s.nodes = append(s.nodes, t)
	}

	// Build phase: mk() with random structure grows the unique table.
	for i := 0; i < nMk; i++ {
		v := uint64(s.rng.Intn(256))
		low := s.nodes[s.rng.Intn(len(s.nodes))]
		high := s.nodes[s.rng.Intn(len(s.nodes))]
		s.mk(v, low, high)
	}

	// The optimization: linearize every bucket chain once, after the
	// table is built. Tree pointers (low/high fields of other nodes)
	// still hold old addresses afterwards.
	if cfg.Opt {
		for b := 0; b < nBuckets; b++ {
			s.reloc += opt.ListLinearize(m, s.pool, s.buckets+mem.Addr(b*8), chainDesc)
		}
	}

	if cfg.Hooks.Table != nil {
		cfg.Hooks.Table(m, s.buckets, nBuckets)
	}

	// Evaluation phase: tree walks through low/high pointers (these
	// forward when optimized) interleaved with unique-table lookups
	// (these go straight to the new copies).
	var checksum uint64
	for e := 0; e < nEvals; e++ {
		start := s.nodes[s.rng.Intn(len(s.nodes))]
		input := uint64(s.rng.Int63())
		checksum += s.eval(start, input, e)
		// Hash-side work between evaluations.
		for k := 0; k < 5; k++ {
			v := uint64(s.rng.Intn(256))
			low := s.nodes[s.rng.Intn(len(s.nodes))]
			high := s.nodes[s.rng.Intn(len(s.nodes))]
			s.lookup(v, low, high)
		}
	}

	return app.Result{
		Checksum:      checksum,
		Relocated:     s.reloc,
		SpaceOverhead: s.pool.BytesUsed,
	}
}

func (s *state) hash(v uint64, low, high mem.Addr) mem.Addr {
	h := v*31 + uint64(low)*2654435761 + uint64(high)*40503
	return s.buckets + mem.Addr(h%nBuckets*8)
}

// lookup walks the bucket chain for (v, low, high); chain links are
// up-to-date after linearization, so this path does not forward.
// Node identity (the low/high comparisons) must respect relocation:
// the stored pointers may be old addresses while the probe pointers are
// new ones, so the comparison uses final addresses — the
// compiler-inserted transformation of Section 2.1.
func (s *state) lookup(v uint64, low, high mem.Addr) mem.Addr {
	m := s.m
	m.SetSite(s.siteLookup)
	m.Inst(5)
	p := m.LoadPtr(s.hash(v, low, high))
	for p != 0 {
		m.Inst(4)
		next := m.LoadPtr(p + nNext)
		if s.cfg.Prefetch && next != 0 {
			m.Prefetch(next, s.block)
		}
		if m.LoadWord(p+nVar) == v &&
			s.ptrEqual(m.LoadPtr(p+nLow), low) &&
			s.ptrEqual(m.LoadPtr(p+nHigh), high) {
			return p
		}
		p = next
	}
	return 0
}

// ptrEqual compares node identities. The binary compiled for the
// optimized run carries the compiler-inserted final-address comparison
// (Section 2.1); the original binary compares raw pointers.
func (s *state) ptrEqual(a, b mem.Addr) bool {
	if s.cfg.Opt {
		// Compiler-inserted sequence with its fast path: raw equality
		// implies final-address equality (forwarding chains are
		// functions of the address), so only unequal pointers pay the
		// final-address lookup.
		s.m.Inst(2)
		if a == b {
			return true
		}
		return s.m.PtrEqual(a, b)
	}
	s.m.Inst(1)
	return a == b
}

// mk returns the unique node for (v, low, high), creating it if needed.
func (s *state) mk(v uint64, low, high mem.Addr) mem.Addr {
	m := s.m
	if n := s.lookup(v, low, high); n != 0 {
		return n
	}
	n := m.Malloc(nBytes)
	m.StoreWord(n+nVar, v)
	m.StorePtr(n+nLow, low)
	m.StorePtr(n+nHigh, high)
	h := s.hash(v, low, high)
	m.StorePtr(n+nNext, m.LoadPtr(h))
	m.StorePtr(h, n)
	s.nodes = append(s.nodes, n)
	return n
}

// eval walks down from start through low/high pointers until it reaches
// a terminal, marking nodes as it goes. Every node access on this path
// uses a tree pointer that the optimization could not update, so these
// loads (and the marker stores) forward.
func (s *state) eval(start mem.Addr, input uint64, tag int) uint64 {
	m := s.m
	m.SetSite(s.siteEval)
	p := start
	var out uint64
	for depth := 0; depth < 24; depth++ {
		m.Inst(8)
		v := m.LoadWord(p + nVar)
		if v > 1<<32 { // terminal
			out += ^v
			break
		}
		out = out*2 + (input>>(v&63))&1
		// Mark the visit (a store through the tree pointer) on a
		// sampled subset of evaluations.
		if depth == 0 && tag%2 == 0 {
			m.StoreWord(p+nMark, uint64(tag))
		}
		var next mem.Addr
		if (input>>(v&63))&1 == 1 {
			next = m.LoadPtr(p + nHigh)
		} else {
			next = m.LoadPtr(p + nLow)
		}
		if next == 0 {
			break
		}
		p = next
	}
	return out
}
