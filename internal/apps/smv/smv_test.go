package smv

import (
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/apps/apptest"
	"memfwd/internal/mem"
	"memfwd/internal/sim"
)

func TestConformance(t *testing.T) { apptest.Conformance(t, App) }

func TestForwardingActuallyOccurs(t *testing.T) {
	// SMV is the paper's forwarding-overhead case: ~7.7% of loads and
	// ~1.7% of stores take one hop (Figure 10c). Accept a loose band.
	_, s := apptest.Run(App, app.Config{Seed: 5, Opt: true})
	fl := float64(s.LoadsForwarded()) / float64(s.Loads)
	fs := float64(s.StoresForwarded()) / float64(s.Stores)
	if fl < 0.02 || fl > 0.20 {
		t.Errorf("forwarded load fraction %.4f outside [0.02, 0.20]", fl)
	}
	if fs < 0.005 || fs > 0.10 {
		t.Errorf("forwarded store fraction %.4f outside [0.005, 0.10]", fs)
	}
	// All forwarding is single-hop: the table was linearized once.
	if s.LoadsFwdByHops[2] != 0 {
		t.Errorf("multi-hop forwarding after a single linearization: %v", s.LoadsFwdByHops[:4])
	}
}

func TestUnoptimizedNeverForwards(t *testing.T) {
	_, s := apptest.Run(App, app.Config{Seed: 5})
	if s.LoadsForwarded() != 0 {
		t.Fatal("unoptimized run forwarded loads")
	}
}

func TestPerfectForwardingBeatsRealForwarding(t *testing.T) {
	// Figure 10a's ordering: L (real forwarding) is slower than Perf.
	_, l := apptest.RunOn(sim.Config{}, App, app.Config{Seed: 5, Opt: true})
	_, p := apptest.RunOn(sim.Config{PerfectForwarding: true}, App, app.Config{Seed: 5, Opt: true})
	if p.Cycles >= l.Cycles {
		t.Errorf("Perf (%d) should beat L (%d)", p.Cycles, l.Cycles)
	}
	if p.LoadsForwarded() != 0 {
		t.Errorf("perfect forwarding reported %d forwarded loads", p.LoadsForwarded())
	}
}

func TestPerfFunctionallyIdentical(t *testing.T) {
	rl, _ := apptest.RunOn(sim.Config{}, App, app.Config{Seed: 7, Opt: true})
	rp, _ := apptest.RunOn(sim.Config{PerfectForwarding: true}, App, app.Config{Seed: 7, Opt: true})
	if rl.Checksum != rp.Checksum {
		t.Fatalf("Perf diverged: %d vs %d", rl.Checksum, rp.Checksum)
	}
}

func peek(m *sim.Machine, a mem.Addr) uint64 {
	f, _, err := m.Fwd.Resolve(a, nil)
	if err != nil {
		panic(err)
	}
	return m.Mem.ReadWord(mem.WordAlign(f))
}

// TestUniqueTableInvariant walks the whole unique table and checks that
// no two nodes share (var, low, high) — comparing pointer identities by
// FINAL address, which is the only comparison that is meaningful after
// relocation (Section 2.1). Verified for both layouts.
func TestUniqueTableInvariant(t *testing.T) {
	for _, optOn := range []bool{false, true} {
		var buckets mem.Addr
		var nBkts int
		cfg := app.Config{Seed: 5, Opt: optOn}
		cfg.Hooks.Table = func(m app.Machine, b mem.Addr, n int) { buckets, nBkts = b, n }
		m := sim.New(sim.Config{})
		App.Run(m, cfg)

		final := func(a mem.Addr) mem.Addr {
			f, _, err := m.Fwd.Resolve(a, nil)
			if err != nil {
				t.Fatal(err)
			}
			return mem.WordAlign(f)
		}
		type key struct {
			v         uint64
			low, high mem.Addr
		}
		seen := map[key]mem.Addr{}
		nodes := 0
		for b := 0; b < nBkts; b++ {
			p := mem.Addr(peek(m, buckets+mem.Addr(b*8)))
			for p != 0 {
				k := key{
					v:    peek(m, p+nVar),
					low:  final(mem.Addr(peek(m, p+nLow))),
					high: final(mem.Addr(peek(m, p+nHigh))),
				}
				if prev, dup := seen[k]; dup {
					t.Fatalf("opt=%v: duplicate node (%d,%#x,%#x) at %#x and %#x",
						optOn, k.v, k.low, k.high, prev, p)
				}
				seen[k] = p
				nodes++
				p = mem.Addr(peek(m, p+nNext))
			}
		}
		if nodes < 1000 {
			t.Fatalf("opt=%v: unique table suspiciously small: %d", optOn, nodes)
		}
	}
}

// TestLinearizedChainsContiguous checks the optimized layout: within a
// bucket, successive chain nodes occupy successive pool addresses.
func TestLinearizedChainsContiguous(t *testing.T) {
	var buckets mem.Addr
	var nBkts int
	cfg := app.Config{Seed: 5, Opt: true}
	cfg.Hooks.Table = func(m app.Machine, b mem.Addr, n int) { buckets, nBkts = b, n }
	m := sim.New(sim.Config{})
	App.Run(m, cfg)

	pairs, contiguous := 0, 0
	for b := 0; b < nBkts; b++ {
		p := mem.Addr(peek(m, buckets+mem.Addr(b*8)))
		var prev mem.Addr
		for p != 0 {
			if prev != 0 {
				pairs++
				if p == prev+nBytes {
					contiguous++
				}
			}
			prev = p
			p = mem.Addr(peek(m, p+nNext))
		}
	}
	if pairs == 0 || contiguous != pairs {
		t.Fatalf("chains not linearized: %d/%d contiguous", contiguous, pairs)
	}
}

func TestDifferential(t *testing.T) { apptest.Differential(t, App) }

func TestChaos(t *testing.T) { apptest.Chaos(t, App, 13) }
