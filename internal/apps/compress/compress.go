// Package compress reproduces the LZW kernel of SPEC compress as
// described in Section 5.3 of the paper: the hot data structures are
// two parallel tables, htab (hash codes) and codetab (next codes),
// indexed by the same probe sequence. The paper's optimization copies
// the two tables into a single larger table so that htab[i] and
// codetab[i] fall within one cache line — and notes that this actually
// *hurts* locality at 32- and 64-byte lines, the one case in Figure 5
// where the optimized layout loses.
//
// Both tables use word-sized entries here (the original codetab held
// shorts; word entries keep relocation word-aligned per Section 3.3 —
// recorded as a substitution in DESIGN.md).
package compress

import (
	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
)

// App is the registry entry.
var App = app.App{
	Name:         "compress",
	Description:  "SPEC compress LZW kernel: htab/codetab hash tables probed per input byte",
	Optimization: "interleave htab and codetab into one table so entry pairs share a line (hurts short lines, as the paper found)",
	Run:          run,
}

const (
	// tableSize is prime, like the original's 69001: the secondary
	// probe displacement must be coprime to the table size or open
	// addressing can orbit a subset of slots forever.
	tableSize = 32749
	firstFree = 257 // first LZW code after the byte alphabet + clear code
	// maxCode is the dictionary bound: the encoder clears well before
	// the open-addressed table saturates.
	maxCode = tableSize * 4 / 5
)

type state struct {
	m   app.Machine
	cfg app.Config

	// Layout state: in the original layout, htab[i] and codetab[i] are
	// htab+8i and codetab+8i; after the relocation, T+16i and T+16i+8.
	htab, codetab mem.Addr
	inter         mem.Addr // interleaved table base (optimized layout)
	interleaved   bool
	reloc         int
	pool          *opt.Pool
}

func (s *state) hslot(i uint64) mem.Addr {
	if s.interleaved {
		return s.inter + mem.Addr(i*16)
	}
	return s.htab + mem.Addr(i*8)
}

func (s *state) cslot(i uint64) mem.Addr {
	if s.interleaved {
		return s.inter + mem.Addr(i*16+8)
	}
	return s.codetab + mem.Addr(i*8)
}

func run(m app.Machine, cfg app.Config) app.Result {
	cfg = cfg.Norm()
	s := &state{m: m, cfg: cfg, pool: opt.NewPool(m, (tableSize*16)+64)}

	inputLen := 70000 * cfg.Scale
	rng := app.NewRand(cfg.Seed)

	// Synthetic input with Markov-like skew so the dictionary fills the
	// way text does.
	input := make([]byte, inputLen)
	prev := byte('a')
	for i := range input {
		r := rng.Intn(10)
		switch {
		case r < 5:
			input[i] = 'a' + byte((int(prev)+r)%20)
		case r < 8:
			input[i] = 'a' + byte(rng.Intn(26))
		default:
			input[i] = ' '
		}
		prev = input[i]
	}

	s.htab = m.Malloc(tableSize * 8)
	s.codetab = m.Malloc(tableSize * 8)

	var outCount, outXor, free uint64
	clear := func() {
		free = firstFree
		for i := uint64(0); i < tableSize; i++ {
			m.Store(s.hslot(i), 0, 8)
		}
	}
	clear()

	emit := func(code uint64) {
		outCount++
		outXor = outXor*31 + code
		if cfg.Hooks.CompressEmit != nil {
			cfg.Hooks.CompressEmit(code)
		}
	}
	if cfg.Hooks.CompressInput != nil {
		cfg.Hooks.CompressInput(input)
	}

	ent := uint64(input[0])
	for n := 1; n < len(input); n++ {
		// The optimization runs once, shortly after the dictionary
		// starts filling (the paper relocates existing data; a fresh
		// process would just allocate the new layout directly).
		if cfg.Opt && !s.interleaved && n == len(input)/8 {
			s.interleave()
		}

		c := uint64(input[n])
		fcode := (c << 16) | ent
		i := ((c << 4) ^ ent) % tableSize
		disp := uint64(1)
		if i != 0 {
			disp = tableSize - i
		}
		m.Inst(10)

		found := false
		for {
			h := m.Load(s.hslot(i), 8)
			if h == 0 {
				break // empty slot: not in table
			}
			if h == fcode+1 {
				found = true
				break
			}
			m.Inst(5) // secondary probe
			if i < disp {
				i += tableSize
			}
			i -= disp
		}

		if found {
			ent = m.Load(s.cslot(i), 8)
			continue
		}
		emit(ent)
		// Clear well before the table saturates, as the original's
		// code-space bound guarantees; open addressing must never fill.
		if free < maxCode {
			m.Store(s.cslot(i), free, 8)
			m.Store(s.hslot(i), fcode+1, 8)
			free++
		} else {
			clear()
		}
		ent = c
	}
	emit(ent)

	return app.Result{
		Checksum:      outXor + outCount<<32,
		Relocated:     s.reloc,
		SpaceOverhead: s.pool.BytesUsed,
	}
}

// interleave relocates both tables into one table T with 16-byte entry
// pairs, then switches the access functions to the new layout. Because
// every word is relocated with forwarding addresses left behind, any
// access path the program failed to retarget would still find the data.
func (s *state) interleave() {
	m := s.m
	s.inter = s.pool.Alloc(tableSize * 16)
	for i := uint64(0); i < tableSize; i++ {
		opt.Relocate(m, s.htab+mem.Addr(i*8), s.inter+mem.Addr(i*16), 1)
		opt.Relocate(m, s.codetab+mem.Addr(i*8), s.inter+mem.Addr(i*16+8), 1)
	}
	s.reloc = tableSize * 2
	s.interleaved = true
}
