package compress

import (
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/apps/apptest"
	"memfwd/internal/sim"
)

func TestConformance(t *testing.T) { apptest.Conformance(t, App) }

func TestInterleavingHurtsShortLinesHelpsLongLines(t *testing.T) {
	// The paper's exceptional case: the optimized layout loses at 32B
	// lines and wins at 128B.
	speedup := func(ls int) float64 {
		_, n := apptest.RunOn(sim.Config{LineSize: ls}, App, app.Config{Seed: 5})
		_, l := apptest.RunOn(sim.Config{LineSize: ls}, App, app.Config{Seed: 5, Opt: true})
		return float64(n.Cycles) / float64(l.Cycles)
	}
	s32, s128 := speedup(32), speedup(128)
	if s32 >= 1.0 {
		t.Errorf("32B speedup %.2f: interleaving should hurt short lines", s32)
	}
	if s128 <= 1.0 {
		t.Errorf("128B speedup %.2f: interleaving should win long lines", s128)
	}
}

func TestCompressionActuallyCompresses(t *testing.T) {
	r, _ := apptest.Run(App, app.Config{Seed: 3})
	outCount := r.Checksum >> 32 // packed in the checksum's high bits
	if outCount == 0 {
		t.Fatal("no output codes emitted")
	}
}

// lzwDecode mirrors the encoder's dictionary discipline (including the
// silent deterministic clears) and reconstructs the original input.
func lzwDecode(codes []uint64) []byte {
	dict := make(map[uint64][]byte)
	nextCode := uint64(firstFree)
	var out []byte
	var prev []byte
	fresh := true // next code starts a segment (after start or clear)
	for _, code := range codes {
		var cur []byte
		switch {
		case code < 256:
			cur = []byte{byte(code)}
		case code == nextCode && !fresh:
			// KwKwK: the entry being defined right now.
			cur = append(append([]byte{}, prev...), prev[0])
		default:
			cur = dict[code]
		}
		out = append(out, cur...)
		if !fresh {
			if nextCode < maxCode {
				entry := append(append([]byte{}, prev...), cur[0])
				dict[nextCode] = entry
				nextCode++
			} else {
				dict = make(map[uint64][]byte)
				nextCode = firstFree
				fresh = true
				prev = nil
				// The code just decoded becomes the new segment start.
				prev = cur
				continue
			}
		}
		fresh = false
		prev = cur
	}
	return out
}

// TestRoundTrip decodes the emitted LZW stream and compares it with the
// original input byte for byte — full functional validation of the
// compressor, in both layouts.
func TestRoundTrip(t *testing.T) {
	for _, optOn := range []bool{false, true} {
		var input []byte
		var codes []uint64
		cfg := app.Config{Seed: 21, Opt: optOn}
		cfg.Hooks.CompressInput = func(b []byte) { input = append([]byte{}, b...) }
		cfg.Hooks.CompressEmit = func(c uint64) { codes = append(codes, c) }
		m := sim.New(sim.Config{})
		App.Run(m, cfg)

		got := lzwDecode(codes)
		if len(got) != len(input) {
			t.Fatalf("opt=%v: decoded %d bytes, want %d", optOn, len(got), len(input))
		}
		for i := range got {
			if got[i] != input[i] {
				t.Fatalf("opt=%v: byte %d = %q, want %q", optOn, i, got[i], input[i])
			}
		}
		if len(codes) >= len(input) {
			t.Fatalf("opt=%v: no compression (%d codes for %d bytes)", optOn, len(codes), len(input))
		}
	}
}

func TestDifferential(t *testing.T) { apptest.Differential(t, App) }

func TestChaos(t *testing.T) { apptest.Chaos(t, App, 13) }
