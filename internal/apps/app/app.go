// Package app defines the common harness contract for the paper's
// eight benchmark applications (Table 1). Each application is a guest
// program over the simulated machine: all of its data lives in
// simulated memory and every instruction and reference is charged.
//
// Each concrete application package exports a single app.App value; the
// top-level memfwd package assembles the registry.
package app

import (
	"math/rand"

	"memfwd/internal/core"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
)

// Machine is the guest-facing contract of a simulated machine: every
// operation a benchmark application (or a layout-optimization pass in
// internal/opt) may perform. The full out-of-order simulator
// (internal/sim) implements it with real timing; the functional
// reference machine (internal/oracle) implements it with direct word
// semantics and no timing at all. Because guest programs are written
// against this interface, the differential harness can run the same
// program on both and demand identical functional results — the
// mechanically-checked version of the paper's "relocation is always
// safe" guarantee.
//
// Functional determinism contract: every implementation must produce
// identical values from Load*, identical addresses from Malloc (the
// allocator is shared state driven only by the guest's call sequence),
// and identical trap-firing decisions (a handler fires exactly when a
// reference took at least one forwarding hop). Timing-only methods
// (Inst, Prefetch, Site, SetSite, PhaseBegin, PhaseEnd, TraceRelocate)
// may be no-ops.
type Machine interface {
	// Inst accounts n non-memory instructions.
	Inst(n int)

	// Forwarded data references (sizes 1, 2, 4, 8; natural alignment).
	Load(a mem.Addr, size uint) uint64
	Store(a mem.Addr, v uint64, size uint)
	LoadWord(a mem.Addr) uint64
	StoreWord(a mem.Addr, v uint64)
	LoadPtr(a mem.Addr) mem.Addr
	StorePtr(a, p mem.Addr)
	Load32(a mem.Addr) uint32
	Store32(a mem.Addr, v uint32)
	Load16(a mem.Addr) uint16
	Store16(a mem.Addr, v uint16)
	Load8(a mem.Addr) uint8
	Store8(a mem.Addr, v uint8)

	// Prefetch issues a block prefetch of consecutive lines.
	Prefetch(a mem.Addr, lines int)

	// The three ISA extensions of Figure 3 plus the compiler-inserted
	// final-address helpers of Section 2.1.
	ReadFBit(a mem.Addr) bool
	UnforwardedRead(a mem.Addr) (uint64, bool)
	UnforwardedWrite(a mem.Addr, v uint64, fbit bool)
	FinalAddr(a mem.Addr) mem.Addr
	PtrEqual(a, b mem.Addr) bool

	// User-level forwarding traps (Section 3.2).
	SetTrap(h core.TrapHandler)

	// Heap. Allocator exposes the raw (untimed) allocator for arena
	// carving and heap aging; Malloc/Free are the timed guest calls.
	Malloc(n uint64) mem.Addr
	Free(a mem.Addr)
	Allocator() *mem.Allocator

	// Untimed functional substrate (tests, tools, digests): the tagged
	// memory and the dereference mechanism themselves. Reads through
	// these charge no simulated time and must not be used by guest code
	// on any measured path.
	Memory() *mem.Memory
	Forwarder() *core.Forwarder

	// LineSize is the primary-cache line size the layout optimizations
	// target (the oracle reports the configured target line size).
	LineSize() int

	// Fault injection (internal/fault). A machine carries at most one
	// injector; installing one hooks the tagged memory's
	// Unforwarded_Write path and the forwarder's chain walk, and the
	// relocation machinery (internal/opt) journals through it. Guests
	// never consult the injector; a nil injector is the normal,
	// fault-free state. SetFaultInjector(nil) uninstalls.
	FaultInjector() *fault.Injector
	SetFaultInjector(in *fault.Injector)

	// Observability; free of functional effect.
	Site(name string) int
	SetSite(id int)
	PhaseBegin(name string)
	PhaseEnd(name string)
	TraceRelocate(src, tgt mem.Addr, nWords int)
}

// Config selects one run variant of an application.
type Config struct {
	// Opt enables the locality optimization (the paper's L/LP bars);
	// false is the original layout (N/NP bars).
	Opt bool

	// Prefetch enables software prefetching at the application's
	// profiled top miss sites (Section 5.2).
	Prefetch bool

	// PrefetchBlock is the block-prefetch size in cache lines; the
	// harness sweeps it and reports the best per case, as the paper
	// does. Zero means 1.
	PrefetchBlock int

	// Static selects static placement (Section 1 of the paper): the
	// optimized layout is built directly at allocation time instead of
	// by relocation, so there is no relocation cost and no forwarding —
	// but also no ability to adapt to dynamic behaviour. Supported by
	// eqntott (whose optimization runs once); apps whose layouts must
	// adapt at run time ignore it.
	Static bool

	// Seed drives the workload generator; identical seeds produce
	// identical reference streams.
	Seed int64

	// Scale multiplies the default workload size (1 = standard).
	Scale int

	// Hooks are optional per-run observation callbacks (test support).
	// They travel with the Config instead of living in package-level
	// variables so that concurrent runs on the experiment engine never
	// share mutable state.
	Hooks Hooks
}

// Hooks are the per-run observation callbacks. Each field is consulted
// only by the application named in its comment; nil fields cost one
// comparison. Hooks observe simulated state mid-run and must not
// retain the *sim.Machine beyond the callback.
type Hooks struct {
	// BHTree observes (machine, rootHandle, bodyList) after each
	// build+summarize+cluster step (bh).
	BHTree func(m Machine, rootHandle, bodyList mem.Addr)

	// Table observes (machine, bucketsBase, nBuckets) after table
	// construction and any packing/linearization (eqntott, smv).
	Table func(m Machine, buckets mem.Addr, n int)

	// HealthStep is invoked after every simulation step with the
	// machine and the village addresses (health).
	HealthStep func(m Machine, villages []mem.Addr)

	// HealthVillage is invoked after each village's sub-step with
	// (step, villageIndex, villageAddr) (health).
	HealthVillage func(m Machine, step, village int, addr mem.Addr)

	// MSTEdge observes every inserted edge (mst; a host-side reference
	// MST can be computed over the same graph).
	MSTEdge func(a, b int, w uint64)

	// CompressInput receives the generated input bytes and
	// CompressEmit every output code, so tests can decode the stream
	// and verify the round trip (compress).
	CompressInput func([]byte)
	CompressEmit  func(uint64)
}

// Norm returns cfg with defaults applied.
func (c Config) Norm() Config {
	if c.PrefetchBlock <= 0 {
		c.PrefetchBlock = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is what one application run reports back.
type Result struct {
	// Checksum is a functional digest of the computation; optimized
	// and unoptimized variants of the same workload must agree.
	Checksum uint64

	// Relocated counts objects moved by the optimization.
	Relocated int

	// SpaceOverhead is the relocation-target memory consumed, in
	// bytes (Table 1's "Space Overhead" column).
	SpaceOverhead uint64
}

// App describes one benchmark application.
type App struct {
	// Name as used in the paper (e.g. "health", "smv").
	Name string

	// Description and Optimization fill Table 1's columns.
	Description  string
	Optimization string

	// Run executes the workload on m under cfg.
	Run func(m Machine, cfg Config) Result
}

// NewRand returns the deterministic workload generator for a seed.
// Workload generation runs on the host; only the resulting guest
// behaviour is simulated.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// FragmentHeap ages the machine's heap the way a long-lived C process
// does before the measured phase begins: it allocates count blocks of
// blockBytes, then frees a random (1-keepFrac) subset in random order,
// leaving the allocator's free lists shuffled. Subsequent allocations
// of that size class land at effectively random addresses, which is the
// fragmentation regime the paper's applications run in (their inputs
// execute hundreds of millions of instructions before and during the
// measured phases). The aging itself is untimed: it models pre-existing
// heap state, not work done by the application.
func FragmentHeap(m Machine, blockBytes uint64, count int, keepFrac float64, rng *rand.Rand) {
	al := m.Allocator()
	blocks := make([]mem.Addr, count)
	for i := range blocks {
		blocks[i] = al.Alloc(blockBytes)
	}
	rng.Shuffle(count, func(i, j int) { blocks[i], blocks[j] = blocks[j], blocks[i] })
	nFree := int(float64(count) * (1 - keepFrac))
	for _, a := range blocks[:nFree] {
		al.Free(a)
	}
}
