package app

import (
	"testing"

	"memfwd/internal/sim"
)

func TestConfigNorm(t *testing.T) {
	c := Config{}.Norm()
	if c.PrefetchBlock != 1 || c.Scale != 1 || c.Seed != 1 {
		t.Fatalf("defaults: %+v", c)
	}
	c = Config{PrefetchBlock: 4, Scale: 3, Seed: 99}.Norm()
	if c.PrefetchBlock != 4 || c.Scale != 3 || c.Seed != 99 {
		t.Fatalf("overrides lost: %+v", c)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(7).Int63() == NewRand(8).Int63() {
		t.Fatal("different seeds coincide (suspicious)")
	}
}

func TestFragmentHeapShufflesReuse(t *testing.T) {
	m := sim.New(sim.Config{})
	rng := NewRand(3)
	FragmentHeap(m, 32, 2000, 0.2, rng)
	// Subsequent allocations of that size class should NOT be address-
	// ordered: count monotone steps among 100 allocations.
	var prev uint64
	monotone := 0
	for i := 0; i < 100; i++ {
		a := uint64(m.Alloc.Alloc(32))
		if i > 0 && a > prev {
			monotone++
		}
		prev = a
	}
	if monotone > 75 {
		t.Fatalf("allocations nearly address-ordered after aging (%d/99 ascending)", monotone)
	}
	// And the aging left a live remainder (keepFrac).
	if m.Alloc.BytesLive == 0 {
		t.Fatal("aging freed everything")
	}
}

func TestFragmentHeapUntimed(t *testing.T) {
	m := sim.New(sim.Config{})
	FragmentHeap(m, 32, 500, 0.5, NewRand(1))
	if st := m.Finalize(); st.Instructions != 0 {
		t.Fatalf("heap aging charged %d instructions; it models pre-existing state", st.Instructions)
	}
}
