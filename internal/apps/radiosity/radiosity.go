// Package radiosity reproduces the list-processing kernel of the
// hierarchical radiosity application from the paper's Table 1: every
// patch keeps a linked interaction list that is traversed on each
// energy-gathering iteration and refined (entries removed, subdivided
// entries inserted) between iterations, fragmenting the lists. The
// optimization is periodic list linearization of the interaction lists
// (Section 5.3).
package radiosity

import (
	"math/rand"

	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
)

// Patch layout (32 bytes): energy accumulator, incoming energy, the
// interaction-list head, and the mutation counter that drives
// linearization.
const (
	pEnergy   = 0
	pGathered = 8
	pInter    = 16
	pCounter  = 24
	pEmit     = 32 // constant emission term
	pBytes    = 40
)

// Interaction entry layout (32 bytes): form factor, the index of the
// source patch, a visibility term, and the next pointer.
const (
	iFF    = 0
	iSrc   = 8
	iVis   = 16
	iNext  = 24
	iBytes = 32
)

var interDesc = opt.ListDesc{NodeBytes: iBytes, NextOff: iNext}

// linearizeThreshold mirrors the VIS-style mutation-count trigger
// (Section 5.3 sets it to 50).
const linearizeThreshold = 50

// App is the registry entry.
var App = app.App{
	Name:         "radiosity",
	Description:  "hierarchical radiosity kernel: per-patch interaction lists traversed every gathering iteration and refined between iterations",
	Optimization: "periodic list linearization of the interaction lists, triggered by a per-list mutation counter",
	Run:          run,
}

type state struct {
	m       app.Machine
	cfg     app.Config
	rng     *rand.Rand
	pool    *opt.Pool
	patches []mem.Addr
	block   int
	reloc   int
}

func run(m app.Machine, cfg app.Config) app.Result {
	cfg = cfg.Norm()
	s := &state{
		m:     m,
		cfg:   cfg,
		rng:   app.NewRand(cfg.Seed),
		pool:  opt.NewPool(m, 1<<16),
		block: cfg.PrefetchBlock,
	}

	nPatches := 160 * cfg.Scale
	iters := 24

	app.FragmentHeap(m, iBytes, 12000, 0.15, s.rng)

	s.buildScene(nPatches)

	for it := 0; it < iters; it++ {
		for pi, p := range s.patches {
			s.gather(p)
			if it%2 == 1 {
				s.refine(p, pi)
			}
			if s.cfg.Opt {
				if m.LoadWord(p+pCounter) >= linearizeThreshold {
					s.reloc += opt.ListLinearize(m, s.pool, p+pInter, interDesc)
					m.StoreWord(p+pCounter, 0)
				}
			}
		}
		// Commit gathered energy: radiosity = emission + reflected
		// gathered energy (sequential pass over patch records).
		for _, p := range s.patches {
			m.Inst(2)
			g := m.LoadWord(p + pGathered)
			em := m.LoadWord(p + pEmit)
			m.StoreWord(p+pEnergy, em+g/2)
			m.StoreWord(p+pGathered, 0)
		}
	}

	var sum uint64
	for _, p := range s.patches {
		sum += m.LoadWord(p + pEnergy)
	}
	return app.Result{
		Checksum:      sum,
		Relocated:     s.reloc,
		SpaceOverhead: s.pool.BytesUsed,
	}
}

// buildScene allocates patches and their initial interaction lists.
// Interactions are inserted across patches in interleaved order so the
// lists start out scattered, as a real build does.
func (s *state) buildScene(nPatches int) {
	m := s.m
	s.patches = make([]mem.Addr, nPatches)
	for i := range s.patches {
		p := m.Malloc(pBytes)
		m.StoreWord(p+pEnergy, uint64(1000+i))
		m.StoreWord(p+pEmit, uint64(1000+i))
		s.patches[i] = p
	}
	perPatch := 24
	for k := 0; k < perPatch; k++ {
		for i, p := range s.patches {
			src := s.rng.Intn(nPatches)
			s.addInteraction(p, src, uint64(50+((i+k)%100)))
		}
	}
}

// addInteraction prepends an interaction entry to p's list.
func (s *state) addInteraction(p mem.Addr, src int, ff uint64) {
	m := s.m
	e := m.Malloc(iBytes)
	m.StoreWord(e+iFF, ff)
	m.StoreWord(e+iSrc, uint64(src))
	m.StoreWord(e+iVis, ff/2+1)
	m.StorePtr(e+iNext, m.LoadPtr(p+pInter))
	m.StorePtr(p+pInter, e)
	c := m.LoadWord(p + pCounter)
	m.StoreWord(p+pCounter, c+1)
}

// gather walks p's interaction list accumulating incoming energy — the
// hot traversal the optimization accelerates.
func (s *state) gather(p mem.Addr) {
	m := s.m
	var acc uint64
	e := m.LoadPtr(p + pInter)
	for e != 0 {
		m.Inst(7)
		next := m.LoadPtr(e + iNext)
		if s.cfg.Prefetch && next != 0 {
			m.Prefetch(next, s.block)
		}
		ff := m.LoadWord(e + iFF)
		src := m.LoadWord(e + iSrc)
		vis := m.LoadWord(e + iVis)
		srcE := m.LoadWord(s.patches[src%uint64(len(s.patches))] + pEnergy)
		acc += ff * srcE / (256 * (vis + 1))
		e = next
	}
	g := m.LoadWord(p + pGathered)
	m.StoreWord(p+pGathered, g+acc)
}

// refine models hierarchical subdivision: drop the head interaction and
// insert two finer-grained replacements, fragmenting the list.
func (s *state) refine(p mem.Addr, pi int) {
	m := s.m
	head := m.LoadPtr(p + pInter)
	if head == 0 {
		return
	}
	ff := m.LoadWord(head + iFF)
	src := m.LoadWord(head + iSrc)
	m.StorePtr(p+pInter, m.LoadPtr(head+iNext))
	m.Free(head)
	c := m.LoadWord(p + pCounter)
	m.StoreWord(p+pCounter, c+1)
	s.addInteraction(p, int(src), ff/2+1)
	s.addInteraction(p, (int(src)+pi+1)%len(s.patches), ff/2+1)
}
