package radiosity

import (
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/apps/apptest"
	"memfwd/internal/sim"
)

func TestConformance(t *testing.T) { apptest.Conformance(t, App) }

func TestEnergyNonZero(t *testing.T) {
	r, _ := apptest.Run(App, app.Config{Seed: 3})
	if r.Checksum == 0 {
		t.Fatal("radiosity converged to zero energy; checksum is vacuous")
	}
}

func TestLinearizationHelpsAtLongLines(t *testing.T) {
	_, n := apptest.RunOn(sim.Config{LineSize: 128}, App, app.Config{Seed: 5})
	_, l := apptest.RunOn(sim.Config{LineSize: 128}, App, app.Config{Seed: 5, Opt: true})
	if l.Cycles >= n.Cycles {
		t.Errorf("128B: cycles %d -> %d (no speedup)", n.Cycles, l.Cycles)
	}
}

// TestRefinementGrowsLists: refinement replaces one interaction with
// two, so total interaction work must grow across iterations — the
// fragmentation source the optimization periodically repairs.
func TestRefinementGrowsLists(t *testing.T) {
	_, s1 := apptest.Run(App, app.Config{Seed: 3})
	// More loads than a no-refinement bound: initial 160 patches * 24
	// interactions * 24 iters * ~5 loads would be ~460k; growth pushes
	// well past it.
	if s1.Loads < 500000 {
		t.Fatalf("loads %d suggest refinement never grew the lists", s1.Loads)
	}
}

func TestCounterTriggersRepeatedly(t *testing.T) {
	r, _ := apptest.Run(App, app.Config{Seed: 3, Opt: true})
	if r.Relocated < 2000 {
		t.Fatalf("only %d relocations; periodic linearization looks dead", r.Relocated)
	}
}

func TestDifferential(t *testing.T) { apptest.Differential(t, App) }

func TestChaos(t *testing.T) { apptest.Chaos(t, App, 13) }
