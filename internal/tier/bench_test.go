package tier

import (
	"testing"

	"memfwd/internal/mem"
	"memfwd/internal/sim"
)

// BenchmarkDaemonInterception is the steady-state tax: one guest load
// routed through the daemon with the wake countdown never expiring.
// This is the number every intercepted operation pays between wakes,
// so it is alloc-gated like the machine's own hot paths.
func BenchmarkDaemonInterception(b *testing.B) {
	tc := mem.DefaultTierConfig(2, 70)
	m := sim.New(sim.Config{Tiers: tc})
	d := New(m, Config{Tiers: tc, Seed: 1, Every: 1 << 30})
	a := d.Malloc(4096)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += d.LoadWord(a)
	}
	_ = sink
}

// BenchmarkDaemonWake is one full policy pass over a populated heap:
// residency validation, heat ranking, and whatever migrations the
// budget admits. The first iterations do real two-phase-commit moves;
// later ones measure the steady-state ranking cost once the hot set
// has settled.
func BenchmarkDaemonWake(b *testing.B) {
	tc := mem.DefaultTierConfig(2, 70)
	m := sim.New(sim.Config{Tiers: tc})
	d := New(m, Config{Tiers: tc, Seed: 2, Every: 1 << 30, FastFrac: 0.25, MaxMoves: 8})
	for i := 0; i < 256; i++ {
		a := d.Malloc(256)
		for j := 0; j <= i%16; j++ {
			d.StoreWord(a, uint64(j))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.wake()
	}
}

// BenchmarkDaemonMigrate is the cost of one demotion through the
// production two-phase commit, per 256-byte object.
func BenchmarkDaemonMigrate(b *testing.B) {
	// A wider-than-default far window: the benchmark never reuses
	// target space, and b.N objects must all fit. MinBudget is huge so
	// every object is born near and the timed move is a real demotion.
	tc := &mem.TierConfig{Latencies: []int64{70, 210}, Capacities: []uint64{1 << 32, 1 << 32}}
	m := sim.New(sim.Config{Tiers: tc})
	d := New(m, Config{Tiers: tc, Seed: 3, Every: 1 << 30, MinBudget: 1 << 38})
	objs := make([]mem.Addr, b.N)
	for i := range objs {
		objs[i] = d.Malloc(256)
		d.StoreWord(objs[i], uint64(i))
	}
	slow := d.Tiers().Slowest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !d.migrate(objs[i], 256, slow) {
			b.Fatal("far window exhausted")
		}
	}
	b.StopTimer()
	if d.Stats().Demotions != uint64(b.N) {
		b.Fatalf("demotions %d, want %d", d.Stats().Demotions, b.N)
	}
}
