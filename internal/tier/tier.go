// Package tier implements the online adaptive memory-tiering daemon —
// the OBASE direction applied to the paper's mechanism. The paper's
// guarantee is that relocation is always safe; tiering is the modern
// payoff: if an object can be moved at any time, its *placement* in a
// latency-tiered physical address space can be re-decided continuously,
// online, instead of once by an offline pass.
//
// Geometry: the guest heap is NEAR memory (tier 0) — data is born
// fast, as in a DRAM-plus-CXL system — and tiers 1..N-1 are far
// windows. Near memory is finite: the daemon holds near residency to a
// budget (FastFrac of live heap bytes, floored at MinBudget) with two
// levers. First, *demotion*: cold near-resident objects are relocated
// into the far window through the production opt.TryRelocate two-phase
// commit, so the forwarding chain keeps them reachable while their
// bytes stop competing for near capacity. Second, *spill placement*:
// when near memory is over budget anyway, the daemon's mem.Allocator
// Place hook routes new allocations straight into the far window — a
// direct address with no forwarding chain at all. Demotion is the
// lever that matters because of how forwarding is priced in this
// machine: every access to a relocated object walks its chain through
// the cache starting at the *original* address, so moving a hot object
// never beats leaving it (the chain walk re-touches the old location),
// while moving a cold object costs almost nothing and buys headroom
// that lets the allocator keep placing new, hot data near. Promotion
// (hauling a far-resident object into tier 0's near-latency window)
// exists as a mechanism and fires only for objects that turn
// decisively hot (PromoteMin), precisely because of that chain-walk
// price.
//
// The Daemon wraps an app.Machine (the same interception pattern as
// the chaos Relocator): it delegates every guest operation, counts
// guest operations as its clock — no wall time anywhere, so runs are
// deterministic and replay from a seed — and wakes every ~Every
// operations to re-rank objects. Ranking input is an obs.HeatMap
// (decayed per-object loads/stores plus the trap attribution the fprof
// profiler keys off the same map) — either the machine's own map,
// shared in, or a private map the daemon feeds from its interception
// point.
//
// Every migration goes through the production opt.TryRelocate
// two-phase commit, so online tiering inherits the whole safety story
// for free: Figure 4(a) chain-append legality, journaling through any
// installed fault injector, and fault.Scavenge roll-forward — a crash
// induced mid-migration is recovered and the move completes, exactly
// as the crash-consistency harness proves for offline relocation. The
// differential and chaos harnesses run unchanged with the daemon
// enabled: a migrator that changed what the program computes would be
// a safety-claim violation, and the tests treat it as one.
package tier

import (
	"fmt"
	"math/rand"
	"sort"

	"memfwd/internal/apps/app"
	"memfwd/internal/core"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
	"memfwd/internal/opt"
)

// Config parameterizes a Daemon. Tiers is required; everything else
// has workable defaults.
type Config struct {
	// Tiers is the tier geometry spec (shared with the machine's
	// sim.Config.Tiers so daemon and timing model agree on every
	// address's tier).
	Tiers *mem.TierConfig

	// Seed drives the wake jitter; runs replay deterministically.
	Seed int64

	// Every is the mean number of guest operations between wakes
	// (default 4096).
	Every int

	// FastFrac is the near-memory residency budget as a fraction of
	// the allocator's live heap bytes (default 0.25).
	FastFrac float64

	// MinBudget floors the near budget in bytes (default 64KB), so a
	// small or starting workload is not forced far by a near-zero
	// fraction of its near-zero live bytes.
	MinBudget uint64

	// Headroom is the fraction of the near budget the daemon keeps
	// free by demoting cold data (default 0.25). This is what makes
	// the daemon *adaptive*: new allocations are hot by recency, so
	// each wake demotes the coldest near residents until that much of
	// the budget is free, and the next phase's data lands near instead
	// of spilling. Spill placement itself only fires at the full
	// budget; headroom is purely the demotion target.
	Headroom float64

	// MaxMoves bounds demotions per wake (default 64); promotions get
	// the same budget again. The safety gates (idle patience, spill
	// pressure, heat-map evidence) pick the victims; this only spreads
	// the move work across wakes. Demotion benefit accrues solely to
	// allocations made after the budget is freed, so draining the idle
	// pool too slowly forfeits most of it.
	MaxMoves int

	// MaxObjectBytes bounds what the daemon will move or spill
	// (default 1MB).
	MaxObjectBytes uint64

	// TopK is the demotion cap for a OneShot pass (default 64), which
	// gets one chance to move everything worth moving.
	TopK int

	// PromoteMin is the access-delta bar a far-resident object must
	// clear between two wakes before the daemon hauls it back near
	// (default 1024, a quarter of the default Every — promotion pays
	// the chain-walk price forever, so the bar is high). 0 disables
	// promotion entirely.
	PromoteMin uint64

	// IdleWakes is how many consecutive zero-delta wakes a block must
	// sit through before it is demotable (default 16). Data traversed
	// on a cycle longer than one wake window looks momentarily cold;
	// patience separates "between touches" from "never coming back".
	// This is only the starting patience: each wake the daemon counts
	// demoted blocks that turned hot again (remorse) and doubles its
	// working patience while mistakes keep surfacing, relaxing back
	// one wake at a time when they stop.
	IdleWakes int

	// OneShot makes the daemon a paper-style static optimizer: the
	// first wake runs one big demotion pass over the heat observed so
	// far (moves capped by TopK, not MaxMoves), then the policy goes
	// quiet forever. The spill placement hook stays live — near
	// capacity is physics, not policy — but residency is never
	// re-decided, which is exactly what the adaptive daemon fixes.
	OneShot bool

	// Heat, when non-nil, is an external heat map to consume (normally
	// the machine's own, which then also carries full trap-cost and
	// hop attribution). When nil the daemon feeds a private map from
	// its own interception point.
	Heat *obs.HeatMap
}

// Stats is the daemon's accounting, exposed to /metrics gauges and the
// figure pipeline.
type Stats struct {
	Wakes         uint64
	Promotions    uint64
	Demotions     uint64
	PromotedBytes uint64
	DemotedBytes  uint64

	// Placed counts allocations the Place hook carved from the tier-0
	// near window (the tiered allocator's default home for guest
	// data); Spills counts the ones routed to the far window instead
	// because near memory was over budget.
	Placed       uint64
	PlacedBytes  uint64
	Spills       uint64
	SpilledBytes uint64

	// Aborted counts migrations TryRelocate refused (error without an
	// injector armed); the heap stays consistent — phase-1 copies are
	// invisible until planted — but the arena bytes are wasted.
	Aborted uint64
	// Repaired counts migrations torn by an injected fault and rolled
	// forward from their journal by fault.Scavenge.
	Repaired uint64

	SkippedBudget uint64 // promotion candidates past the near budget
	SkippedArena  uint64 // window exhausted

	// Remorse counts demoted blocks later caught with fresh accesses —
	// demotions the policy now knows were mistakes. Each remorseful
	// wake doubles the daemon's working idle patience.
	Remorse uint64

	// Accesses counts intercepted guest loads+stores by the tier the
	// touched object currently resides in (unattributed accesses count
	// as tier 0: untracked data lives on the near heap).
	Accesses []uint64
}

// HitRate returns the fraction of attributed accesses that landed in
// tier i.
func (s *Stats) HitRate(i int) float64 {
	var total uint64
	for _, n := range s.Accesses {
		total += n
	}
	if total == 0 || i >= len(s.Accesses) {
		return 0
	}
	return float64(s.Accesses[i]) / float64(total)
}

type residency struct {
	tier  int
	bytes uint64 // word-rounded, matching Take/Release accounting
}

// tracker is per-block ranking state carried between wakes: see the
// Daemon.track field doc.
type tracker struct {
	last  uint64 // cumulative heatKey at the previous wake
	score uint64 // EWMA of per-wake deltas
	idle  int    // consecutive wakes with a zero delta
}

// Daemon is the migrator. Like the machine it wraps, it is not safe
// for concurrent use; in the session server it lives under the same
// gate that serializes the machine.
type Daemon struct {
	inner app.Machine
	al    *mem.Allocator
	tiers *mem.Tiers
	cfg   Config
	rng   *rand.Rand

	countdown int
	inWake    bool
	inMalloc  bool // a timed guest Malloc is on the stack: spill placement may apply
	fired     bool // OneShot policy completed

	heat    *obs.HeatMap
	ownHeat bool

	guestTrap core.TrapHandler

	// resident maps object base -> the window its data currently lives
	// in (spilled, demoted, or promoted-back). Bases are object
	// identity (TryRelocate leaves the base forwarding, and a spilled
	// object's base *is* its window address), so entries stay valid
	// across any number of moves; they are dropped when the allocator
	// reports the base dead.
	resident map[mem.Addr]residency

	// farBytes is the rounded total of resident bytes in tiers >= 1,
	// so nearLive is O(1) on the allocation path.
	farBytes uint64

	// moved counts migrations per object, bounding chain growth from
	// promote/demote thrash.
	moved map[mem.Addr]int

	// patience is the working idle-wake bar for demotion, seeded from
	// cfg.IdleWakes and self-tuned: doubled while demoted blocks keep
	// turning hot again (remorse), relaxed by one when they don't.
	patience int

	// lastSpills is Stats.Spills at the previous wake; the difference
	// is current allocation pressure, which gates demotion.
	lastSpills uint64

	// track carries per-block ranking state across wakes: the
	// cumulative heat seen at the previous wake (so each wake can take
	// a delta) and an exponential moving average of those deltas,
	// which is the score policy actually ranks on. Cumulative totals
	// invert the signal (a long-lived object on its way out ranks
	// hotter than a just-born hot one); a raw single-window delta
	// overcorrects (an object mid-way through a traversal cycle longer
	// than one wake scores zero and gets demoted while still hot). The
	// EWMA — halved each wake, then bumped by the fresh delta — is the
	// middle ground: recency-weighted with a few wakes of memory.
	track map[mem.Addr]tracker

	stats Stats
}

var _ app.Machine = (*Daemon)(nil)

const maxObjectMoves = 32

// daemonHeatObjects sizes the daemon's private heat map when the
// caller shares none: large enough to track every live block of the
// workloads this simulator runs, because residency decisions refuse to
// act on untracked blocks.
const daemonHeatObjects = 1 << 16

// maxPatience caps the self-tuned idle bar; past this the daemon has
// effectively concluded the workload never goes idle and stops
// demoting for the rest of a typical run.
const maxPatience = 1 << 12

// New wraps inner with a tiering daemon and installs its spill
// placement hook on inner's allocator. The wrapped machine — not
// inner — must be handed to the guest, or the daemon never ticks.
func New(inner app.Machine, cfg Config) *Daemon {
	if cfg.Tiers == nil {
		panic("tier: Config.Tiers is required")
	}
	if cfg.Every <= 0 {
		cfg.Every = 4096
	}
	if cfg.FastFrac <= 0 || cfg.FastFrac > 1 {
		cfg.FastFrac = 0.25
	}
	if cfg.MinBudget == 0 {
		cfg.MinBudget = 64 << 10
	}
	if cfg.Headroom <= 0 || cfg.Headroom >= 1 {
		cfg.Headroom = 0.25
	}
	if cfg.MaxMoves <= 0 {
		cfg.MaxMoves = 64
	}
	if cfg.MaxObjectBytes == 0 {
		cfg.MaxObjectBytes = 1 << 20
	}
	if cfg.TopK <= 0 {
		cfg.TopK = 64
	}
	if cfg.PromoteMin == 0 {
		cfg.PromoteMin = 1024
	}
	if cfg.IdleWakes <= 0 {
		cfg.IdleWakes = 16
	}
	d := &Daemon{
		inner:    inner,
		al:       inner.Allocator(),
		tiers:    mem.NewTiers(cfg.Tiers),
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		heat:     cfg.Heat,
		resident: make(map[mem.Addr]residency),
		moved:    make(map[mem.Addr]int),
		track:    make(map[mem.Addr]tracker),
		patience: cfg.IdleWakes,
	}
	if d.heat == nil {
		// Sized for whole-heap coverage: residency policy treats an
		// untracked block as unknowable, so a telemetry-sized table
		// (DefaultHeatObjects) would leave most of a list-heavy heap
		// unmanageable.
		d.heat = obs.NewHeatMap(daemonHeatObjects, 0)
		d.ownHeat = true
	}
	// Install the trap tap so trap attribution flows into a private
	// heat map even if the guest never installs a handler.
	if d.ownHeat {
		inner.SetTrap(d.trapTap)
	}
	d.al.Place = d.place
	d.reload()
	return d
}

// Tiers returns the daemon's realized tier geometry (same spec, hence
// same geometry, as the wrapped machine's). The daemon's instance is
// the single carver of window space; the machine's own copy only
// answers latency lookups.
func (d *Daemon) Tiers() *mem.Tiers { return d.tiers }

// Rebind re-caches the wrapped machine's allocator and re-installs the
// placement hook on it. For hosts that swap the underlying machine out
// from under the interception chain (the session server's live
// migration): the daemon — residency map, window cursors, ranking
// state — is host state and persists across the swap, but the
// allocator is machine state and does not. Call with the machine
// quiesced, after the swap.
func (d *Daemon) Rebind() {
	d.al = d.inner.Allocator()
	d.al.Place = d.place
}

// Stats returns a copy of the daemon's accounting.
func (d *Daemon) Stats() Stats {
	s := d.stats
	s.Accesses = append([]uint64(nil), d.stats.Accesses...)
	return s
}

// Heat returns the heat map the daemon consumes.
func (d *Daemon) Heat() *obs.HeatMap { return d.heat }

// NearLive returns the bytes of live heap data currently resident in
// near memory (tier 0).
func (d *Daemon) NearLive() uint64 { return d.nearLive() }

// FarLive returns the bytes of live heap data currently resident in
// far windows (tiers >= 1).
func (d *Daemon) FarLive() uint64 { return d.farBytes }

// RegisterMetrics exposes the daemon's accounting as gauges.
func (d *Daemon) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("tier.wakes", func() float64 { return float64(d.stats.Wakes) })
	r.GaugeFunc("tier.promotions", func() float64 { return float64(d.stats.Promotions) })
	r.GaugeFunc("tier.demotions", func() float64 { return float64(d.stats.Demotions) })
	r.GaugeFunc("tier.spills", func() float64 { return float64(d.stats.Spills) })
	r.GaugeFunc("tier.near.bytesLive", func() float64 { return float64(d.nearLive()) })
	r.GaugeFunc("tier.far.bytesLive", func() float64 { return float64(d.farBytes) })
	r.GaugeFunc("tier.near.hitRate", func() float64 {
		s := d.stats
		return s.HitRate(0)
	})
}

func (d *Daemon) reload() { d.countdown = 1 + d.rng.Intn(2*d.cfg.Every) }

// budget is the near-memory residency target in bytes.
func (d *Daemon) budget() uint64 {
	b := uint64(float64(d.al.BytesLive) * d.cfg.FastFrac)
	if b < d.cfg.MinBudget {
		b = d.cfg.MinBudget
	}
	return b
}

// nearLive is the live heap bytes resident in near memory: everything
// the allocator carries minus what lives in far windows.
func (d *Daemon) nearLive() uint64 {
	if d.farBytes >= d.al.BytesLive {
		return 0
	}
	return d.al.BytesLive - d.farBytes
}

// place is the allocator's Place hook — the tiered allocator itself.
// Every timed guest allocation is carved from a tier arena: the tier-0
// window while near memory has budget room, the far window once it is
// over budget (a direct far address, no forwarding chain — "spilled").
// Placement physics is identical for the static and adaptive arms;
// what the adaptive daemon changes is how much budget is free when an
// allocation arrives. Untimed allocations (arena carving, heap
// pre-aging) always stay on the legacy heap: they are experiment
// scaffolding, not guest data the daemon is entitled to place.
func (d *Daemon) place(size uint64) mem.Addr {
	if !d.inMalloc || d.inWake || size > d.cfg.MaxObjectBytes {
		return 0
	}
	// Pad like the heap does: the windows are served by the same
	// malloc, so a placed block must not be denser than a heap block —
	// otherwise placement would smuggle in a layout optimization
	// instead of modeling tier residency.
	take := roundUp(size + d.al.HeaderBytes)
	tier := 0
	if d.nearLive()+size > d.budget() {
		tier = d.tiers.Slowest()
	}
	a := d.tiers.Take(tier, take)
	if a == 0 {
		d.stats.SkippedArena++
		return 0
	}
	d.resident[a] = residency{tier: tier, bytes: take}
	if tier > 0 {
		d.farBytes += take
		d.stats.Spills++
		d.stats.SpilledBytes += size
	} else {
		d.stats.Placed++
		d.stats.PlacedBytes += size
	}
	return a
}

// trapTap records trap attribution into the private heat map and
// forwards to the guest's handler.
func (d *Daemon) trapTap(ev core.Event) {
	d.heat.RecordTrap(uint64(ev.Initial), 0)
	if d.guestTrap != nil {
		d.guestTrap(ev)
	}
}

// tick is the daemon's clock: one call per intercepted guest
// operation, a wake when the countdown expires.
func (d *Daemon) tick() {
	if d.inWake {
		return
	}
	d.countdown--
	if d.countdown > 0 {
		return
	}
	d.reload()
	d.wake()
}

// record attributes one guest access to the tier the touched data
// currently resides in, and feeds the private heat map when the daemon
// owns it.
func (d *Daemon) record(a mem.Addr, store bool) {
	if d.ownHeat {
		d.heat.RecordAccess(uint64(a), uint64(a), store, 0)
	}
	if d.stats.Accesses == nil {
		d.stats.Accesses = make([]uint64, d.tiers.N())
	}
	// Geometry answers for direct addresses (heap and spilled blocks);
	// the residency map corrects for relocated objects, whose guest
	// address is the near base but whose data lives where it was moved.
	t := d.tiers.TierOf(a)
	if base, ok := d.heat.Resolve(uint64(a)); ok {
		if r, ok := d.resident[mem.Addr(base)]; ok {
			t = r.tier
		}
	}
	d.stats.Accesses[t]++
}

// heatKey ranks a candidate: decayed loads+stores plus the trap count
// the profiler attributed to the object. Forwarding traps are paid on
// the access path, so a trap-heavy object is exactly as worth keeping
// near as a load-heavy one.
func heatKey(o obs.HeatObject) uint64 { return o.Loads + o.Stores + o.Traps }

// wake runs one policy pass: drop dead residencies, demote the coldest
// near-resident objects while near memory is over budget, then haul
// back any far-resident object that turned decisively hot. Guest traps
// are masked for the duration — the daemon models an agent outside the
// program, and its migrations must not invoke guest trap code.
func (d *Daemon) wake() {
	if d.cfg.OneShot && d.fired {
		return
	}
	d.fired = true
	d.inWake = true
	d.inner.SetTrap(nil)
	defer func() {
		if d.ownHeat {
			d.inner.SetTrap(d.trapTap)
		} else {
			d.inner.SetTrap(d.guestTrap)
		}
		d.inWake = false
	}()
	d.stats.Wakes++

	al := d.al
	// Residency entries for objects freed since the last wake (timed
	// or untimed — the allocator is the authority) release their tier
	// bytes. Map iteration order is irrelevant: every dead entry is
	// dropped unconditionally.
	for base, r := range d.resident {
		if !al.Live(base) {
			d.dropResidency(base, r)
		}
	}

	budget := d.budget()
	maxMoves := d.cfg.MaxMoves
	if d.cfg.OneShot {
		maxMoves = d.cfg.TopK
	}

	// Score every live block by its access delta since the last wake
	// (a OneShot pass sees lifetime totals — all it can know). The scan
	// over the allocator's sorted live set keeps the pass deterministic.
	type scored struct {
		base  mem.Addr
		score uint64
		size  uint64
		far   bool
		known bool // the heat map tracks this block; score is evidence, not absence
		idle  int  // consecutive zero-delta wakes
	}
	var cands []scored
	var remorse int
	live := al.LiveBlocks()
	next := make(map[mem.Addr]tracker, len(live))
	for _, base := range live {
		var cur uint64
		o, known := d.heat.Get(uint64(base))
		if known {
			cur = heatKey(o)
		}
		tr := d.track[base]
		delta := cur - tr.last
		if cur < tr.last {
			// Decay epoch or identity reuse shrank the counter; the
			// current value is the freshest signal there is.
			delta = cur
		}
		idle := 0
		if delta == 0 {
			idle = tr.idle + 1
		}
		sc := tr.score/2 + delta
		next[base] = tracker{last: cur, score: sc, idle: idle}
		if al.Pinned(base) {
			continue
		}
		size, ok := al.SizeOf(base)
		if !ok || size == 0 || size > d.cfg.MaxObjectBytes {
			continue
		}
		r, isResident := d.resident[base]
		far := isResident && r.tier > 0
		// A block the daemon itself demoted (spills have moved == 0)
		// showing fresh accesses is a caught mistake: it now pays a
		// chain walk per touch that leaving it alone would not have.
		if far && delta > 0 && d.moved[base] > 0 {
			remorse++
		}
		if d.moved[base] >= maxObjectMoves {
			continue
		}
		cands = append(cands, scored{base, sc, size, far, known, idle})
	}
	// Swapping in the freshly built map prunes entries for blocks
	// freed since the last wake.
	d.track = next

	// Self-tuning patience: while demotion mistakes keep surfacing,
	// back off aggressively (the workload's re-touch cycle is longer
	// than the current bar); when they stop, relax one wake at a time
	// toward the configured floor.
	if remorse > 0 {
		d.stats.Remorse += uint64(remorse)
		d.patience *= 2
		if d.patience > maxPatience {
			d.patience = maxPatience
		}
	} else if d.patience > d.cfg.IdleWakes {
		d.patience--
	}

	// Demote: only blocks whose EWMA has decayed to zero — confirmed
	// idle for several consecutive wakes, not merely quiet in one
	// window. Demoting anything still warm is pure loss (the move cost
	// plus a forwarding hop on every later access, versus a freed
	// budget slice that near memory never needed — latency here is
	// per-address, not per-occupancy). Demoting the truly idle is the
	// adaptive lever: it frees budget so the next phase's allocations
	// are born near instead of spilling far, which a one-shot pass
	// cannot do once its moment has passed.
	// Demotion is worth its move cost only if the freed budget gets
	// used: when no allocation spilled since the last wake, nothing is
	// asking for near memory and a demotion would buy headroom nobody
	// spends (near latency is per-address — unoccupied budget earns
	// nothing). A OneShot pass is exempt: it is the one chance to act
	// on whatever pressure the whole warmup showed.
	pressure := d.stats.Spills - d.lastSpills
	d.lastSpills = d.stats.Spills

	target := budget - uint64(float64(budget)*d.cfg.Headroom)
	if d.nearLive() > target && (pressure > 0 || d.cfg.OneShot) {
		// A block the heat map does not track is unknown, not cold —
		// an evicted-but-hot block demoted on absence of evidence
		// would pay a chain walk on every later access.
		victims := make([]scored, 0, len(cands))
		for _, c := range cands {
			if !c.far && c.known && c.score == 0 && c.idle >= d.patience {
				victims = append(victims, c)
			}
		}
		sort.SliceStable(victims, func(i, j int) bool {
			if victims[i].score != victims[j].score {
				return victims[i].score < victims[j].score
			}
			return victims[i].base < victims[j].base
		})
		moves := 0
		for _, v := range victims {
			if d.nearLive() <= target || moves >= maxMoves {
				break
			}
			if !d.migrate(v.base, v.size, d.tiers.Slowest()) {
				break // window exhausted; no point trying further victims
			}
			moves++
		}
	}

	// Promote: a far-resident object hot enough to clear PromoteMin
	// since the last wake earns near-latency space from tier 0's
	// window — if the budget has room for it.
	if d.cfg.PromoteMin > 0 {
		promos := make([]scored, 0, 8)
		for _, c := range cands {
			if c.far && c.score >= d.cfg.PromoteMin {
				promos = append(promos, c)
			}
		}
		sort.SliceStable(promos, func(i, j int) bool {
			if promos[i].score != promos[j].score {
				return promos[i].score > promos[j].score
			}
			return promos[i].base < promos[j].base
		})
		moves := 0
		for _, p := range promos {
			if moves >= maxMoves {
				break
			}
			if d.nearLive()+roundUp(p.size) > budget {
				d.stats.SkippedBudget++
				continue
			}
			if !d.migrate(p.base, p.size, 0) {
				break
			}
			moves++
		}
	}
}

func roundUp(n uint64) uint64 { return (n + mem.WordSize - 1) &^ uint64(mem.WordSize-1) }

// dropResidency releases a dead object's window accounting.
func (d *Daemon) dropResidency(base mem.Addr, r residency) {
	d.tiers.Release(r.tier, r.bytes)
	if r.tier > 0 {
		d.farBytes -= r.bytes
	}
	delete(d.resident, base)
	delete(d.moved, base)
}

// migrate moves the object at base into tier's window through the
// production two-phase commit, inheriting journaling and roll-forward
// when a fault injector is installed. Returns false when the window is
// exhausted (the caller's signal to stop for this wake).
func (d *Daemon) migrate(base mem.Addr, size uint64, tier int) bool {
	words := int(size / mem.WordSize)
	if words == 0 {
		return true
	}
	tgt := d.tiers.Take(tier, size)
	if tgt == 0 {
		d.stats.SkippedArena++
		return false
	}
	if err := d.tryRelocate(base, tgt, words); err != nil {
		// A refused relocation is clean: phase-1 copies are invisible
		// until planted, so the heap is untouched; only window bytes
		// are wasted.
		d.tiers.Release(tier, roundUp(size))
		d.stats.Aborted++
		return true
	}
	if prev, ok := d.resident[base]; ok {
		d.tiers.Release(prev.tier, prev.bytes)
		if prev.tier > 0 {
			d.farBytes -= prev.bytes
		}
	}
	d.resident[base] = residency{tier: tier, bytes: roundUp(size)}
	if tier > 0 {
		d.farBytes += roundUp(size)
	}
	d.moved[base]++
	if tier == 0 {
		d.stats.Promotions++
		d.stats.PromotedBytes += size
	} else {
		d.stats.Demotions++
		d.stats.DemotedBytes += size
	}
	return true
}

// tryRelocate runs the two-phase commit; with a fault injector
// installed, an induced crash is recovered and the torn move rolled
// forward from its journal — the crash-consistency guarantee applied
// to online migration.
func (d *Daemon) tryRelocate(base, tgt mem.Addr, words int) error {
	inj := d.inner.FaultInjector()
	if inj == nil {
		return opt.TryRelocate(d.inner, base, tgt, words)
	}
	err := func() (err error) {
		defer fault.RecoverCrash(&err)
		return opt.TryRelocate(d.inner, base, tgt, words)
	}()
	if err == nil {
		return nil
	}
	if _, serr := fault.Scavenge(d.inner.Memory(), d.inner.Forwarder(), &inj.Journal, inj); serr != nil {
		panic(fmt.Sprintf("tier: scavenge of %#x after %q: %v", base, err, serr))
	}
	d.stats.Repaired++
	return nil // rolled forward: the migration completed
}

// --- app.Machine interception ---------------------------------------

// Inst delegates (timing only; does not advance the daemon clock).
func (d *Daemon) Inst(n int) { d.inner.Inst(n) }

// Load intercepts a load: clock tick, heat/residency attribution,
// delegate.
func (d *Daemon) Load(a mem.Addr, size uint) uint64 {
	d.tick()
	d.record(a, false)
	return d.inner.Load(a, size)
}

// Store intercepts a store symmetrically.
func (d *Daemon) Store(a mem.Addr, v uint64, size uint) {
	d.tick()
	d.record(a, true)
	d.inner.Store(a, v, size)
}

// LoadWord routes through Load.
func (d *Daemon) LoadWord(a mem.Addr) uint64 { return d.Load(a, 8) }

// StoreWord routes through Store.
func (d *Daemon) StoreWord(a mem.Addr, v uint64) { d.Store(a, v, 8) }

// LoadPtr routes through Load.
func (d *Daemon) LoadPtr(a mem.Addr) mem.Addr { return mem.Addr(d.Load(a, 8)) }

// StorePtr routes through Store.
func (d *Daemon) StorePtr(a, p mem.Addr) { d.Store(a, uint64(p), 8) }

// Load32 routes through Load.
func (d *Daemon) Load32(a mem.Addr) uint32 { return uint32(d.Load(a, 4)) }

// Store32 routes through Store.
func (d *Daemon) Store32(a mem.Addr, v uint32) { d.Store(a, uint64(v), 4) }

// Load16 routes through Load.
func (d *Daemon) Load16(a mem.Addr) uint16 { return uint16(d.Load(a, 2)) }

// Store16 routes through Store.
func (d *Daemon) Store16(a mem.Addr, v uint16) { d.Store(a, uint64(v), 2) }

// Load8 routes through Load.
func (d *Daemon) Load8(a mem.Addr) uint8 { return uint8(d.Load(a, 1)) }

// Store8 routes through Store.
func (d *Daemon) Store8(a mem.Addr, v uint8) { d.Store(a, uint64(v), 1) }

// Prefetch delegates.
func (d *Daemon) Prefetch(a mem.Addr, lines int) { d.inner.Prefetch(a, lines) }

// ReadFBit delegates.
func (d *Daemon) ReadFBit(a mem.Addr) bool { return d.inner.ReadFBit(a) }

// UnforwardedRead delegates.
func (d *Daemon) UnforwardedRead(a mem.Addr) (uint64, bool) { return d.inner.UnforwardedRead(a) }

// UnforwardedWrite delegates.
func (d *Daemon) UnforwardedWrite(a mem.Addr, v uint64, fbit bool) {
	d.inner.UnforwardedWrite(a, v, fbit)
}

// FinalAddr delegates.
func (d *Daemon) FinalAddr(a mem.Addr) mem.Addr { return d.inner.FinalAddr(a) }

// PtrEqual delegates.
func (d *Daemon) PtrEqual(a, b mem.Addr) bool { return d.inner.PtrEqual(a, b) }

// SetTrap records the guest handler (so wakes can mask it and the trap
// tap can chain to it) and delegates — through the tap when the daemon
// feeds its own heat map.
func (d *Daemon) SetTrap(h core.TrapHandler) {
	d.guestTrap = h
	if d.ownHeat {
		d.inner.SetTrap(d.trapTap)
		return
	}
	d.inner.SetTrap(h)
}

// FaultInjector delegates.
func (d *Daemon) FaultInjector() *fault.Injector { return d.inner.FaultInjector() }

// SetFaultInjector delegates.
func (d *Daemon) SetFaultInjector(in *fault.Injector) { d.inner.SetFaultInjector(in) }

// Malloc intercepts an allocation: clock tick, delegate with the spill
// placement hook armed, feed the private heat map.
func (d *Daemon) Malloc(n uint64) mem.Addr {
	d.tick()
	d.inMalloc = true
	a := d.inner.Malloc(n)
	d.inMalloc = false
	if d.ownHeat {
		d.heat.OnAlloc(uint64(a), n)
	}
	return a
}

// Free intercepts a deallocation: release residency, tick, delegate.
func (d *Daemon) Free(a mem.Addr) {
	if r, ok := d.resident[a]; ok {
		d.dropResidency(a, r)
	}
	// A freed base may be recycled before the next wake; stale heat
	// history must not be charged to the newcomer.
	delete(d.track, a)
	d.tick()
	d.inner.Free(a)
	if d.ownHeat {
		d.heat.OnFree(uint64(a))
	}
}

// Allocator delegates.
func (d *Daemon) Allocator() *mem.Allocator { return d.inner.Allocator() }

// Memory delegates.
func (d *Daemon) Memory() *mem.Memory { return d.inner.Memory() }

// Forwarder delegates.
func (d *Daemon) Forwarder() *core.Forwarder { return d.inner.Forwarder() }

// LineSize delegates.
func (d *Daemon) LineSize() int { return d.inner.LineSize() }

// Site delegates.
func (d *Daemon) Site(name string) int { return d.inner.Site(name) }

// SetSite delegates.
func (d *Daemon) SetSite(id int) { d.inner.SetSite(id) }

// PhaseBegin delegates.
func (d *Daemon) PhaseBegin(name string) { d.inner.PhaseBegin(name) }

// PhaseEnd delegates.
func (d *Daemon) PhaseEnd(name string) { d.inner.PhaseEnd(name) }

// TraceRelocate delegates.
func (d *Daemon) TraceRelocate(src, tgt mem.Addr, nWords int) {
	d.inner.TraceRelocate(src, tgt, nWords)
}

// RelocationBarrier forwards opt.TryRelocate's concurrency barrier
// inward, so a multi-hart scheduling group (internal/sched) beneath the
// daemon drains conflicting in-flight relocations before a guest-level
// relocation pass touches shared relocation state. The daemon's own
// migrations call TryRelocate on d.inner and hit the group directly.
func (d *Daemon) RelocationBarrier(src mem.Addr) {
	if b, ok := d.inner.(interface{ RelocationBarrier(mem.Addr) }); ok {
		b.RelocationBarrier(src)
	}
}
