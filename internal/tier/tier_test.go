package tier

import (
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/apps/health"
	"memfwd/internal/apps/mst"
	"memfwd/internal/core"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
	"memfwd/internal/opt"
	"memfwd/internal/oracle"
	"memfwd/internal/sim"
)

// tieredSim builds a 2-tier sim machine and a daemon over it sharing
// the same TierConfig, with a deliberately short wake interval so small
// tests reach the policy loop.
func tieredSim(t *testing.T, dcfg Config) (*Daemon, *sim.Machine) {
	t.Helper()
	tc := mem.DefaultTierConfig(2, 70)
	m := sim.New(sim.Config{Tiers: tc})
	dcfg.Tiers = tc
	return New(m, dcfg), m
}

// hammer issues n loads over the first words of base through the
// wrapped machine, making the object hot and advancing the daemon's
// operation clock.
func hammer(d *Daemon, base mem.Addr, words, n int) {
	for i := 0; i < n; i++ {
		d.LoadWord(base + mem.Addr(i%words)*mem.WordSize)
	}
}

// hammerWithPressure hammers like hammer but also allocates a small
// block every 256 operations. Over budget those allocations spill,
// which is the allocation pressure the demotion policy requires: the
// daemon only demotes when someone is actually asking for near memory.
func hammerWithPressure(d *Daemon, base mem.Addr, words, n int) {
	for i := 0; i < n; i++ {
		d.LoadWord(base + mem.Addr(i%words)*mem.WordSize)
		if i%256 == 0 {
			d.Malloc(64)
		}
	}
}

// TestDaemonDemotesColdObjects: the core adaptive behaviour. When near
// memory is over budget, the daemon demotes the coldest near-resident
// objects into the far window through the production two-phase commit,
// leaves hot data near, and keeps every word readable through the
// forwarding chain.
func TestDaemonDemotesColdObjects(t *testing.T) {
	d, m := tieredSim(t, Config{Seed: 1, Every: 128, MinBudget: 40960, MaxObjectBytes: 8192})

	// Eight cold 4KB blocks, one hot 256B block, and one 24KB block the
	// daemon may neither spill nor demote (over MaxObjectBytes) — the
	// oversize block is what pushes near residency over the 40KB budget.
	var colds []mem.Addr
	for i := 0; i < 8; i++ {
		c := d.Malloc(4096)
		d.StoreWord(c, uint64(1000+i))
		colds = append(colds, c)
	}
	hot := d.Malloc(256)
	for i := 0; i < 32; i++ {
		d.StoreWord(hot+mem.Addr(i)*8, uint64(100+i))
	}
	big := d.Malloc(24576)
	hammerWithPressure(d, hot, 32, 8192)

	st := d.Stats()
	if st.Wakes == 0 {
		t.Fatal("daemon never woke")
	}
	if st.Demotions == 0 {
		t.Fatalf("over-budget near memory never demoted: %+v", st)
	}
	slow := d.Tiers().Slowest()
	demoted := 0
	for _, c := range colds {
		if d.Tiers().TierOf(m.FinalAddr(c)) == slow {
			demoted++
		}
	}
	if demoted != int(st.Demotions) {
		t.Fatalf("%d cold blocks far-resident, stats say %d demotions", demoted, st.Demotions)
	}
	// The victims are the coldest: the hot block and the oversize block
	// must still be near.
	if tf := d.Tiers().TierOf(m.FinalAddr(hot)); tf != 0 {
		t.Fatalf("hot object demoted to tier %d", tf)
	}
	if tf := d.Tiers().TierOf(m.FinalAddr(big)); tf != 0 {
		t.Fatalf("oversize object moved to tier %d despite MaxObjectBytes", tf)
	}
	// Near residency converged under budget.
	if nl, b := d.NearLive(), uint64(40960); nl > b {
		t.Fatalf("near residency %d still over budget %d after %d demotions", nl, b, st.Demotions)
	}
	for i, c := range colds {
		if got := d.LoadWord(c); got != uint64(1000+i) {
			t.Fatalf("cold[%d] = %d after demotion, want %d", i, got, 1000+i)
		}
	}
	for i := 0; i < 32; i++ {
		if got := d.LoadWord(hot + mem.Addr(i)*8); got != uint64(100+i) {
			t.Fatalf("hot[%d] = %d, want %d", i, got, 100+i)
		}
	}
	if d.Tiers().BytesLive(slow) == 0 {
		t.Fatal("far tier accounts no live bytes after demotion")
	}
	// Accesses to demoted data are attributed to the far tier once the
	// daemon keeps walking them.
	hammer(d, colds[0], 8, 256)
	if st = d.Stats(); st.Accesses[slow] == 0 {
		t.Fatalf("no far-tier access attribution: %+v", st.Accesses)
	}
	// Freeing a demoted block releases its far residency.
	before := d.Tiers().BytesLive(slow)
	d.Free(colds[0])
	if got := d.Tiers().BytesLive(slow); got != before-4096 {
		t.Fatalf("far bytes after freeing a demoted block = %d, want %d", got, before-4096)
	}
	if err := oracle.CheckMachine(m); err != nil {
		t.Fatalf("machine invariants after demotion: %v", err)
	}
}

// TestDaemonSpillsDirectPlacement: when near memory is over budget, new
// timed allocations are placed straight into the far window — a direct
// far address with no forwarding chain — while untimed allocator calls
// (experiment scaffolding) always stay on the heap.
func TestDaemonSpillsDirectPlacement(t *testing.T) {
	d, m := tieredSim(t, Config{Seed: 2, Every: 1 << 30, MinBudget: 8})

	a := d.Malloc(64)
	slow := d.Tiers().Slowest()
	if tf := d.Tiers().TierOf(a); tf != slow {
		t.Fatalf("over-budget alloc placed in tier %d, want far tier %d (addr %#x)", tf, slow, a)
	}
	if m.ReadFBit(a) || m.FinalAddr(a) != a {
		t.Fatal("spilled block grew a forwarding chain; placement must be direct")
	}
	d.StoreWord(a, 77)
	if got := d.LoadWord(a); got != 77 {
		t.Fatalf("spilled word = %d, want 77", got)
	}
	st := d.Stats()
	if st.Spills != 1 || st.SpilledBytes != 64 {
		t.Fatalf("spill accounting: %+v", st)
	}
	// 64 data bytes plus the same header pad a heap block carries:
	// spilling must not densify the layout.
	const spillTake = 64 + 16
	if d.FarLive() != spillTake || d.Tiers().BytesLive(slow) != spillTake {
		t.Fatalf("far residency %d / window %d, want %d/%d",
			d.FarLive(), d.Tiers().BytesLive(slow), spillTake, spillTake)
	}

	// A second spill advances the window cursor: no address reuse ever.
	b := d.Malloc(64)
	if b == a || d.Tiers().TierOf(b) != slow {
		t.Fatalf("second spill at %#x (first %#x)", b, a)
	}

	// Untimed allocation (heap aging, arena carving) bypasses placement.
	u := m.Alloc.Alloc(64)
	if !m.Alloc.Contains(u) {
		t.Fatalf("untimed alloc left the heap: %#x", u)
	}

	// Free releases residency and never recycles window space.
	d.Free(a)
	if d.FarLive() != spillTake || d.Tiers().BytesLive(slow) != spillTake {
		t.Fatalf("far residency after free = %d/%d, want %d/%d (only b lives)",
			d.FarLive(), d.Tiers().BytesLive(slow), spillTake, spillTake)
	}
	c := d.Malloc(64)
	if c == a {
		t.Fatal("freed window address recycled")
	}
	if err := oracle.CheckMachine(m); err != nil {
		t.Fatalf("machine invariants: %v", err)
	}
}

// TestDaemonPromotesHotSpilledObject: a far-resident object that turns
// decisively hot (clears PromoteMin) earns near-latency space from tier
// 0's window — once the near budget has room for it. Until then the
// daemon counts the refusal.
func TestDaemonPromotesHotSpilledObject(t *testing.T) {
	// MaxObjectBytes keeps the filler immovable: the daemon may neither
	// demote it for headroom nor spill it, so the near budget stays
	// genuinely full until the guest frees it.
	// PromoteMin is sized against per-wake deltas: with Every=128 a wake
	// sees at most ~128 accesses, so a threshold of 64 means "absorbed
	// at least half of the recent traffic".
	d, m := tieredSim(t, Config{Seed: 3, Every: 128, MinBudget: 4096, PromoteMin: 64, MaxObjectBytes: 2048})

	filler := d.Malloc(4096) // fills the near budget exactly
	hot := d.Malloc(256)     // over budget: spilled far
	coldSpill := d.Malloc(256)
	slow := d.Tiers().Slowest()
	if d.Tiers().TierOf(hot) != slow || d.Tiers().TierOf(coldSpill) != slow {
		t.Fatalf("setup: spills went to tiers %d/%d", d.Tiers().TierOf(hot), d.Tiers().TierOf(coldSpill))
	}
	for i := 0; i < 32; i++ {
		d.StoreWord(hot+mem.Addr(i)*8, uint64(100+i))
	}
	hammer(d, hot, 32, 4096)
	if st := d.Stats(); st.Promotions != 0 {
		t.Fatalf("promotion happened with a full near budget: %+v", st)
	} else if st.SkippedBudget == 0 {
		t.Fatalf("budget-blocked promotion not counted: %+v", st)
	}

	// Phase change: the filler dies, the budget has room, the hot
	// spilled object comes near. The cold spill stays far.
	d.Free(filler)
	hammer(d, hot, 32, 2048)
	st := d.Stats()
	if st.Promotions == 0 {
		t.Fatalf("hot far-resident object never promoted: %+v", st)
	}
	if tf := d.Tiers().TierOf(m.FinalAddr(hot)); tf != 0 {
		t.Fatalf("promoted object's data resides in tier %d, want 0 (final %#x)", tf, m.FinalAddr(hot))
	}
	if tf := d.Tiers().TierOf(m.FinalAddr(coldSpill)); tf != slow {
		t.Fatalf("cold spill moved to tier %d without clearing PromoteMin", tf)
	}
	for i := 0; i < 32; i++ {
		if got := d.LoadWord(hot + mem.Addr(i)*8); got != uint64(100+i) {
			t.Fatalf("hot[%d] = %d after promotion, want %d", i, got, 100+i)
		}
	}
	if d.Tiers().BytesLive(0) == 0 {
		t.Fatal("tier 0 window accounts no live bytes after promotion")
	}
	if st.Accesses == nil || st.HitRate(0) == 0 {
		t.Fatalf("no near-tier access attribution: %+v", st.Accesses)
	}
	if err := oracle.CheckMachine(m); err != nil {
		t.Fatalf("machine invariants after promotion: %v", err)
	}
}

// TestDaemonOneShot: OneShot turns the daemon into the paper-style
// static optimizer — exactly one policy pass, then silence. The spill
// placement hook stays live (near capacity is physics, not policy), so
// later over-budget allocations still go far; what static placement
// loses is the re-deciding.
func TestDaemonOneShot(t *testing.T) {
	d, _ := tieredSim(t, Config{Seed: 4, Every: 64, MinBudget: 8, OneShot: true})
	a := d.Malloc(128)
	hammer(d, a, 16, 8192)
	if w := d.Stats().Wakes; w != 1 {
		t.Fatalf("one-shot daemon woke %d times, want 1", w)
	}
	b := d.Malloc(64)
	if d.Tiers().TierOf(b) != d.Tiers().Slowest() {
		t.Fatal("spill placement died with the one-shot pass")
	}
	if d.Stats().Spills == 0 {
		t.Fatalf("no spills counted: %+v", d.Stats())
	}
}

// TestDaemonTrapChaining: with a private heat map the daemon holds the
// machine's trap slot, but the guest's handler must still fire (chained
// through the tap) and the daemon's heat map must still see the trap.
func TestDaemonTrapChaining(t *testing.T) {
	tc := mem.DefaultTierConfig(2, 70)
	m := sim.New(sim.Config{Tiers: tc})
	d := New(m, Config{Tiers: tc, Seed: 5, Every: 1 << 30, MinBudget: 1 << 30}) // never wakes, never spills
	src := d.Malloc(64)
	tgt := mem.Addr(uint64(src) + 1<<20)
	d.StoreWord(src, 7)
	if err := opt.TryRelocate(m, src, tgt, 64/mem.WordSize); err != nil {
		t.Fatalf("TryRelocate: %v", err)
	}
	fired := 0
	d.SetTrap(func(ev core.Event) {
		fired++
		if ev.Initial != src {
			t.Fatalf("trap event initial %#x, want %#x", ev.Initial, src)
		}
	})
	if got := d.LoadWord(src); got != 7 {
		t.Fatalf("forwarded load = %d, want 7", got)
	}
	if fired != 1 {
		t.Fatalf("guest trap fired %d times through the tap, want 1", fired)
	}
	if o, ok := d.Heat().Get(uint64(src)); !ok || o.Traps == 0 {
		t.Fatalf("trap not attributed in the daemon's heat map: %+v ok=%v", o, ok)
	}
}

// daemonTestConfig is the policy configuration the cross-machine
// harness tests share: budget small enough that real applications
// exercise spills and demotions.
func daemonTestConfig(tc *mem.TierConfig, seed int64) Config {
	return Config{Tiers: tc, Seed: seed, Every: 512, FastFrac: 0.25, MinBudget: 8 << 10}
}

// TestDaemonDifferential runs real applications on two machine
// implementations — the timed simulator and the untimed oracle — each
// wrapped in an identically-configured daemon, and demands identical
// guest results, identical heap digests, and identical daemon
// decisions. The guest results must also match an undisturbed oracle
// baseline: placement changes where data lives, never what the program
// computes. (Heap digests against the baseline are not compared: spill
// placement legitimately births blocks at far addresses, and the
// modulo-forwarding digest is address-keyed by design.)
func TestDaemonDifferential(t *testing.T) {
	apps := []app.App{mst.App, health.App}
	for _, a := range apps {
		t.Run(a.Name, func(t *testing.T) {
			cfg := app.Config{Seed: 11, Scale: 1}
			tc := mem.DefaultTierConfig(2, 70)
			simCfg := sim.Config{LineSize: 128, Tiers: tc}
			eff := sim.New(simCfg).Config()
			ocfg := oracle.Config{LineSize: eff.LineSize, HeapBase: eff.HeapBase, HeapLimit: eff.HeapLimit}

			base := oracle.New(ocfg)
			baseRes := a.Run(base, cfg)

			sm := sim.New(simCfg)
			sd := New(sm, daemonTestConfig(tc, 42))
			simRes := a.Run(sd, cfg)
			sm.Finalize()

			om := oracle.New(ocfg)
			od := New(om, daemonTestConfig(tc, 42))
			oRes := a.Run(od, cfg)

			if simRes != baseRes {
				t.Fatalf("sim+daemon diverged from undisturbed baseline: %+v, want %+v", simRes, baseRes)
			}
			if oRes != baseRes {
				t.Fatalf("oracle+daemon diverged from undisturbed baseline: %+v, want %+v", oRes, baseRes)
			}
			simDig, err := oracle.DigestModuloForwarding(sm.Mem, sm.Fwd, sm.Alloc)
			if err != nil {
				t.Fatalf("sim+daemon digest: %v", err)
			}
			oDig, err := oracle.DigestModuloForwarding(om.Mem, om.Fwd, om.Alloc)
			if err != nil {
				t.Fatalf("oracle+daemon digest: %v", err)
			}
			if simDig != oDig {
				t.Fatalf("digests diverged across machines: sim %#x oracle %#x", simDig, oDig)
			}
			if err := oracle.CheckMachine(sm); err != nil {
				t.Fatalf("sim invariants: %v", err)
			}
			if err := oracle.CheckForwarding(om.Mem, om.Fwd); err != nil {
				t.Fatalf("oracle invariants: %v", err)
			}
			ss, os := sd.Stats(), od.Stats()
			if ss.Demotions+ss.Spills == 0 {
				t.Fatalf("daemon idle on %s — differential run exercised nothing: %+v", a.Name, ss)
			}
			// Identical op streams, seeds, and heat feeds: the two
			// daemons must have made identical decisions.
			if ss.Demotions != os.Demotions || ss.Spills != os.Spills ||
				ss.Promotions != os.Promotions || ss.Wakes != os.Wakes {
				t.Fatalf("daemon nondeterminism across machines: sim %+v vs oracle %+v", ss, os)
			}
		})
	}
}

// TestDaemonUnderChaos stacks the chaos adversary ON TOP of the daemon
// (chaos actions and daemon migrations interleave on the same heap)
// and demands bit-identical guest results against an undisturbed
// oracle baseline — the adversarial restatement of the safety claim
// with the migrator enabled. Note the daemon's *decisions* are allowed
// to differ under chaos: chaos relocations raise forwarding traps,
// trap attribution feeds the heat ranking, so victim order (and with
// it spill addresses, hence the address-keyed digest) legitimately
// shifts. What may never shift is what the program computes.
func TestDaemonUnderChaos(t *testing.T) {
	a := mst.App
	cfg := app.Config{Seed: 13, Scale: 1}
	tc := mem.DefaultTierConfig(2, 70)
	eff := sim.New(sim.Config{}).Config()
	ocfg := oracle.Config{LineSize: eff.LineSize, HeapBase: eff.HeapBase, HeapLimit: eff.HeapLimit}

	base := oracle.New(ocfg)
	baseRes := a.Run(base, cfg)

	om := oracle.New(ocfg)
	d := New(om, daemonTestConfig(tc, 17))
	rel := oracle.NewRelocator(d, 99, 64)
	rel.EnableFaults(nil)
	chaosRes := a.Run(rel, cfg)

	if chaosRes != baseRes {
		t.Fatalf("chaos+daemon diverged: %+v, want %+v", chaosRes, baseRes)
	}
	if err := oracle.CheckForwarding(om.Mem, om.Fwd); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if rel.Relocations == 0 {
		t.Fatal("chaos adversary idle — episode exercised nothing")
	}
	if ds := d.Stats(); ds.Demotions+ds.Spills == 0 {
		t.Fatalf("daemon idle under chaos: %+v", ds)
	}
}

// TestDaemonFaultedMigrationRollsForward arms a machine-level fault
// injector so a crash fires INSIDE a daemon demotion (after the copy
// phase). The daemon must recover the crash, roll the torn move
// forward from its journal, count it Repaired, and leave every word of
// the object readable — crash consistency inherited by online tiering.
func TestDaemonFaultedMigrationRollsForward(t *testing.T) {
	d, m := tieredSim(t, Config{Seed: 21, Every: 128, MinBudget: 40960, MaxObjectBytes: 8192})
	inj := fault.New(77).Arm(fault.Crash, fault.RelocateCopied, 1)
	m.SetFaultInjector(inj)

	cold := d.Malloc(4096)
	for i := 0; i < 16; i++ {
		d.StoreWord(cold+mem.Addr(i)*8, uint64(40+i))
	}
	big := d.Malloc(40960) // oversize: pushes near memory over budget
	_ = big
	hot := d.Malloc(256)
	hammerWithPressure(d, hot, 32, 8192)

	st := d.Stats()
	if !inj.Fired() {
		t.Fatal("armed fault never fired — migration path not exercised")
	}
	if st.Repaired == 0 {
		t.Fatalf("crashed migration not rolled forward: %+v", st)
	}
	if st.Demotions == 0 {
		t.Fatalf("repaired migration not counted as a demotion: %+v", st)
	}
	for i := 0; i < 16; i++ {
		if got := d.LoadWord(cold + mem.Addr(i)*8); got != uint64(40+i) {
			t.Fatalf("word %d = %d after repaired migration, want %d", i, got, 40+i)
		}
	}
	if tf := d.Tiers().TierOf(m.FinalAddr(cold)); tf != d.Tiers().Slowest() {
		t.Fatalf("rolled-forward object resides in tier %d, want %d", tf, d.Tiers().Slowest())
	}
	if err := oracle.CheckMachine(m); err != nil {
		t.Fatalf("invariants after roll-forward: %v", err)
	}
}

// TestDaemonSharedHeatMap: when the machine's own heat map is shared
// in, the daemon consumes it (full trap/hop attribution) instead of
// building a private one, and its demotion ranking runs off the
// machine's attribution.
func TestDaemonSharedHeatMap(t *testing.T) {
	tc := mem.DefaultTierConfig(2, 70)
	m := sim.New(sim.Config{Tiers: tc})
	h := obs.NewHeatMap(256, 0)
	m.SetHeatMap(h)
	d := New(m, Config{Tiers: tc, Seed: 6, Every: 128, MinBudget: 40960, MaxObjectBytes: 8192, Heat: h})
	if d.Heat() != h {
		t.Fatal("daemon did not adopt the shared heat map")
	}
	cold := d.Malloc(4096)
	d.StoreWord(cold, 9)
	hot := d.Malloc(256)
	for i := 0; i < 32; i++ {
		d.StoreWord(hot+mem.Addr(i)*8, uint64(i))
	}
	big := d.Malloc(36864) // oversize: heap-resident, pushes near memory over budget
	_ = big
	hammerWithPressure(d, hot, 32, 8192)
	st := d.Stats()
	if st.Demotions == 0 {
		t.Fatalf("no demotion from shared heat: %+v", st)
	}
	if tf := d.Tiers().TierOf(m.FinalAddr(cold)); tf != d.Tiers().Slowest() {
		t.Fatalf("cold object in tier %d, want far", tf)
	}
	if tf := d.Tiers().TierOf(m.FinalAddr(hot)); tf != 0 {
		t.Fatal("hot object demoted despite shared heat ranking")
	}
	if got := d.LoadWord(cold); got != 9 {
		t.Fatalf("data corrupted: %d", got)
	}
	if got := d.LoadWord(hot + 8); got != 1 {
		t.Fatalf("data corrupted: %d", got)
	}
}

// TestDaemonConfigValidation: a nil tier spec is a programming error.
func TestDaemonConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with nil Tiers did not panic")
		}
	}()
	New(sim.New(sim.Config{}), Config{})
}
