package sim

import (
	"testing"

	"memfwd/internal/core"
	"memfwd/internal/obs"
)

// TestHeatMapTracksMachineAccesses wires a heat map into a live machine
// and checks the Malloc/Free/Load/Store/trap feeds all attribute to the
// right object.
func TestHeatMapTracksMachineAccesses(t *testing.T) {
	m := newM()
	h := obs.NewHeatMap(64, 0)
	m.SetHeatMap(h)

	a := m.Malloc(24)
	b := m.Malloc(16)
	m.StoreWord(a, 1)
	m.StoreWord(a+8, 2)
	m.LoadWord(a)
	m.LoadWord(b)

	top := h.Top(2)
	if len(top) != 2 || top[0].Base != uint64(a) {
		t.Fatalf("Top = %+v, want %#x hottest", top, a)
	}
	if top[0].Stores != 2 || top[0].Loads != 1 {
		t.Fatalf("object a counters: %+v", top[0])
	}
	if top[1].Base != uint64(b) || top[1].Loads != 1 {
		t.Fatalf("object b counters: %+v", top[1])
	}

	// A forwarded access attributes to the ORIGINAL object (identity
	// follows the initial address) and records its hop count.
	src := m.Malloc(16)
	tgt := m.Malloc(16)
	m.StoreWord(src, 9)
	relocateRaw(m, src, tgt, 2)
	m.LoadWord(src)
	found := false
	for _, o := range h.Top(8) {
		if o.Base == uint64(src) {
			found = true
			if o.Forwarded == 0 || o.MaxHops != 1 {
				t.Fatalf("forwarded access not attributed: %+v", o)
			}
		}
	}
	if !found {
		t.Fatalf("source object missing from heat map")
	}

	// Trap cost lands on the same object, measured in machine cycles.
	m.SetTrap(func(core.Event) {})
	m.LoadWord(src)
	for _, o := range h.Top(8) {
		if o.Base == uint64(src) {
			if o.Traps != 1 || o.TrapCyc == 0 {
				t.Fatalf("trap not attributed with cost: %+v", o)
			}
		}
	}

	// Free marks the object dead and stops attribution.
	m.Free(b)
	for _, o := range h.Top(8) {
		if o.Base == uint64(b) && o.Live {
			t.Fatalf("freed object still live: %+v", o)
		}
	}
	before := h.Untracked()
	m.SetTrap(nil)
	m.LoadWord(b)
	if h.Untracked() != before+1 {
		t.Fatal("access to freed block still attributed")
	}
}

// TestHeatMapDisabledZeroAlloc extends the zero-allocation acceptance
// guards to the heat-map-disabled hot path: with no heat map attached
// (the default) loads, stores, and forwarded accesses must stay
// allocation-free — the nil check is the only cost.
func TestHeatMapDisabledZeroAlloc(t *testing.T) {
	m := newM()
	if m.HeatMap() != nil {
		t.Fatal("heat map attached by default")
	}
	a := m.Malloc(4096)
	m.StoreWord(a, 7)
	src := m.Malloc(16)
	tgt := m.Malloc(16)
	m.StoreWord(src, 9)
	relocateRaw(m, src, tgt, 2)
	for i := 0; i < 100; i++ {
		m.LoadWord(a)
		m.StoreWord(a, uint64(i))
		m.LoadWord(src)
		m.Inst(1)
	}
	var sink uint64
	allocs := testing.AllocsPerRun(1000, func() {
		sink += m.LoadWord(a)
		m.StoreWord(a, 3)
		sink += m.LoadWord(src) // forwarded: walks the chain, heat still nil
	})
	if allocs != 0 {
		t.Fatalf("heat-disabled hot path allocated %.1f times per run, want 0", allocs)
	}
	_ = sink
}

// Satellite regression: heat identity must not alias across address
// reuse on the *untimed* allocator path. Before heat attribution moved
// to the allocator's OnEvent hook, only timed Malloc/Free fed the map;
// a block freed through Allocator.Free directly (arena carving, heap
// aging, tools) and re-allocated at the same base kept the dead
// object's decayed counters and its stale word index.
func TestHeatMapNoAliasOnUntimedReuse(t *testing.T) {
	m := newM()
	h := obs.NewHeatMap(64, 0)
	m.SetHeatMap(h)

	a := m.Malloc(64)
	m.StoreWord(a, 1)
	m.StoreWord(a+8, 2)
	m.LoadWord(a)
	if o, ok := h.Get(uint64(a)); !ok || o.Loads != 1 || o.Stores != 2 || !o.Live {
		t.Fatalf("first incarnation: %+v ok=%v", o, ok)
	}

	// Free and re-allocate through the UNTIMED allocator: same size
	// class, LIFO freelist, so the base comes straight back.
	m.Allocator().Free(a)
	if o, ok := h.Get(uint64(a)); !ok || o.Live {
		t.Fatalf("untimed free not observed: %+v ok=%v", o, ok)
	}
	b := m.Allocator().Alloc(64)
	if b != a {
		t.Fatalf("expected freelist reuse of %#x, got %#x", a, b)
	}

	// The reused base is a fresh object: live, zero counters.
	o, ok := h.Get(uint64(b))
	if !ok {
		t.Fatal("reused base not tracked")
	}
	if !o.Live {
		t.Fatalf("reused base not live: %+v", o)
	}
	if o.Loads != 0 || o.Stores != 0 {
		t.Fatalf("reused base inherited dead object's counters: %+v", o)
	}

	// And the word index points at the new incarnation.
	m.LoadWord(b + 8)
	if o, _ := h.Get(uint64(b)); o.Loads != 1 {
		t.Fatalf("access to reused block not attributed: %+v", o)
	}
}

// TestHeatMapDetach: SetHeatMap(nil) stops attribution mid-run.
func TestHeatMapDetach(t *testing.T) {
	m := newM()
	h := obs.NewHeatMap(8, 0)
	m.SetHeatMap(h)
	a := m.Malloc(8)
	m.LoadWord(a)
	m.SetHeatMap(nil)
	m.LoadWord(a)
	top := h.Top(1)
	if len(top) != 1 || top[0].Loads != 1 {
		t.Fatalf("attribution continued after detach: %+v", top)
	}
}
