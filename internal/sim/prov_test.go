package sim

import (
	"testing"

	"memfwd/internal/mem"
)

func TestProvTablePutGetOverwrite(t *testing.T) {
	tb := newProvTable(16)
	if _, ok := tb.get(42); ok {
		t.Fatal("empty table returned an entry")
	}
	tb.put(42, ptrEntry{base: 100, ready: 7})
	tb.put(43, ptrEntry{base: 200, ready: 9})
	if e, ok := tb.get(42); !ok || e.base != 100 || e.ready != 7 {
		t.Fatalf("get(42) = (%+v,%v)", e, ok)
	}
	tb.put(42, ptrEntry{base: 101, ready: 8})
	if e, _ := tb.get(42); e.base != 101 || e.ready != 8 {
		t.Fatalf("overwrite lost: %+v", e)
	}
	if tb.n != 2 {
		t.Fatalf("n = %d, want 2 (overwrite must not double-count)", tb.n)
	}
	// Key 0 is legal (encoded as key+1 internally).
	tb.put(0, ptrEntry{base: 1, ready: 1})
	if e, ok := tb.get(0); !ok || e.base != 1 {
		t.Fatalf("key 0: (%+v,%v)", e, ok)
	}
}

// Colliding keys (same hash bucket under linear probing) must all stay
// retrievable; deliberately insert many more entries than the initial
// sizing to force at least one grow.
func TestProvTableProbingAndGrow(t *testing.T) {
	tb := newProvTable(8)
	const n = 500
	for i := uint64(0); i < n; i++ {
		tb.put(i, ptrEntry{base: i * 10, ready: int64(i)})
	}
	if tb.n != n {
		t.Fatalf("n = %d, want %d", tb.n, n)
	}
	for i := uint64(0); i < n; i++ {
		e, ok := tb.get(i)
		if !ok || e.base != i*10 || e.ready != int64(i) {
			t.Fatalf("get(%d) = (%+v,%v)", i, e, ok)
		}
	}
	if _, ok := tb.get(n + 1); ok {
		t.Fatal("absent key found after grow")
	}
}

func TestProvTableSweep(t *testing.T) {
	tb := newProvTable(16)
	for i := uint64(0); i < 20; i++ {
		tb.put(i, ptrEntry{base: i, ready: int64(i)})
	}
	tb.sweep(9) // evicts ready <= 9
	if tb.n != 10 {
		t.Fatalf("survivors = %d, want 10", tb.n)
	}
	for i := uint64(0); i < 20; i++ {
		_, ok := tb.get(i)
		if want := i >= 10; ok != want {
			t.Fatalf("after sweep, get(%d) = %v, want %v", i, ok, want)
		}
	}
	// Survivors must remain updatable and a second sweep repeatable.
	tb.put(15, ptrEntry{base: 99, ready: 50})
	tb.sweep(19)
	if tb.n != 1 {
		t.Fatalf("after second sweep n = %d, want 1", tb.n)
	}
	if e, ok := tb.get(15); !ok || e.base != 99 {
		t.Fatalf("survivor lost: (%+v,%v)", e, ok)
	}
}

// The provenance table must stay bounded over a run that produces far
// more distinct pointer values than provLimit: the clock sweep evicts
// entries the dispatch stream has passed.
func TestProvEvictionBoundsTable(t *testing.T) {
	m := newM()
	cells := m.Malloc(8)
	total := 3*m.provLimit + 100
	for i := 0; i < total; i++ {
		// Store a fresh plausible heap-pointer value, then load it back:
		// the 8-byte load records provenance for a distinct key each time
		// (keys are value>>8, so stride by 256).
		p := m.cfg.HeapBase + mem.Addr(1<<20) + mem.Addr(i*256)
		m.StoreWord(cells, uint64(p))
		m.LoadWord(cells)
		m.Inst(3)
	}
	if m.ptrProv.n > m.provLimit {
		t.Fatalf("provenance table at %d entries exceeds limit %d", m.ptrProv.n, m.provLimit)
	}
	if m.ptrProv.n == 0 {
		t.Fatal("provenance table empty: recordPtr never ran")
	}
	// The table's backing array must not have grown past its initial
	// sizing — the sweep, not the resize, is what bounds it.
	if want := newProvTable(m.provLimit); len(m.ptrProv.slots) > len(want.slots) {
		t.Fatalf("table grew to %d slots despite sweeps (initial %d)",
			len(m.ptrProv.slots), len(want.slots))
	}
}

// Provenance must still serialize pointer chasing inside the in-flight
// window: traversing a linked chain (each address loaded from memory)
// must take longer than loading the same nodes at addresses known up
// front, even after many sweeps have run.
func TestProvSerializationSurvivesEviction(t *testing.T) {
	const nodes = 6000 // > provLimit, so clock sweeps run mid-traversal
	build := func(m *Machine, pointers bool) []mem.Addr {
		addrs := make([]mem.Addr, nodes)
		for i := range addrs {
			addrs[i] = m.Malloc(64) // spread nodes across cache lines
		}
		for i := 0; i < nodes-1; i++ {
			if pointers {
				m.Mem.WriteWord(addrs[i], uint64(addrs[i+1]))
			} else {
				// Same layout and access order below, but the loaded
				// values are not heap pointers, so no provenance is
				// recorded and the loads may overlap.
				m.Mem.WriteWord(addrs[i], uint64(i+1))
			}
		}
		return addrs
	}
	chase := func() int64 {
		m := newM()
		addrs := build(m, true)
		p := addrs[0]
		for p != 0 && p != addrs[nodes-1] {
			p = mem.Addr(m.LoadWord(p))
		}
		return m.Finalize().Cycles
	}
	sweep := func() int64 {
		m := newM()
		addrs := build(m, false)
		for _, a := range addrs[:nodes-1] {
			m.LoadWord(a)
		}
		return m.Finalize().Cycles
	}
	c, s := chase(), sweep()
	if c <= s {
		t.Fatalf("pointer chase (%d cycles) should be slower than the same loads without provenance (%d): serialization lost", c, s)
	}
}
