package sim

// provTable is the pointer-provenance store behind addrReady/recordPtr:
// a linear-probe open-addressed hash table mapping provenance keys
// (pointer value >> 8) to ptrEntry. It is semantically an exact map —
// last write per key wins, lookups match exact keys only — but a probe
// costs one multiply and (at the enforced load factor) close to one
// cache line, where the built-in map showed up as a top-five profile
// entry on the per-access path. The machine bounds its population with
// clock sweeps (Machine.evictProv), so the table is sized once and
// essentially never grows.
type provTable struct {
	slots []provSlot
	// scratch carries sweep survivors between the clear and the
	// reinsert, reused across sweeps so steady state allocates nothing.
	scratch []provSlot
	n       int
	mask    uint64
	shift   uint
}

// provSlot stores key+1 so the zero value marks an empty slot. Keys are
// heap addresses shifted right by 8, far below overflow.
type provSlot struct {
	key uint64
	ent ptrEntry
}

// provHashMult is the 64-bit Fibonacci-hashing multiplier.
const provHashMult = 0x9E3779B97F4A7C15

// newProvTable sizes the table to hold minEntries at no more than half
// load.
func newProvTable(minEntries int) provTable {
	capSlots := 8
	for capSlots < 2*minEntries {
		capSlots <<= 1
	}
	return makeProvTable(capSlots)
}

func makeProvTable(capSlots int) provTable {
	shift := uint(64)
	for c := capSlots; c > 1; c >>= 1 {
		shift--
	}
	return provTable{
		slots: make([]provSlot, capSlots),
		mask:  uint64(capSlots - 1),
		shift: shift,
	}
}

func (t *provTable) idx(k uint64) uint64 { return (k * provHashMult) >> t.shift }

// get returns the entry stored under k.
func (t *provTable) get(k uint64) (ptrEntry, bool) {
	i := t.idx(k)
	for {
		s := &t.slots[i]
		if s.key == 0 {
			return ptrEntry{}, false
		}
		if s.key == k+1 {
			return s.ent, true
		}
		i = (i + 1) & t.mask
	}
}

// put inserts or overwrites the entry under k.
func (t *provTable) put(k uint64, e ptrEntry) {
	if 4*(t.n+1) > 3*len(t.slots) {
		t.grow()
	}
	i := t.idx(k)
	for {
		s := &t.slots[i]
		if s.key == 0 {
			s.key = k + 1
			s.ent = e
			t.n++
			return
		}
		if s.key == k+1 {
			s.ent = e
			return
		}
		i = (i + 1) & t.mask
	}
}

// grow doubles the table. With clock sweeps bounding the population it
// should never trigger; it exists so an unexpectedly deep in-flight
// window degrades to a resize instead of an unbounded probe chain.
func (t *provTable) grow() {
	old := t.slots
	*t = makeProvTable(2 * len(old))
	for i := range old {
		if old[i].key != 0 {
			t.put(old[i].key-1, old[i].ent)
		}
	}
}

// clone returns an independent deep copy of the table (fresh scratch):
// the provenance window is part of a machine snapshot because entry
// eviction, though timing-invisible, determines future probe layout
// and the bounds CheckInvariants enforces.
func (t *provTable) clone() provTable {
	c := *t
	c.slots = append([]provSlot(nil), t.slots...)
	c.scratch = nil
	return c
}

// sweep deletes every entry whose ready time is at or below floor,
// rehashing the survivors (linear-probe tables cannot delete in place
// without breaking probe chains).
func (t *provTable) sweep(floor int64) {
	surv := t.scratch[:0]
	for i := range t.slots {
		if t.slots[i].key != 0 && t.slots[i].ent.ready > floor {
			surv = append(surv, t.slots[i])
		}
		t.slots[i] = provSlot{}
	}
	t.n = 0
	for _, s := range surv {
		t.put(s.key-1, s.ent)
	}
	t.scratch = surv[:0]
}
