package sim

import (
	"math"
	"testing"

	"memfwd/internal/core"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
)

// forwardOne builds a one-hop forwarding chain src -> tgt holding v.
func forwardOne(m *Machine, v uint64) (src, tgt mem.Addr) {
	s := m.Malloc(8)
	d := m.Malloc(8)
	m.StoreWord(d, v)
	m.UnforwardedWrite(s, uint64(d), true)
	return s, d
}

func kinds(evs []obs.Event) map[obs.Kind]int {
	out := make(map[obs.Kind]int)
	for _, ev := range evs {
		out[ev.Kind]++
	}
	return out
}

func TestTracerSeesMachineEvents(t *testing.T) {
	m := New(Config{})
	tr := obs.NewRing(1 << 16)
	m.SetTracer(tr)
	if m.Tracer() != tr {
		t.Fatal("Tracer accessor")
	}

	m.PhaseBegin("work")
	src, tgt := forwardOne(m, 42)
	if got := m.LoadWord(src); got != 42 {
		t.Fatalf("forwarded load = %d", got)
	}
	m.Free(src)
	m.PhaseEnd("work")

	evs := tr.Events()
	k := kinds(evs)
	if k[obs.KAlloc] < 2 {
		t.Fatalf("want >=2 alloc events, got %d", k[obs.KAlloc])
	}
	if k[obs.KForwardHop] != 1 {
		t.Fatalf("want 1 forwardHop event, got %d", k[obs.KForwardHop])
	}
	if k[obs.KCacheMiss] == 0 {
		t.Fatal("expected cache-miss events on a cold cache")
	}
	if k[obs.KFree] != 1 {
		t.Fatalf("want 1 free event, got %d", k[obs.KFree])
	}
	if k[obs.KPhaseBegin] != 1 || k[obs.KPhaseEnd] != 1 {
		t.Fatalf("phase events wrong: %v", k)
	}
	// The forward-hop event carries initial, final, and hop count.
	for _, ev := range evs {
		if ev.Kind == obs.KForwardHop {
			if ev.Addr != uint64(src) || ev.Addr2 != uint64(tgt) || ev.N != 1 || ev.Class != uint8(core.Load) {
				t.Fatalf("forwardHop event wrong: %+v", ev)
			}
		}
	}
	for i, ev := range evs {
		if ev.Cycle < 0 {
			t.Fatalf("event %d has negative cycle: %+v", i, ev)
		}
	}
}

func TestTrapEventEmitted(t *testing.T) {
	m := New(Config{})
	tr := obs.NewRing(1024)
	m.SetTracer(tr)
	fired := 0
	m.SetTrap(func(ev core.Event) { fired++ })
	src, _ := forwardOne(m, 7)
	m.LoadWord(src)
	if fired != 1 {
		t.Fatalf("trap handler fired %d times", fired)
	}
	k := kinds(tr.Events())
	if k[obs.KTrap] != 1 {
		t.Fatalf("want 1 trap event, got %d", k[obs.KTrap])
	}
}

func TestPhaseNestingAndLabels(t *testing.T) {
	m := New(Config{})
	if m.Phase() != "" {
		t.Fatal("initial phase should be empty")
	}
	m.PhaseBegin("outer")
	m.PhaseBegin("inner")
	if m.Phase() != "inner" {
		t.Fatalf("Phase = %q, want inner", m.Phase())
	}
	m.PhaseEnd("inner")
	if m.Phase() != "outer" {
		t.Fatalf("Phase = %q, want outer", m.Phase())
	}
	m.PhaseEnd("outer")
	if m.Phase() != "" {
		t.Fatalf("Phase = %q, want empty", m.Phase())
	}
	// Unbalanced PhaseEnd must not panic.
	m.PhaseEnd("stray")
}

func TestSamplerProducesSeries(t *testing.T) {
	m := New(Config{})
	series := &obs.Series{}
	m.SetSampleEvery(500, series)
	if series.Every != 500 {
		t.Fatal("SetSampleEvery should stamp the series period")
	}

	m.PhaseBegin("build")
	addrs := make([]mem.Addr, 64)
	for i := range addrs {
		a := m.Malloc(64)
		m.StoreWord(a, uint64(i))
		addrs[i] = a
	}
	m.PhaseEnd("build")
	m.PhaseBegin("chase")
	for r := 0; r < 40; r++ {
		for _, a := range addrs {
			m.LoadWord(a)
		}
		m.Inst(50)
	}
	m.PhaseEnd("chase")
	st := m.Finalize()

	if series.Len() == 0 {
		t.Fatal("sampler produced no samples")
	}
	var prevInstr uint64
	var sumDInstr uint64
	var sumDCycles int64
	for i, s := range series.Samples {
		if s.Instructions <= prevInstr {
			t.Fatalf("sample %d instructions not increasing: %d -> %d", i, prevInstr, s.Instructions)
		}
		prevInstr = s.Instructions
		sumDInstr += s.DInstructions
		sumDCycles += s.DCycles
		shareSum := s.BusyShare + s.LoadStallShare + s.StoreStallShare + s.InstStallShare
		if shareSum > 0 && math.Abs(shareSum-1) > 1e-9 {
			t.Fatalf("sample %d slot shares sum to %v", i, shareSum)
		}
		for _, v := range []float64{s.L1MissRate, s.L2MissRate, s.FwdLoadRate, s.FwdStoreRate} {
			if v < 0 || v > 1 {
				t.Fatalf("sample %d rate out of range: %+v", i, s)
			}
		}
	}
	// The intervals partition the whole run: instructions exactly, cycles
	// up to the one padded graduation cycle Finalize may add after the
	// last instruction graduates.
	if sumDInstr != st.Instructions {
		t.Fatalf("interval instructions sum %d != total %d", sumDInstr, st.Instructions)
	}
	if d := st.Cycles - sumDCycles; d < 0 || d > 1 {
		t.Fatalf("interval cycles sum %d vs total %d", sumDCycles, st.Cycles)
	}
	// Phase labels appear in the series.
	seen := map[string]bool{}
	for _, s := range series.Samples {
		seen[s.Phase] = true
	}
	if !seen["build"] || !seen["chase"] {
		t.Fatalf("phase labels missing from series: %v", seen)
	}
}

func TestRegisterMetricsMatchesStats(t *testing.T) {
	m := New(Config{})
	r := obs.NewRegistry()
	m.RegisterMetrics(r)

	src, _ := forwardOne(m, 9)
	m.LoadWord(src)
	m.Inst(100)
	st := m.Finalize()

	vals := map[string]float64{}
	for _, mv := range r.Snapshot() {
		vals[mv.Name] = mv.Value
	}
	if vals["cpu.instructions"] != float64(st.Instructions) {
		t.Fatalf("cpu.instructions = %v, want %d", vals["cpu.instructions"], st.Instructions)
	}
	if vals["cpu.cycles"] != float64(st.Cycles) {
		t.Fatalf("cpu.cycles = %v, want %d", vals["cpu.cycles"], st.Cycles)
	}
	if vals["sim.loads.forwarded"] != float64(st.LoadsForwarded()) {
		t.Fatalf("sim.loads.forwarded = %v, want %d", vals["sim.loads.forwarded"], st.LoadsForwarded())
	}
	l1 := vals["l1.hits.load"] + vals["l1.misses.partial.load"] + vals["l1.misses.full.load"]
	want := float64(st.L1.Hits[0] + st.L1.PartialMisses[0] + st.L1.FullMisses[0])
	if l1 != want {
		t.Fatalf("l1 load accesses = %v, want %v", l1, want)
	}
	if vals["heap.peak_bytes"] != float64(st.HeapPeak) {
		t.Fatalf("heap.peak_bytes = %v, want %d", vals["heap.peak_bytes"], st.HeapPeak)
	}
}

func TestDisabledObservabilityAddsNoAllocs(t *testing.T) {
	m := New(Config{})
	a := m.Malloc(8)
	m.StoreWord(a, 42)
	// Warm the caches and provenance map.
	for i := 0; i < 100; i++ {
		m.LoadWord(a)
	}
	allocs := testing.AllocsPerRun(200, func() {
		m.LoadWord(a)
	})
	if allocs != 0 {
		t.Fatalf("LoadWord with observability disabled allocates %v/op, want 0", allocs)
	}
}
