package sim

import (
	"testing"

	"memfwd/internal/mem"
)

// End-to-end per-access benchmarks: one Machine.Load/Store including
// forwarding resolution, pipeline accounting, and the cache walk. These
// are the units BenchmarkFigure5 (repo root) executes billions of.

var benchVal uint64

func benchMachine() (*Machine, mem.Addr) {
	m := newM()
	a := m.Malloc(4096)
	m.StoreWord(a, 7)
	return m, a
}

func BenchmarkLoadL1Hit(b *testing.B) {
	m, a := benchMachine()
	m.LoadWord(a) // warm line and scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchVal += m.LoadWord(a)
	}
}

func BenchmarkStoreL1Hit(b *testing.B) {
	m, a := benchMachine()
	m.StoreWord(a, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StoreWord(a, uint64(i))
	}
}

func BenchmarkLoadForwarded1Hop(b *testing.B) {
	m, _ := benchMachine()
	src := m.Malloc(16)
	tgt := m.Malloc(16)
	m.StoreWord(src, 9)
	relocateRaw(m, src, tgt, 2)
	m.LoadWord(src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchVal += m.LoadWord(src)
	}
}

func BenchmarkInst(b *testing.B) {
	m, _ := benchMachine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Inst(1)
	}
}

// The guards below are the ISSUE's zero-allocation acceptance criteria,
// run as ordinary tests so CI enforces them: an L1-hit load/store and a
// forwarded access below the hop limit must not allocate.

func TestLoadHitZeroAlloc(t *testing.T) {
	m, a := benchMachine()
	for i := 0; i < 100; i++ {
		m.LoadWord(a)
		m.Inst(1)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		benchVal += m.LoadWord(a)
	})
	if allocs != 0 {
		t.Fatalf("L1-hit load allocated %.1f times per run, want 0", allocs)
	}
}

func TestStoreHitZeroAlloc(t *testing.T) {
	m, a := benchMachine()
	for i := 0; i < 100; i++ {
		m.StoreWord(a, uint64(i))
		m.Inst(1)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		m.StoreWord(a, 3)
	})
	if allocs != 0 {
		t.Fatalf("L1-hit store allocated %.1f times per run, want 0", allocs)
	}
}

func TestForwardedLoadZeroAlloc(t *testing.T) {
	m, _ := benchMachine()
	src := m.Malloc(16)
	tgt := m.Malloc(16)
	m.StoreWord(src, 9)
	relocateRaw(m, src, tgt, 2)
	for i := 0; i < 100; i++ {
		m.LoadWord(src)
		m.Inst(1)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		benchVal += m.LoadWord(src)
	})
	if allocs != 0 {
		t.Fatalf("forwarded load allocated %.1f times per run, want 0", allocs)
	}
}
