// Multi-hart support: P harts share one tagged memory, one allocator,
// and one forwarding mechanism (the functional, architectural state),
// while each hart owns its private timing state — an out-of-order
// pipeline, an L1+L2 hierarchy over the shared main memory, the
// instruction-mix down-counters, the pointer-provenance window, and its
// latency accumulators.
//
// Coherence protocol (DESIGN.md §12): the shared mem.Memory is the
// single point of serialization, so data words, fbit tags, and
// forwarding words are coherent by construction — a word access is one
// indivisible read or write of the word *and* its fbit against shared
// state. The caches carry timing only (no data), so keeping them
// coherent means keeping their *presence* information plausible: every
// store invalidates the written line in every other hart's L1 and L2
// (write-invalidate), forcing the next access on those harts to re-miss.
// Loads do not snoop — a remote dirty line costs the writer nothing
// extra here, a deliberate simplification (no ownership states, no
// write-back forwarding) that errs toward charging the reader a full
// miss. Forwarding words and fbits travel with their word's line, so
// the same invalidation covers all three classes.
package sim

import (
	"fmt"

	"memfwd/internal/cache"
	"memfwd/internal/cpu"
	"memfwd/internal/mem"
)

// MaxHarts bounds Config.Harts; the per-hart hierarchies are built
// eagerly, so an absurd count is a configuration error, caught where
// the CLIs and the session server validate their inputs.
const MaxHarts = 64

// hartState is one hart's private timing state. The machine's exported
// Pipe/L1/L2 fields and unexported hot-path fields always belong to the
// *current* hart; SetHart stashes them here and loads the target's.
// The pipe/l1/l2 pointers are immutable after New, so the stash only
// moves the mutable scalars.
type hartState struct {
	pipe *cpu.Pipeline
	l1   *cache.Cache
	l2   *cache.Cache

	mispredictCtr uint32
	depCtr        uint32
	ptrProv       provTable
	stats         Stats
}

// HartCount returns the number of harts the machine was built with.
func (m *Machine) HartCount() int {
	if m.harts == nil {
		return 1
	}
	return len(m.harts)
}

// CurrentHart returns the hart the machine is currently executing as.
func (m *Machine) CurrentHart() int { return m.curHart }

// SetHart switches the machine to execute as hart i: subsequent
// operations run on hart i's pipeline and caches and accumulate into
// its counters. Functional state (memory, fbits, allocator, forwarder)
// is shared and unaffected. The scheduler (internal/sched) brackets
// every relocator-hart step with a SetHart pair; guest code never calls
// this.
func (m *Machine) SetHart(i int) {
	if m.harts == nil {
		if i == 0 {
			return
		}
		panic(fmt.Sprintf("sim: SetHart(%d) on a single-hart machine", i))
	}
	if i < 0 || i >= len(m.harts) {
		panic(fmt.Sprintf("sim: SetHart(%d) out of range (harts=%d)", i, len(m.harts)))
	}
	if i == m.curHart {
		return
	}
	h := &m.harts[m.curHart]
	h.mispredictCtr, h.depCtr = m.mispredictCtr, m.depCtr
	h.ptrProv = m.ptrProv
	h.stats = m.stats
	t := &m.harts[i]
	m.Pipe, m.L1, m.L2 = t.pipe, t.l1, t.l2
	m.mispredictCtr, m.depCtr = t.mispredictCtr, t.depCtr
	m.ptrProv = t.ptrProv
	m.stats = t.stats
	m.curHart = i
}

// snoopStore is the write-invalidate hook: after a functional write by
// the current hart, the written line is invalidated in every other
// hart's caches, so their next access re-fetches through the shared
// hierarchy. Single-hart machines pay one nil check.
func (m *Machine) snoopStore(a mem.Addr) {
	if m.harts == nil {
		return
	}
	u := uint64(a)
	for i := range m.harts {
		if i == m.curHart {
			continue
		}
		h := &m.harts[i]
		if h.l1.Invalidate(u) {
			m.cohInvL1++
		}
		if h.l2.Invalidate(u) {
			m.cohInvL2++
		}
	}
}

// CoherenceInvalidations returns the number of remote-line
// invalidations performed at each cache level since construction.
// Deliberately not part of Stats: the figure pipelines serialize Stats
// byte-for-byte and their goldens must not move.
func (m *Machine) CoherenceInvalidations() (l1, l2 uint64) { return m.cohInvL1, m.cohInvL2 }

// buildHarts constructs the per-hart state for a multi-hart machine.
// Hart 0 aliases the machine's primary pipe/caches; harts 1..P-1 get
// fresh hierarchies chained onto the shared main memory.
func (m *Machine) buildHarts(cfg Config) {
	m.harts = make([]hartState, cfg.Harts)
	m.harts[0] = hartState{pipe: m.Pipe, l1: m.L1, l2: m.L2}
	for i := 1; i < cfg.Harts; i++ {
		l2 := cache.New(cache.Config{
			Name: "L2", SizeBytes: cfg.L2Size, LineSize: cfg.LineSize,
			Assoc: cfg.L2Assoc, HitLatency: cfg.L2HitLat, MSHRs: cfg.L2MSHRs,
			TransferBytesPerCycle: cfg.FillBytesPerCycle,
		}, m.MM)
		l1 := cache.New(cache.Config{
			Name: "L1", SizeBytes: cfg.L1Size, LineSize: cfg.LineSize,
			Assoc: cfg.L1Assoc, HitLatency: cfg.L1HitLat, MSHRs: cfg.L1MSHRs,
			TransferBytesPerCycle: cfg.FillBytesPerCycle,
		}, l2)
		m.harts[i] = hartState{
			pipe:          cpu.New(cfg.CPU),
			l1:            l1,
			l2:            l2,
			mispredictCtr: mispredictEvery,
			depCtr:        uint32(cfg.DepEvery),
			ptrProv:       newProvTable(m.provLimit),
		}
	}
}

// HartStats returns hart i's accumulated machine statistics (the same
// shape Finalize fills for hart 0, minus the whole-machine heap fields,
// which are shared). Mainly for tests and telemetry: the figure
// pipelines read hart 0 through Finalize as always.
func (m *Machine) HartStats(i int) *Stats {
	if i == m.curHart {
		return m.fillFor(m.Pipe, m.L1, m.L2, m.stats)
	}
	h := &m.harts[i]
	return m.fillFor(h.pipe, h.l1, h.l2, h.stats)
}
