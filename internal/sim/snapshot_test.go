package sim

import (
	"testing"

	"memfwd/internal/core"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
)

// TestSaveStateCarriesTrapHandler: the trap handler travels verbatim
// with the state, so a restored session keeps firing the same
// user-level forwarding handler (serve re-attaches observability, but
// the handler is guest semantics and must migrate).
func TestSaveStateCarriesTrapHandler(t *testing.T) {
	m := New(Config{LineSize: 64})
	fired := 0
	m.SetTrap(func(core.Event) { fired++ })

	b := m.Malloc(2 * mem.WordSize)
	m.StoreWord(b, 5)
	// Forge a one-hop chain by hand (UnforwardedWrite is the ISA-level
	// primitive; geometry does not matter for this test).
	tgt := mem.Addr(0x6000_0000)
	m.UnforwardedWrite(tgt, 5, false)
	m.UnforwardedWrite(b, uint64(tgt), true)

	m.Load(b, 8)
	if fired != 1 {
		t.Fatalf("source trap fired %d times, want 1", fired)
	}

	st := m.SaveState()
	m2 := New(Config{LineSize: 64})
	if err := m2.LoadState(st); err != nil {
		t.Fatal(err)
	}
	m2.Load(b, 8)
	if fired != 2 {
		t.Fatalf("restored trap fired %d times total, want 2", fired)
	}
}

// TestLoadStateKeepsTargetAttachments: observability wiring (heat map,
// tracer) is process-local and stays with the target machine across a
// restore — LoadState must not detach it and must leave it functional.
func TestLoadStateKeepsTargetAttachments(t *testing.T) {
	src := New(Config{LineSize: 64})
	b := src.Malloc(64)
	src.StoreWord(b, 1)
	st := src.SaveState()

	dst := New(Config{LineSize: 64})
	heat := obs.NewHeatMap(16, 0)
	dst.SetHeatMap(heat)
	sink := &obs.MemorySink{}
	tr := obs.NewTracer(sink, 16)
	dst.SetTracer(tr)
	if err := dst.LoadState(st); err != nil {
		t.Fatal(err)
	}
	if dst.HeatMap() != heat || dst.Tracer() != tr {
		t.Fatal("LoadState dropped the target's observability attachments")
	}
	dst.Load(b, 8)
	nb := dst.Malloc(32)
	if nb == 0 {
		t.Fatal("restored machine failed to allocate")
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(sink.Events) == 0 {
		t.Fatal("tracer attached to restored machine emitted nothing")
	}
}
