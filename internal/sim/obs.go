// Observability surface of the Machine: event tracing, phase marking,
// metrics registration, and the periodic time-series sampler. All of it
// is opt-in; a machine with nothing attached pays one nil check per
// operation and allocates nothing extra.
package sim

import (
	"memfwd/internal/mem"
	"memfwd/internal/obs"
)

// SetTracer attaches t to the machine and every subsystem that emits
// events (both cache levels and the pipeline). Passing nil detaches.
func (m *Machine) SetTracer(t *obs.Tracer) {
	m.tracer = t
	m.L1.SetTracer(t, 1)
	m.L2.SetTracer(t, 2)
	m.Pipe.SetTracer(t)
	if m.spans != nil {
		m.spans.Tracer = t
	}
}

// Tracer returns the attached tracer (nil when tracing is disabled).
func (m *Machine) Tracer() *obs.Tracer { return m.tracer }

// Now returns the current pipeline cycle — the timestamp base the span
// recorder stamps relocation phases with.
func (m *Machine) Now() int64 { return m.Pipe.Now() }

// SetHeatMap attaches a per-object heat map fed from the machine's
// Load/Store/trap paths plus the allocator's event hook. Object
// identity (OnAlloc/OnFree) comes from the allocator itself — not from
// Malloc/Free — so blocks minted or retired through the *untimed*
// allocator paths (arena carving, heap aging, tools) are tracked too;
// otherwise a base freed untimed and re-allocated would alias the dead
// object's decayed counters. Passing nil detaches; with no heat map
// attached the hot paths pay one nil check each.
func (m *Machine) SetHeatMap(h *obs.HeatMap) {
	m.heat = h
	if h == nil {
		m.Alloc.OnEvent = nil
		return
	}
	m.Alloc.OnEvent = func(op string, a mem.Addr, size uint64) {
		switch op {
		case "alloc":
			h.OnAlloc(uint64(a), size)
		case "free":
			h.OnFree(uint64(a))
		}
	}
}

// HeatMap returns the attached heat map (nil when disabled).
func (m *Machine) HeatMap() *obs.HeatMap { return m.heat }

// SetSpans attaches a relocation-span table; opt.TryRelocate records
// one span per relocation attempt into it. If a tracer is attached the
// table also emits span duration events to it (and SetTracer keeps the
// wiring current when called in either order). Passing nil detaches.
func (m *Machine) SetSpans(t *obs.SpanTable) {
	m.spans = t
	if t != nil {
		t.Tracer = m.tracer
	}
}

// RelocationSpans returns the attached span table (nil when disabled).
func (m *Machine) RelocationSpans() *obs.SpanTable { return m.spans }

// PhaseBegin marks the start of a named program phase: a PhaseBegin
// event is emitted and subsequent samples carry the label. Phases nest;
// it costs no simulated time.
func (m *Machine) PhaseBegin(name string) {
	if m.series != nil {
		m.takeSample() // close the previous phase's interval
	}
	m.phases = append(m.phases, name)
	if m.tracer != nil {
		m.tracer.Emit(obs.Event{Cycle: m.Pipe.Now(), Kind: obs.KPhaseBegin, Label: name})
	}
}

// PhaseEnd marks the end of the innermost phase.
func (m *Machine) PhaseEnd(name string) {
	if m.series != nil {
		m.takeSample()
	}
	if n := len(m.phases); n > 0 {
		m.phases = m.phases[:n-1]
	}
	if m.tracer != nil {
		m.tracer.Emit(obs.Event{Cycle: m.Pipe.Now(), Kind: obs.KPhaseEnd, Label: name})
	}
}

// Phase returns the innermost active phase label ("" outside phases).
func (m *Machine) Phase() string {
	if n := len(m.phases); n > 0 {
		return m.phases[n-1]
	}
	return ""
}

// TraceRelocate records one relocation in the event trace; the layout
// optimizations (internal/opt) call it after installing the forwarding
// address. It charges no simulated time — the relocation code itself
// already paid its instructions and stores.
func (m *Machine) TraceRelocate(src, tgt mem.Addr, nWords int) {
	if m.tracer != nil {
		m.tracer.Emit(obs.Event{Cycle: m.Pipe.Now(), Kind: obs.KRelocate,
			Addr: uint64(src), Addr2: uint64(tgt), N: uint64(nWords)})
	}
}

// RegisterMetrics exposes every subsystem's statistics in r as lazily
// evaluated views: the machine totals, both cache levels, the pipeline,
// the forwarder, and the allocator. The existing Stats structs stay the
// single source of truth; nothing on the hot path changes.
func (m *Machine) RegisterMetrics(r *obs.Registry) {
	m.Pipe.RegisterMetrics(r, "cpu")
	m.L1.RegisterMetrics(r, "l1")
	m.L2.RegisterMetrics(r, "l2")
	m.Fwd.RegisterMetrics(r, "fwd")
	r.GaugeFunc("sim.loads.forwarded", func() float64 { return float64(m.stats.LoadsForwarded()) })
	r.GaugeFunc("sim.stores.forwarded", func() float64 { return float64(m.stats.StoresForwarded()) })
	r.GaugeFunc("sim.load.cycles", func() float64 { return float64(m.stats.LoadCycles) })
	r.GaugeFunc("sim.load.fwd_cycles", func() float64 { return float64(m.stats.LoadFwdCycles) })
	r.GaugeFunc("sim.store.cycles", func() float64 { return float64(m.stats.StoreCycles) })
	r.GaugeFunc("sim.store.fwd_cycles", func() float64 { return float64(m.stats.StoreFwdCycles) })
	r.GaugeFunc("sim.traps", func() float64 { return float64(m.stats.Traps) })
	r.GaugeFunc("heap.live_bytes", func() float64 { return float64(m.Alloc.BytesLive) })
	r.GaugeFunc("heap.peak_bytes", func() float64 { return float64(m.Alloc.PeakLive) })
	r.GaugeFunc("heap.allocated_bytes", func() float64 { return float64(m.Alloc.BytesAllocated) })
	r.GaugeFunc("mem.pages_touched", func() float64 { return float64(m.Mem.PagesTouched) })
}

// SetSampleEvery attaches series and samples the machine roughly every
// n graduated instructions (phase boundaries also force a sample).
// Finalize flushes the last partial interval. Passing n == 0 or a nil
// series detaches the sampler.
func (m *Machine) SetSampleEvery(n uint64, series *obs.Series) {
	if n == 0 || series == nil {
		m.series = nil
		return
	}
	m.series = series
	m.sampleEvery = n
	if series.Every == 0 {
		series.Every = n
	}
	m.samplePrev = *m.Snapshot()
	m.sampleNext = m.samplePrev.Instructions + n
}

// maybeSample is the per-operation sampler check; kept tiny so the
// disabled path is one comparison. Sampling tracks hart 0 (the guest
// mutator): service-hart instruction counts are independent clocks and
// must not be compared against hart 0's next-sample threshold.
func (m *Machine) maybeSample() {
	if m.series != nil && m.curHart == 0 && m.Pipe.Stats.Instructions >= m.sampleNext {
		m.takeSample()
	}
}

// takeSample appends one point derived from the delta between the
// current snapshot and the previous one.
func (m *Machine) takeSample() {
	cur := m.Snapshot()
	if cur.Instructions == m.samplePrev.Instructions {
		// Zero-width interval (e.g. back-to-back phase marks): nothing
		// to report.
		m.sampleNext = cur.Instructions + m.sampleEvery
		return
	}
	m.series.Add(sampleDelta(&m.samplePrev, cur, m.Phase(), m.Alloc.BytesLive))
	m.samplePrev = *cur
	m.sampleNext = cur.Instructions + m.sampleEvery
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// demand returns (misses, accesses) for loads+stores at one level.
func demand(prev, cur *Stats, level int) (uint64, uint64) {
	pick := func(s *Stats) (m, a uint64) {
		cs := &s.L1
		if level == 2 {
			cs = &s.L2
		}
		for _, k := range []int{0, 1} { // load, store
			m += cs.PartialMisses[k] + cs.FullMisses[k]
			a += cs.Hits[k] + cs.PartialMisses[k] + cs.FullMisses[k]
		}
		return m, a
	}
	pm, pa := pick(prev)
	cm, ca := pick(cur)
	return cm - pm, ca - pa
}

// sampleDelta turns two consecutive cumulative snapshots into one
// interval sample.
func sampleDelta(prev, cur *Stats, phase string, heapLive uint64) obs.Sample {
	s := obs.Sample{
		Phase:         phase,
		Instructions:  cur.Instructions,
		Cycles:        cur.Cycles,
		DInstructions: cur.Instructions - prev.Instructions,
		DCycles:       cur.Cycles - prev.Cycles,
		HeapLiveBytes: heapLive,
	}
	var slots [4]uint64
	var total uint64
	for i := range slots {
		slots[i] = cur.Slots[i] - prev.Slots[i]
		total += slots[i]
	}
	if total > 0 {
		s.BusyShare = float64(slots[0]) / float64(total)
		s.LoadStallShare = float64(slots[1]) / float64(total)
		s.StoreStallShare = float64(slots[2]) / float64(total)
		s.InstStallShare = float64(slots[3]) / float64(total)
	}
	m1, a1 := demand(prev, cur, 1)
	m2, a2 := demand(prev, cur, 2)
	s.L1MissRate = ratio(m1, a1)
	s.L2MissRate = ratio(m2, a2)
	s.FwdLoadRate = ratio(cur.LoadsForwarded()-prev.LoadsForwarded(), cur.Loads-prev.Loads)
	s.FwdStoreRate = ratio(cur.StoresForwarded()-prev.StoresForwarded(), cur.Stores-prev.Stores)
	return s
}
