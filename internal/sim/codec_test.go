package sim

import (
	"bytes"
	"testing"

	"memfwd/internal/core"
	"memfwd/internal/mem"
	"memfwd/internal/wire"
)

// exerciseMachine drives m through enough varied work to populate
// every snapshot field: allocations (some freed, so free stacks fill),
// stores and loads at several sizes, a hand-forged forwarding chain,
// call sites, phases, and plain instructions.
func exerciseMachine(m *Machine) []mem.Addr {
	var blocks []mem.Addr
	site := m.Site("codec_test.alloc")
	m.SetSite(site)
	for i := 0; i < 24; i++ {
		b := m.Malloc(uint64(16 + 8*(i%5)))
		blocks = append(blocks, b)
		m.StoreWord(b, uint64(i)*0x1_0001)
		m.Store32(b+8, uint32(i))
		m.Inst(3)
	}
	for i := 0; i < len(blocks); i += 3 {
		m.Free(blocks[i])
	}
	// Forge a forwarding chain: block 1 forwards to an arena address.
	tgt := mem.Addr(0x6000_0000)
	m.UnforwardedWrite(tgt, m.LoadWord(blocks[1]), false)
	m.UnforwardedWrite(blocks[1], uint64(tgt), true)
	for i := 1; i < len(blocks); i += 2 {
		m.LoadWord(blocks[i])
		m.Load8(blocks[i] + 9)
		m.Inst(2)
	}
	m.PhaseBegin("codec_test.phase")
	return blocks
}

// exerciseHarts runs a little work on every extra hart so the per-hart
// snapshot state is non-trivial.
func exerciseHarts(m *Machine, blocks []mem.Addr) {
	for h := 1; h < m.HartCount(); h++ {
		m.SetHart(h)
		m.StoreWord(blocks[3], uint64(h)<<32)
		m.LoadWord(blocks[5])
		m.Inst(4)
	}
	m.SetHart(0)
}

func codecConfigs() map[string]Config {
	return map[string]Config{
		"default":   {LineSize: 64},
		"tiered":    {LineSize: 32, Tiers: mem.DefaultTierConfig(2, 70)},
		"multihart": {LineSize: 64, Harts: 3},
	}
}

// TestStateCodecRoundTrip is the codec's core contract: encode is
// canonical and decode is exact. For several machine shapes it checks
// that decode(encode(state)) re-encodes to identical bytes, and that a
// machine restored from the decoded state runs an identical
// continuation (same future addresses, values, and stats) as one
// restored from the original in-memory state.
func TestStateCodecRoundTrip(t *testing.T) {
	for name, cfg := range codecConfigs() {
		t.Run(name, func(t *testing.T) {
			m := New(cfg)
			blocks := exerciseMachine(m)
			if m.HartCount() > 1 {
				exerciseHarts(m, blocks)
			}
			st := m.SaveState()

			data, err := EncodeState(st)
			if err != nil {
				t.Fatalf("EncodeState: %v", err)
			}
			st2, err := DecodeState(data)
			if err != nil {
				t.Fatalf("DecodeState: %v", err)
			}
			data2, err := EncodeState(st2)
			if err != nil {
				t.Fatalf("re-EncodeState: %v", err)
			}
			if !bytes.Equal(data, data2) {
				t.Fatalf("re-encode differs: %d vs %d bytes", len(data), len(data2))
			}

			// Continuations from the in-memory state and the decoded
			// state must be indistinguishable.
			a := New(st.Config())
			if err := a.LoadState(st); err != nil {
				t.Fatalf("LoadState(original): %v", err)
			}
			b := New(st2.Config())
			if err := b.LoadState(st2); err != nil {
				t.Fatalf("LoadState(decoded): %v", err)
			}
			for i := 0; i < 8; i++ {
				ba, bb := a.Malloc(48), b.Malloc(48)
				if ba != bb {
					t.Fatalf("continuation alloc %d: %#x vs %#x", i, ba, bb)
				}
				a.StoreWord(ba, uint64(i))
				b.StoreWord(bb, uint64(i))
				if va, vb := a.LoadWord(blocks[1]), b.LoadWord(blocks[1]); va != vb {
					t.Fatalf("continuation load %d: %#x vs %#x", i, va, vb)
				}
			}
			if a.stats != b.stats {
				t.Fatalf("continuation stats diverge:\n%+v\n%+v", a.stats, b.stats)
			}
			fa, errA := EncodeState(a.SaveState())
			fb, errB := EncodeState(b.SaveState())
			if errA != nil || errB != nil {
				t.Fatalf("continuation encode: %v / %v", errA, errB)
			}
			if !bytes.Equal(fa, fb) {
				t.Fatal("continuation states diverge after identical ops")
			}
			if err := a.CheckInvariants(); err != nil {
				t.Fatalf("restored machine invariants: %v", err)
			}
		})
	}
}

// TestStateCodecRejectsDamage: any truncation and any single-byte
// corruption of a valid snapshot must be rejected with an error (the
// frame CRC covers every byte), and must never panic.
func TestStateCodecRejectsDamage(t *testing.T) {
	m := New(Config{LineSize: 64})
	exerciseMachine(m)
	data, err := EncodeState(m.SaveState())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut += 41 {
		if _, err := DecodeState(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < len(data); i += 97 {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x20
		if _, err := DecodeState(bad); err == nil {
			t.Fatalf("byte flip at %d accepted", i)
		}
	}
}

// TestStateCodecRejectsBadPayload: structural validation must catch
// corruption even when the frame checksum is recomputed over it — the
// defense does not rest on the CRC alone.
func TestStateCodecRejectsBadPayload(t *testing.T) {
	m := New(Config{LineSize: 64})
	exerciseMachine(m)
	data, err := EncodeState(m.SaveState())
	if err != nil {
		t.Fatal(err)
	}
	_, payload, err := wire.OpenFrame(SnapshotMagic, data)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(p []byte)
	}{
		// Config.LineSize is the first field (offset 0, int64): 7 is
		// not a power of two.
		{"bad line size", func(p []byte) { p[0] = 7 }},
		// Config.Harts is the second field: beyond MaxHarts.
		{"bad hart count", func(p []byte) { p[8] = 200 }},
		{"truncated payload", func(p []byte) {}}, // handled below
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := append([]byte(nil), payload...)
			tc.mutate(p)
			if tc.name == "truncated payload" {
				p = p[:len(p)/2]
			}
			reframed := wire.SealFrame(SnapshotMagic, 1, p)
			if _, err := DecodeState(reframed); err == nil {
				t.Fatal("corrupt payload accepted")
			}
		})
	}
	if _, err := DecodeState(wire.SealFrame(SnapshotMagic, 99, payload)); err == nil {
		t.Fatal("unknown version accepted")
	}
}

// TestEncodeStateRefusesProcessLocalState: a live trap handler or
// fault injector cannot be serialized and must be reported, not
// silently dropped.
func TestEncodeStateRefusesProcessLocalState(t *testing.T) {
	m := New(Config{LineSize: 64})
	m.SetTrap(func(core.Event) {})
	if _, err := EncodeState(m.SaveState()); err == nil {
		t.Fatal("state with a trap handler encoded")
	}
}

func BenchmarkStateEncode(b *testing.B) {
	m := New(Config{LineSize: 64})
	exerciseMachine(m)
	st := m.SaveState()
	data, err := EncodeState(st)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeState(st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStateDecode(b *testing.B) {
	m := New(Config{LineSize: 64})
	exerciseMachine(m)
	data, err := EncodeState(m.SaveState())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeState(data); err != nil {
			b.Fatal(err)
		}
	}
}
