package sim

import (
	"fmt"

	"memfwd/internal/cache"
	"memfwd/internal/core"
	"memfwd/internal/cpu"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
)

// MachineState is a full-machine snapshot: every byte of functional
// state (pages, fbits, allocator maps) and every cycle of timing state
// (pipeline cursors, cache tags, MSHRs, provenance window), deep-copied
// so the snapshot is immutable and reusable. Restoring it into any
// Machine built with the same Config — on any shard, in any order,
// any number of times — resumes execution deterministically: the
// continuation is instruction-for-instruction and byte-for-byte
// identical to the source machine's (DESIGN.md §10).
//
// Two kinds of field are deliberately process-local values rather than
// deep copies:
//
//   - trap and faultInj travel verbatim. The trap handler is captured
//     at its CURRENT value — fireTrap masks the handler to nil for the
//     handler's duration, so a machine suspended inside a user-level
//     forwarding trap restores with the mask intact, preserving the
//     no-recursive-trap invariant. LoadState re-installs the injector
//     through SetFaultInjector so its hooks rewire onto the target's
//     Mem and Fwd.
//   - Observability attachments (tracer, heat map, span table, sample
//     series) are NOT part of the state: they belong to whichever
//     machine is running. LoadState keeps the target's attachments and
//     restores only the sampler's interval accounting so sample
//     boundaries stay aligned with the restored instruction counts.
type MachineState struct {
	cfg Config

	mem   *mem.MemorySnapshot
	alloc *mem.AllocatorSnapshot
	fwd   core.ForwarderSnapshot
	l1    *cache.CacheSnapshot
	l2    *cache.CacheSnapshot
	mm    cache.MainMemorySnapshot
	pipe  *cpu.PipelineSnapshot

	trap     core.TrapHandler
	faultInj *fault.Injector

	sites   []string
	curSite int

	mispredictCtr uint32
	depCtr        uint32

	prov      provTable
	provLimit int

	phases      []string
	sampleEvery uint64
	sampleNext  uint64
	samplePrev  Stats

	stats     Stats
	finalized bool

	// Extra-hart timing state (harts 1..P-1; empty on a single-hart
	// machine). Hart 0 is the primary state above. The save-side
	// contract pins curHart to 0, so restore needs no cursor.
	harts    []hartSnap
	cohInvL1 uint64
	cohInvL2 uint64
}

// hartSnap is one extra hart's private timing state in a snapshot.
type hartSnap struct {
	pipe          *cpu.PipelineSnapshot
	l1, l2        *cache.CacheSnapshot
	mispredictCtr uint32
	depCtr        uint32
	prov          provTable
	stats         Stats
}

// Config returns the configuration the state was captured under; a
// target machine must be built with an equal Config.
func (st *MachineState) Config() Config { return st.cfg }

// SaveState captures a deep snapshot of the machine. The machine must
// be quiescent (no guest operation in flight); serve sessions guarantee
// this by parking the runner at an operation boundary first. A
// multi-hart machine must additionally be parked on hart 0 — the
// scheduler restores the guest hart after every service step, so any
// operation boundary satisfies this.
func (m *Machine) SaveState() *MachineState {
	if m.curHart != 0 {
		panic(fmt.Sprintf("sim: SaveState on hart %d (must be parked on hart 0)", m.curHart))
	}
	var harts []hartSnap
	for i := 1; i < len(m.harts); i++ {
		h := &m.harts[i]
		harts = append(harts, hartSnap{
			pipe:          h.pipe.Snapshot(),
			l1:            h.l1.Snapshot(),
			l2:            h.l2.Snapshot(),
			mispredictCtr: h.mispredictCtr,
			depCtr:        h.depCtr,
			prov:          h.ptrProv.clone(),
			stats:         h.stats,
		})
	}
	return &MachineState{
		harts:         harts,
		cohInvL1:      m.cohInvL1,
		cohInvL2:      m.cohInvL2,
		cfg:           m.cfg,
		mem:           m.Mem.Snapshot(),
		alloc:         m.Alloc.Snapshot(),
		fwd:           m.Fwd.Snapshot(),
		l1:            m.L1.Snapshot(),
		l2:            m.L2.Snapshot(),
		mm:            m.MM.Snapshot(),
		pipe:          m.Pipe.Snapshot(),
		trap:          m.trap,
		faultInj:      m.faultInj,
		sites:         append([]string(nil), m.sites...),
		curSite:       m.curSite,
		mispredictCtr: m.mispredictCtr,
		depCtr:        m.depCtr,
		prov:          m.ptrProv.clone(),
		provLimit:     m.provLimit,
		phases:        append([]string(nil), m.phases...),
		sampleEvery:   m.sampleEvery,
		sampleNext:    m.sampleNext,
		samplePrev:    m.samplePrev,
		stats:         m.stats,
		finalized:     m.finalized,
	}
}

// LoadState restores a snapshot into m, which must have been built
// with the same Config (validated; the pipeline and cache layers
// re-validate their own geometry). The state is deep-copied in, so the
// same MachineState can seed several machines. See the MachineState
// doc for what travels verbatim versus what stays with the target.
func (m *Machine) LoadState(st *MachineState) error {
	if m.cfg != st.cfg {
		return fmt.Errorf("sim: LoadState config mismatch: machine %+v, state %+v", m.cfg, st.cfg)
	}
	m.Mem.Restore(st.mem)
	m.Alloc.Restore(st.alloc)
	m.Fwd.Restore(st.fwd)
	if err := m.L1.Restore(st.l1); err != nil {
		return fmt.Errorf("sim: LoadState: %w", err)
	}
	if err := m.L2.Restore(st.l2); err != nil {
		return fmt.Errorf("sim: LoadState: %w", err)
	}
	m.MM.Restore(st.mm)
	if err := m.Pipe.Restore(st.pipe); err != nil {
		return fmt.Errorf("sim: LoadState: %w", err)
	}
	m.trap = st.trap
	m.SetFaultInjector(st.faultInj) // rewires hooks onto m.Mem / m.Fwd
	m.sites = append(m.sites[:0], st.sites...)
	m.curSite = st.curSite
	m.mispredictCtr = st.mispredictCtr
	m.depCtr = st.depCtr
	m.ptrProv = st.prov.clone()
	m.provLimit = st.provLimit
	m.phases = append(m.phases[:0], st.phases...)
	m.sampleEvery = st.sampleEvery
	m.sampleNext = st.sampleNext
	m.samplePrev = st.samplePrev
	m.stats = st.stats
	m.finalized = st.finalized
	m.hopScratch = m.hopScratch[:0]
	m.chainScratch = m.chainScratch[:0]
	// Extra harts: the cfg equality check above guarantees the counts
	// match (Harts is part of Config). The restored machine parks on
	// hart 0, mirroring the save-side contract.
	m.curHart = 0
	for i := range st.harts {
		h := &m.harts[i+1]
		src := &st.harts[i]
		if err := h.pipe.Restore(src.pipe); err != nil {
			return fmt.Errorf("sim: LoadState hart %d: %w", i+1, err)
		}
		if err := h.l1.Restore(src.l1); err != nil {
			return fmt.Errorf("sim: LoadState hart %d: %w", i+1, err)
		}
		if err := h.l2.Restore(src.l2); err != nil {
			return fmt.Errorf("sim: LoadState hart %d: %w", i+1, err)
		}
		h.mispredictCtr = src.mispredictCtr
		h.depCtr = src.depCtr
		h.ptrProv = src.prov.clone()
		h.stats = src.stats
	}
	m.cohInvL1 = st.cohInvL1
	m.cohInvL2 = st.cohInvL2
	return nil
}
