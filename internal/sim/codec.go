package sim

// Binary codec for MachineState: the serialized form behind the serve
// plane's durable session store. The encoding is canonical (encoding
// equal states yields identical bytes) and round-trip exact — decode
// rebuilds a MachineState whose LoadState continuation is
// byte-identical to the source machine's. The whole payload travels
// inside a wire file frame (magic + version + CRC32-C), so torn or
// flipped bytes are rejected before field decoding even starts, and
// every structural invariant is re-validated during decode so a
// corrupt-but-CRC-valid input still comes back as an error, never a
// panic or a malformed machine.
//
// Two MachineState fields cannot be serialized and make EncodeState
// fail: a non-nil trap handler and a non-nil fault injector are live
// process-local values (a Go closure and a hook-wired injector).
// Serve sessions install neither, so every session state is encodable.

import (
	"errors"
	"fmt"
	"sort"

	"memfwd/internal/cache"
	"memfwd/internal/cpu"
	"memfwd/internal/mem"
	"memfwd/internal/wire"
)

// SnapshotMagic identifies a serialized MachineState file frame.
const SnapshotMagic = "MFWDSNAP"

// snapshotVersion is bumped on any incompatible layout change.
const snapshotVersion = 1

// maxProvCap bounds a decoded provenance table's slot count; beyond
// this a length is treated as corruption, not an allocation request.
const maxProvCap = 1 << 26

// EncodeState serializes st into a self-validating file frame.
func EncodeState(st *MachineState) ([]byte, error) {
	if st.trap != nil {
		return nil, errors.New("sim: cannot encode a state with a live trap handler")
	}
	if st.faultInj != nil {
		return nil, errors.New("sim: cannot encode a state with a fault injector installed")
	}
	var w wire.Writer
	encodeConfig(&w, st.cfg)
	st.mem.EncodeWire(&w)
	st.alloc.EncodeWire(&w)
	w.Int(st.fwd.HopLimit)
	w.Int(st.fwd.ChainCap)
	w.U64(st.fwd.CycleFalseAlarms)
	w.U64(st.fwd.CyclesDetected)
	w.Int(st.fwd.MaxChain)
	st.l1.EncodeWire(&w)
	st.l2.EncodeWire(&w)
	st.mm.EncodeWire(&w)
	st.pipe.EncodeWire(&w)
	encodeStrings(&w, st.sites)
	w.Int(st.curSite)
	w.U32(st.mispredictCtr)
	w.U32(st.depCtr)
	encodeProv(&w, &st.prov)
	w.Int(st.provLimit)
	encodeStrings(&w, st.phases)
	w.U64(st.sampleEvery)
	w.U64(st.sampleNext)
	encodeStats(&w, &st.samplePrev)
	encodeStats(&w, &st.stats)
	w.Bool(st.finalized)
	w.U32(uint32(len(st.harts)))
	for i := range st.harts {
		h := &st.harts[i]
		h.pipe.EncodeWire(&w)
		h.l1.EncodeWire(&w)
		h.l2.EncodeWire(&w)
		w.U32(h.mispredictCtr)
		w.U32(h.depCtr)
		encodeProv(&w, &h.prov)
		encodeStats(&w, &h.stats)
	}
	w.U64(st.cohInvL1)
	w.U64(st.cohInvL2)
	return wire.SealFrame(SnapshotMagic, snapshotVersion, w.Bytes()), nil
}

// DecodeState deserializes a frame produced by EncodeState, validating
// framing, checksum, and every structural invariant. On success,
// sim.New(st.Config()) cannot panic and LoadState into it succeeds.
func DecodeState(data []byte) (st *MachineState, err error) {
	version, payload, err := wire.OpenFrame(SnapshotMagic, data)
	if err != nil {
		return nil, fmt.Errorf("sim: decode state: %w", err)
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("sim: snapshot version %d, want %d", version, snapshotVersion)
	}
	r := wire.NewReader(payload)
	st = &MachineState{}
	st.cfg = decodeConfig(r)
	if r.Err() != nil {
		return nil, fmt.Errorf("sim: decode state: %w", r.Err())
	}
	st.mem = mem.DecodeMemorySnapshot(r)
	st.alloc = mem.DecodeAllocatorSnapshot(r)
	st.fwd.HopLimit = r.Int()
	st.fwd.ChainCap = r.Int()
	st.fwd.CycleFalseAlarms = r.U64()
	st.fwd.CyclesDetected = r.U64()
	st.fwd.MaxChain = r.Int()
	st.l1 = cache.DecodeCacheSnapshot(r)
	st.l2 = cache.DecodeCacheSnapshot(r)
	st.mm = cache.DecodeMainMemorySnapshot(r)
	st.pipe = cpu.DecodePipelineSnapshot(r)
	st.sites = decodeStrings(r)
	st.curSite = r.Int()
	if r.Err() == nil && (len(st.sites) < 1 || st.curSite < 0 || st.curSite >= len(st.sites)) {
		return nil, fmt.Errorf("sim: decode state: curSite %d outside %d sites", st.curSite, len(st.sites))
	}
	st.mispredictCtr = r.U32()
	st.depCtr = r.U32()
	st.prov = decodeProv(r)
	st.provLimit = r.Int()
	if r.Err() == nil && st.provLimit < 1 {
		return nil, fmt.Errorf("sim: decode state: provLimit %d invalid", st.provLimit)
	}
	st.phases = decodeStrings(r)
	st.sampleEvery = r.U64()
	st.sampleNext = r.U64()
	st.samplePrev = decodeStats(r)
	st.stats = decodeStats(r)
	st.finalized = r.Bool()
	nHarts := r.Count(1)
	if r.Err() == nil && nHarts != st.cfg.Harts-1 {
		return nil, fmt.Errorf("sim: decode state: %d extra harts, config says %d", nHarts, st.cfg.Harts-1)
	}
	st.harts = make([]hartSnap, nHarts)
	for i := range st.harts {
		h := &st.harts[i]
		h.pipe = cpu.DecodePipelineSnapshot(r)
		h.l1 = cache.DecodeCacheSnapshot(r)
		h.l2 = cache.DecodeCacheSnapshot(r)
		h.mispredictCtr = r.U32()
		h.depCtr = r.U32()
		h.prov = decodeProv(r)
		h.stats = decodeStats(r)
		if r.Err() != nil {
			return nil, fmt.Errorf("sim: decode state: hart %d: %w", i+1, r.Err())
		}
	}
	st.cohInvL1 = r.U64()
	st.cohInvL2 = r.U64()
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("sim: decode state: %w", err)
	}
	return st, nil
}

func encodeConfig(w *wire.Writer, cfg Config) {
	w.Int(cfg.LineSize)
	w.Int(cfg.Harts)
	w.Int(cfg.L1Size)
	w.Int(cfg.L1Assoc)
	w.Int(cfg.L1MSHRs)
	w.Int(cfg.L2Size)
	w.Int(cfg.L2Assoc)
	w.Int(cfg.L2MSHRs)
	w.I64(cfg.L1HitLat)
	w.I64(cfg.L2HitLat)
	w.I64(cfg.MemLatency)
	w.Int(cfg.MemBusBytesPerCycle)
	w.Int(cfg.FillBytesPerCycle)
	w.Int(cfg.CPU.Width)
	w.Int(cfg.CPU.ROB)
	w.Int(cfg.CPU.StoreBuffer)
	w.I64(cfg.CPU.DepPenalty)
	w.I64(cfg.PerHopCost)
	w.Int(cfg.TrapOverheadInst)
	w.Bool(cfg.PerfectForwarding)
	w.Int(cfg.DepEvery)
	w.I64(cfg.DepLat)
	w.U64(uint64(cfg.HeapBase))
	w.U64(cfg.HeapLimit)
	if cfg.Tiers == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.U32(uint32(len(cfg.Tiers.Latencies)))
	for _, l := range cfg.Tiers.Latencies {
		w.I64(l)
	}
	w.U32(uint32(len(cfg.Tiers.Capacities)))
	for _, c := range cfg.Tiers.Capacities {
		w.U64(c)
	}
}

// decodeConfig reads a Config and validates that handing it to New
// cannot panic: it must already be in normalized (defaulted) form —
// every saved config is, because SaveState captures the machine's
// effective config — with valid cache geometry, hart count, heap
// alignment, and tier spec.
func decodeConfig(r *wire.Reader) Config {
	var cfg Config
	cfg.LineSize = r.Int()
	cfg.Harts = r.Int()
	cfg.L1Size = r.Int()
	cfg.L1Assoc = r.Int()
	cfg.L1MSHRs = r.Int()
	cfg.L2Size = r.Int()
	cfg.L2Assoc = r.Int()
	cfg.L2MSHRs = r.Int()
	cfg.L1HitLat = r.I64()
	cfg.L2HitLat = r.I64()
	cfg.MemLatency = r.I64()
	cfg.MemBusBytesPerCycle = r.Int()
	cfg.FillBytesPerCycle = r.Int()
	cfg.CPU.Width = r.Int()
	cfg.CPU.ROB = r.Int()
	cfg.CPU.StoreBuffer = r.Int()
	cfg.CPU.DepPenalty = r.I64()
	cfg.PerHopCost = r.I64()
	cfg.TrapOverheadInst = r.Int()
	cfg.PerfectForwarding = r.Bool()
	cfg.DepEvery = r.Int()
	cfg.DepLat = r.I64()
	cfg.HeapBase = mem.Addr(r.U64())
	cfg.HeapLimit = r.U64()
	if r.Bool() {
		t := &mem.TierConfig{}
		nl := r.Count(8)
		t.Latencies = make([]int64, nl)
		for i := range t.Latencies {
			t.Latencies[i] = r.I64()
		}
		nc := r.Count(8)
		t.Capacities = make([]uint64, nc)
		for i := range t.Capacities {
			t.Capacities[i] = r.U64()
		}
		if r.Err() == nil {
			if err := mem.ValidateTierConfig(t); err != nil {
				r.Fail(err)
				return cfg
			}
		}
		cfg.Tiers = t
	}
	if r.Err() != nil {
		return cfg
	}
	if cfg != cfg.withDefaults() {
		r.Failf("sim: config not in normalized form: %+v", cfg)
		return cfg
	}
	if cfg.Harts > MaxHarts {
		r.Failf("sim: config Harts %d exceeds maximum %d", cfg.Harts, MaxHarts)
		return cfg
	}
	if err := validateCacheGeometry("L1", cfg.L1Size, cfg.LineSize, cfg.L1Assoc); err != nil {
		r.Fail(err)
		return cfg
	}
	if err := validateCacheGeometry("L2", cfg.L2Size, cfg.LineSize, cfg.L2Assoc); err != nil {
		r.Fail(err)
		return cfg
	}
	if cfg.HeapBase&mem.WordMask != 0 {
		r.Failf("sim: config heap base %#x not word-aligned", cfg.HeapBase)
	}
	return cfg
}

// validateCacheGeometry mirrors cache.New's construction panics as
// errors, checking divisors before dividing.
func validateCacheGeometry(name string, size, lineSize, assoc int) error {
	if lineSize <= 0 || lineSize&(lineSize-1) != 0 {
		return fmt.Errorf("sim: config %s line size %d not a positive power of two", name, lineSize)
	}
	if size <= 0 || assoc <= 0 {
		return fmt.Errorf("sim: config %s geometry size=%d assoc=%d invalid", name, size, assoc)
	}
	nLines := size / lineSize
	if nLines <= 0 || nLines%assoc != 0 {
		return fmt.Errorf("sim: config %s %d lines not divisible into %d ways", name, nLines, assoc)
	}
	if nSets := nLines / assoc; nSets&(nSets-1) != 0 {
		return fmt.Errorf("sim: config %s set count %d not a power of two", name, nSets)
	}
	return nil
}

func encodeStrings(w *wire.Writer, ss []string) {
	w.U32(uint32(len(ss)))
	for _, s := range ss {
		w.String(s)
	}
}

func decodeStrings(r *wire.Reader) []string {
	n := r.Count(4)
	if n == 0 {
		return nil
	}
	ss := make([]string, n)
	for i := range ss {
		ss[i] = r.String()
	}
	return ss
}

// encodeProv emits the provenance table as its slot capacity plus the
// live entries sorted by key. Sorting makes the encoding canonical:
// the in-memory slot layout depends on insertion history, but layout
// never affects lookups, sweeps, or timing, so only the entry set is
// state worth carrying.
func encodeProv(w *wire.Writer, t *provTable) {
	w.Int(len(t.slots))
	ents := make([]provSlot, 0, t.n)
	for _, s := range t.slots {
		if s.key != 0 {
			ents = append(ents, s)
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].key < ents[j].key })
	w.U32(uint32(len(ents)))
	for _, s := range ents {
		w.U64(s.key - 1) // stored keys are logical key + 1
		w.U64(s.ent.base)
		w.I64(s.ent.ready)
	}
}

// decodeProv rebuilds a provenance table by reinserting the sorted
// entries. The load-factor check guarantees the rebuild never grows
// the table, so the capacity (and therefore the re-encoded bytes)
// round-trips exactly.
func decodeProv(r *wire.Reader) provTable {
	capSlots := r.Int()
	if r.Err() != nil {
		return provTable{}
	}
	if capSlots < 8 || capSlots > maxProvCap || capSlots&(capSlots-1) != 0 {
		r.Failf("sim: provenance capacity %d invalid", capSlots)
		return provTable{}
	}
	n := r.Count(24)
	if r.Err() == nil && 4*n > 3*capSlots {
		r.Failf("sim: %d provenance entries overfill %d slots", n, capSlots)
		return provTable{}
	}
	t := makeProvTable(capSlots)
	prev := uint64(0)
	for i := 0; i < n; i++ {
		k := r.U64()
		if r.Err() != nil {
			return t
		}
		if i > 0 && k <= prev {
			r.Failf("sim: provenance keys out of order (%#x after %#x)", k, prev)
			return t
		}
		if k+1 == 0 {
			r.Failf("sim: provenance key %#x out of range", k)
			return t
		}
		prev = k
		t.put(k, ptrEntry{base: r.U64(), ready: r.I64()})
	}
	return t
}

func encodeStats(w *wire.Writer, s *Stats) {
	w.I64(s.Cycles)
	for _, v := range s.Slots {
		w.U64(v)
	}
	w.U64(s.Instructions)
	w.U64(s.Loads)
	w.U64(s.Stores)
	cache.EncodeStats(w, &s.L1)
	cache.EncodeStats(w, &s.L2)
	w.U64(s.BytesL1L2)
	w.U64(s.BytesL2Mem)
	for _, v := range s.LoadsFwdByHops {
		w.U64(v)
	}
	for _, v := range s.StoresFwdByHops {
		w.U64(v)
	}
	w.U64(s.LoadCycles)
	w.U64(s.LoadFwdCycles)
	w.U64(s.StoreCycles)
	w.U64(s.StoreFwdCycles)
	w.U64(s.DepViolations)
	w.U64(s.DepBypasses)
	w.U64(s.Traps)
	w.U64(s.CycleFalseAlarms)
	w.U64(s.CyclesDetected)
	w.U64(s.HeapPeak)
	w.U64(s.HeapAllocated)
	w.Int(s.PagesTouched)
}

func decodeStats(r *wire.Reader) Stats {
	var s Stats
	s.Cycles = r.I64()
	for i := range s.Slots {
		s.Slots[i] = r.U64()
	}
	s.Instructions = r.U64()
	s.Loads = r.U64()
	s.Stores = r.U64()
	s.L1 = cache.DecodeStats(r)
	s.L2 = cache.DecodeStats(r)
	s.BytesL1L2 = r.U64()
	s.BytesL2Mem = r.U64()
	for i := range s.LoadsFwdByHops {
		s.LoadsFwdByHops[i] = r.U64()
	}
	for i := range s.StoresFwdByHops {
		s.StoresFwdByHops[i] = r.U64()
	}
	s.LoadCycles = r.U64()
	s.LoadFwdCycles = r.U64()
	s.StoreCycles = r.U64()
	s.StoreFwdCycles = r.U64()
	s.DepViolations = r.U64()
	s.DepBypasses = r.U64()
	s.Traps = r.U64()
	s.CycleFalseAlarms = r.U64()
	s.CyclesDetected = r.U64()
	s.HeapPeak = r.U64()
	s.HeapAllocated = r.U64()
	s.PagesTouched = r.Int()
	return s
}
