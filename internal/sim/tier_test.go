package sim

import (
	"testing"

	"memfwd/internal/mem"
)

// coldSweep loads n addresses one page apart starting at base — every
// access a cold miss serviced by main memory — and returns the cycles
// the sweep took.
func coldSweep(m *Machine, base mem.Addr, n int) int64 {
	t0 := m.Now()
	for i := 0; i < n; i++ {
		m.LoadWord(base + mem.Addr(i)*4096)
	}
	return m.Now() - t0
}

// TestTierLatencyCharged proves the tiered main memory charges the
// owning tier's miss penalty per line: on a 2-tier machine the heap is
// near memory (tier 0) and costs exactly what the same sweep costs on
// an untiered machine with the same base latency, while a sweep over
// the far tier's window costs more.
func TestTierLatencyCharged(t *testing.T) {
	flat := New(Config{})
	tiered := New(Config{Tiers: mem.DefaultTierConfig(2, 70)})
	tt := tiered.Tiers()
	if tt == nil || tt.N() != 2 {
		t.Fatalf("tiered machine has no tier geometry: %v", tt)
	}
	if flat.Tiers() != nil {
		t.Fatal("untiered machine grew tier geometry")
	}

	// Each sweep runs on a fresh machine so earlier sweeps' cache state
	// cannot skew the comparison.
	const n = 64
	tcfg := mem.DefaultTierConfig(2, 70)
	fresh := func() *Machine { return New(Config{Tiers: tcfg}) }
	heapBase := flat.Config().HeapBase
	flatHeap := coldSweep(flat, heapBase, n)
	nearHeap := coldSweep(tiered, heapBase, n)
	if nearHeap != flatHeap {
		t.Fatalf("near-tier heap sweep %d cycles != flat sweep %d: tiering must not tax the heap", nearHeap, flatHeap)
	}

	farBase, _ := tt.Window(tt.Slowest())
	farSweep := coldSweep(fresh(), farBase, n)
	if farSweep <= nearHeap {
		t.Fatalf("far-window sweep %d cycles not slower than near heap sweep %d", farSweep, nearHeap)
	}

	nearBase, _ := tt.Window(0)
	nearWin := coldSweep(fresh(), nearBase, n)
	if nearWin != nearHeap {
		t.Fatalf("tier-0 window sweep %d cycles != heap sweep %d: both are near memory", nearWin, nearHeap)
	}
}

// TestTierSnapshotRoundTrip: a tiered machine snapshots and restores
// like any other — the tier geometry is config, not state, so the
// restored machine rebuilds it from the shared TierConfig pointer.
func TestTierSnapshotRoundTrip(t *testing.T) {
	cfg := Config{Tiers: mem.DefaultTierConfig(2, 70)}
	m := New(cfg)
	a := m.Malloc(64)
	m.StoreWord(a, 42)
	fastBase, _ := m.Tiers().Window(0)
	m.StoreWord(fastBase, 7) // data in a tier window travels too

	st := m.SaveState()
	r := New(st.Config())
	if err := r.LoadState(st); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if got := r.LoadWord(a); got != 42 {
		t.Fatalf("heap word after restore = %d", got)
	}
	if got := r.LoadWord(fastBase); got != 7 {
		t.Fatalf("fast-window word after restore = %d", got)
	}
	if r.Tiers() == nil || r.Tiers().TierOf(fastBase) != 0 {
		t.Fatal("restored machine lost tier geometry")
	}
}
