package sim

import (
	"testing"

	"memfwd/internal/core"
	"memfwd/internal/mem"
)

func newM() *Machine { return New(Config{}) }

// relocateRaw moves nWords from src to tgt and plants forwarding
// addresses, bypassing the timed ISA path (test setup helper).
func relocateRaw(m *Machine, src, tgt mem.Addr, nWords int) {
	for i := 0; i < nWords; i++ {
		s := src + mem.Addr(i*8)
		d := tgt + mem.Addr(i*8)
		v, _ := m.Fwd.UnforwardedRead(s)
		m.Fwd.UnforwardedWrite(d, v, false)
		m.Fwd.UnforwardedWrite(s, uint64(d), true)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	m := newM()
	a := m.Malloc(64)
	m.StoreWord(a, 12345)
	m.Store32(a+8, 99)
	m.Store16(a+12, 7)
	m.Store8(a+14, 3)
	if got := m.LoadWord(a); got != 12345 {
		t.Fatalf("word: %d", got)
	}
	if got := m.Load32(a + 8); got != 99 {
		t.Fatalf("u32: %d", got)
	}
	if got := m.Load16(a + 12); got != 7 {
		t.Fatalf("u16: %d", got)
	}
	if got := m.Load8(a + 14); got != 3 {
		t.Fatalf("u8: %d", got)
	}
}

func TestLoadThroughForwarding(t *testing.T) {
	m := newM()
	src := m.Malloc(32)
	tgt := m.Malloc(32)
	m.StoreWord(src, 555)
	m.Store32(src+12, 77)
	relocateRaw(m, src, tgt, 4)
	if got := m.LoadWord(src); got != 555 {
		t.Fatalf("forwarded word = %d", got)
	}
	if got := m.Load32(src + 12); got != 77 {
		t.Fatalf("forwarded subword = %d", got)
	}
	st := m.Finalize()
	if st.LoadsFwdByHops[1] != 2 {
		t.Fatalf("forwarded-load histogram: %v", st.LoadsFwdByHops[:3])
	}
}

func TestStoreThroughForwardingLandsAtNewLocation(t *testing.T) {
	m := newM()
	src := m.Malloc(16)
	tgt := m.Malloc(16)
	relocateRaw(m, src, tgt, 2)
	m.StoreWord(src+8, 4242)
	// The value lives at the new location...
	if v, _ := m.Fwd.UnforwardedRead(tgt + 8); v != 4242 {
		t.Fatalf("new location holds %d", v)
	}
	// ...and the old location still holds the forwarding address.
	if v, fb := m.Fwd.UnforwardedRead(src + 8); !fb || v != uint64(tgt+8) {
		t.Fatalf("old location (%#x,%v)", v, fb)
	}
	st := m.Finalize()
	if st.StoresFwdByHops[1] != 1 {
		t.Fatalf("forwarded-store histogram: %v", st.StoresFwdByHops[:3])
	}
}

func TestForwardedLoadIsSlower(t *testing.T) {
	run := func(forwarded bool) int64 {
		m := newM()
		src := m.Malloc(16)
		tgt := m.Malloc(16)
		m.StoreWord(src, 1)
		if forwarded {
			relocateRaw(m, src, tgt, 2)
		}
		for i := 0; i < 2000; i++ {
			m.LoadWord(src)
			m.Inst(2)
		}
		return m.Finalize().Cycles
	}
	plain, fwd := run(false), run(true)
	if fwd <= plain {
		t.Fatalf("forwarded run (%d) should be slower than plain (%d)", fwd, plain)
	}
}

func TestPerfectForwardingHasNoOverhead(t *testing.T) {
	run := func(perfect bool) (*Stats, uint64) {
		cfg := Config{PerfectForwarding: perfect}
		m := New(cfg)
		src := m.Malloc(16)
		tgt := m.Malloc(16)
		m.StoreWord(src, 7)
		relocateRaw(m, src, tgt, 2)
		var sum uint64
		for i := 0; i < 500; i++ {
			sum += m.LoadWord(src)
		}
		return m.Finalize(), sum
	}
	imp, sumImp := run(false)
	perf, sumPerf := run(true)
	if sumImp != sumPerf {
		t.Fatalf("functional mismatch: %d vs %d", sumImp, sumPerf)
	}
	if perf.LoadsForwarded() != 0 {
		t.Fatalf("perfect mode reported %d forwarded loads", perf.LoadsForwarded())
	}
	if perf.Cycles >= imp.Cycles {
		t.Fatalf("perfect (%d) should beat real forwarding (%d)", perf.Cycles, imp.Cycles)
	}
	if perf.LoadFwdCycles != 0 {
		t.Fatalf("perfect mode accumulated forwarding latency %d", perf.LoadFwdCycles)
	}
}

func TestTrapFires(t *testing.T) {
	m := newM()
	src := m.Malloc(16)
	tgt := m.Malloc(16)
	m.StoreWord(src, 9)
	relocateRaw(m, src, tgt, 2)
	var events []core.Event
	m.SetTrap(func(ev core.Event) { events = append(events, ev) })
	site := m.Site("test.site")
	m.SetSite(site)
	m.LoadWord(src)
	m.LoadWord(tgt) // direct access: no trap
	if len(events) != 1 {
		t.Fatalf("trap count %d", len(events))
	}
	ev := events[0]
	if ev.Kind != core.Load || ev.Hops != 1 || ev.Initial != src || mem.WordAlign(ev.Final) != tgt {
		t.Fatalf("event %+v", ev)
	}
	if m.SiteName(ev.Site) != "test.site" {
		t.Fatalf("site %q", m.SiteName(ev.Site))
	}
	if st := m.Finalize(); st.Traps != 1 {
		t.Fatalf("stats.Traps = %d", st.Traps)
	}
}

func TestTrapHandlerCanRepairPointer(t *testing.T) {
	// The on-the-fly pointer-update tool of Section 3.2: the handler
	// rewrites the stray pointer so forwarding happens once.
	m := newM()
	holder := m.Malloc(8) // guest variable holding the stray pointer
	src := m.Malloc(16)
	tgt := m.Malloc(16)
	m.StoreWord(src, 31)
	relocateRaw(m, src, tgt, 2)
	m.StorePtr(holder, src)
	m.SetTrap(func(ev core.Event) {
		m.StorePtr(holder, mem.WordAlign(ev.Final))
	})
	for i := 0; i < 5; i++ {
		p := m.LoadPtr(holder)
		if v := m.LoadWord(p); v != 31 {
			t.Fatalf("iter %d: %d", i, v)
		}
	}
	st := m.Finalize()
	if st.Traps != 1 {
		t.Fatalf("traps = %d, want exactly 1 after repair", st.Traps)
	}
	if st.LoadsForwarded() != 1 {
		t.Fatalf("forwarded loads = %d, want 1", st.LoadsForwarded())
	}
}

func TestFinalAddrAndPtrEqual(t *testing.T) {
	m := newM()
	src := m.Malloc(16)
	tgt := m.Malloc(16)
	relocateRaw(m, src, tgt, 2)
	if fa := m.FinalAddr(src + 4); fa != tgt+4 {
		t.Fatalf("FinalAddr = %#x, want %#x", fa, tgt+4)
	}
	if !m.PtrEqual(src, tgt) {
		t.Fatal("old and new pointers should compare equal by final address")
	}
	other := m.Malloc(16)
	if m.PtrEqual(src, other) {
		t.Fatal("distinct objects compared equal")
	}
	if m.FinalAddr(0) != 0 {
		t.Fatal("null pointer must stay null")
	}
}

func TestISAOpsTimedButFunctional(t *testing.T) {
	m := newM()
	a := m.Malloc(8)
	m.UnforwardedWrite(a, 0xBEEF, true)
	if !m.ReadFBit(a) {
		t.Fatal("fbit not set")
	}
	v, fb := m.UnforwardedRead(a)
	if v != 0xBEEF || !fb {
		t.Fatalf("(%#x,%v)", v, fb)
	}
	st := m.Finalize()
	if st.Loads < 2 || st.Stores < 1 {
		t.Fatalf("ISA ops not charged: loads %d stores %d", st.Loads, st.Stores)
	}
}

func TestFreeReleasesForwardingChain(t *testing.T) {
	m := newM()
	a := m.Malloc(24)
	b := m.Malloc(24)
	relocateRaw(m, a, b, 3)
	m.Free(a)
	if m.Alloc.Live(a) || m.Alloc.Live(b) {
		t.Fatal("free did not release the chain")
	}
	if m.Alloc.BytesLive != 0 {
		t.Fatalf("bytes live %d", m.Alloc.BytesLive)
	}
}

func TestSlotPartitionInvariant(t *testing.T) {
	m := newM()
	base := m.Malloc(64 * 1024)
	for i := 0; i < 5000; i++ {
		m.Inst(3)
		m.LoadWord(base + mem.Addr((i*67)%8000*8))
		if i%4 == 0 {
			m.StoreWord(base+mem.Addr((i*131)%8000*8), uint64(i))
		}
	}
	st := m.Finalize()
	var slots uint64
	for _, s := range st.Slots {
		slots += s
	}
	if slots != uint64(st.Cycles)*uint64(m.Pipe.Config().Width) {
		t.Fatalf("slots %d != cycles*width %d", slots, uint64(st.Cycles)*4)
	}
}

func TestPrefetchReducesCycles(t *testing.T) {
	// Sequential sweep over a large array with next-line prefetch
	// should beat the same sweep without it.
	run := func(prefetch bool) int64 {
		m := New(Config{LineSize: 64})
		base := m.Malloc(1 << 20)
		for i := 0; i < 20000; i++ {
			a := base + mem.Addr(i*8)
			if prefetch && i%8 == 0 {
				m.Prefetch(a+512, 8)
			}
			m.LoadWord(a)
			m.Inst(2)
		}
		return m.Finalize().Cycles
	}
	np, p := run(false), run(true)
	if p >= np {
		t.Fatalf("prefetch run (%d) not faster than baseline (%d)", p, np)
	}
}

func TestStatsBandwidthLinks(t *testing.T) {
	m := newM()
	base := m.Malloc(1 << 20)
	for i := 0; i < 10000; i++ {
		m.LoadWord(base + mem.Addr(i*128))
	}
	st := m.Finalize()
	if st.BytesL1L2 == 0 || st.BytesL2Mem == 0 {
		t.Fatalf("bandwidth: l1l2=%d l2mem=%d", st.BytesL1L2, st.BytesL2Mem)
	}
	if st.BytesL1L2 != st.L1.BytesFromNext+st.L1.BytesToNext {
		t.Fatal("L1L2 bandwidth mismatch")
	}
}

func TestSiteInterning(t *testing.T) {
	m := newM()
	a := m.Site("x")
	b := m.Site("y")
	if a == b {
		t.Fatal("distinct names same id")
	}
	if m.Site("x") != a {
		t.Fatal("re-interning changed id")
	}
}

func TestLineSizeSweepChangesMissCounts(t *testing.T) {
	// A dense sequential sweep should miss less with longer lines.
	missRate := func(lineSize int) uint64 {
		m := New(Config{LineSize: lineSize})
		base := m.Malloc(1 << 18)
		for i := 0; i < 20000; i++ {
			m.LoadWord(base + mem.Addr(i*8))
		}
		st := m.Finalize()
		return st.L1.FullMisses[0]
	}
	m32, m128 := missRate(32), missRate(128)
	if m128 >= m32 {
		t.Fatalf("sequential sweep: full misses(128B)=%d should be < full misses(32B)=%d", m128, m32)
	}
}

func TestTrapOverheadCharged(t *testing.T) {
	run := func(handler bool) uint64 {
		m := New(Config{TrapOverheadInst: 50})
		src := m.Malloc(8)
		tgt := m.Malloc(8)
		relocateRaw(m, src, tgt, 1)
		if handler {
			m.SetTrap(func(core.Event) {})
		}
		for i := 0; i < 100; i++ {
			m.LoadWord(src)
		}
		return m.Finalize().Instructions
	}
	without, with := run(false), run(true)
	if with < without+100*50 {
		t.Fatalf("trap overhead not charged: %d vs %d", with, without)
	}
}

func TestForwardingCyclePanicsAtMachineLevel(t *testing.T) {
	m := New(Config{})
	a := m.Malloc(8)
	b := m.Malloc(8)
	// Software bug: a cycle a -> b -> a.
	m.UnforwardedWrite(a, uint64(b), true)
	m.UnforwardedWrite(b, uint64(a), true)
	defer func() {
		if recover() == nil {
			t.Fatal("cyclic chain did not abort the guest")
		}
		if m.Fwd.CyclesDetected == 0 {
			t.Fatal("cycle not recorded by the accurate check")
		}
	}()
	m.LoadWord(a)
}

func TestSnapshotDoesNotFinalize(t *testing.T) {
	m := New(Config{})
	a := m.Malloc(8)
	m.StoreWord(a, 1)
	s1 := m.Snapshot()
	for i := 0; i < 100; i++ {
		m.LoadWord(a)
		m.Inst(2)
	}
	s2 := m.Snapshot()
	if s2.Cycles <= s1.Cycles || s2.Loads <= s1.Loads {
		t.Fatalf("snapshot did not advance: %d->%d cycles", s1.Cycles, s2.Cycles)
	}
	st := m.Finalize()
	if st.Cycles < s2.Cycles {
		t.Fatal("finalize went backwards")
	}
}

func TestPerHopCostRaisesForwardedLatency(t *testing.T) {
	lat := func(cost int64) uint64 {
		m := New(Config{PerHopCost: cost})
		src := m.Malloc(8)
		tgt := m.Malloc(8)
		relocateRaw(m, src, tgt, 1)
		for i := 0; i < 200; i++ {
			m.LoadWord(src)
		}
		st := m.Finalize()
		return st.LoadFwdCycles
	}
	if cheap, dear := lat(1), lat(64); dear <= cheap {
		t.Fatalf("hop cost ignored: %d vs %d", cheap, dear)
	}
}

func TestDeterministicCycleCountsAcrossConfigs(t *testing.T) {
	run := func() int64 {
		m := New(Config{LineSize: 64})
		base := m.Malloc(1 << 16)
		for i := 0; i < 3000; i++ {
			m.LoadWord(base + mem.Addr((i*97)%8000*8))
			m.Inst(1)
		}
		return m.Finalize().Cycles
	}
	if run() != run() {
		t.Fatal("nondeterministic timing")
	}
}

func TestConfigAccessorAndSiteNameBounds(t *testing.T) {
	m := New(Config{LineSize: 64})
	if m.Config().LineSize != 64 {
		t.Fatal("Config accessor")
	}
	if m.SiteName(-1) != "<bad site>" || m.SiteName(99) != "<bad site>" {
		t.Fatal("SiteName bounds")
	}
	if m.SiteName(0) != "<unknown>" {
		t.Fatal("default site name")
	}
}

func TestStoresForwardedHelper(t *testing.T) {
	m := newM()
	src := m.Malloc(8)
	tgt := m.Malloc(8)
	relocateRaw(m, src, tgt, 1)
	m.StoreWord(src, 1)
	m.StoreWord(tgt, 2)
	st := m.Finalize()
	if st.StoresForwarded() != 1 {
		t.Fatalf("StoresForwarded = %d", st.StoresForwarded())
	}
}

func TestClampHopsHistogramTail(t *testing.T) {
	// A chain longer than the histogram caps into the last bucket.
	m := newM()
	addrs := make([]mem.Addr, 20)
	for i := range addrs {
		addrs[i] = m.Malloc(8)
	}
	m.Mem.WriteWord(addrs[len(addrs)-1], 7)
	for i := 0; i < len(addrs)-1; i++ {
		m.Fwd.UnforwardedWrite(addrs[i], uint64(addrs[i+1]), true)
	}
	if v := m.LoadWord(addrs[0]); v != 7 {
		t.Fatalf("long chain read %d", v)
	}
	st := m.Finalize()
	if st.LoadsFwdByHops[16] != 1 { // maxHops bucket
		t.Fatalf("tail bucket: %v", st.LoadsFwdByHops[14:])
	}
	if st.CycleFalseAlarms == 0 {
		t.Fatal("long chain should have tripped the hop-limit false alarm")
	}
}

func TestPrefetchClampsLineCount(t *testing.T) {
	m := newM()
	a := m.Malloc(256)
	m.Prefetch(a, 0) // clamped to 1
	st := m.Finalize()
	if st.Instructions == 0 {
		t.Fatal("prefetch instruction not charged")
	}
}

func TestLoadPanicsOnBadSize(t *testing.T) {
	m := newM()
	a := m.Malloc(8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for size 3")
		}
	}()
	m.Load(a, 3)
}

func TestStorePanicsOnUnaligned(t *testing.T) {
	m := newM()
	a := m.Malloc(16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unaligned store")
		}
	}()
	m.Store(a+1, 1, 4)
}
