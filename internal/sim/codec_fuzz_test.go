package sim

import (
	"bytes"
	"testing"

	"memfwd/internal/mem"
)

// FuzzSnapshotDecode: arbitrary bytes must produce an error or a fully
// valid state — never a panic, and never a silently-wrong machine. The
// corpus is seeded with valid snapshots plus truncations and
// single-byte corruptions of them, so the fuzzer starts at the
// boundary of validity instead of deep in garbage.
func FuzzSnapshotDecode(f *testing.F) {
	for _, cfg := range []Config{
		{LineSize: 64},
		{LineSize: 32, Harts: 2, Tiers: mem.DefaultTierConfig(2, 70)},
	} {
		m := New(cfg)
		blocks := exerciseMachine(m)
		if m.HartCount() > 1 {
			exerciseHarts(m, blocks)
		}
		data, err := EncodeState(m.SaveState())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		for _, cut := range []int{0, 1, len(data) / 3, len(data) - 1} {
			f.Add(append([]byte(nil), data[:cut]...))
		}
		for _, i := range []int{0, 9, 13, 25, len(data) / 2, len(data) - 2} {
			bad := append([]byte(nil), data...)
			bad[i] ^= 0x80
			f.Add(bad)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeState(data)
		if err != nil {
			return
		}
		// A successful decode must be usable: New on its config cannot
		// panic, LoadState must succeed, and re-encoding must
		// reproduce the input exactly (the encoding is canonical, so
		// any divergence means the decoder dropped or invented state).
		reenc, err := EncodeState(st)
		if err != nil {
			t.Fatalf("decoded state failed to re-encode: %v", err)
		}
		if !bytes.Equal(reenc, data) {
			t.Fatalf("re-encode differs from accepted input (%d vs %d bytes)", len(reenc), len(data))
		}
		m := New(st.Config())
		if err := m.LoadState(st); err != nil {
			t.Fatalf("decoded state failed to load: %v", err)
		}
	})
}
