package sim

import (
	"fmt"

	"memfwd/internal/mem"
)

// CheckInvariants verifies the machine's internal bookkeeping
// invariants that outside packages cannot see — currently the
// pointer-provenance table behind addrReady/recordPtr. It is intended
// to be callable from any test (the differential harness runs it after
// every run), including mid-run: the only mutation it performs is a
// provenance sweep, which is timing-invisible by construction (see
// evictProv).
//
// Checked invariants:
//
//   - structural consistency: the occupancy count matches the number
//     of occupied slots, and every occupied slot's entry is reachable
//     through get (linear probing never strands an entry).
//   - entry sanity: every entry's key is derived from its recorded
//     base (key == base>>8) and the base lies within the heap, since
//     recordPtr filters out non-heap values.
//   - eviction timing bound: a forced sweep removes exactly the
//     entries whose ready time is at or below the pipeline's dispatch
//     floor, and every survivor is strictly above it. Entries at or
//     below the floor can never again delay an issue, so this is the
//     precise condition under which eviction cannot perturb timing.
func (m *Machine) CheckInvariants() error {
	occupied := 0
	below := 0
	floor := m.Pipe.DispatchFloor()
	for i := range m.ptrProv.slots {
		s := m.ptrProv.slots[i]
		if s.key == 0 {
			continue
		}
		occupied++
		k := s.key - 1
		e, ok := m.ptrProv.get(k)
		if !ok {
			return fmt.Errorf("sim: prov entry %#x stranded (unreachable by probe)", k)
		}
		if e.base>>8 != k {
			return fmt.Errorf("sim: prov entry key %#x inconsistent with base %#x", k, e.base)
		}
		if a := mem.Addr(e.base); a < m.cfg.HeapBase || a >= m.cfg.HeapBase+mem.Addr(m.cfg.HeapLimit) {
			return fmt.Errorf("sim: prov entry base %#x outside heap", e.base)
		}
		if e.ready <= floor {
			below++
		}
	}
	if occupied != m.ptrProv.n {
		return fmt.Errorf("sim: prov occupancy %d != recorded count %d", occupied, m.ptrProv.n)
	}
	before := m.ptrProv.n
	m.evictProv()
	if got, want := before-m.ptrProv.n, below; got != want {
		return fmt.Errorf("sim: prov sweep evicted %d entries, %d were at or below dispatch floor %d",
			got, want, floor)
	}
	for i := range m.ptrProv.slots {
		s := m.ptrProv.slots[i]
		if s.key != 0 && s.ent.ready <= floor {
			return fmt.Errorf("sim: prov entry base %#x survived sweep with ready %d <= floor %d",
				s.ent.base, s.ent.ready, floor)
		}
	}
	return nil
}
