// Package sim assembles the full simulated machine: tagged memory
// (internal/mem), the forwarding mechanism (internal/core), the cache
// hierarchy (internal/cache), and the out-of-order pipeline
// (internal/cpu). Guest programs — the paper's eight applications — run
// against the Machine API: Inst for non-memory instructions, typed
// loads/stores that are transparently forwarded, block prefetch, the
// three ISA extensions with their real timing cost, and malloc/free.
//
// Every effect the paper evaluates flows through here: forwarding hops
// become dependent cache accesses (polluting the cache with old
// locations, Section 5.4); relocation code pays instruction and memory
// cost; data-dependence speculation sees initial and final addresses;
// and the perfect-forwarding mode of Figure 10 resolves relocated data
// with zero overhead.
package sim

import (
	"fmt"

	"memfwd/internal/cache"
	"memfwd/internal/core"
	"memfwd/internal/cpu"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
)

// Config describes one machine instance. Zero fields take defaults from
// DefaultConfig.
type Config struct {
	LineSize int // bytes; the paper sweeps 32, 64, 128 (and 256 for BH)

	// Harts is the number of hardware threads sharing the machine's
	// tagged memory (0 and 1 both mean a single hart). Each hart gets a
	// private pipeline and L1+L2 hierarchy over the shared main memory;
	// see hart.go for the coherence rules. Hart 0 is the guest mutator;
	// the scheduler (internal/sched) drives the others.
	Harts int

	L1Size, L1Assoc, L1MSHRs int
	L2Size, L2Assoc, L2MSHRs int
	L1HitLat, L2HitLat       int64
	MemLatency               int64
	MemBusBytesPerCycle      int
	FillBytesPerCycle        int

	CPU cpu.Config

	// PerHopCost is the extra latency of dereferencing one forwarding
	// hop beyond the cache access itself (the exception/trap mechanics
	// of Section 3.2).
	PerHopCost int64

	// TrapOverheadInst is the fixed instruction cost of entering and
	// leaving a user-level forwarding trap (Section 3.2's lightweight
	// trapping mechanism), charged whenever a handler runs, on top of
	// whatever the handler itself executes. Zero takes the default.
	TrapOverheadInst int

	// PerfectForwarding models Figure 10's "Perf" scheme: all
	// references to relocated objects resolve directly at their new
	// addresses with no forwarding traffic or cost.
	PerfectForwarding bool

	// DepEvery/DepLat model dependence chains among plain instructions:
	// every DepEvery-th instruction takes DepLat cycles, producing the
	// inst-stall component of Figure 5.
	DepEvery int
	DepLat   int64

	// Heap geometry.
	HeapBase  mem.Addr
	HeapLimit uint64

	// Tiers, when non-nil, partitions the physical address space into
	// latency tiers (mem.NewTiers): main memory charges the owning
	// tier's miss penalty per line instead of the flat MemLatency, and
	// the heap falls in the slowest tier. Carried by pointer so Config
	// stays comparable (snapshot restore requires it); the realized
	// geometry is a pure function of this spec, so machines rebuilt
	// from snapshots agree on every address's tier.
	Tiers *mem.TierConfig
}

// DefaultConfig returns the baseline machine: a 4-wide out-of-order
// core with an 8KB L1 and 64KB L2. The hierarchy is deliberately about
// one-sixteenth the size of the paper's so that the reproduction's
// scaled-down working sets (hundreds of KB rather than several MB)
// exceed the secondary cache the same way the paper's applications
// exceeded theirs; all ratios that drive the figures are preserved.
func DefaultConfig() Config {
	return Config{
		LineSize:            32,
		L1Size:              8 * 1024,
		L1Assoc:             2,
		L1MSHRs:             8,
		L2Size:              64 * 1024,
		L2Assoc:             4,
		L2MSHRs:             16,
		L1HitLat:            1,
		L2HitLat:            12,
		MemLatency:          70,
		MemBusBytesPerCycle: 8,
		FillBytesPerCycle:   16,
		CPU:                 cpu.DefaultConfig(),
		PerHopCost:          4,
		TrapOverheadInst:    12,
		DepEvery:            6,
		DepLat:              2,
		HeapBase:            0x1000_0000,
		HeapLimit:           1 << 30,
	}
}

const maxHops = 16 // histogram buckets for forwarded references

// Stats is the full measurement record for one run; the figure
// harnesses derive every series from it.
type Stats struct {
	Cycles       int64
	Slots        [4]uint64 // busy, load stall, store stall, inst stall
	Instructions uint64
	Loads        uint64
	Stores       uint64

	L1, L2 cache.Stats
	// Link bandwidth in bytes (Figure 6b).
	BytesL1L2  uint64
	BytesL2Mem uint64

	// Forwarding behaviour (Figure 10c): histogram of references by
	// hops taken, index 0 unused.
	LoadsFwdByHops  [maxHops + 1]uint64
	StoresFwdByHops [maxHops + 1]uint64

	// Latency decomposition (Figure 10d), in cycles.
	LoadCycles     uint64 // total load latency
	LoadFwdCycles  uint64 // portion spent dereferencing forwarding addresses
	StoreCycles    uint64
	StoreFwdCycles uint64

	DepViolations uint64
	DepBypasses   uint64

	Traps            uint64
	CycleFalseAlarms uint64
	CyclesDetected   uint64

	// Memory footprint (Table 1's space overhead).
	HeapPeak      uint64
	HeapAllocated uint64
	PagesTouched  int
}

// LoadsForwarded returns the number of loads that took at least one hop.
func (s *Stats) LoadsForwarded() uint64 {
	var n uint64
	for _, v := range s.LoadsFwdByHops[1:] {
		n += v
	}
	return n
}

// StoresForwarded returns the number of stores that took at least one hop.
func (s *Stats) StoresForwarded() uint64 {
	var n uint64
	for _, v := range s.StoresFwdByHops[1:] {
		n += v
	}
	return n
}

// Machine is one simulated processor + memory system instance. It is
// not safe for concurrent use; each experiment builds its own.
type Machine struct {
	cfg Config

	Mem   *mem.Memory
	Alloc *mem.Allocator
	Fwd   *core.Forwarder
	L1    *cache.Cache
	L2    *cache.Cache
	MM    *cache.MainMemory
	Pipe  *cpu.Pipeline

	trap     core.TrapHandler
	sites    []string
	curSite  int
	faultInj *fault.Injector

	// Down-counters driving the instruction-mix policy in Inst: branch
	// mispredicts every 48th op, a dependence-chain latency every
	// DepEvery-th. Counting down replaces two integer modulos on the
	// per-instruction path with two decrements.
	mispredictCtr uint32
	depCtr        uint32

	hopScratch   []mem.Addr
	hopFn        core.HopFunc // pre-bound append-to-hopScratch, so resolve never allocates
	chainScratch []mem.Addr   // reused by Free's chain enumeration

	// ptrProv tracks pointer provenance: the completion time of the
	// load that most recently produced each heap-pointer value. A later
	// load whose address derives from that value cannot issue earlier —
	// this serializes pointer-chasing chains exactly as real hardware
	// dependences do. Keyed by value>>8 (objects are well under 256
	// bytes); each entry keeps the exact base for validation.
	//
	// The table is bounded by a clock-style sweep (see recordPtr): once
	// it reaches provLimit entries, every entry whose ready time is at
	// or below the pipeline's dispatch floor is evicted. Such entries
	// can never again raise a minIssue constraint, so eviction is
	// invisible to timing — outputs stay byte-identical — while the
	// table stops growing linearly with run length.
	ptrProv   provTable
	provLimit int

	// tiers is the realized tier geometry when cfg.Tiers is set (nil
	// otherwise). The machine uses it only for immutable latency
	// lookups; residency accounting belongs to the tiering daemon.
	tiers *mem.Tiers

	// Observability (see obs.go). All nil/zero when disabled, leaving
	// the hot paths with a single nil check each.
	tracer      *obs.Tracer
	phases      []string
	series      *obs.Series
	sampleEvery uint64
	sampleNext  uint64
	samplePrev  Stats
	heat        *obs.HeatMap
	spans       *obs.SpanTable

	stats     Stats
	finalized bool

	// Multi-hart state (nil/zero on a single-hart machine, so the
	// single-hart hot paths pay one nil check). harts[curHart]'s
	// mutable scalars are stale while that hart is current — the live
	// values are the machine fields above; SetHart keeps them in sync.
	harts    []hartState
	curHart  int
	cohInvL1 uint64
	cohInvL2 uint64
}

// withDefaults returns cfg with every zero field replaced by its
// default — exactly the normalization New applies before building. The
// snapshot codec validates against the normalized form, so a decoded
// Config that passes validation can always be handed to New safely.
func (cfg Config) withDefaults() Config {
	d := DefaultConfig()
	if cfg.LineSize == 0 {
		cfg.LineSize = d.LineSize
	}
	if cfg.L1Size == 0 {
		cfg.L1Size = d.L1Size
	}
	if cfg.L1Assoc == 0 {
		cfg.L1Assoc = d.L1Assoc
	}
	if cfg.L1MSHRs == 0 {
		cfg.L1MSHRs = d.L1MSHRs
	}
	if cfg.L2Size == 0 {
		cfg.L2Size = d.L2Size
	}
	if cfg.L2Assoc == 0 {
		cfg.L2Assoc = d.L2Assoc
	}
	if cfg.L2MSHRs == 0 {
		cfg.L2MSHRs = d.L2MSHRs
	}
	if cfg.L1HitLat == 0 {
		cfg.L1HitLat = d.L1HitLat
	}
	if cfg.L2HitLat == 0 {
		cfg.L2HitLat = d.L2HitLat
	}
	if cfg.MemLatency == 0 {
		cfg.MemLatency = d.MemLatency
	}
	if cfg.MemBusBytesPerCycle == 0 {
		cfg.MemBusBytesPerCycle = d.MemBusBytesPerCycle
	}
	if cfg.FillBytesPerCycle == 0 {
		cfg.FillBytesPerCycle = d.FillBytesPerCycle
	}
	if cfg.PerHopCost == 0 {
		cfg.PerHopCost = d.PerHopCost
	}
	if cfg.TrapOverheadInst == 0 {
		cfg.TrapOverheadInst = d.TrapOverheadInst
	}
	if cfg.DepEvery == 0 {
		cfg.DepEvery = d.DepEvery
	}
	if cfg.DepLat == 0 {
		cfg.DepLat = d.DepLat
	}
	if cfg.HeapBase == 0 {
		cfg.HeapBase = d.HeapBase
	}
	if cfg.HeapLimit == 0 {
		cfg.HeapLimit = d.HeapLimit
	}
	if cfg.Harts < 1 {
		cfg.Harts = 1
	}
	return cfg
}

// New builds a machine from cfg (zero fields defaulted).
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	if cfg.Harts > MaxHarts {
		panic(fmt.Sprintf("sim: Harts %d exceeds the supported maximum %d", cfg.Harts, MaxHarts))
	}

	m := mem.New()
	mm := cache.NewMainMemory(cfg.MemLatency, cfg.MemBusBytesPerCycle, cfg.LineSize)
	var tiers *mem.Tiers
	if cfg.Tiers != nil {
		tiers = mem.NewTiers(cfg.Tiers)
		mm.TierLatency = tiers.LineLatency
	}
	l2 := cache.New(cache.Config{
		Name: "L2", SizeBytes: cfg.L2Size, LineSize: cfg.LineSize,
		Assoc: cfg.L2Assoc, HitLatency: cfg.L2HitLat, MSHRs: cfg.L2MSHRs,
		TransferBytesPerCycle: cfg.FillBytesPerCycle,
	}, mm)
	l1 := cache.New(cache.Config{
		Name: "L1", SizeBytes: cfg.L1Size, LineSize: cfg.LineSize,
		Assoc: cfg.L1Assoc, HitLatency: cfg.L1HitLat, MSHRs: cfg.L1MSHRs,
		TransferBytesPerCycle: cfg.FillBytesPerCycle,
	}, l2)

	mach := &Machine{
		cfg:   cfg,
		Mem:   m,
		Alloc: mem.NewAllocator(m, cfg.HeapBase, cfg.HeapLimit),
		Fwd:   core.NewForwarder(m),
		L1:    l1,
		L2:    l2,
		MM:    mm,
		Pipe:  cpu.New(cfg.CPU),
		tiers: tiers,
		sites: []string{"<unknown>"},
	}
	mach.provLimit = provLimitFor(mach.Pipe.Config())
	mach.ptrProv = newProvTable(mach.provLimit)
	mach.mispredictCtr = mispredictEvery
	mach.depCtr = uint32(cfg.DepEvery)
	mach.hopFn = func(wa mem.Addr, hop int) {
		mach.hopScratch = append(mach.hopScratch, wa)
	}
	if cfg.Harts > 1 {
		mach.buildHarts(cfg)
	}
	return mach
}

// provLimitFor sizes the provenance map's sweep trigger. Entries stay
// unevictable only while their producing load's completion time is
// ahead of the dispatch floor, a window bounded by the ROB; anything
// comfortably above that keeps sweeps rare (amortized O(1) per record)
// while still bounding the map.
func provLimitFor(c cpu.Config) int {
	limit := 4096
	if r := 4 * c.ROB; r > limit {
		limit = r
	}
	return limit
}

// Config returns the effective configuration.
func (m *Machine) Config() Config { return m.cfg }

// Tiers returns the machine's realized tier geometry, or nil on an
// untiered machine.
func (m *Machine) Tiers() *mem.Tiers { return m.tiers }

// LineSize returns the primary-cache line size in bytes (the guest
// Machine interface's layout-target geometry).
func (m *Machine) LineSize() int { return m.L1.LineSize() }

// Allocator exposes the raw heap allocator for untimed uses: arena
// carving by relocation pools and pre-run heap aging.
func (m *Machine) Allocator() *mem.Allocator { return m.Alloc }

// Memory exposes the tagged memory substrate (untimed test support).
func (m *Machine) Memory() *mem.Memory { return m.Mem }

// Forwarder exposes the dereference mechanism (untimed test support).
func (m *Machine) Forwarder() *core.Forwarder { return m.Fwd }

// SetTrap installs (or clears, with nil) the user-level forwarding trap
// handler. Handlers run as guest code: machine operations they perform
// are charged normally.
func (m *Machine) SetTrap(h core.TrapHandler) { m.trap = h }

// FaultInjector returns the installed fault injector, or nil.
func (m *Machine) FaultInjector() *fault.Injector { return m.faultInj }

// SetFaultInjector installs (or, with nil, removes) a fault injector:
// the tagged memory's Unforwarded_Write path filters through it, and
// every forwarding hop visits its core.resolve.hop point. Purely
// functional — installing an injector that never fires changes no
// timing and no results.
func (m *Machine) SetFaultInjector(in *fault.Injector) {
	m.faultInj = in
	if in == nil {
		m.Mem.SetWriteFault(nil)
		m.Fwd.FaultHook = nil
		return
	}
	m.Mem.SetWriteFault(in.FilterWrite)
	m.Fwd.FaultHook = func(mem.Addr, int) { in.Step(fault.ResolveHop) }
}

// Site interns a static reference-site name (the analogue of a PC) and
// returns its id for SetSite.
func (m *Machine) Site(name string) int {
	for i, s := range m.sites {
		if s == name {
			return i
		}
	}
	m.sites = append(m.sites, name)
	return len(m.sites) - 1
}

// SetSite marks subsequent references as coming from site id.
func (m *Machine) SetSite(id int) { m.curSite = id }

// SiteName resolves a site id back to its name.
func (m *Machine) SiteName(id int) string {
	if id < 0 || id >= len(m.sites) {
		return "<bad site>"
	}
	return m.sites[id]
}

// mispredictEvery is the instruction period of the modelled branch
// mispredict in Inst.
const mispredictEvery = 48

// Inst accounts n non-memory instructions. Most execute in one cycle;
// every DepEvery-th carries a dependence-chain latency, and roughly
// every 48th models a mispredicted branch — together these produce the
// inst-stall component of Figure 5. A mispredict takes precedence when
// both periods land on the same instruction (both counters still
// reload, exactly as the modular arithmetic this replaces behaved).
func (m *Machine) Inst(n int) {
	for i := 0; i < n; i++ {
		m.mispredictCtr--
		m.depCtr--
		switch {
		case m.mispredictCtr == 0:
			m.mispredictCtr = mispredictEvery
			if m.depCtr == 0 {
				m.depCtr = uint32(m.cfg.DepEvery)
			}
			// Branch mispredict: the front end refills for several
			// cycles before dispatch resumes.
			m.Pipe.Op(2)
			m.Pipe.Bubble(5)
		case m.depCtr == 0:
			m.depCtr = uint32(m.cfg.DepEvery)
			m.Pipe.Op(m.cfg.DepLat)
		default:
			m.Pipe.Op(1)
		}
	}
	m.maybeSample()
}

// resolve follows the forwarding chain for address a, returning the
// final address and the hop word addresses (shared scratch slice, valid
// until the next resolve). In perfect-forwarding mode the chain is
// followed functionally but reported as zero hops with no hop traffic.
func (m *Machine) resolve(a mem.Addr) (final mem.Addr, hops []mem.Addr) {
	m.hopScratch = m.hopScratch[:0]
	var err error
	if m.cfg.PerfectForwarding {
		final, _, err = m.Fwd.Resolve(a, nil)
		if err != nil {
			panic(fmt.Sprintf("sim: %v (initial %#x)", err, a))
		}
		return final, nil
	}
	final, _, err = m.Fwd.Resolve(a, m.hopFn)
	if err != nil {
		panic(fmt.Sprintf("sim: %v (initial %#x)", err, a))
	}
	return final, m.hopScratch
}

// ptrEntry records who produced a pointer value and when it is ready.
type ptrEntry struct {
	base  uint64
	ready int64
}

// recordPtr notes that a load produced value v (a plausible heap
// pointer) at cycle ready. When the provenance map reaches its bound, a
// clock sweep evicts every entry already at or below the dispatch
// floor — entries that can never again delay an issue (see ptrProv).
func (m *Machine) recordPtr(v uint64, ready int64) {
	if v == 0 || mem.Addr(v) < m.cfg.HeapBase || mem.Addr(v) >= m.cfg.HeapBase+mem.Addr(m.cfg.HeapLimit) {
		return
	}
	if m.ptrProv.n >= m.provLimit {
		m.evictProv()
	}
	m.ptrProv.put(v>>8, ptrEntry{base: v, ready: ready})
}

// evictProv drops provenance entries whose ready time the dispatch
// stream has already passed. Timing-invisible by construction: Load,
// Prefetch, and timedRawLoad apply provenance as max(dispatch, ready),
// and dispatch never moves backwards.
func (m *Machine) evictProv() {
	m.ptrProv.sweep(m.Pipe.DispatchFloor())
}

// addrReady returns the earliest cycle at which the address a is
// available, given pointer provenance: if a falls within 256 bytes of a
// recently loaded pointer value, the access depends on that load.
func (m *Machine) addrReady(a mem.Addr) int64 {
	if m.ptrProv.n == 0 {
		return 0
	}
	u := uint64(a)
	if e, ok := m.ptrProv.get(u >> 8); ok && u >= e.base && u-e.base < 256 {
		return e.ready
	}
	if k := u >> 8; k > 0 {
		if e, ok := m.ptrProv.get(k - 1); ok && u >= e.base && u-e.base < 256 {
			return e.ready
		}
	}
	return 0
}

func clampHops(h int) int {
	if h > maxHops {
		return maxHops
	}
	return h
}

// Load performs a size-byte load (1, 2, 4, or 8) at address a, following
// any forwarding chain, and returns the zero-extended value.
func (m *Machine) Load(a mem.Addr, size uint) uint64 {
	final, hops := m.resolve(a)
	v, err := m.Mem.ReadData(final, size)
	if err != nil {
		panic(fmt.Sprintf("sim: load %d @ %#x: %v", size, a, err))
	}

	var fwdLat int64
	info := m.Pipe.Load(
		cpu.Range{Lo: uint64(a), Hi: uint64(a) + uint64(size)},
		cpu.Range{Lo: uint64(final), Hi: uint64(final) + uint64(size)},
		m.addrReady(a),
		func(issue int64) int64 {
			t := issue
			for _, wa := range hops {
				r, _ := m.L1.Access(uint64(wa), cache.Load, t)
				t = r + m.cfg.PerHopCost
			}
			fwdLat = t - issue
			r, _ := m.L1.Access(uint64(final), cache.Load, t)
			return r
		},
	)
	lat := uint64(info.Ready - info.Issue)
	m.stats.LoadCycles += lat
	m.stats.LoadFwdCycles += uint64(fwdLat)
	if size == 8 {
		m.recordPtr(v, info.Ready)
	}
	if n := len(hops); n > 0 {
		m.stats.LoadsFwdByHops[clampHops(n)]++
		if m.tracer != nil {
			m.tracer.Emit(obs.Event{Cycle: info.Ready, Kind: obs.KForwardHop,
				Class: uint8(core.Load), Addr: uint64(a), Addr2: uint64(final), N: uint64(n)})
		}
		m.fireTrap(core.Load, a, final, n)
	}
	if m.heat != nil {
		m.heat.RecordAccess(uint64(a), uint64(final), false, len(hops))
	}
	m.maybeSample()
	return v
}

// Store performs a size-byte store at address a, following any
// forwarding chain so the write lands on the relocated data.
func (m *Machine) Store(a mem.Addr, v uint64, size uint) {
	final, hops := m.resolve(a)
	if err := m.Mem.WriteData(final, v, size); err != nil {
		panic(fmt.Sprintf("sim: store %d @ %#x: %v", size, a, err))
	}
	m.snoopStore(final)

	nHops := len(hops)
	var fwdLat, ordLat int64
	// The drain callback runs synchronously inside Pipe.Store, so the
	// shared hop scratch slice is still valid.
	m.Pipe.Store(
		cpu.Range{Lo: uint64(a), Hi: uint64(a) + uint64(size)},
		cpu.Range{Lo: uint64(final), Hi: uint64(final) + uint64(size)},
		func(start int64) int64 {
			t := start
			for _, wa := range hops {
				r, _ := m.L1.Access(uint64(wa), cache.Load, t)
				t = r + m.cfg.PerHopCost
			}
			fwdLat = t - start
			r, _ := m.L1.Access(uint64(final), cache.Store, t)
			ordLat = r - t
			return r
		},
	)
	m.stats.StoreCycles += uint64(fwdLat + ordLat)
	m.stats.StoreFwdCycles += uint64(fwdLat)
	if nHops > 0 {
		m.stats.StoresFwdByHops[clampHops(nHops)]++
		if m.tracer != nil {
			m.tracer.Emit(obs.Event{Cycle: m.Pipe.Now(), Kind: obs.KForwardHop,
				Class: uint8(core.Store), Addr: uint64(a), Addr2: uint64(final), N: uint64(nHops)})
		}
		m.fireTrap(core.Store, a, final, nHops)
	}
	if m.heat != nil {
		m.heat.RecordAccess(uint64(a), uint64(final), true, nHops)
	}
	m.maybeSample()
}

func (m *Machine) fireTrap(kind core.Kind, initial, final mem.Addr, hops int) {
	if m.trap == nil {
		return
	}
	m.stats.Traps++
	if m.tracer != nil {
		m.tracer.Emit(obs.Event{Cycle: m.Pipe.Now(), Kind: obs.KTrap,
			Class: uint8(kind), Addr: uint64(initial), Addr2: uint64(final), N: uint64(hops)})
	}
	var t0 int64
	if m.heat != nil {
		t0 = m.Pipe.Now()
	}
	h := m.trap
	m.trap = nil // traps do not recurse
	m.Inst(m.cfg.TrapOverheadInst)
	h(core.Event{Kind: kind, Site: m.curSite, Initial: initial, Final: final, Hops: hops})
	m.trap = h
	if m.heat != nil {
		m.heat.RecordTrap(uint64(initial), m.Pipe.Now()-t0)
	}
}

// Convenience accessors for common widths.

// LoadWord loads the 64-bit word at a (pointer-sized, like a C pointer
// or long dereference).
func (m *Machine) LoadWord(a mem.Addr) uint64 { return m.Load(a, 8) }

// StoreWord stores the 64-bit word v at a.
func (m *Machine) StoreWord(a mem.Addr, v uint64) { m.Store(a, v, 8) }

// LoadPtr loads a guest pointer stored at a.
func (m *Machine) LoadPtr(a mem.Addr) mem.Addr { return mem.Addr(m.Load(a, 8)) }

// StorePtr stores guest pointer p at a.
func (m *Machine) StorePtr(a mem.Addr, p mem.Addr) { m.Store(a, uint64(p), 8) }

// Load32 loads a 32-bit value at a.
func (m *Machine) Load32(a mem.Addr) uint32 { return uint32(m.Load(a, 4)) }

// Store32 stores a 32-bit value at a.
func (m *Machine) Store32(a mem.Addr, v uint32) { m.Store(a, uint64(v), 4) }

// Load16 loads a 16-bit value at a.
func (m *Machine) Load16(a mem.Addr) uint16 { return uint16(m.Load(a, 2)) }

// Store16 stores a 16-bit value at a.
func (m *Machine) Store16(a mem.Addr, v uint16) { m.Store(a, uint64(v), 2) }

// Load8 loads one byte at a.
func (m *Machine) Load8(a mem.Addr) uint8 { return uint8(m.Load(a, 1)) }

// Store8 stores one byte at a.
func (m *Machine) Store8(a mem.Addr, v uint8) { m.Store(a, uint64(v), 1) }

// Prefetch issues one block-prefetch instruction covering lines
// consecutive cache lines starting at the line containing a
// (Section 5.2 assumes block prefetching is supported).
func (m *Machine) Prefetch(a mem.Addr, lines int) {
	if lines < 1 {
		lines = 1
	}
	ls := uint64(m.L1.LineSize())
	m.Pipe.Prefetch(m.addrReady(a), func(at int64) {
		base := m.L1.LineAddr(uint64(a))
		for i := 0; i < lines; i++ {
			m.L1.PrefetchLine(base+uint64(i)*ls, at)
		}
	})
}

// --- ISA extensions with timing (Figure 3) --------------------------

// ReadFBit is the Read_FBit instruction: it costs a (non-forwarded)
// load of the word's tag.
func (m *Machine) ReadFBit(a mem.Addr) bool {
	wa := mem.WordAlign(a)
	m.timedRawLoad(wa)
	return m.Fwd.ReadFBit(wa)
}

// UnforwardedRead is the Unforwarded_Read instruction: one load with
// the forwarding mechanism disabled.
func (m *Machine) UnforwardedRead(a mem.Addr) (uint64, bool) {
	wa := mem.WordAlign(a)
	m.timedRawLoad(wa)
	return m.Fwd.UnforwardedRead(wa)
}

// UnforwardedWrite is the Unforwarded_Write instruction: one store with
// the forwarding mechanism disabled, updating word and fbit atomically.
func (m *Machine) UnforwardedWrite(a mem.Addr, v uint64, fbit bool) {
	wa := mem.WordAlign(a)
	m.Fwd.UnforwardedWrite(wa, v, fbit)
	m.snoopStore(wa)
	r := cpu.Range{Lo: uint64(wa), Hi: uint64(wa) + 8}
	m.Pipe.Store(r, r, func(start int64) int64 {
		ready, _ := m.L1.Access(uint64(wa), cache.Store, start)
		return ready
	})
}

func (m *Machine) timedRawLoad(wa mem.Addr) {
	r := cpu.Range{Lo: uint64(wa), Hi: uint64(wa) + 8}
	info := m.Pipe.Load(r, r, m.addrReady(wa), func(issue int64) int64 {
		ready, _ := m.L1.Access(uint64(wa), cache.Load, issue)
		return ready
	})
	m.stats.LoadCycles += uint64(info.Ready - info.Issue)
}

// FinalAddr is the compiler-inserted final-address lookup used before
// pointer comparisons (Section 2.1). It pays real instructions and the
// Read_FBit/Unforwarded_Read chain walk. Null pointers short-circuit.
func (m *Machine) FinalAddr(a mem.Addr) mem.Addr {
	m.Inst(1) // null test
	if a == 0 {
		return 0
	}
	off := mem.Addr(mem.WordOffset(a))
	wa := mem.WordAlign(a)
	for {
		m.Inst(1) // loop overhead
		if !m.ReadFBit(wa) {
			return wa + off
		}
		v, _ := m.UnforwardedRead(wa)
		wa = mem.WordAlign(mem.Addr(v) + off)
	}
}

// PtrEqual compares two pointers by final address, the compiler
// transformation that preserves comparison outcomes under relocation.
func (m *Machine) PtrEqual(a, b mem.Addr) bool {
	return m.FinalAddr(a) == m.FinalAddr(b)
}

// --- heap ------------------------------------------------------------

// Malloc allocates n zeroed bytes and charges the allocator's
// instruction cost.
func (m *Machine) Malloc(n uint64) mem.Addr {
	m.Inst(12) // malloc bookkeeping
	a := m.Alloc.Alloc(n)
	if m.tracer != nil {
		m.tracer.Emit(obs.Event{Cycle: m.Pipe.Now(), Kind: obs.KAlloc,
			Addr: uint64(a), N: n})
	}
	// Heat attribution rides the allocator's OnEvent hook (wired by
	// SetHeatMap), not a call here: untimed Alloc/Free — arena carving,
	// heap aging — retire and mint object identities too, and a reused
	// base must always start a fresh HeatObject.
	return a
}

// Free releases the block at a, and — per the deallocation wrapper of
// Section 3.3 — any allocator blocks reachable through the forwarding
// chain of the block's first word.
func (m *Machine) Free(a mem.Addr) {
	m.Inst(12)
	if m.tracer != nil {
		m.tracer.Emit(obs.Event{Cycle: m.Pipe.Now(), Kind: obs.KFree, Addr: uint64(a)})
	}
	final, _, err := m.Fwd.Resolve(a, nil)
	// Free intermediate chain links that are themselves heap blocks
	// (relocation-pool interiors are owned by their pool and skipped).
	m.chainScratch = m.Fwd.AppendChainWords(m.chainScratch[:0], a)
	for _, wa := range m.chainScratch {
		if wa != a && m.Alloc.Freeable(wa) {
			m.Alloc.Free(wa)
		}
	}
	if m.Alloc.Freeable(a) {
		m.Alloc.Free(a)
	}
	if err == nil {
		if tail := mem.WordAlign(final); tail != a && m.Alloc.Freeable(tail) {
			m.Alloc.Free(tail)
		}
	}
}

// Snapshot returns the statistics accumulated so far without closing
// the pipeline; use it to measure phases of a running guest program.
// Cycles reflects the current graduation point (the final partial cycle
// is not yet padded, so the slot-partition invariant is only exact
// after Finalize).
func (m *Machine) Snapshot() *Stats {
	st := m.fill()
	st.Cycles = m.Pipe.Now()
	return st
}

// Finalize closes every hart's pipeline and snapshots all statistics.
// The returned Stats are the current hart's — hart 0 by convention; the
// scheduler parks the machine there before the harness finalizes — so
// single-hart output is bit-for-bit what it always was.
func (m *Machine) Finalize() *Stats {
	if !m.finalized {
		m.Pipe.Finalize()
		for i := range m.harts {
			if m.harts[i].pipe != m.Pipe {
				m.harts[i].pipe.Finalize()
			}
		}
		m.finalized = true
		if m.series != nil {
			m.takeSample() // flush the last partial interval
		}
	}
	return m.fill()
}

func (m *Machine) fill() *Stats {
	return m.fillFor(m.Pipe, m.L1, m.L2, m.stats)
}

// fillFor assembles a Stats view from one hart's timing state plus the
// shared functional counters (forwarder, allocator, page footprint).
func (m *Machine) fillFor(pipe *cpu.Pipeline, l1, l2 *cache.Cache, acc Stats) *Stats {
	st := acc
	ps := pipe.Stats
	st.Cycles = ps.Cycles
	st.Slots = [4]uint64{
		ps.Slots[cpu.Busy], ps.Slots[cpu.LoadStall],
		ps.Slots[cpu.StoreStall], ps.Slots[cpu.InstStall],
	}
	st.Instructions = ps.Instructions
	st.Loads = ps.Loads
	st.Stores = ps.Stores
	st.DepViolations = ps.DepViolations
	st.DepBypasses = ps.DepBypasses
	st.L1 = l1.Stats
	st.L2 = l2.Stats
	st.BytesL1L2 = l1.Stats.BytesFromNext + l1.Stats.BytesToNext
	st.BytesL2Mem = l2.Stats.BytesFromNext + l2.Stats.BytesToNext
	st.CycleFalseAlarms = m.Fwd.CycleFalseAlarms
	st.CyclesDetected = m.Fwd.CyclesDetected
	st.HeapPeak = m.Alloc.PeakLive
	st.HeapAllocated = m.Alloc.BytesAllocated
	st.PagesTouched = m.Mem.PagesTouched
	return &st
}
