package sim_test

import (
	"bytes"
	"fmt"
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
	"memfwd/internal/oracle"
	"memfwd/internal/sim"
)

// interpret executes a byte program against any machine. Each 3-byte
// instruction (op, x, y) maps onto the guest ISA surface: allocation,
// word/byte loads and stores, pool-backed relocation (including chain-
// lengthening re-relocation of an already-moved block), deallocation,
// and pointer comparison. Every guest-visible value is appended to the
// returned trace, so two machines agree iff their traces are equal.
func interpret(m app.Machine, prog []byte) []uint64 {
	var (
		out    []uint64
		blocks []mem.Addr
		sizes  []uint64
	)
	pool := opt.NewPool(m, 1024)
	emit := func(v uint64) { out = append(out, v) }
	for pc := 0; pc+2 < len(prog); pc += 3 {
		op, x, y := prog[pc], prog[pc+1], prog[pc+2]
		pick := func() int { return int(x) % len(blocks) }
		switch op % 8 {
		case 0: // malloc
			if len(blocks) < 64 {
				size := uint64(x%16+1) * 8
				a := m.Malloc(size)
				blocks = append(blocks, a)
				sizes = append(sizes, size)
				emit(uint64(a))
			}
		case 1: // store word
			if len(blocks) > 0 {
				i := pick()
				off := mem.Addr(uint64(y)*8) % mem.Addr(sizes[i])
				m.StoreWord(blocks[i]+off, uint64(x)<<8|uint64(y))
			}
		case 2: // load word
			if len(blocks) > 0 {
				i := pick()
				off := mem.Addr(uint64(y)*8) % mem.Addr(sizes[i])
				emit(m.LoadWord(blocks[i] + off))
			}
		case 3: // byte load at an arbitrary (possibly misaligned) offset
			if len(blocks) > 0 {
				i := pick()
				off := mem.Addr(y) % mem.Addr(sizes[i])
				emit(uint64(m.Load8(blocks[i] + off)))
			}
		case 4: // byte store at an arbitrary offset
			if len(blocks) > 0 {
				i := pick()
				off := mem.Addr(y) % mem.Addr(sizes[i])
				m.Store8(blocks[i]+off, x^y)
			}
		case 5: // relocate (re-relocation lengthens the chain)
			if len(blocks) > 0 {
				i := pick()
				opt.Relocate(m, blocks[i], pool.Alloc(sizes[i]), int(sizes[i]/8))
			}
		case 6: // free
			if len(blocks) > 0 {
				i := pick()
				m.Free(blocks[i])
				blocks = append(blocks[:i], blocks[i+1:]...)
				sizes = append(sizes[:i], sizes[i+1:]...)
			}
		case 7: // pointer comparison through forwarding
			if len(blocks) > 1 {
				i, j := pick(), int(y)%len(blocks)
				var v uint64
				if m.PtrEqual(blocks[i], blocks[j]) {
					v = 1
				}
				emit(v)
			}
		}
	}
	return out
}

// FuzzMachineOps is the sim-level differential fuzzer: an arbitrary
// byte program runs on the full out-of-order timing simulator and on
// the functional oracle; guest-visible traces, final-heap digests
// modulo forwarding, and every invariant checker must all agree.
func FuzzMachineOps(f *testing.F) {
	f.Add([]byte{0, 5, 0, 1, 0, 3, 2, 0, 3, 5, 0, 0, 2, 0, 3})
	f.Add([]byte{0, 15, 0, 0, 3, 0, 5, 0, 0, 5, 0, 0, 3, 0, 9, 6, 0, 0})
	f.Add([]byte{0, 1, 0, 0, 2, 0, 7, 0, 1, 4, 0, 5, 3, 0, 5, 5, 1, 0})
	f.Add(bytes.Repeat([]byte{0, 9, 0, 1, 2, 4, 5, 1, 0, 2, 2, 4}, 8))
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) > 258 {
			prog = prog[:258]
		}
		sm := sim.New(sim.Config{})
		simTrace := interpret(sm, prog)
		sm.Finalize()
		om := oracle.New(oracle.Config{})
		oraTrace := interpret(om, prog)

		if len(simTrace) != len(oraTrace) {
			t.Fatalf("trace lengths diverged: sim %d, oracle %d", len(simTrace), len(oraTrace))
		}
		for i := range simTrace {
			if simTrace[i] != oraTrace[i] {
				t.Fatalf("trace[%d]: sim %#x, oracle %#x", i, simTrace[i], oraTrace[i])
			}
		}
		dSim, err := oracle.DigestModuloForwarding(sm.Mem, sm.Fwd, sm.Alloc)
		if err != nil {
			t.Fatal(err)
		}
		dOra, err := oracle.DigestModuloForwarding(om.Mem, om.Fwd, om.Alloc)
		if err != nil {
			t.Fatal(err)
		}
		if dSim != dOra {
			t.Fatalf("heap digests diverged: sim %#x, oracle %#x", dSim, dOra)
		}
		if err := oracle.CheckMachine(sm); err != nil {
			t.Error(fmt.Errorf("sim invariants: %w", err))
		}
		if err := oracle.CheckForwarding(om.Mem, om.Fwd); err != nil {
			t.Error(fmt.Errorf("oracle invariants: %w", err))
		}
	})
}
