package sim_test

import (
	"bytes"
	"fmt"
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
	"memfwd/internal/oracle"
	"memfwd/internal/sched"
	"memfwd/internal/sim"
)

// interpret executes a byte program against any machine. Each 3-byte
// instruction (op, x, y) maps onto the guest ISA surface: allocation,
// word/byte loads and stores, pool-backed relocation (including chain-
// lengthening re-relocation of an already-moved block), deallocation,
// and pointer comparison. Every guest-visible value is appended to the
// returned trace, so two machines agree iff their traces are equal.
func interpret(m app.Machine, prog []byte) []uint64 {
	var (
		out    []uint64
		blocks []mem.Addr
		sizes  []uint64
	)
	pool := opt.NewPool(m, 1024)
	emit := func(v uint64) { out = append(out, v) }
	for pc := 0; pc+2 < len(prog); pc += 3 {
		op, x, y := prog[pc], prog[pc+1], prog[pc+2]
		pick := func() int { return int(x) % len(blocks) }
		switch op % 9 {
		case 0: // malloc
			if len(blocks) < 64 {
				size := uint64(x%16+1) * 8
				a := m.Malloc(size)
				blocks = append(blocks, a)
				sizes = append(sizes, size)
				emit(uint64(a))
			}
		case 1: // store word
			if len(blocks) > 0 {
				i := pick()
				off := mem.Addr(uint64(y)*8) % mem.Addr(sizes[i])
				m.StoreWord(blocks[i]+off, uint64(x)<<8|uint64(y))
			}
		case 2: // load word
			if len(blocks) > 0 {
				i := pick()
				off := mem.Addr(uint64(y)*8) % mem.Addr(sizes[i])
				emit(m.LoadWord(blocks[i] + off))
			}
		case 3: // byte load at an arbitrary (possibly misaligned) offset
			if len(blocks) > 0 {
				i := pick()
				off := mem.Addr(y) % mem.Addr(sizes[i])
				emit(uint64(m.Load8(blocks[i] + off)))
			}
		case 4: // byte store at an arbitrary offset
			if len(blocks) > 0 {
				i := pick()
				off := mem.Addr(y) % mem.Addr(sizes[i])
				m.Store8(blocks[i]+off, x^y)
			}
		case 5: // relocate (re-relocation lengthens the chain)
			if len(blocks) > 0 {
				i := pick()
				opt.Relocate(m, blocks[i], pool.Alloc(sizes[i]), int(sizes[i]/8))
			}
		case 6: // free
			if len(blocks) > 0 {
				i := pick()
				m.Free(blocks[i])
				blocks = append(blocks[:i], blocks[i+1:]...)
				sizes = append(sizes[:i], sizes[i+1:]...)
			}
		case 7: // pointer comparison through forwarding
			if len(blocks) > 1 {
				i, j := pick(), int(y)%len(blocks)
				var v uint64
				if m.PtrEqual(blocks[i], blocks[j]) {
					v = 1
				}
				emit(v)
			}
		case 8: // hart switch (meaningful only under a scheduling group)
			if hs, ok := m.(interface{ SetGuestHart(int) }); ok {
				hs.SetGuestHart(int(x) % fuzzHarts)
			}
		}
	}
	return out
}

// fuzzHarts is the hart count both scheduling groups in FuzzMachineOps
// run with — also the modulus of the hart-switch opcode.
const fuzzHarts = 2

// FuzzMachineOps is the sim-level differential fuzzer: an arbitrary
// byte program runs on the full out-of-order timing simulator and on
// the functional oracle — first bare, then wrapped in equal-seeded
// multi-hart scheduling groups whose relocator harts (with crash
// injection enabled) race the program's own loads, stores, and
// relocations. Guest-visible traces, final-heap digests modulo
// forwarding, and every invariant checker must all agree across all
// four runs: concurrent relocation and crash recovery must be
// completely invisible to the guest.
func FuzzMachineOps(f *testing.F) {
	f.Add([]byte{0, 5, 0, 1, 0, 3, 2, 0, 3, 5, 0, 0, 2, 0, 3})
	f.Add([]byte{0, 15, 0, 0, 3, 0, 5, 0, 0, 5, 0, 0, 3, 0, 9, 6, 0, 0})
	f.Add([]byte{0, 1, 0, 0, 2, 0, 7, 0, 1, 4, 0, 5, 3, 0, 5, 5, 1, 0})
	f.Add(bytes.Repeat([]byte{0, 9, 0, 1, 2, 4, 5, 1, 0, 2, 2, 4}, 8))
	// A dense load/store stream over one large block with hart switches:
	// every access is a scheduling point, so group jobs interleave their
	// copy and plant words throughout — loads race mid-plant forwarding
	// words, and the hart-switch opcode moves the guest across pipelines
	// while jobs are in flight.
	f.Add(append([]byte{0, 15, 0, 1, 0, 1, 1, 0, 2},
		bytes.Repeat([]byte{2, 0, 1, 8, 1, 0, 2, 0, 3, 1, 0, 4, 8, 0, 0, 2, 0, 5}, 13)...))
	f.Fuzz(func(t *testing.T, prog []byte) {
		if len(prog) > 258 {
			prog = prog[:258]
		}
		sm := sim.New(sim.Config{})
		simTrace := interpret(sm, prog)
		sm.Finalize()
		om := oracle.New(oracle.Config{})
		oraTrace := interpret(om, prog)

		diffTraces := func(name string, got, want []uint64) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("%s: trace lengths diverged: %d, want %d", name, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: trace[%d]: %#x, want %#x", name, i, got[i], want[i])
				}
			}
		}
		diffTraces("sim vs oracle", simTrace, oraTrace)
		dSim, err := oracle.DigestModuloForwarding(sm.Mem, sm.Fwd, sm.Alloc)
		if err != nil {
			t.Fatal(err)
		}
		dOra, err := oracle.DigestModuloForwarding(om.Mem, om.Fwd, om.Alloc)
		if err != nil {
			t.Fatal(err)
		}
		if dSim != dOra {
			t.Fatalf("heap digests diverged: sim %#x, oracle %#x", dSim, dOra)
		}
		if err := oracle.CheckMachine(sm); err != nil {
			t.Error(fmt.Errorf("sim invariants: %w", err))
		}
		if err := oracle.CheckForwarding(om.Mem, om.Fwd); err != nil {
			t.Error(fmt.Errorf("oracle invariants: %w", err))
		}

		// Round 2: the same program under equal-seeded scheduling groups.
		// Concurrent (and crashing) relocations must not change a single
		// guest-visible value relative to the bare runs above, and the
		// two groups must interleave identically.
		scfg := sched.Config{Harts: fuzzHarts, Seed: 11, Interval: 6}
		sm2 := sim.New(sim.Config{Harts: fuzzHarts})
		sg, err := sched.New(sm2, scfg)
		if err != nil {
			t.Fatal(err)
		}
		defer sg.Close()
		sg.EnableFaults()
		sgTrace := interpret(sg, prog)
		sg.Quiesce()
		sm2.Finalize()

		om2 := oracle.New(oracle.Config{})
		og, err := sched.New(om2, scfg)
		if err != nil {
			t.Fatal(err)
		}
		defer og.Close()
		og.EnableFaults()
		ogTrace := interpret(og, prog)
		og.Quiesce()

		diffTraces("sim group vs bare", sgTrace, simTrace)
		diffTraces("oracle group vs bare", ogTrace, oraTrace)
		dSg, err := oracle.DigestModuloForwarding(sm2.Mem, sm2.Fwd, sm2.Alloc)
		if err != nil {
			t.Fatal(err)
		}
		dOg, err := oracle.DigestModuloForwarding(om2.Mem, om2.Fwd, om2.Alloc)
		if err != nil {
			t.Fatal(err)
		}
		if dSg != dSim || dOg != dSim {
			t.Fatalf("group heap digests diverged: sim group %#x, oracle group %#x, want %#x", dSg, dOg, dSim)
		}
		if sg.Stats() != og.Stats() {
			t.Fatalf("group schedules diverged: sim %+v, oracle %+v", sg.Stats(), og.Stats())
		}
		if err := oracle.CheckMachine(sm2); err != nil {
			t.Error(fmt.Errorf("sim group invariants: %w", err))
		}
		if err := oracle.CheckForwarding(om2.Mem, om2.Fwd); err != nil {
			t.Error(fmt.Errorf("oracle group invariants: %w", err))
		}
	})
}
