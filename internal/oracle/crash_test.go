package oracle

import (
	"fmt"
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/apps/health"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
	"memfwd/internal/sim"
)

// This file is the crash-consistency acceptance proof: TryRelocate's
// two-phase commit is aborted at EVERY instruction boundary the fault
// layer can name — each boundary point, each per-word copy and plant,
// and every raw memory write — and at each abort the heap must already
// be architecturally consistent (digest modulo forwarding unchanged,
// forwarding-graph invariants clean), with the journal scavenger then
// rolling the torn relocation forward to the exact state a fault-free
// relocation produces. There is no third state.

// crashWords is the relocation size under test. Small enough to keep
// the full visit enumeration cheap, large enough that every per-word
// point has a multi-visit range.
const crashWords = 5

// crashMachine builds a fresh guest machine (timing simulator or
// functional oracle — the fault hook sites are identical on both) with
// one patterned block, optionally pre-relocated once so the crash
// enumeration also covers the append-at-chain-end walk.
func crashMachine(t *testing.T, timed, preForward bool) (m app.Machine, sm *sim.Machine, src mem.Addr, want []uint64) {
	t.Helper()
	if timed {
		sm = sim.New(sim.Config{LineSize: 128})
		m = sm
	} else {
		m = New(Config{LineSize: 128})
	}
	src = m.Malloc(crashWords * mem.WordSize)
	want = make([]uint64, crashWords)
	for i := range want {
		v := uint64(0xA1B2_0000+i) << 4
		if i == 1 {
			// A zero-valued word whose relocation target lands on a
			// never-materialized page: the regression shape where the
			// scavenger's roll-forward used to skip the copy (untouched
			// memory already "reads as" zero) and the orphan sweep then
			// demoted the freshly planted forwarding word.
			v = 0
		}
		want[i] = v
		m.StoreWord(src+mem.Addr(i*mem.WordSize), v)
	}
	if preForward {
		if err := opt.TryRelocate(m, src, crashTarget(m, 0), crashWords); err != nil {
			t.Fatalf("pre-relocation: %v", err)
		}
	}
	return m, sm, src, want
}

// crashTarget returns the n-th out-of-heap relocation target — memory
// no guest pointer resolves to (as the chaos adversary's private arena
// is), so an aborted relocation cannot perturb the digest through it.
func crashTarget(m app.Machine, n int) mem.Addr {
	_, heapEnd := m.Allocator().Range()
	return ((heapEnd + 0x1F_FFFF) &^ 0xF_FFFF) + mem.Addr(n)*0x10_0000
}

// crashOnce aborts one fresh relocation with crash@point:visit and runs
// the full consistency ladder. It reports whether the armed crash fired
// — false means visit exceeded the point's arrival count and the
// relocation completed untouched, which ends the caller's enumeration.
func crashOnce(t *testing.T, timed, preForward bool, p fault.Point, visit int) bool {
	t.Helper()
	m, sm, src, want := crashMachine(t, timed, preForward)
	mm, fwd, al := m.Memory(), m.Forwarder(), m.Allocator()

	dig0, err := DigestModuloForwarding(mm, fwd, al)
	if err != nil {
		t.Fatalf("crash@%s:%d: baseline digest: %v", p, visit, err)
	}
	tgt := crashTarget(m, 4)

	inj := fault.New(7).Arm(fault.Crash, p, visit)
	m.SetFaultInjector(inj)
	rerr := func() (err error) {
		defer fault.RecoverCrash(&err)
		return opt.TryRelocate(m, src, tgt, crashWords)
	}()
	if !inj.Fired() {
		if rerr != nil {
			t.Fatalf("crash@%s:%d never fired yet relocation failed: %v", p, visit, rerr)
		}
		return false
	}
	if rerr == nil {
		t.Fatalf("crash@%s:%d fired but TryRelocate returned nil", p, visit)
	}

	// State A — torn, unrepaired. The two-phase ordering alone must
	// leave the reachable heap bit-identical modulo forwarding, with
	// the forwarding graph structurally clean.
	dig1, err := DigestModuloForwarding(mm, fwd, al)
	if err != nil {
		t.Fatalf("crash@%s:%d: torn digest: %v", p, visit, err)
	}
	if dig1 != dig0 {
		t.Fatalf("crash@%s:%d: torn heap digest %#x != pre-relocation %#x", p, visit, dig1, dig0)
	}
	if err := CheckForwarding(mm, fwd); err != nil {
		t.Fatalf("crash@%s:%d: torn forwarding graph: %v", p, visit, err)
	}

	// State B — scavenged. The journal rolls the relocation forward to
	// completion; digest and invariants must still hold.
	rep, serr := inj.Repair(mm, fwd)
	if serr != nil {
		t.Fatalf("crash@%s:%d: scavenge: %v", p, visit, serr)
	}
	if !rep.RolledForward {
		t.Fatalf("crash@%s:%d: scavenge found no active journal (%s)", p, visit, rep)
	}
	dig2, err := DigestModuloForwarding(mm, fwd, al)
	if err != nil {
		t.Fatalf("crash@%s:%d: repaired digest: %v", p, visit, err)
	}
	if dig2 != dig0 {
		t.Fatalf("crash@%s:%d: repaired heap digest %#x != pre-relocation %#x", p, visit, dig2, dig0)
	}
	if err := CheckForwarding(mm, fwd); err != nil {
		t.Fatalf("crash@%s:%d: repaired forwarding graph: %v", p, visit, err)
	}

	// Roll-forward outcome: every word lives at its new copy with its
	// pre-relocation value — exactly what an unaborted relocation
	// produces, so the abort left no third state.
	for i := range want {
		s := src + mem.Addr(i*mem.WordSize)
		d := tgt + mem.Addr(i*mem.WordSize)
		final, _, err := fwd.Resolve(s, nil)
		if err != nil {
			t.Fatalf("crash@%s:%d: resolve word %d: %v", p, visit, i, err)
		}
		if mem.WordAlign(final) != d {
			t.Fatalf("crash@%s:%d: word %d resolves to %#x, want %#x", p, visit, i, final, d)
		}
		if v, fb := m.UnforwardedRead(d); fb || v != want[i] {
			t.Fatalf("crash@%s:%d: copy of word %d = %#x (fbit=%v), want %#x", p, visit, i, v, fb, want[i])
		}
		if got := m.LoadWord(s); got != want[i] {
			t.Fatalf("crash@%s:%d: guest load of word %d = %#x, want %#x", p, visit, i, got, want[i])
		}
	}

	if sm != nil {
		sm.Finalize()
		if err := CheckMachine(sm); err != nil {
			t.Fatalf("crash@%s:%d: machine invariants: %v", p, visit, err)
		}
	}
	return true
}

// TestCrashConsistencyEveryPoint enumerates crash@point:visit over
// every fault point and every visit the relocation actually reaches,
// asserting the consistency ladder at each, and that the enumeration
// covered exactly the expected number of instruction boundaries.
func TestCrashConsistencyEveryPoint(t *testing.T) {
	// Arrivals per point for a crashWords-word relocation: boundary
	// points fire once, per-word points once per word, and the raw
	// write wildcard sees the copy and plant write of every word.
	expect := map[fault.Point]int{
		fault.RelocateBegin:  1,
		fault.RelocateCopied: crashWords,
		fault.RelocateVerify: 1,
		fault.RelocatePlant:  crashWords,
		fault.RelocateEnd:    1,
		fault.CopyWrite:      crashWords,
		fault.PlantWrite:     crashWords,
		fault.MemWrite:       2 * crashWords,
	}
	points := []fault.Point{
		fault.RelocateBegin, fault.RelocateCopied, fault.RelocateVerify,
		fault.RelocatePlant, fault.RelocateEnd,
		fault.CopyWrite, fault.PlantWrite, fault.MemWrite,
	}
	cases := []struct {
		name              string
		timed, preForward bool
	}{
		{"oracle/fresh", false, false},
		{"oracle/chained", false, true},
		{"sim/chained", true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.timed && testing.Short() {
				t.Skip("full-simulator enumeration")
			}
			for _, p := range points {
				fired := 0
				for visit := 1; crashOnce(t, c.timed, c.preForward, p, visit); visit++ {
					fired++
				}
				if fired != expect[p] {
					t.Errorf("point %s: crash fired at %d visits, want %d", p, fired, expect[p])
				}
			}
		})
	}
}

// TestFaultMatrix drives every fault kind through the chaos adversary
// against a real workload on both machines: each cell must inject at
// least one fault mid-relocation and still finish bit-identical to the
// unperturbed run (ChaosEpisode's differential contract).
func TestFaultMatrix(t *testing.T) {
	a := health.App
	for _, k := range []fault.Kind{fault.Crash, fault.FlipBit, fault.FBitSet, fault.FBitClear} {
		for _, timed := range []bool{false, true} {
			mode := "oracle"
			if timed {
				mode = "sim"
			}
			t.Run(fmt.Sprintf("%s/%s", k, mode), func(t *testing.T) {
				if timed && testing.Short() {
					t.Skip("full-simulator episode")
				}
				ch := ChaosConfig{
					Seed:       int64(100*k) + 3,
					Interval:   24,
					Timed:      timed,
					SimCfg:     sim.Config{LineSize: 128},
					Faults:     true,
					FaultKinds: []fault.Kind{k},
				}
				rel, err := ChaosEpisode(a, app.Config{Seed: 11}, ch)
				if err != nil {
					t.Fatal(err)
				}
				if rel.FaultsInjected == 0 {
					t.Fatalf("%s episode injected no faults (relocations=%d)", k, rel.Relocations)
				}
			})
		}
	}
}
