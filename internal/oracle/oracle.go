// Package oracle implements a timing-free functional reference machine
// for the paper's guest programs, plus the differential harness and the
// relocation-chaos adversary built on top of it.
//
// The oracle executes the same guest code (any app.App, any opt pass)
// as the full out-of-order simulator in internal/sim, but with direct
// word semantics over the tagged memory (internal/mem) and the
// forwarding mechanism (internal/core) only: no pipeline, no caches,
// no pointer-provenance model, no cycle accounting. Everything the
// paper's safety argument calls "architectural state" is here;
// everything it calls "performance" is absent.
//
// That split is what makes the differential harness meaningful: if the
// timing simulator and the oracle ever disagree on a loaded value, a
// malloc address, a trap decision, or the final heap contents (hashed
// modulo forwarding — see DigestModuloForwarding), then timing
// machinery has leaked into functional behaviour and the paper's
// "relocation is always safe" guarantee is broken.
package oracle

import (
	"fmt"

	"memfwd/internal/apps/app"
	"memfwd/internal/core"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
)

// Config describes one oracle machine. Zero fields take the same
// defaults as sim.DefaultConfig so that a zero-config oracle is
// functionally interchangeable with a zero-config simulator.
type Config struct {
	// LineSize is reported to guests via LineSize(); layout passes use
	// it as the clustering target. It has no other effect here.
	LineSize int

	// Heap geometry. Must match the simulator run being differenced
	// against, since malloc addresses are part of the functional
	// contract.
	HeapBase  mem.Addr
	HeapLimit uint64
}

// Machine is the functional reference implementation of app.Machine.
// All timing-only operations are no-ops; every functional operation
// has exactly the architectural effect of its sim counterpart.
type Machine struct {
	Mem   *mem.Memory
	Alloc *mem.Allocator
	Fwd   *core.Forwarder

	cfg     Config
	trap    core.TrapHandler
	sites   []string
	curSite int

	faultInj     *fault.Injector
	chainScratch []mem.Addr
	spans        *obs.SpanTable
}

var _ app.Machine = (*Machine)(nil)

// New builds an oracle machine from cfg (zero fields defaulted to the
// simulator's default heap geometry and line size).
func New(cfg Config) *Machine {
	if cfg.LineSize == 0 {
		cfg.LineSize = 32
	}
	if cfg.HeapBase == 0 {
		cfg.HeapBase = 0x1000_0000
	}
	if cfg.HeapLimit == 0 {
		cfg.HeapLimit = 1 << 30
	}
	m := mem.New()
	return &Machine{
		Mem:   m,
		Alloc: mem.NewAllocator(m, cfg.HeapBase, cfg.HeapLimit),
		Fwd:   core.NewForwarder(m),
		cfg:   cfg,
		sites: []string{"<unknown>"},
	}
}

// Config returns the effective configuration.
func (m *Machine) Config() Config { return m.cfg }

// Inst is a timing-only no-op.
func (m *Machine) Inst(n int) {}

// resolve follows the forwarding chain, panicking on a confirmed cycle
// exactly as the simulator does (the paper aborts execution there).
func (m *Machine) resolve(a mem.Addr) (final mem.Addr, hops int) {
	final, hops, err := m.Fwd.Resolve(a, nil)
	if err != nil {
		panic(fmt.Sprintf("oracle: %v (initial %#x)", err, a))
	}
	return final, hops
}

// Load performs a size-byte load at a through any forwarding chain.
func (m *Machine) Load(a mem.Addr, size uint) uint64 {
	final, hops := m.resolve(a)
	v, err := m.Mem.ReadData(final, size)
	if err != nil {
		panic(fmt.Sprintf("oracle: load %d @ %#x: %v", size, a, err))
	}
	if hops > 0 {
		m.fireTrap(core.Load, a, final, hops)
	}
	return v
}

// Store performs a size-byte store at a through any forwarding chain.
func (m *Machine) Store(a mem.Addr, v uint64, size uint) {
	final, hops := m.resolve(a)
	if err := m.Mem.WriteData(final, v, size); err != nil {
		panic(fmt.Sprintf("oracle: store %d @ %#x: %v", size, a, err))
	}
	if hops > 0 {
		m.fireTrap(core.Store, a, final, hops)
	}
}

// fireTrap mirrors the simulator's trap decision exactly: a handler
// fires whenever a reference took at least one hop, does not recurse,
// and sees the same core.Event fields. (The simulator additionally
// charges TrapOverheadInst instructions — timing, so absent here.)
func (m *Machine) fireTrap(kind core.Kind, initial, final mem.Addr, hops int) {
	if m.trap == nil {
		return
	}
	h := m.trap
	m.trap = nil // traps do not recurse
	h(core.Event{Kind: kind, Site: m.curSite, Initial: initial, Final: final, Hops: hops})
	m.trap = h
}

// Convenience accessors for common widths.

// LoadWord loads the 64-bit word at a.
func (m *Machine) LoadWord(a mem.Addr) uint64 { return m.Load(a, 8) }

// StoreWord stores the 64-bit word v at a.
func (m *Machine) StoreWord(a mem.Addr, v uint64) { m.Store(a, v, 8) }

// LoadPtr loads a guest pointer stored at a.
func (m *Machine) LoadPtr(a mem.Addr) mem.Addr { return mem.Addr(m.Load(a, 8)) }

// StorePtr stores guest pointer p at a.
func (m *Machine) StorePtr(a, p mem.Addr) { m.Store(a, uint64(p), 8) }

// Load32 loads a 32-bit value at a.
func (m *Machine) Load32(a mem.Addr) uint32 { return uint32(m.Load(a, 4)) }

// Store32 stores a 32-bit value at a.
func (m *Machine) Store32(a mem.Addr, v uint32) { m.Store(a, uint64(v), 4) }

// Load16 loads a 16-bit value at a.
func (m *Machine) Load16(a mem.Addr) uint16 { return uint16(m.Load(a, 2)) }

// Store16 stores a 16-bit value at a.
func (m *Machine) Store16(a mem.Addr, v uint16) { m.Store(a, uint64(v), 2) }

// Load8 loads one byte at a.
func (m *Machine) Load8(a mem.Addr) uint8 { return uint8(m.Load(a, 1)) }

// Store8 stores one byte at a.
func (m *Machine) Store8(a mem.Addr, v uint8) { m.Store(a, uint64(v), 1) }

// Prefetch is a timing-only no-op.
func (m *Machine) Prefetch(a mem.Addr, lines int) {}

// ReadFBit is the Read_FBit instruction's functional effect.
func (m *Machine) ReadFBit(a mem.Addr) bool { return m.Fwd.ReadFBit(mem.WordAlign(a)) }

// UnforwardedRead is the Unforwarded_Read instruction's functional
// effect.
func (m *Machine) UnforwardedRead(a mem.Addr) (uint64, bool) {
	return m.Fwd.UnforwardedRead(mem.WordAlign(a))
}

// UnforwardedWrite is the Unforwarded_Write instruction's functional
// effect.
func (m *Machine) UnforwardedWrite(a mem.Addr, v uint64, fbit bool) {
	m.Fwd.UnforwardedWrite(mem.WordAlign(a), v, fbit)
}

// FinalAddr resolves a to its final address; null short-circuits as in
// the compiler-inserted lookup.
func (m *Machine) FinalAddr(a mem.Addr) mem.Addr {
	if a == 0 {
		return 0
	}
	final, _ := m.resolve(a)
	return final
}

// PtrEqual compares two pointers by final address.
func (m *Machine) PtrEqual(a, b mem.Addr) bool { return m.FinalAddr(a) == m.FinalAddr(b) }

// SetTrap installs (or clears, with nil) the forwarding trap handler.
func (m *Machine) SetTrap(h core.TrapHandler) { m.trap = h }

// FaultInjector returns the installed fault injector, or nil.
func (m *Machine) FaultInjector() *fault.Injector { return m.faultInj }

// SetFaultInjector installs (or, with nil, removes) a fault injector,
// hooking the same two sites the simulator hooks: the tagged memory's
// Unforwarded_Write path and the forwarder's chain walk. Keeping the
// hook sites identical is what lets a faulted episode run on either
// machine and agree on the outcome.
func (m *Machine) SetFaultInjector(in *fault.Injector) {
	m.faultInj = in
	if in == nil {
		m.Mem.SetWriteFault(nil)
		m.Fwd.FaultHook = nil
		return
	}
	m.Mem.SetWriteFault(in.FilterWrite)
	m.Fwd.FaultHook = func(mem.Addr, int) { in.Step(fault.ResolveHop) }
}

// Malloc allocates n zeroed bytes.
func (m *Machine) Malloc(n uint64) mem.Addr { return m.Alloc.Alloc(n) }

// Free releases the block at a plus — per the deallocation wrapper of
// Section 3.3 — any allocator blocks reachable through its forwarding
// chain. This mirrors sim.Machine.Free word for word: the set of
// blocks released (and hence the allocator's subsequent behaviour) is
// part of the functional contract.
func (m *Machine) Free(a mem.Addr) {
	final, _, err := m.Fwd.Resolve(a, nil)
	m.chainScratch = m.Fwd.AppendChainWords(m.chainScratch[:0], a)
	for _, wa := range m.chainScratch {
		if wa != a && m.Alloc.Freeable(wa) {
			m.Alloc.Free(wa)
		}
	}
	if m.Alloc.Freeable(a) {
		m.Alloc.Free(a)
	}
	if err == nil {
		if tail := mem.WordAlign(final); tail != a && m.Alloc.Freeable(tail) {
			m.Alloc.Free(tail)
		}
	}
}

// Allocator exposes the heap allocator.
func (m *Machine) Allocator() *mem.Allocator { return m.Alloc }

// Memory exposes the tagged memory substrate.
func (m *Machine) Memory() *mem.Memory { return m.Mem }

// Forwarder exposes the dereference mechanism.
func (m *Machine) Forwarder() *core.Forwarder { return m.Fwd }

// LineSize returns the configured layout-target line size.
func (m *Machine) LineSize() int { return m.cfg.LineSize }

// Site interns a reference-site name, matching the simulator's
// numbering so trap events carry identical Site ids on both machines.
func (m *Machine) Site(name string) int {
	for i, s := range m.sites {
		if s == name {
			return i
		}
	}
	m.sites = append(m.sites, name)
	return len(m.sites) - 1
}

// SetSite marks subsequent references as coming from site id.
func (m *Machine) SetSite(id int) { m.curSite = id }

// PhaseBegin is an observability no-op.
func (m *Machine) PhaseBegin(name string) {}

// PhaseEnd is an observability no-op.
func (m *Machine) PhaseEnd(name string) {}

// TraceRelocate is an observability no-op.
func (m *Machine) TraceRelocate(src, tgt mem.Addr, nWords int) {}

// Now returns 0: the oracle is timing-free, so relocation spans
// recorded here have zero-width phases but full structural content
// (words moved, chain lengths, outcome, fault annotations).
func (m *Machine) Now() int64 { return 0 }

// SetSpans attaches a relocation-span table; opt.TryRelocate records
// one span per relocation attempt into it. Passing nil detaches.
func (m *Machine) SetSpans(t *obs.SpanTable) { m.spans = t }

// RelocationSpans returns the attached span table (nil when disabled).
func (m *Machine) RelocationSpans() *obs.SpanTable { return m.spans }
