package oracle

import (
	"testing"

	"memfwd/internal/mem"
	"memfwd/internal/mp"
	"memfwd/internal/ooc"
)

// oocGeometry matches ooc.DefaultConfig's heap so allocation addresses
// line up between the store and the oracle replay.
var oocGeometry = Config{HeapBase: 0x4000_0000, HeapLimit: 1 << 28}

// TestOOCDifferential runs the same guest sequence — build a linked
// list, traverse it, linearize it, traverse again through both fresh
// and stale pointers — on the out-of-core store and on the functional
// oracle, demanding identical sums and identical heap digests modulo
// forwarding. The paging layer (resident set, faults, evictions) must
// be purely a cost model.
func TestOOCDifferential(t *testing.T) {
	const (
		nodes     = 200
		nodeBytes = 32 // next pointer at offset 0, three payload words
	)

	type wordOps struct {
		load  func(mem.Addr) uint64
		store func(mem.Addr, uint64)
		alloc *mem.Allocator
	}

	// run executes the guest sequence; linearize relocates via the
	// machine-specific relocator (ooc's page-touching one, or a
	// functional mirror on the oracle with the identical allocation
	// pattern).
	run := func(ops wordOps, linearize func(handle mem.Addr)) (sum uint64, orig []mem.Addr) {
		handle := ops.alloc.Alloc(8)
		prev := handle
		for i := 0; i < nodes; i++ {
			n := ops.alloc.Alloc(nodeBytes)
			orig = append(orig, n)
			ops.store(prev, uint64(n))
			for w := mem.Addr(8); w < nodeBytes; w += 8 {
				ops.store(n+w, uint64(i)<<8|uint64(w))
			}
			prev = n // next pointer at offset 0
		}
		ops.store(prev, 0)

		traverse := func() uint64 {
			var s uint64
			for n := mem.Addr(ops.load(handle)); n != 0; n = mem.Addr(ops.load(n)) {
				for w := mem.Addr(8); w < nodeBytes; w += 8 {
					s = s*31 + ops.load(n+w)
				}
			}
			return s
		}
		before := traverse()
		linearize(handle)
		after := traverse()
		if after != before {
			t.Errorf("linearization changed traversal sum: %#x -> %#x", before, after)
		}
		// Stale pointers: the original node addresses must still read
		// the same payloads through forwarding.
		for i, n := range orig {
			if got, want := ops.load(n+8), uint64(i)<<8|8; got != want {
				t.Fatalf("stale pointer %d reads %#x, want %#x", i, got, want)
			}
		}
		return after, orig
	}

	st := ooc.New(ooc.Config{ResidentPages: 8})
	oocSum, _ := run(
		wordOps{load: st.LoadWord, store: st.StoreWord, alloc: st.Heap},
		func(handle mem.Addr) {
			if n, _ := st.LinearizeList(handle, nodeBytes, 0); n != nodes {
				t.Errorf("ooc linearize moved %d nodes, want %d", n, nodes)
			}
		},
	)
	if st.Stats.Faults == 0 {
		t.Error("out-of-core run faulted no pages (paging model inert)")
	}

	om := New(oocGeometry)
	// Functional mirror of ooc.LinearizeList: identical allocation
	// sequence (headerless node-sized blocks), identical chain edits.
	mirror := func(handle mem.Addr) {
		save := om.Alloc.HeaderBytes
		om.Alloc.HeaderBytes = 0
		for n := mem.Addr(om.LoadWord(handle)); n != 0; {
			tgt := om.Alloc.Alloc(nodeBytes)
			for w := mem.Addr(0); w < nodeBytes; w += 8 {
				final, _, err := om.Fwd.Resolve(n+w, nil)
				if err != nil {
					t.Fatal(err)
				}
				fw := mem.WordAlign(final)
				v, _ := om.Fwd.UnforwardedRead(fw)
				om.Fwd.UnforwardedWrite(tgt+w, v, false)
				om.Fwd.UnforwardedWrite(fw, uint64(tgt+w), true)
			}
			om.StoreWord(handle, uint64(tgt))
			handle = tgt
			n = mem.Addr(om.LoadWord(handle))
		}
		om.Alloc.HeaderBytes = save
	}
	oracleSum, _ := run(
		wordOps{load: om.LoadWord, store: om.StoreWord, alloc: om.Alloc},
		mirror,
	)

	if oocSum != oracleSum {
		t.Errorf("ooc sum %#x != oracle sum %#x", oocSum, oracleSum)
	}
	dOOC, err := DigestModuloForwarding(st.Mem, st.Fwd, st.Heap)
	if err != nil {
		t.Fatal(err)
	}
	dOra, err := DigestModuloForwarding(om.Mem, om.Fwd, om.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if dOOC != dOra {
		t.Errorf("heap digests diverged: ooc %#x, oracle %#x", dOOC, dOra)
	}
	if err := CheckForwarding(st.Mem, st.Fwd); err != nil {
		t.Errorf("ooc invariants: %v", err)
	}
	if err := CheckForwarding(om.Mem, om.Fwd); err != nil {
		t.Errorf("oracle invariants: %v", err)
	}
}

// TestMPDifferential runs the same deterministic interleaving of
// per-CPU counter updates on the multiprocessor — with a mid-run
// RelocatePadded (the paper's false-sharing cure) — and on the
// functional oracle with a functional mirror of that relocation.
// Counter values read through the original (stale) pointers and the
// final heap digests must agree: coherence, private caches, and
// padding must have no functional effect.
func TestMPDifferential(t *testing.T) {
	const (
		items = 32
		steps = 2000
	)

	sys := mp.New(mp.Config{})
	om := New(Config{HeapBase: 0x2000_0000, HeapLimit: 1 << 28})

	alloc := func(al *mem.Allocator) []mem.Addr {
		out := make([]mem.Addr, items)
		for i := range out {
			out[i] = al.Alloc(8)
		}
		return out
	}
	sysItems := alloc(sys.Heap)
	oraItems := alloc(om.Alloc)
	for i := range sysItems {
		if sysItems[i] != oraItems[i] {
			t.Fatalf("allocation diverged at %d: %#x vs %#x", i, sysItems[i], oraItems[i])
		}
	}

	step := func(load func(mem.Addr) uint64, store func(mem.Addr, uint64), its []mem.Addr, s int) {
		a := its[(s*7)%items]
		store(a, load(a)+uint64(s))
	}
	for s := 0; s < steps/2; s++ {
		c := sys.CPUs[s%len(sys.CPUs)]
		step(c.LoadWord, c.StoreWord, sysItems, s)
		step(om.LoadWord, om.StoreWord, oraItems, s)
	}

	// Mid-run: cure false sharing on the system; mirror functionally on
	// the oracle with the identical allocation pattern.
	sys.RelocatePadded(sysItems)
	lineMask := ^uint64(64 - 1) // mp.DefaultConfig LineSize
	save := om.Alloc.HeaderBytes
	om.Alloc.HeaderBytes = 0
	for _, a := range oraItems {
		tgt := om.Alloc.Alloc(64)
		for uint64(tgt)&^lineMask != 0 {
			pad := 64 - (uint64(tgt) &^ lineMask)
			om.Alloc.Alloc(pad)
			tgt = om.Alloc.Alloc(64)
		}
		wa := mem.WordAlign(a)
		v, _ := om.Fwd.UnforwardedRead(wa)
		om.Fwd.UnforwardedWrite(tgt, v, false)
		om.Fwd.UnforwardedWrite(wa, uint64(tgt), true)
	}
	om.Alloc.HeaderBytes = save

	for s := steps / 2; s < steps; s++ {
		c := sys.CPUs[s%len(sys.CPUs)]
		step(c.LoadWord, c.StoreWord, sysItems, s)
		step(om.LoadWord, om.StoreWord, oraItems, s)
	}

	for i, a := range sysItems {
		got := sys.CPUs[i%len(sys.CPUs)].LoadWord(a)
		want := om.LoadWord(oraItems[i])
		if got != want {
			t.Errorf("item %d: mp reads %d, oracle reads %d", i, got, want)
		}
	}
	dMP, err := DigestModuloForwarding(sys.Mem, sys.Fwd, sys.Heap)
	if err != nil {
		t.Fatal(err)
	}
	dOra, err := DigestModuloForwarding(om.Mem, om.Fwd, om.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if dMP != dOra {
		t.Errorf("heap digests diverged: mp %#x, oracle %#x", dMP, dOra)
	}
	if err := CheckForwarding(sys.Mem, sys.Fwd); err != nil {
		t.Errorf("mp invariants: %v", err)
	}
	if sys.Stats.Invalidations == 0 {
		t.Error("mp run produced no coherence traffic (model inert)")
	}
}
