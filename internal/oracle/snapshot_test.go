package oracle

import (
	"testing"

	"memfwd/internal/core"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
	"memfwd/internal/sim"
)

// buildSnapshotFixture drives a sim machine into the richest state the
// snapshot layer must carry (the golden coverage of ISSUE 7 satellite
// 5): live multi-hop forwarding chains, a planted misaligned-target
// forwarding word, a pinned arena block, and a non-empty free list —
// plus trapped loads so trap accounting and provenance state are
// populated.
func buildSnapshotFixture(t *testing.T, cfg sim.Config) (*sim.Machine, []mem.Addr) {
	t.Helper()
	m := sim.New(cfg)
	eff := m.Config()
	arena := (eff.HeapBase + mem.Addr(eff.HeapLimit) + 0xF_FFFF) &^ mem.Addr(0xF_FFFF)

	traps := 0
	m.SetTrap(func(core.Event) { traps++ })

	// Live blocks with data; a and b end up forwarded, c stays direct.
	var blocks []mem.Addr
	for i := 0; i < 6; i++ {
		b := m.Malloc(8 * mem.WordSize)
		for w := 0; w < 8; w++ {
			m.StoreWord(b+mem.Addr(w*mem.WordSize), uint64(i+1)<<32|uint64(w+1))
		}
		blocks = append(blocks, b)
	}

	// Two-hop chain under block 0: relocate it, then relocate the copy.
	if err := opt.TryRelocate(m, blocks[0], arena, 8); err != nil {
		t.Fatal(err)
	}
	if err := opt.TryRelocate(m, arena, arena+0x1000, 8); err != nil {
		t.Fatal(err)
	}
	// Single-hop chain under block 1.
	if err := opt.TryRelocate(m, blocks[1], arena+0x2000, 8); err != nil {
		t.Fatal(err)
	}

	// Misaligned planted word (chaos-probe style, outside live blocks):
	// a forwarding word whose target is 3 bytes into a data word.
	tgtWord := arena + 0x3000
	m.UnforwardedWrite(tgtWord, 0x00AA_BBCC_DDEE_FF00, false)
	m.UnforwardedWrite(arena+0x3100, uint64(tgtWord)+3, true)

	// Pinned arena block inside the guest heap.
	mem.NewArena(m.Allocator(), 4096)

	// Non-empty free list: two sizes, interleaved frees.
	m.Free(blocks[4])
	m.Free(blocks[5])
	blocks = blocks[:4]

	// Loads through the chains fire the user-level trap and populate
	// the pointer-provenance window.
	for _, b := range blocks {
		if got := m.Load(b, 8); got == 0 {
			t.Fatalf("fixture load from %#x returned 0", b)
		}
	}
	if traps == 0 {
		t.Fatal("fixture produced no forwarding traps")
	}
	return m, blocks
}

// TestSnapshotGoldenRoundTrip is the satellite-5 golden: save the
// fixture machine, restore into a fresh machine, and demand digest
// equality, byte-exact memory, identical stats, and a clean
// CheckMachine sweep on the restored machine.
func TestSnapshotGoldenRoundTrip(t *testing.T) {
	cfg := sim.Config{LineSize: 64}
	m, _ := buildSnapshotFixture(t, cfg)
	st := m.SaveState()

	m2 := sim.New(cfg)
	if err := m2.LoadState(st); err != nil {
		t.Fatal(err)
	}
	if err := SnapshotEquivalent(m, m2); err != nil {
		t.Fatal(err)
	}
	if err := CheckMachine(m2); err != nil {
		t.Fatalf("restored machine invariants: %v", err)
	}

	// The state must be reusable: a second restore from the same
	// snapshot is equally equivalent.
	m3 := sim.New(cfg)
	if err := m3.LoadState(st); err != nil {
		t.Fatal(err)
	}
	if err := SnapshotEquivalent(m, m3); err != nil {
		t.Fatalf("second restore: %v", err)
	}
}

// TestSnapshotReplayDeterminism: after restore, the clone and the
// source must stay in lockstep under identical further operations —
// same values loaded, same allocation addresses, same relocation
// behaviour, same final digests and cycle counts.
func TestSnapshotReplayDeterminism(t *testing.T) {
	cfg := sim.Config{LineSize: 64}
	m, blocks := buildSnapshotFixture(t, cfg)
	st := m.SaveState()
	m2 := sim.New(cfg)
	if err := m2.LoadState(st); err != nil {
		t.Fatal(err)
	}

	eff := m.Config()
	arena2 := (eff.HeapBase + mem.Addr(eff.HeapLimit) + 0xF_FFFF) &^ mem.Addr(0xF_FFFF)
	arena2 += 0x10_0000

	script := func(mm *sim.Machine) {
		t.Helper()
		// Free-list reuse must hand out the same addresses.
		n1 := mm.Malloc(8 * mem.WordSize)
		n2 := mm.Malloc(8 * mem.WordSize)
		mm.StoreWord(n1, uint64(n2))
		mm.StoreWord(n2, 7)
		// Another relocation, including a chain extension.
		if err := opt.TryRelocate(mm, blocks[2], arena2, 8); err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			mm.Load(b, 8)
		}
		mm.Free(n1)
	}
	script(m)
	script(m2)
	m.Finalize()
	m2.Finalize()
	if err := SnapshotEquivalent(m, m2); err != nil {
		t.Fatal(err)
	}
	if err := CheckMachine(m2); err != nil {
		t.Fatal(err)
	}
}

// TestLoadStateConfigMismatch: restoring into a machine with different
// geometry must fail loudly, not corrupt the session.
func TestLoadStateConfigMismatch(t *testing.T) {
	m, _ := buildSnapshotFixture(t, sim.Config{LineSize: 64})
	st := m.SaveState()
	m2 := sim.New(sim.Config{LineSize: 32})
	if err := m2.LoadState(st); err == nil {
		t.Fatal("LoadState accepted a mismatched config")
	}
}
