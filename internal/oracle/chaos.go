package oracle

import (
	"fmt"
	"math/rand"

	"memfwd/internal/apps/app"
	"memfwd/internal/core"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
)

// Relocator is a seeded adversary implementing app.Machine: it wraps an
// inner machine, delegates every guest operation, and interleaves the
// guest's execution with random legal relocations of the guest's own
// heap blocks. The paper's central claim is that relocation is *always*
// safe — at any point, of any object, any number of times — so an
// adversary that relocates behind the program's back must never change
// what the program computes. The differential harness checks exactly
// that: a chaos-wrapped run must produce the same app.Result and the
// same heap digest (modulo forwarding) as an unperturbed run.
//
// Adversarial repertoire, all legal per the paper's rules:
//
//   - block relocation to a private arena *outside* the guest heap
//     (so allocator behaviour, which is functional state, is never
//     perturbed), word by word with offset-preserving chains;
//   - chain-lengthening re-relocation: an already-relocated block is
//     relocated again by appending a forwarding word at the current
//     chain end, growing chains past the forwarder's HopLimit and into
//     its false-alarm cycle-check path;
//   - chain-head re-relocation: the original word is repointed at a
//     fresh copy, orphaning the old one (what opt.Relocate does);
//   - misaligned probe chains: forwarding words holding *misaligned*
//     addresses, built for a specific byte offset and verified at that
//     offset through the inner machine's full load path (Section 2.1:
//     the byte offset within the word is preserved at every hop);
//   - cyclic probes: deliberately closed misaligned chains, verified
//     to be reported as ErrCycle by the accurate cycle check, then
//     dissolved.
//
// Every probe word holds a misaligned address on purpose: whole-memory
// sweeps (CheckForwarding) resolve only offset-independent — i.e.
// word-aligned — forwarding words, so keeping probes misaligned marks
// them as offset-specific and leaves the sweep sound.
//
// All decisions come from a seeded rand.Rand driven only by the guest's
// operation sequence, so a failing episode replays from its seed.
type Relocator struct {
	inner app.Machine
	rng   *rand.Rand

	// Countdown in guest operations until the next chaos action.
	countdown int
	interval  int

	// Tracked guest blocks eligible for relocation (Malloc-intercepted,
	// size-capped; arena and FragmentHeap blocks bypass Malloc and are
	// deliberately not tracked). wordBudget bounds the episode's total
	// relocated words so apps whose heaps are a few large tables (e.g.
	// compress) get a handful of whole-table relocations rather than
	// thousands.
	blocks     []mem.Addr
	maxBytes   uint64
	maxBlocks  int
	wordBudget int64

	// Private target arena, strictly outside the guest heap.
	arenaNext, arenaEnd mem.Addr

	guestTrap core.TrapHandler
	inChaos   bool

	// Fault-injection repertoire (EnableFaults).
	faults     bool
	faultKinds []fault.Kind

	// Episode statistics.
	Relocations  int
	Lengthenings int
	Probes       int
	CyclicProbes int

	// FaultsInjected counts faulted relocations whose armed fault
	// actually fired; FaultsRepaired counts the subset whose torn state
	// the scavenger had to roll forward.
	FaultsInjected int
	FaultsRepaired int
}

var _ app.Machine = (*Relocator)(nil)

// NewRelocator wraps inner with a chaos adversary seeded by seed.
// interval is the mean number of guest operations between chaos
// actions (0 takes a default of 64).
func NewRelocator(inner app.Machine, seed int64, interval int) *Relocator {
	if interval <= 0 {
		interval = 64
	}
	_, heapEnd := inner.Allocator().Range()
	arena := (heapEnd + 0xF_FFFF) &^ 0xF_FFFF // 1MB-aligned guard gap
	r := &Relocator{
		inner:      inner,
		rng:        rand.New(rand.NewSource(seed)),
		interval:   interval,
		maxBytes:   1 << 19,
		maxBlocks:  1 << 14,
		wordBudget: 1 << 19,
		arenaNext:  arena + 0x10_0000,
		arenaEnd:   arena + 0x10_0000 + (1 << 28),
	}
	r.reload()
	return r
}

func (r *Relocator) reload() { r.countdown = 1 + r.rng.Intn(2*r.interval) }

// EnableFaults adds the fault-injection action to the repertoire: some
// chaos actions then relocate a block with a deterministic fault armed
// — a crash at a random instruction boundary, a forwarding-word bit
// flip, a spurious fbit set or clear — recover it, repair the heap from
// the relocation journal, and verify the roll-forward. kinds restricts
// what is injected; nil allows every kind.
func (r *Relocator) EnableFaults(kinds []fault.Kind) {
	r.faults = true
	if len(kinds) == 0 {
		kinds = []fault.Kind{fault.Crash, fault.FlipBit, fault.FBitSet, fault.FBitClear}
	}
	r.faultKinds = kinds
}

// arenaTake bumps n bytes (word-rounded) off the private arena,
// returning 0 when exhausted (the adversary then simply goes quiet).
func (r *Relocator) arenaTake(n uint64) mem.Addr {
	n = (n + mem.WordSize - 1) &^ uint64(mem.WordSize-1)
	if r.arenaNext+mem.Addr(n) > r.arenaEnd {
		return 0
	}
	a := r.arenaNext
	r.arenaNext += mem.Addr(n)
	return a
}

// tick runs before every intercepted guest operation and fires a chaos
// action when the countdown expires. Actions run with the guest's trap
// handler masked: the adversary models an agent outside the program,
// and its own probe references must not invoke guest trap code.
func (r *Relocator) tick() {
	if r.inChaos {
		return
	}
	r.countdown--
	if r.countdown > 0 {
		return
	}
	r.reload()
	r.inChaos = true
	r.inner.SetTrap(nil)
	defer func() {
		r.inner.SetTrap(r.guestTrap)
		r.inChaos = false
	}()
	switch n := r.rng.Intn(12); {
	case n < 7:
		r.relocateRandom()
	case n < 9:
		r.probe(false)
	case n < 10:
		r.probe(true)
	default:
		if r.faults {
			r.faultedRelocate()
		} else {
			r.relocateRandom()
		}
	}
}

// relocateRandom relocates one randomly chosen tracked block.
func (r *Relocator) relocateRandom() {
	if base := r.pickBlock(); base != 0 {
		r.relocateBlock(base)
	}
}

// pickBlock draws a random live tracked block (0 when none remain),
// lazily dropping blocks freed outside our Free interception.
func (r *Relocator) pickBlock() mem.Addr {
	al := r.inner.Allocator()
	for len(r.blocks) > 0 {
		i := r.rng.Intn(len(r.blocks))
		base := r.blocks[i]
		if !al.Live(base) {
			r.blocks[i] = r.blocks[len(r.blocks)-1]
			r.blocks = r.blocks[:len(r.blocks)-1]
			continue
		}
		return base
	}
	return 0
}

// relocateBlock moves the block at base to a fresh arena copy, word by
// word, appending the new forwarding word at the *end* of any existing
// chain — the Figure 4(a) rule, and the only legal form: the program
// (or an opt pass acting for it) may hold direct pointers to the
// current final copy, so the data must move from there and leave a
// forwarding word behind there. (An earlier version of this adversary
// also re-pointed the chain head directly at the new copy; the
// differential harness immediately caught that as a heap divergence —
// guest stores through direct pool pointers no longer reached the copy
// being read back — which is itself a nice demonstration that the
// harness rejects *illegal* relocations, not just buggy machinery.)
// Re-relocating an already-moved block therefore lengthens its chain,
// driving chains past HopLimit and into the false-alarm cycle check.
func (r *Relocator) relocateBlock(base mem.Addr) {
	size, ok := r.inner.Allocator().SizeOf(base)
	if !ok {
		return
	}
	if r.wordBudget < int64(size/mem.WordSize) {
		return
	}
	r.wordBudget -= int64(size / mem.WordSize)
	tgt := r.arenaTake(size)
	if tgt == 0 {
		return
	}
	// Untimed peek before the move: a first word that already forwards
	// means this relocation lengthens an existing chain.
	if r.inner.Memory().FBit(base) {
		r.Lengthenings++
	}
	// The move itself is the production two-phase commit — the adversary
	// exercises exactly the code path the opt passes use, including its
	// bounded chain-append walk.
	if err := opt.TryRelocate(r.inner, base, tgt, int(size/mem.WordSize)); err != nil {
		panic(fmt.Sprintf("oracle: chaos relocation of %#x (%d words): %v", base, size/mem.WordSize, err))
	}
	r.Relocations++
}

// faultedRelocate relocates a random tracked block with a freshly
// seeded fault injector armed so the fault is guaranteed to fire
// inside the relocation: a crash at a random instruction boundary, a
// bit flip on a copy or plant write, or a spurious fbit transition.
// Any induced crash is recovered, the torn relocation is repaired from
// its journal (fault.Scavenge), and the repair is verified word by
// word: every source word must resolve to its new copy holding its
// pre-relocation value. The guest observes none of it — the
// surrounding differential episode then proves results and heap digest
// unchanged.
func (r *Relocator) faultedRelocate() {
	base := r.pickBlock()
	if base == 0 {
		return
	}
	size, ok := r.inner.Allocator().SizeOf(base)
	if !ok {
		return
	}
	words := int(size / mem.WordSize)
	if words == 0 || r.wordBudget < int64(words) {
		return
	}
	r.wordBudget -= int64(words)
	tgt := r.arenaTake(size)
	if tgt == 0 {
		return
	}

	// Record pre-relocation values (through any existing chains) to
	// verify the repair against.
	fwd := r.inner.Forwarder()
	want := make([]uint64, words)
	for i := range want {
		final, _, err := fwd.Resolve(base+mem.Addr(i*mem.WordSize), nil)
		if err != nil {
			panic(fmt.Sprintf("oracle: faulted relocation of %#x: %v", base, err))
		}
		want[i], _ = r.inner.UnforwardedRead(mem.WordAlign(final))
	}

	inj := fault.New(r.rng.Int63())
	kind := r.faultKinds[r.rng.Intn(len(r.faultKinds))]
	point, visit := r.armPoint(kind, words)
	inj.Arm(kind, point, visit)
	prev := r.inner.FaultInjector()
	r.inner.SetFaultInjector(inj)
	err := func() (err error) {
		defer fault.RecoverCrash(&err)
		return opt.TryRelocate(r.inner, base, tgt, words)
	}()
	r.inner.SetFaultInjector(prev)
	if inj.Fired() {
		r.FaultsInjected++
	}
	if err != nil {
		if _, serr := fault.Scavenge(r.inner.Memory(), fwd, &inj.Journal, inj); serr != nil {
			panic(fmt.Sprintf("oracle: scavenge of %#x after %q (%s@%s:%d): %v",
				base, err, kind, point, visit, serr))
		}
		r.FaultsRepaired++
	}

	// Completed or rolled forward, the outcome must be identical: each
	// word lives at its copy with its old value.
	for i := range want {
		s := base + mem.Addr(i*mem.WordSize)
		d := tgt + mem.Addr(i*mem.WordSize)
		final, _, rerr := fwd.Resolve(s, nil)
		if rerr != nil {
			panic(fmt.Sprintf("oracle: post-repair resolve of %#x (%s@%s:%d): %v", s, kind, point, visit, rerr))
		}
		if mem.WordAlign(final) != d {
			panic(fmt.Sprintf("oracle: post-repair %#x resolves to %#x, want %#x (%s@%s:%d)",
				s, final, d, kind, point, visit))
		}
		if v, fb := r.inner.UnforwardedRead(d); fb || v != want[i] {
			panic(fmt.Sprintf("oracle: post-repair word %d of %#x = %#x (fbit=%v), want %#x (%s@%s:%d)",
				i, base, v, fb, want[i], kind, point, visit))
		}
	}
	r.Relocations++
}

// armPoint draws a fault point and a visit count that guarantees the
// armed plan fires during a words-long relocation.
func (r *Relocator) armPoint(kind fault.Kind, words int) (fault.Point, int) {
	if kind == fault.Crash {
		// A crash can strike any instruction boundary.
		points := []fault.Point{
			fault.RelocateBegin, fault.RelocateCopied, fault.RelocateVerify,
			fault.RelocatePlant, fault.RelocateEnd, fault.CopyWrite, fault.PlantWrite,
		}
		p := points[r.rng.Intn(len(points))]
		switch p {
		case fault.RelocateCopied, fault.RelocatePlant, fault.CopyWrite, fault.PlantWrite:
			return p, 1 + r.rng.Intn(words)
		default:
			return p, 1
		}
	}
	// Write corruptions fire only on the write path; the relocation
	// performs exactly `words` copy writes and `words` plant writes.
	points := []fault.Point{fault.CopyWrite, fault.PlantWrite, fault.MemWrite}
	p := points[r.rng.Intn(len(points))]
	if p == fault.MemWrite {
		return p, 1 + r.rng.Intn(2*words)
	}
	return p, 1 + r.rng.Intn(words)
}

// misalignedDelta returns a nonzero delta such that a forwarding word
// holding target+delta still resolves to target at byte offset off:
// WordAlign(target+delta+off) == target requires delta in [-off, 7-off].
func (r *Relocator) misalignedDelta(off mem.Addr) int64 {
	for {
		d := int64(r.rng.Intn(8)) - int64(off) // [-off, 7-off]
		if d != 0 {
			return d
		}
	}
}

// probe builds a misaligned forwarding chain in the private arena and
// verifies its resolution at the offset it was built for — through the
// inner machine's full load path for acyclic chains, and through the
// accurate cycle detector for deliberately cyclic ones (which are then
// dissolved so the memory ends in a clean state).
func (r *Relocator) probe(cyclic bool) {
	off := mem.Addr(1 + r.rng.Intn(7))
	k := 1 + r.rng.Intn(3)
	base := r.arenaTake(uint64(k+1) * mem.WordSize)
	if base == 0 {
		return
	}
	words := make([]mem.Addr, k+1)
	for i := range words {
		words[i] = base + mem.Addr(i)*mem.WordSize
	}
	payload := r.rng.Uint64()
	r.inner.UnforwardedWrite(words[k], payload, false)
	for i := k - 1; i >= 0; i-- {
		delta := r.misalignedDelta(off)
		r.inner.UnforwardedWrite(words[i], uint64(int64(words[i+1])+delta), true)
	}
	fwd := r.inner.Forwarder()
	if cyclic {
		delta := r.misalignedDelta(off)
		r.inner.UnforwardedWrite(words[k], uint64(int64(words[0])+delta), true)
		if _, _, err := fwd.Resolve(words[0]+off, nil); err != core.ErrCycle {
			panic(fmt.Sprintf("oracle: cyclic probe at %#x+%d not detected: err=%v", words[0], off, err))
		}
		for _, w := range words {
			r.inner.UnforwardedWrite(w, 0, false)
		}
		r.CyclicProbes++
		return
	}
	if got, want := r.inner.Load8(words[0]+off), uint8(payload>>(8*uint(off))); got != want {
		panic(fmt.Sprintf("oracle: probe at %#x+%d read %#x, want %#x", words[0], off, got, want))
	}
	chain := fwd.ChainWords(words[0] + off)
	if len(chain) != k {
		panic(fmt.Sprintf("oracle: probe chain at %#x+%d enumerates %d words, want %d", words[0], off, len(chain), k))
	}
	for i := range chain {
		if chain[i] != words[i] {
			panic(fmt.Sprintf("oracle: probe chain at %#x+%d diverges at hop %d: %#x, want %#x",
				words[0], off, i+1, chain[i], words[i]))
		}
	}
	r.Probes++
}

// --- app.Machine interception ---------------------------------------

// Inst delegates (timing only; does not advance the chaos clock).
func (r *Relocator) Inst(n int) { r.inner.Inst(n) }

// Load intercepts a load: possibly act, then delegate.
func (r *Relocator) Load(a mem.Addr, size uint) uint64 {
	r.tick()
	return r.inner.Load(a, size)
}

// Store intercepts a store: possibly act, then delegate.
func (r *Relocator) Store(a mem.Addr, v uint64, size uint) {
	r.tick()
	r.inner.Store(a, v, size)
}

// LoadWord routes through Load.
func (r *Relocator) LoadWord(a mem.Addr) uint64 { return r.Load(a, 8) }

// StoreWord routes through Store.
func (r *Relocator) StoreWord(a mem.Addr, v uint64) { r.Store(a, v, 8) }

// LoadPtr routes through Load.
func (r *Relocator) LoadPtr(a mem.Addr) mem.Addr { return mem.Addr(r.Load(a, 8)) }

// StorePtr routes through Store.
func (r *Relocator) StorePtr(a, p mem.Addr) { r.Store(a, uint64(p), 8) }

// Load32 routes through Load.
func (r *Relocator) Load32(a mem.Addr) uint32 { return uint32(r.Load(a, 4)) }

// Store32 routes through Store.
func (r *Relocator) Store32(a mem.Addr, v uint32) { r.Store(a, uint64(v), 4) }

// Load16 routes through Load.
func (r *Relocator) Load16(a mem.Addr) uint16 { return uint16(r.Load(a, 2)) }

// Store16 routes through Store.
func (r *Relocator) Store16(a mem.Addr, v uint16) { r.Store(a, uint64(v), 2) }

// Load8 routes through Load.
func (r *Relocator) Load8(a mem.Addr) uint8 { return uint8(r.Load(a, 1)) }

// Store8 routes through Store.
func (r *Relocator) Store8(a mem.Addr, v uint8) { r.Store(a, uint64(v), 1) }

// Prefetch delegates.
func (r *Relocator) Prefetch(a mem.Addr, lines int) { r.inner.Prefetch(a, lines) }

// ReadFBit delegates.
func (r *Relocator) ReadFBit(a mem.Addr) bool { return r.inner.ReadFBit(a) }

// UnforwardedRead delegates.
func (r *Relocator) UnforwardedRead(a mem.Addr) (uint64, bool) { return r.inner.UnforwardedRead(a) }

// UnforwardedWrite delegates.
func (r *Relocator) UnforwardedWrite(a mem.Addr, v uint64, fbit bool) {
	r.inner.UnforwardedWrite(a, v, fbit)
}

// FinalAddr delegates.
func (r *Relocator) FinalAddr(a mem.Addr) mem.Addr { return r.inner.FinalAddr(a) }

// PtrEqual delegates.
func (r *Relocator) PtrEqual(a, b mem.Addr) bool { return r.inner.PtrEqual(a, b) }

// SetTrap records the guest handler (so chaos actions can mask it) and
// delegates.
func (r *Relocator) SetTrap(h core.TrapHandler) {
	r.guestTrap = h
	r.inner.SetTrap(h)
}

// FaultInjector delegates.
func (r *Relocator) FaultInjector() *fault.Injector { return r.inner.FaultInjector() }

// SetFaultInjector delegates.
func (r *Relocator) SetFaultInjector(in *fault.Injector) { r.inner.SetFaultInjector(in) }

// Malloc intercepts an allocation: possibly act, delegate, and track
// the new block as a relocation candidate.
func (r *Relocator) Malloc(n uint64) mem.Addr {
	r.tick()
	a := r.inner.Malloc(n)
	if n <= r.maxBytes && len(r.blocks) < r.maxBlocks {
		r.blocks = append(r.blocks, a)
	}
	return a
}

// Free intercepts a deallocation: untrack, possibly act, delegate.
func (r *Relocator) Free(a mem.Addr) {
	for i, b := range r.blocks {
		if b == a {
			r.blocks[i] = r.blocks[len(r.blocks)-1]
			r.blocks = r.blocks[:len(r.blocks)-1]
			break
		}
	}
	r.tick()
	r.inner.Free(a)
}

// Allocator delegates.
func (r *Relocator) Allocator() *mem.Allocator { return r.inner.Allocator() }

// Memory delegates.
func (r *Relocator) Memory() *mem.Memory { return r.inner.Memory() }

// Forwarder delegates.
func (r *Relocator) Forwarder() *core.Forwarder { return r.inner.Forwarder() }

// LineSize delegates.
func (r *Relocator) LineSize() int { return r.inner.LineSize() }

// Site delegates.
func (r *Relocator) Site(name string) int { return r.inner.Site(name) }

// SetSite delegates.
func (r *Relocator) SetSite(id int) { r.inner.SetSite(id) }

// PhaseBegin delegates.
func (r *Relocator) PhaseBegin(name string) { r.inner.PhaseBegin(name) }

// PhaseEnd delegates.
func (r *Relocator) PhaseEnd(name string) { r.inner.PhaseEnd(name) }

// TraceRelocate delegates.
func (r *Relocator) TraceRelocate(src, tgt mem.Addr, nWords int) {
	r.inner.TraceRelocate(src, tgt, nWords)
}

// RelocationBarrier forwards opt.TryRelocate's concurrency barrier
// inward, so a multi-hart scheduling group (internal/sched) beneath the
// adversary drains conflicting in-flight relocations before a chaos
// action touches shared relocation state.
func (r *Relocator) RelocationBarrier(src mem.Addr) {
	if b, ok := r.inner.(interface{ RelocationBarrier(mem.Addr) }); ok {
		b.RelocationBarrier(src)
	}
}
