package oracle

import (
	"fmt"

	"memfwd/internal/apps/app"
	"memfwd/internal/fault"
	"memfwd/internal/obs"
	"memfwd/internal/sched"
	"memfwd/internal/sim"
)

// RunDifferential executes app a under cfg twice — once on the full
// out-of-order timing simulator and once on the functional oracle —
// and returns an error describing the first divergence in functional
// behaviour: the app.Result (checksum, relocation count, space
// overhead), the final-heap digest modulo forwarding, or any machine
// invariant. A nil error is the mechanically-checked statement that
// the timing machinery (pipeline, caches, provenance, hop costs,
// traps' overhead accounting) had no functional effect on this run.
func RunDifferential(simCfg sim.Config, a app.App, cfg app.Config) error {
	sm := sim.New(simCfg)
	eff := sm.Config()
	simRes := a.Run(sm, cfg)
	sm.Finalize()

	om := New(Config{LineSize: eff.LineSize, HeapBase: eff.HeapBase, HeapLimit: eff.HeapLimit})
	oRes := a.Run(om, cfg)

	if simRes != oRes {
		return fmt.Errorf("oracle: %s diverged: sim result %+v, oracle result %+v", a.Name, simRes, oRes)
	}
	simDig, err := DigestModuloForwarding(sm.Mem, sm.Fwd, sm.Alloc)
	if err != nil {
		return fmt.Errorf("oracle: %s sim digest: %w", a.Name, err)
	}
	oDig, err := DigestModuloForwarding(om.Mem, om.Fwd, om.Alloc)
	if err != nil {
		return fmt.Errorf("oracle: %s oracle digest: %w", a.Name, err)
	}
	if simDig != oDig {
		return fmt.Errorf("oracle: %s heap digests diverged: sim %#x, oracle %#x", a.Name, simDig, oDig)
	}
	if err := CheckMachine(sm); err != nil {
		return fmt.Errorf("oracle: %s sim invariants: %w", a.Name, err)
	}
	if err := CheckForwarding(om.Mem, om.Fwd); err != nil {
		return fmt.Errorf("oracle: %s oracle invariants: %w", a.Name, err)
	}
	return nil
}

// ChaosConfig parameterizes one chaos episode.
type ChaosConfig struct {
	// Seed drives the adversary; a failing episode replays from it.
	Seed int64

	// Interval is the mean number of guest operations between chaos
	// actions (0 takes the Relocator default).
	Interval int

	// Timed runs the chaos-wrapped guest on the full timing simulator
	// (expensive, exercises pipeline/cache interplay with adversarial
	// chains); false runs it on a second oracle (cheap, pure
	// functional semantics).
	Timed bool

	// SimCfg configures the simulator for the Timed variant and
	// supplies the heap/line geometry for both (zero fields take
	// simulator defaults).
	SimCfg sim.Config

	// Faults adds fault-injected relocations to the adversary's
	// repertoire: crashes at arbitrary instruction boundaries inside
	// relocation, forwarding-word bit flips, spurious fbit transitions
	// — each recovered, journal-repaired, and verified. The episode
	// still demands bit-identical guest results.
	Faults bool

	// FaultKinds restricts the injected kinds when Faults is set
	// (nil = all kinds).
	FaultKinds []fault.Kind

	// Spans, when non-nil, is attached to the chaos-wrapped machine so
	// every adversarial relocation — committed, aborted, or torn —
	// lands in the caller's flight recorder. Callers may share one
	// table across episodes to aggregate phase-cost quantiles.
	Spans *obs.SpanTable

	// Harts, when > 1, additionally runs the chaos-wrapped guest inside
	// a multi-hart scheduling group (internal/sched): Harts-1 relocator
	// harts race the guest's loads and stores with concurrent
	// relocations under a deterministic seeded interleaving, stacked
	// beneath the (atomic) chaos adversary. With Faults set the group
	// also injects crashes mid-relocation under contention. SchedSeed
	// seeds the interleaving (0 takes Seed); SchedInterval is the mean
	// guest operations between job launches (0 takes the default).
	Harts         int
	SchedSeed     int64
	SchedInterval int
}

// ChaosEpisode runs app a under cfg once unperturbed on the oracle and
// once wrapped in a seeded chaos Relocator, then demands identical
// results and identical heap digests modulo forwarding, plus clean
// invariant sweeps. It returns the adversary's statistics so callers
// can assert the episode actually exercised relocation.
func ChaosEpisode(a app.App, cfg app.Config, ch ChaosConfig) (*Relocator, error) {
	eff := sim.New(ch.SimCfg).Config()
	ocfg := Config{LineSize: eff.LineSize, HeapBase: eff.HeapBase, HeapLimit: eff.HeapLimit}

	base := New(ocfg)
	baseRes := a.Run(base, cfg)
	baseDig, err := DigestModuloForwarding(base.Mem, base.Fwd, base.Alloc)
	if err != nil {
		return nil, fmt.Errorf("oracle: %s baseline digest: %w", a.Name, err)
	}

	var inner app.Machine
	var sm *sim.Machine
	if ch.Timed {
		simCfg := ch.SimCfg
		if ch.Harts > simCfg.Harts {
			simCfg.Harts = ch.Harts
		}
		sm = sim.New(simCfg)
		sm.SetSpans(ch.Spans)
		inner = sm
	} else {
		om := New(ocfg)
		om.SetSpans(ch.Spans)
		inner = om
	}
	var grp *sched.Group
	if ch.Harts > 1 {
		schedSeed := ch.SchedSeed
		if schedSeed == 0 {
			schedSeed = ch.Seed
		}
		var err error
		grp, err = sched.New(inner, sched.Config{
			Harts: ch.Harts, Seed: schedSeed, Interval: ch.SchedInterval,
		})
		if err != nil {
			return nil, fmt.Errorf("oracle: %s chaos scheduler: %w", a.Name, err)
		}
		if ch.Faults {
			grp.EnableFaults()
		}
		defer grp.Close()
		inner = grp
	}
	rel := NewRelocator(inner, ch.Seed, ch.Interval)
	if ch.Faults {
		rel.EnableFaults(ch.FaultKinds)
	}
	chaosRes := a.Run(rel, cfg)
	if grp != nil {
		grp.Quiesce()
	}
	if sm != nil {
		sm.Finalize()
	}

	if chaosRes != baseRes {
		return rel, fmt.Errorf("oracle: %s chaos(seed=%d) diverged: %+v, want %+v",
			a.Name, ch.Seed, chaosRes, baseRes)
	}
	chaosDig, err := DigestModuloForwarding(inner.Memory(), inner.Forwarder(), inner.Allocator())
	if err != nil {
		return rel, fmt.Errorf("oracle: %s chaos(seed=%d) digest: %w", a.Name, ch.Seed, err)
	}
	if chaosDig != baseDig {
		return rel, fmt.Errorf("oracle: %s chaos(seed=%d) heap digest diverged: %#x, want %#x",
			a.Name, ch.Seed, chaosDig, baseDig)
	}
	if sm != nil {
		if err := CheckMachine(sm); err != nil {
			return rel, fmt.Errorf("oracle: %s chaos(seed=%d) invariants: %w", a.Name, ch.Seed, err)
		}
	} else if err := CheckForwarding(inner.Memory(), inner.Forwarder()); err != nil {
		return rel, fmt.Errorf("oracle: %s chaos(seed=%d) invariants: %w", a.Name, ch.Seed, err)
	}
	return rel, nil
}
