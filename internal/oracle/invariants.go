package oracle

import (
	"fmt"

	"memfwd/internal/core"
	"memfwd/internal/mem"
	"memfwd/internal/sim"
)

// CheckForwarding sweeps every materialized word of memory and verifies
// the structural invariants of the forwarding graph. It is meant to be
// called from any test after an optimization pass, a chaos episode, or
// a full app run:
//
//   - fbit ⇒ valid target: a forwarding word must hold a non-nil
//     address whose containing word lies in materialized memory
//     (relocation writes the target copy before the forwarding word,
//     so a pointer into never-touched memory means a torn relocation).
//   - acyclicity: resolving from a word-aligned forwarding word must
//     terminate without ErrCycle. This applies only to words holding
//     word-aligned forwarding addresses; a chain built for a specific
//     misaligned byte offset is only well-defined at that offset (the
//     chaos relocator validates its misaligned probe chains itself, at
//     the offset it built them for).
//   - chain bookkeeping: the hop sequence Resolve reports via HopFunc
//     must equal AppendChainWords' enumeration — the exact
//     consistency the deallocation wrapper of Section 3.3 relies on,
//     and the invariant the PR 3 cycleCheck offset bug violated.
func CheckForwarding(m *mem.Memory, f *core.Forwarder) error {
	var hops []mem.Addr
	for _, pb := range m.TouchedPages() {
		for w := 0; w < mem.PageWords; w++ {
			wa := pb + mem.Addr(w*mem.WordSize)
			if !m.FBit(wa) {
				continue
			}
			tgt := mem.Addr(m.ReadWord(wa))
			if tgt == 0 {
				return fmt.Errorf("oracle: forwarding word %#x holds nil target", wa)
			}
			if !m.Touched(mem.WordAlign(tgt)) {
				return fmt.Errorf("oracle: forwarding word %#x targets untouched memory %#x", wa, tgt)
			}
			if tgt != mem.WordAlign(tgt) {
				continue // offset-specific chain; see doc comment
			}
			hops = hops[:0]
			final, _, err := f.Resolve(wa, func(h mem.Addr, _ int) { hops = append(hops, h) })
			if err != nil {
				return fmt.Errorf("oracle: forwarding graph cycle from %#x: %w", wa, err)
			}
			if !m.Touched(mem.WordAlign(final)) {
				return fmt.Errorf("oracle: chain from %#x resolves to untouched memory %#x", wa, final)
			}
			chain := f.ChainWords(wa)
			if len(chain) != len(hops) {
				return fmt.Errorf("oracle: chain enumeration from %#x has %d words, resolve took %d hops",
					wa, len(chain), len(hops))
			}
			for i := range chain {
				if chain[i] != hops[i] {
					return fmt.Errorf("oracle: chain enumeration from %#x diverges at hop %d: %#x vs %#x",
						wa, i+1, chain[i], hops[i])
				}
			}
		}
	}
	return nil
}

// CheckCaches verifies cache-vs-memory coherence at a drain point: the
// caches are tag-only (all data lives in mem.Memory), so the checkable
// invariant is that every dirty line tags memory that functionally
// exists — a dirty line over a never-materialized page would mean the
// timing model wrote back data the functional model never saw. Clean
// lines may legitimately tag untouched pages (block prefetch runs
// ahead of the program), so only dirty lines are constrained.
func CheckCaches(sm *sim.Machine) error {
	var err error
	for _, c := range []interface {
		ForEachLine(func(lineAddr uint64, dirty bool))
	}{sm.L1, sm.L2} {
		c.ForEachLine(func(la uint64, dirty bool) {
			if err == nil && dirty && !sm.Mem.Touched(mem.Addr(la)) {
				err = fmt.Errorf("oracle: dirty cache line %#x over untouched memory", la)
			}
		})
	}
	return err
}

// CheckMachine bundles every invariant applicable to a full simulator
// instance: the forwarding-graph sweep, cache coherence, and the
// pointer-provenance bounds checked inside the sim package.
func CheckMachine(sm *sim.Machine) error {
	if err := CheckForwarding(sm.Mem, sm.Fwd); err != nil {
		return err
	}
	if err := CheckCaches(sm); err != nil {
		return err
	}
	return sm.CheckInvariants()
}
