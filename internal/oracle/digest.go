package oracle

import (
	"fmt"

	"memfwd/internal/core"
	"memfwd/internal/mem"
)

// DigestModuloForwarding hashes the functional contents of the heap as
// a guest program can observe them: every word of every live allocator
// block, read through its full forwarding chain. Two heaps are
// equivalent modulo forwarding when a guest dereferencing its original
// pointers would read identical values from both — which is precisely
// the paper's safety property, so a run with relocation (or with the
// chaos adversary relocating behind the program's back) must digest
// identically to a run with none.
//
// The digest keys each word by its original (pre-relocation) address:
// malloc addresses are functionally deterministic, so block bases and
// sizes agree across the runs being compared, while the relocated
// copies live at addresses the digest deliberately never looks at.
// FNV-1a over (base, size, words...) in ascending block order.
func DigestModuloForwarding(m *mem.Memory, f *core.Forwarder, al *mem.Allocator) (uint64, error) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, base := range al.LiveBlocks() {
		size, _ := al.SizeOf(base)
		mix(uint64(base))
		mix(size)
		for off := uint64(0); off < size; off += mem.WordSize {
			a := base + mem.Addr(off)
			final, _, err := f.Resolve(a, nil)
			if err != nil {
				return 0, fmt.Errorf("oracle: digest chase at %#x: %w", a, err)
			}
			mix(m.ReadWord(mem.WordAlign(final)))
		}
	}
	return h, nil
}
