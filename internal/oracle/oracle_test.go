package oracle

import (
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/apps/mst"
	"memfwd/internal/core"
	"memfwd/internal/mem"
	"memfwd/internal/opt"
	"memfwd/internal/quickseed"
	"memfwd/internal/sim"
)

// TestOracleImplementsMachine is a compile-time check plus the basic
// word-semantics smoke test.
func TestOracleBasics(t *testing.T) {
	m := New(Config{})
	a := m.Malloc(64)
	m.StoreWord(a, 0xDEAD)
	m.Store32(a+8, 0xBEEF)
	m.Store8(a+17, 0x7F)
	if got := m.LoadWord(a); got != 0xDEAD {
		t.Errorf("LoadWord = %#x, want 0xDEAD", got)
	}
	if got := m.Load32(a + 8); got != 0xBEEF {
		t.Errorf("Load32 = %#x, want 0xBEEF", got)
	}
	if got := m.Load8(a + 17); got != 0x7F {
		t.Errorf("Load8 = %#x, want 0x7F", got)
	}
	if m.LineSize() != 32 {
		t.Errorf("default LineSize = %d, want 32", m.LineSize())
	}
}

// TestOracleForwardingAndTraps verifies the oracle's trap decision
// matches the contract: fires iff a reference took at least one hop,
// with non-recursive handlers and sim-identical event fields.
func TestOracleForwardingAndTraps(t *testing.T) {
	m := New(Config{})
	a := m.Malloc(16)
	m.StoreWord(a, 42)
	tgt := m.Malloc(16)
	opt.Relocate(m, a, tgt, 2)

	var events []core.Event
	m.SetTrap(func(e core.Event) {
		events = append(events, e)
		// Re-entrant references must not re-trap.
		if got := m.LoadWord(a); got != 42 {
			t.Errorf("in-trap load = %d, want 42", got)
		}
	})
	if got := m.LoadWord(a); got != 42 {
		t.Errorf("forwarded load = %d, want 42", got)
	}
	m.SetTrap(nil)
	if len(events) != 1 {
		t.Fatalf("trap fired %d times, want 1", len(events))
	}
	e := events[0]
	if e.Kind != core.Load || e.Initial != a || e.Hops != 1 || mem.WordAlign(e.Final) != tgt {
		t.Errorf("trap event %+v inconsistent (want load of %#x, 1 hop, final in %#x)", e, a, tgt)
	}
	// Unforwarded references never trap.
	m.SetTrap(func(e core.Event) { t.Error("unforwarded access trapped") })
	m.UnforwardedRead(a)
	fresh := m.Malloc(8)
	m.StoreWord(fresh, 1)
	m.SetTrap(nil)
}

// TestOracleFreeMatchesSim locks the deallocation wrapper's chain-
// freeing to the simulator's, on a chain that exercises every branch:
// intermediate freeable blocks, a non-freeable tail, and re-forwarded
// heads.
func TestOracleFreeMatchesSim(t *testing.T) {
	build := func(m app.Machine) (mem.Addr, []mem.Addr) {
		a := m.Malloc(32)
		b := m.Malloc(32) // becomes an intermediate chain link
		c := m.Malloc(32) // becomes the tail
		for w := mem.Addr(0); w < 32; w += 8 {
			m.StoreWord(a+w, uint64(100+w))
		}
		// Chain a -> b -> c by hand (per-word, offset 0 words only is
		// enough for Free, which resolves from the block base).
		m.UnforwardedWrite(b, uint64(c), true)
		m.UnforwardedWrite(a, uint64(b), true)
		m.Free(a)
		return a, []mem.Addr{a, b, c}
	}
	sm := sim.New(sim.Config{})
	om := New(Config{})
	_, sBlocks := build(sm)
	_, oBlocks := build(om)
	for i := range sBlocks {
		sl := sm.Alloc.Live(sBlocks[i])
		ol := om.Alloc.Live(oBlocks[i])
		if sl != ol {
			t.Errorf("block %d: sim live=%v oracle live=%v", i, sl, ol)
		}
		if sl {
			t.Errorf("block %d still live after chain free", i)
		}
	}
}

// TestDigestModuloForwarding verifies the digest's defining property:
// invariant under legal relocation, sensitive to actual data changes.
func TestDigestModuloForwarding(t *testing.T) {
	mk := func() (*Machine, []mem.Addr) {
		m := New(Config{})
		blocks := make([]mem.Addr, 8)
		for i := range blocks {
			blocks[i] = m.Malloc(32)
			for w := mem.Addr(0); w < 32; w += 8 {
				m.StoreWord(blocks[i]+w, uint64(i)<<8|uint64(w))
			}
		}
		return m, blocks
	}
	moved, blocks := mk()
	pool := opt.NewPool(moved, 4096)
	for i := 0; i < len(blocks); i += 2 {
		opt.Relocate(moved, blocks[i], pool.Alloc(32), 4)
	}
	// Re-relocate one block to lengthen its chain.
	opt.Relocate(moved, blocks[0], pool.Alloc(32), 4)

	d2, err := DigestModuloForwarding(moved.Mem, moved.Fwd, moved.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate one relocated word through its original address and check
	// the digest tracks it; restore and check it returns exactly.
	moved.StoreWord(blocks[0]+8, 0xFFFF)
	d3, err := DigestModuloForwarding(moved.Mem, moved.Fwd, moved.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if d3 == d2 {
		t.Error("digest blind to a store through a forwarded address")
	}
	moved.StoreWord(blocks[0]+8, 8) // original value: i=0, w=8
	d4, err := DigestModuloForwarding(moved.Mem, moved.Fwd, moved.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	if d4 != d2 {
		t.Error("digest not restored after undoing the store")
	}
}

// TestDigestInvariantAcrossMachines is the cross-machine form used by
// the harness: identical guest sequences on two machines — one
// adversarially relocated — produce identical digests.
func TestDigestInvariantAcrossMachines(t *testing.T) {
	run := func(m app.Machine, chaos bool) uint64 {
		var rel *Relocator
		if chaos {
			rel = NewRelocator(m, 99, 4)
			m = rel
		}
		blocks := make([]mem.Addr, 16)
		for i := range blocks {
			blocks[i] = m.Malloc(48)
		}
		for step := 0; step < 200; step++ {
			b := blocks[step%len(blocks)]
			w := mem.Addr(step%6) * 8
			m.StoreWord(b+w, m.LoadWord(b+w)+uint64(step))
		}
		if chaos && rel.Relocations == 0 {
			t.Fatal("adversary idle")
		}
		d, err := DigestModuloForwarding(m.Memory(), m.Forwarder(), m.Allocator())
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	plain := run(New(Config{}), false)
	stirred := run(New(Config{}), true)
	if plain != stirred {
		t.Errorf("digest diverged under chaos: %#x vs %#x", stirred, plain)
	}
}

// TestCheckForwardingCatches verifies the invariant sweep actually
// rejects the corruption classes it claims to.
func TestCheckForwardingCatches(t *testing.T) {
	t.Run("clean", func(t *testing.T) {
		m := New(Config{})
		a := m.Malloc(16)
		m.StoreWord(a, 7)
		opt.Relocate(m, a, m.Malloc(16), 2)
		if err := CheckForwarding(m.Mem, m.Fwd); err != nil {
			t.Errorf("clean heap rejected: %v", err)
		}
	})
	t.Run("nil-target", func(t *testing.T) {
		m := New(Config{})
		a := m.Malloc(16)
		m.UnforwardedWrite(a, 0, true)
		if err := CheckForwarding(m.Mem, m.Fwd); err == nil {
			t.Error("nil forwarding target not caught")
		}
	})
	t.Run("untouched-target", func(t *testing.T) {
		m := New(Config{})
		a := m.Malloc(16)
		m.UnforwardedWrite(a, 0x7777_0000, true)
		if err := CheckForwarding(m.Mem, m.Fwd); err == nil {
			t.Error("forwarding into untouched memory not caught")
		}
	})
	t.Run("cycle", func(t *testing.T) {
		m := New(Config{})
		a := m.Malloc(32)
		m.UnforwardedWrite(a+8, uint64(a)+16, true)
		m.UnforwardedWrite(a+16, uint64(a)+8, true)
		if err := CheckForwarding(m.Mem, m.Fwd); err == nil {
			t.Error("forwarding cycle not caught")
		}
	})
}

// TestRelocatorDeterminism: identical seeds must replay identically —
// the property that makes a failing chaos episode debuggable.
func TestRelocatorDeterminism(t *testing.T) {
	episode := func(seed int64) (uint64, int, int, int) {
		m := New(Config{})
		r := NewRelocator(m, seed, 8)
		blocks := make([]mem.Addr, 8)
		for i := range blocks {
			blocks[i] = r.Malloc(64)
		}
		for step := 0; step < 500; step++ {
			b := blocks[step%len(blocks)]
			r.StoreWord(b+mem.Addr(step%8)*8, uint64(step))
		}
		d, err := DigestModuloForwarding(m.Mem, m.Fwd, m.Alloc)
		if err != nil {
			t.Fatal(err)
		}
		return d, r.Relocations, r.Probes, r.CyclicProbes
	}
	d1, rel1, p1, c1 := episode(5)
	d2, rel2, p2, c2 := episode(5)
	if d1 != d2 || rel1 != rel2 || p1 != p2 || c1 != c2 {
		t.Errorf("episodes with equal seeds diverged: (%#x,%d,%d,%d) vs (%#x,%d,%d,%d)",
			d1, rel1, p1, c1, d2, rel2, p2, c2)
	}
	if rel1 == 0 || p1 == 0 || c1 == 0 {
		t.Errorf("episode exercised too little: relocations=%d probes=%d cyclic=%d", rel1, p1, c1)
	}
	d3, _, _, _ := episode(6)
	if d3 != d1 {
		t.Errorf("chaos seed leaked into functional state: digest %#x vs %#x", d3, d1)
	}
}

// TestSimInvariantsAfterRun exercises the sim-internal checker on a
// real workload (provenance bounds + cache coherence + forwarding
// graph), via the bundled CheckMachine.
func TestSimInvariantsAfterRun(t *testing.T) {
	sm := sim.New(sim.Config{LineSize: 128})
	mst.App.Run(sm, app.Config{Seed: quickseed.Seed(t) | 1, Opt: true})
	sm.Finalize()
	if err := CheckMachine(sm); err != nil {
		t.Error(err)
	}
}
