package oracle

import (
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/mem"
)

// FuzzChaos feeds an arbitrary guest byte program to a plain oracle
// and to an oracle under the seeded chaos relocator. The adversary
// relocates blocks, lengthens chains, and plants misaligned probe
// chains between guest operations; the guest-visible trace and the
// final-heap digest modulo forwarding must be identical to the
// unperturbed run.
func FuzzChaos(f *testing.F) {
	f.Add(uint8(1), []byte{0, 0, 1, 3, 2, 3, 0, 1, 1, 9, 4, 9, 2, 1})
	f.Add(uint8(9), []byte{0, 0, 0, 1, 0, 2, 1, 5, 3, 0, 2, 7, 1, 6, 2, 6})
	f.Add(uint8(200), []byte{0, 0, 1, 1, 3, 1, 0, 2, 1, 2, 2, 2, 3, 2, 4, 0})
	f.Fuzz(func(t *testing.T, seed uint8, prog []byte) {
		if len(prog) > 192 {
			prog = prog[:192]
		}
		run := func(m app.Machine) []uint64 {
			const blockBytes = 64
			var out []uint64
			var blocks []mem.Addr
			for pc := 0; pc+1 < len(prog); pc += 2 {
				op, x := prog[pc], prog[pc+1]
				switch op % 5 {
				case 0: // malloc
					if len(blocks) < 32 {
						a := m.Malloc(blockBytes)
						blocks = append(blocks, a)
						out = append(out, uint64(a))
					}
				case 1: // store word
					if len(blocks) > 0 {
						b := blocks[int(x)%len(blocks)]
						m.StoreWord(b+mem.Addr(x%8)*8, uint64(x)*2654435761)
					}
				case 2: // load word
					if len(blocks) > 0 {
						b := blocks[int(x)%len(blocks)]
						out = append(out, m.LoadWord(b+mem.Addr(x%8)*8))
					}
				case 3: // byte load at arbitrary offset
					if len(blocks) > 0 {
						b := blocks[int(x)%len(blocks)]
						out = append(out, uint64(m.Load8(b+mem.Addr(x%blockBytes))))
					}
				case 4: // free
					if len(blocks) > 0 {
						i := int(x) % len(blocks)
						m.Free(blocks[i])
						blocks = append(blocks[:i], blocks[i+1:]...)
					}
				}
			}
			return out
		}

		plain := New(Config{})
		want := run(plain)
		dWant, err := DigestModuloForwarding(plain.Mem, plain.Fwd, plain.Alloc)
		if err != nil {
			t.Fatal(err)
		}

		stirred := New(Config{})
		rel := NewRelocator(stirred, int64(seed)+1, 8)
		got := run(rel)
		dGot, err := DigestModuloForwarding(stirred.Mem, stirred.Fwd, stirred.Alloc)
		if err != nil {
			t.Fatal(err)
		}

		if len(got) != len(want) {
			t.Fatalf("trace lengths diverged: chaos %d, plain %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trace[%d]: chaos %#x, plain %#x", i, got[i], want[i])
			}
		}
		if dGot != dWant {
			t.Fatalf("heap digest diverged under chaos: %#x vs %#x", dGot, dWant)
		}
		if err := CheckForwarding(stirred.Mem, stirred.Fwd); err != nil {
			t.Error(err)
		}
	})
}
