package oracle

import (
	"strings"
	"testing"

	"memfwd/internal/apps/app"
	"memfwd/internal/apps/mst"
	"memfwd/internal/fault"
	"memfwd/internal/mem"
	"memfwd/internal/obs"
	"memfwd/internal/opt"
)

// TestOracleMachineRecordsZeroWidthSpans: the timing-free oracle
// machine satisfies the span-recorder surface with Now() == 0, so
// relocation spans keep full structure (identity, chains, outcome)
// with zero-width phases.
func TestOracleMachineRecordsZeroWidthSpans(t *testing.T) {
	m := New(Config{})
	st := obs.NewSpanTable(8)
	m.SetSpans(st)
	base := m.Malloc(2 * mem.WordSize)
	m.StoreWord(base, 11)
	m.StoreWord(base+8, 22)
	_, heapEnd := m.Alloc.Range()
	tgt := (heapEnd + 0x1F_FFFF) &^ mem.Addr(0xF_FFFF)
	if err := opt.TryRelocate(m, base, tgt, 2); err != nil {
		t.Fatal(err)
	}
	spans := st.Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Outcome != obs.RelocCommitted || s.ChainAfter != 1 || s.Words != 2 {
		t.Fatalf("structure wrong on oracle: %+v", s)
	}
	if s.Begin != 0 || s.TotalCycles != 0 || s.CopyCycles != 0 || s.PlantCycles != 0 {
		t.Fatalf("oracle spans should be zero-width: %+v", s)
	}
}

// TestChaosEpisodesPopulateSpanReport attaches one shared span table
// to the guest machines of a batch of fault-injecting chaos episodes
// and checks the relocation-span report aggregates them: every
// adversary relocation (clean and faulted) lands as a span, committed
// and non-committed outcomes both appear, faulted spans carry their
// injector shot annotations, and the per-phase p50/p95 digest is
// well-formed. This is the flight-recorder view of the chaos suite.
func TestChaosEpisodesPopulateSpanReport(t *testing.T) {
	st := obs.NewSpanTable(4096)
	kinds := []fault.Kind{fault.Crash, fault.FlipBit, fault.FBitSet, fault.FBitClear}
	seeds := int64(2)
	if testing.Short() {
		// The race CI leg trims the matrix; FlipBit alone still produces
		// both committed and torn outcomes with fault annotations.
		kinds = kinds[1:2]
		seeds = 1
	}
	wantEpisodes := len(kinds) * int(seeds)
	episodes := 0
	for _, k := range kinds {
		for seed := int64(1); seed <= seeds; seed++ {
			m := New(Config{})
			m.SetSpans(st)
			rel := NewRelocator(m, int64(100*k)+seed, 24)
			rel.EnableFaults([]fault.Kind{k})
			mst.App.Run(rel, app.Config{Seed: 11})
			if rel.Relocations == 0 {
				t.Fatalf("kind %v seed %d: episode relocated nothing", k, seed)
			}
			episodes++
		}
	}
	if episodes != wantEpisodes {
		t.Fatalf("ran %d episodes, want %d", episodes, wantEpisodes)
	}

	committed, aborted, torn := st.Outcomes()
	if committed == 0 {
		t.Fatal("no committed spans across the chaos batch")
	}
	// Crash faults panic past the recorder (no span, like a process
	// death); flips and fbit faults tear or abort and must be visible.
	if aborted+torn == 0 {
		t.Fatal("fault-injecting episodes recorded no non-committed spans")
	}
	if st.Count() != committed+aborted+torn {
		t.Fatalf("outcome tallies %d+%d+%d disagree with count %d",
			committed, aborted, torn, st.Count())
	}

	annotated := 0
	for _, s := range st.Spans() {
		if len(s.Faults) > 0 {
			annotated++
			if s.Outcome == obs.RelocCommitted && s.Err != "" {
				t.Fatalf("committed span with an error: %+v", s)
			}
		}
		if s.Outcome != obs.RelocCommitted && s.Err == "" {
			t.Fatalf("non-committed span without a reason: %+v", s)
		}
	}
	if annotated == 0 {
		t.Fatal("no span carries a fault annotation")
	}

	snap := st.Snapshot(0)
	for _, ph := range snap.Phases {
		if ph.Count == 0 {
			continue
		}
		if ph.P50 < 0 || ph.P95 < ph.P50 || ph.Max < ph.P95 {
			t.Fatalf("phase %s digest not monotone: p50=%v p95=%v max=%v",
				ph.Phase, ph.P50, ph.P95, ph.Max)
		}
	}

	out := st.Report().String()
	for _, want := range []string{"copy", "plant", "total", "p50 cyc", "p95 cyc", "committed", "torn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("span report missing %q:\n%s", want, out)
		}
	}
}
