package oracle

import (
	"fmt"

	"memfwd/internal/mem"
	"memfwd/internal/sim"
)

// SnapshotEquivalent verifies that dst is an architectural clone of
// src, at three escalating strengths:
//
//  1. byte-exact memory: the two machines materialized the same pages
//     and every word and forwarding bit is identical — stronger than
//     the digest, which ignores dead storage and forwarding plumbing;
//  2. identical heap digests modulo forwarding (the paper's
//     "architecturally identical heaps" comparator), plus identical
//     allocator shape (brk, live blocks, sizes, pin state);
//  3. identical timing statistics (Snapshot Stats are compared in
//     full, cycle counts included) — a restored machine must not just
//     compute the same values, it must be at the same cycle.
//
// It is the acceptance check behind memfwd-serve's suspend/migrate
// path: src is the machine a session was saved from, dst the machine
// it was restored into on another shard.
func SnapshotEquivalent(src, dst *sim.Machine) error {
	sp := src.Mem.TouchedPages()
	dp := dst.Mem.TouchedPages()
	if len(sp) != len(dp) {
		return fmt.Errorf("oracle: snapshot pages diverged: src %d, dst %d", len(sp), len(dp))
	}
	for i, pb := range sp {
		if dp[i] != pb {
			return fmt.Errorf("oracle: snapshot page set diverged at %#x vs %#x", pb, dp[i])
		}
		for w := 0; w < mem.PageWords; w++ {
			a := pb + mem.Addr(w*mem.WordSize)
			sv, sf := src.Mem.ReadWordFBit(a)
			dv, df := dst.Mem.ReadWordFBit(a)
			if sv != dv || sf != df {
				return fmt.Errorf("oracle: snapshot word %#x diverged: src (%#x,%v), dst (%#x,%v)",
					a, sv, sf, dv, df)
			}
		}
	}

	if sb, db := src.Alloc.Brk(), dst.Alloc.Brk(); sb != db {
		return fmt.Errorf("oracle: snapshot brk diverged: src %#x, dst %#x", sb, db)
	}
	sl := src.Alloc.LiveBlocks()
	dl := dst.Alloc.LiveBlocks()
	if len(sl) != len(dl) {
		return fmt.Errorf("oracle: snapshot live blocks diverged: src %d, dst %d", len(sl), len(dl))
	}
	for i, a := range sl {
		if dl[i] != a {
			return fmt.Errorf("oracle: snapshot live block set diverged at %#x vs %#x", a, dl[i])
		}
		sn, _ := src.Alloc.SizeOf(a)
		dn, _ := dst.Alloc.SizeOf(a)
		if sn != dn || src.Alloc.Pinned(a) != dst.Alloc.Pinned(a) {
			return fmt.Errorf("oracle: snapshot block %#x diverged: size %d/%d pinned %v/%v",
				a, sn, dn, src.Alloc.Pinned(a), dst.Alloc.Pinned(a))
		}
	}

	sd, err := DigestModuloForwarding(src.Mem, src.Fwd, src.Alloc)
	if err != nil {
		return fmt.Errorf("oracle: snapshot src digest: %w", err)
	}
	dd, err := DigestModuloForwarding(dst.Mem, dst.Fwd, dst.Alloc)
	if err != nil {
		return fmt.Errorf("oracle: snapshot dst digest: %w", err)
	}
	if sd != dd {
		return fmt.Errorf("oracle: snapshot digests diverged: src %#x, dst %#x", sd, dd)
	}

	if ss, ds := *src.Snapshot(), *dst.Snapshot(); ss != ds {
		return fmt.Errorf("oracle: snapshot stats diverged:\nsrc %+v\ndst %+v", ss, ds)
	}
	return nil
}
