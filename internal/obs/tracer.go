package obs

// Sink receives batches of events from a Tracer. Implementations may
// buffer internally; Close must flush whatever is pending.
type Sink interface {
	WriteEvents([]Event) error
	Close() error
}

// Tracer records typed events into a bounded buffer. With a sink
// attached, the buffer is a staging area flushed whenever it fills;
// without one, it is a ring that retains the most recent events (test
// and post-mortem use).
//
// A nil *Tracer is valid: every method is a no-op, so instrumented code
// calls methods unconditionally after a cheap nil check and the
// disabled path allocates nothing.
type Tracer struct {
	sink    Sink
	buf     []Event
	n       int
	wrapped bool   // ring only: buffer has overflowed at least once
	mask    uint32 // enabled-kind bitmask
	err     error  // first sink error; tracing stops reporting after it
	emitted uint64
}

// DefaultBufEvents is the staging/ring capacity when none is given.
const DefaultBufEvents = 4096

// NewTracer builds a tracer that flushes to sink whenever bufEvents
// events accumulate (bufEvents <= 0 takes DefaultBufEvents). All event
// kinds start enabled.
func NewTracer(sink Sink, bufEvents int) *Tracer {
	if bufEvents <= 0 {
		bufEvents = DefaultBufEvents
	}
	return &Tracer{sink: sink, buf: make([]Event, bufEvents), mask: ^uint32(0)}
}

// NewRing builds a sinkless tracer that retains the last n events
// (n <= 0 takes DefaultBufEvents); read them back with Events.
func NewRing(n int) *Tracer {
	return NewTracer(nil, n)
}

// EnableOnly restricts tracing to the given kinds.
func (t *Tracer) EnableOnly(kinds ...Kind) {
	if t == nil {
		return
	}
	t.mask = 0
	for _, k := range kinds {
		t.mask |= 1 << k
	}
}

// Enabled reports whether events of kind k are recorded.
func (t *Tracer) Enabled(k Kind) bool {
	return t != nil && t.mask&(1<<k) != 0
}

// Emit records one event. Nil-safe and allocation-free.
func (t *Tracer) Emit(ev Event) {
	if t == nil || t.mask&(1<<ev.Kind) == 0 {
		return
	}
	t.emitted++
	t.buf[t.n] = ev
	t.n++
	if t.n == len(t.buf) {
		t.flush()
	}
}

func (t *Tracer) flush() {
	if t.sink == nil {
		// Ring mode: start overwriting from the front.
		t.wrapped = true
		t.n = 0
		return
	}
	if t.err == nil && t.n > 0 {
		t.err = t.sink.WriteEvents(t.buf[:t.n])
	}
	// Clear label references so retained strings do not pin memory.
	for i := 0; i < t.n; i++ {
		t.buf[i] = Event{}
	}
	t.n = 0
}

// Flush pushes buffered events to the sink (no-op in ring mode) and
// returns the first sink error, if any.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	if t.sink != nil {
		t.flush()
	}
	return t.err
}

// Close flushes and closes the sink.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	if t.sink != nil {
		t.flush()
		if cerr := t.sink.Close(); t.err == nil {
			t.err = cerr
		}
	}
	return t.err
}

// Emitted returns the number of events recorded (post-filter).
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.emitted
}

// Err returns the first sink error encountered.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}

// Events returns the retained events in emission order. In ring mode
// this is the most recent window; with a sink attached it is whatever
// has not yet been flushed.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if t.sink == nil && t.wrapped {
		out := make([]Event, 0, len(t.buf))
		out = append(out, t.buf[t.n:]...)
		return append(out, t.buf[:t.n]...)
	}
	out := make([]Event, t.n)
	copy(out, t.buf[:t.n])
	return out
}
