package obs

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"
)

func snapMap(r *Registry) map[string]float64 {
	out := make(map[string]float64)
	for _, mv := range r.Snapshot() {
		out[mv.Name] = mv.Value
	}
	return out
}

func TestCounterGaugeFunc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	g := r.Gauge("occupancy")
	backing := uint64(7)
	r.GaugeFunc("view", func() float64 { return float64(backing) })

	c.Inc()
	c.Add(2)
	g.Set(1.5)
	g.Add(-0.5)

	m := snapMap(r)
	if m["hits"] != 3 || m["occupancy"] != 1.0 || m["view"] != 7 {
		t.Fatalf("snapshot wrong: %v", m)
	}
	// Views are live: changing the backing value changes the next read.
	backing = 11
	if snapMap(r)["view"] != 11 {
		t.Fatal("GaugeFunc view is not live")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hops", 1, 2, 4)
	for _, v := range []float64{1, 1, 2, 3, 9} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 16 {
		t.Fatalf("count/sum = %d/%v", h.Count(), h.Sum())
	}
	m := snapMap(r)
	if m["hops.count"] != 5 || m["hops.sum"] != 16 {
		t.Fatalf("expanded count/sum wrong: %v", m)
	}
	// Cumulative buckets: <=1 has 2, <=2 has 3, <=4 has 4 (9 overflows).
	if m["hops.le1"] != 2 || m["hops.le2"] != 3 || m["hops.le4"] != 4 {
		t.Fatalf("buckets wrong: %v", m)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	NewRegistry().Histogram("bad", 2, 1)
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric name")
		}
	}()
	r.Gauge("x")
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("zebra")
	r.Counter("alpha")
	r.Counter("mid")
	snap := r.Snapshot()
	names := make([]string, len(snap))
	for i, mv := range snap {
		names[i] = mv.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("snapshot not sorted: %v", names)
	}
}

func TestTableAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(4)
	r.Gauge("b.rate").Set(0.25)
	tab := r.Table().String()
	if !strings.Contains(tab, "a.count") || !strings.Contains(tab, "0.2500") {
		t.Fatalf("table missing entries:\n%s", tab)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, buf.String())
	}
	if m["a.count"] != 4 || m["b.rate"] != 0.25 {
		t.Fatalf("JSON values wrong: %v", m)
	}
}
