package obs

import (
	"fmt"

	"memfwd/internal/report"
)

// RelocOutcome is how one relocation span ended.
type RelocOutcome string

// Relocation span outcomes.
const (
	// RelocCommitted: both phases completed and the journal committed.
	RelocCommitted RelocOutcome = "committed"
	// RelocAborted: the relocation returned before touching reachable
	// memory (chain cap, confirmed cycle) — the heap is untouched.
	RelocAborted RelocOutcome = "aborted"
	// RelocTorn: a verification read-back caught corruption; the heap
	// is repairable from the relocation journal (fault.Scavenge).
	RelocTorn RelocOutcome = "torn"
)

// Span phase labels, shared with the Perfetto duration events.
const (
	SpanRelocate = "relocate"
	SpanCopy     = "relocate.copy"
	SpanVerify   = "relocate.verify"
	SpanPlant    = "relocate.plant"
)

// RelocationSpan is one structured record of a TryRelocate two-phase
// commit: begin -> copy -> verify -> plant -> end, with per-phase cycle
// costs, the chain length before and after, the outcome, and any fault
// injector shots that fired inside the span.
type RelocationSpan struct {
	ID    uint64 `json:"id"`
	Src   uint64 `json:"src"`
	Tgt   uint64 `json:"tgt"`
	Words int    `json:"words"`

	// Chain length of the source's first word before the relocation,
	// and after it committed (-1 when the span did not commit).
	ChainBefore int `json:"chainBefore"`
	ChainAfter  int `json:"chainAfter"`

	// Begin is the cycle at which the relocation started; the phase
	// costs are durations in cycles, -1 for a phase never reached. On
	// the timing-free oracle machine every stamp is 0, so spans still
	// record structure and outcome, just with zero-width phases.
	Begin        int64 `json:"begin"`
	CopyCycles   int64 `json:"copyCycles"`
	VerifyCycles int64 `json:"verifyCycles"`
	PlantCycles  int64 `json:"plantCycles"`
	TotalCycles  int64 `json:"totalCycles"`

	Outcome RelocOutcome `json:"outcome"`
	// Faults lists the fault.Injector shots that fired inside the span
	// (annotations), and Err carries the abort/torn reason.
	Faults []string `json:"faults,omitempty"`
	Err    string   `json:"err,omitempty"`
}

// PhaseSummary is the per-phase cost digest of a SpanTable.
type PhaseSummary struct {
	Phase string  `json:"phase"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	Max   float64 `json:"max"`
}

// SpanSnapshot is an immutable reading of a SpanTable, safe to hand to
// another goroutine (the HTTP telemetry plane publishes these).
type SpanSnapshot struct {
	Total     uint64           `json:"total"`
	Committed uint64           `json:"committed"`
	Aborted   uint64           `json:"aborted"`
	Torn      uint64           `json:"torn"`
	Phases    []PhaseSummary   `json:"phases"`
	Recent    []RelocationSpan `json:"recent"`
}

// spanBounds are the phase-cost histogram buckets in cycles
// (exponential: relocations range from a few words to whole subtrees).
var spanBounds = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

// SpanTable records relocation spans into a bounded ring and aggregates
// per-phase cost histograms. A nil *SpanTable is a valid no-op
// receiver, mirroring the Tracer discipline: opt.TryRelocate records
// unconditionally after a cheap nil check, and the disabled path
// allocates nothing.
//
// Like the Machine it instruments, a SpanTable is not safe for
// concurrent use; concurrent readers get Snapshot copies.
type SpanTable struct {
	// Tracer, when non-nil, additionally receives each span as nested
	// KSpanBegin/KSpanEnd duration events (rendered by the Perfetto
	// sink as proper duration slices). Machine.SetSpans wires this to
	// the machine's tracer automatically.
	Tracer *Tracer

	spans   []RelocationSpan
	n       int
	wrapped bool

	nextID    uint64
	committed uint64
	aborted   uint64
	torn      uint64

	hCopy, hVerify, hPlant, hTotal *Histogram
}

// DefaultSpanCap is the ring capacity when none is given.
const DefaultSpanCap = 1024

// NewSpanTable builds a span table retaining the most recent capacity
// spans (capacity <= 0 takes DefaultSpanCap). Aggregates (counts,
// outcome tallies, phase histograms) cover every span ever recorded,
// not just the retained window.
func NewSpanTable(capacity int) *SpanTable {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanTable{
		spans:   make([]RelocationSpan, capacity),
		hCopy:   NewHistogram(spanBounds...),
		hVerify: NewHistogram(spanBounds...),
		hPlant:  NewHistogram(spanBounds...),
		hTotal:  NewHistogram(spanBounds...),
	}
}

// Record stores one completed span (nil-safe). The span's ID field is
// assigned here; phase costs of -1 (phase never reached) are excluded
// from the histograms.
func (t *SpanTable) Record(s RelocationSpan) uint64 {
	if t == nil {
		return 0
	}
	t.nextID++
	s.ID = t.nextID
	switch s.Outcome {
	case RelocCommitted:
		t.committed++
	case RelocTorn:
		t.torn++
	default:
		t.aborted++
	}
	if s.CopyCycles >= 0 {
		t.hCopy.Observe(float64(s.CopyCycles))
	}
	if s.VerifyCycles >= 0 {
		t.hVerify.Observe(float64(s.VerifyCycles))
	}
	if s.PlantCycles >= 0 {
		t.hPlant.Observe(float64(s.PlantCycles))
	}
	t.hTotal.Observe(float64(s.TotalCycles))

	t.spans[t.n] = s
	t.n++
	if t.n == len(t.spans) {
		t.n = 0
		t.wrapped = true
	}
	t.emit(s)
	return s.ID
}

// emit renders the span as nested duration events on the attached
// tracer: an outer "relocate" slice enclosing one slice per phase.
func (t *SpanTable) emit(s RelocationSpan) {
	tr := t.Tracer
	if tr == nil {
		return
	}
	tr.Emit(Event{Cycle: s.Begin, Kind: KSpanBegin, Label: SpanRelocate,
		Addr: s.Src, Addr2: s.Tgt, N: uint64(s.Words)})
	at := s.Begin
	for _, ph := range [...]struct {
		label string
		dur   int64
	}{{SpanCopy, s.CopyCycles}, {SpanVerify, s.VerifyCycles}, {SpanPlant, s.PlantCycles}} {
		if ph.dur < 0 {
			continue
		}
		tr.Emit(Event{Cycle: at, Kind: KSpanBegin, Label: ph.label})
		at += ph.dur
		tr.Emit(Event{Cycle: at, Kind: KSpanEnd, Label: ph.label})
	}
	tr.Emit(Event{Cycle: s.Begin + s.TotalCycles, Kind: KSpanEnd, Label: SpanRelocate})
}

// Count returns the number of spans ever recorded.
func (t *SpanTable) Count() uint64 {
	if t == nil {
		return 0
	}
	return t.nextID
}

// Outcomes returns the committed / aborted / torn tallies.
func (t *SpanTable) Outcomes() (committed, aborted, torn uint64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.committed, t.aborted, t.torn
}

// Spans returns the retained spans in recording order (the most recent
// window once the ring has wrapped).
func (t *SpanTable) Spans() []RelocationSpan {
	if t == nil {
		return nil
	}
	if t.wrapped {
		out := make([]RelocationSpan, 0, len(t.spans))
		out = append(out, t.spans[t.n:]...)
		return append(out, t.spans[:t.n]...)
	}
	out := make([]RelocationSpan, t.n)
	copy(out, t.spans[:t.n])
	return out
}

// phaseHists pairs each phase label with its histogram.
func (t *SpanTable) phaseHists() []struct {
	name string
	h    *Histogram
} {
	return []struct {
		name string
		h    *Histogram
	}{
		{"copy", t.hCopy},
		{"verify", t.hVerify},
		{"plant", t.hPlant},
		{"total", t.hTotal},
	}
}

// RegisterMetrics attaches the span aggregates to a registry:
// reloc.spans, reloc.committed/aborted/torn, and one histogram per
// phase (reloc.copy_cycles etc). Register once per registry.
func (t *SpanTable) RegisterMetrics(r *Registry) {
	r.GaugeFunc("reloc.spans", func() float64 { return float64(t.nextID) })
	r.GaugeFunc("reloc.committed", func() float64 { return float64(t.committed) })
	r.GaugeFunc("reloc.aborted", func() float64 { return float64(t.aborted) })
	r.GaugeFunc("reloc.torn", func() float64 { return float64(t.torn) })
	r.AttachHistogram("reloc.copy_cycles", t.hCopy)
	r.AttachHistogram("reloc.verify_cycles", t.hVerify)
	r.AttachHistogram("reloc.plant_cycles", t.hPlant)
	r.AttachHistogram("reloc.total_cycles", t.hTotal)
}

// Snapshot returns an immutable digest with at most maxRecent retained
// spans (maxRecent <= 0 keeps them all).
func (t *SpanTable) Snapshot(maxRecent int) SpanSnapshot {
	if t == nil {
		return SpanSnapshot{}
	}
	recent := t.Spans()
	if maxRecent > 0 && len(recent) > maxRecent {
		recent = recent[len(recent)-maxRecent:]
	}
	snap := SpanSnapshot{
		Total:     t.nextID,
		Committed: t.committed,
		Aborted:   t.aborted,
		Torn:      t.torn,
		Recent:    recent,
	}
	for _, ph := range t.phaseHists() {
		snap.Phases = append(snap.Phases, PhaseSummary{
			Phase: ph.name,
			Count: ph.h.Count(),
			P50:   ph.h.Quantile(0.50),
			P95:   ph.h.Quantile(0.95),
			Max:   ph.h.Max(),
		})
	}
	return snap
}

// Report renders the relocation-span digest: outcome tallies and the
// p50/p95/max cycle cost of each two-phase-commit phase (the
// -relocation-report table).
func (t *SpanTable) Report() *report.Table {
	tab := report.New("Relocation spans (two-phase commit cost per phase)",
		"phase", "count", "p50 cyc", "p95 cyc", "max cyc")
	if t == nil {
		return tab
	}
	for _, ph := range t.phaseHists() {
		tab.Add(ph.name, fmt.Sprint(ph.h.Count()),
			fmt.Sprintf("%.0f", ph.h.Quantile(0.50)),
			fmt.Sprintf("%.0f", ph.h.Quantile(0.95)),
			fmt.Sprintf("%.0f", ph.h.Max()))
	}
	tab.Add("outcomes",
		fmt.Sprintf("%d committed", t.committed),
		fmt.Sprintf("%d aborted", t.aborted),
		fmt.Sprintf("%d torn", t.torn), "")
	return tab
}
