package obs

import "sync"

// Broadcaster is a Sink that fans event batches out to any number of
// dynamically attached subscribers over bounded channels. Slow or stuck
// subscribers never stall the producer: when a subscriber's queue is
// full the batch is dropped for that subscriber and its drop counter
// advances. This is the non-interference guarantee the live HTTP
// telemetry plane relies on — a wedged client costs the simulation one
// failed non-blocking send per flush, nothing more.
//
// Unlike most obs types, a Broadcaster IS safe for concurrent use: the
// producer (machine goroutine, via a Tracer) and subscribers (HTTP
// handler goroutines) are different goroutines by design.
type Broadcaster struct {
	mu     sync.Mutex
	subs   map[*Subscriber]struct{}
	closed bool

	events  uint64 // events accepted from the producer
	dropped uint64 // events not delivered to some subscriber
}

// Subscriber receives event batches from a Broadcaster. Read from C
// until it closes; each received slice is owned by the subscriber.
type Subscriber struct {
	C chan []Event

	b       *Broadcaster
	dropped uint64 // guarded by b.mu
}

// NewBroadcaster returns an empty hub.
func NewBroadcaster() *Broadcaster {
	return &Broadcaster{subs: make(map[*Subscriber]struct{})}
}

// Subscribe attaches a new subscriber with a queue of buf batches
// (buf <= 0 takes 16).
//
// Subscribe is safe concurrently with Close — the defined behaviour
// (relied on by memfwd-serve, whose session teardowns race incoming
// /events attachments): whichever wins the hub mutex, the caller gets
// a usable *Subscriber and never a panic. If Close won, the returned
// subscriber's channel is already closed, so a ranging consumer exits
// immediately; Unsubscribe on it remains a safe no-op.
func (b *Broadcaster) Subscribe(buf int) *Subscriber {
	if buf <= 0 {
		buf = 16
	}
	s := &Subscriber{C: make(chan []Event, buf), b: b}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		close(s.C)
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// Unsubscribe detaches the subscriber and closes its channel. Safe to
// call more than once.
func (s *Subscriber) Unsubscribe() {
	b := s.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[s]; !ok {
		return
	}
	delete(b.subs, s)
	close(s.C)
}

// Dropped returns how many events were dropped for this subscriber
// because its queue was full.
func (s *Subscriber) Dropped() uint64 {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	return s.dropped
}

// WriteEvents implements Sink. The batch is copied once — the Tracer
// zeroes its ring after flushing, so retained slices must not alias it
// — then delivered to each subscriber with a non-blocking send.
func (b *Broadcaster) WriteEvents(events []Event) error {
	if len(events) == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.events += uint64(len(events))
	if len(b.subs) == 0 {
		return nil
	}
	batch := make([]Event, len(events))
	copy(batch, events)
	for s := range b.subs {
		select {
		case s.C <- batch:
		default:
			s.dropped += uint64(len(batch))
			b.dropped += uint64(len(batch))
		}
	}
	return nil
}

// Close implements Sink: it detaches and closes every subscriber and
// rejects future ones. Safe to call more than once, and safe
// concurrently with Subscribe/Unsubscribe/WriteEvents. Closing a
// subscriber's channel does not discard batches already queued on it:
// a draining consumer receives every buffered batch and then the
// close — the graceful-drain property telemetry.Server.Close builds
// its shutdown sequence on.
func (b *Broadcaster) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for s := range b.subs {
		delete(b.subs, s)
		close(s.C)
	}
	return nil
}

// Stats returns the producer-side accounting: total events accepted,
// total subscriber-side drops, and current subscriber count.
func (b *Broadcaster) Stats() (events, dropped uint64, subscribers int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.events, b.dropped, len(b.subs)
}

// noClose wraps a Sink, forwarding writes but swallowing Close. Use it
// to hand one shared sink (typically a Broadcaster) to several
// short-lived tracers whose Close must not tear the shared sink down.
type noClose struct{ s Sink }

func (n noClose) WriteEvents(events []Event) error { return n.s.WriteEvents(events) }
func (n noClose) Close() error                     { return nil }

// NoClose returns sink with Close turned into a no-op.
func NoClose(s Sink) Sink { return noClose{s: s} }
