package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// MemorySink accumulates every event in memory; tests and in-process
// consumers read Events directly.
type MemorySink struct {
	Events []Event
}

// WriteEvents appends the batch.
func (s *MemorySink) WriteEvents(evs []Event) error {
	s.Events = append(s.Events, evs...)
	return nil
}

// Close is a no-op.
func (s *MemorySink) Close() error { return nil }

// jsonEvent is the NDJSON wire form of one event; zero-valued fields
// are omitted so common events stay one short line.
type jsonEvent struct {
	Cycle int64  `json:"cycle"`
	Kind  string `json:"kind"`
	Level uint8  `json:"level,omitempty"`
	Class string `json:"class,omitempty"`
	Part  bool   `json:"partial,omitempty"`
	Addr  string `json:"addr,omitempty"`
	Addr2 string `json:"addr2,omitempty"`
	N     uint64 `json:"n,omitempty"`
	Label string `json:"label,omitempty"`
}

func hexAddr(a uint64) string {
	if a == 0 {
		return ""
	}
	return fmt.Sprintf("%#x", a)
}

// classed reports whether kind k carries a meaningful Class field.
func classed(k Kind) bool {
	switch k {
	case KForwardHop, KTrap, KCacheMiss:
		return true
	}
	return false
}

// NDJSONSink writes one JSON object per event per line — the standard
// newline-delimited JSON stream log processors ingest.
type NDJSONSink struct {
	w *bufio.Writer
}

// NewNDJSONSink wraps w (typically a file) in an NDJSON event writer.
// The caller retains ownership of w; Close flushes but does not close it.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{w: bufio.NewWriter(w)}
}

// WriteEvents encodes each event as one line.
func (s *NDJSONSink) WriteEvents(evs []Event) error {
	for _, ev := range evs {
		je := jsonEvent{
			Cycle: ev.Cycle,
			Kind:  ev.Kind.String(),
			Level: ev.Level,
			Part:  ev.Flag,
			Addr:  hexAddr(ev.Addr),
			Addr2: hexAddr(ev.Addr2),
			N:     ev.N,
			Label: ev.Label,
		}
		if classed(ev.Kind) {
			je.Class = ev.ClassString()
		}
		b, err := json.Marshal(je)
		if err != nil {
			return err
		}
		if _, err := s.w.Write(b); err != nil {
			return err
		}
		if err := s.w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes the buffered writer.
func (s *NDJSONSink) Close() error { return s.w.Flush() }

// perfettoEvent is the Chrome trace_event JSON object; the format is
// documented in the Trace Event Format spec and accepted by both
// chrome://tracing and ui.perfetto.dev. Cycle timestamps are reported
// as microseconds (one cycle = 1us on the timeline).
type perfettoEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// PerfettoSink writes a trace_event JSON array: phase events become
// duration begin/end pairs, everything else instant events.
type PerfettoSink struct {
	w     *bufio.Writer
	first bool
}

// NewPerfettoSink wraps w in a trace_event JSON writer. The caller
// retains ownership of w; Close writes the closing bracket and flushes.
func NewPerfettoSink(w io.Writer) *PerfettoSink {
	return &PerfettoSink{w: bufio.NewWriter(w), first: true}
}

// WriteEvents appends each event to the JSON array.
func (s *PerfettoSink) WriteEvents(evs []Event) error {
	for _, ev := range evs {
		pe := perfettoEvent{Name: ev.Kind.String(), Phase: "i", Ts: ev.Cycle, Scope: "t"}
		switch ev.Kind {
		case KPhaseBegin:
			pe = perfettoEvent{Name: ev.Label, Phase: "B", Ts: ev.Cycle}
		case KPhaseEnd:
			pe = perfettoEvent{Name: ev.Label, Phase: "E", Ts: ev.Cycle}
		case KSpanBegin:
			pe = perfettoEvent{Name: ev.Label, Phase: "B", Ts: ev.Cycle}
			args := make(map[string]any, 3)
			if ev.Addr != 0 {
				args["src"] = hexAddr(ev.Addr)
			}
			if ev.Addr2 != 0 {
				args["tgt"] = hexAddr(ev.Addr2)
			}
			if ev.N != 0 {
				args["words"] = ev.N
			}
			if len(args) > 0 {
				pe.Args = args
			}
		case KSpanEnd:
			pe = perfettoEvent{Name: ev.Label, Phase: "E", Ts: ev.Cycle}
		default:
			args := make(map[string]any, 4)
			if ev.Addr != 0 {
				args["addr"] = hexAddr(ev.Addr)
			}
			if ev.Addr2 != 0 {
				args["addr2"] = hexAddr(ev.Addr2)
			}
			if ev.N != 0 {
				args["n"] = ev.N
			}
			if classed(ev.Kind) {
				args["class"] = ev.ClassString()
			}
			if ev.Kind == KCacheMiss {
				args["level"] = ev.Level
				args["partial"] = ev.Flag
			}
			if len(args) > 0 {
				pe.Args = args
			}
		}
		b, err := json.Marshal(pe)
		if err != nil {
			return err
		}
		if s.first {
			if _, err := s.w.WriteString("[\n"); err != nil {
				return err
			}
			s.first = false
		} else {
			if _, err := s.w.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := s.w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// Close terminates the JSON array and flushes.
func (s *PerfettoSink) Close() error {
	if s.first {
		if _, err := s.w.WriteString("["); err != nil {
			return err
		}
		s.first = false
	}
	if _, err := s.w.WriteString("\n]\n"); err != nil {
		return err
	}
	return s.w.Flush()
}

// multiSink fans batches out to several sinks.
type multiSink []Sink

// MultiSink combines sinks so one tracer can feed, say, an NDJSON file
// and a Perfetto trace simultaneously.
func MultiSink(sinks ...Sink) Sink {
	out := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

func (ms multiSink) WriteEvents(evs []Event) error {
	var first error
	for _, s := range ms {
		if err := s.WriteEvents(evs); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (ms multiSink) Close() error {
	var first error
	for _, s := range ms {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
