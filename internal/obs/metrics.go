package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"memfwd/internal/report"
)

// Registry is a flat namespace of metrics. Subsystems register either
// live instruments (Counter, Gauge, Histogram) or read-only GaugeFunc
// views over statistics they already keep; Snapshot evaluates
// everything at read time, so views are always current and cost nothing
// between reads.
//
// The registry is not safe for concurrent use, matching the Machine it
// instruments.
type Registry struct {
	names map[string]struct{}
	items []metricItem
}

type metricItem struct {
	name string
	// expand appends one or more (name, value) pairs; histograms
	// expand to count/sum/bucket entries.
	expand func(emit func(name string, v float64))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

func (r *Registry) register(name string, expand func(emit func(string, float64))) {
	if _, dup := r.names[name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = struct{}{}
	r.items = append(r.items, metricItem{name: name, expand: expand})
}

// Counter is a monotonically increasing count.
type Counter struct {
	v float64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n (must be non-negative to keep the counter monotone).
func (c *Counter) Add(n float64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// Counter registers and returns a new counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.register(name, func(emit func(string, float64)) { emit(name, c.v) })
	return c
}

// Gauge is a value that can move in either direction.
type Gauge struct {
	v float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.register(name, func(emit func(string, float64)) { emit(name, g.v) })
	return g
}

// GaugeFunc registers a read-only view evaluated at snapshot time.
// This is how subsystems expose their existing Stats fields without
// duplicating hot-path accounting.
func (r *Registry) GaugeFunc(name string, f func() float64) {
	r.register(name, func(emit func(string, float64)) { emit(name, f()) })
}

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +inf is implicit
	counts []uint64  // len(bounds)+1, last is the +inf bucket
	sum    float64
	n      uint64
	max    float64
}

// NewHistogram builds an unregistered histogram with the given
// ascending bucket upper bounds. Attach it to a registry with
// AttachHistogram, or keep it private (the relocation span table keeps
// its phase histograms either way).
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.n++
	h.sum += v
	if h.n == 1 || v > h.max {
		h.max = v
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i]++
			return
		}
	}
	h.counts[len(h.bounds)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 { return h.max }

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation within the bucket containing the target rank; values in
// the overflow bucket are reported as the exact observed maximum. With
// no observations it returns 0. The estimate is exact at q=1 and never
// exceeds Max.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	var cum uint64
	lower := 0.0
	for i, b := range h.bounds {
		c := h.counts[i]
		if float64(cum+c) >= target && c > 0 {
			frac := (target - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			v := lower + (b-lower)*frac
			if v > h.max {
				v = h.max
			}
			return v
		}
		cum += c
		lower = b
	}
	return h.max
}

// AttachHistogram registers an existing histogram under name; it
// expands in snapshots to name.count, name.sum, and cumulative name.le*
// entries.
func (r *Registry) AttachHistogram(name string, h *Histogram) {
	r.register(name, func(emit func(string, float64)) {
		emit(name+".count", float64(h.n))
		emit(name+".sum", h.sum)
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i]
			emit(fmt.Sprintf("%s.le%g", name, b), float64(cum))
		}
	})
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds. It expands in snapshots to name.count, name.sum,
// and cumulative name.le* entries.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	h := NewHistogram(bounds...)
	r.AttachHistogram(name, h)
	return h
}

// MetricValue is one evaluated metric.
type MetricValue struct {
	Name  string
	Value float64
}

// Snapshot evaluates every metric and returns the values sorted by
// name, so output is deterministic regardless of registration order.
func (r *Registry) Snapshot() []MetricValue {
	var out []MetricValue
	for _, it := range r.items {
		it.expand(func(name string, v float64) {
			out = append(out, MetricValue{Name: name, Value: v})
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Table renders the snapshot as a two-column table.
func (r *Registry) Table() *report.Table {
	t := report.New("Metrics", "metric", "value")
	for _, mv := range r.Snapshot() {
		t.Add(mv.Name, formatMetric(mv.Value))
	}
	return t
}

func formatMetric(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0" // keep table and JSON output well-formed
	}
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}

// WriteJSON emits the snapshot as one JSON object keyed by metric name,
// keys in sorted order.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	// Marshal by hand to keep key order deterministic (maps reorder).
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, mv := range snap {
		key, err := json.Marshal(mv.Name)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(snap)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "  %s: %s%s", key, formatMetric(mv.Value), sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}
